GO ?= go

.PHONY: all build vet test race verify soak bench bench-check experiments

all: verify

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# race runs the unit suite under the race detector with shuffled test
# order; the thousand-agent fleet soak is excluded (-short) and has
# its own target below.
race:
	$(GO) test -race -shuffle=on -short ./...

# verify is the CI gate: static checks, build, and the full suite
# under the race detector (the experiment engine is parallel; every
# PR must stay race-clean).
verify: vet build race

# soak runs the fleet end-to-end suite — console + 1000 agents over
# the in-memory transport, twice, asserting identical Results — under
# the race detector. CI runs this as its own job.
soak:
	$(GO) test -race -run TestFleet ./internal/fleet -timeout 10m -v

# bench runs the per-experiment benchmarks — root package plus the
# generation-path microbenches in internal/trace and internal/xrand —
# and records them as BENCH_repro.json, the perf trajectory checked
# in with each PR.
bench:
	$(GO) test -run '^$$' -bench . -benchmem . ./internal/trace ./internal/xrand | tee /tmp/bench_repro.txt
	./scripts/bench_json.sh /tmp/bench_repro.txt scripts/seed_baseline.bench > BENCH_repro.json
	@echo wrote BENCH_repro.json

# bench-check re-measures the suite and fails if any benchmark
# regressed >20% in ns/op or >25% in allocs/op vs the committed
# BENCH_repro.json. Run it before a perf PR; `make bench` afterwards
# to refresh the baseline.
bench-check:
	$(GO) test -run '^$$' -bench . -benchmem . ./internal/trace ./internal/xrand | tee /tmp/bench_check.txt
	./scripts/bench_json.sh -check /tmp/bench_check.txt BENCH_repro.json

experiments:
	$(GO) run ./cmd/experiments
