GO ?= go

.PHONY: all build vet test race verify soak chaos-soak bench bench-check experiments snapshot-smoke shard-smoke eval-smoke build-chaos-smoke remote-chaos-smoke

all: verify

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# race runs the unit suite under the race detector with shuffled test
# order; the thousand-agent fleet soak is excluded (-short) and has
# its own target below.
race:
	$(GO) test -race -shuffle=on -short ./...

# verify is the CI gate: static checks, build, and the full suite
# under the race detector (the experiment engine is parallel; every
# PR must stay race-clean).
verify: vet build race

# soak runs the fleet end-to-end suite — console + 1000 agents over
# the in-memory transport, twice, asserting identical Results — under
# the race detector. CI runs this as its own job.
soak:
	$(GO) test -race -run TestFleet ./internal/fleet -timeout 10m -v

# chaos-soak runs the heavyweight fault-injection grid — fleet runs
# under drop/reset/partition/crash plans, asserting bit-identical
# convergence with the fault-free baseline (and deterministic degraded
# results for permanent losses) — under the race detector. The quick
# members of the fault suite run in every `make race`; these are the
# -short-skipped chaos grids. CI runs this as its own job.
chaos-soak:
	$(GO) test -race -run TestChaos ./internal/fleet -timeout 15m -v

# bench runs the per-experiment benchmarks — root package plus the
# generation-path microbenches in internal/trace and internal/xrand —
# and records them as BENCH_repro.json, the perf trajectory checked
# in with each PR.
bench:
	$(GO) test -run '^$$' -bench . -benchmem -timeout 60m . ./internal/trace ./internal/xrand | tee /tmp/bench_repro.txt
	./scripts/bench_json.sh /tmp/bench_repro.txt scripts/seed_baseline.bench > BENCH_repro.json
	@echo wrote BENCH_repro.json

# bench-check re-measures the suite and fails if any benchmark
# regressed >20% in ns/op or >25% in allocs/op vs the committed
# BENCH_repro.json. Run it before a perf PR; `make bench` afterwards
# to refresh the baseline.
bench-check:
	$(GO) test -run '^$$' -bench . -benchmem -timeout 60m . ./internal/trace ./internal/xrand | tee /tmp/bench_check.txt
	./scripts/bench_json.sh -check /tmp/bench_check.txt BENCH_repro.json

# snapshot-smoke proves the on-disk workspace store end to end: the
# first pass materializes a small enterprise into the store and runs
# the golden/equivalence/sweep suites against it (cold, sharded write
# path); the second pass re-runs them riding the mapped snapshot
# (warm path). -count=1 defeats the test cache so the warm pass
# really re-executes. CI runs this as its own job with the store
# cached between runs.
SNAPSHOT_SMOKE_DIR ?= /tmp/repro-snapshot-smoke
snapshot-smoke:
	REPRO_SNAPSHOT_DIR=$(SNAPSHOT_SMOKE_DIR) $(GO) test -count=1 -run 'TestGolden|TestWorkspace|TestFig|TestTable|TestAttackSweep|TestEnterprise' .
	REPRO_SNAPSHOT_DIR=$(SNAPSHOT_SMOKE_DIR) $(GO) test -count=1 -run 'TestGolden|TestWorkspace|TestFig|TestTable|TestAttackSweep|TestEnterprise' .

# shard-smoke proves the distributed snapshot build end to end at the
# process level: for each suite key, two tracegen worker processes
# seal disjoint -shard-range parts, a third invocation merges them
# into the canonical snapshot, and the golden + equivalence suites
# then run warm through the merged store — so the suites' pinned
# outputs certify the merged bytes, not just the merge's own
# checksums. `tracegen gc -dry-run` sweeps the store at the end as a
# lifecycle smoke. CI runs this as its own job.
SHARD_SMOKE_DIR ?= /tmp/repro-shard-smoke
shard-smoke:
	rm -rf $(SHARD_SMOKE_DIR)
	$(GO) build -o /tmp/repro-tracegen ./cmd/tracegen
	/tmp/repro-tracegen -snapshot $(SHARD_SMOKE_DIR) -users 20 -weeks 2 -seed 1 -shard-range 0:11
	/tmp/repro-tracegen -snapshot $(SHARD_SMOKE_DIR) -users 20 -weeks 2 -seed 1 -shard-range 11:20
	/tmp/repro-tracegen -snapshot $(SHARD_SMOKE_DIR) -users 20 -weeks 2 -seed 1 -merge
	/tmp/repro-tracegen -snapshot $(SHARD_SMOKE_DIR) -users 40 -weeks 2 -seed 7 -shard-range 0:23
	/tmp/repro-tracegen -snapshot $(SHARD_SMOKE_DIR) -users 40 -weeks 2 -seed 7 -shard-range 23:40
	/tmp/repro-tracegen -snapshot $(SHARD_SMOKE_DIR) -users 40 -weeks 2 -seed 7 -merge
	REPRO_SNAPSHOT_DIR=$(SHARD_SMOKE_DIR) $(GO) test -count=1 -run 'TestGolden|TestWorkspace|TestFig|TestTable|TestEnterprise' .
	/tmp/repro-tracegen gc -snapshot $(SHARD_SMOKE_DIR) -keep 2 -dry-run

# eval-smoke proves bounded-heap streaming evaluation end to end: a
# weighted two-worker tracegen build seals the store through the
# splice merge (exercising CutRanges + part concatenation), the golden
# and equivalence suites then run warm with streaming armed
# (REPRO_STREAM_SHARD) — so every pinned output certifies the
# shard-by-shard path — and the sweep CLI runs a whole-heap and a
# streaming trial against the same store, printing the aggregate
# wall-clock/peak-RSS table. CI runs this as its own job.
EVAL_SMOKE_DIR ?= /tmp/repro-eval-smoke
eval-smoke:
	rm -rf $(EVAL_SMOKE_DIR)
	$(GO) build -o /tmp/repro-tracegen ./cmd/tracegen
	$(GO) build -o /tmp/repro-experiments ./cmd/experiments
	/tmp/repro-tracegen -snapshot $(EVAL_SMOKE_DIR) -users 40 -weeks 2 -seed 1 -workers 2
	REPRO_SNAPSHOT_DIR=$(EVAL_SMOKE_DIR) REPRO_STREAM_SHARD=7 $(GO) test -count=1 -run 'TestGolden|TestWorkspace|TestFig|TestTable|TestStreaming' .
	printf '[{"name":"whole-heap","users":40,"seed":1,"run":"fig3a,table3"},{"name":"stream-7","users":40,"seed":1,"streamShard":7,"run":"fig3a,table3"}]' > /tmp/repro-eval-sweep.json
	/tmp/repro-experiments -snapshot $(EVAL_SMOKE_DIR) -configs /tmp/repro-eval-sweep.json

# build-chaos-smoke proves the fault-tolerant build coordinator end to
# end at the process level: for each suite key, a 2-worker coordinated
# build runs under a seeded crash+slow fault plan, halting once
# mid-build (-halt-after) and resuming from the verified parts on a
# second invocation; the golden + equivalence suites then run warm
# through the merged stores — so the suites' pinned outputs certify
# that builds which crashed, slowed and resumed sealed the exact clean
# bytes. `tracegen gc -part-age -dry-run` sweeps the store at the end
# as an abandoned-build lifecycle smoke.
BUILD_CHAOS_SMOKE_DIR ?= /tmp/repro-build-chaos-smoke
BUILD_CHAOS_FAULTS = crash=0.3,slow=0.3,slowms=20,limit=2
build-chaos-smoke:
	rm -rf $(BUILD_CHAOS_SMOKE_DIR)
	$(GO) build -o /tmp/repro-tracegen ./cmd/tracegen
	/tmp/repro-tracegen -snapshot $(BUILD_CHAOS_SMOKE_DIR) -users 20 -weeks 2 -seed 1 -coordinate -workers 2 -ranges 4 -fault "$(BUILD_CHAOS_FAULTS)" -fault-seed 9 -retries 6 -halt-after 1
	/tmp/repro-tracegen -snapshot $(BUILD_CHAOS_SMOKE_DIR) -users 20 -weeks 2 -seed 1 -coordinate -workers 2 -ranges 4 -fault "$(BUILD_CHAOS_FAULTS)" -fault-seed 9 -retries 6
	/tmp/repro-tracegen -snapshot $(BUILD_CHAOS_SMOKE_DIR) -users 40 -weeks 2 -seed 7 -coordinate -workers 2 -ranges 4 -fault "$(BUILD_CHAOS_FAULTS)" -fault-seed 11 -retries 6 -halt-after 1
	/tmp/repro-tracegen -snapshot $(BUILD_CHAOS_SMOKE_DIR) -users 40 -weeks 2 -seed 7 -coordinate -workers 2 -ranges 4 -fault "$(BUILD_CHAOS_FAULTS)" -fault-seed 11 -retries 6
	REPRO_SNAPSHOT_DIR=$(BUILD_CHAOS_SMOKE_DIR) $(GO) test -count=1 -run 'TestGolden|TestWorkspace|TestFig|TestTable|TestEnterprise' .
	/tmp/repro-tracegen gc -snapshot $(BUILD_CHAOS_SMOKE_DIR) -keep 2 -part-age 1ns -dry-run

# remote-chaos-smoke proves the multi-host build transport end to end
# at the process level: two `tracegen -serve` daemons on loopback, a
# `-coordinate -hosts` build streaming sealed parts from them, one
# daemon SIGKILLed mid-stream, a halt + resume against the survivor,
# and a second suite key built with the dead host still listed; the
# golden + equivalence suites then run warm through the merged store —
# so the suites' pinned outputs certify that remotely built,
# killed-mid-stream, resumed parts sealed the exact clean bytes.
# `tracegen gc -dry-run` sweeps the store at the end as a lifecycle
# smoke.
REMOTE_CHAOS_SMOKE_DIR ?= /tmp/repro-remote-chaos-smoke
remote-chaos-smoke:
	$(GO) build -o /tmp/repro-tracegen ./cmd/tracegen
	TRACEGEN=/tmp/repro-tracegen ./scripts/remote_chaos_smoke.sh $(REMOTE_CHAOS_SMOKE_DIR)
	REPRO_SNAPSHOT_DIR=$(REMOTE_CHAOS_SMOKE_DIR)/store $(GO) test -count=1 -run 'TestGolden|TestWorkspace|TestFig|TestTable|TestEnterprise' .
	/tmp/repro-tracegen gc -snapshot $(REMOTE_CHAOS_SMOKE_DIR)/store -keep 2 -dry-run

experiments:
	$(GO) run ./cmd/experiments
