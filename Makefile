GO ?= go

.PHONY: all build vet test race verify bench experiments

all: verify

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# verify is the CI gate: static checks, build, and the full suite
# under the race detector (the experiment engine is parallel; every
# PR must stay race-clean).
verify: vet build race

# bench runs the per-experiment benchmarks and records them as
# BENCH_repro.json, the perf trajectory checked in with each PR.
bench:
	$(GO) test -run '^$$' -bench . -benchmem . | tee /tmp/bench_repro.txt
	./scripts/bench_json.sh /tmp/bench_repro.txt scripts/seed_baseline.bench > BENCH_repro.json
	@echo wrote BENCH_repro.json

experiments:
	$(GO) run ./cmd/experiments
