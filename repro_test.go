package repro

import (
	"math"
	"sync"
	"testing"

	"repro/internal/features"
)

// The experiment tests share one moderate enterprise so the suite
// stays fast; shapes asserted here are the paper's qualitative
// claims, which must hold at this scale too.
var (
	testEntOnce sync.Once
	testEnt     *Enterprise
)

func testEnterprise(t testing.TB) *Enterprise {
	t.Helper()
	testEntOnce.Do(func() {
		ent, err := NewEnterprise(Options{Users: 100, Weeks: 2, Seed: 1})
		if err != nil {
			panic(err)
		}
		ent.Materialize()
		testEnt = ent
	})
	return testEnt
}

func TestNewEnterpriseValidation(t *testing.T) {
	if _, err := NewEnterprise(Options{}); err == nil {
		t.Fatal("empty options accepted")
	}
	if _, err := NewEnterprise(Options{Users: 1, Weeks: 0}); err == nil {
		t.Fatal("zero weeks accepted")
	}
}

func TestEnterpriseAccessors(t *testing.T) {
	e := testEnterprise(t)
	if e.Users() != 100 {
		t.Fatalf("Users = %d", e.Users())
	}
	m := e.Matrix(5)
	if m.Weeks() != 2 {
		t.Fatalf("weeks = %d", m.Weeks())
	}
	// Matrix is cached: same pointer on second call.
	if e.Matrix(5) != m {
		t.Fatal("Matrix not cached")
	}
	train, test := e.TrainTest(features.TCP, 0, 1)
	if len(train) != 100 || len(test) != 100 {
		t.Fatalf("train/test sizes: %d/%d", len(train), len(test))
	}
	if len(train[0]) != 672 || len(test[0]) != 672 {
		t.Fatalf("series lengths: %d/%d", len(train[0]), len(test[0]))
	}
	d, err := e.Distribution(3, features.UDP, 1)
	if err != nil || d.N() != 672 {
		t.Fatalf("Distribution: %v, %v", d, err)
	}
}

func TestAttackSweepShape(t *testing.T) {
	e := testEnterprise(t)
	sweep := e.AttackSweep(features.TCP, 0, 20)
	if len(sweep) != 20 {
		t.Fatalf("sweep length %d", len(sweep))
	}
	if sweep[0] != 1 {
		t.Fatalf("sweep starts at %g", sweep[0])
	}
	for i := 1; i < len(sweep); i++ {
		if sweep[i] <= sweep[i-1] {
			t.Fatalf("sweep not increasing at %d: %v", i, sweep)
		}
	}
	// Top of sweep is the max training value across users.
	var max float64
	for u := 0; u < e.Users(); u++ {
		m := e.Matrix(u)
		lo, hi := m.WeekRange(0)
		for b := lo; b < hi; b++ {
			if v := m.Rows[b][features.TCP]; v > max {
				max = v
			}
		}
	}
	if math.Abs(sweep[len(sweep)-1]-max)/max > 1e-9 {
		t.Fatalf("sweep max %g != population max %g", sweep[len(sweep)-1], max)
	}
}

func TestFig1Shapes(t *testing.T) {
	e := testEnterprise(t)
	res, err := Fig1(e, DefaultExperimentConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Panels) != features.NumFeatures {
		t.Fatalf("%d panels", len(res.Panels))
	}
	var tcpSpread, dnsSpread float64
	for _, p := range res.Panels {
		if len(p.P99) != e.Users() || len(p.P999) != e.Users() {
			t.Fatalf("%s: wrong lengths", p.Feature)
		}
		// Sorted ascending; P999 dominates P99 in distribution (check
		// at the quartiles, pointwise can cross after sorting).
		for i := 1; i < len(p.P99); i++ {
			if p.P99[i] < p.P99[i-1] {
				t.Fatalf("%s: P99 not sorted", p.Feature)
			}
		}
		q := len(p.P99) / 4
		if p.P999[q] < p.P99[q] || p.P999[3*q] < p.P99[3*q] {
			t.Fatalf("%s: P999 below P99 at quartiles", p.Feature)
		}
		switch p.Feature {
		case features.TCP:
			tcpSpread = p.SpreadDecades
		case features.DNS:
			dnsSpread = p.SpreadDecades
		}
	}
	// Fig 1's headline: broad TCP spread, visibly narrower DNS spread.
	if tcpSpread < 1.8 {
		t.Errorf("TCP spread %.2f decades too narrow", tcpSpread)
	}
	if dnsSpread >= tcpSpread {
		t.Errorf("DNS spread %.2f not below TCP %.2f (Fig 1d vs 1a)", dnsSpread, tcpSpread)
	}
	if res.String() == "" {
		t.Error("empty rendering")
	}
}

func TestFig2Shapes(t *testing.T) {
	e := testEnterprise(t)
	res, err := Fig2(e, DefaultExperimentConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.TCP99) != e.Users() || len(res.UDP99) != e.Users() {
		t.Fatal("wrong point count")
	}
	// Correlated but far from identical (Fig 2's scatter).
	if res.RankCorrelation <= 0.1 || res.RankCorrelation >= 0.95 {
		t.Errorf("rank correlation %.2f outside (0.1, 0.95)", res.RankCorrelation)
	}
	if res.String() == "" {
		t.Error("empty rendering")
	}
}

func TestTable2Shapes(t *testing.T) {
	e := testEnterprise(t)
	res, err := Table2(e, DefaultExperimentConfig())
	if err != nil {
		t.Fatal(err)
	}
	for _, list := range [][]int{res.FullUDP, res.FullTCP, res.PartialUDP, res.PartialTCP} {
		if len(list) != 10 {
			t.Fatalf("best list length %d", len(list))
		}
	}
	// The paper's point: the lists differ across features (overlap
	// well below 10).
	if res.FullOverlap > 8 {
		t.Errorf("full-diversity best-user overlap %d/10; want partial overlap", res.FullOverlap)
	}
	if res.PartialOverlap > 8 {
		t.Errorf("8-partial best-user overlap %d/10; want partial overlap", res.PartialOverlap)
	}
	if res.String() == "" {
		t.Error("empty rendering")
	}
}

func TestFig3aShapes(t *testing.T) {
	e := testEnterprise(t)
	res, err := Fig3a(e, DefaultExperimentConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Boxplots) != 3 {
		t.Fatalf("%d boxplots", len(res.Boxplots))
	}
	homog, div, part := res.Boxplots[0], res.Boxplots[1], res.Boxplots[2]
	// Diversity's median utility beats homogeneous (Fig 3a headline).
	if div.Median <= homog.Median {
		t.Errorf("diversity median %.3f not above homogeneous %.3f", div.Median, homog.Median)
	}
	// 8-partial close to full diversity: within half the
	// homogeneous-diversity gap.
	gap := div.Median - homog.Median
	if part.Median < homog.Median-0.01 {
		t.Errorf("8-partial median %.3f below homogeneous %.3f", part.Median, homog.Median)
	}
	if div.Median-part.Median > gap+0.02 {
		t.Errorf("8-partial median %.3f too far from diversity %.3f", part.Median, div.Median)
	}
	if res.String() == "" {
		t.Error("empty rendering")
	}
}

func TestFig3bShapes(t *testing.T) {
	e := testEnterprise(t)
	res, err := Fig3b(e, DefaultExperimentConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.W) != 9 || len(res.Mean) != 3 {
		t.Fatalf("shape: %d weights, %d policies", len(res.W), len(res.Mean))
	}
	gapLo, gapHi := res.Gap()
	// Fig 3(b) headline: the diversity advantage grows with w.
	if gapHi <= gapLo {
		t.Errorf("gap does not grow with w: %.4f -> %.4f", gapLo, gapHi)
	}
	// Diversity dominates homogeneous at every w.
	for k := range res.W {
		if res.Mean[1][k] < res.Mean[0][k]-1e-9 {
			t.Errorf("diversity below homogeneous at w=%.1f", res.W[k])
		}
	}
	if res.String() == "" {
		t.Error("empty rendering")
	}
}

func TestTable3Shapes(t *testing.T) {
	e := testEnterprise(t)
	res, err := Table3(e, DefaultExperimentConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Alarms) != 2 {
		t.Fatalf("%d heuristic rows", len(res.Alarms))
	}
	// Percentile row: homogeneous sends the most false alarms;
	// diversity policies reduce the console load (Table 3's claim).
	pct := res.Alarms[0]
	if pct[1] >= pct[0] {
		t.Errorf("full diversity alarms %d not below homogeneous %d", pct[1], pct[0])
	}
	if pct[2] >= pct[0] {
		t.Errorf("8-partial alarms %d not below homogeneous %d", pct[2], pct[0])
	}
	if res.String() == "" {
		t.Error("empty rendering")
	}
}

func TestFig4aShapes(t *testing.T) {
	e := testEnterprise(t)
	res, err := Fig4a(e, DefaultExperimentConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Fraction) != 3 || len(res.Fraction[0]) != len(res.Sizes) {
		t.Fatal("shape mismatch")
	}
	last := len(res.Sizes) - 1
	for p, series := range res.Fraction {
		// Monotone non-decreasing in attack size (within tolerance:
		// the day-sampling is deterministic, so this is exact).
		for k := 1; k < len(series); k++ {
			if series[k] < series[k-1]-1e-9 {
				t.Errorf("policy %d: detection drops at size %g", p, res.Sizes[k])
			}
		}
		// Everyone detects the largest attack ("clearly exceeds
		// normal behavior").
		if series[last] < 0.95 {
			t.Errorf("policy %d: max-size detection %.2f", p, series[last])
		}
	}
	// Stealthy range (sizes <= 100): diversity far above homogeneous.
	var stealthGapSeen bool
	for k, s := range res.Sizes {
		if s > 100 {
			break
		}
		if res.Fraction[1][k] > res.Fraction[0][k]+0.15 {
			stealthGapSeen = true
		}
	}
	if !stealthGapSeen {
		t.Error("no stealth-detection advantage for diversity (Fig 4a)")
	}
	if res.String() == "" {
		t.Error("empty rendering")
	}
}

func TestFig4bShapes(t *testing.T) {
	e := testEnterprise(t)
	res, err := Fig4b(e, DefaultExperimentConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Boxplots) != 3 {
		t.Fatalf("%d boxplots", len(res.Boxplots))
	}
	// Diversity slashes the resourceful attacker's hidden traffic
	// (paper: homogeneous median ~3x the diversity median).
	if r := res.MedianRatio(); r < 1.5 {
		t.Errorf("homogeneous/diversity hidden-traffic ratio %.2f, want > 1.5", r)
	}
	// 8-partial also restricts the attacker vs homogeneous.
	if res.Boxplots[2].Median >= res.Boxplots[0].Median {
		t.Errorf("8-partial median %.1f not below homogeneous %.1f",
			res.Boxplots[2].Median, res.Boxplots[0].Median)
	}
	if res.String() == "" {
		t.Error("empty rendering")
	}
}

func TestFig5aShapes(t *testing.T) {
	e := testEnterprise(t)
	res, err := Fig5a(e, DefaultExperimentConfig())
	if err != nil {
		t.Fatal(err)
	}
	for i := range res.Points {
		if len(res.Points[i]) != e.Users() {
			t.Fatalf("panel %d: %d points", i, len(res.Points[i]))
		}
		for _, p := range res.Points[i] {
			if p.FP < 0 || p.FP > 1 || p.DetectionRate < 0 || p.DetectionRate > 1 {
				t.Fatalf("point out of range: %+v", p)
			}
		}
	}
	_, detHomog := res.Summary(0)
	fpQDiv, detDiv := res.Summary(1)
	// Diversity pins the bulk FP near the 1% target...
	if fpQDiv[1] > 0.04 {
		t.Errorf("diversity median FP %.3f far from 1%% target", fpQDiv[1])
	}
	// ...and detects the Storm bot better than the monoculture.
	if detDiv <= detHomog {
		t.Errorf("diversity median detection %.2f not above homogeneous %.2f", detDiv, detHomog)
	}
	if res.String() == "" {
		t.Error("empty rendering")
	}
}

func TestFig5bShapes(t *testing.T) {
	e := testEnterprise(t)
	res, err := Fig5b(e, DefaultExperimentConfig())
	if err != nil {
		t.Fatal(err)
	}
	_, detDiv := res.Summary(0)
	fpQPart, detPart := res.Summary(1)
	// 8-partial detection close to full diversity (within 0.15).
	if math.Abs(detDiv-detPart) > 0.15 {
		t.Errorf("8-partial detection %.2f far from diversity %.2f", detPart, detDiv)
	}
	// 8-partial FP bounded to a small range, like diversity.
	if fpQPart[3] > 0.1 {
		t.Errorf("8-partial q98 FP %.3f too high", fpQPart[3])
	}
	if res.String() == "" {
		t.Error("empty rendering")
	}
}

func TestPoliciesOrder(t *testing.T) {
	pols := Policies(nil)
	if len(pols) != 3 {
		t.Fatalf("%d policies", len(pols))
	}
	names := []string{"homogeneous", "full-diversity", "8-partial"}
	for i, p := range pols {
		if p.Grouping.Name() != names[i] {
			t.Fatalf("policy %d grouping %q, want %q", i, p.Grouping.Name(), names[i])
		}
	}
}

func TestGeomSpace(t *testing.T) {
	v := geomSpace(1, 100, 3)
	want := []float64{1, 10, 100}
	for i := range want {
		if math.Abs(v[i]-want[i]) > 1e-9 {
			t.Fatalf("geomSpace = %v", v)
		}
	}
	if one := geomSpace(1, 50, 1); len(one) != 1 || one[0] != 50 {
		t.Fatalf("geomSpace n=1: %v", one)
	}
}
