package repro

// One benchmark per paper table/figure (the names match DESIGN.md's
// per-experiment index), plus ablation benches for the design choices
// DESIGN.md §5 calls out. Each bench measures the analysis cost on a
// paper-scale enterprise (350 users); trace materialization is done
// once, outside the timed region, so the numbers isolate the
// policy/evaluation machinery.
//
// Run with:
//
//	go test -bench=. -benchmem .

import (
	"fmt"
	"math"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/features"
	"repro/internal/snapshot"
	"repro/internal/stats"
	"repro/internal/xrand"
)

var (
	benchEntOnce sync.Once
	benchEnt     *Enterprise
)

// benchEnterprise returns the shared paper-scale enterprise: 350
// users, 2 weeks (train + test).
func benchEnterprise(b *testing.B) *Enterprise {
	b.Helper()
	benchEntOnce.Do(func() {
		ent, err := NewEnterprise(Options{Users: 350, Weeks: 2, Seed: 1})
		if err != nil {
			panic(err)
		}
		ent.Materialize()
		benchEnt = ent
	})
	return benchEnt
}

func BenchmarkFig1TailDiversity(b *testing.B) {
	e := benchEnterprise(b)
	cfg := DefaultExperimentConfig()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Fig1(e, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig2FeatureScatter(b *testing.B) {
	e := benchEnterprise(b)
	cfg := DefaultExperimentConfig()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Fig2(e, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable2BestUsers(b *testing.B) {
	e := benchEnterprise(b)
	cfg := DefaultExperimentConfig()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Table2(e, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig3aUtilityBoxplots(b *testing.B) {
	e := benchEnterprise(b)
	cfg := DefaultExperimentConfig()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Fig3a(e, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig3bUtilityVsWeight(b *testing.B) {
	e := benchEnterprise(b)
	cfg := DefaultExperimentConfig()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Fig3b(e, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable3ConsoleAlarms(b *testing.B) {
	e := benchEnterprise(b)
	cfg := DefaultExperimentConfig()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Table3(e, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig4aNaiveAttacker(b *testing.B) {
	e := benchEnterprise(b)
	cfg := DefaultExperimentConfig()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Fig4a(e, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig4bResourcefulAttacker(b *testing.B) {
	e := benchEnterprise(b)
	cfg := DefaultExperimentConfig()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Fig4b(e, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig5aStormHomogVsDiversity(b *testing.B) {
	e := benchEnterprise(b)
	cfg := DefaultExperimentConfig()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Fig5a(e, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFig5bStormDiversityVs8Partial(b *testing.B) {
	e := benchEnterprise(b)
	cfg := DefaultExperimentConfig()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Fig5b(e, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// ---------------------------------------------------------------------------
// Ablations (DESIGN.md §5)

// BenchmarkAblationBinWidth re-runs the Fig 3(a) pipeline at a
// 5-minute aggregation window (the paper's alternative binning) on a
// smaller population; the reported metric of interest is printed via
// b.ReportMetric as the diversity-minus-homogeneous utility gap.
func BenchmarkAblationBinWidth(b *testing.B) {
	for _, width := range []time.Duration{5 * time.Minute, 15 * time.Minute} {
		b.Run(width.String(), func(b *testing.B) {
			ent, err := NewEnterprise(Options{Users: 60, Weeks: 2, Seed: 5, BinWidth: width})
			if err != nil {
				b.Fatal(err)
			}
			ent.Materialize()
			cfg := DefaultExperimentConfig()
			b.ResetTimer()
			var gap float64
			for i := 0; i < b.N; i++ {
				res, err := Fig3a(ent, cfg)
				if err != nil {
					b.Fatal(err)
				}
				gap = res.Boxplots[1].Median - res.Boxplots[0].Median
			}
			b.ReportMetric(gap, "utility-gap")
		})
	}
}

// BenchmarkAblationGroupCount sweeps the partial-diversity group
// count (2, 3, 5, 8 — the paper's §5 settings) and reports the mean
// utility each achieves.
func BenchmarkAblationGroupCount(b *testing.B) {
	e := benchEnterprise(b)
	cfg := DefaultExperimentConfig()
	train, test := e.TrainTest(cfg.Feature, cfg.TrainWeek, cfg.TestWeek)
	sweep := e.AttackSweep(cfg.Feature, cfg.TrainWeek, cfg.SweepPoints)
	overlay := make([][]float64, len(test))
	for u := range overlay {
		overlay[u] = sweepOverlay(len(test[u]), sweep)
	}
	for _, k := range []int{2, 3, 5, 8} {
		b.Run(core.PartialDiversity{NumGroups: k}.Name(), func(b *testing.B) {
			var mean float64
			for i := 0; i < b.N; i++ {
				res, err := core.EvaluatePolicy(core.EvalInput{
					Train: train, Test: test, Attack: overlay,
					AttackMagnitudes: sweep,
					Policy: core.Policy{
						Heuristic: core.Percentile{Q: 0.99},
						Grouping:  core.PartialDiversity{NumGroups: k},
					},
				})
				if err != nil {
					b.Fatal(err)
				}
				mean = res.MeanUtility(cfg.UtilityW)
			}
			b.ReportMetric(mean, "mean-utility")
		})
	}
}

// BenchmarkAblationHeuristics compares the threshold heuristic
// families of §4 under full diversity.
func BenchmarkAblationHeuristics(b *testing.B) {
	e := benchEnterprise(b)
	cfg := DefaultExperimentConfig()
	train, test := e.TrainTest(cfg.Feature, cfg.TrainWeek, cfg.TestWeek)
	sweep := e.AttackSweep(cfg.Feature, cfg.TrainWeek, cfg.SweepPoints)
	overlay := make([][]float64, len(test))
	for u := range overlay {
		overlay[u] = sweepOverlay(len(test[u]), sweep)
	}
	for _, h := range []core.Heuristic{
		core.Percentile{Q: 0.99},
		core.Percentile{Q: 0.999},
		core.MeanSigma{K: 3},
		core.UtilityOptimal{W: 0.4},
		core.FMeasureOptimal{},
	} {
		b.Run(h.Name(), func(b *testing.B) {
			var mean float64
			for i := 0; i < b.N; i++ {
				res, err := core.EvaluatePolicy(core.EvalInput{
					Train: train, Test: test, Attack: overlay,
					AttackMagnitudes: sweep,
					Policy:           core.Policy{Heuristic: h, Grouping: core.FullDiversity{}},
				})
				if err != nil {
					b.Fatal(err)
				}
				mean = res.MeanUtility(cfg.UtilityW)
			}
			b.ReportMetric(mean, "mean-utility")
		})
	}
}

// BenchmarkHeuristicThreshold isolates one Threshold call per
// heuristic family on a single user-week training column (672
// windows) with the standard 24-point attack sweep — the unit of work
// the threshold-frontier engine optimizes. Percentile is the
// O(1)-after-sort floor the objective heuristics are measured
// against.
func BenchmarkHeuristicThreshold(b *testing.B) {
	r := xrand.New(41)
	v := make([]float64, 672)
	for i := range v {
		v[i] = math.Floor(r.LogNormal(3, 1.2))
	}
	train := stats.MustEmpirical(v)
	sweep := geomSpace(1, train.Max(), 24)
	for _, tc := range []struct {
		name string
		h    core.Heuristic
	}{
		{"percentile", core.Percentile{Q: 0.99}},
		{"utility", core.UtilityOptimal{W: 0.4}},
		{"f-measure", core.FMeasureOptimal{}},
	} {
		b.Run(tc.name, func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := tc.h.Threshold(train, sweep); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAblationDrift measures the week-over-week threshold
// instability the paper reports in §6.1: the mean realized FP rate
// when a 99th-percentile threshold from week 1 is applied to week 2
// (nominal would be exactly 0.01).
func BenchmarkAblationDrift(b *testing.B) {
	e := benchEnterprise(b)
	train, test := e.TrainTest(features.TCP, 0, 1)
	var realized float64
	for i := 0; i < b.N; i++ {
		var sum float64
		for u := range train {
			d := stats.MustEmpirical(train[u])
			thr := d.MustQuantile(0.99)
			sum += core.FalsePositiveRate(test[u], thr)
		}
		realized = sum / float64(len(train))
	}
	b.ReportMetric(realized, "realized-FP")
}

// BenchmarkEnterpriseGeneration measures the trace generator's fast
// path end to end: one user-week of all six features.
func BenchmarkEnterpriseGeneration(b *testing.B) {
	for i := 0; i < b.N; i++ {
		ent, err := NewEnterprise(Options{Users: 1, Weeks: 1, Seed: uint64(i + 1)})
		if err != nil {
			b.Fatal(err)
		}
		_ = ent.Matrix(0)
	}
}

// BenchmarkGenerateUsers5000 measures the fused batch materialization
// at ROADMAP scale: 5000 users × 1 week generated by the week-batched
// engine straight into a warmed columnar workspace (matrices plus
// every sorted feature-week column). The user-bins/s metric is the
// generation-throughput figure EXPERIMENTS.md tracks.
func BenchmarkGenerateUsers5000(b *testing.B) {
	const users, weeks = 5000, 1
	for i := 0; i < b.N; i++ {
		ent, err := NewEnterprise(Options{Users: users, Weeks: weeks, Seed: uint64(i + 1)})
		if err != nil {
			b.Fatal(err)
		}
		ent.Materialize()
	}
	bins := float64(users) * float64(weeks) * 672
	b.ReportMetric(bins*float64(b.N)/b.Elapsed().Seconds(), "user-bins/s")
}

// ---------------------------------------------------------------------------
// Snapshot store (cold vs warm materialization)

// BenchmarkSnapshotLoad5000 measures the warm path at ROADMAP scale:
// mapping the 5000-user × 2-week workspace back from a sealed
// snapshot (header + checksum validation plus zero-copy view
// construction) through the public enterprise API. The snapshot is
// written once outside the timed region; the cold counterpart of this
// number is scaleEnterprise's Materialize (see EXPERIMENTS.md's
// cold-vs-warm table).
func BenchmarkSnapshotLoad5000(b *testing.B) {
	if testing.Short() {
		b.Skip("snapshot setup saves a ~1 GB store; skipped in short mode (CI bench-smoke)")
	}
	e := scaleEnterprise(b)
	dir := b.TempDir()
	if _, err := e.SaveSnapshot(dir); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ent, err := NewEnterprise(Options{Users: 5000, Weeks: 2, Seed: 1, SnapshotDir: dir})
		if err != nil {
			b.Fatal(err)
		}
		ent.Materialize()
		b.StopTimer()
		if err := ent.Close(); err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
	}
}

// BenchmarkMaterializeSharded20000 measures the cold sharded path at
// 4x ROADMAP scale: 20000 users × 1 week streamed through
// 1024-user shards into a snapshot and mapped back, so peak heap
// stays bounded by the shard buffer while the full enterprise lands
// on disk. Each iteration writes a fresh store (a second pass over
// the same directory would be a warm hit and measure nothing).
func BenchmarkMaterializeSharded20000(b *testing.B) {
	if testing.Short() {
		b.Skip("writes a ~2 GB store per iteration; skipped in short mode (CI bench-smoke)")
	}
	const users, weeks = 20000, 1
	root := b.TempDir()
	for i := 0; i < b.N; i++ {
		dir := filepath.Join(root, fmt.Sprint(i))
		ent, err := NewEnterprise(Options{
			Users: users, Weeks: weeks, Seed: uint64(i + 1),
			SnapshotDir: dir, SnapshotShard: 1024,
		})
		if err != nil {
			b.Fatal(err)
		}
		ent.Materialize()
		b.StopTimer()
		if err := ent.Close(); err != nil {
			b.Fatal(err)
		}
		if err := os.RemoveAll(dir); err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
	}
	bins := float64(users) * float64(weeks) * 672
	b.ReportMetric(bins*float64(b.N)/b.Elapsed().Seconds(), "user-bins/s")
}

// BenchmarkOpenUser20000 measures the manifest-backed O(record) read
// at 4x ROADMAP scale: fetching one user's record from a sealed
// 20000-user store validates the manifest plus the one 128-user
// integrity shard containing the record, never the other ~2 GB of
// payload. The full-open-x metric is the contrast the ISSUE pins:
// how many times cheaper this is than snapshot.Open, which checksums
// and maps the entire store (measured here outside the timed region).
func BenchmarkOpenUser20000(b *testing.B) {
	if testing.Short() {
		b.Skip("setup writes a ~2 GB store; skipped in short mode (CI bench-smoke)")
	}
	const users, weeks = 20000, 1
	dir := b.TempDir()
	ent, err := NewEnterprise(Options{
		Users: users, Weeks: weeks, Seed: 1,
		SnapshotDir: dir, SnapshotShard: 1024, SnapshotWorkers: 4,
	})
	if err != nil {
		b.Fatal(err)
	}
	ent.Materialize()
	key, err := ent.snapshotKey()
	if err != nil {
		b.Fatal(err)
	}
	if err := ent.Close(); err != nil {
		b.Fatal(err)
	}
	// Warm reads are the pinned number: cycle a fixed set of users
	// (16 distinct integrity shards, faulted in before the timer) so
	// the loop measures the validation-work asymmetry — manifest plus
	// one 128-user shard versus the whole store — and not the page
	// cache state the preceding multi-gigabyte benches left behind.
	openUser := func(i int) {
		u := (i % 16) * (users / 16)
		rec, err := snapshot.OpenUser(dir, key, u)
		if err != nil {
			b.Fatal(err)
		}
		_ = rec.Record()[0]
	}
	for i := 0; i < 16; i++ {
		openUser(i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		openUser(i)
	}
	perUser := b.Elapsed().Seconds() / float64(b.N)
	b.StopTimer()
	const fullOpens = 3
	start := time.Now()
	for i := 0; i < fullOpens; i++ {
		s, err := snapshot.Open(dir, key)
		if err != nil {
			b.Fatal(err)
		}
		s.Close()
	}
	full := time.Since(start).Seconds() / fullOpens
	b.ReportMetric(full/perUser, "full-open-x")
}

// benchPeakRSS reads the process peak resident set (VmHWM) so the
// bounded-heap benches can report what streaming actually bounds —
// mapped snapshot pages count toward RSS but never toward Go heap
// metrics. Best-effort: 0 where /proc is unavailable.
func benchPeakRSS() float64 {
	raw, err := os.ReadFile("/proc/self/status")
	if err != nil {
		return 0
	}
	for _, line := range strings.Split(string(raw), "\n") {
		if f := strings.Fields(line); len(f) >= 2 && f[0] == "VmHWM:" {
			kb, err := strconv.ParseFloat(f[1], 64)
			if err != nil {
				return 0
			}
			return kb * 1024
		}
	}
	return 0
}

// benchResetPeakRSS rearms VmHWM ("5" in clear_refs) so the reported
// peak excludes setup (store seeding faults in far more than the
// bounded evaluation ever will). Best-effort.
func benchResetPeakRSS() {
	os.WriteFile("/proc/self/clear_refs", []byte("5"), 0o200)
}

// BenchmarkEvaluateSharded100k is the bounded-heap guard at the
// ISSUE's target scale: a 100k-user × 2-week store analyzed end to
// end (map + validate, streaming Fig3a configure/evaluate, Table3)
// through 512-user shards, with the peak-rss-bytes metric recording
// what the shard-by-shard iteration actually held resident. The store
// is seeded once outside the timed region (REPRO_BENCH_STORE reuses a
// prior seeding across runs; default seeds a temp dir, ~19 GB).
func BenchmarkEvaluateSharded100k(b *testing.B) {
	if testing.Short() {
		b.Skip("seeds a ~19 GB store; skipped in short mode (CI bench-smoke)")
	}
	const users, weeks = 100_000, 2
	dir := os.Getenv("REPRO_BENCH_STORE")
	if dir == "" {
		dir = b.TempDir()
	}
	seed, err := NewEnterprise(Options{
		Users: users, Weeks: weeks, Seed: 1,
		SnapshotDir: dir, SnapshotShard: 1024,
	})
	if err != nil {
		b.Fatal(err)
	}
	seed.Materialize()
	if err := seed.Close(); err != nil {
		b.Fatal(err)
	}
	cfg := DefaultExperimentConfig()
	benchResetPeakRSS()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		ent, err := NewEnterprise(Options{
			Users: users, Weeks: weeks, Seed: 1,
			SnapshotDir: dir, StreamShard: 512,
		})
		if err != nil {
			b.Fatal(err)
		}
		ent.Materialize()
		if _, err := Fig3a(ent, cfg); err != nil {
			b.Fatal(err)
		}
		if _, err := Table3(ent, cfg); err != nil {
			b.Fatal(err)
		}
		b.StopTimer()
		if err := ent.Close(); err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
	}
	b.ReportMetric(benchPeakRSS(), "peak-rss-bytes")
}

// ---------------------------------------------------------------------------
// Scale (ROADMAP north star)

var (
	scaleEntOnce sync.Once
	scaleEnt     *Enterprise
)

// scaleEnterprise returns a shared 5000-user enterprise — 14x the
// paper's population. Before the columnar workspace this scale was
// impractical: every runner re-copied and re-sorted 5000 x 672
// columns per (feature, quantile) pair.
func scaleEnterprise(b *testing.B) *Enterprise {
	b.Helper()
	scaleEntOnce.Do(func() {
		ent, err := NewEnterprise(Options{Users: 5000, Weeks: 2, Seed: 1})
		if err != nil {
			panic(err)
		}
		ent.Materialize()
		scaleEnt = ent
	})
	return scaleEnt
}

func BenchmarkScaleFig1Users5000(b *testing.B) {
	e := scaleEnterprise(b)
	cfg := DefaultExperimentConfig()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Fig1(e, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkScaleFig3aUsers5000(b *testing.B) {
	e := scaleEnterprise(b)
	cfg := DefaultExperimentConfig()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Fig3a(e, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkScaleFig3bUsers5000(b *testing.B) {
	e := scaleEnterprise(b)
	cfg := DefaultExperimentConfig()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Fig3b(e, cfg); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkScaleTable3Users5000(b *testing.B) {
	e := scaleEnterprise(b)
	cfg := DefaultExperimentConfig()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Table3(e, cfg); err != nil {
			b.Fatal(err)
		}
	}
}
