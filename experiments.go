package repro

import (
	"fmt"
	"math"
	"sort"
	"strings"

	"repro/internal/analysis"
	"repro/internal/attack"
	"repro/internal/core"
	"repro/internal/features"
	"repro/internal/par"
	"repro/internal/stats"
)

// ExperimentConfig holds the common parameters of the §6 evaluation.
type ExperimentConfig struct {
	// TrainWeek and TestWeek implement the week-n-train /
	// week-n+1-test methodology.
	TrainWeek, TestWeek int
	// Feature is the feature under evaluation where the paper fixes
	// one (TCP connections for Fig 3/4, distinct connections for
	// Fig 5).
	Feature features.Feature
	// UtilityW is the false-negative weight of the utility heuristic
	// (the paper uses 0.4 for Fig 3a and Table 3).
	UtilityW float64
	// EvadeProb is the resourceful attacker's per-window evasion
	// target (the paper uses 0.9).
	EvadeProb float64
	// SweepPoints is the resolution of attack-size sweeps.
	SweepPoints int
	// Seed drives experiment-level randomness (attack placement,
	// Storm synthesis) independently of the population seed.
	Seed uint64
}

// DefaultExperimentConfig returns the paper's settings.
func DefaultExperimentConfig() ExperimentConfig {
	return ExperimentConfig{
		TrainWeek:   0,
		TestWeek:    1,
		Feature:     features.TCP,
		UtilityW:    0.4,
		EvadeProb:   0.9,
		SweepPoints: 24,
		Seed:        0xf1f0,
	}
}

// ---------------------------------------------------------------------------
// Fig 1 — tail diversity across features

// Fig1Feature is one panel of Fig 1: the sorted per-user thresholds.
type Fig1Feature struct {
	Feature features.Feature
	// P99 and P999 are per-user 99th / 99.9th percentile thresholds,
	// each sorted ascending ("User ID arranged by tail diversity").
	P99, P999 []float64
	// SpreadDecades is log10(p98 / p2) of the P99 values: how many
	// orders of magnitude the population's thresholds span.
	SpreadDecades float64
}

// Fig1Result reproduces Fig 1(a)-(f).
type Fig1Result struct {
	Panels []Fig1Feature
}

// Fig1 computes per-user 99th and 99.9th percentile thresholds for
// all six features over the training week. The per-feature panels
// come from the workspace's memoized per-user quantile vectors and
// build in parallel.
func Fig1(e *Enterprise, cfg ExperimentConfig) (*Fig1Result, error) {
	all := features.All()
	res := &Fig1Result{Panels: make([]Fig1Feature, len(all))}
	err := par.ForEachErr(len(all), 0, func(i int) error {
		f := all[i]
		p99, err := e.TailStats(f, cfg.TrainWeek, 0.99)
		if err != nil {
			return err
		}
		p999, err := e.TailStats(f, cfg.TrainWeek, 0.999)
		if err != nil {
			return err
		}
		sort.Float64s(p99)
		sort.Float64s(p999)
		res.Panels[i] = Fig1Feature{
			Feature:       f,
			P99:           p99,
			P999:          p999,
			SpreadDecades: spreadDecades(p99),
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return res, nil
}

// spreadDecades reads the 2nd/98th percentiles straight off an
// already-sorted slice via the stats fast path (no copy-and-sort).
func spreadDecades(sorted []float64) float64 {
	lo, err := stats.QuantileSorted(sorted, 0.02)
	if err != nil {
		return 0
	}
	hi, _ := stats.QuantileSorted(sorted, 0.98)
	if lo < 1 {
		lo = 1
	}
	if hi <= lo {
		return 0
	}
	return math.Log10(hi / lo)
}

// String renders one line per feature with the threshold range.
func (r *Fig1Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig 1 — per-user 99th/99.9th percentile thresholds (sorted)\n")
	for _, p := range r.Panels {
		n := len(p.P99)
		fmt.Fprintf(&b, "  %-26s p99 range [%.3g .. %.3g] median %.3g  spread %.1f decades\n",
			p.Feature, p.P99[0], p.P99[n-1], p.P99[n/2], p.SpreadDecades)
	}
	return b.String()
}

// ---------------------------------------------------------------------------
// Fig 2 — per-user TCP vs UDP fringe comparison

// Fig2Result reproduces Fig 2: each point is one user.
type Fig2Result struct {
	// TCP99 and UDP99 are aligned per-user 99th percentiles.
	TCP99, UDP99 []float64
	// RankCorrelation is the Spearman correlation between the two —
	// well below 1, or the scatter of Fig 2 could not exist.
	RankCorrelation float64
}

// Fig2 computes the per-user (TCP q99, UDP q99) scatter.
func Fig2(e *Enterprise, cfg ExperimentConfig) (*Fig2Result, error) {
	tcp, err := e.TailStats(features.TCP, cfg.TrainWeek, 0.99)
	if err != nil {
		return nil, err
	}
	udp, err := e.TailStats(features.UDP, cfg.TrainWeek, 0.99)
	if err != nil {
		return nil, err
	}
	return &Fig2Result{
		TCP99:           tcp,
		UDP99:           udp,
		RankCorrelation: stats.Spearman(tcp, udp),
	}, nil
}

// String summarizes the scatter.
func (r *Fig2Result) String() string {
	// Count users in the "corners": TCP-heavy/UDP-light and converse.
	te := stats.MustEmpirical(r.TCP99)
	ue := stats.MustEmpirical(r.UDP99)
	tHi, tLo := te.MustQuantile(0.75), te.MustQuantile(0.25)
	uHi, uLo := ue.MustQuantile(0.75), ue.MustQuantile(0.25)
	var tcpHeavyUDPLight, udpHeavyTCPLight int
	for i := range r.TCP99 {
		if r.TCP99[i] >= tHi && r.UDP99[i] <= uLo {
			tcpHeavyUDPLight++
		}
		if r.UDP99[i] >= uHi && r.TCP99[i] <= tLo {
			udpHeavyTCPLight++
		}
	}
	return fmt.Sprintf("Fig 2 — per-user fringe comparison: %d users, Spearman %.2f, "+
		"%d TCP-heavy/UDP-light, %d UDP-heavy/TCP-light\n",
		len(r.TCP99), r.RankCorrelation, tcpHeavyUDPLight, udpHeavyTCPLight)
}

// ---------------------------------------------------------------------------
// Table 2 — best users per alarm type

// Table2Result reproduces Table 2: the identities of the 10 users
// with the lowest thresholds per feature, under full and 8-partial
// diversity, and the cross-feature overlaps.
type Table2Result struct {
	FullUDP, FullTCP       []int
	PartialUDP, PartialTCP []int
	FullOverlap            int
	PartialOverlap         int
}

// Table2 computes the best-user lists from the workspace's memoized
// distributions and cached threshold configurations.
func Table2(e *Enterprise, cfg ExperimentConfig) (*Table2Result, error) {
	ws := e.workspace()
	best := func(f features.Feature, g core.Grouping) ([]int, error) {
		pol := core.Policy{Heuristic: core.Percentile{Q: 0.99}, Grouping: g}
		asn, err := ws.Assignment(f, cfg.TrainWeek, pol, nil, "")
		if err != nil {
			return nil, err
		}
		return asn.BestUsers(10), nil
	}
	res := &Table2Result{}
	var err error
	if res.FullUDP, err = best(features.UDP, core.FullDiversity{}); err != nil {
		return nil, err
	}
	if res.FullTCP, err = best(features.TCP, core.FullDiversity{}); err != nil {
		return nil, err
	}
	if res.PartialUDP, err = best(features.UDP, core.PartialDiversity{NumGroups: 8}); err != nil {
		return nil, err
	}
	if res.PartialTCP, err = best(features.TCP, core.PartialDiversity{NumGroups: 8}); err != nil {
		return nil, err
	}
	res.FullOverlap = core.Overlap(res.FullUDP, res.FullTCP)
	res.PartialOverlap = core.Overlap(res.PartialUDP, res.PartialTCP)
	return res, nil
}

// String renders the table.
func (r *Table2Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 2 — best users per alarm type (10 lowest thresholds)\n")
	fmt.Fprintf(&b, "  UDP  full-diversity: %v\n", r.FullUDP)
	fmt.Fprintf(&b, "  TCP  full-diversity: %v\n", r.FullTCP)
	fmt.Fprintf(&b, "  UDP  8-partial:      %v\n", r.PartialUDP)
	fmt.Fprintf(&b, "  TCP  8-partial:      %v\n", r.PartialTCP)
	fmt.Fprintf(&b, "  overlap across features: full=%d/10, partial=%d/10\n",
		r.FullOverlap, r.PartialOverlap)
	return b.String()
}

// ---------------------------------------------------------------------------
// shared evaluation plumbing for Fig 3 / Table 3

// sweepOverlay builds the paper's simulated-attack overlay: attacked
// windows carry sizes cycling through the sweep so the per-user FN
// averages across the whole size range. Every 4th window is attacked.
func sweepOverlay(bins int, sweep []float64) []float64 {
	ov := make([]float64, bins)
	k := 0
	for b := 3; b < bins; b += 4 {
		ov[b] = sweep[k%len(sweep)]
		k++
	}
	return ov
}

// evalPolicies runs the three grouping policies under one heuristic
// with the standard sweep attack and returns their results in
// Policies order. Results are memoized in the workspace (keyed by
// every parameter that feeds them), the three policies evaluate in
// parallel, and each evaluation reuses the cached train
// distributions, attack sweep and threshold configuration instead of
// re-deriving them.
func evalPolicies(e *Enterprise, cfg ExperimentConfig, h core.Heuristic) ([]*core.EvalResult, error) {
	return evalPoliciesWS(e, cfg, h, true)
}

func evalPoliciesWS(e *Enterprise, cfg ExperimentConfig, h core.Heuristic, withAttack bool) ([]*core.EvalResult, error) {
	ws := e.workspace()
	key := fmt.Sprintf("evalPolicies/%d/%d/%d/%s/%d/%t",
		int(cfg.Feature), cfg.TrainWeek, cfg.TestWeek, h.Name(), cfg.SweepPoints, withAttack)
	v, err := ws.Memo(key, func() (any, error) {
		// Streaming workspaces never materialize the whole test
		// population: EvaluateSharded scores the mapped columns shard
		// by shard instead.
		var test [][]float64
		if !ws.Streaming() {
			test = ws.Raw(cfg.Feature, cfg.TestWeek)
		}
		sweep := ws.Sweep(cfg.Feature, cfg.TrainWeek, cfg.SweepPoints)
		var shared []float64
		if withAttack {
			// Every user has the same bin count, so one overlay serves
			// the whole population.
			shared = sweepOverlay(ws.BinsPerWeek(), sweep)
		}
		sweepKey := fmt.Sprintf("sp%d", cfg.SweepPoints)
		pols := Policies(h)
		out := make([]*core.EvalResult, len(pols))
		err := par.ForEachErr(len(pols), 0, func(p int) error {
			pol := pols[p]
			asn, err := ws.Assignment(cfg.Feature, cfg.TrainWeek, pol, sweep, sweepKey)
			if err != nil {
				return fmt.Errorf("repro: policy %s: %w", pol.Name(), err)
			}
			var res *core.EvalResult
			if ws.Streaming() {
				res, err = ws.EvaluateSharded(cfg.Feature, cfg.TestWeek, asn, shared, 0)
			} else {
				var overlay [][]float64
				if shared != nil {
					overlay = make([][]float64, len(test))
					for u := range overlay {
						overlay[u] = shared
					}
				}
				res, err = core.EvaluatePolicy(core.EvalInput{
					Test:             test,
					Attack:           overlay,
					AttackMagnitudes: sweep,
					Policy:           pol,
					Assignment:       asn,
				})
			}
			if err != nil {
				return fmt.Errorf("repro: policy %s: %w", pol.Name(), err)
			}
			out[p] = res
			return nil
		})
		if err != nil {
			return nil, err
		}
		return out, nil
	})
	if err != nil {
		return nil, err
	}
	return v.([]*core.EvalResult), nil
}

// ---------------------------------------------------------------------------
// Fig 3(a) — utility boxplots per policy

// Fig3aResult reproduces Fig 3(a): the distribution of per-host
// utilities under the utility-optimal heuristic (w = 0.4) for the
// three policies.
type Fig3aResult struct {
	PolicyNames []string
	Boxplots    []stats.Boxplot
	// Utilities[p][u] is user u's utility under policy p.
	Utilities [][]float64
}

// Fig3a runs the experiment.
func Fig3a(e *Enterprise, cfg ExperimentConfig) (*Fig3aResult, error) {
	results, err := evalPolicies(e, cfg, core.UtilityOptimal{W: cfg.UtilityW})
	if err != nil {
		return nil, err
	}
	res := &Fig3aResult{}
	for i, r := range results {
		res.PolicyNames = append(res.PolicyNames, Policies(core.UtilityOptimal{W: cfg.UtilityW})[i].Name())
		u := r.Utilities(cfg.UtilityW)
		res.Utilities = append(res.Utilities, u)
		bp, err := stats.NewBoxplot(u)
		if err != nil {
			return nil, err
		}
		res.Boxplots = append(res.Boxplots, bp)
	}
	return res, nil
}

// String renders the three boxplots.
func (r *Fig3aResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig 3(a) — end-host utility boxplots (utility heuristic, w=0.4)\n")
	for i, name := range r.PolicyNames {
		fmt.Fprintf(&b, "  %-34s %s\n", name, r.Boxplots[i])
	}
	return b.String()
}

// ---------------------------------------------------------------------------
// Fig 3(b) — average utility vs w

// Fig3bResult reproduces Fig 3(b): system utility (mean across
// users) as w sweeps 0.1..0.9, per policy.
type Fig3bResult struct {
	W           []float64
	PolicyNames []string
	// Mean[p][k] is the mean utility of policy p at W[k].
	Mean [][]float64
}

// Fig3b runs the experiment. Detectors are configured once with the
// paper's w = 0.4 utility heuristic (the Fig 3a setting); the weight
// then sweeps only in the utility *evaluation*, so each policy's
// curve is linear in w and the curves diverge as w grows exactly
// when the policies' false-negative rates differ — the paper's
// stated mechanism ("when w is increased, the differences in the
// false negative rates is highlighted").
func Fig3b(e *Enterprise, cfg ExperimentConfig) (*Fig3bResult, error) {
	res := &Fig3bResult{}
	for w := 0.1; w < 0.95; w += 0.1 {
		res.W = append(res.W, math.Round(w*10)/10)
	}
	results, err := evalPolicies(e, cfg, core.UtilityOptimal{W: cfg.UtilityW})
	if err != nil {
		return nil, err
	}
	res.Mean = make([][]float64, 3)
	for p, r := range results {
		res.PolicyNames = append(res.PolicyNames, Policies(core.UtilityOptimal{W: cfg.UtilityW})[p].Name())
		for _, w := range res.W {
			res.Mean[p] = append(res.Mean[p], r.MeanUtility(w))
		}
	}
	return res, nil
}

// Gap returns homogeneous-vs-full-diversity utility gaps at the
// lowest and highest w (the quantity that must grow with w).
func (r *Fig3bResult) Gap() (atLowW, atHighW float64) {
	last := len(r.W) - 1
	return r.Mean[1][0] - r.Mean[0][0], r.Mean[1][last] - r.Mean[0][last]
}

// String renders the series.
func (r *Fig3bResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig 3(b) — average utility vs weight w\n  w:      ")
	for _, w := range r.W {
		fmt.Fprintf(&b, "%7.1f", w)
	}
	b.WriteByte('\n')
	names := []string{"homog", "fulldiv", "8-part"}
	for p, series := range r.Mean {
		fmt.Fprintf(&b, "  %-8s", names[p])
		for _, v := range series {
			fmt.Fprintf(&b, "%7.3f", v)
		}
		b.WriteByte('\n')
	}
	lo, hi := r.Gap()
	fmt.Fprintf(&b, "  diversity-vs-homogeneous gap: %.3f at w=%.1f -> %.3f at w=%.1f\n",
		lo, r.W[0], hi, r.W[len(r.W)-1])
	return b.String()
}

// ---------------------------------------------------------------------------
// Table 3 — false alarms at the central console

// Table3Result reproduces Table 3: average false alarms per week
// arriving at the console, per heuristic and policy.
type Table3Result struct {
	// Rows: heuristic name -> [homogeneous, full diversity, 8-partial].
	HeuristicNames []string
	Alarms         [][3]int
}

// Table3 runs both heuristic rows (99th percentile and utility
// w=0.4) over the three policies. False alarms are counted on the
// benign test week alone, as the console would see them.
func Table3(e *Enterprise, cfg ExperimentConfig) (*Table3Result, error) {
	res := &Table3Result{}
	for _, h := range []core.Heuristic{
		core.Percentile{Q: 0.99},
		core.UtilityOptimal{W: cfg.UtilityW},
	} {
		results, err := evalPoliciesWS(e, cfg, h, false)
		if err != nil {
			return nil, err
		}
		var row [3]int
		for p, r := range results {
			row[p] = r.TotalFalseAlarms()
		}
		res.HeuristicNames = append(res.HeuristicNames, h.Name())
		res.Alarms = append(res.Alarms, row)
	}
	return res, nil
}

// String renders the table.
func (r *Table3Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Table 3 — false alarms per week at the central console\n")
	fmt.Fprintf(&b, "  %-18s %12s %14s %14s\n", "heuristic", "homogeneous", "full-diversity", "8-partial")
	for i, name := range r.HeuristicNames {
		fmt.Fprintf(&b, "  %-18s %12d %14d %14d\n", name, r.Alarms[i][0], r.Alarms[i][1], r.Alarms[i][2])
	}
	return b.String()
}

// ---------------------------------------------------------------------------
// Fig 4(a) — naive attacker detection vs attack size

// Fig4aResult reproduces Fig 4(a): the fraction of users raising an
// alarm during a day-long attack of each size, per policy.
type Fig4aResult struct {
	Sizes       []float64
	PolicyNames []string
	// Fraction[p][k] is the fraction of users alarming under policy p
	// at attack size Sizes[k].
	Fraction [][]float64
}

// Fig4a runs the experiment: for each attack size, a naive attacker
// injects that size into every window of one working day of the test
// week on every host; a user "raises an alarm" if any attacked
// window alarms. Detection is averaged over several attack days.
//
// The sweep is fully incremental: a user alarms at size b exactly
// when its day's maximum window plus b exceeds its threshold (float
// addition is monotone, so the existence check reduces to the
// maximum), and the set of alarming sizes is an up-set whose boundary
// — the user's critical size — is found exactly by probing adjacent
// floats around threshold−max. The per-(policy, day) critical sizes
// are sorted and memoized in the workspace, after which every
// (policy, size, day) cell is one binary search over users instead of
// a per-user search over windows.
func Fig4a(e *Enterprise, cfg ExperimentConfig) (*Fig4aResult, error) {
	ws := e.workspace()
	users := ws.Users()
	sweep := ws.Sweep(cfg.Feature, cfg.TrainWeek, cfg.SweepPoints)
	res := &Fig4aResult{Sizes: append([]float64(nil), sweep...)}
	attackDays := []int{1, 2, 3} // Tue, Wed, Thu of the test week

	// The three assignments are cached in the workspace. Percentile
	// heuristics ignore attack magnitudes, so the nil-sweep cache key
	// shares the entries Fig4b and Fig5 configure.
	crits := make([][][]float64, 0, 3) // [policy][day] sorted critical sizes
	for _, pol := range Policies(core.Percentile{Q: 0.99}) {
		asn, err := ws.Assignment(cfg.Feature, cfg.TrainWeek, pol, nil, "")
		if err != nil {
			return nil, err
		}
		key := fmt.Sprintf("fig4a-crit/%d/%d/%d/%s", int(cfg.Feature), cfg.TrainWeek, cfg.TestWeek, pol.Name())
		v, err := ws.Memo(key, func() (any, error) {
			perDay := make([][]float64, len(attackDays))
			for d := range perDay {
				perDay[d] = make([]float64, users)
			}
			fill := func(days [][][]float64, base int) {
				for u, userDays := range days {
					for d, day := range attackDays {
						col := userDays[day]
						perDay[d][base+u] = minAlarmSize(col[len(col)-1], asn.Thresholds[base+u])
					}
				}
			}
			if ws.Streaming() {
				err := ws.StreamShards(0, func(view *analysis.Workspace, lo, hi int) error {
					fill(view.DaySorted(cfg.Feature, cfg.TestWeek), lo)
					return nil
				})
				if err != nil {
					return nil, err
				}
			} else {
				fill(ws.DaySorted(cfg.Feature, cfg.TestWeek), 0)
			}
			for d := range perDay {
				sort.Float64s(perDay[d])
			}
			return perDay, nil
		})
		if err != nil {
			return nil, err
		}
		res.PolicyNames = append(res.PolicyNames, pol.Name())
		crits = append(crits, v.([][]float64))
	}

	res.Fraction = make([][]float64, len(crits))
	for p := range crits {
		res.Fraction[p] = make([]float64, len(sweep))
		for k, size := range sweep {
			var total float64
			for d := range attackDays {
				crit := crits[p][d]
				alarming := sort.Search(len(crit), func(i int) bool { return crit[i] > size })
				total += float64(alarming) / float64(users)
			}
			res.Fraction[p][k] = total / float64(len(attackDays))
		}
	}
	return res, nil
}

// minAlarmSize returns the smallest float64 attack size whose
// float-rounded sum with the day's maximum window value max exceeds
// the threshold — the exact boundary of the (monotone) alarming-size
// set, so comparing a size against it agrees with a direct
// max+size > thr check for every size. It binary-searches the
// totally-ordered float space (IEEE addition is monotone in the
// addend), which stays exact and bounded even when the boundary sits
// among denormals or right at thr == max.
func minAlarmSize(max, thr float64) float64 {
	lo, hi := floatOrd(math.Inf(-1)), floatOrd(math.Inf(1))
	for lo < hi {
		mid := lo + (hi-lo)/2
		if max+floatFromOrd(mid) > thr {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return floatFromOrd(lo)
}

// floatOrd maps a float64 to an unsigned key whose integer order
// matches the float order (negatives reversed into the low range).
func floatOrd(f float64) uint64 {
	b := math.Float64bits(f)
	if b&(1<<63) != 0 {
		return ^b
	}
	return b | 1<<63
}

// floatFromOrd inverts floatOrd.
func floatFromOrd(k uint64) float64 {
	if k&(1<<63) != 0 {
		return math.Float64frombits(k &^ (1 << 63))
	}
	return math.Float64frombits(^k)
}

// String renders the detection curves.
func (r *Fig4aResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig 4(a) — naive attacker: fraction of users alarming vs attack size\n  size:    ")
	for _, s := range r.Sizes {
		fmt.Fprintf(&b, "%8.0f", s)
	}
	b.WriteByte('\n')
	names := []string{"homog", "fulldiv", "8-part"}
	for p, series := range r.Fraction {
		fmt.Fprintf(&b, "  %-8s", names[p])
		for _, v := range series {
			fmt.Fprintf(&b, "%8.3f", v)
		}
		b.WriteByte('\n')
	}
	return b.String()
}

// ---------------------------------------------------------------------------
// Fig 4(b) — resourceful attacker hidden traffic

// Fig4bResult reproduces Fig 4(b): the distribution of per-host
// hidden traffic a mimicry attacker can sustain, per policy.
type Fig4bResult struct {
	PolicyNames []string
	Boxplots    []stats.Boxplot
	// Hidden[p][u] is user u's hidden traffic under policy p.
	Hidden [][]float64
}

// Fig4b runs the experiment: the resourceful attacker profiles each
// host's test-week distribution and sends the largest volume that
// evades detection with probability EvadeProb.
func Fig4b(e *Enterprise, cfg ExperimentConfig) (*Fig4bResult, error) {
	ws := e.workspace()
	var testDists []*stats.Empirical
	if !ws.Streaming() {
		testDists = ws.Dists(cfg.Feature, cfg.TestWeek)
	}
	res := &Fig4bResult{}
	for _, pol := range Policies(core.Percentile{Q: 0.99}) {
		asn, err := ws.Assignment(cfg.Feature, cfg.TrainWeek, pol, nil, "")
		if err != nil {
			return nil, err
		}
		hidden := make([]float64, ws.Users())
		if ws.Streaming() {
			err = ws.StreamShards(0, func(view *analysis.Workspace, lo, hi int) error {
				for u, d := range view.Dists(cfg.Feature, cfg.TestWeek) {
					h, err := attack.HiddenTraffic(d, asn.Thresholds[lo+u], cfg.EvadeProb)
					if err != nil {
						return err
					}
					hidden[lo+u] = h
				}
				return nil
			})
		} else {
			err = par.ForEachErr(len(hidden), 0, func(u int) error {
				h, err := attack.HiddenTraffic(testDists[u], asn.Thresholds[u], cfg.EvadeProb)
				if err != nil {
					return err
				}
				hidden[u] = h
				return nil
			})
		}
		if err != nil {
			return nil, err
		}
		bp, err := stats.NewBoxplot(hidden)
		if err != nil {
			return nil, err
		}
		res.PolicyNames = append(res.PolicyNames, pol.Name())
		res.Hidden = append(res.Hidden, hidden)
		res.Boxplots = append(res.Boxplots, bp)
	}
	return res, nil
}

// MedianRatio returns median hidden traffic under homogeneous
// divided by that under full diversity — the paper reports ~3×.
func (r *Fig4bResult) MedianRatio() float64 {
	if r.Boxplots[1].Median == 0 {
		return math.Inf(1)
	}
	return r.Boxplots[0].Median / r.Boxplots[1].Median
}

// String renders the three boxplots.
func (r *Fig4bResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig 4(b) — resourceful attacker hidden traffic per policy\n")
	for i, name := range r.PolicyNames {
		fmt.Fprintf(&b, "  %-34s %s\n", name, r.Boxplots[i])
	}
	fmt.Fprintf(&b, "  homogeneous/full-diversity median ratio: %.1fx\n", r.MedianRatio())
	return b.String()
}

// ---------------------------------------------------------------------------
// Fig 5 — Storm botnet overlay

// Fig5Point is one user's operating point under a policy.
type Fig5Point struct {
	User          int
	FP            float64
	DetectionRate float64 // 1 − FN
}

// Fig5Result reproduces one panel of Fig 5: the per-user ⟨FP, 1−FN⟩
// scatter for two policies under the Storm overlay on the
// num-distinct-connections feature.
type Fig5Result struct {
	PolicyNames [2]string
	Points      [2][]Fig5Point
}

// fig5 evaluates two groupings against the Storm overlay. The Storm
// synthesis is memoized per (bins, seed), the thresholds come from
// the workspace's assignment cache, and the per-user confusion
// matrices are read off pre-sorted columns: the workspace's
// SplitOverlay decomposes the overlaid week once into sorted benign /
// attacked observed values (the same g+a sums a window walk would
// compare), after which each user's ⟨FP, 1−FN⟩ point is three binary
// searches instead of two full passes over the week per policy.
//
// fig5 deliberately stays on the whole-heap path even when streaming
// is armed: SplitOverlay's decomposition is memoized population-wide
// and its output (two sorted copies per user) dominates the working
// set regardless of how the inputs are read, so sharding the reads
// would not bound peak RSS.
func fig5(e *Enterprise, cfg ExperimentConfig, groupings [2]core.Grouping) (*Fig5Result, error) {
	f := features.Distinct // the paper's Fig 5 feature
	ws := e.workspace()
	bins := ws.BinsPerWeek()
	users := ws.Users()
	stormKey := fmt.Sprintf("storm/%d/%d", bins, cfg.Seed)
	ov, err := ws.Memo(stormKey, func() (any, error) {
		bot, err := attack.NewStorm(attack.StormConfig{
			Bins:     bins,
			BinWidth: ws.BinWidth(),
			Seed:     cfg.Seed,
		})
		if err != nil {
			return nil, err
		}
		return bot.Overlay().Overlay, nil
	})
	if err != nil {
		return nil, err
	}
	overlay := ov.([]float64)
	clean := ws.Sorted(f, cfg.TestWeek)
	split, err := ws.SplitOverlay(f, cfg.TestWeek, overlay, stormKey)
	if err != nil {
		return nil, err
	}

	res := &Fig5Result{}
	for i, g := range groupings {
		pol := core.Policy{Heuristic: core.Percentile{Q: 0.99}, Grouping: g}
		asn, err := ws.Assignment(f, cfg.TrainWeek, pol, nil, "")
		if err != nil {
			return nil, err
		}
		res.PolicyNames[i] = pol.Name()
		res.Points[i] = make([]Fig5Point, users)
		par.ForEach(users, 0, func(u int) {
			thr := asn.Thresholds[u]
			// FP on the clean test week; FN on the overlaid week, in
			// which every window is attacked (the bot never sleeps).
			fp := stats.CountAboveSorted(clean[u], thr)
			fpConf := stats.Confusion{FP: fp, TN: bins - fp}
			tp := stats.CountAboveSorted(split.Attacked[u], thr)
			bfp := stats.CountAboveSorted(split.Benign[u], thr)
			fnConf := stats.Confusion{
				TP: tp, FN: len(split.Attacked[u]) - tp,
				FP: bfp, TN: len(split.Benign[u]) - bfp,
			}
			res.Points[i][u] = Fig5Point{
				User:          u,
				FP:            fpConf.FalsePositiveRate(),
				DetectionRate: fnConf.Recall(),
			}
		})
	}
	return res, nil
}

// Fig5a compares homogeneous vs full diversity under Storm.
func Fig5a(e *Enterprise, cfg ExperimentConfig) (*Fig5Result, error) {
	return fig5(e, cfg, [2]core.Grouping{core.Homogeneous{}, core.FullDiversity{}})
}

// Fig5b compares full diversity vs 8-partial under Storm.
func Fig5b(e *Enterprise, cfg ExperimentConfig) (*Fig5Result, error) {
	return fig5(e, cfg, [2]core.Grouping{core.FullDiversity{}, core.PartialDiversity{NumGroups: 8}})
}

// Summary reduces one policy's point cloud to the quantities the
// paper discusses: FP-rate quantiles (is the bulk pinned near 1%, or
// scattered?) and the median detection rate.
func (r *Fig5Result) Summary(i int) (fpQ [4]float64, medianDetection float64) {
	fps := make([]float64, 0, len(r.Points[i]))
	det := make([]float64, 0, len(r.Points[i]))
	for _, p := range r.Points[i] {
		fps = append(fps, p.FP)
		det = append(det, p.DetectionRate)
	}
	fpE := stats.MustEmpirical(fps)
	for k, q := range []float64{0.25, 0.5, 0.75, 0.98} {
		fpQ[k] = fpE.MustQuantile(q)
	}
	return fpQ, stats.MustEmpirical(det).MustQuantile(0.5)
}

// String renders both panels' summaries.
func (r *Fig5Result) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fig 5 — Storm overlay on %s\n", features.Distinct)
	for i, name := range r.PolicyNames {
		fpQ, det := r.Summary(i)
		fmt.Fprintf(&b, "  %-34s FP q25/q50/q75/q98 = %.4f/%.4f/%.4f/%.4f, median detection %.2f\n",
			name, fpQ[0], fpQ[1], fpQ[2], fpQ[3], det)
	}
	return b.String()
}
