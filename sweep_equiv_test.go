package repro

// Equivalence guard for the incremental attack sweeps: Fig 4a's
// binary-search day counting and Fig 5's sorted benign/attacked
// decomposition must reproduce the pre-frontier window-by-window
// walks bit for bit. The references below re-implement the old loops
// verbatim against the raw test columns.

import (
	"fmt"
	"reflect"
	"testing"

	"repro/internal/attack"
	"repro/internal/core"
	"repro/internal/features"
)

// refFig4a is the pre-frontier Fig 4a inner loop: for every (policy,
// size, day, user), walk every window of the attacked day.
func refFig4a(t *testing.T, e *Enterprise, cfg ExperimentConfig) *Fig4aResult {
	t.Helper()
	ws := e.workspace()
	test := ws.Raw(cfg.Feature, cfg.TestWeek)
	sweep := ws.Sweep(cfg.Feature, cfg.TrainWeek, cfg.SweepPoints)
	res := &Fig4aResult{Sizes: append([]float64(nil), sweep...)}
	binsPerDay := ws.BinsPerWeek() / 7
	var assigns []*core.Assignment
	for _, pol := range Policies(core.Percentile{Q: 0.99}) {
		asn, err := ws.Assignment(cfg.Feature, cfg.TrainWeek, pol, nil, "")
		if err != nil {
			t.Fatal(err)
		}
		res.PolicyNames = append(res.PolicyNames, pol.Name())
		assigns = append(assigns, asn)
	}
	attackDays := []int{1, 2, 3}
	res.Fraction = make([][]float64, len(assigns))
	for p, asn := range assigns {
		res.Fraction[p] = make([]float64, len(sweep))
		for k, size := range sweep {
			var total float64
			for _, day := range attackDays {
				alarming := 0
				for u := range test {
					from := day * binsPerDay
					to := from + binsPerDay
					detected := false
					for b := from; b < to && !detected; b++ {
						if test[u][b]+size > asn.Thresholds[u] {
							detected = true
						}
					}
					if detected {
						alarming++
					}
				}
				total += float64(alarming) / float64(len(test))
			}
			res.Fraction[p][k] = total / float64(len(attackDays))
		}
	}
	return res
}

// refFig5 is the pre-frontier fig5 inner loop: two full core.Evaluate
// walks over the test week per user and policy.
func refFig5(t *testing.T, e *Enterprise, cfg ExperimentConfig, groupings [2]core.Grouping) *Fig5Result {
	t.Helper()
	f := features.Distinct
	ws := e.workspace()
	test := ws.Raw(f, cfg.TestWeek)
	bins := ws.BinsPerWeek()
	ov, err := ws.Memo(fmt.Sprintf("storm/%d/%d", bins, cfg.Seed), func() (any, error) {
		bot, err := attack.NewStorm(attack.StormConfig{
			Bins: bins, BinWidth: ws.BinWidth(), Seed: cfg.Seed,
		})
		if err != nil {
			return nil, err
		}
		return bot.Overlay().Overlay, nil
	})
	if err != nil {
		t.Fatal(err)
	}
	overlay := ov.([]float64)
	res := &Fig5Result{}
	for i, g := range groupings {
		pol := core.Policy{Heuristic: core.Percentile{Q: 0.99}, Grouping: g}
		asn, err := ws.Assignment(f, cfg.TrainWeek, pol, nil, "")
		if err != nil {
			t.Fatal(err)
		}
		res.PolicyNames[i] = pol.Name()
		res.Points[i] = make([]Fig5Point, len(test))
		for u := range test {
			fpConf, err := core.Evaluate(test[u], nil, asn.Thresholds[u])
			if err != nil {
				t.Fatal(err)
			}
			fnConf, err := core.Evaluate(test[u], overlay, asn.Thresholds[u])
			if err != nil {
				t.Fatal(err)
			}
			res.Points[i][u] = Fig5Point{
				User:          u,
				FP:            fpConf.FalsePositiveRate(),
				DetectionRate: fnConf.Recall(),
			}
		}
	}
	return res
}

func TestFig4aMatchesSeedComputation(t *testing.T) {
	e := equivEnterprise(t)
	cfg := DefaultExperimentConfig()
	got, err := Fig4a(e, cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := refFig4a(t, e, cfg)
	if !reflect.DeepEqual(got, want) {
		t.Fatal("Fig4a diverges from the window-walk computation")
	}
	if got.String() != want.String() {
		t.Fatal("Fig4a rendering diverges from the window-walk computation")
	}
}

func TestFig5MatchesSeedComputation(t *testing.T) {
	e := equivEnterprise(t)
	cfg := DefaultExperimentConfig()
	for name, groupings := range map[string][2]core.Grouping{
		"5a": {core.Homogeneous{}, core.FullDiversity{}},
		"5b": {core.FullDiversity{}, core.PartialDiversity{NumGroups: 8}},
	} {
		var got *Fig5Result
		var err error
		if name == "5a" {
			got, err = Fig5a(e, cfg)
		} else {
			got, err = Fig5b(e, cfg)
		}
		if err != nil {
			t.Fatal(err)
		}
		want := refFig5(t, e, cfg, groupings)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("Fig%s diverges from the window-walk computation", name)
		}
		if got.String() != want.String() {
			t.Fatalf("Fig%s rendering diverges from the window-walk computation", name)
		}
	}
}

// TestFig3aFrontierVsUncachedConfigure additionally pins the
// workspace's cached-frontier assignments against a frontier-free
// Configure on the same memoized distributions — the exact seam the
// ConfigureWith fast path introduces.
func TestFig3aFrontierVsUncachedConfigure(t *testing.T) {
	e := equivEnterprise(t)
	cfg := DefaultExperimentConfig()
	ws := e.workspace()
	sweep := ws.Sweep(cfg.Feature, cfg.TrainWeek, cfg.SweepPoints)
	sweepKey := fmt.Sprintf("sp%d", cfg.SweepPoints)
	for _, h := range []core.Heuristic{
		core.UtilityOptimal{W: cfg.UtilityW},
		core.FMeasureOptimal{},
	} {
		for _, pol := range Policies(h) {
			cached, err := ws.Assignment(cfg.Feature, cfg.TrainWeek, pol, sweep, sweepKey)
			if err != nil {
				t.Fatal(err)
			}
			plain, err := core.Configure(ws.Dists(cfg.Feature, cfg.TrainWeek), pol, sweep)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(cached.Thresholds, plain.Thresholds) {
				t.Fatalf("%s: cached-frontier thresholds diverge from plain Configure", pol.Name())
			}
		}
	}
}
