package repro

import (
	"fmt"
	"reflect"
	"strings"

	"repro/internal/collab"
	"repro/internal/core"
	"repro/internal/features"
	"repro/internal/fleet"
	"repro/internal/netsim"
)

// The "Fleet under faults" experiment: the distributed management
// plane (internal/fleet) run under a grid of seeded fault plans. The
// paper's architecture assumes the console hears from every host
// (§4); this experiment quantifies what its detection pipeline does
// when it doesn't — transient loss must change nothing at all (the
// self-healing agents re-deliver every alert batch exactly once), and
// permanent loss must shrink the quorum over the surviving
// population rather than silently diluting it.

// chaosHosts caps the chaos fleet: large enough that quorum detection
// is meaningful, small enough that a grid of full fleet runs stays in
// experiment territory rather than soak territory.
const chaosHosts = 16

// ChaosRow is one fault plan's outcome.
type ChaosRow struct {
	// Name describes the plan.
	Name string
	// Healing reports whether every fault window in the plan
	// eventually heals; healing rows are required to converge.
	Healing bool
	// Converged reports whether the run's Result is deep-equal to the
	// fault-free baseline (only meaningful on healing rows).
	Converged bool
	// Survivors, Lost and Partitioned are the run's casualty report.
	Survivors   int
	Lost        []int
	Partitioned []int
	// EffectiveQuorum is the absolute quorum collaborative detection
	// used, resolved over the survivors.
	EffectiveQuorum int
	// TotalAlerts is the console's fleet-wide alert tally.
	TotalAlerts int
	// Events counts fleet-wide quorum events; FirstEvent is the first
	// monitored window with one (-1 when none fired).
	Events     int
	FirstEvent int
}

// ChaosResult is the "Fleet under faults" table.
type ChaosResult struct {
	Hosts    int
	Baseline ChaosRow
	Rows     []ChaosRow
}

// Chaos runs the fleet simulator under a grid of fault plans — drop
// and reset sweeps, partition windows, a whole-fleet reconnect storm,
// and permanent losses in degraded mode — and scores each against the
// fault-free baseline.
func Chaos(e *Enterprise, cfg ExperimentConfig) (*ChaosResult, error) {
	hosts := e.Users()
	if hosts > chaosHosts {
		hosts = chaosHosts
	}
	mats := make([]*features.Matrix, hosts)
	for u := 0; u < hosts; u++ {
		mats[u] = e.Matrix(u)
	}
	base := fleet.Config{
		Users:     hosts,
		Matrices:  mats,
		Policy:    core.Policy{Heuristic: core.Percentile{Q: 0.99}, Grouping: core.FullDiversity{}},
		TrainWeek: cfg.TrainWeek,
		TestWeek:  cfg.TestWeek,
		Attack: &fleet.AttackPlan{
			Kind:    fleet.AttackStorm,
			Feature: features.Distinct,
			Seed:    cfg.Seed,
		},
		Collab: &collab.Config{Quorum: 3, QuorumFraction: 0.25},
	}

	baseline, err := fleet.Run(base)
	if err != nil {
		return nil, fmt.Errorf("chaos baseline: %w", err)
	}
	res := &ChaosResult{Hosts: hosts, Baseline: scoreChaos("baseline (no faults)", baseline, nil)}

	quarter := make([]int, 0, hosts/4)
	for h := 0; h < hosts/4; h++ {
		quarter = append(quarter, h)
	}
	plans := []struct {
		name string
		plan netsim.FaultPlan
	}{
		{"drop 10% of writes (heals @4)", netsim.FaultPlan{Seed: cfg.Seed ^ 0x11, DropProb: 0.10, HealTick: 4}},
		{"drop 25% of writes (heals @4)", netsim.FaultPlan{Seed: cfg.Seed ^ 0x12, DropProb: 0.25, HealTick: 4}},
		{"drop 40% of writes (heals @4)", netsim.FaultPlan{Seed: cfg.Seed ^ 0x13, DropProb: 0.40, HealTick: 4}},
		{"reset 20% of writes (heals @4)", netsim.FaultPlan{Seed: cfg.Seed ^ 0x14, ResetProb: 0.20, HealTick: 4}},
		{"partition 1/4 of hosts for 1 tick", netsim.FaultPlan{
			Seed: cfg.Seed ^ 0x15, Partitions: []netsim.Partition{{Hosts: quarter, From: 2, To: 3}}}},
		{"partition 1/4 of hosts for 2 ticks", netsim.FaultPlan{
			Seed: cfg.Seed ^ 0x16, Partitions: []netsim.Partition{{Hosts: quarter, From: 2, To: 4}}}},
		{"reconnect storm (all hosts, 1 tick)", netsim.FaultPlan{
			Seed: cfg.Seed ^ 0x17, Partitions: []netsim.Partition{{From: 2, To: 3}}}},
		{"crash 1 host permanently", netsim.FaultPlan{
			Seed: cfg.Seed ^ 0x18, Crashes: []netsim.CrashWindow{{Host: 2, From: 2, To: -1}}}},
		{"crash 2 hosts + partition 1, permanent", netsim.FaultPlan{
			Seed: cfg.Seed ^ 0x19,
			Crashes: []netsim.CrashWindow{
				{Host: 2, From: 2, To: -1},
				{Host: 9, From: 3, To: -1},
			},
			Partitions: []netsim.Partition{{Hosts: []int{5}, From: 3, To: -1}}}},
	}
	for _, p := range plans {
		run := base
		run.Faults = &p.plan
		run.AllowDegraded = !p.plan.Heals()
		r, err := fleet.Run(run)
		if err != nil {
			return nil, fmt.Errorf("chaos %q: %w", p.name, err)
		}
		res.Rows = append(res.Rows, scoreChaos(p.name, r, baseline))
	}
	return res, nil
}

// scoreChaos reduces one run to its table row; baseline nil marks the
// baseline itself.
func scoreChaos(name string, r, baseline *fleet.Result) ChaosRow {
	row := ChaosRow{
		Name:            name,
		Healing:         baseline == nil || (len(r.Lost) == 0 && len(r.Partitioned) == 0),
		Survivors:       r.Survivors,
		Lost:            r.Lost,
		Partitioned:     r.Partitioned,
		EffectiveQuorum: r.EffectiveQuorum,
		TotalAlerts:     r.TotalAlerts,
		FirstEvent:      -1,
	}
	for b, ev := range r.FleetEvents {
		if ev {
			row.Events++
			if row.FirstEvent < 0 {
				row.FirstEvent = b
			}
		}
	}
	if baseline != nil {
		row.Converged = reflect.DeepEqual(r, baseline)
	}
	return row
}

// String renders the table.
func (r *ChaosResult) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "Fleet under faults — %d hosts, Storm campaign on %s, quorum %d\n",
		r.Hosts, features.Distinct, r.Baseline.EffectiveQuorum)
	writeRow := func(row ChaosRow, baseline *ChaosRow) {
		fmt.Fprintf(&b, "  %-38s", row.Name)
		switch {
		case baseline == nil:
			fmt.Fprintf(&b, " --       ")
		case row.Healing && row.Converged:
			fmt.Fprintf(&b, " converged")
		case row.Healing:
			fmt.Fprintf(&b, " DIVERGED ")
		default:
			fmt.Fprintf(&b, " degraded ")
		}
		fmt.Fprintf(&b, "  survivors %2d, quorum %d, alerts %d, events %d",
			row.Survivors, row.EffectiveQuorum, row.TotalAlerts, row.Events)
		if row.FirstEvent >= 0 {
			fmt.Fprintf(&b, ", first event bin %d", row.FirstEvent)
			if baseline != nil && baseline.FirstEvent >= 0 {
				fmt.Fprintf(&b, " (%+d)", row.FirstEvent-baseline.FirstEvent)
			}
		}
		if len(row.Lost) > 0 {
			fmt.Fprintf(&b, ", lost %v", row.Lost)
		}
		if len(row.Partitioned) > 0 {
			fmt.Fprintf(&b, ", partitioned %v", row.Partitioned)
		}
		fmt.Fprintf(&b, "\n")
	}
	writeRow(r.Baseline, nil)
	for _, row := range r.Rows {
		writeRow(row, &r.Baseline)
	}
	return b.String()
}
