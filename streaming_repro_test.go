package repro

// End-to-end guard for bounded-heap streaming evaluation: every
// experiment that routes through the streaming iterator must produce
// results bit-identical to the whole-heap path over the same sealed
// snapshot — across shard sizes bracketing the population (one user,
// an odd size leaving a ragged tail, larger than everyone) and across
// heavy-tail seeds.

import (
	"reflect"
	"testing"
)

// runStreamedSet renders every streaming-routed experiment.
func runStreamedSet(t *testing.T, e *Enterprise) []any {
	t.Helper()
	cfg := DefaultExperimentConfig()
	f1, err := Fig1(e, cfg)
	if err != nil {
		t.Fatal(err)
	}
	f3a, err := Fig3a(e, cfg)
	if err != nil {
		t.Fatal(err)
	}
	f3b, err := Fig3b(e, cfg)
	if err != nil {
		t.Fatal(err)
	}
	t3, err := Table3(e, cfg)
	if err != nil {
		t.Fatal(err)
	}
	f4a, err := Fig4a(e, cfg)
	if err != nil {
		t.Fatal(err)
	}
	f4b, err := Fig4b(e, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return []any{f1, f3a, f3b, t3, f4a, f4b}
}

func TestStreamingExperimentsMatchWholeHeap(t *testing.T) {
	t.Setenv("REPRO_SNAPSHOT_DIR", "")
	t.Setenv("REPRO_STREAM_SHARD", "")
	names := []string{"Fig1", "Fig3a", "Fig3b", "Table3", "Fig4a", "Fig4b"}
	for _, seed := range []uint64{53, 87} {
		dir := t.TempDir()
		opts := Options{Users: 26, Weeks: 2, Seed: seed, SnapshotDir: dir}
		whole, err := NewEnterprise(opts)
		if err != nil {
			t.Fatal(err)
		}
		whole.Materialize() // seeds the store; maps it whole-heap
		want := runStreamedSet(t, whole)
		for _, shard := range []int{1, 7, 128} {
			sopts := opts
			sopts.StreamShard = shard
			streamed, err := NewEnterprise(sopts)
			if err != nil {
				t.Fatal(err)
			}
			got := runStreamedSet(t, streamed)
			for i := range want {
				if !reflect.DeepEqual(got[i], want[i]) {
					t.Fatalf("seed %d shard %d: %s diverges from the whole-heap path", seed, shard, names[i])
				}
			}
			if err := streamed.Close(); err != nil {
				t.Fatal(err)
			}
		}
		if err := whole.Close(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestStreamShardEnvArmsStreaming pins the REPRO_STREAM_SHARD
// plumbing: the env-armed enterprise must agree with an
// Options-armed one (and with the whole-heap path).
func TestStreamShardEnvArmsStreaming(t *testing.T) {
	dir := t.TempDir()
	t.Setenv("REPRO_SNAPSHOT_DIR", dir)
	t.Setenv("REPRO_STREAM_SHARD", "")
	opts := Options{Users: 11, Weeks: 2, Seed: 5}
	whole, err := NewEnterprise(opts)
	if err != nil {
		t.Fatal(err)
	}
	whole.Materialize()
	cfg := DefaultExperimentConfig()
	want, err := Fig3a(whole, cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Setenv("REPRO_STREAM_SHARD", "4")
	streamed, err := NewEnterprise(opts)
	if err != nil {
		t.Fatal(err)
	}
	if streamed.streamShard != 4 {
		t.Fatalf("REPRO_STREAM_SHARD=4 armed shard %d", streamed.streamShard)
	}
	got, err := Fig3a(streamed, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("env-armed streaming run diverges from the whole-heap run")
	}
}
