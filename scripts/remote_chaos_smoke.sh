#!/usr/bin/env bash
# remote_chaos_smoke.sh STORE_PARENT_DIR
#
# The multi-host build transport at the process level: two
# `tracegen -serve` daemons come up on loopback ephemeral ports, a
# `tracegen -coordinate -hosts` build dispatches ranges to them and
# streams sealed parts back, daemon B is SIGKILLed while the first
# build is in flight, the build halts once (-halt-after) and a second
# invocation resumes against the surviving daemon — re-fetching only
# what its store is missing — and a second suite key builds with B
# still dead, proving steady-state one-dead-host operation.
#
# The caller (make remote-chaos-smoke) then runs the golden +
# equivalence suites warm through $STORE_PARENT_DIR/store, so the
# pinned experiment outputs certify that parts built remotely, killed
# mid-stream and resumed sealed the exact clean bytes.
set -euo pipefail

DIR=${1:?usage: remote_chaos_smoke.sh STORE_PARENT_DIR}
TRACEGEN=${TRACEGEN:-/tmp/repro-tracegen}
STORE="$DIR/store"

rm -rf "$DIR"
mkdir -p "$DIR"

PID_A= PID_B=
cleanup() {
    [ -n "$PID_A" ] && kill "$PID_A" 2>/dev/null || true
    [ -n "$PID_B" ] && kill "$PID_B" 2>/dev/null || true
}
trap cleanup EXIT

# -serve-delay stretches daemon-side builds so the SIGKILL below lands
# while work is genuinely in flight; -chunk keeps transfers many
# frames long for the same reason.
"$TRACEGEN" -snapshot "$DIR/worker-a" -serve 127.0.0.1:0 -addr-file "$DIR/a.addr" -serve-delay 15ms &
PID_A=$!
"$TRACEGEN" -snapshot "$DIR/worker-b" -serve 127.0.0.1:0 -addr-file "$DIR/b.addr" -serve-delay 15ms &
PID_B=$!

for i in $(seq 1 100); do
    [ -s "$DIR/a.addr" ] && [ -s "$DIR/b.addr" ] && break
    [ "$i" -eq 100 ] && { echo "daemons never published their addresses" >&2; exit 1; }
    sleep 0.1
done
ADDR_A=$(cat "$DIR/a.addr")
ADDR_B=$(cat "$DIR/b.addr")
echo "remote-chaos-smoke: daemons at $ADDR_A (pid $PID_A) and $ADDR_B (pid $PID_B)"

# Build 1, first half: both daemons serving; B is SIGKILLed while the
# build runs (the delayed builds above make the window wide). The
# coordinator halts after one sealed part either way — the resume path
# is part of what the smoke proves.
( sleep 0.15; echo "remote-chaos-smoke: SIGKILL daemon B ($PID_B)"; kill -9 "$PID_B" 2>/dev/null || true ) &
KILLER=$!
"$TRACEGEN" -snapshot "$STORE" -users 20 -weeks 2 -seed 1 \
    -coordinate -hosts "$ADDR_A,$ADDR_B" -workers 2 -ranges 4 -retries 8 -chunk 2048 -halt-after 1 \
    | tee "$DIR/run1.out"
wait "$KILLER" 2>/dev/null || true
PID_B=

# Build 1, second half: resume with B dead for good. The pool
# quarantines the dead host and the surviving daemon carries the
# remaining ranges; parts already streamed are found sealed on disk.
"$TRACEGEN" -snapshot "$STORE" -users 20 -weeks 2 -seed 1 \
    -coordinate -hosts "$ADDR_A,$ADDR_B" -workers 2 -ranges 4 -retries 8 -chunk 2048 \
    | tee "$DIR/run2.out"

# Build 2: the other suite key, one dead host steady state.
"$TRACEGEN" -snapshot "$STORE" -users 40 -weeks 2 -seed 7 \
    -coordinate -hosts "$ADDR_A,$ADDR_B" -workers 2 -ranges 4 -retries 8 -chunk 2048 \
    | tee "$DIR/run3.out"

# Every coordinator run must have printed its one-line transport
# summary, and the completed runs must have streamed real bytes.
grep -q '"bytes_streamed"' "$DIR/run1.out"
grep -q '"bytes_streamed"' "$DIR/run2.out"
grep -q '"bytes_streamed"' "$DIR/run3.out"
if ! grep -q '"bytes_streamed":[1-9]' "$DIR/run3.out"; then
    echo "remote-chaos-smoke: one-dead-host build streamed no bytes" >&2
    exit 1
fi
echo "remote-chaos-smoke: builds converged; store at $STORE"
