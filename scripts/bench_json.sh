#!/bin/sh
# bench_json.sh — convert `go test -bench -benchmem` output into the
# BENCH_repro.json format: one record per benchmark with ns/op, B/op
# and allocs/op. An optional second file (the frozen seed baseline,
# scripts/seed_baseline.bench) is emitted as "seed_baseline" so the
# speedup vs. the pre-workspace implementation stays on record.
#
# Usage: scripts/bench_json.sh current.txt [seed-baseline.txt]
#        scripts/bench_json.sh -check current.txt BENCH_repro.json
#
# Check mode compares a fresh measured run against the committed
# BENCH_repro.json and exits non-zero if any benchmark present in
# both regressed by more than 20% in ns/op or more than 25% in
# allocs/op — the guard that keeps perf PRs from silently undoing
# each other (alloc regressions are how generation-path wins decay).
# Benchmarks only in one side (added or retired) are ignored, and the
# ns/op comparison is skipped (and reported as skipped) for any
# benchmark that ran a single iteration on either side: one iteration
# is one sample, so its timing is noise, and the multi-second
# materialization benches were flaking CI on it. allocs/op is exact
# per iteration and stays checked.
set -eu

if [ "${1:-}" = "-check" ]; then
    cur="${2:?usage: bench_json.sh -check <current-bench-output> <BENCH_repro.json>}"
    baseline="${3:?usage: bench_json.sh -check <current-bench-output> <BENCH_repro.json>}"
    # Extract "name ns_per_op" pairs from the committed JSON. Only the
    # "benchmarks" array is read — the emitter writes one record per
    # line, so line-oriented awk is enough — and the "seed_baseline"
    # array is explicitly skipped.
    awk '
    /"benchmarks": \[/  { inb = 1; next }
    inb && /^  \]/      { inb = 0 }
    inb && /"name"/ {
        name = $0; sub(/.*"name": "/, "", name); sub(/".*/, "", name)
        ns = $0; sub(/.*"ns_per_op": /, "", ns); sub(/[,}].*/, "", ns)
        al = "-"
        if ($0 ~ /"allocs_per_op"/) {
            al = $0; sub(/.*"allocs_per_op": /, "", al); sub(/[,}].*/, "", al)
        }
        it = "-"
        if ($0 ~ /"iterations"/) {
            it = $0; sub(/.*"iterations": /, "", it); sub(/[,}].*/, "", it)
        }
        print name, ns, al, it
    }
    ' "$baseline" > /tmp/bench_baseline_pairs.$$
    status=0
    awk -v failfile=/tmp/bench_check_fail.$$ '
    NR == FNR { base[$1] = $2; basealloc[$1] = $3; baseiters[$1] = $4; next }
    /^Benchmark/ {
        name = $1
        sub(/-[0-9]+$/, "", name)
        iters = $2
        ns = ""; al = ""
        for (i = 3; i <= NF; i++) {
            if ($(i) == "ns/op")     ns = $(i - 1)
            if ($(i) == "allocs/op") al = $(i - 1)
        }
        if (ns == "" || !(name in base)) next
        compared++
        if (iters + 0 == 1 || ((name in baseiters) && baseiters[name] == 1)) {
            # Single-iteration timings are one noisy sample on at
            # least one side: record the skip, keep the allocs guard.
            printf "skip %s: ns/op not compared (single-iteration run: current %s iters, baseline %s)\n", name, iters, baseiters[name]
            skipped++
        } else {
            ratio = ns / base[name]
            if (ratio > 1.20) {
                printf "REGRESSION %s: %.4g ns/op vs baseline %.4g (%.0f%%)\n", name, ns, base[name], (ratio - 1) * 100
                fail = 1
            } else {
                printf "ok %s: %.4g ns/op vs baseline %.4g\n", name, ns, base[name]
            }
        }
        # allocs/op guard: >25% growth (or any allocs appearing on a
        # previously allocation-free benchmark) fails the check.
        if (al != "" && (name in basealloc) && basealloc[name] != "-") {
            ab = basealloc[name] + 0
            if (ab == 0) {
                if (al + 0 > 0) {
                    printf "REGRESSION %s: %s allocs/op vs baseline 0\n", name, al
                    fail = 1
                }
            } else if (al / ab > 1.25) {
                printf "REGRESSION %s: %s allocs/op vs baseline %s (%.0f%%)\n", name, al, ab, (al / ab - 1) * 100
                fail = 1
            }
        }
    }
    END {
        # Zero comparisons means the baseline parse found nothing (a
        # reformatted BENCH_repro.json, or the wrong file) — that is a
        # broken guard, not a pass.
        if (compared == 0) { print "bench-check: no benchmarks matched the baseline — guard is not running"; fail = 1 }
        if (fail) print "fail" > failfile
    }
    ' /tmp/bench_baseline_pairs.$$ "$cur"
    [ -f /tmp/bench_check_fail.$$ ] && { rm -f /tmp/bench_check_fail.$$; status=1; }
    rm -f /tmp/bench_baseline_pairs.$$
    exit $status
fi

in="${1:?usage: bench_json.sh <current-bench-output> [seed-baseline-output]}"
base="${2:-}"

emit_array() {
    awk '
    BEGIN { n = 0 }
    /^Benchmark/ {
        name = $1
        sub(/-[0-9]+$/, "", name)  # strip the GOMAXPROCS suffix (-8 etc.)
        iters = $2
        ns = ""; bytes = ""; allocs = ""
        for (i = 3; i <= NF; i++) {
            if ($(i) == "ns/op")     ns = $(i - 1)
            if ($(i) == "B/op")      bytes = $(i - 1)
            if ($(i) == "allocs/op") allocs = $(i - 1)
        }
        if (ns == "") next
        if (n++) printf ",\n"
        printf "    {\"name\": \"%s\", \"iterations\": %s, \"ns_per_op\": %s", name, iters, ns
        if (bytes != "")  printf ", \"bytes_per_op\": %s", bytes
        if (allocs != "") printf ", \"allocs_per_op\": %s", allocs
        printf "}"
    }
    END { print "" }
    ' "$1"
}

meta() {
    awk '
    /^goos:/   { goos = $2 }
    /^goarch:/ { goarch = $2 }
    /^cpu:/    { sub(/^cpu: /, ""); cpu = $0 }
    END { printf "  \"goos\": \"%s\", \"goarch\": \"%s\", \"cpu\": \"%s\"\n", goos, goarch, cpu }
    ' "$1"
}

printf '{\n'
printf '  "benchmarks": [\n'
emit_array "$in"
printf '  ],\n'
if [ -n "$base" ]; then
    printf '  "seed_baseline": [\n'
    emit_array "$base"
    printf '  ],\n'
fi
meta "$in"
printf '}\n'
