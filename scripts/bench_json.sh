#!/bin/sh
# bench_json.sh — convert `go test -bench -benchmem` output into the
# BENCH_repro.json format: one record per benchmark with ns/op, B/op
# and allocs/op. An optional second file (the frozen seed baseline,
# scripts/seed_baseline.bench) is emitted as "seed_baseline" so the
# speedup vs. the pre-workspace implementation stays on record.
#
# Usage: scripts/bench_json.sh current.txt [seed-baseline.txt]
#        scripts/bench_json.sh -check current.txt BENCH_repro.json
#
# Check mode compares a fresh measured run against the committed
# BENCH_repro.json and exits non-zero if any benchmark present in
# both regressed by more than 20% in ns/op — the guard that keeps
# perf PRs from silently undoing each other. Benchmarks only in one
# side (added or retired) are ignored.
set -eu

if [ "${1:-}" = "-check" ]; then
    cur="${2:?usage: bench_json.sh -check <current-bench-output> <BENCH_repro.json>}"
    baseline="${3:?usage: bench_json.sh -check <current-bench-output> <BENCH_repro.json>}"
    # Extract "name ns_per_op" pairs from the committed JSON. Only the
    # "benchmarks" array is read — the emitter writes one record per
    # line, so line-oriented awk is enough — and the "seed_baseline"
    # array is explicitly skipped.
    awk '
    /"benchmarks": \[/  { inb = 1; next }
    inb && /^  \]/      { inb = 0 }
    inb && /"name"/ {
        name = $0; sub(/.*"name": "/, "", name); sub(/".*/, "", name)
        ns = $0; sub(/.*"ns_per_op": /, "", ns); sub(/[,}].*/, "", ns)
        print name, ns
    }
    ' "$baseline" > /tmp/bench_baseline_pairs.$$
    status=0
    awk -v failfile=/tmp/bench_check_fail.$$ '
    NR == FNR { base[$1] = $2; next }
    /^Benchmark/ {
        name = $1
        sub(/-[0-9]+$/, "", name)
        ns = ""
        for (i = 3; i <= NF; i++) if ($(i) == "ns/op") ns = $(i - 1)
        if (ns == "" || !(name in base)) next
        compared++
        ratio = ns / base[name]
        if (ratio > 1.20) {
            printf "REGRESSION %s: %.4g ns/op vs baseline %.4g (%.0f%%)\n", name, ns, base[name], (ratio - 1) * 100
            fail = 1
        } else {
            printf "ok %s: %.4g ns/op vs baseline %.4g\n", name, ns, base[name]
        }
    }
    END {
        # Zero comparisons means the baseline parse found nothing (a
        # reformatted BENCH_repro.json, or the wrong file) — that is a
        # broken guard, not a pass.
        if (compared == 0) { print "bench-check: no benchmarks matched the baseline — guard is not running"; fail = 1 }
        if (fail) print "fail" > failfile
    }
    ' /tmp/bench_baseline_pairs.$$ "$cur"
    [ -f /tmp/bench_check_fail.$$ ] && { rm -f /tmp/bench_check_fail.$$; status=1; }
    rm -f /tmp/bench_baseline_pairs.$$
    exit $status
fi

in="${1:?usage: bench_json.sh <current-bench-output> [seed-baseline-output]}"
base="${2:-}"

emit_array() {
    awk '
    BEGIN { n = 0 }
    /^Benchmark/ {
        name = $1
        sub(/-[0-9]+$/, "", name)  # strip the GOMAXPROCS suffix (-8 etc.)
        iters = $2
        ns = ""; bytes = ""; allocs = ""
        for (i = 3; i <= NF; i++) {
            if ($(i) == "ns/op")     ns = $(i - 1)
            if ($(i) == "B/op")      bytes = $(i - 1)
            if ($(i) == "allocs/op") allocs = $(i - 1)
        }
        if (ns == "") next
        if (n++) printf ",\n"
        printf "    {\"name\": \"%s\", \"iterations\": %s, \"ns_per_op\": %s", name, iters, ns
        if (bytes != "")  printf ", \"bytes_per_op\": %s", bytes
        if (allocs != "") printf ", \"allocs_per_op\": %s", allocs
        printf "}"
    }
    END { print "" }
    ' "$1"
}

meta() {
    awk '
    /^goos:/   { goos = $2 }
    /^goarch:/ { goarch = $2 }
    /^cpu:/    { sub(/^cpu: /, ""); cpu = $0 }
    END { printf "  \"goos\": \"%s\", \"goarch\": \"%s\", \"cpu\": \"%s\"\n", goos, goarch, cpu }
    ' "$1"
}

printf '{\n'
printf '  "benchmarks": [\n'
emit_array "$in"
printf '  ],\n'
if [ -n "$base" ]; then
    printf '  "seed_baseline": [\n'
    emit_array "$base"
    printf '  ],\n'
fi
meta "$in"
printf '}\n'
