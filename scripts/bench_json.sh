#!/bin/sh
# bench_json.sh — convert `go test -bench -benchmem` output into the
# BENCH_repro.json format: one record per benchmark with ns/op, B/op
# and allocs/op. An optional second file (the frozen seed baseline,
# scripts/seed_baseline.bench) is emitted as "seed_baseline" so the
# speedup vs. the pre-workspace implementation stays on record.
#
# Usage: scripts/bench_json.sh current.txt [seed-baseline.txt]
set -eu

in="${1:?usage: bench_json.sh <current-bench-output> [seed-baseline-output]}"
base="${2:-}"

emit_array() {
    awk '
    BEGIN { n = 0 }
    /^Benchmark/ {
        name = $1
        sub(/-[0-9]+$/, "", name)  # strip the GOMAXPROCS suffix (-8 etc.)
        iters = $2
        ns = ""; bytes = ""; allocs = ""
        for (i = 3; i <= NF; i++) {
            if ($(i) == "ns/op")     ns = $(i - 1)
            if ($(i) == "B/op")      bytes = $(i - 1)
            if ($(i) == "allocs/op") allocs = $(i - 1)
        }
        if (ns == "") next
        if (n++) printf ",\n"
        printf "    {\"name\": \"%s\", \"iterations\": %s, \"ns_per_op\": %s", name, iters, ns
        if (bytes != "")  printf ", \"bytes_per_op\": %s", bytes
        if (allocs != "") printf ", \"allocs_per_op\": %s", allocs
        printf "}"
    }
    END { print "" }
    ' "$1"
}

meta() {
    awk '
    /^goos:/   { goos = $2 }
    /^goarch:/ { goarch = $2 }
    /^cpu:/    { sub(/^cpu: /, ""); cpu = $0 }
    END { printf "  \"goos\": \"%s\", \"goarch\": \"%s\", \"cpu\": \"%s\"\n", goos, goarch, cpu }
    ' "$1"
}

printf '{\n'
printf '  "benchmarks": [\n'
emit_array "$in"
printf '  ],\n'
if [ -n "$base" ]; then
    printf '  "seed_baseline": [\n'
    emit_array "$base"
    printf '  ],\n'
fi
meta "$in"
printf '}\n'
