package repro

// End-to-end guard for the snapshot-backed enterprise: the same
// Options must yield bit-identical experiment results whether the
// workspace was materialized in memory, cold-built into the snapshot
// store (sharded), or warm-mapped back from it — and a directory that
// cannot hold snapshots must degrade to plain materialization, never
// to an error.

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

// runTriple renders the three golden-file experiments for one
// enterprise.
func runTriple(t *testing.T, e *Enterprise) (any, any, any) {
	t.Helper()
	cfg := DefaultExperimentConfig()
	f1, err := Fig1(e, cfg)
	if err != nil {
		t.Fatal(err)
	}
	f3a, err := Fig3a(e, cfg)
	if err != nil {
		t.Fatal(err)
	}
	t3, err := Table3(e, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return f1, f3a, t3
}

func TestEnterpriseSnapshotColdWarmMatchesInMemory(t *testing.T) {
	// The "plain" baselines below must really materialize in memory:
	// with REPRO_SNAPSHOT_DIR set (the snapshot-smoke job), an empty
	// Options.SnapshotDir would silently ride the shared store and
	// the comparison would degrade to snapshot-vs-snapshot.
	t.Setenv("REPRO_SNAPSHOT_DIR", "")
	dir := t.TempDir()
	opts := Options{Users: 14, Weeks: 2, Seed: 1}

	plain, err := NewEnterprise(opts)
	if err != nil {
		t.Fatal(err)
	}
	wantF1, wantF3a, wantT3 := runTriple(t, plain)

	snapOpts := opts
	snapOpts.SnapshotDir = dir
	snapOpts.SnapshotShard = 5 // force several shards on the cold build
	cold, err := NewEnterprise(snapOpts)
	if err != nil {
		t.Fatal(err)
	}
	cold.Materialize()
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	// A sealed store is exactly the snapshot plus its manifest
	// sidecar (the per-shard integrity index OpenUser reads) — no
	// temp files, no leftover parts.
	if len(ents) != 2 || filepath.Ext(ents[0].Name()) != ".snap" ||
		ents[1].Name() != ents[0].Name()+".manifest" {
		t.Fatalf("cold materialize left %v in the store, want one sealed .snap plus its .manifest", ents)
	}
	gotF1, gotF3a, gotT3 := runTriple(t, cold)
	if !reflect.DeepEqual(gotF1, wantF1) || !reflect.DeepEqual(gotF3a, wantF3a) || !reflect.DeepEqual(gotT3, wantT3) {
		t.Fatal("cold snapshot-backed results diverge from in-memory results")
	}

	// Warm: a fresh enterprise with the same options must map the
	// sealed file (mtime unchanged → no rewrite) and agree again.
	before, err := os.Stat(filepath.Join(dir, ents[0].Name()))
	if err != nil {
		t.Fatal(err)
	}
	warm, err := NewEnterprise(snapOpts)
	if err != nil {
		t.Fatal(err)
	}
	gotF1, gotF3a, gotT3 = runTriple(t, warm)
	if !reflect.DeepEqual(gotF1, wantF1) || !reflect.DeepEqual(gotF3a, wantF3a) || !reflect.DeepEqual(gotT3, wantT3) {
		t.Fatal("warm snapshot-backed results diverge from in-memory results")
	}
	after, err := os.Stat(filepath.Join(dir, ents[0].Name()))
	if err != nil {
		t.Fatal(err)
	}
	if !after.ModTime().Equal(before.ModTime()) || after.Size() != before.Size() {
		t.Fatal("warm run rewrote the snapshot instead of mapping it")
	}
}

func TestEnterpriseSnapshotCorruptFallsBack(t *testing.T) {
	t.Setenv("REPRO_SNAPSHOT_DIR", "") // keep the baseline in-memory
	dir := t.TempDir()
	opts := Options{Users: 6, Weeks: 2, Seed: 3, SnapshotDir: dir}
	cold, err := NewEnterprise(opts)
	if err != nil {
		t.Fatal(err)
	}
	cold.Materialize()
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, ents[0].Name())
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	b[len(b)/2] ^= 0x01
	if err := os.WriteFile(path, b, 0o644); err != nil {
		t.Fatal(err)
	}

	plain, err := NewEnterprise(Options{Users: 6, Weeks: 2, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	wantF1, _, _ := runTriple(t, plain)
	damaged, err := NewEnterprise(opts)
	if err != nil {
		t.Fatal(err)
	}
	gotF1, _, _ := runTriple(t, damaged)
	if !reflect.DeepEqual(gotF1, wantF1) {
		t.Fatal("corrupt snapshot was not rejected in favor of regeneration")
	}
}

func TestEnterpriseSnapshotUnwritableDirFallsBack(t *testing.T) {
	t.Setenv("REPRO_SNAPSHOT_DIR", "") // keep the baseline in-memory
	plain, err := NewEnterprise(Options{Users: 5, Weeks: 2, Seed: 2})
	if err != nil {
		t.Fatal(err)
	}
	wantF1, _, _ := runTriple(t, plain)
	// A path under a regular file can neither be created nor written.
	bad := filepath.Join(t.TempDir(), "file")
	if err := os.WriteFile(bad, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	e, err := NewEnterprise(Options{Users: 5, Weeks: 2, Seed: 2, SnapshotDir: filepath.Join(bad, "sub")})
	if err != nil {
		t.Fatal(err)
	}
	gotF1, _, _ := runTriple(t, e)
	if !reflect.DeepEqual(gotF1, wantF1) {
		t.Fatal("unwritable snapshot dir did not fall back to in-memory materialization")
	}
}
