// Command tracegen materializes synthetic enterprise end-host packet
// traces to disk in the .etr format, one file per user — the role of
// the paper's windump-wrapper collection tool.
//
// Usage:
//
//	tracegen -out /tmp/traces -users 10 -weeks 1 [-seed 1] [-bin 15]
//	tracegen -snapshot /var/cache/repro -users 20000 -weeks 2
//
// Each file <out>/host-<id>.etr contains the user's full packet
// stream; internal/flows.ExtractTrace (or cmd/hidsd) turns it back
// into feature time series that agree bit-for-bit with the
// generator's fast path.
//
// With -snapshot, the population's feature workspace is additionally
// materialized into the content-addressed snapshot store (streamed in
// -shard-user batches, so a 100k-user enterprise fits laptop memory);
// -out may then be omitted to produce only the snapshot. A snapshot
// that already exists for these parameters is left untouched — the
// run reports the warm hit and skips generation.
//
// Distributed snapshot builds split the work across processes or
// hosts sharing the store directory:
//
//	tracegen -snapshot DIR -users 100000 -shard-range 0:50000      # host A
//	tracegen -snapshot DIR -users 100000 -shard-range 50000:100000 # host B
//	tracegen -snapshot DIR -users 100000 -merge                    # coordinator
//
// Each -shard-range run seals its user slice as an independently
// checksummed part file; -merge validates that the sealed parts tile
// the population and seals the canonical snapshot + manifest,
// byte-identical to a single-process build. -workers N does the same
// fan-out with N in-process builders in one invocation.
//
// The store itself is managed with the gc subcommand:
//
//	tracegen gc -snapshot DIR [-keep N] [-max-bytes B] [-dry-run]
//
// which keeps the newest N sealed snapshots within the byte budget
// and removes evicted snapshots, orphaned manifests and already
// merged part leftovers.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"time"

	"repro/internal/analysis"
	"repro/internal/features"
	"repro/internal/netsim"
	"repro/internal/snapshot"
	"repro/internal/trace"
)

func main() {
	if len(os.Args) > 1 && os.Args[1] == "gc" {
		runGC(os.Args[2:])
		return
	}
	out := flag.String("out", "", "packet-trace output directory")
	users := flag.Int("users", 10, "number of end hosts")
	weeks := flag.Int("weeks", 1, "weeks of capture")
	seed := flag.Uint64("seed", 1, "population seed")
	binMinutes := flag.Int("bin", 15, "aggregation window in minutes")
	pcap := flag.Bool("pcap", false, "also write libpcap files (host-NNN.pcap) readable by tcpdump/wireshark")
	snapDir := flag.String("snapshot", "", "also materialize the feature workspace into this snapshot directory")
	shard := flag.Int("shard", 0, "users per shard when materializing the snapshot (0 = default)")
	workers := flag.Int("workers", 0, "coordinator mode: build the snapshot as N in-process shard parts and merge (0/1 = single streaming build)")
	shardRange := flag.String("shard-range", "", "worker mode: build only users lo:hi as a sealed snapshot part (requires -snapshot)")
	merge := flag.Bool("merge", false, "coordinator mode: merge previously built -shard-range parts into the sealed snapshot (requires -snapshot)")
	flag.Parse()
	if *out == "" && *snapDir == "" {
		flag.Usage()
		os.Exit(2)
	}
	if (*shardRange != "" || *merge) && *snapDir == "" {
		log.Fatalf("tracegen: -shard-range and -merge need -snapshot")
	}

	pop, err := trace.NewPopulation(trace.Config{
		Users:    *users,
		Weeks:    *weeks,
		Seed:     *seed,
		BinWidth: time.Duration(*binMinutes) * time.Minute,
	})
	if err != nil {
		log.Fatalf("tracegen: %v", err)
	}
	switch {
	case *shardRange != "":
		buildShardRange(pop, *snapDir, *shardRange, *shard)
		return
	case *merge:
		mergeShards(pop, *snapDir)
		return
	case *snapDir != "":
		writeSnapshot(pop, *snapDir, *shard, *workers)
	}
	if *out == "" {
		return
	}
	if err := os.MkdirAll(*out, 0o755); err != nil {
		log.Fatalf("tracegen: %v", err)
	}
	start := time.Now()
	var totalRecords int64
	for _, u := range pop.Users {
		path := filepath.Join(*out, fmt.Sprintf("host-%03d.etr", u.ID))
		f, err := os.Create(path)
		if err != nil {
			log.Fatalf("tracegen: %v", err)
		}
		n, err := u.WriteTrace(f, 0, u.Bins())
		if err != nil {
			log.Fatalf("tracegen: writing %s: %v", path, err)
		}
		if err := f.Close(); err != nil {
			log.Fatalf("tracegen: closing %s: %v", path, err)
		}
		totalRecords += n
		fmt.Printf("%s: %d packets (%s heavy=%v)\n", path, n, u.Addr, u.Heavy)
		if *pcap {
			ppath := filepath.Join(*out, fmt.Sprintf("host-%03d.pcap", u.ID))
			pf, err := os.Create(ppath)
			if err != nil {
				log.Fatalf("tracegen: %v", err)
			}
			pw, err := netsim.NewPcapWriter(pf, 0)
			if err != nil {
				log.Fatalf("tracegen: %v", err)
			}
			var perr error
			for b := 0; b < u.Bins() && perr == nil; b++ {
				u.EmitBin(b, func(rec netsim.Record) {
					if perr == nil {
						perr = pw.Write(rec)
					}
				})
			}
			if perr != nil {
				log.Fatalf("tracegen: pcap %s: %v", ppath, perr)
			}
			if err := pw.Flush(); err != nil {
				log.Fatalf("tracegen: %v", err)
			}
			if err := pf.Close(); err != nil {
				log.Fatalf("tracegen: %v", err)
			}
			fmt.Printf("%s: %d packets (pcap)\n", ppath, pw.Count())
		}
	}
	fmt.Printf("wrote %d packets for %d users in %v\n",
		totalRecords, *users, time.Since(start).Round(time.Millisecond))
}

// writeSnapshot materializes the population's feature workspace into
// the content-addressed store, shard by shard, unless a valid
// snapshot for these parameters already exists.
func writeSnapshot(pop *trace.Population, dir string, shard, workers int) {
	key, err := snapshot.KeyFor(pop.Cfg)
	if err != nil {
		log.Fatalf("tracegen: snapshot key: %v", err)
	}
	start := time.Now()
	ws, warm, err := analysis.LoadOrMaterialize(dir, key, shard, workers, pop.CostWeights(),
		func(stage string, werr error) {
			log.Printf("tracegen: snapshot %s fallback: %v", stage, werr)
		},
		func(u int, rows [][features.NumFeatures]float64) {
			pop.Users[u].FillSeries(rows)
		})
	if err != nil {
		log.Fatalf("tracegen: materializing snapshot: %v", err)
	}
	ws.Close()
	if warm {
		fmt.Printf("%s: warm (mapped in %v), generation skipped\n",
			key.Path(dir), time.Since(start).Round(time.Millisecond))
		return
	}
	fmt.Printf("%s: materialized %d users in %v\n",
		key.Path(dir), pop.Cfg.Users, time.Since(start).Round(time.Millisecond))
}

// buildShardRange is the distributed-build worker: it seals users
// lo:hi of the population as an independently checksummed part file
// next to where the final snapshot will live.
func buildShardRange(pop *trace.Population, dir, rng string, shard int) {
	var lo, hi int
	if n, err := fmt.Sscanf(rng, "%d:%d", &lo, &hi); n != 2 || err != nil {
		log.Fatalf("tracegen: -shard-range wants lo:hi, got %q", rng)
	}
	key, err := snapshot.KeyFor(pop.Cfg)
	if err != nil {
		log.Fatalf("tracegen: snapshot key: %v", err)
	}
	start := time.Now()
	if err := analysis.BuildShardRange(dir, key, lo, hi, shard, func(u int, rows [][features.NumFeatures]float64) {
		pop.Users[u].FillSeries(rows)
	}); err != nil {
		log.Fatalf("tracegen: building shard range: %v", err)
	}
	fmt.Printf("%s: sealed part for users [%d, %d) in %v\n",
		key.PartPath(dir, lo, hi), lo, hi, time.Since(start).Round(time.Millisecond))
}

// mergeShards is the distributed-build coordinator finale: it
// validates that the sealed parts tile the population and seals the
// canonical snapshot + manifest.
func mergeShards(pop *trace.Population, dir string) {
	key, err := snapshot.KeyFor(pop.Cfg)
	if err != nil {
		log.Fatalf("tracegen: snapshot key: %v", err)
	}
	start := time.Now()
	n, err := snapshot.MergeShards(dir, key)
	if err != nil {
		log.Fatalf("tracegen: merging shards: %v", err)
	}
	fmt.Printf("%s: merged %d parts in %v\n",
		key.Path(dir), n, time.Since(start).Round(time.Millisecond))
}

// runGC is the "tracegen gc" subcommand: retention for a snapshot
// store directory.
func runGC(args []string) {
	fs := flag.NewFlagSet("tracegen gc", flag.ExitOnError)
	dir := fs.String("snapshot", "", "snapshot store directory (required)")
	keep := fs.Int("keep", 0, "keep at most N newest sealed snapshots (0 = no count cap)")
	maxBytes := fs.Int64("max-bytes", 0, "total byte budget for kept snapshots (0 = no byte cap)")
	dryRun := fs.Bool("dry-run", false, "report what would be removed without removing it")
	fs.Parse(args)
	if *dir == "" {
		fs.Usage()
		os.Exit(2)
	}
	st, err := snapshot.GC(*dir, snapshot.GCOptions{
		KeepLatest: *keep, MaxBytes: *maxBytes, DryRun: *dryRun,
	})
	if err != nil {
		log.Fatalf("tracegen: gc: %v", err)
	}
	verb := "removed"
	if *dryRun {
		verb = "would remove"
	}
	fmt.Printf("%s: kept %d snapshots, %s %d files (%d bytes)\n",
		*dir, st.Kept, verb, st.Removed, st.FreedBytes)
}
