// Command tracegen materializes synthetic enterprise end-host packet
// traces to disk in the .etr format, one file per user — the role of
// the paper's windump-wrapper collection tool.
//
// Usage:
//
//	tracegen -out /tmp/traces -users 10 -weeks 1 [-seed 1] [-bin 15]
//	tracegen -snapshot /var/cache/repro -users 20000 -weeks 2
//
// Each file <out>/host-<id>.etr contains the user's full packet
// stream; internal/flows.ExtractTrace (or cmd/hidsd) turns it back
// into feature time series that agree bit-for-bit with the
// generator's fast path.
//
// With -snapshot, the population's feature workspace is additionally
// materialized into the content-addressed snapshot store (streamed in
// -shard-user batches, so a 100k-user enterprise fits laptop memory);
// -out may then be omitted to produce only the snapshot. A snapshot
// that already exists for these parameters is left untouched — the
// run reports the warm hit and skips generation.
//
// Distributed snapshot builds split the work across processes or
// hosts sharing the store directory:
//
//	tracegen -snapshot DIR -users 100000 -shard-range 0:50000      # host A
//	tracegen -snapshot DIR -users 100000 -shard-range 50000:100000 # host B
//	tracegen -snapshot DIR -users 100000 -merge                    # coordinator
//
// Each -shard-range run seals its user slice as an independently
// checksummed part file; -merge validates that the sealed parts tile
// the population and seals the canonical snapshot + manifest,
// byte-identical to a single-process build. -workers N does the same
// fan-out with N in-process builders in one invocation.
//
// -shard-range speaks the coordinator worker protocol: on success it
// prints one JSON line (range, sealed bytes, payload CRC, elapsed) on
// stdout and exits 0; transient build failures exit 3 (retryable),
// invalid key/range/config exit 4 (fatal). Human-readable progress
// goes to stderr.
//
// -coordinate runs the fault-tolerant build coordinator
// (internal/buildctl) instead of the fail-fast -workers fan-out:
// failed ranges back off and retry, stragglers are hedged, repeatedly
// failing ranges are re-cut, and an interrupted build resumes from
// the verified parts on disk. -fault injects a seeded chaos plan
// ("crash=0.3,slow=0.2,hang=0.1,corrupt=0.1,limit=2,slowms=50") for
// smoke-testing the coordinator against itself; -halt-after N stops
// after N newly sealed parts to exercise resumption.
//
// Multi-host builds move the workers to other machines. Each worker
// host runs a daemon; the coordinator dispatches ranges to them over
// the internal/remotework transport and streams the sealed parts
// back into its own store:
//
//	tracegen -snapshot SCRATCH -serve 0.0.0.0:9470                  # worker hosts
//	tracegen -snapshot DIR -users 100000 -coordinate \
//	    -hosts hosta:9470,hostb:9470                                # coordinator
//
// Streamed parts are CRC-checked chunk by chunk and resume from the
// received offset after a reconnect, so a daemon killed mid-stream
// costs only the missing tail. Hung hosts are detected by heartbeat
// and fail into the hedge path; repeat offenders are quarantined and
// re-admitted after probation; observed per-host throughput feeds the
// coordinator's range re-cuts. On exit, -coordinate -hosts prints a
// one-line JSON transport summary (per-host attempts, heartbeat
// misses, bytes streamed and re-streamed, final weights). -serve
// takes -addr-file (write the bound address, for :0 ports) and
// -serve-delay (slow builds down for chaos-smoke kill windows);
// -chunk sets the stream chunk size.
//
// The store itself is managed with the gc subcommand:
//
//	tracegen gc -snapshot DIR [-keep N] [-max-bytes B] [-part-age D] [-dry-run]
//
// which keeps the newest N sealed snapshots within the byte budget
// and removes evicted snapshots, orphaned manifests, already merged
// part leftovers, and parts or quarantined *.bad corpses from builds
// abandoned longer than -part-age ago.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/signal"
	"path/filepath"
	"strconv"
	"strings"
	"syscall"
	"time"

	"repro/internal/analysis"
	"repro/internal/buildctl"
	"repro/internal/features"
	"repro/internal/netsim"
	"repro/internal/remotework"
	"repro/internal/snapshot"
	"repro/internal/trace"
)

func main() {
	if len(os.Args) > 1 && os.Args[1] == "gc" {
		runGC(os.Args[2:])
		return
	}
	out := flag.String("out", "", "packet-trace output directory")
	users := flag.Int("users", 10, "number of end hosts")
	weeks := flag.Int("weeks", 1, "weeks of capture")
	seed := flag.Uint64("seed", 1, "population seed")
	binMinutes := flag.Int("bin", 15, "aggregation window in minutes")
	pcap := flag.Bool("pcap", false, "also write libpcap files (host-NNN.pcap) readable by tcpdump/wireshark")
	snapDir := flag.String("snapshot", "", "also materialize the feature workspace into this snapshot directory")
	shard := flag.Int("shard", 0, "users per shard when materializing the snapshot (0 = default)")
	workers := flag.Int("workers", 0, "coordinator mode: build the snapshot as N in-process shard parts and merge (0/1 = single streaming build)")
	shardRange := flag.String("shard-range", "", "worker mode: build only users lo:hi as a sealed snapshot part (requires -snapshot)")
	merge := flag.Bool("merge", false, "coordinator mode: merge previously built -shard-range parts into the sealed snapshot (requires -snapshot)")
	coordinate := flag.Bool("coordinate", false, "fault-tolerant coordinator mode: drive the snapshot build to sealed with retries, hedging and resume (requires -snapshot)")
	ranges := flag.Int("ranges", 0, "coordinate: target number of build ranges (0 = one per worker)")
	retries := flag.Int("retries", 0, "coordinate: attempts per range before the build aborts (0 = default)")
	attemptTimeout := flag.Duration("attempt-timeout", 0, "coordinate: wall-clock bound per attempt (0 = none)")
	hedgeAfter := flag.Duration("hedge-after", 0, "coordinate: minimum straggler age before a duplicate attempt is hedged (0 = median-based only)")
	haltAfter := flag.Int("halt-after", 0, "coordinate: stop after N newly sealed parts (resumable; 0 = run to completion)")
	faultSpec := flag.String("fault", "", `coordinate: seeded chaos plan, e.g. "crash=0.3,slow=0.2,hang=0.1,corrupt=0.1,limit=2,slowms=50"`)
	faultSeed := flag.Uint64("fault-seed", 1, "coordinate: seed for -fault draws and retry jitter")
	serve := flag.String("serve", "", "daemon mode: listen on ADDR and build/stream snapshot parts for remote coordinators (requires -snapshot as the scratch store)")
	addrFile := flag.String("addr-file", "", "serve: write the bound listen address to this file (useful with :0 ephemeral ports)")
	serveDelay := flag.Duration("serve-delay", 0, "serve: artificial delay per built user (widens chaos-smoke kill windows)")
	hosts := flag.String("hosts", "", "coordinate: comma-separated daemon addresses to dispatch ranges to instead of building in-process")
	chunk := flag.Int("chunk", 0, "coordinate -hosts: part stream chunk size in bytes (0 = default)")
	flag.Parse()
	if *serve == "" && *out == "" && *snapDir == "" {
		flag.Usage()
		os.Exit(2)
	}
	if (*shardRange != "" || *merge || *coordinate || *serve != "") && *snapDir == "" {
		log.Fatalf("tracegen: -shard-range, -merge, -coordinate and -serve need -snapshot")
	}

	// Ctrl-C / SIGTERM cancels in-flight builds cleanly: part writers
	// abort their temp files, nothing partial is ever sealed, and a
	// -coordinate build resumes from its verified parts next run.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if *serve != "" {
		runServe(ctx, *serve, *snapDir, *addrFile, *serveDelay)
		return
	}

	pop, err := trace.NewPopulation(trace.Config{
		Users:    *users,
		Weeks:    *weeks,
		Seed:     *seed,
		BinWidth: time.Duration(*binMinutes) * time.Minute,
	})
	if err != nil {
		if *shardRange != "" {
			workerExit(buildctl.ExitFatal, "%v", err)
		}
		log.Fatalf("tracegen: %v", err)
	}
	switch {
	case *shardRange != "":
		buildShardRangeCmd(ctx, pop, *snapDir, *shardRange, *shard)
		return
	case *merge:
		mergeShards(pop, *snapDir)
		return
	case *coordinate:
		coordinateBuild(ctx, pop, *snapDir, coordOptions{
			shard: *shard, workers: *workers, ranges: *ranges,
			retries: *retries, attemptTimeout: *attemptTimeout,
			hedgeAfter: *hedgeAfter, haltAfter: *haltAfter,
			faultSpec: *faultSpec, faultSeed: *faultSeed,
			hosts: *hosts, chunk: *chunk,
		})
		return
	case *snapDir != "":
		writeSnapshot(ctx, pop, *snapDir, *shard, *workers)
	}
	if *out == "" {
		return
	}
	if err := os.MkdirAll(*out, 0o755); err != nil {
		log.Fatalf("tracegen: %v", err)
	}
	start := time.Now()
	var totalRecords int64
	for _, u := range pop.Users {
		path := filepath.Join(*out, fmt.Sprintf("host-%03d.etr", u.ID))
		f, err := os.Create(path)
		if err != nil {
			log.Fatalf("tracegen: %v", err)
		}
		n, err := u.WriteTrace(f, 0, u.Bins())
		if err != nil {
			log.Fatalf("tracegen: writing %s: %v", path, err)
		}
		if err := f.Close(); err != nil {
			log.Fatalf("tracegen: closing %s: %v", path, err)
		}
		totalRecords += n
		fmt.Printf("%s: %d packets (%s heavy=%v)\n", path, n, u.Addr, u.Heavy)
		if *pcap {
			ppath := filepath.Join(*out, fmt.Sprintf("host-%03d.pcap", u.ID))
			pf, err := os.Create(ppath)
			if err != nil {
				log.Fatalf("tracegen: %v", err)
			}
			pw, err := netsim.NewPcapWriter(pf, 0)
			if err != nil {
				log.Fatalf("tracegen: %v", err)
			}
			var perr error
			for b := 0; b < u.Bins() && perr == nil; b++ {
				u.EmitBin(b, func(rec netsim.Record) {
					if perr == nil {
						perr = pw.Write(rec)
					}
				})
			}
			if perr != nil {
				log.Fatalf("tracegen: pcap %s: %v", ppath, perr)
			}
			if err := pw.Flush(); err != nil {
				log.Fatalf("tracegen: %v", err)
			}
			if err := pf.Close(); err != nil {
				log.Fatalf("tracegen: %v", err)
			}
			fmt.Printf("%s: %d packets (pcap)\n", ppath, pw.Count())
		}
	}
	fmt.Printf("wrote %d packets for %d users in %v\n",
		totalRecords, *users, time.Since(start).Round(time.Millisecond))
}

// writeSnapshot materializes the population's feature workspace into
// the content-addressed store, shard by shard, unless a valid
// snapshot for these parameters already exists.
func writeSnapshot(ctx context.Context, pop *trace.Population, dir string, shard, workers int) {
	key, err := snapshot.KeyFor(pop.Cfg)
	if err != nil {
		log.Fatalf("tracegen: snapshot key: %v", err)
	}
	start := time.Now()
	ws, warm, err := analysis.LoadOrMaterialize(ctx, dir, key, shard, workers, pop.CostWeights(),
		func(stage string, werr error) {
			log.Printf("tracegen: snapshot %s fallback: %v", stage, werr)
		},
		func(u int, rows [][features.NumFeatures]float64) {
			pop.Users[u].FillSeries(rows)
		})
	if err != nil {
		log.Fatalf("tracegen: materializing snapshot: %v", err)
	}
	ws.Close()
	if warm {
		fmt.Printf("%s: warm (mapped in %v), generation skipped\n",
			key.Path(dir), time.Since(start).Round(time.Millisecond))
		return
	}
	fmt.Printf("%s: materialized %d users in %v\n",
		key.Path(dir), pop.Cfg.Users, time.Since(start).Round(time.Millisecond))
}

// workerExit is the worker-protocol error path: message on stderr,
// classified exit code (buildctl.ExitRetryable for transient build
// failures, buildctl.ExitFatal for invalid key/range/config a retry
// cannot fix).
func workerExit(code int, format string, args ...any) {
	fmt.Fprintf(os.Stderr, "tracegen: "+format+"\n", args...)
	os.Exit(code)
}

// buildShardRangeCmd is the distributed-build worker: it seals users
// lo:hi of the population as an independently checksummed part file
// next to where the final snapshot will live, then reports the sealed
// range as one machine-readable JSON line on stdout — the protocol
// buildctl.ExecWorker consumes.
func buildShardRangeCmd(ctx context.Context, pop *trace.Population, dir, rng string, shard int) {
	var lo, hi int
	if n, err := fmt.Sscanf(rng, "%d:%d", &lo, &hi); n != 2 || err != nil {
		workerExit(buildctl.ExitFatal, "-shard-range wants lo:hi, got %q", rng)
	}
	key, err := snapshot.KeyFor(pop.Cfg)
	if err != nil {
		workerExit(buildctl.ExitFatal, "snapshot key: %v", err)
	}
	if lo < 0 || hi <= lo || hi > key.Users {
		workerExit(buildctl.ExitFatal, "range [%d, %d) invalid for %d users", lo, hi, key.Users)
	}
	start := time.Now()
	if err := analysis.BuildShardRange(ctx, dir, key, lo, hi, shard, func(u int, rows [][features.NumFeatures]float64) {
		pop.Users[u].FillSeries(rows)
	}); err != nil {
		workerExit(buildctl.ExitRetryable, "building shard range: %v", err)
	}
	info, err := snapshot.VerifyPart(dir, key, lo, hi)
	if err != nil {
		workerExit(buildctl.ExitRetryable, "sealed part failed verification: %v", err)
	}
	res, err := json.Marshal(buildctl.RangeResult{
		Lo: lo, Hi: hi, Bytes: info.Bytes,
		CRC:       fmt.Sprintf("%08x", info.CRC),
		ElapsedMS: time.Since(start).Milliseconds(),
	})
	if err != nil {
		workerExit(buildctl.ExitRetryable, "encoding result: %v", err)
	}
	fmt.Println(string(res))
	fmt.Fprintf(os.Stderr, "%s: sealed part for users [%d, %d) in %v\n",
		info.Path, lo, hi, time.Since(start).Round(time.Millisecond))
}

// coordOptions carries the -coordinate flag bundle.
type coordOptions struct {
	shard, workers, ranges int
	retries                int
	attemptTimeout         time.Duration
	hedgeAfter             time.Duration
	haltAfter              int
	faultSpec              string
	faultSeed              uint64
	hosts                  string
	chunk                  int
}

// runServe is daemon mode: serve remote build sessions until the
// process is signalled. The -snapshot directory is the scratch store;
// parts sealed there double as the resume cache for reconnecting
// coordinators.
func runServe(ctx context.Context, addr, dir, addrFile string, delay time.Duration) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		log.Fatalf("tracegen: %v", err)
	}
	l, err := net.Listen("tcp", addr)
	if err != nil {
		log.Fatalf("tracegen: serve: %v", err)
	}
	if addrFile != "" {
		if err := os.WriteFile(addrFile, []byte(l.Addr().String()+"\n"), 0o644); err != nil {
			log.Fatalf("tracegen: serve: %v", err)
		}
	}
	d := &remotework.Daemon{Dir: dir, BuildDelay: delay, Logf: log.Printf}
	go func() {
		<-ctx.Done()
		l.Close()
	}()
	log.Printf("tracegen: serving remote builds on %s (scratch %s)", l.Addr(), dir)
	err = d.Serve(l)
	if ctx.Err() != nil {
		return
	}
	log.Fatalf("tracegen: serve: %v", err)
}

// remotePool wires the -hosts list into a remotework.Pool worker.
func remotePool(pop *trace.Population, dir string, key snapshot.Key, o coordOptions) *remotework.Pool {
	var hs []remotework.Host
	for _, a := range strings.Split(o.hosts, ",") {
		addr := strings.TrimSpace(a)
		if addr == "" {
			continue
		}
		hs = append(hs, remotework.Host{Name: addr, Dial: func(ctx context.Context) (net.Conn, error) {
			var d net.Dialer
			return d.DialContext(ctx, "tcp", addr)
		}})
	}
	if len(hs) == 0 {
		log.Fatalf("tracegen: -hosts %q names no hosts", o.hosts)
	}
	return &remotework.Pool{
		Dir: dir, Key: key, Cfg: pop.Cfg, Hosts: hs,
		ChunkBytes: o.chunk, Seed: o.faultSeed,
		BaseWeights: pop.CostWeights(), Logf: log.Printf,
	}
}

// parseFaultPlan decodes the -fault spec: comma-separated key=value
// pairs over crash/hang/slow/corrupt probabilities, an attempt limit,
// and the injected slowdown in milliseconds.
func parseFaultPlan(spec string, seed uint64) (buildctl.FaultPlan, error) {
	plan := buildctl.FaultPlan{Seed: seed, Limit: 2}
	for _, kv := range strings.Split(spec, ",") {
		k, v, ok := strings.Cut(strings.TrimSpace(kv), "=")
		if !ok {
			return plan, fmt.Errorf("fault spec term %q is not key=value", kv)
		}
		switch k {
		case "crash", "hang", "slow", "corrupt":
			f, err := strconv.ParseFloat(v, 64)
			if err != nil || f < 0 || f > 1 {
				return plan, fmt.Errorf("fault probability %q=%q out of [0, 1]", k, v)
			}
			switch k {
			case "crash":
				plan.Crash = f
			case "hang":
				plan.Hang = f
			case "slow":
				plan.Slow = f
			case "corrupt":
				plan.Corrupt = f
			}
		case "limit":
			n, err := strconv.Atoi(v)
			if err != nil || n < 0 {
				return plan, fmt.Errorf("fault limit %q invalid", v)
			}
			plan.Limit = n
		case "slowms":
			n, err := strconv.Atoi(v)
			if err != nil || n < 0 {
				return plan, fmt.Errorf("fault slowms %q invalid", v)
			}
			plan.SlowDelay = time.Duration(n) * time.Millisecond
		default:
			return plan, fmt.Errorf("unknown fault key %q", k)
		}
	}
	return plan, nil
}

// coordinateBuild drives the snapshot to sealed via the buildctl
// coordinator: resumable, retrying, hedging — and optionally under an
// injected chaos plan, which is how the build-chaos smoke proves the
// whole control plane converges to the clean build's exact bytes.
func coordinateBuild(ctx context.Context, pop *trace.Population, dir string, o coordOptions) {
	key, err := snapshot.KeyFor(pop.Cfg)
	if err != nil {
		log.Fatalf("tracegen: snapshot key: %v", err)
	}
	var worker buildctl.Worker = &buildctl.LocalWorker{
		Dir: dir, Key: key, ShardUsers: o.shard,
		Generate: func(u int, rows [][features.NumFeatures]float64) {
			pop.Users[u].FillSeries(rows)
		},
	}
	var pool *remotework.Pool
	var weightsFn func() []float64
	if o.hosts != "" {
		pool = remotePool(pop, dir, key, o)
		worker = pool
		// Observed per-host throughput steers the coordinator's
		// re-cuts toward the users that actually cost the most.
		weightsFn = pool.WeightsFn
	}
	if o.faultSpec != "" {
		plan, err := parseFaultPlan(o.faultSpec, o.faultSeed)
		if err != nil {
			log.Fatalf("tracegen: -fault: %v", err)
		}
		worker = &buildctl.FaultyWorker{Inner: worker, Plan: plan, Dir: dir, Key: key}
	}
	summary := func() {
		if pool == nil {
			return
		}
		js, err := json.Marshal(pool.Summary())
		if err != nil {
			log.Printf("tracegen: encoding transport summary: %v", err)
			return
		}
		fmt.Println(string(js))
	}
	start := time.Now()
	st, err := buildctl.Build(ctx, buildctl.Options{
		Dir: dir, Key: key, Worker: worker,
		Parallel: o.workers, Ranges: o.ranges, Weights: pop.CostWeights(),
		WeightsFn:  weightsFn,
		ShardUsers: o.shard, MaxAttempts: o.retries,
		AttemptTimeout: o.attemptTimeout, HedgeAfter: o.hedgeAfter,
		Seed: o.faultSeed, HaltAfter: o.haltAfter,
		Logf: log.Printf,
	})
	switch {
	case errors.Is(err, buildctl.ErrHalted):
		summary()
		fmt.Printf("%s: halted after %d newly sealed parts (attempts=%d failures=%d); rerun to resume\n",
			key.Path(dir), st.SealedParts, st.Attempts, st.Failures)
		return
	case err != nil:
		summary()
		log.Fatalf("tracegen: coordinated build: %v", err)
	case st.Warm:
		fmt.Printf("%s: warm, nothing to coordinate\n", key.Path(dir))
		return
	}
	summary()
	fmt.Printf("%s: coordinated build merged %d parts (attempts=%d failures=%d hedges=%d recuts=%d resumed=%d quarantined=%d rebuilt=%d users) in %v\n",
		key.Path(dir), st.MergedParts, st.Attempts, st.Failures, st.Hedges,
		st.Recuts, st.ResumedParts, st.QuarantinedParts, st.RebuiltUsers,
		time.Since(start).Round(time.Millisecond))
}

// mergeShards is the distributed-build coordinator finale: it
// validates that the sealed parts tile the population and seals the
// canonical snapshot + manifest.
func mergeShards(pop *trace.Population, dir string) {
	key, err := snapshot.KeyFor(pop.Cfg)
	if err != nil {
		log.Fatalf("tracegen: snapshot key: %v", err)
	}
	start := time.Now()
	n, err := snapshot.MergeShards(dir, key)
	if err != nil {
		log.Fatalf("tracegen: merging shards: %v", err)
	}
	fmt.Printf("%s: merged %d parts in %v\n",
		key.Path(dir), n, time.Since(start).Round(time.Millisecond))
}

// runGC is the "tracegen gc" subcommand: retention for a snapshot
// store directory.
func runGC(args []string) {
	fs := flag.NewFlagSet("tracegen gc", flag.ExitOnError)
	dir := fs.String("snapshot", "", "snapshot store directory (required)")
	keep := fs.Int("keep", 0, "keep at most N newest sealed snapshots (0 = no count cap)")
	maxBytes := fs.Int64("max-bytes", 0, "total byte budget for kept snapshots (0 = no byte cap)")
	partAge := fs.Duration("part-age", 0, "age after which parts and *.bad corpses of abandoned builds are removed (0 = 24h default)")
	dryRun := fs.Bool("dry-run", false, "report what would be removed without removing it")
	fs.Parse(args)
	if *dir == "" {
		fs.Usage()
		os.Exit(2)
	}
	st, err := snapshot.GC(*dir, snapshot.GCOptions{
		KeepLatest: *keep, MaxBytes: *maxBytes, PartMaxAge: *partAge, DryRun: *dryRun,
	})
	if err != nil {
		log.Fatalf("tracegen: gc: %v", err)
	}
	verb := "removed"
	if *dryRun {
		verb = "would remove"
	}
	fmt.Printf("%s: kept %d snapshots, %s %d files (%d bytes)\n",
		*dir, st.Kept, verb, st.Removed, st.FreedBytes)
}
