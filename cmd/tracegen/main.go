// Command tracegen materializes synthetic enterprise end-host packet
// traces to disk in the .etr format, one file per user — the role of
// the paper's windump-wrapper collection tool.
//
// Usage:
//
//	tracegen -out /tmp/traces -users 10 -weeks 1 [-seed 1] [-bin 15]
//
// Each file <out>/host-<id>.etr contains the user's full packet
// stream; internal/flows.ExtractTrace (or cmd/hidsd) turns it back
// into feature time series that agree bit-for-bit with the
// generator's fast path.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"time"

	"repro/internal/netsim"
	"repro/internal/trace"
)

func main() {
	out := flag.String("out", "", "output directory (required)")
	users := flag.Int("users", 10, "number of end hosts")
	weeks := flag.Int("weeks", 1, "weeks of capture")
	seed := flag.Uint64("seed", 1, "population seed")
	binMinutes := flag.Int("bin", 15, "aggregation window in minutes")
	pcap := flag.Bool("pcap", false, "also write libpcap files (host-NNN.pcap) readable by tcpdump/wireshark")
	flag.Parse()
	if *out == "" {
		flag.Usage()
		os.Exit(2)
	}

	pop, err := trace.NewPopulation(trace.Config{
		Users:    *users,
		Weeks:    *weeks,
		Seed:     *seed,
		BinWidth: time.Duration(*binMinutes) * time.Minute,
	})
	if err != nil {
		log.Fatalf("tracegen: %v", err)
	}
	if err := os.MkdirAll(*out, 0o755); err != nil {
		log.Fatalf("tracegen: %v", err)
	}
	start := time.Now()
	var totalRecords int64
	for _, u := range pop.Users {
		path := filepath.Join(*out, fmt.Sprintf("host-%03d.etr", u.ID))
		f, err := os.Create(path)
		if err != nil {
			log.Fatalf("tracegen: %v", err)
		}
		n, err := u.WriteTrace(f, 0, u.Bins())
		if err != nil {
			log.Fatalf("tracegen: writing %s: %v", path, err)
		}
		if err := f.Close(); err != nil {
			log.Fatalf("tracegen: closing %s: %v", path, err)
		}
		totalRecords += n
		fmt.Printf("%s: %d packets (%s heavy=%v)\n", path, n, u.Addr, u.Heavy)
		if *pcap {
			ppath := filepath.Join(*out, fmt.Sprintf("host-%03d.pcap", u.ID))
			pf, err := os.Create(ppath)
			if err != nil {
				log.Fatalf("tracegen: %v", err)
			}
			pw, err := netsim.NewPcapWriter(pf, 0)
			if err != nil {
				log.Fatalf("tracegen: %v", err)
			}
			var perr error
			for b := 0; b < u.Bins() && perr == nil; b++ {
				u.EmitBin(b, func(rec netsim.Record) {
					if perr == nil {
						perr = pw.Write(rec)
					}
				})
			}
			if perr != nil {
				log.Fatalf("tracegen: pcap %s: %v", ppath, perr)
			}
			if err := pw.Flush(); err != nil {
				log.Fatalf("tracegen: %v", err)
			}
			if err := pf.Close(); err != nil {
				log.Fatalf("tracegen: %v", err)
			}
			fmt.Printf("%s: %d packets (pcap)\n", ppath, pw.Count())
		}
	}
	fmt.Printf("wrote %d packets for %d users in %v\n",
		totalRecords, *users, time.Since(start).Round(time.Millisecond))
}
