// Command consoled runs the central IT console: it listens for host
// agents, collects their training distributions, computes thresholds
// under the configured policy and tallies incoming alert batches.
//
// Everything below the TCP listener is shared with the in-process
// fleet simulator: fleet.ConsoleSpec parses the policy flags and
// builds the console.Server, and fleet.WriteConsoleSummary renders
// the shutdown report.
//
// Usage:
//
//	consoled -listen :7070 -hosts 10 -policy homog|full|partialN [-heuristic p99|p999|utility0.4|mean3sigma]
//
// The console logs when each host connects, when the policy is
// configured, and prints an alert summary on SIGINT/SIGTERM.
package main

import (
	"flag"
	"log"
	"net"
	"os"
	"os/signal"
	"syscall"
	"time"

	"repro/internal/fleet"
)

func main() {
	listen := flag.String("listen", "127.0.0.1:7070", "listen address")
	hosts := flag.Int("hosts", 10, "number of hosts to wait for before configuring")
	policy := flag.String("policy", "full", "grouping policy: homog, full, partialN")
	heuristic := flag.String("heuristic", "p99", "threshold heuristic: p99, p999, utilityW, meanKsigma")
	writeTimeout := flag.Duration("write-timeout", 10*time.Second, "per-frame write deadline (0 = none)")
	idleTimeout := flag.Duration("idle-timeout", 0, "reap connections silent for this long (0 = never)")
	grace := flag.Duration("grace", 30*time.Second, "disconnect grace before a host counts as dead in the summary")
	flag.Parse()

	srv, err := fleet.ConsoleSpec{
		Grouping:     *policy,
		Heuristic:    *heuristic,
		Hosts:        *hosts,
		WriteTimeout: *writeTimeout,
		IdleTimeout:  *idleTimeout,
		Logf:         log.Printf,
	}.Build()
	if err != nil {
		log.Fatalf("consoled: %v", err)
	}
	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		log.Fatalf("consoled: %v", err)
	}
	log.Printf("consoled: listening on %s, policy %s/%s, waiting for %d hosts",
		ln.Addr(), *heuristic, *policy, *hosts)

	go func() {
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
		<-sig
		log.Printf("consoled: shutting down")
		_ = srv.Close()
	}()
	if err := srv.Serve(ln); err != nil {
		log.Printf("consoled: serve: %v", err)
	}
	fleet.WriteConsoleSummary(os.Stdout, srv, *grace)
}
