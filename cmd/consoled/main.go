// Command consoled runs the central IT console: it listens for host
// agents, collects their training distributions, computes thresholds
// under the configured policy and tallies incoming alert batches.
//
// Usage:
//
//	consoled -listen :7070 -hosts 10 -policy full|homog|partial8 [-heuristic p99|utility0.4]
//
// The console logs when each host connects, when the policy is
// configured, and prints an alert summary on SIGINT/SIGTERM.
package main

import (
	"flag"
	"fmt"
	"log"
	"net"
	"os"
	"os/signal"
	"syscall"

	"repro/internal/console"
	"repro/internal/core"
	"repro/internal/features"
)

func main() {
	listen := flag.String("listen", "127.0.0.1:7070", "listen address")
	hosts := flag.Int("hosts", 10, "number of hosts to wait for before configuring")
	policy := flag.String("policy", "full", "grouping policy: homog, full, partial8")
	heuristic := flag.String("heuristic", "p99", "threshold heuristic: p99, p999, utility0.4, mean3sigma")
	flag.Parse()

	var grouping core.Grouping
	switch *policy {
	case "homog":
		grouping = core.Homogeneous{}
	case "full":
		grouping = core.FullDiversity{}
	case "partial8":
		grouping = core.PartialDiversity{NumGroups: 8}
	default:
		log.Fatalf("consoled: unknown policy %q", *policy)
	}
	var h core.Heuristic
	var mags []float64
	switch *heuristic {
	case "p99":
		h = core.Percentile{Q: 0.99}
	case "p999":
		h = core.Percentile{Q: 0.999}
	case "utility0.4":
		h = core.UtilityOptimal{W: 0.4}
		mags = []float64{10, 50, 100, 500, 1000}
	case "mean3sigma":
		h = core.MeanSigma{K: 3}
	default:
		log.Fatalf("consoled: unknown heuristic %q", *heuristic)
	}

	srv, err := console.NewServer(console.ServerConfig{
		Policy:           core.Policy{Heuristic: h, Grouping: grouping},
		ExpectedHosts:    *hosts,
		AttackMagnitudes: mags,
		Logf:             log.Printf,
	})
	if err != nil {
		log.Fatalf("consoled: %v", err)
	}
	ln, err := net.Listen("tcp", *listen)
	if err != nil {
		log.Fatalf("consoled: %v", err)
	}
	log.Printf("consoled: listening on %s, policy %s/%s, waiting for %d hosts",
		ln.Addr(), *heuristic, *policy, *hosts)

	go func() {
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, syscall.SIGINT, syscall.SIGTERM)
		<-sig
		log.Printf("consoled: shutting down")
		_ = srv.Close()
	}()
	if err := srv.Serve(ln); err != nil {
		log.Printf("consoled: serve: %v", err)
	}

	fmt.Printf("\n=== console summary ===\n")
	fmt.Printf("hosts seen: %d\n", len(srv.Hosts()))
	fmt.Printf("total alerts: %d\n", srv.TotalAlerts())
	for _, id := range srv.Hosts() {
		fmt.Printf("  host %3d: %d alerts\n", id, srv.AlertCount(id))
	}
	if asn := srv.Assignment(features.TCP); asn != nil {
		fmt.Printf("TCP groups: %d\n", len(asn.Groups))
	}
}
