//go:build !linux

package main

// peakRSSBytes has no portable source outside Linux; the sweep table
// prints n/a.
func peakRSSBytes() int64 { return 0 }

func resetPeakRSS() {}
