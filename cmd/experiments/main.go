// Command experiments regenerates every table and figure of the
// paper's evaluation section on a synthetic enterprise.
//
// Usage:
//
//	experiments [-users 350] [-weeks 2] [-seed 1] [-run all|fig1,table3,...]
//	            [-snapshot DIR] [-shard N] [-workers N] [-shard-users N]
//	            [-configs FILE]
//	            [-cpuprofile cpu.pprof] [-memprofile mem.pprof] [-trace run.trace]
//
// With -snapshot, the materialized workspace is content-addressed in
// DIR: the first run writes it (streamed in -shard-user batches, so
// very large populations stay within laptop memory; -workers > 1
// builds that many sealed shard parts concurrently and splices them)
// and every later run with the same parameters maps it back and skips
// generation entirely. -shard-users arms bounded-heap streaming
// evaluation over the mapped store: analyses iterate the population
// in shards of that many users, so peak RSS tracks the shard size
// instead of the population, with bit-identical results.
//
// -configs turns the command into a multi-config sweep driver: FILE
// holds a JSON array of trials (population, seed, bin width, stream
// shard, experiment list, repeat count), each executed against the
// shared -snapshot store, with per-trial wall-clock and peak-RSS
// aggregated into a closing table. This is the harness behind the
// bounded-heap measurements in EXPERIMENTS.md.
//
// Each experiment prints a textual rendering of the corresponding
// paper artifact; EXPERIMENTS.md records the expected shapes. The
// profiling flags write standard pprof / runtime-trace files covering
// the experiment runs, for `go tool pprof` / `go tool trace`.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"runtime/pprof"
	rtrace "runtime/trace"
	"strings"
	"time"

	"repro"
)

func main() {
	users := flag.Int("users", 350, "end-host population size")
	weeks := flag.Int("weeks", 2, "weeks of capture (>= 2)")
	seed := flag.Uint64("seed", 1, "population seed")
	run := flag.String("run", "all", "comma-separated experiment ids (fig1, fig2, table2, fig3a, fig3b, table3, fig4a, fig4b, fig5a, fig5b, chaos) or 'all'")
	chaos := flag.Bool("chaos", false, "also run the fleet-under-faults grid (equivalent to adding 'chaos' to -run)")
	binMinutes := flag.Int("bin", 15, "aggregation window in minutes (5 or 15 in the paper)")
	snapshotDir := flag.String("snapshot", "", "workspace snapshot directory (warm runs skip generation; empty disables)")
	shard := flag.Int("shard", 0, "users per shard when cold-building a snapshot (0 = default)")
	workers := flag.Int("workers", 0, "concurrent part builders for a cold snapshot build (<= 1 = single streaming pass)")
	shardUsers := flag.Int("shard-users", 0, "users per evaluation shard: arms bounded-heap streaming analyses over the mapped snapshot (0 = whole-heap)")
	configs := flag.String("configs", "", "JSON sweep file: run each trial config against the shared -snapshot store and print an aggregate table")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memProfile := flag.String("memprofile", "", "write a heap profile to this file at exit")
	traceFile := flag.String("trace", "", "write a runtime execution trace to this file")
	flag.Parse()

	// All work happens in realMain so its defers — which finalize the
	// profile files — run before os.Exit. log.Fatalf anywhere below
	// would truncate the CPU profile/trace and skip the heap profile,
	// exactly on the failing runs one most wants to profile.
	if *chaos {
		*run += ",chaos"
	}
	os.Exit(realMain(mainOpts{
		users: *users, weeks: *weeks, seed: *seed, run: *run,
		binMinutes: *binMinutes, snapshotDir: *snapshotDir,
		shard: *shard, workers: *workers, shardUsers: *shardUsers,
		configs:    *configs,
		cpuProfile: *cpuProfile, memProfile: *memProfile, traceFile: *traceFile,
	}))
}

type mainOpts struct {
	users, weeks               int
	seed                       uint64
	run                        string
	binMinutes                 int
	snapshotDir                string
	shard, workers, shardUsers int
	configs                    string
	cpuProfile, memProfile     string
	traceFile                  string
}

func realMain(o mainOpts) int {
	if o.cpuProfile != "" {
		f, err := os.Create(o.cpuProfile)
		if err != nil {
			log.Printf("creating cpu profile: %v", err)
			return 1
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			log.Printf("starting cpu profile: %v", err)
			return 1
		}
		defer pprof.StopCPUProfile()
	}
	if o.traceFile != "" {
		f, err := os.Create(o.traceFile)
		if err != nil {
			log.Printf("creating trace file: %v", err)
			return 1
		}
		defer f.Close()
		if err := rtrace.Start(f); err != nil {
			log.Printf("starting trace: %v", err)
			return 1
		}
		defer rtrace.Stop()
	}
	if o.memProfile != "" {
		defer func() {
			f, err := os.Create(o.memProfile)
			if err != nil {
				log.Printf("creating mem profile: %v", err)
				return
			}
			defer f.Close()
			runtime.GC() // settle the heap so the profile shows retained memory
			if err := pprof.WriteHeapProfile(f); err != nil {
				log.Printf("writing mem profile: %v", err)
			}
		}()
	}
	if o.configs != "" {
		return runSweep(o)
	}
	trial := trialConfig{
		Users: o.users, Weeks: o.weeks, Seed: o.seed,
		BinMinutes: o.binMinutes, StreamShard: o.shardUsers, Run: o.run,
	}
	_, _, code := runTrial(trial, o)
	return code
}

// runTrial builds one enterprise and runs its experiment list,
// returning the post-materialize wall-clock and the process peak RSS
// observed across the analyses.
func runTrial(trial trialConfig, o mainOpts) (elapsed time.Duration, peakRSS int64, code int) {
	if trial.Weeks < 2 {
		// The runners all use the week-0-train / week-1-test split;
		// without this guard a 1-week enterprise panics deep in
		// WeekRange instead of explaining itself.
		log.Printf("need weeks >= 2 (train week + test week), got %d", trial.Weeks)
		return 0, 0, 1
	}
	start := time.Now()
	ent, err := repro.NewEnterprise(repro.Options{
		Users:           trial.Users,
		Weeks:           trial.Weeks,
		Seed:            trial.Seed,
		BinWidth:        time.Duration(trial.BinMinutes) * time.Minute,
		SnapshotDir:     o.snapshotDir,
		SnapshotShard:   o.shard,
		SnapshotWorkers: o.workers,
		StreamShard:     trial.StreamShard,
	})
	if err != nil {
		log.Printf("building enterprise: %v", err)
		return 0, 0, 1
	}
	defer ent.Close()
	fmt.Printf("# enterprise: %d users, %d weeks, %d-minute bins, seed %d, stream shard %d\n",
		trial.Users, trial.Weeks, trial.BinMinutes, trial.Seed, trial.StreamShard)
	ent.Materialize()
	fmt.Printf("# traces materialized in %v\n\n", time.Since(start).Round(time.Millisecond))

	cfg := repro.DefaultExperimentConfig()
	wanted := map[string]bool{}
	for _, id := range strings.Split(trial.Run, ",") {
		wanted[strings.TrimSpace(id)] = true
	}
	all := wanted["all"]

	type experiment struct {
		id string
		// notInAll excludes the experiment from -run all: chaos is a
		// robustness diagnostic of the management plane, not a paper
		// artifact.
		notInAll bool
		fn       func() (fmt.Stringer, error)
	}
	exps := []experiment{
		{id: "fig1", fn: func() (fmt.Stringer, error) { return repro.Fig1(ent, cfg) }},
		{id: "fig2", fn: func() (fmt.Stringer, error) { return repro.Fig2(ent, cfg) }},
		{id: "table2", fn: func() (fmt.Stringer, error) { return repro.Table2(ent, cfg) }},
		{id: "fig3a", fn: func() (fmt.Stringer, error) { return repro.Fig3a(ent, cfg) }},
		{id: "fig3b", fn: func() (fmt.Stringer, error) { return repro.Fig3b(ent, cfg) }},
		{id: "table3", fn: func() (fmt.Stringer, error) { return repro.Table3(ent, cfg) }},
		{id: "fig4a", fn: func() (fmt.Stringer, error) { return repro.Fig4a(ent, cfg) }},
		{id: "fig4b", fn: func() (fmt.Stringer, error) { return repro.Fig4b(ent, cfg) }},
		{id: "fig5a", fn: func() (fmt.Stringer, error) { return repro.Fig5a(ent, cfg) }},
		{id: "fig5b", fn: func() (fmt.Stringer, error) { return repro.Fig5b(ent, cfg) }},
		{id: "chaos", notInAll: true, fn: func() (fmt.Stringer, error) { return repro.Chaos(ent, cfg) }},
	}
	evalStart := time.Now()
	ran := 0
	for _, ex := range exps {
		if !wanted[ex.id] && (!all || ex.notInAll) {
			continue
		}
		t0 := time.Now()
		res, err := ex.fn()
		if err != nil {
			log.Printf("%s: %v", ex.id, err)
			return 0, 0, 1
		}
		fmt.Printf("== %s (%v) ==\n%s\n", ex.id, time.Since(t0).Round(time.Millisecond), res)
		ran++
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "no experiments matched -run %q\n", trial.Run)
		return 0, 0, 2
	}
	return time.Since(evalStart), peakRSSBytes(), 0
}

// trialConfig is one entry of a -configs sweep file.
type trialConfig struct {
	// Name labels the trial in the aggregate table; defaults to a
	// rendering of the parameters.
	Name string `json:"name"`
	// Users, Weeks, Seed and BinMinutes define the enterprise exactly
	// as the corresponding single-run flags do.
	Users      int    `json:"users"`
	Weeks      int    `json:"weeks"`
	Seed       uint64 `json:"seed"`
	BinMinutes int    `json:"bin"`
	// StreamShard arms bounded-heap streaming evaluation (0 =
	// whole-heap), the per-trial form of -shard-users.
	StreamShard int `json:"streamShard"`
	// Run selects experiments like the -run flag; empty means "all".
	Run string `json:"run"`
	// Runs repeats the trial (>= 1); later repetitions ride the warm
	// snapshot, so their wall-clock isolates evaluation cost.
	Runs int `json:"runs"`
}

// runSweep executes every trial of a -configs file against the shared
// snapshot store and prints the aggregate table. Trials run in-process
// and sequentially — the point is comparable peak-RSS readings, which
// interleaved trials would pollute.
func runSweep(o mainOpts) int {
	raw, err := os.ReadFile(o.configs)
	if err != nil {
		log.Printf("reading sweep configs: %v", err)
		return 1
	}
	var trials []trialConfig
	if err := json.Unmarshal(raw, &trials); err != nil {
		log.Printf("parsing sweep configs %s: %v", o.configs, err)
		return 1
	}
	if len(trials) == 0 {
		log.Printf("sweep file %s holds no trials", o.configs)
		return 1
	}
	type row struct {
		trial   trialConfig
		elapsed []time.Duration
		peak    []int64
	}
	rows := make([]row, 0, len(trials))
	for i, trial := range trials {
		if trial.Weeks == 0 {
			trial.Weeks = 2
		}
		if trial.BinMinutes == 0 {
			trial.BinMinutes = 15
		}
		if trial.Run == "" {
			trial.Run = "all"
		}
		if trial.Runs < 1 {
			trial.Runs = 1
		}
		if trial.Name == "" {
			trial.Name = fmt.Sprintf("u%d-b%dm-s%d-shard%d", trial.Users, trial.BinMinutes, trial.Seed, trial.StreamShard)
		}
		r := row{trial: trial}
		for rep := 0; rep < trial.Runs; rep++ {
			fmt.Printf("--- trial %d/%d %q run %d/%d ---\n", i+1, len(trials), trial.Name, rep+1, trial.Runs)
			resetPeakRSS()
			elapsed, peak, code := runTrial(trial, o)
			if code != 0 {
				return code
			}
			r.elapsed = append(r.elapsed, elapsed)
			r.peak = append(r.peak, peak)
		}
		rows = append(rows, r)
	}
	fmt.Printf("# sweep aggregate (%d trials)\n", len(rows))
	fmt.Printf("%-28s %9s %6s %5s %12s %10s\n", "config", "users", "shard", "runs", "eval-elapsed", "peak-rss")
	for _, r := range rows {
		// Report the repetition with the smallest wall-clock — the
		// warm-store steady state the sweep is after.
		best := 0
		for i := range r.elapsed {
			if r.elapsed[i] < r.elapsed[best] {
				best = i
			}
		}
		fmt.Printf("%-28s %9d %6d %5d %12v %10s\n",
			r.trial.Name, r.trial.Users, r.trial.StreamShard, len(r.elapsed),
			r.elapsed[best].Round(time.Millisecond), fmtBytes(r.peak[best]))
	}
	return 0
}

func fmtBytes(b int64) string {
	switch {
	case b <= 0:
		return "n/a"
	case b < 1<<20:
		return fmt.Sprintf("%dKiB", b>>10)
	case b < 10<<30:
		return fmt.Sprintf("%.1fMiB", float64(b)/(1<<20))
	default:
		return fmt.Sprintf("%.1fGiB", float64(b)/(1<<30))
	}
}
