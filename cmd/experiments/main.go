// Command experiments regenerates every table and figure of the
// paper's evaluation section on a synthetic enterprise.
//
// Usage:
//
//	experiments [-users 350] [-weeks 2] [-seed 1] [-run all|fig1,table3,...]
//
// Each experiment prints a textual rendering of the corresponding
// paper artifact; EXPERIMENTS.md records the expected shapes.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"
	"time"

	"repro"
)

func main() {
	users := flag.Int("users", 350, "end-host population size")
	weeks := flag.Int("weeks", 2, "weeks of capture (>= 2)")
	seed := flag.Uint64("seed", 1, "population seed")
	run := flag.String("run", "all", "comma-separated experiment ids (fig1, fig2, table2, fig3a, fig3b, table3, fig4a, fig4b, fig5a, fig5b) or 'all'")
	binMinutes := flag.Int("bin", 15, "aggregation window in minutes (5 or 15 in the paper)")
	flag.Parse()

	start := time.Now()
	ent, err := repro.NewEnterprise(repro.Options{
		Users:    *users,
		Weeks:    *weeks,
		Seed:     *seed,
		BinWidth: time.Duration(*binMinutes) * time.Minute,
	})
	if err != nil {
		log.Fatalf("building enterprise: %v", err)
	}
	fmt.Printf("# enterprise: %d users, %d weeks, %d-minute bins, seed %d\n",
		*users, *weeks, *binMinutes, *seed)
	ent.Materialize()
	fmt.Printf("# traces materialized in %v\n\n", time.Since(start).Round(time.Millisecond))

	cfg := repro.DefaultExperimentConfig()
	wanted := map[string]bool{}
	for _, id := range strings.Split(*run, ",") {
		wanted[strings.TrimSpace(id)] = true
	}
	all := wanted["all"]

	type experiment struct {
		id string
		fn func() (fmt.Stringer, error)
	}
	exps := []experiment{
		{"fig1", func() (fmt.Stringer, error) { return repro.Fig1(ent, cfg) }},
		{"fig2", func() (fmt.Stringer, error) { return repro.Fig2(ent, cfg) }},
		{"table2", func() (fmt.Stringer, error) { return repro.Table2(ent, cfg) }},
		{"fig3a", func() (fmt.Stringer, error) { return repro.Fig3a(ent, cfg) }},
		{"fig3b", func() (fmt.Stringer, error) { return repro.Fig3b(ent, cfg) }},
		{"table3", func() (fmt.Stringer, error) { return repro.Table3(ent, cfg) }},
		{"fig4a", func() (fmt.Stringer, error) { return repro.Fig4a(ent, cfg) }},
		{"fig4b", func() (fmt.Stringer, error) { return repro.Fig4b(ent, cfg) }},
		{"fig5a", func() (fmt.Stringer, error) { return repro.Fig5a(ent, cfg) }},
		{"fig5b", func() (fmt.Stringer, error) { return repro.Fig5b(ent, cfg) }},
	}
	ran := 0
	for _, ex := range exps {
		if !all && !wanted[ex.id] {
			continue
		}
		t0 := time.Now()
		res, err := ex.fn()
		if err != nil {
			log.Fatalf("%s: %v", ex.id, err)
		}
		fmt.Printf("== %s (%v) ==\n%s\n", ex.id, time.Since(t0).Round(time.Millisecond), res)
		ran++
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "no experiments matched -run %q\n", *run)
		os.Exit(2)
	}
}
