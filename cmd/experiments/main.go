// Command experiments regenerates every table and figure of the
// paper's evaluation section on a synthetic enterprise.
//
// Usage:
//
//	experiments [-users 350] [-weeks 2] [-seed 1] [-run all|fig1,table3,...]
//	            [-snapshot DIR] [-shard N]
//	            [-cpuprofile cpu.pprof] [-memprofile mem.pprof] [-trace run.trace]
//
// With -snapshot, the materialized workspace is content-addressed in
// DIR: the first run writes it (streamed in -shard-user batches, so
// very large populations stay within laptop memory) and every later
// run with the same parameters maps it back and skips generation
// entirely.
//
// Each experiment prints a textual rendering of the corresponding
// paper artifact; EXPERIMENTS.md records the expected shapes. The
// profiling flags write standard pprof / runtime-trace files covering
// the experiment runs, for `go tool pprof` / `go tool trace`.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"runtime"
	"runtime/pprof"
	rtrace "runtime/trace"
	"strings"
	"time"

	"repro"
)

func main() {
	users := flag.Int("users", 350, "end-host population size")
	weeks := flag.Int("weeks", 2, "weeks of capture (>= 2)")
	seed := flag.Uint64("seed", 1, "population seed")
	run := flag.String("run", "all", "comma-separated experiment ids (fig1, fig2, table2, fig3a, fig3b, table3, fig4a, fig4b, fig5a, fig5b, chaos) or 'all'")
	chaos := flag.Bool("chaos", false, "also run the fleet-under-faults grid (equivalent to adding 'chaos' to -run)")
	binMinutes := flag.Int("bin", 15, "aggregation window in minutes (5 or 15 in the paper)")
	snapshotDir := flag.String("snapshot", "", "workspace snapshot directory (warm runs skip generation; empty disables)")
	shard := flag.Int("shard", 0, "users per shard when cold-building a snapshot (0 = default)")
	cpuProfile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memProfile := flag.String("memprofile", "", "write a heap profile to this file at exit")
	traceFile := flag.String("trace", "", "write a runtime execution trace to this file")
	flag.Parse()

	// All work happens in realMain so its defers — which finalize the
	// profile files — run before os.Exit. log.Fatalf anywhere below
	// would truncate the CPU profile/trace and skip the heap profile,
	// exactly on the failing runs one most wants to profile.
	if *chaos {
		*run += ",chaos"
	}
	os.Exit(realMain(*users, *weeks, *seed, *run, *binMinutes, *snapshotDir, *shard, *cpuProfile, *memProfile, *traceFile))
}

func realMain(users, weeks int, seed uint64, run string, binMinutes int, snapshotDir string, shard int, cpuProfile, memProfile, traceFile string) int {
	if cpuProfile != "" {
		f, err := os.Create(cpuProfile)
		if err != nil {
			log.Printf("creating cpu profile: %v", err)
			return 1
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			log.Printf("starting cpu profile: %v", err)
			return 1
		}
		defer pprof.StopCPUProfile()
	}
	if traceFile != "" {
		f, err := os.Create(traceFile)
		if err != nil {
			log.Printf("creating trace file: %v", err)
			return 1
		}
		defer f.Close()
		if err := rtrace.Start(f); err != nil {
			log.Printf("starting trace: %v", err)
			return 1
		}
		defer rtrace.Stop()
	}
	if memProfile != "" {
		defer func() {
			f, err := os.Create(memProfile)
			if err != nil {
				log.Printf("creating mem profile: %v", err)
				return
			}
			defer f.Close()
			runtime.GC() // settle the heap so the profile shows retained memory
			if err := pprof.WriteHeapProfile(f); err != nil {
				log.Printf("writing mem profile: %v", err)
			}
		}()
	}

	if weeks < 2 {
		// The runners all use the week-0-train / week-1-test split;
		// without this guard a 1-week enterprise panics deep in
		// WeekRange instead of explaining itself.
		log.Printf("need -weeks >= 2 (train week + test week), got %d", weeks)
		return 1
	}
	start := time.Now()
	ent, err := repro.NewEnterprise(repro.Options{
		Users:         users,
		Weeks:         weeks,
		Seed:          seed,
		BinWidth:      time.Duration(binMinutes) * time.Minute,
		SnapshotDir:   snapshotDir,
		SnapshotShard: shard,
	})
	if err != nil {
		log.Printf("building enterprise: %v", err)
		return 1
	}
	fmt.Printf("# enterprise: %d users, %d weeks, %d-minute bins, seed %d\n",
		users, weeks, binMinutes, seed)
	ent.Materialize()
	fmt.Printf("# traces materialized in %v\n\n", time.Since(start).Round(time.Millisecond))

	cfg := repro.DefaultExperimentConfig()
	wanted := map[string]bool{}
	for _, id := range strings.Split(run, ",") {
		wanted[strings.TrimSpace(id)] = true
	}
	all := wanted["all"]

	type experiment struct {
		id string
		// notInAll excludes the experiment from -run all: chaos is a
		// robustness diagnostic of the management plane, not a paper
		// artifact.
		notInAll bool
		fn       func() (fmt.Stringer, error)
	}
	exps := []experiment{
		{id: "fig1", fn: func() (fmt.Stringer, error) { return repro.Fig1(ent, cfg) }},
		{id: "fig2", fn: func() (fmt.Stringer, error) { return repro.Fig2(ent, cfg) }},
		{id: "table2", fn: func() (fmt.Stringer, error) { return repro.Table2(ent, cfg) }},
		{id: "fig3a", fn: func() (fmt.Stringer, error) { return repro.Fig3a(ent, cfg) }},
		{id: "fig3b", fn: func() (fmt.Stringer, error) { return repro.Fig3b(ent, cfg) }},
		{id: "table3", fn: func() (fmt.Stringer, error) { return repro.Table3(ent, cfg) }},
		{id: "fig4a", fn: func() (fmt.Stringer, error) { return repro.Fig4a(ent, cfg) }},
		{id: "fig4b", fn: func() (fmt.Stringer, error) { return repro.Fig4b(ent, cfg) }},
		{id: "fig5a", fn: func() (fmt.Stringer, error) { return repro.Fig5a(ent, cfg) }},
		{id: "fig5b", fn: func() (fmt.Stringer, error) { return repro.Fig5b(ent, cfg) }},
		{id: "chaos", notInAll: true, fn: func() (fmt.Stringer, error) { return repro.Chaos(ent, cfg) }},
	}
	ran := 0
	for _, ex := range exps {
		if !wanted[ex.id] && (!all || ex.notInAll) {
			continue
		}
		t0 := time.Now()
		res, err := ex.fn()
		if err != nil {
			log.Printf("%s: %v", ex.id, err)
			return 1
		}
		fmt.Printf("== %s (%v) ==\n%s\n", ex.id, time.Since(t0).Round(time.Millisecond), res)
		ran++
	}
	if ran == 0 {
		fmt.Fprintf(os.Stderr, "no experiments matched -run %q\n", run)
		return 2
	}
	return 0
}
