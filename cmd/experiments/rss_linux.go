//go:build linux

package main

import (
	"bufio"
	"os"
	"strconv"
	"strings"
)

// peakRSSBytes reads the process high-water resident set (VmHWM) from
// /proc/self/status. Because mapped snapshot pages count toward it,
// this is the honest measure of what bounded-heap streaming saves —
// Go heap metrics never see page-cache residency. Returns 0 when the
// counter is unavailable.
func peakRSSBytes() int64 {
	f, err := os.Open("/proc/self/status")
	if err != nil {
		return 0
	}
	defer f.Close()
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := sc.Text()
		if !strings.HasPrefix(line, "VmHWM:") {
			continue
		}
		fields := strings.Fields(line)
		if len(fields) < 2 {
			return 0
		}
		kb, err := strconv.ParseInt(fields[1], 10, 64)
		if err != nil {
			return 0
		}
		return kb << 10
	}
	return 0
}

// resetPeakRSS rearms the VmHWM high-water mark ("5" in
// /proc/self/clear_refs) so each sweep trial's peak reflects that
// trial alone rather than the largest predecessor. Best-effort: on
// kernels without the knob the peaks are simply cumulative.
func resetPeakRSS() {
	os.WriteFile("/proc/self/clear_refs", []byte("5"), 0o200)
}
