package main

import (
	"context"
	"os"
	"reflect"
	"testing"
	"time"

	"repro/internal/analysis"
	"repro/internal/features"
	"repro/internal/snapshot"
	"repro/internal/trace"
)

// TestSnapshotMatrixLoadPath is the agent-side regression test for the
// snapshot load path: warm stores serve the exact synthesized matrix
// through the O(record) manifest read, pre-manifest stores fall back
// to the full load, and out-of-range users — the historical
// index-panic — degrade to nil (synthetic path) on every branch.
func TestSnapshotMatrixLoadPath(t *testing.T) {
	pop, err := trace.NewPopulation(trace.Config{Users: 4, Weeks: 1, Seed: 3, BinWidth: 6 * time.Hour})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()

	// Cold store: nil, no panic, for valid and invalid users alike.
	for _, u := range []int{0, -1, 99} {
		if m := snapshotMatrix(dir, u, pop); m != nil {
			t.Fatalf("cold store returned a matrix for user %d", u)
		}
	}

	key, err := snapshot.KeyFor(pop.Cfg)
	if err != nil {
		t.Fatal(err)
	}
	ws, err := analysis.MaterializeSharded(context.Background(), dir, key, 0, func(u int, rows [][features.NumFeatures]float64) {
		pop.Users[u].FillSeries(rows)
	})
	if err != nil {
		t.Fatal(err)
	}
	ws.Close()

	// Warm store, manifest present: the fast path must serve the
	// bit-identical series.
	for _, u := range []int{0, 3} {
		m := snapshotMatrix(dir, u, pop)
		if m == nil {
			t.Fatalf("warm store returned nil for user %d", u)
		}
		if want := pop.Users[u].Series(); !reflect.DeepEqual(m.Rows, want.Rows) {
			t.Fatalf("user %d: snapshot matrix diverges from synthesized series", u)
		}
	}
	// Out-of-range users error inside LoadUserMatrix and the snap
	// exists, so the fallback full load runs — its bounds guard (not a
	// slice panic) must turn both into nil.
	for _, u := range []int{-1, 4, 1 << 20} {
		if m := snapshotMatrix(dir, u, pop); m != nil {
			t.Fatalf("out-of-range user %d got a matrix", u)
		}
	}

	// Pre-manifest store: deleting the sidecar must route in-range
	// users through the full load, still bit-identical.
	if err := os.Remove(key.ManifestPath(dir)); err != nil {
		t.Fatal(err)
	}
	m := snapshotMatrix(dir, 2, pop)
	if m == nil {
		t.Fatal("manifest-less store returned nil despite a valid snap")
	}
	if want := pop.Users[2].Series(); !reflect.DeepEqual(m.Rows, want.Rows) {
		t.Fatal("manifest-less fallback matrix diverges from synthesized series")
	}
	if m := snapshotMatrix(dir, 7, pop); m != nil {
		t.Fatal("manifest-less store returned a matrix for an out-of-range user")
	}
}
