// Command hidsd runs one end-host behavioral HIDS agent: it replays a
// packet trace (an .etr file from tracegen, or a synthetic user
// generated on the fly), extracts the six Table-1 features, uploads
// its training distribution to the console, receives thresholds and
// streams alert batches back.
//
// Usage (trace file):
//
//	hidsd -console 127.0.0.1:7070 -trace /tmp/traces/host-003.etr -train-bins 672 -bins 1344
//
// Usage (synthetic, no file):
//
//	hidsd -console 127.0.0.1:7070 -user 3 -users 10 -seed 1 -weeks 2
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"repro/internal/console"
	"repro/internal/features"
	"repro/internal/flows"
	"repro/internal/netsim"
	"repro/internal/trace"
)

func main() {
	consoleAddr := flag.String("console", "127.0.0.1:7070", "console address")
	tracePath := flag.String("trace", "", "path to an .etr trace (optional)")
	userID := flag.Int("user", 0, "synthetic user id (when no trace file)")
	users := flag.Int("users", 10, "population size the user belongs to")
	weeks := flag.Int("weeks", 2, "weeks in the synthetic capture")
	seed := flag.Uint64("seed", 1, "population seed")
	trainBins := flag.Int("train-bins", 672, "bins used for training upload")
	binMinutes := flag.Int("bin", 15, "aggregation window in minutes")
	batchEvery := flag.Int("batch", 96, "flush alert batches every N windows")
	flag.Parse()

	pop, err := trace.NewPopulation(trace.Config{
		Users:    *users,
		Weeks:    *weeks,
		Seed:     *seed,
		BinWidth: time.Duration(*binMinutes) * time.Minute,
	})
	if err != nil {
		log.Fatalf("hidsd: %v", err)
	}
	if *userID < 0 || *userID >= len(pop.Users) {
		log.Fatalf("hidsd: user %d outside population of %d", *userID, *users)
	}
	u := pop.Users[*userID]

	// Build the feature matrix: from the trace file through the flow
	// tracker when given, else via the generator fast path (the two
	// are bit-identical; the tests prove it).
	var m *features.Matrix
	if *tracePath != "" {
		f, err := os.Open(*tracePath)
		if err != nil {
			log.Fatalf("hidsd: %v", err)
		}
		rd, err := netsim.NewTraceReader(f)
		if err != nil {
			log.Fatalf("hidsd: %v", err)
		}
		if int(rd.HostID()) != *userID {
			log.Printf("hidsd: warning: trace host id %d != -user %d", rd.HostID(), *userID)
		}
		m, err = flows.ExtractTrace(rd, u.Addr, pop.Cfg.BinWidth, pop.Cfg.StartMicros, pop.Cfg.TotalBins())
		if err != nil {
			log.Fatalf("hidsd: extracting %s: %v", *tracePath, err)
		}
		_ = f.Close()
		log.Printf("hidsd: extracted %d windows from %s", m.Bins(), *tracePath)
	} else {
		m = u.Series()
		log.Printf("hidsd: synthesized %d windows for user %d", m.Bins(), *userID)
	}
	if *trainBins <= 0 || *trainBins >= m.Bins() {
		log.Fatalf("hidsd: -train-bins %d outside (0, %d)", *trainBins, m.Bins())
	}

	agent, err := console.Dial(*consoleAddr, uint32(*userID), fmt.Sprintf("host-%d", *userID))
	if err != nil {
		log.Fatalf("hidsd: %v", err)
	}
	defer agent.Close()
	if err := agent.UploadMatrix(m, 0, *trainBins); err != nil {
		log.Fatalf("hidsd: upload: %v", err)
	}
	log.Printf("hidsd: training distributions uploaded; waiting for thresholds")
	thr, err := agent.WaitThresholds(5 * time.Minute)
	if err != nil {
		log.Fatalf("hidsd: %v", err)
	}
	log.Printf("hidsd: thresholds received (policy %s, group %d): %v",
		thr.Policy, thr.Group, thr.Values)

	alerts := 0
	for b := *trainBins; b < m.Bins(); b++ {
		c := features.Counts{
			DNS:      int(m.Rows[b][features.DNS]),
			TCP:      int(m.Rows[b][features.TCP]),
			TCPSYN:   int(m.Rows[b][features.TCPSYN]),
			HTTP:     int(m.Rows[b][features.HTTP]),
			Distinct: int(m.Rows[b][features.Distinct]),
			UDP:      int(m.Rows[b][features.UDP]),
		}
		if err := agent.ObserveWindow(b, c); err != nil {
			log.Fatalf("hidsd: observe: %v", err)
		}
		if (b-*trainBins+1)%*batchEvery == 0 {
			alerts += agent.PendingAlerts()
			if err := agent.Flush(); err != nil {
				log.Fatalf("hidsd: flush: %v", err)
			}
		}
	}
	alerts += agent.PendingAlerts()
	if err := agent.Flush(); err != nil {
		log.Fatalf("hidsd: final flush: %v", err)
	}
	log.Printf("hidsd: monitored %d windows, sent %d alerts", m.Bins()-*trainBins, alerts)
}
