// Command hidsd runs one end-host behavioral HIDS agent: it replays a
// packet trace (an .etr file from tracegen, or a synthetic user
// generated on the fly), extracts the six Table-1 features, uploads
// its training distribution to the console, receives thresholds and
// streams alert batches back.
//
// The run loop itself — upload, wait for thresholds, monitor, flush —
// is fleet.RunAgent, the same code the in-process fleet simulator
// drives at thousand-agent scale; hidsd only adds flag parsing, trace
// loading and the TCP dial.
//
// Usage (trace file):
//
//	hidsd -console 127.0.0.1:7070 -trace /tmp/traces/host-003.etr -train-bins 672 -bins 1344
//
// Usage (synthetic, no file):
//
//	hidsd -console 127.0.0.1:7070 -user 3 -users 10 -seed 1 -weeks 2
package main

import (
	"errors"
	"flag"
	"fmt"
	"io/fs"
	"log"
	"net"
	"os"
	"time"

	"repro/internal/analysis"
	"repro/internal/console"
	"repro/internal/features"
	"repro/internal/fleet"
	"repro/internal/flows"
	"repro/internal/netsim"
	"repro/internal/snapshot"
	"repro/internal/trace"
)

func main() {
	consoleAddr := flag.String("console", "127.0.0.1:7070", "console address")
	tracePath := flag.String("trace", "", "path to an .etr trace (optional)")
	userID := flag.Int("user", 0, "synthetic user id (when no trace file)")
	users := flag.Int("users", 10, "population size the user belongs to")
	weeks := flag.Int("weeks", 2, "weeks in the synthetic capture")
	seed := flag.Uint64("seed", 1, "population seed")
	trainBins := flag.Int("train-bins", 672, "bins used for training upload")
	binMinutes := flag.Int("bin", 15, "aggregation window in minutes")
	batchEvery := flag.Int("batch", 96, "flush alert batches every N windows")
	snapDir := flag.String("snapshot", "", "workspace snapshot directory (warm agents map their matrix instead of generating)")
	dialTimeout := flag.Duration("dial-timeout", console.DefaultDialTimeout, "bound on each TCP connection attempt")
	backoff := flag.Duration("backoff", 0, "base redial backoff (0 = library default)")
	backoffMax := flag.Duration("backoff-max", 0, "redial backoff cap (0 = library default)")
	retries := flag.Int("retries", 0, "redial attempts per link loss (0 = library default, negative = unlimited)")
	flag.Parse()

	pop, err := trace.NewPopulation(trace.Config{
		Users:    *users,
		Weeks:    *weeks,
		Seed:     *seed,
		BinWidth: time.Duration(*binMinutes) * time.Minute,
	})
	if err != nil {
		log.Fatalf("hidsd: %v", err)
	}
	if *userID < 0 || *userID >= len(pop.Users) {
		log.Fatalf("hidsd: user %d outside population of %d", *userID, *users)
	}
	u := pop.Users[*userID]
	m, err := buildMatrix(*tracePath, *snapDir, *userID, u, pop)
	if err != nil {
		log.Fatalf("hidsd: %v", err)
	}
	if *trainBins <= 0 || *trainBins >= m.Bins() {
		log.Fatalf("hidsd: -train-bins %d outside (0, %d)", *trainBins, m.Bins())
	}

	// Connect with a Dial closure so the agent self-heals: a console
	// restart or network blip mid-run costs a redial (with backoff and
	// seeded jitter), not the whole replay.
	agent, err := console.Connect(console.AgentConfig{
		HostID:   uint32(*userID),
		Hostname: fmt.Sprintf("host-%d", *userID),
		Dial: func() (net.Conn, error) {
			return net.DialTimeout("tcp", *consoleAddr, *dialTimeout)
		},
		Retry: console.RetryPolicy{
			MaxDials:   *retries,
			Backoff:    *backoff,
			BackoffMax: *backoffMax,
			Seed:       *seed,
		},
	})
	if err != nil {
		log.Fatalf("hidsd: %v", err)
	}
	defer agent.Close()
	rep, err := fleet.RunAgent(fleet.AgentRun{
		Agent:      agent,
		Matrix:     m,
		TrainLo:    0,
		TrainHi:    *trainBins,
		MonitorLo:  *trainBins,
		MonitorHi:  m.Bins(),
		FlushEvery: *batchEvery,
		Logf:       log.Printf,
	})
	if err != nil {
		log.Fatalf("hidsd: %v", err)
	}
	log.Printf("hidsd: monitored %d windows, sent %d alerts (policy %s, group %d)",
		rep.Windows, rep.AlertsSent, rep.Thresholds.Policy, rep.Thresholds.Group)
}

// buildMatrix loads the host's feature matrix from an .etr trace via
// the packet pipeline, from a warm workspace snapshot, or synthesizes
// it via the generator fast path (all bit-identical; the tests prove
// it).
func buildMatrix(tracePath, snapDir string, userID int, u *trace.User, pop *trace.Population) (*features.Matrix, error) {
	if tracePath == "" {
		if snapDir != "" {
			if m := snapshotMatrix(snapDir, userID, pop); m != nil {
				log.Printf("hidsd: mapped %d windows for user %d from snapshot", m.Bins(), userID)
				return m, nil
			}
			log.Printf("hidsd: no usable snapshot in %s, synthesizing", snapDir)
		}
		m := u.Series()
		log.Printf("hidsd: synthesized %d windows for user %d", m.Bins(), userID)
		return m, nil
	}
	f, err := os.Open(tracePath)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	rd, err := netsim.NewTraceReader(f)
	if err != nil {
		return nil, err
	}
	if int(rd.HostID()) != userID {
		log.Printf("hidsd: warning: trace host id %d != -user %d", rd.HostID(), userID)
	}
	m, err := flows.ExtractTrace(rd, u.Addr, pop.Cfg.BinWidth, pop.Cfg.StartMicros, pop.Cfg.TotalBins())
	if err != nil {
		return nil, fmt.Errorf("extracting %s: %w", tracePath, err)
	}
	log.Printf("hidsd: extracted %d windows from %s", m.Bins(), tracePath)
	return m, nil
}

// snapshotMatrix fetches one user's matrix from a warm workspace
// snapshot. The fast path is the manifest-backed O(record) read
// (analysis.LoadUserMatrix): the agent validates and reads only the
// integrity shard containing its record instead of checksumming and
// mapping the whole population's store. Stores sealed before the
// manifest format exist without one — those fall back to the full
// load-and-clone path, still load-only (no cold build — one agent
// must not materialize a whole population). Returns nil when the
// snapshot is absent, stale or corrupt; the log lines distinguish a
// cold store (expected, the operator just has not run snapshots yet)
// from a damaged one (worth investigating).
func snapshotMatrix(dir string, userID int, pop *trace.Population) *features.Matrix {
	key, err := snapshot.KeyFor(pop.Cfg)
	if err != nil {
		log.Printf("hidsd: snapshot key: %v", err)
		return nil
	}
	m, uerr := analysis.LoadUserMatrix(dir, key, userID)
	if uerr == nil {
		return m
	}
	if errors.Is(uerr, fs.ErrNotExist) {
		// Either a genuinely cold store, or a pre-manifest snapshot
		// (sealed before the sidecar existed) missing only the
		// manifest — the full load below still serves the latter.
		if _, serr := os.Stat(key.Path(dir)); serr != nil {
			log.Printf("hidsd: snapshot store %s is cold for this config", dir)
			return nil
		}
	}
	log.Printf("hidsd: per-user snapshot read failed (%v), trying full load", uerr)
	ws, err := analysis.Load(dir, key)
	if err != nil {
		log.Printf("hidsd: warning: snapshot load failed (stale or corrupt store): %v", err)
		return nil
	}
	defer ws.Close()
	// Matrices() is sized by the store's own geometry; guard rather
	// than trust the caller so a mismatched -user degrades to the
	// synthetic path instead of a panic deep in the snapshot layer.
	if userID < 0 || userID >= len(ws.Matrices()) {
		log.Printf("hidsd: user %d outside snapshot population of %d", userID, len(ws.Matrices()))
		return nil
	}
	return ws.Matrices()[userID].Clone()
}
