// Package repro is the public API of the reproduction of "Impact of
// IT Monoculture on Behavioral End Host Intrusion Detection"
// (Barman, Chandrashekar, Taft, Faloutsos, Huang, Giroire — WREN/
// SIGCOMM workshop 2009).
//
// It wires together the internal substrates — synthetic enterprise
// trace generation, packet-level feature extraction, threshold
// heuristics, grouping policies, attacker models and the management
// plane — behind a small surface:
//
//	ent, _ := repro.NewEnterprise(repro.Options{Users: 350, Weeks: 2, Seed: 1})
//	res, _ := repro.Fig3a(ent, repro.DefaultExperimentConfig())
//	fmt.Println(res)
//
// Every table and figure of the paper's evaluation has a runner in
// experiments.go (Fig1 … Fig5b, Table2, Table3); each returns a
// structured result whose String method renders the same rows or
// series the paper plots. See EXPERIMENTS.md for paper-vs-measured
// values and DESIGN.md for the substitutions made for the
// proprietary inputs.
package repro

import (
	"context"
	"fmt"
	"os"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/analysis"
	"repro/internal/core"
	"repro/internal/features"
	"repro/internal/snapshot"
	"repro/internal/stats"
	"repro/internal/trace"
)

// Options configures a synthetic enterprise.
type Options struct {
	// Users is the end-host population size (the paper's is 350).
	Users int
	// Weeks of capture (the paper has 5; experiments need >= 2 for
	// the train-week/test-week methodology).
	Weeks int
	// Seed makes the enterprise reproducible.
	Seed uint64
	// BinWidth is the aggregation window (default 15 minutes).
	BinWidth time.Duration
	// WeeklyTrend overrides the population's weekly rate trend; zero
	// keeps the calibrated default (see internal/trace).
	WeeklyTrend float64
	// SnapshotDir enables the on-disk workspace store: Materialize
	// first tries to map an existing snapshot of this exact enterprise
	// (content-addressed by seed, population, weeks, bin width and
	// engine version) as a zero-copy workspace; on a miss it streams
	// the population through sharded materialization into the
	// directory and maps the result, so warm runs skip generation
	// entirely and cold runs never hold the whole population in
	// memory. Stale or corrupt files silently fall back to
	// regeneration. Empty means the REPRO_SNAPSHOT_DIR environment
	// variable, then (still empty) fully in-memory materialization.
	SnapshotDir string
	// SnapshotShard bounds how many users a cold sharded
	// materialization holds in memory at once; <= 0 means
	// analysis.DefaultShardUsers. Ignored without a snapshot
	// directory.
	SnapshotShard int
	// SnapshotWorkers > 1 makes a cold materialization build the
	// snapshot as that many independently sealed shard parts merged
	// into the canonical (byte-identical) store — the in-process form
	// of the distributed build cmd/tracegen coordinates across
	// processes. <= 1 keeps the single streaming build. Ignored
	// without a snapshot directory.
	SnapshotWorkers int
	// StreamShard arms bounded-heap streaming evaluation on a mapped
	// snapshot workspace: population-wide analyses iterate the store
	// in shards of at most this many users, releasing each shard's
	// pages as they finish, so peak RSS tracks the shard size instead
	// of the population. Results are bit-identical to the whole-heap
	// path. Zero means the REPRO_STREAM_SHARD environment variable,
	// then (still zero) whole-heap evaluation. Ignored without a
	// snapshot-backed workspace.
	StreamShard int
	// Warnf receives non-fatal operational warnings — today, snapshot
	// store fallbacks (stale/corrupt file rejected, unwritable
	// directory) that would otherwise regenerate silently. Default:
	// stderr.
	Warnf func(format string, args ...any)
}

// Enterprise is a generated population together with its lazily
// materialized per-user feature matrices and the columnar analysis
// workspace every experiment runner shares (pre-sorted per-user ×
// per-week × per-feature views, memoized distributions, cached
// attack sweeps and threshold configurations). It is safe for
// concurrent use after construction.
type Enterprise struct {
	// Pop is the underlying synthetic population.
	Pop *trace.Population

	once     []sync.Once
	matrices []*features.Matrix

	snapDir     string
	snapShard   int
	snapWorkers int
	streamShard int
	warnf       func(format string, args ...any)

	wsOnce sync.Once
	// ws is published atomically once materialization completes, so
	// accessors that must not *trigger* a build (Matrix, Close) can
	// still observe a finished one race-free.
	ws atomic.Pointer[analysis.Workspace]
}

// NewEnterprise generates a deterministic enterprise from opts.
func NewEnterprise(opts Options) (*Enterprise, error) {
	pop, err := trace.NewPopulation(trace.Config{
		Users:       opts.Users,
		Weeks:       opts.Weeks,
		Seed:        opts.Seed,
		BinWidth:    opts.BinWidth,
		WeeklyTrend: opts.WeeklyTrend,
	})
	if err != nil {
		return nil, err
	}
	dir := opts.SnapshotDir
	if dir == "" {
		dir = os.Getenv("REPRO_SNAPSHOT_DIR")
	}
	streamShard := opts.StreamShard
	if streamShard == 0 {
		if n, err := strconv.Atoi(os.Getenv("REPRO_STREAM_SHARD")); err == nil {
			streamShard = n
		}
	}
	warnf := opts.Warnf
	if warnf == nil {
		warnf = func(format string, args ...any) {
			fmt.Fprintf(os.Stderr, "repro: "+format+"\n", args...)
		}
	}
	return &Enterprise{
		Pop:         pop,
		once:        make([]sync.Once, len(pop.Users)),
		matrices:    make([]*features.Matrix, len(pop.Users)),
		snapDir:     dir,
		snapShard:   opts.SnapshotShard,
		snapWorkers: opts.SnapshotWorkers,
		streamShard: streamShard,
		warnf:       warnf,
	}, nil
}

// Users returns the population size.
func (e *Enterprise) Users() int { return len(e.Pop.Users) }

// Matrix returns user u's feature matrix, materializing it on first
// use with the week-batched trace generator. A fully materialized
// enterprise already holds every matrix — snapshot-backed workspaces
// serve zero-copy mapped views (read-only; Clone before mutating) —
// so the per-user generator only runs when the workspace has not
// been built yet.
func (e *Enterprise) Matrix(u int) *features.Matrix {
	e.once[u].Do(func() {
		if ws := e.ws.Load(); ws != nil {
			e.matrices[u] = ws.Matrices()[u]
			return
		}
		e.matrices[u] = e.Pop.Users[u].Series()
	})
	return e.matrices[u]
}

// Materialize generates every user's matrix and builds the columnar
// analysis workspace in one fused parallel pass: each worker runs the
// batch generation engine for its user and extracts + sorts the
// user's feature-week columns while the rows are cache-hot.
// Experiments call it up front so their own timings exclude
// generation. With a snapshot directory configured (Options or
// REPRO_SNAPSHOT_DIR) the workspace is instead mapped from — or, on a
// miss, streamed shard by shard into — the on-disk store.
func (e *Enterprise) Materialize() {
	e.workspace()
}

// snapshotKey content-addresses this enterprise in the snapshot
// store. Pop.Cfg is already normalized, so the key's defaulted fields
// (start time, heavy fraction, trend) are exactly what generation ran
// under.
func (e *Enterprise) snapshotKey() (snapshot.Key, error) {
	return snapshot.KeyFor(e.Pop.Cfg)
}

// SaveSnapshot persists the enterprise's materialized workspace to
// the content-addressed store under dir and returns the sealed file's
// path. A later enterprise with the same Options (and any other
// process on the host) then maps it back via the snapshot path
// instead of regenerating.
func (e *Enterprise) SaveSnapshot(dir string) (string, error) {
	key, err := e.snapshotKey()
	if err != nil {
		return "", err
	}
	return e.workspace().Save(dir, key)
}

// Close releases the enterprise's snapshot mapping when its workspace
// was loaded from the on-disk store (no-op otherwise). The enterprise
// must not be used afterwards — every view its workspace served is
// invalid once the mapping is gone. Only needed by callers that churn
// through many enterprises in one process (benchmarks, sweeps);
// letting the process exit is equivalent.
func (e *Enterprise) Close() error {
	if ws := e.ws.Load(); ws != nil {
		return ws.Close()
	}
	return nil
}

// workspace returns the enterprise's columnar analysis workspace,
// building it (and all matrices) on first use.
func (e *Enterprise) workspace() *analysis.Workspace {
	e.wsOnce.Do(func() {
		e.ws.Store(e.buildWorkspace())
	})
	return e.ws.Load()
}

func (e *Enterprise) buildWorkspace() *analysis.Workspace {
	if e.snapDir != "" {
		if key, err := e.snapshotKey(); err == nil {
			// Warm: map the existing snapshot, skipping generation
			// entirely. Cold (or stale/corrupt, which Load rejects):
			// stream the population into the store in bounded shards
			// and map the result. Any failure — unwritable directory,
			// full disk, … — falls through to the in-memory build
			// rather than failing the run, but is surfaced through
			// Warnf so operators can tell a fallback from a warm map.
			ws, _, err := analysis.LoadOrMaterialize(context.Background(), e.snapDir, key, e.snapShard, e.snapWorkers, e.Pop.CostWeights(),
				func(stage string, werr error) {
					e.warnf("snapshot %s fallback (%s): %v", stage, e.snapDir, werr)
				},
				func(u int, rows [][features.NumFeatures]float64) {
					e.Pop.Users[u].FillSeries(rows)
				})
			if err == nil {
				ws.SetStreamShard(e.streamShard)
				return ws
			}
		}
	}
	// In-memory fused build. All users' rows live in one slab, so
	// the parallel materialize loop costs one allocation for the
	// whole population's matrices instead of one per user.
	bins := e.Pop.Cfg.TotalBins()
	slab := make([][features.NumFeatures]float64, len(e.matrices)*bins)
	return analysis.NewGenerated(len(e.matrices), func(u int) *features.Matrix {
		e.once[u].Do(func() {
			rows := slab[u*bins : (u+1)*bins : (u+1)*bins]
			e.matrices[u] = e.Pop.Users[u].SeriesInto(rows)
		})
		return e.matrices[u]
	})
}

// TrainTest extracts every user's train-week and test-week series of
// one feature, the input shape of the §6.1 methodology. The returned
// slices are fresh copies the caller may modify; internal runners use
// the workspace's shared columns directly.
func (e *Enterprise) TrainTest(f features.Feature, trainWeek, testWeek int) (train, test [][]float64) {
	ws := e.workspace()
	return copyColumns(ws.Raw(f, trainWeek)), copyColumns(ws.Raw(f, testWeek))
}

func copyColumns(cols [][]float64) [][]float64 {
	out := make([][]float64, len(cols))
	for u := range cols {
		out[u] = append([]float64(nil), cols[u]...)
	}
	return out
}

// TailStats returns every user's q-quantile of one feature over the
// given week (the per-user thresholds Fig 1 plots). Results come
// from the workspace's memoized quantile vectors; the returned slice
// is a fresh copy the caller may reorder.
func (e *Enterprise) TailStats(f features.Feature, week int, q float64) ([]float64, error) {
	tails, err := e.workspace().TailStats(f, week, q)
	if err != nil {
		return nil, fmt.Errorf("repro: %w", err)
	}
	return append([]float64(nil), tails...), nil
}

// Policies returns the paper's three grouping policies under one
// heuristic, in presentation order: homogeneous, full diversity,
// 8-partial.
func Policies(h core.Heuristic) []core.Policy {
	return []core.Policy{
		{Heuristic: h, Grouping: core.Homogeneous{}},
		{Heuristic: h, Grouping: core.FullDiversity{}},
		{Heuristic: h, Grouping: core.PartialDiversity{NumGroups: 8}},
	}
}

// AttackSweep builds the paper's attack-size sweep for one feature:
// n geometrically spaced sizes from 1 up to the maximum feature value
// any user exhibits in the training week ("the largest attack for a
// given feature is determined by finding the user whose own traffic
// hits the maximum seen value", §6.1). Sweeps are memoized per
// (feature, week, n); the returned slice is a fresh copy.
func (e *Enterprise) AttackSweep(f features.Feature, trainWeek, n int) []float64 {
	return append([]float64(nil), e.workspace().Sweep(f, trainWeek, n)...)
}

// geomSpace returns n geometrically spaced values over [lo, hi],
// guarding degenerate bounds (lo <= 0, hi <= lo, NaN/Inf) so attack
// sweeps can never contain NaN or Inf magnitudes.
func geomSpace(lo, hi float64, n int) []float64 {
	return analysis.GeomSpace(lo, hi, n)
}

// Distribution returns one user's memoized empirical distribution of
// a feature over a week. The distribution is shared with the
// analysis workspace (Empirical is immutable, so sharing is safe).
func (e *Enterprise) Distribution(u int, f features.Feature, week int) (*stats.Empirical, error) {
	return e.workspace().Dist(u, f, week), nil
}
