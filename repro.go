// Package repro is the public API of the reproduction of "Impact of
// IT Monoculture on Behavioral End Host Intrusion Detection"
// (Barman, Chandrashekar, Taft, Faloutsos, Huang, Giroire — WREN/
// SIGCOMM workshop 2009).
//
// It wires together the internal substrates — synthetic enterprise
// trace generation, packet-level feature extraction, threshold
// heuristics, grouping policies, attacker models and the management
// plane — behind a small surface:
//
//	ent, _ := repro.NewEnterprise(repro.Options{Users: 350, Weeks: 2, Seed: 1})
//	res, _ := repro.Fig3a(ent, repro.DefaultExperimentConfig())
//	fmt.Println(res)
//
// Every table and figure of the paper's evaluation has a runner in
// experiments.go (Fig1 … Fig5b, Table2, Table3); each returns a
// structured result whose String method renders the same rows or
// series the paper plots. See EXPERIMENTS.md for paper-vs-measured
// values and DESIGN.md for the substitutions made for the
// proprietary inputs.
package repro

import (
	"fmt"
	"math"
	"runtime"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/features"
	"repro/internal/stats"
	"repro/internal/trace"
)

// Options configures a synthetic enterprise.
type Options struct {
	// Users is the end-host population size (the paper's is 350).
	Users int
	// Weeks of capture (the paper has 5; experiments need >= 2 for
	// the train-week/test-week methodology).
	Weeks int
	// Seed makes the enterprise reproducible.
	Seed uint64
	// BinWidth is the aggregation window (default 15 minutes).
	BinWidth time.Duration
	// WeeklyTrend overrides the population's weekly rate trend; zero
	// keeps the calibrated default (see internal/trace).
	WeeklyTrend float64
}

// Enterprise is a generated population together with its lazily
// materialized per-user feature matrices. It is safe for concurrent
// use after construction.
type Enterprise struct {
	// Pop is the underlying synthetic population.
	Pop *trace.Population

	once     []sync.Once
	matrices []*features.Matrix
}

// NewEnterprise generates a deterministic enterprise from opts.
func NewEnterprise(opts Options) (*Enterprise, error) {
	pop, err := trace.NewPopulation(trace.Config{
		Users:       opts.Users,
		Weeks:       opts.Weeks,
		Seed:        opts.Seed,
		BinWidth:    opts.BinWidth,
		WeeklyTrend: opts.WeeklyTrend,
	})
	if err != nil {
		return nil, err
	}
	return &Enterprise{
		Pop:      pop,
		once:     make([]sync.Once, len(pop.Users)),
		matrices: make([]*features.Matrix, len(pop.Users)),
	}, nil
}

// Users returns the population size.
func (e *Enterprise) Users() int { return len(e.Pop.Users) }

// Matrix returns user u's feature matrix, materializing it on first
// use.
func (e *Enterprise) Matrix(u int) *features.Matrix {
	e.once[u].Do(func() {
		e.matrices[u] = e.Pop.Users[u].Series()
	})
	return e.matrices[u]
}

// Materialize builds every user's matrix using all CPUs; experiments
// call it up front so their own timings exclude generation.
func (e *Enterprise) Materialize() {
	workers := runtime.GOMAXPROCS(0)
	var wg sync.WaitGroup
	ch := make(chan int)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for u := range ch {
				e.Matrix(u)
			}
		}()
	}
	for u := range e.matrices {
		ch <- u
	}
	close(ch)
	wg.Wait()
}

// TrainTest extracts every user's train-week and test-week series of
// one feature, the input shape of the §6.1 methodology.
func (e *Enterprise) TrainTest(f features.Feature, trainWeek, testWeek int) (train, test [][]float64) {
	train = make([][]float64, e.Users())
	test = make([][]float64, e.Users())
	for u := range train {
		m := e.Matrix(u)
		lo, hi := m.WeekRange(trainWeek)
		train[u] = m.ColumnSlice(f, lo, hi)
		lo, hi = m.WeekRange(testWeek)
		test[u] = m.ColumnSlice(f, lo, hi)
	}
	return train, test
}

// TailStats returns every user's q-quantile of one feature over the
// given week (the per-user thresholds Fig 1 plots).
func (e *Enterprise) TailStats(f features.Feature, week int, q float64) ([]float64, error) {
	out := make([]float64, e.Users())
	for u := range out {
		m := e.Matrix(u)
		lo, hi := m.WeekRange(week)
		d, err := m.Distribution(f, lo, hi)
		if err != nil {
			return nil, fmt.Errorf("repro: user %d %s: %w", u, f, err)
		}
		v, err := d.Quantile(q)
		if err != nil {
			return nil, err
		}
		out[u] = v
	}
	return out, nil
}

// Policies returns the paper's three grouping policies under one
// heuristic, in presentation order: homogeneous, full diversity,
// 8-partial.
func Policies(h core.Heuristic) []core.Policy {
	return []core.Policy{
		{Heuristic: h, Grouping: core.Homogeneous{}},
		{Heuristic: h, Grouping: core.FullDiversity{}},
		{Heuristic: h, Grouping: core.PartialDiversity{NumGroups: 8}},
	}
}

// AttackSweep builds the paper's attack-size sweep for one feature:
// n geometrically spaced sizes from 1 up to the maximum feature value
// any user exhibits in the training week ("the largest attack for a
// given feature is determined by finding the user whose own traffic
// hits the maximum seen value", §6.1).
func (e *Enterprise) AttackSweep(f features.Feature, trainWeek, n int) []float64 {
	var max float64
	for u := 0; u < e.Users(); u++ {
		m := e.Matrix(u)
		lo, hi := m.WeekRange(trainWeek)
		for b := lo; b < hi; b++ {
			if v := m.Rows[b][f]; v > max {
				max = v
			}
		}
	}
	if max < 2 {
		max = 2
	}
	return geomSpace(1, max, n)
}

// geomSpace returns n geometrically spaced values over [lo, hi].
func geomSpace(lo, hi float64, n int) []float64 {
	if n < 2 {
		return []float64{hi}
	}
	out := make([]float64, n)
	ratio := hi / lo
	for i := range out {
		out[i] = lo * math.Pow(ratio, float64(i)/float64(n-1))
	}
	return out
}

// Distribution builds one user's empirical distribution of a feature
// over a week.
func (e *Enterprise) Distribution(u int, f features.Feature, week int) (*stats.Empirical, error) {
	m := e.Matrix(u)
	lo, hi := m.WeekRange(week)
	return m.Distribution(f, lo, hi)
}
