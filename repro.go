// Package repro is the public API of the reproduction of "Impact of
// IT Monoculture on Behavioral End Host Intrusion Detection"
// (Barman, Chandrashekar, Taft, Faloutsos, Huang, Giroire — WREN/
// SIGCOMM workshop 2009).
//
// It wires together the internal substrates — synthetic enterprise
// trace generation, packet-level feature extraction, threshold
// heuristics, grouping policies, attacker models and the management
// plane — behind a small surface:
//
//	ent, _ := repro.NewEnterprise(repro.Options{Users: 350, Weeks: 2, Seed: 1})
//	res, _ := repro.Fig3a(ent, repro.DefaultExperimentConfig())
//	fmt.Println(res)
//
// Every table and figure of the paper's evaluation has a runner in
// experiments.go (Fig1 … Fig5b, Table2, Table3); each returns a
// structured result whose String method renders the same rows or
// series the paper plots. See EXPERIMENTS.md for paper-vs-measured
// values and DESIGN.md for the substitutions made for the
// proprietary inputs.
package repro

import (
	"fmt"
	"sync"
	"time"

	"repro/internal/analysis"
	"repro/internal/core"
	"repro/internal/features"
	"repro/internal/stats"
	"repro/internal/trace"
)

// Options configures a synthetic enterprise.
type Options struct {
	// Users is the end-host population size (the paper's is 350).
	Users int
	// Weeks of capture (the paper has 5; experiments need >= 2 for
	// the train-week/test-week methodology).
	Weeks int
	// Seed makes the enterprise reproducible.
	Seed uint64
	// BinWidth is the aggregation window (default 15 minutes).
	BinWidth time.Duration
	// WeeklyTrend overrides the population's weekly rate trend; zero
	// keeps the calibrated default (see internal/trace).
	WeeklyTrend float64
}

// Enterprise is a generated population together with its lazily
// materialized per-user feature matrices and the columnar analysis
// workspace every experiment runner shares (pre-sorted per-user ×
// per-week × per-feature views, memoized distributions, cached
// attack sweeps and threshold configurations). It is safe for
// concurrent use after construction.
type Enterprise struct {
	// Pop is the underlying synthetic population.
	Pop *trace.Population

	once     []sync.Once
	matrices []*features.Matrix

	wsOnce sync.Once
	ws     *analysis.Workspace
}

// NewEnterprise generates a deterministic enterprise from opts.
func NewEnterprise(opts Options) (*Enterprise, error) {
	pop, err := trace.NewPopulation(trace.Config{
		Users:       opts.Users,
		Weeks:       opts.Weeks,
		Seed:        opts.Seed,
		BinWidth:    opts.BinWidth,
		WeeklyTrend: opts.WeeklyTrend,
	})
	if err != nil {
		return nil, err
	}
	return &Enterprise{
		Pop:      pop,
		once:     make([]sync.Once, len(pop.Users)),
		matrices: make([]*features.Matrix, len(pop.Users)),
	}, nil
}

// Users returns the population size.
func (e *Enterprise) Users() int { return len(e.Pop.Users) }

// Matrix returns user u's feature matrix, materializing it on first
// use with the week-batched trace generator.
func (e *Enterprise) Matrix(u int) *features.Matrix {
	e.once[u].Do(func() {
		e.matrices[u] = e.Pop.Users[u].Series()
	})
	return e.matrices[u]
}

// Materialize generates every user's matrix and builds the columnar
// analysis workspace in one fused parallel pass: each worker runs the
// batch generation engine for its user and extracts + sorts the
// user's feature-week columns while the rows are cache-hot.
// Experiments call it up front so their own timings exclude
// generation.
func (e *Enterprise) Materialize() {
	e.workspace()
}

// workspace returns the enterprise's columnar analysis workspace,
// building it (and all matrices) on first use.
func (e *Enterprise) workspace() *analysis.Workspace {
	e.wsOnce.Do(func() {
		e.ws = analysis.NewGenerated(len(e.matrices), e.Matrix)
	})
	return e.ws
}

// TrainTest extracts every user's train-week and test-week series of
// one feature, the input shape of the §6.1 methodology. The returned
// slices are fresh copies the caller may modify; internal runners use
// the workspace's shared columns directly.
func (e *Enterprise) TrainTest(f features.Feature, trainWeek, testWeek int) (train, test [][]float64) {
	ws := e.workspace()
	return copyColumns(ws.Raw(f, trainWeek)), copyColumns(ws.Raw(f, testWeek))
}

func copyColumns(cols [][]float64) [][]float64 {
	out := make([][]float64, len(cols))
	for u := range cols {
		out[u] = append([]float64(nil), cols[u]...)
	}
	return out
}

// TailStats returns every user's q-quantile of one feature over the
// given week (the per-user thresholds Fig 1 plots). Results come
// from the workspace's memoized quantile vectors; the returned slice
// is a fresh copy the caller may reorder.
func (e *Enterprise) TailStats(f features.Feature, week int, q float64) ([]float64, error) {
	tails, err := e.workspace().TailStats(f, week, q)
	if err != nil {
		return nil, fmt.Errorf("repro: %w", err)
	}
	return append([]float64(nil), tails...), nil
}

// Policies returns the paper's three grouping policies under one
// heuristic, in presentation order: homogeneous, full diversity,
// 8-partial.
func Policies(h core.Heuristic) []core.Policy {
	return []core.Policy{
		{Heuristic: h, Grouping: core.Homogeneous{}},
		{Heuristic: h, Grouping: core.FullDiversity{}},
		{Heuristic: h, Grouping: core.PartialDiversity{NumGroups: 8}},
	}
}

// AttackSweep builds the paper's attack-size sweep for one feature:
// n geometrically spaced sizes from 1 up to the maximum feature value
// any user exhibits in the training week ("the largest attack for a
// given feature is determined by finding the user whose own traffic
// hits the maximum seen value", §6.1). Sweeps are memoized per
// (feature, week, n); the returned slice is a fresh copy.
func (e *Enterprise) AttackSweep(f features.Feature, trainWeek, n int) []float64 {
	return append([]float64(nil), e.workspace().Sweep(f, trainWeek, n)...)
}

// geomSpace returns n geometrically spaced values over [lo, hi],
// guarding degenerate bounds (lo <= 0, hi <= lo, NaN/Inf) so attack
// sweeps can never contain NaN or Inf magnitudes.
func geomSpace(lo, hi float64, n int) []float64 {
	return analysis.GeomSpace(lo, hi, n)
}

// Distribution returns one user's memoized empirical distribution of
// a feature over a week. The distribution is shared with the
// analysis workspace (Empirical is immutable, so sharing is safe).
func (e *Enterprise) Distribution(u int, f features.Feature, week int) (*stats.Empirical, error) {
	return e.workspace().Dist(u, f, week), nil
}
