// Grouping: the partial-diversity group-count study (§5-§6). Sweeps
// the number of configuration groups (2, 3, 5, 8 — the settings the
// paper studied) and shows mean utility approaching full diversity
// as groups grow, plus the k-means negative result: user thresholds
// form a continuum with no natural cluster boundaries, so k-means
// adds little over simple quantile splits.
//
// Run with:
//
//	go run ./examples/grouping
package main

import (
	"fmt"
	"log"

	"repro"
	"repro/internal/core"
	"repro/internal/features"
	"repro/internal/stats"
	"repro/internal/xrand"
)

func main() {
	ent, err := repro.NewEnterprise(repro.Options{Users: 80, Weeks: 2, Seed: 11})
	if err != nil {
		log.Fatal(err)
	}
	train, test := ent.TrainTest(features.TCP, 0, 1)
	sweep := ent.AttackSweep(features.TCP, 0, 16)

	attackOverlay := make([][]float64, len(test))
	for u := range attackOverlay {
		attackOverlay[u] = make([]float64, len(test[u]))
		k := 0
		for b := 3; b < len(test[u]); b += 4 {
			attackOverlay[u][b] = sweep[k%len(sweep)]
			k++
		}
	}
	run := func(g core.Grouping) float64 {
		res, err := core.EvaluatePolicy(core.EvalInput{
			Train: train, Test: test, Attack: attackOverlay,
			AttackMagnitudes: sweep,
			Policy:           core.Policy{Heuristic: core.Percentile{Q: 0.99}, Grouping: g},
		})
		if err != nil {
			log.Fatal(err)
		}
		return res.MeanUtility(0.4)
	}

	fmt.Println("partial-diversity group count sweep (mean utility, w=0.4)")
	homog := run(core.Homogeneous{})
	fmt.Printf("  %-22s %.4f\n", "homogeneous (1 group)", homog)
	for _, k := range []int{2, 3, 5, 8} {
		fmt.Printf("  %-22s %.4f\n", fmt.Sprintf("%d-partial", k), run(core.PartialDiversity{NumGroups: k}))
	}
	full := run(core.FullDiversity{})
	fmt.Printf("  %-22s %.4f\n", "full diversity", full)

	// The paper's k-means negative result: thresholds sweep the whole
	// range, so clustering finds no natural boundaries.
	stat := make([]float64, len(train))
	for u := range stat {
		d := stats.MustEmpirical(train[u])
		stat[u] = d.MustQuantile(0.99)
	}
	points := make([][]float64, len(stat))
	for i, v := range stat {
		points[i] = []float64{v}
	}
	res, err := stats.KMeans(xrand.New(1), points, 8, 200)
	if err != nil {
		log.Fatal(err)
	}
	sil := stats.SilhouetteScore(points, res.Assign, 8)
	fmt.Printf("\nk-means over per-user 99th percentiles: silhouette %.2f\n", sil)
	fmt.Printf("  (low silhouette = no natural holes between groups, §5)\n")
	fmt.Printf("  k-means grouping utility: %.4f vs quantile 8-partial %.4f\n",
		run(core.KMeansGrouping{K: 8, Seed: 1}), run(core.PartialDiversity{NumGroups: 8}))
}
