// Mimicry: the resourceful-attacker study of §6.2 on a handful of
// hosts. For each host, an attacker that has profiled the machine's
// traffic computes the largest additive volume that evades the
// detector with 90% probability — under the monoculture threshold
// and under the host's own (diversity) threshold — showing how much
// "room" each policy leaves the attacker.
//
// Run with:
//
//	go run ./examples/mimicry
package main

import (
	"fmt"
	"log"

	"repro"
	"repro/internal/attack"
	"repro/internal/core"
	"repro/internal/features"
	"repro/internal/stats"
)

func main() {
	ent, err := repro.NewEnterprise(repro.Options{Users: 40, Weeks: 2, Seed: 3})
	if err != nil {
		log.Fatal(err)
	}
	train, _ := ent.TrainTest(features.TCP, 0, 1)
	dists := make([]*stats.Empirical, len(train))
	for u := range dists {
		if dists[u], err = stats.NewEmpirical(train[u]); err != nil {
			log.Fatal(err)
		}
	}

	homog, err := core.Configure(dists, core.Policy{
		Heuristic: core.Percentile{Q: 0.99}, Grouping: core.Homogeneous{}}, nil)
	if err != nil {
		log.Fatal(err)
	}
	div, err := core.Configure(dists, core.Policy{
		Heuristic: core.Percentile{Q: 0.99}, Grouping: core.FullDiversity{}}, nil)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("resourceful attacker: max hidden traffic per window (evade prob 0.9)")
	fmt.Printf("%-6s %12s %14s %14s %14s\n", "host", "own q99", "T(homog)", "hidden(homog)", "hidden(divers)")
	var hidH, hidD []float64
	for u := 0; u < len(dists); u++ {
		// The attacker profiles the host's own behavior (the paper's
		// strong threat model: monitoring code on the zombie).
		profile := dists[u]
		hHomog, err := attack.HiddenTraffic(profile, homog.Thresholds[u], 0.9)
		if err != nil {
			log.Fatal(err)
		}
		hDiv, err := attack.HiddenTraffic(profile, div.Thresholds[u], 0.9)
		if err != nil {
			log.Fatal(err)
		}
		hidH = append(hidH, hHomog)
		hidD = append(hidD, hDiv)
		if u < 10 {
			fmt.Printf("%-6d %12.1f %14.1f %14.1f %14.1f\n",
				u, div.Thresholds[u], homog.Thresholds[u], hHomog, hDiv)
		}
	}
	bH, _ := stats.NewBoxplot(hidH)
	bD, _ := stats.NewBoxplot(hidD)
	fmt.Printf("...\nmedian hidden traffic: homogeneous %.0f conn/window, "+
		"diversity %.0f (%.1fx reduction; Fig 4b)\n",
		bH.Median, bD.Median, bH.Median/bD.Median)
	fmt.Println("\nlesson: a single enterprise-wide threshold leaves the typical host")
	fmt.Println("with an enormous undetectable budget; per-host thresholds squeeze it")
	fmt.Println("to each host's own fringe (only the heaviest hosts keep any room).")
}
