// Enterprise: a live fleet simulation. A central console and a fleet
// of host agents run concurrently over loopback TCP, speaking the
// management-plane protocol: agents upload their week-1 traffic
// distributions, the console computes 8-partial-diversity thresholds
// and pushes them back, and the agents then monitor week 2, batching
// alerts to the console — exactly the deployment the paper assumes
// (§1: hosts "batch alerts that are sent periodically to IT").
//
// Run with:
//
//	go run ./examples/enterprise
package main

import (
	"fmt"
	"log"
	"net"
	"sync"
	"time"

	"repro/internal/console"
	"repro/internal/core"
	"repro/internal/features"
	"repro/internal/trace"
)

const fleetSize = 24

func main() {
	pop, err := trace.NewPopulation(trace.Config{Users: fleetSize, Weeks: 2, Seed: 99})
	if err != nil {
		log.Fatal(err)
	}

	srv, err := console.NewServer(console.ServerConfig{
		Policy: core.Policy{
			Heuristic: core.Percentile{Q: 0.99},
			Grouping:  core.PartialDiversity{NumGroups: 8},
		},
		ExpectedHosts: fleetSize,
		Logf:          log.Printf,
	})
	if err != nil {
		log.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	go func() {
		if err := srv.Serve(ln); err != nil {
			log.Printf("console: %v", err)
		}
	}()
	addr := ln.Addr().String()
	log.Printf("console listening on %s", addr)

	var wg sync.WaitGroup
	for _, u := range pop.Users {
		wg.Add(1)
		go func(u *trace.User) {
			defer wg.Done()
			if err := runAgent(addr, u); err != nil {
				log.Printf("host %d: %v", u.ID, err)
			}
		}(u)
	}
	wg.Wait()

	fmt.Printf("\n=== week 2 console summary (%d hosts, 8-partial policy) ===\n", fleetSize)
	total := 0
	for _, id := range srv.Hosts() {
		n := srv.AlertCount(id)
		total += n
		fmt.Printf("  host %2d: %3d alerts\n", id, n)
	}
	fmt.Printf("total alerts arriving at IT: %d (%.1f per host per week)\n",
		total, float64(total)/fleetSize)
	if asn := srv.Assignment(features.TCP); asn != nil {
		fmt.Printf("TCP threshold groups: %d\n", len(asn.Groups))
	}
	_ = srv.Close()
}

// runAgent drives one host through the full HIDS lifecycle.
func runAgent(addr string, u *trace.User) error {
	agent, err := console.Dial(addr, uint32(u.ID), fmt.Sprintf("laptop-%02d", u.ID))
	if err != nil {
		return err
	}
	defer agent.Close()

	m := u.Series()
	lo0, hi0 := m.WeekRange(0)
	if err := agent.UploadMatrix(m, lo0, hi0); err != nil {
		return err
	}
	if _, err := agent.WaitThresholds(time.Minute); err != nil {
		return err
	}
	lo1, hi1 := m.WeekRange(1)
	for b := lo1; b < hi1; b++ {
		c := features.Counts{
			DNS:      int(m.Rows[b][features.DNS]),
			TCP:      int(m.Rows[b][features.TCP]),
			TCPSYN:   int(m.Rows[b][features.TCPSYN]),
			HTTP:     int(m.Rows[b][features.HTTP]),
			Distinct: int(m.Rows[b][features.Distinct]),
			UDP:      int(m.Rows[b][features.UDP]),
		}
		if err := agent.ObserveWindow(b, c); err != nil {
			return err
		}
		// Batch alerts to IT once per simulated day.
		if (b-lo1+1)%96 == 0 {
			if err := agent.Flush(); err != nil {
				return err
			}
		}
	}
	return agent.Flush()
}
