// Collaborative: the paper's future-work idea (§5, §7) — users play
// different roles in detection, and high-detection users can inform
// the rest. A Storm bot infects the whole fleet; we compare each
// user's individual detection rate against a fleet-level quorum
// detector whose sentinels are the Table-2 "best users".
//
// Run with:
//
//	go run ./examples/collaborative
package main

import (
	"fmt"
	"log"
	"sort"

	"repro"
	"repro/internal/attack"
	"repro/internal/collab"
	"repro/internal/core"
	"repro/internal/features"
	"repro/internal/stats"
)

func main() {
	ent, err := repro.NewEnterprise(repro.Options{Users: 60, Weeks: 2, Seed: 21})
	if err != nil {
		log.Fatal(err)
	}
	f := features.Distinct
	train, test := ent.TrainTest(f, 0, 1)
	dists := make([]*stats.Empirical, len(train))
	for u := range dists {
		if dists[u], err = stats.NewEmpirical(train[u]); err != nil {
			log.Fatal(err)
		}
	}
	asn, err := core.Configure(dists, core.Policy{
		Heuristic: core.Percentile{Q: 0.99}, Grouping: core.FullDiversity{}}, nil)
	if err != nil {
		log.Fatal(err)
	}

	bot, err := attack.NewStorm(attack.StormConfig{Bins: len(test[0]), Seed: 4})
	if err != nil {
		log.Fatal(err)
	}
	overlay := bot.Overlay().Overlay

	// Individual detection rates under full diversity.
	det := make([]float64, len(test))
	for u := range test {
		conf, err := core.Evaluate(test[u], overlay, asn.Thresholds[u])
		if err != nil {
			log.Fatal(err)
		}
		det[u] = conf.Recall()
	}
	sorted := append([]float64(nil), det...)
	sort.Float64s(sorted)
	fmt.Printf("individual Storm detection under full diversity (%d hosts):\n", len(det))
	fmt.Printf("  worst %.2f, median %.2f, best %.2f\n",
		sorted[0], sorted[len(sorted)/2], sorted[len(sorted)-1])

	// Fleet-level quorum detection with sentinel weighting.
	alarms, err := collab.AlarmSeries(test, overlay, asn.Thresholds)
	if err != nil {
		log.Fatal(err)
	}
	attacked := make([]bool, len(overlay))
	for b, v := range overlay {
		attacked[b] = v > 0
	}
	for _, quorum := range []int{3, 5, 10} {
		d, err := collab.New(collab.Config{
			Quorum:         quorum,
			SentinelWeight: 2,
			Sentinels:      asn.BestUsers(10),
		})
		if err != nil {
			log.Fatal(err)
		}
		conf, err := d.Evaluate(alarms, attacked)
		if err != nil {
			log.Fatal(err)
		}
		// False-event rate on the clean week.
		clean, err := collab.AlarmSeries(test, nil, asn.Thresholds)
		if err != nil {
			log.Fatal(err)
		}
		events, err := d.Events(clean)
		if err != nil {
			log.Fatal(err)
		}
		fp := 0
		for _, ev := range events {
			if ev {
				fp++
			}
		}
		fmt.Printf("  quorum %2d: fleet detection %.2f, clean-week false events %d/%d\n",
			quorum, conf.Recall(), fp, len(events))
	}
	fmt.Println("\nlesson: even users whose own thresholds miss the bot are covered")
	fmt.Println("once a handful of well-placed (low-threshold) users raise the alarm.")
}
