// Quickstart: generate a small enterprise, learn per-user thresholds
// on week 1, and compare the monoculture (homogeneous) policy against
// full diversity on week 2 — the paper's core experiment in ~50
// lines.
//
// Run with:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"repro"
	"repro/internal/core"
	"repro/internal/features"
)

func main() {
	// A 60-user enterprise with two weeks of traffic. Everything is
	// derived from the seed, so this program prints the same numbers
	// every time.
	ent, err := repro.NewEnterprise(repro.Options{Users: 60, Weeks: 2, Seed: 7})
	if err != nil {
		log.Fatal(err)
	}

	// Week 1 trains, week 2 tests (the paper's §6.1 methodology),
	// using the num-TCP-connections feature.
	train, test := ent.TrainTest(features.TCP, 0, 1)

	// A simulated additive attack of 150 connections/window hits
	// every 6th window of the test week.
	attack := make([][]float64, len(test))
	for u := range attack {
		attack[u] = make([]float64, len(test[u]))
		for b := 5; b < len(attack[u]); b += 6 {
			attack[u][b] = 150
		}
	}

	for _, pol := range []core.Policy{
		{Heuristic: core.Percentile{Q: 0.99}, Grouping: core.Homogeneous{}},
		{Heuristic: core.Percentile{Q: 0.99}, Grouping: core.FullDiversity{}},
		{Heuristic: core.Percentile{Q: 0.99}, Grouping: core.PartialDiversity{NumGroups: 8}},
	} {
		res, err := core.EvaluatePolicy(core.EvalInput{
			Train:  train,
			Test:   test,
			Attack: attack,
			Policy: pol,
		})
		if err != nil {
			log.Fatal(err)
		}
		bp, _ := res.UtilityBoxplot(0.4)
		fmt.Printf("%-32s mean utility %.3f  median %.3f  false alarms/week %d\n",
			pol.Name(), res.MeanUtility(0.4), bp.Median, res.TotalFalseAlarms())
	}
}
