// Package pool provides size-bucketed free lists for the short-lived
// tables that per-user generator construction burns through: slices
// are recycled in power-of-two capacity classes on top of sync.Pool,
// so a population sweep that builds one rank table and one mark table
// per user stops paying an allocation (and its zeroing) for each.
//
// The pools hand back DIRTY memory: a Get may return a slice still
// holding a previous owner's data. They are therefore only for tables
// whose construction fully overwrites every element that is later
// read — exactly the contract the Zipf rank tables satisfy — or whose
// caller clears them (the distinct-destination mark table).
package pool

import (
	"math/bits"
	"sync"
)

// maxClass bounds the pooled capacity classes at 1<<maxClass
// elements; larger requests fall through to plain make (they are rare
// enough that pooling them would just pin huge arrays).
const maxClass = 24

// Slices recycles []T storage in power-of-two capacity classes. The
// zero value is ready to use; all methods are safe for concurrent
// callers. Get returns possibly dirty memory (see the package
// comment).
type Slices[T any] struct {
	classes [maxClass + 1]sync.Pool // class c holds *[]T with cap exactly 1<<c
	// boxes recycles the spent *[]T headers Get unwraps, so a
	// steady-state Get/Put cycle allocates nothing at all — without it
	// every Put would heap-allocate a fresh 24-byte slice header to
	// interface the value into sync.Pool.
	boxes sync.Pool
}

// Get returns a length-n slice with power-of-two capacity, reusing
// pooled storage when a matching class has any. Contents are
// unspecified.
func (p *Slices[T]) Get(n int) []T {
	if n <= 0 {
		return nil
	}
	c := bits.Len(uint(n - 1)) // ceil(log2 n)
	if c > maxClass {
		return make([]T, n)
	}
	if v, _ := p.classes[c].Get().(*[]T); v != nil {
		s := (*v)[:n]
		*v = nil
		p.boxes.Put(v)
		return s
	}
	return make([]T, n, 1<<c)
}

// Put recycles a slice obtained from Get (or any slice whose capacity
// is an exact power of two); other capacities are silently dropped.
// The caller must not use s after Put.
func (p *Slices[T]) Put(s []T) {
	c := cap(s)
	if c == 0 || c&(c-1) != 0 {
		return
	}
	cl := bits.TrailingZeros(uint(c))
	if cl > maxClass {
		return
	}
	s = s[:c]
	v, _ := p.boxes.Get().(*[]T)
	if v == nil {
		v = new([]T)
	}
	*v = s
	p.classes[cl].Put(v)
}
