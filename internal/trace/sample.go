package trace

import (
	"fmt"
	"math"
	"sort"
	"sync"

	"repro/internal/features"
	"repro/internal/xrand"
)

// binSample is the full latent realization of one (user, bin): the
// connection counts plus the destination draw for every non-DNS
// connection. BinCounts summarizes it; EmitBin materializes packets
// from it. Both paths call this function with the same deterministic
// RNG, which is what guarantees packet-path == fast-path counts.
type binSample struct {
	counts features.Counts
	// destIdx has one destination-pool index per TCP+UDP connection
	// (TCP connections first).
	destIdx []int
	// synRetries has, per TCP connection, the number of extra SYN
	// retransmissions.
	synRetries []int
}

// binSeed returns the seed of the deterministic RNG stream for
// (user, bin). The coordinates mix through distinct odd multipliers
// so nearby (user, bin) pairs land in unrelated streams.
func (u *User) binSeed(bin int) uint64 {
	seed := u.cfg.Seed
	seed ^= uint64(u.ID+1) * 0x9e3779b97f4a7c15
	seed ^= uint64(bin+1) * 0xc2b2ae3d27d4eb4f
	return seed
}

// rng returns the deterministic RNG stream for (user, bin).
func (u *User) rng(bin int) *xrand.Source {
	return xrand.New(u.binSeed(bin))
}

// weekSeed returns the seed of the deterministic RNG for (user, week)
// draws; salt separates independent uses (drift vs episodes).
func (u *User) weekSeed(week int, salt uint64) uint64 {
	seed := u.cfg.Seed
	seed ^= uint64(u.ID+1) * 0x9e3779b97f4a7c15
	seed ^= uint64(week+1) * 0xd6e8feb86659fd93
	return seed ^ salt
}

// weekRng returns the deterministic RNG for (user, week) draws.
func (u *User) weekRng(week int, salt uint64) *xrand.Source {
	return xrand.New(u.weekSeed(week, salt))
}

// episode is one sustained high-activity session (a bulk download, a
// p2p client left running, a backup): a contiguous run of bins whose
// traffic rates are multiplied by a heavy-tailed level. Episodes are
// what create each user's own upper tail, and because their levels
// re-draw every week, thresholds learned from one week's episodes
// rarely reflect an exact 1% false-positive rate the next week — the
// instability the paper observes in §6.1.
type episode struct {
	start, end int // bin range [start, end) within the week
	level      float64
}

// episodeSlot is a habitual session time in a user's week.
type episodeSlot struct {
	start, dur int
}

// episodes returns the user's episode sessions for a week,
// deterministically derived from (seed, user, week).
func (u *User) episodes(week int) []episode {
	return u.appendEpisodes(u.weekRng(week, 0x9e11), nil)
}

// appendEpisodes derives one week's episodes from r — which must be
// freshly seeded to the (user, week, 0x9e11) stream — appending to
// eps. It is shared by the per-bin reference path (episodes) and the
// batch generator's per-week cache, so both consume the identical
// draw sequence.
func (u *User) appendEpisodes(r *xrand.Source, eps []episode) []episode {
	// Low-variance episode count: usage patterns recur week to week.
	n := int(u.episodeRate)
	if r.Float64() < u.episodeRate-float64(n) {
		n++
	}
	for i := 0; i < n; i++ {
		slot := u.episodeSlots[i%len(u.episodeSlots)]
		start := slot.start + r.Intn(5) - 2 // habitual time with ±30 min jitter
		if start < 0 {
			start = 0
		}
		level := u.episodeBase * math.Exp(0.10*r.NormFloat64())
		if level < 1 {
			level = 1
		}
		if level > 400 {
			level = 400
		}
		eps = append(eps, episode{start: start, end: start + slot.dur, level: level})
	}
	return eps
}

// episodeLevel returns the episode multiplier in effect at bin (1 if
// none).
func (u *User) episodeLevel(bin int) float64 {
	week := u.Week(bin)
	off := bin - week*u.cfg.BinsPerWeek()
	return episodeLevelAt(u.episodes(week), off)
}

// episodeLevelAt returns the episode multiplier in effect at the
// given bin offset within the week.
func episodeLevelAt(eps []episode, off int) float64 {
	level := 1.0
	for _, e := range eps {
		if off >= e.start && off < e.end && e.level > level {
			level = e.level
		}
	}
	return level
}

// Activity returns the deterministic diurnal/weekly activity
// multiplier for bin, before the random offline draw. Exposed so
// tests can check the cycle shape.
func (u *User) Activity(bin int) float64 {
	binsPerDay := u.cfg.BinsPerWeek() / 7
	day := (bin / binsPerDay) % 7 // 0 = Monday (start is Monday 00:00)
	hour := float64(bin%binsPerDay) / float64(binsPerDay) * 24
	weekend := day >= 5
	switch {
	case weekend && hour >= 10 && hour < 22:
		return 0.25
	case weekend:
		return 0.05
	case hour >= 9 && hour < 18: // office hours
		return 1.0
	case hour >= 7 && hour < 9, hour >= 18 && hour < 23: // commute/home
		return 0.45
	default: // night
		return 0.04
	}
}

// offlineProb is the probability the laptop is suspended during bin.
func (u *User) offlineProb(bin int) float64 {
	return offlineProbFor(u.Activity(bin))
}

// offlineProbFor maps the activity multiplier to the suspension
// probability; shared by the reference path and the batch generator
// (which computes Activity once per bin).
func offlineProbFor(act float64) float64 {
	switch {
	case act >= 1.0:
		return 0.08
	case act >= 0.45:
		return 0.40
	case act >= 0.25:
		return 0.55
	default:
		return 0.80
	}
}

// driftFrom draws the weekly drift triple from r, which must be
// freshly seeded to the (user, week, 0xabcd) stream; shared by
// weekDrift and the batch generator's per-week cache.
func (u *User) driftFrom(r *xrand.Source) (float64, float64, float64) {
	sigma := 0.05 + 0.42*sigmoid(1.6*(u.Size-1.9))
	return math.Exp(r.Normal(0, sigma)),
		math.Exp(r.Normal(0, sigma)),
		math.Exp(r.Normal(0, 0.5*sigma))
}

// weekDrift returns the per-feature multiplicative drift for the
// user's given week: (tcp, udp, dns). Drift volatility grows with
// user size: heavy users' upper-tail behavior is far less stationary
// week-over-week than light users' (new applications, bulk
// transfers), which is the mechanism behind the paper's Table 3 —
// the global monoculture threshold sits inside the heavy users'
// dense region, so their drift floods the console with false alarms,
// while per-user thresholds sit in each user's own sparse tail.
func (u *User) weekDrift(week int) (float64, float64, float64) {
	return u.driftFrom(u.weekRng(week, 0xabcd))
}

// sample draws the bin's full realization. It is the reference
// sampler: a self-contained per-bin derivation kept deliberately
// simple (fresh RNGs, fresh slices) that defines the model. The
// batch engine (Generator.sampleInto) re-implements it with cached
// week state and pooled scratch and must stay draw-for-draw
// identical; the randomized equivalence tests in gen_test.go pin the
// two together.
func (u *User) sample(bin int) binSample {
	r := u.rng(bin)
	var s binSample
	level := u.episodeLevel(bin)
	// An episode keeps the laptop online (a running download or p2p
	// session); otherwise the offline draw may suspend the bin.
	offline := r.Float64() < u.offlineProb(bin)
	if offline && level <= 1 {
		return s // laptop suspended: all-zero bin
	}
	act := u.Activity(bin)
	if level > 1 && act < 0.45 {
		act = 0.45 // an episode implies the user is around
	}
	// Per-bin multiplicative noise, shared across features (a busy
	// bin is busy for every feature).
	noise := math.Exp(r.Normal(0, u.noiseSigma))
	// Rare single-bin "flash" events (an update storm, an aggressive
	// application burst): every user occasionally spikes far above
	// their routine, which is what spreads the monoculture policy's
	// per-user false-positive rates across decades (Fig 5a).
	if r.Float64() < 0.004 {
		flash := 4 * r.Pareto(1, 1.25)
		if flash > 250 {
			flash = 250
		}
		noise *= flash
	}
	dTCP, dUDP, dDNS := u.weekDrift(u.Week(bin))
	trend := math.Pow(u.cfg.WeeklyTrend, float64(u.Week(bin)))
	mTCP := u.tcpRate * act * noise * dTCP * level * trend
	mUDP := u.udpRate * act * noise * dUDP * level * trend
	mDNS := u.dnsRate * act * noise * dDNS * math.Pow(level, 0.3) * trend

	s.counts.TCP = r.Poisson(mTCP)
	s.counts.UDP = r.Poisson(mUDP)
	s.counts.DNS = r.Poisson(mDNS)
	s.counts.HTTP = r.Binomial(s.counts.TCP, u.httpFrac)

	// SYN retransmissions.
	s.counts.TCPSYN = s.counts.TCP
	if s.counts.TCP > 0 {
		s.synRetries = make([]int, s.counts.TCP)
		for i := range s.synRetries {
			for r.Float64() < u.synRetryP {
				s.synRetries[i]++
			}
			s.counts.TCPSYN += s.synRetries[i]
		}
	}

	// Destination draws for TCP then UDP connections; DNS goes to the
	// enterprise resolver and contributes at most one distinct
	// destination.
	nDest := s.counts.TCP + s.counts.UDP
	if nDest > 0 {
		s.destIdx = make([]int, nDest)
		zipf := xrand.NewZipf(r, u.poolSize, u.zipfS)
		for i := range s.destIdx {
			s.destIdx[i] = zipf.Next() - 1
		}
		s.counts.Distinct = countDistinct(s.destIdx)
	}
	if s.counts.DNS > 0 {
		s.counts.Distinct++
	}
	return s
}

// distinctScratch pools the sort buffers of countDistinct's large
// path, so concurrent per-bin callers stay allocation-free above 32
// destinations.
var distinctScratch = sync.Pool{
	New: func() any { s := make([]int, 0, 256); return &s },
}

// countDistinct counts unique values in idx without mutating it.
func countDistinct(idx []int) int {
	if len(idx) <= 1 {
		return len(idx)
	}
	if len(idx) <= 32 {
		// quadratic path avoids any scratch for the common case
		n := 0
		for i, v := range idx {
			dup := false
			for _, w := range idx[:i] {
				if w == v {
					dup = true
					break
				}
			}
			if !dup {
				n++
			}
		}
		return n
	}
	// Sort a pooled copy and count runs: no per-bin map, no per-bin
	// allocation. (The batch generator counts on an epoch-marked
	// dense table instead; see Generator.)
	bufp := distinctScratch.Get().(*[]int)
	buf := append((*bufp)[:0], idx...)
	sort.Ints(buf)
	n := 1
	for i := 1; i < len(buf); i++ {
		if buf[i] != buf[i-1] {
			n++
		}
	}
	*bufp = buf
	distinctScratch.Put(bufp)
	return n
}

// BinCounts returns the six feature values for (user, bin). It is
// deterministic: calling it any number of times, in any order, gives
// the same values, and they agree exactly with what the packet
// pipeline extracts from EmitBin's output.
func (u *User) BinCounts(bin int) features.Counts {
	return u.sample(bin).counts
}

// Series materializes the full per-bin feature matrix for the user:
// one row per bin in canonical feature order. This is the fast path
// used by the large-scale experiments and the fleet harness: it runs
// on a week-batched Generator, so per-week state, sampling scratch
// and the Zipf rank table are computed once instead of per bin.
func (u *User) Series() *features.Matrix {
	return u.SeriesInto(make([][features.NumFeatures]float64, u.Bins()))
}

// SeriesInto is Series writing into caller-provided row storage (len
// Bins()) — the arena path: bulk materialization carves all users'
// rows from one slab (or a reused shard buffer) instead of one
// allocation per user. The returned matrix adopts rows.
func (u *User) SeriesInto(rows [][features.NumFeatures]float64) *features.Matrix {
	u.FillSeries(rows)
	return &features.Matrix{BinWidth: u.cfg.BinWidth, StartMicros: u.cfg.StartMicros, Rows: rows}
}

// FillSeries fills rows (len Bins()) with the user's full series via
// the week-batched generator, without wrapping them in a Matrix.
func (u *User) FillSeries(rows [][features.NumFeatures]float64) {
	if len(rows) != u.Bins() {
		panic(fmt.Sprintf("trace: FillSeries rows %d != bins %d", len(rows), u.Bins()))
	}
	g := u.AcquireGenerator()
	defer g.Release()
	for w := 0; w < u.cfg.Weeks; w++ {
		lo, hi := u.WeekSlice(w)
		g.GenerateWeek(w, rows[lo:hi])
	}
}

// WeekSlice returns the half-open bin range [lo, hi) of the given
// 0-based week.
func (u *User) WeekSlice(week int) (lo, hi int) {
	bw := u.cfg.BinsPerWeek()
	return week * bw, (week + 1) * bw
}
