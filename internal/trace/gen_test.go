package trace

import (
	"reflect"
	"testing"
	"time"

	"repro/internal/features"
	"repro/internal/netsim"
)

// refSeries is the retained per-bin reference path: one independent
// sample() per bin, exactly what Series did before the batch engine.
func refSeries(u *User) *features.Matrix {
	return features.FromCounts(u.cfg.BinWidth, u.cfg.StartMicros, u.Bins(), u.BinCounts)
}

// TestGenerateWeekMatchesReference is the batch engine's equivalence
// guard: across seeds and bin widths, GenerateWeek must reproduce the
// per-bin reference sampler bit for bit (same RNG streams, same
// arithmetic, cached week state notwithstanding).
func TestGenerateWeekMatchesReference(t *testing.T) {
	cfgs := []Config{
		{Users: 6, Weeks: 2, Seed: 7},
		{Users: 4, Weeks: 3, Seed: 53}, // seed 53 grows a heavy user at 1 user; keep variety
		{Users: 3, Weeks: 2, Seed: 11, BinWidth: 5 * time.Minute},
		{Users: 2, Weeks: 1, Seed: 2, BinWidth: time.Hour, WeeklyTrend: 1.0},
	}
	if !testing.Short() {
		// The paper-scale heavy tail: single users whose pools and
		// per-bin connection counts are orders of magnitude above the
		// body (seed 87 is the heaviest of the first hundred).
		cfgs = append(cfgs,
			Config{Users: 1, Weeks: 1, Seed: 87},
			Config{Users: 1, Weeks: 2, Seed: 53},
		)
	}
	for _, cfg := range cfgs {
		p := MustPopulation(cfg)
		for _, u := range p.Users {
			want := refSeries(u)
			got := u.Series()
			if !reflect.DeepEqual(got, want) {
				for b := range want.Rows {
					if got.Rows[b] != want.Rows[b] {
						t.Fatalf("seed %d user %d bin %d: batch %v != reference %v",
							cfg.Seed, u.ID, b, got.Rows[b], want.Rows[b])
					}
				}
				t.Fatalf("seed %d user %d: matrices diverge outside rows", cfg.Seed, u.ID)
			}
		}
	}
}

// TestGeneratorRandomAccessMatchesReference drives a single Generator
// across out-of-order bins spanning week boundaries: the cached week
// state must be recomputed transparently and every bin must still
// match the reference.
func TestGeneratorRandomAccessMatchesReference(t *testing.T) {
	p := MustPopulation(Config{Users: 2, Weeks: 3, Seed: 19})
	u := p.Users[1]
	g := u.NewGenerator()
	bins := []int{0, 700, 3, 1400, 671, 672, 2015, 1, 1343, 672, 0}
	for _, b := range bins {
		if got, want := g.BinCounts(b), u.BinCounts(b); got != want {
			t.Fatalf("bin %d: generator %+v != reference %+v", b, got, want)
		}
	}
}

// TestGeneratorEmitBinMatchesReference pins the batch packet path to
// the reference: same records, same order, bin by bin.
func TestGeneratorEmitBinMatchesReference(t *testing.T) {
	p := MustPopulation(Config{Users: 2, Weeks: 1, Seed: 13})
	for _, u := range p.Users {
		g := u.NewGenerator()
		for bin := 0; bin < 100; bin++ {
			var want, got []netsim.Record
			nw := u.EmitBin(bin, func(r netsim.Record) { want = append(want, r) })
			ng := g.EmitBin(bin, func(r netsim.Record) { got = append(got, r) })
			if nw != ng || !reflect.DeepEqual(got, want) {
				t.Fatalf("user %d bin %d: batch emit diverges from reference (%d vs %d records)",
					u.ID, bin, ng, nw)
			}
		}
	}
}

// TestGenerateWeekValidation covers the batch API's panics.
func TestGenerateWeekValidation(t *testing.T) {
	p := MustPopulation(Config{Users: 1, Weeks: 1, Seed: 1})
	g := p.Users[0].NewGenerator()
	for name, fn := range map[string]func(){
		"short-rows": func() { g.GenerateWeek(0, make([][features.NumFeatures]float64, 10)) },
		"bad-week":   func() { g.GenerateWeek(1, make([][features.NumFeatures]float64, 672)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", name)
				}
			}()
			fn()
		}()
	}
}

// BenchmarkGenerateWeek measures the batch engine's unit of work: one
// user-week of all six features into preallocated rows, generator
// construction amortized.
func BenchmarkGenerateWeek(b *testing.B) {
	p := MustPopulation(Config{Users: 1, Weeks: 1, Seed: 1})
	u := p.Users[0]
	g := u.NewGenerator()
	rows := make([][features.NumFeatures]float64, p.Cfg.BinsPerWeek())
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g.GenerateWeek(0, rows)
	}
}

// BenchmarkGeneratorBinCounts is the batch counterpart of
// BenchmarkBinCounts (the reference per-bin path).
func BenchmarkGeneratorBinCounts(b *testing.B) {
	p := MustPopulation(Config{Users: 1, Weeks: 1, Seed: 1})
	u := p.Users[0]
	g := u.NewGenerator()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = g.BinCounts(i % u.Bins())
	}
}

// TestAcquireGeneratorMatchesNewGenerator pins the pooled generator
// path (what FillSeries and WriteTrace actually run) to the plain
// constructor: across acquire/release cycles spanning users with
// different pool sizes — so each acquisition inherits another user's
// dirty seen marks and scratch tables — GenerateWeek and EmitBin must
// be bit-identical to a fresh Generator.
func TestAcquireGeneratorMatchesNewGenerator(t *testing.T) {
	p := MustPopulation(Config{Users: 5, Weeks: 2, Seed: 29})
	rows := make([][features.NumFeatures]float64, p.Cfg.BinsPerWeek())
	want := make([][features.NumFeatures]float64, p.Cfg.BinsPerWeek())
	for round := 0; round < 3; round++ {
		for _, u := range p.Users {
			fresh := u.NewGenerator()
			g := u.AcquireGenerator()
			for week := 0; week < p.Cfg.Weeks; week++ {
				fresh.GenerateWeek(week, want)
				g.GenerateWeek(week, rows)
				if !reflect.DeepEqual(rows, want) {
					t.Fatalf("round %d user %d week %d: pooled GenerateWeek diverges", round, u.ID, week)
				}
			}
			for _, bin := range []int{0, 1, 7, u.Bins() - 1} {
				var wantRecs, gotRecs []netsim.Record
				nw := fresh.EmitBin(bin, func(r netsim.Record) { wantRecs = append(wantRecs, r) })
				ng := g.EmitBin(bin, func(r netsim.Record) { gotRecs = append(gotRecs, r) })
				if nw != ng || !reflect.DeepEqual(gotRecs, wantRecs) {
					t.Fatalf("round %d user %d bin %d: pooled EmitBin diverges (%d vs %d records)",
						round, u.ID, bin, ng, nw)
				}
			}
			g.Release()
		}
	}
	// Release is nil-safe and safe on plain-constructed generators.
	var nilG *Generator
	nilG.Release()
	p.Users[0].NewGenerator().Release()
}

// BenchmarkAcquireGenerator measures one full pooled
// construct-generate-release cycle — the per-user unit of the
// materialization sweep. Contrast with BenchmarkGenerateWeek, which
// amortizes construction away entirely: the gap between them is the
// setup cost pooling has to pay per user, and the allocs/op column
// shows it paying (near) zero once the pools warm.
func BenchmarkAcquireGenerator(b *testing.B) {
	p := MustPopulation(Config{Users: 1, Weeks: 1, Seed: 1})
	u := p.Users[0]
	rows := make([][features.NumFeatures]float64, p.Cfg.BinsPerWeek())
	u.AcquireGenerator().Release()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		g := u.AcquireGenerator()
		g.GenerateWeek(0, rows)
		g.Release()
	}
}
