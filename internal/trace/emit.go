package trace

import (
	"fmt"
	"io"
	"sort"

	"repro/internal/features"
	"repro/internal/netsim"
	"repro/internal/xrand"
)

// Well-known infrastructure addresses in the synthetic enterprise.
var (
	// DNSServerAddr is the enterprise resolver every host queries.
	DNSServerAddr = netsim.AddrFrom4(10, 0, 0, 2)
)

// destAddr maps a destination-pool index to a stable public IP,
// unique within a user's pool and disjoint from enterprise space.
func (u *User) destAddr(idx int) netsim.Addr {
	return netsim.AddrFromUint32(0x5D000000 | uint32(u.ID%64)<<18 | uint32(idx))
}

// emitSeed returns the seed of the timing/port stream of (user,
// bin): a separate stream from the count-determining draws, so the
// packet realization cannot perturb the counts.
func (u *User) emitSeed(bin int) uint64 {
	return u.cfg.Seed ^ uint64(u.ID+1)*0x9e3779b97f4a7c15 ^ uint64(bin+1)*0xa0761d6478bd642f
}

// EmitBin materializes the packet records realizing exactly the
// counts BinCounts reports for (user, bin), in non-decreasing time
// order, and passes each to emit. It returns the number of records
// produced. An offline bin produces none.
//
// The realization per connection:
//
//	TCP: SYN out (+retransmitted SYNs), SYN-ACK in, ACK out, one data
//	     packet each way, FIN out. HTTP connections use dst port 80,
//	     the rest 443 or a high port.
//	UDP: 1-3 datagrams out, one in.
//	DNS: query out to the enterprise resolver, response in.
func (u *User) EmitBin(bin int, emit func(netsim.Record)) int {
	s := u.sample(bin)
	c := s.counts
	if c.TCP == 0 && c.UDP == 0 && c.DNS == 0 {
		return 0
	}
	n, _ := u.emitSampled(xrand.New(u.emitSeed(bin)), bin, c, s.destIdx, s.synRetries, nil, emit)
	return n
}

// emitSampled realizes one sampled bin into packet records, appending
// to recs (a reusable scratch buffer), emitting each record in time
// order, and returning the record count plus the grown buffer. r must
// be seeded to the (user, bin) emit stream; destIdx and synRetries
// are the realization drawn by sample/sampleInto. Shared by
// User.EmitBin and Generator.EmitBin, which must produce identical
// records.
func (u *User) emitSampled(r *xrand.Source, bin int, c features.Counts, destIdx, synRetries []int, recs []netsim.Record, emit func(netsim.Record)) (int, []netsim.Record) {
	binStart := u.BinStartMicros(bin)
	width := u.cfg.BinWidth.Microseconds()
	add := func(rec netsim.Record) { recs = append(recs, rec) }

	port := func(seq int) uint16 { return uint16(10000 + seq%50000) }
	seq := 0

	// TCP connections (the first c.HTTP of them are HTTP).
	for i := 0; i < c.TCP; i++ {
		t0 := binStart + int64(r.Float64()*float64(width-5_000_000))
		dst := netsim.Endpoint{Addr: u.destAddr(destIdx[i])}
		switch {
		case i < c.HTTP:
			dst.Port = netsim.PortHTTP
		case r.Float64() < 0.6:
			dst.Port = netsim.PortHTTPS
		default:
			dst.Port = uint16(1024 + r.Intn(50000))
		}
		src := netsim.Endpoint{Addr: u.Addr, Port: port(seq)}
		seq++
		flow := func(t int64, flags netsim.TCPFlags, length uint16) netsim.Record {
			return netsim.Record{Time: t, Src: src, Dst: dst,
				Proto: netsim.ProtoTCP, Flags: flags, Length: length}
		}
		reply := func(t int64, flags netsim.TCPFlags, length uint16) netsim.Record {
			return netsim.Record{Time: t, Src: dst, Dst: src,
				Proto: netsim.ProtoTCP, Flags: flags, Length: length}
		}
		add(flow(t0, netsim.FlagSYN, 60))
		for k := 0; k < synRetries[i]; k++ {
			add(flow(t0+int64(k+1)*1_000_000, netsim.FlagSYN, 60))
		}
		est := t0 + int64(synRetries[i])*1_000_000
		add(reply(est+20_000, netsim.FlagSYN|netsim.FlagACK, 60))
		add(flow(est+40_000, netsim.FlagACK, 52))
		add(flow(est+60_000, netsim.FlagACK|netsim.FlagPSH, uint16(200+r.Intn(1200))))
		add(reply(est+90_000, netsim.FlagACK|netsim.FlagPSH, uint16(200+r.Intn(1200))))
		add(flow(est+120_000+int64(r.Intn(2_000_000)), netsim.FlagFIN|netsim.FlagACK, 52))
	}

	// UDP connections.
	for i := 0; i < c.UDP; i++ {
		t0 := binStart + int64(r.Float64()*float64(width-2_000_000))
		dst := netsim.Endpoint{
			Addr: u.destAddr(destIdx[c.TCP+i]),
			Port: uint16(1024 + r.Intn(60000)),
		}
		if dst.Port == netsim.PortDNS {
			dst.Port++ // keep non-DNS UDP off port 53
		}
		src := netsim.Endpoint{Addr: u.Addr, Port: port(seq)}
		seq++
		n := 1 + r.Intn(3)
		for k := 0; k < n; k++ {
			add(netsim.Record{Time: t0 + int64(k)*50_000, Src: src, Dst: dst,
				Proto: netsim.ProtoUDP, Length: uint16(80 + r.Intn(400))})
		}
		add(netsim.Record{Time: t0 + 70_000, Src: dst, Dst: src,
			Proto: netsim.ProtoUDP, Length: uint16(80 + r.Intn(400))})
	}

	// DNS queries to the enterprise resolver.
	dnsDst := netsim.Endpoint{Addr: DNSServerAddr, Port: netsim.PortDNS}
	for i := 0; i < c.DNS; i++ {
		t0 := binStart + int64(r.Float64()*float64(width-1_000_000))
		src := netsim.Endpoint{Addr: u.Addr, Port: port(seq)}
		seq++
		add(netsim.Record{Time: t0, Src: src, Dst: dnsDst,
			Proto: netsim.ProtoUDP, Length: uint16(60 + r.Intn(60))})
		add(netsim.Record{Time: t0 + 15_000, Src: dnsDst, Dst: src,
			Proto: netsim.ProtoUDP, Length: uint16(90 + r.Intn(300))})
	}

	sort.Slice(recs, func(i, j int) bool { return recs[i].Time < recs[j].Time })
	for _, rec := range recs {
		emit(rec)
	}
	return len(recs), recs
}

// WriteTrace streams the user's packets for bins [fromBin, toBin)
// into w as an .etr trace. It returns the number of records written.
func (u *User) WriteTrace(w io.Writer, fromBin, toBin int) (int64, error) {
	if fromBin < 0 || toBin > u.Bins() || fromBin > toBin {
		return 0, fmt.Errorf("trace: bin range [%d, %d) outside [0, %d)", fromBin, toBin, u.Bins())
	}
	tw, err := netsim.NewTraceWriter(w, uint32(u.ID))
	if err != nil {
		return 0, err
	}
	// One batch generator serves every bin: the week state, Zipf rank
	// table and record scratch amortize across the whole trace.
	g := u.AcquireGenerator()
	defer g.Release()
	var writeErr error
	for b := fromBin; b < toBin && writeErr == nil; b++ {
		g.EmitBin(b, func(rec netsim.Record) {
			if writeErr == nil {
				writeErr = tw.Write(rec)
			}
		})
	}
	if writeErr != nil {
		return tw.Count(), writeErr
	}
	if err := tw.Flush(); err != nil {
		return tw.Count(), err
	}
	return tw.Count(), nil
}
