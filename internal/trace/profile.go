// Package trace synthesizes the enterprise end-host packet traces the
// paper collected from 350 real users (5 weeks, Q1 2007). The real
// traces are proprietary, so this package is the substitution layer
// documented in DESIGN.md §2: a population model whose *cross-user
// tail diversity* matches the properties the paper measures.
//
// The model, per user and per 15-minute (or 5-minute) bin:
//
//   - A user "size" factor z_u drawn from a continuous right-skewed
//     distribution (normal body + exponential upper tail). This
//     produces the multi-decade spread with the top 10-15% of users
//     clearly heavier than the rest (Fig 1) while keeping the
//     population a continuum with no natural cluster boundaries,
//     matching the paper's failed k-means experiment (§5).
//   - Per-feature log-rates coupled to z_u with feature-specific
//     noise, so TCP-heavy users are not automatically UDP-heavy
//     (Fig 2's off-diagonal users). DNS couples weakly, compressing
//     its spread to ~2 decades as in Fig 1(d).
//   - A diurnal/weekly activity cycle with offline (laptop suspended)
//     bins and multiplicative lognormal per-bin noise.
//   - Habitual high-activity episode sessions (persistent weekly
//     slots, persistent per-user intensity style with small weekly
//     jitter) that create each user's own upper tail.
//   - Week-scale rate drift whose volatility grows with user size,
//     plus a mild population-wide weekly trend (Config.WeeklyTrend).
//     Together these reproduce the paper's observations that
//     thresholds learned in week n do not yield the nominal 1%
//     false-positive rate in week n+1, and that the monoculture
//     (homogeneous) policy delivers roughly twice the console
//     false-alarm volume of the diversity policies (Table 3).
//
// Every quantity is derived deterministically from (seed, user, bin),
// so the same Config regenerates the same enterprise bit-for-bit, and
// the packet-level materialization (EmitBin) realizes exactly the
// counts the fast path (BinCounts) reports — the pipeline integration
// tests rely on this.
package trace

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"time"

	"repro/internal/netsim"
	"repro/internal/xrand"
)

// DefaultStartMicros is Monday 2007-01-08 00:00:00 UTC, aligning the
// synthetic collection with the paper's Q1 2007 window and starting
// on a week boundary so week arithmetic is trivial.
const DefaultStartMicros = 1168214400000000

// Config parameterizes an enterprise population.
type Config struct {
	// Users is the number of end hosts (the paper has 350).
	Users int
	// Weeks is the number of full weeks of data (the paper has 5).
	Weeks int
	// BinWidth is the feature aggregation window; the paper uses 5
	// and 15 minutes and reports the 15-minute results.
	BinWidth time.Duration
	// Seed makes the whole population reproducible.
	Seed uint64
	// StartMicros is the capture start in Unix microseconds; it
	// should fall on a Monday midnight UTC. Zero means
	// DefaultStartMicros.
	StartMicros int64
	// HeavyFraction is the fraction of heavy users (default 0.15).
	HeavyFraction float64
	// WeeklyTrend is the population-wide multiplicative rate change
	// per week (default 0.92). The paper's out-of-sample false-alarm
	// volumes (Table 3) sit well below the nominal 1% for every
	// policy, which is only possible if the population's traffic was
	// not week-stationary during the capture; a mild decline
	// reproduces both the deflation and its asymmetry between
	// per-user and global thresholds. Set to 1.0 for a stationary
	// population.
	WeeklyTrend float64
}

func (c Config) withDefaults() (Config, error) {
	if c.Users <= 0 {
		return c, fmt.Errorf("trace: Config.Users must be positive, got %d", c.Users)
	}
	if c.Weeks <= 0 {
		return c, fmt.Errorf("trace: Config.Weeks must be positive, got %d", c.Weeks)
	}
	if c.BinWidth == 0 {
		c.BinWidth = 15 * time.Minute
	}
	if c.BinWidth < time.Minute || c.BinWidth > 24*time.Hour {
		return c, fmt.Errorf("trace: Config.BinWidth %v outside [1m, 24h]", c.BinWidth)
	}
	// A day, not merely a week: downstream day views split each week
	// into 7 equal windows, and a width like 1120m divides a week
	// (9 bins) but not a day, which would silently truncate the
	// per-day geometry. Day divisibility implies week divisibility.
	if (24*time.Hour)%c.BinWidth != 0 {
		return c, fmt.Errorf("trace: Config.BinWidth %v does not divide a day", c.BinWidth)
	}
	if c.StartMicros == 0 {
		c.StartMicros = DefaultStartMicros
	}
	if c.HeavyFraction == 0 {
		c.HeavyFraction = 0.15
	}
	if c.HeavyFraction < 0 || c.HeavyFraction > 1 {
		return c, fmt.Errorf("trace: Config.HeavyFraction %g outside [0, 1]", c.HeavyFraction)
	}
	if c.WeeklyTrend == 0 {
		c.WeeklyTrend = 0.80
	}
	if c.WeeklyTrend < 0.5 || c.WeeklyTrend > 1.5 {
		return c, fmt.Errorf("trace: Config.WeeklyTrend %g outside [0.5, 1.5]", c.WeeklyTrend)
	}
	return c, nil
}

// Normalized returns the config with every default applied — the
// exact parameter set generation runs under. The snapshot store keys
// workspaces by the normalized config, so a partially specified
// Config addresses the same snapshot as its fully defaulted form.
func (c Config) Normalized() (Config, error) { return c.withDefaults() }

// BinsPerWeek returns the number of aggregation windows in one week.
func (c Config) BinsPerWeek() int {
	return int((7 * 24 * time.Hour) / c.BinWidth)
}

// TotalBins returns the number of windows across the whole capture.
func (c Config) TotalBins() int { return c.BinsPerWeek() * c.Weeks }

// User is one synthetic end host. Its exported fields describe the
// latent profile; the sampling methods in sample.go and emit.go
// produce its observable traffic.
type User struct {
	// ID is the 0-based user index (Table 2 reports these).
	ID int
	// Addr is the host's enterprise address.
	Addr netsim.Addr
	// Heavy records whether the user came from the heavy mixture
	// component (useful for test assertions; policies never see it).
	Heavy bool
	// Size is the latent size factor z_u.
	Size float64

	cfg Config

	// Per-feature mean rates per fully active bin.
	tcpRate, udpRate, dnsRate float64
	// httpFrac is the fraction of TCP connections that go to port 80.
	httpFrac float64
	// synRetryP is the per-connection probability of each additional
	// SYN retransmission (geometric).
	synRetryP float64
	// Destination pool: conceptually poolSize distinct remote hosts
	// with Zipf(zipfS) popularity.
	poolSize int
	zipfS    float64
	// episodeRate is the mean number of high-activity episode
	// sessions per week.
	episodeRate float64
	// episodeBase is the user's persistent episode intensity style:
	// the median level multiplier of their sessions.
	episodeBase float64
	// episodeSlots are the user's habitual session times (bin offsets
	// within a week) and durations; weekly episodes recur at these
	// slots with jitter. Habit persistence is what keeps per-user
	// tails comparable across weeks.
	episodeSlots []episodeSlot
	// noiseSigma is the lognormal per-bin modulation.
	noiseSigma float64
}

// Population is the full synthetic enterprise.
type Population struct {
	Cfg   Config
	Users []*User
}

// NewPopulation generates a deterministic population from cfg.
func NewPopulation(cfg Config) (*Population, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	pop := &Population{Cfg: cfg, Users: make([]*User, cfg.Users)}
	root := xrand.New(cfg.Seed)
	for i := range pop.Users {
		pop.Users[i] = newUser(i, cfg, root.Fork())
	}
	return pop, nil
}

// MustPopulation is NewPopulation that panics on error; for tests.
func MustPopulation(cfg Config) *Population {
	p, err := NewPopulation(cfg)
	if err != nil {
		panic(err)
	}
	return p
}

func newUser(id int, cfg Config, r *xrand.Source) *User {
	u := &User{
		ID:   id,
		Addr: netsim.AddrFrom4(10, byte(1+id/250), byte(id%250+1), 10),
		cfg:  cfg,
	}
	// Latent size: continuous right-skewed distribution (normal body
	// plus exponential upper tail). The paper found users "sweep
	// through the entire range of values" with no natural cluster
	// boundaries, so the population must be a continuum, not a
	// mixture; the top HeavyFraction are flagged Heavy.
	u.Size = r.Normal(0, 0.45) + r.Exponential(0.80)
	u.Heavy = u.Size > sizeCutoff(cfg.HeavyFraction)
	// Per-feature log-rates. The coupling coefficients are the knobs
	// that reproduce Fig 1's spreads; see package comment.
	u.tcpRate = math.Exp(2.2 + 1.35*u.Size + 0.50*r.NormFloat64())
	u.udpRate = math.Exp(1.9 + 1.15*u.Size + 1.05*r.NormFloat64())
	u.dnsRate = math.Exp(2.6 + 0.62*u.Size + 0.38*r.NormFloat64())
	u.httpFrac = sigmoid(0.2 + 0.8*r.NormFloat64())
	u.synRetryP = 0.02 + 0.06*r.Float64()
	pool := 30 + int(12*(u.tcpRate+u.udpRate))
	if pool > 30000 {
		pool = 30000
	}
	u.poolSize = pool
	u.zipfS = 1.05 + 0.25*r.Float64()
	u.episodeRate = 3.0 + 2.5*r.Float64()
	u.episodeBase = math.Exp(1.8 + 0.6*r.NormFloat64())
	nSlots := 8
	u.episodeSlots = make([]episodeSlot, nSlots)
	for i := range u.episodeSlots {
		u.episodeSlots[i] = episodeSlot{
			start: r.Intn(cfg.BinsPerWeek()),
			dur:   6 + r.Intn(6),
		}
	}
	u.noiseSigma = 0.25 + 0.15*r.Float64()

	// Rates are per fully-active 15-minute bin; rescale for other
	// bin widths so total volume is invariant.
	scale := cfg.BinWidth.Minutes() / 15
	u.tcpRate *= scale
	u.udpRate *= scale
	u.dnsRate *= scale
	return u
}

func sigmoid(x float64) float64 { return 1 / (1 + math.Exp(-x)) }

// sizeCutoff returns the size value above which approximately frac of
// users fall, estimated once by Monte Carlo from a fixed stream (so
// it is a population-independent constant per frac).
func sizeCutoff(frac float64) float64 {
	cutoffOnce.Do(func() {
		r := xrand.New(0x5e1ec7)
		cutoffSamples = make([]float64, 20000)
		for i := range cutoffSamples {
			cutoffSamples[i] = r.Normal(0, 0.45) + r.Exponential(0.80)
		}
		sort.Float64s(cutoffSamples)
	})
	idx := int(float64(len(cutoffSamples)) * (1 - frac))
	if idx < 0 {
		idx = 0
	}
	if idx >= len(cutoffSamples) {
		idx = len(cutoffSamples) - 1
	}
	return cutoffSamples[idx]
}

var (
	cutoffOnce    sync.Once
	cutoffSamples []float64
)

// Rates returns the user's latent mean per-bin connection rates
// (TCP, UDP, DNS) for a fully active bin; exposed for tests and for
// the documentation tooling.
func (u *User) Rates() (tcp, udp, dns float64) {
	return u.tcpRate, u.udpRate, u.dnsRate
}

// CostWeights returns one non-negative weight per user proportional
// to the user's expected generation cost — the sum of the latent
// per-bin connection rates, which is what drives both the sampler's
// draw count and the emitter's record count. Range cutters
// (snapshot.CutRanges) use it to hand heavy-tail users out evenly:
// equal user counts skew worker wall-clock by the tail, equal expected
// cost does not.
func (p *Population) CostWeights() []float64 {
	out := make([]float64, len(p.Users))
	for i, u := range p.Users {
		out[i] = u.tcpRate + u.udpRate + u.dnsRate
	}
	return out
}

// Bins returns the total number of bins in this user's capture.
func (u *User) Bins() int { return u.cfg.TotalBins() }

// BinStartMicros returns the Unix-microsecond start time of bin.
func (u *User) BinStartMicros(bin int) int64 {
	return u.cfg.StartMicros + int64(bin)*u.cfg.BinWidth.Microseconds()
}

// Week returns the 0-based week index containing bin.
func (u *User) Week(bin int) int { return bin / u.cfg.BinsPerWeek() }
