package trace

import (
	"fmt"
	"math"
	"sync"

	"repro/internal/features"
	"repro/internal/netsim"
	"repro/internal/pool"
	"repro/internal/xrand"
)

// Generator is the week-batched, zero-realloc sampling engine for one
// user. It produces exactly the traffic the per-bin reference path
// (User.BinCounts / User.sample) defines — the randomized equivalence
// tests pin the two bit-for-bit — but amortizes everything that the
// reference re-derives per bin:
//
//   - the (user, week) state — episode schedule, drift multipliers,
//     trend factor — is computed once per week instead of inside
//     every sample call (the reference allocates a fresh RNG and
//     episode slice per bin for each);
//   - the bin RNG is an embedded value reseeded in place, not a
//     fresh allocation;
//   - the SYN-retry and destination scratch slices are reused across
//     bins;
//   - destination draws go through a cached xrand.ZipfRanks rank
//     table built once per user (the reference rebuilds a Zipf
//     sampler every bin and pays two transcendentals per draw);
//   - distinct destinations are counted on an epoch-marked dense
//     table over the user's destination pool instead of a per-bin
//     map or quadratic scan.
//
// A Generator is NOT safe for concurrent use; create one per
// goroutine (they are cheap relative to a week of sampling). The
// zero value is not usable; construct with User.NewGenerator.
type Generator struct {
	u   *User
	src xrand.Source

	zipf *xrand.ZipfRanks
	// Integer thresholds deciding identically to the reference's
	// float compares (xrand.Threshold53), precomputed per user.
	synRetryT uint64

	// Cached per-(user, week) state.
	week             int // -1 when nothing is cached
	eps              []episode
	dTCP, dUDP, dDNS float64
	trend            float64

	// Reusable per-bin scratch.
	synRetries []int
	destIdx    []int

	// Epoch-marked distinct-destination counter: seen[d] == epoch
	// means destination d was already contacted in the current bin.
	// uint16 halves the table's cache footprint under the draw loop;
	// the wrap every 65535 bins costs one clear.
	seen  []uint16
	epoch uint16

	// EmitBin record scratch.
	recs []netsim.Record
}

// NewGenerator returns a batch sampling engine for the user. The
// construction cost is dominated by the Zipf rank table (linear in
// the user's destination-pool size), which one week of sampling
// amortizes many times over; transient single-bin reads should use
// User.BinCounts instead.
func (u *User) NewGenerator() *Generator {
	return &Generator{
		u:         u,
		zipf:      xrand.NewZipfRanks(u.poolSize, u.zipfS),
		synRetryT: xrand.Threshold53(u.synRetryP),
		week:      -1,
		seen:      make([]uint16, u.poolSize),
	}
}

// Construction-table pools: population sweeps build one Generator per
// user, and the construction allocations (the Generator itself, the
// Zipf rank/cell tables, the distinct-destination mark table) were
// the surviving alloc tail after the slab arenas. Generators cycle
// through a plain sync.Pool — their grown scratch slices ride along —
// and the mark table through a size-bucketed pool.
var (
	genPool  sync.Pool
	seenPool pool.Slices[uint16]
)

// AcquireGenerator is NewGenerator drawing the engine and its
// construction tables from process-wide pools: same output stream,
// near-zero steady-state allocations. Pair with Release; an
// unreleased engine is merely garbage, never corrupt.
func (u *User) AcquireGenerator() *Generator {
	g, _ := genPool.Get().(*Generator)
	if g == nil {
		g = new(Generator)
	}
	g.u = u
	g.zipf = xrand.NewZipfRanksPooled(u.poolSize, u.zipfS)
	g.synRetryT = xrand.Threshold53(u.synRetryP)
	g.week = -1
	g.seen = seenPool.Get(u.poolSize)
	// The mark table must start all-below-epoch: pooled storage is
	// dirty and could hold marks equal to a fresh epoch.
	clear(g.seen)
	g.epoch = 0
	return g
}

// Release returns a pooled engine's tables to the construction pools.
// The generator must not be used afterwards. Safe on engines from
// either constructor and on nil.
func (g *Generator) Release() {
	if g == nil {
		return
	}
	if g.zipf != nil {
		g.zipf.Release()
		g.zipf = nil
	}
	seenPool.Put(g.seen)
	g.seen = nil
	g.u = nil
	genPool.Put(g)
}

// state returns the cached (user, week) state, computing it on week
// change. The draws come from the same per-(user, week) salted
// streams the reference path uses, so the cached values are
// identical to what every sample call re-derives.
func (g *Generator) state(week int) {
	if g.week == week {
		return
	}
	u := g.u
	g.src.Reseed(u.weekSeed(week, 0x9e11))
	g.eps = u.appendEpisodes(&g.src, g.eps[:0])
	g.src.Reseed(u.weekSeed(week, 0xabcd))
	g.dTCP, g.dUDP, g.dDNS = u.driftFrom(&g.src)
	g.trend = math.Pow(u.cfg.WeeklyTrend, float64(week))
	g.week = week
}

// BinCounts returns the six feature values of (user, bin), identical
// to User.BinCounts. Bins may be visited in any order; consecutive
// bins of one week reuse the cached week state.
func (g *Generator) BinCounts(bin int) features.Counts {
	return g.sampleInto(bin, false)
}

// sampleInto draws the bin's realization. With realize it also fills
// the generator's scratch — destIdx (one destination-pool index per
// TCP+UDP connection, TCP first) and synRetries (extra SYN
// retransmissions per TCP connection) — which EmitBin materializes
// into packets. Without realize only the counts are produced: the
// per-connection draws still happen (the RNG stream is shared state)
// but nothing is stored, which keeps the heaviest users' per-bin
// scratch traffic — hundreds of kilobytes of writes that would evict
// the Zipf table and distinct counter between draws — off the counts
// path entirely. The arithmetic and RNG consumption mirror
// User.sample statement for statement — keep the two in sync (the
// equivalence tests enforce it).
func (g *Generator) sampleInto(bin int, realize bool) features.Counts {
	u := g.u
	week := u.Week(bin)
	g.state(week)
	r := &g.src
	r.Reseed(u.binSeed(bin))
	var c features.Counts
	level := episodeLevelAt(g.eps, bin-week*u.cfg.BinsPerWeek())
	// An episode keeps the laptop online (a running download or p2p
	// session); otherwise the offline draw may suspend the bin.
	// Activity is deterministic, so hoisting it above the draw leaves
	// the stream untouched (offlineProb derives from it either way).
	act := u.Activity(bin)
	offline := r.Float64() < offlineProbFor(act)
	if offline && level <= 1 {
		return c // laptop suspended: all-zero bin
	}
	if level > 1 && act < 0.45 {
		act = 0.45 // an episode implies the user is around
	}
	// Per-bin multiplicative noise, shared across features (a busy
	// bin is busy for every feature).
	noise := math.Exp(r.Normal(0, u.noiseSigma))
	// Rare single-bin "flash" events; see User.sample.
	if r.Float64() < 0.004 {
		flash := 4 * r.Pareto(1, 1.25)
		if flash > 250 {
			flash = 250
		}
		noise *= flash
	}
	mTCP := u.tcpRate * act * noise * g.dTCP * level * g.trend
	mUDP := u.udpRate * act * noise * g.dUDP * level * g.trend
	mDNS := u.dnsRate * act * noise * g.dDNS * math.Pow(level, 0.3) * g.trend

	c.TCP = r.Poisson(mTCP)
	c.UDP = r.Poisson(mUDP)
	c.DNS = r.Poisson(mDNS)
	c.HTTP = r.Binomial(c.TCP, u.httpFrac)

	// SYN retransmissions.
	c.TCPSYN = c.TCP
	if c.TCP > 0 {
		if realize {
			rt := g.retryScratch(c.TCP)
			for i := range rt {
				for r.Uint64()>>11 < g.synRetryT {
					rt[i]++
				}
				c.TCPSYN += rt[i]
			}
		} else {
			for i := 0; i < c.TCP; i++ {
				for r.Uint64()>>11 < g.synRetryT {
					c.TCPSYN++
				}
			}
		}
	}

	// Destination draws for TCP then UDP connections; DNS goes to
	// the enterprise resolver and contributes at most one distinct
	// destination.
	nDest := c.TCP + c.UDP
	if nDest > 0 {
		g.epoch++
		if g.epoch == 0 { // epoch wrapped: invalidate all marks
			clear(g.seen)
			g.epoch = 1
		}
		distinct := 0
		if realize {
			di := g.destScratch(nDest)
			for i := range di {
				d := g.zipf.Next(r) - 1
				di[i] = d
				if g.seen[d] != g.epoch {
					g.seen[d] = g.epoch
					distinct++
				}
			}
		} else {
			distinct = g.zipf.SampleDistinct(r, nDest, g.seen, g.epoch)
		}
		c.Distinct = distinct
	}
	if c.DNS > 0 {
		c.Distinct++
	}
	return c
}

// retryScratch returns a zeroed length-n retry buffer.
func (g *Generator) retryScratch(n int) []int {
	if cap(g.synRetries) < n {
		g.synRetries = make([]int, n+n/2)
	}
	rt := g.synRetries[:n]
	clear(rt)
	return rt
}

// destScratch returns a length-n destination buffer (fully
// overwritten by the caller).
func (g *Generator) destScratch(n int) []int {
	if cap(g.destIdx) < n {
		g.destIdx = make([]int, n+n/2)
	}
	return g.destIdx[:n]
}

// GenerateWeek fills one row per bin of the given week — rows must
// have exactly BinsPerWeek entries — with the six feature values in
// canonical order. This is the batch unit the enterprise
// materialization and the fleet harness are built on.
func (g *Generator) GenerateWeek(week int, rows [][features.NumFeatures]float64) {
	bpw := g.u.cfg.BinsPerWeek()
	if len(rows) != bpw {
		panic(fmt.Sprintf("trace: GenerateWeek rows %d != bins per week %d", len(rows), bpw))
	}
	if week < 0 || week >= g.u.cfg.Weeks {
		panic(fmt.Sprintf("trace: GenerateWeek week %d outside [0, %d)", week, g.u.cfg.Weeks))
	}
	base := week * bpw
	for i := range rows {
		rows[i] = g.sampleInto(base+i, false).AsVector()
	}
}

// EmitBin materializes the packet records of (user, bin), identical
// record for record to User.EmitBin, reusing the generator's scratch
// for the realization and the record buffer.
func (g *Generator) EmitBin(bin int, emit func(netsim.Record)) int {
	c := g.sampleInto(bin, true)
	if c.TCP == 0 && c.UDP == 0 && c.DNS == 0 {
		return 0
	}
	u := g.u
	// Timing and port draws come from a separate stream so they
	// cannot perturb the count-determining draws (same contract as
	// User.EmitBin).
	g.src.Reseed(u.emitSeed(bin))
	n, recs := u.emitSampled(&g.src, bin, c, g.destIdx[:c.TCP+c.UDP], g.synRetries[:c.TCP], g.recs[:0], emit)
	g.recs = recs
	return n
}
