package trace

import (
	"math"
	"testing"
	"time"

	"repro/internal/features"
	"repro/internal/stats"
)

func smallConfig() Config {
	return Config{Users: 40, Weeks: 2, Seed: 7}
}

func TestConfigValidation(t *testing.T) {
	bad := []Config{
		{Users: 0, Weeks: 1},
		{Users: 1, Weeks: 0},
		{Users: 1, Weeks: 1, BinWidth: time.Millisecond},
		{Users: 1, Weeks: 1, BinWidth: 11 * time.Minute}, // does not divide a week
		// Divides a week (9 bins) but not a day: the old
		// week-divisibility check accepted this, and downstream day
		// views truncated 9/7 to 1 bin per day, silently covering 7 of
		// the week's 9 bins.
		{Users: 1, Weeks: 1, BinWidth: 1120 * time.Minute},
		{Users: 1, Weeks: 1, HeavyFraction: 1.5},
	}
	for i, c := range bad {
		if _, err := NewPopulation(c); err == nil {
			t.Errorf("config %d accepted: %+v", i, c)
		}
	}
	if _, err := (Config{Users: 1, Weeks: 1, BinWidth: 1120 * time.Minute}).Normalized(); err == nil {
		t.Error("Normalized accepted a bin width that divides a week but not a day")
	}
}

func TestConfigDefaults(t *testing.T) {
	p := MustPopulation(Config{Users: 2, Weeks: 1})
	if p.Cfg.BinWidth != 15*time.Minute {
		t.Fatalf("default bin width %v", p.Cfg.BinWidth)
	}
	if p.Cfg.StartMicros != DefaultStartMicros {
		t.Fatalf("default start %d", p.Cfg.StartMicros)
	}
	if p.Cfg.BinsPerWeek() != 672 {
		t.Fatalf("BinsPerWeek = %d", p.Cfg.BinsPerWeek())
	}
	if p.Cfg.TotalBins() != 672 {
		t.Fatalf("TotalBins = %d", p.Cfg.TotalBins())
	}
}

func TestPopulationDeterminism(t *testing.T) {
	a := MustPopulation(smallConfig())
	b := MustPopulation(smallConfig())
	for i := range a.Users {
		ua, ub := a.Users[i], b.Users[i]
		if ua.Size != ub.Size || ua.Heavy != ub.Heavy || ua.Addr != ub.Addr {
			t.Fatalf("user %d profiles differ", i)
		}
		for _, bin := range []int{0, 100, 671, 1000} {
			if ua.BinCounts(bin) != ub.BinCounts(bin) {
				t.Fatalf("user %d bin %d counts differ", i, bin)
			}
		}
	}
}

func TestBinCountsIdempotentAndOrderFree(t *testing.T) {
	p := MustPopulation(smallConfig())
	u := p.Users[3]
	c100 := u.BinCounts(100)
	_ = u.BinCounts(50) // interleave another bin
	if again := u.BinCounts(100); again != c100 {
		t.Fatalf("BinCounts(100) changed across calls: %+v vs %+v", c100, again)
	}
}

func TestDifferentSeedsDifferentTraffic(t *testing.T) {
	a := MustPopulation(Config{Users: 5, Weeks: 1, Seed: 1})
	b := MustPopulation(Config{Users: 5, Weeks: 1, Seed: 2})
	same := 0
	for bin := 400; bin < 440; bin++ {
		if a.Users[0].BinCounts(bin) == b.Users[0].BinCounts(bin) {
			same++
		}
	}
	if same == 40 {
		t.Fatal("different seeds produced identical traffic")
	}
}

func TestCountsInvariants(t *testing.T) {
	p := MustPopulation(smallConfig())
	for _, u := range p.Users[:10] {
		for bin := 0; bin < 300; bin++ {
			c := u.BinCounts(bin)
			if c.HTTP > c.TCP {
				t.Fatalf("user %d bin %d: HTTP %d > TCP %d", u.ID, bin, c.HTTP, c.TCP)
			}
			if c.TCPSYN < c.TCP {
				t.Fatalf("user %d bin %d: TCPSYN %d < TCP %d", u.ID, bin, c.TCPSYN, c.TCP)
			}
			maxDistinct := c.TCP + c.UDP
			if c.DNS > 0 {
				maxDistinct++
			}
			if c.Distinct > maxDistinct || (c.TCP+c.UDP+c.DNS > 0 && c.Distinct == 0) {
				t.Fatalf("user %d bin %d: Distinct %d inconsistent with %+v", u.ID, bin, c.Distinct, c)
			}
			if c.DNS < 0 || c.TCP < 0 || c.UDP < 0 {
				t.Fatalf("negative counts: %+v", c)
			}
		}
	}
}

func TestActivityCycle(t *testing.T) {
	p := MustPopulation(smallConfig())
	u := p.Users[0]
	binsPerDay := p.Cfg.BinsPerWeek() / 7
	// Monday 11:00 should be full activity; Monday 03:00 near zero;
	// Saturday 12:00 low.
	monday11 := 11 * binsPerDay / 24
	monday3 := 3 * binsPerDay / 24
	sat12 := 5*binsPerDay + 12*binsPerDay/24
	if u.Activity(monday11) != 1.0 {
		t.Fatalf("Mon 11:00 activity = %g", u.Activity(monday11))
	}
	if u.Activity(monday3) > 0.1 {
		t.Fatalf("Mon 03:00 activity = %g", u.Activity(monday3))
	}
	if u.Activity(sat12) > 0.3 {
		t.Fatalf("Sat 12:00 activity = %g", u.Activity(sat12))
	}
	// Cycle repeats weekly.
	if u.Activity(monday11) != u.Activity(monday11+p.Cfg.BinsPerWeek()) {
		t.Fatal("activity not week-periodic")
	}
}

func TestWorkHoursBusierThanNights(t *testing.T) {
	p := MustPopulation(smallConfig())
	u := p.Users[1]
	binsPerDay := p.Cfg.BinsPerWeek() / 7
	var work, night float64
	for day := 0; day < 5; day++ {
		for h := 9; h < 18; h++ {
			c := u.BinCounts(day*binsPerDay + h*binsPerDay/24)
			work += float64(c.TCP)
		}
		for h := 0; h < 6; h++ {
			c := u.BinCounts(day*binsPerDay + h*binsPerDay/24)
			night += float64(c.TCP)
		}
	}
	if work <= night {
		t.Fatalf("work-hours TCP %g not above night TCP %g", work, night)
	}
}

// TestTailDiversitySpread is the generator's core calibration check:
// per-user 99th-percentile thresholds must span multiple orders of
// magnitude for TCP (Fig 1a) and a visibly narrower range for DNS
// (Fig 1d).
func TestTailDiversitySpread(t *testing.T) {
	if testing.Short() {
		t.Skip("population sweep")
	}
	p := MustPopulation(Config{Users: 120, Weeks: 1, Seed: 11})
	var tcpThr, dnsThr []float64
	for _, u := range p.Users {
		m := u.Series()
		tcp, err := m.Distribution(features.TCP, 0, m.Bins())
		if err != nil {
			t.Fatal(err)
		}
		dns, err := m.Distribution(features.DNS, 0, m.Bins())
		if err != nil {
			t.Fatal(err)
		}
		tcpThr = append(tcpThr, tcp.MustQuantile(0.99))
		dnsThr = append(dnsThr, dns.MustQuantile(0.99))
	}
	spread := func(v []float64) float64 {
		e := stats.MustEmpirical(v)
		lo, hi := e.MustQuantile(0.02), e.MustQuantile(0.98)
		if lo < 1 {
			lo = 1
		}
		return math.Log10(hi / lo)
	}
	if s := spread(tcpThr); s < 2.0 {
		t.Errorf("TCP threshold spread = %.2f decades, want >= 2.0 (Fig 1a)", s)
	}
	if s := spread(dnsThr); s > 2.0 {
		t.Errorf("DNS threshold spread = %.2f decades, want < 2.0 (Fig 1d)", s)
	}
	// The full range (what the paper's axes show) spans further.
	full := stats.MustEmpirical(tcpThr)
	if r := math.Log10(full.Max() / math.Max(full.Min(), 1)); r < 2.5 {
		t.Errorf("TCP full threshold range = %.2f decades, want >= 2.5 (Fig 1a)", r)
	}
}

func TestHeavyUsersDominateTail(t *testing.T) {
	p := MustPopulation(Config{Users: 100, Weeks: 1, Seed: 3})
	var heavyMean, bodyMean float64
	var nHeavy, nBody int
	for _, u := range p.Users {
		tcp, _, _ := u.Rates()
		if u.Heavy {
			heavyMean += tcp
			nHeavy++
		} else {
			bodyMean += tcp
			nBody++
		}
	}
	if nHeavy == 0 || nBody == 0 {
		t.Skip("degenerate mixture draw")
	}
	heavyMean /= float64(nHeavy)
	bodyMean /= float64(nBody)
	if heavyMean < 5*bodyMean {
		t.Fatalf("heavy mean rate %g not well above body mean %g", heavyMean, bodyMean)
	}
	frac := float64(nHeavy) / float64(nHeavy+nBody)
	if frac < 0.05 || frac > 0.30 {
		t.Fatalf("heavy fraction = %g, want ~0.15", frac)
	}
}

func TestWeekDriftChangesWeeks(t *testing.T) {
	p := MustPopulation(Config{Users: 3, Weeks: 2, Seed: 9})
	u := p.Users[0]
	d1a, _, _ := u.weekDrift(0)
	d1b, _, _ := u.weekDrift(0)
	d2, _, _ := u.weekDrift(1)
	if d1a != d1b {
		t.Fatal("weekDrift not deterministic")
	}
	if d1a == d2 {
		t.Fatal("weekDrift identical across weeks")
	}
}

func TestWeekSlice(t *testing.T) {
	p := MustPopulation(smallConfig())
	u := p.Users[0]
	lo, hi := u.WeekSlice(1)
	if lo != 672 || hi != 1344 {
		t.Fatalf("WeekSlice(1) = [%d, %d)", lo, hi)
	}
	if u.Bins() != 1344 {
		t.Fatalf("Bins = %d", u.Bins())
	}
}

func TestSeriesMatchesBinCounts(t *testing.T) {
	p := MustPopulation(Config{Users: 2, Weeks: 1, Seed: 13})
	u := p.Users[1]
	m := u.Series()
	if m.Bins() != u.Bins() {
		t.Fatalf("series bins %d != %d", m.Bins(), u.Bins())
	}
	for _, bin := range []int{0, 33, 200, 671} {
		if m.Rows[bin] != u.BinCounts(bin).AsVector() {
			t.Fatalf("series row %d mismatch", bin)
		}
	}
}

func TestBinStartMicros(t *testing.T) {
	p := MustPopulation(smallConfig())
	u := p.Users[0]
	if u.BinStartMicros(0) != DefaultStartMicros {
		t.Fatal("bin 0 start wrong")
	}
	if got := u.BinStartMicros(4) - u.BinStartMicros(3); got != (15 * time.Minute).Microseconds() {
		t.Fatalf("bin stride = %d", got)
	}
}

func TestCountDistinct(t *testing.T) {
	cases := []struct {
		in   []int
		want int
	}{
		{nil, 0},
		{[]int{5}, 1},
		{[]int{1, 1, 1}, 1},
		{[]int{1, 2, 3}, 3},
		{[]int{1, 2, 1, 3, 2}, 3},
	}
	for _, c := range cases {
		if got := countDistinct(c.in); got != c.want {
			t.Errorf("countDistinct(%v) = %d, want %d", c.in, got, c.want)
		}
	}
	// large input exercising the map path
	big := make([]int, 100)
	for i := range big {
		big[i] = i % 17
	}
	if got := countDistinct(big); got != 17 {
		t.Errorf("countDistinct(big) = %d, want 17", got)
	}
}

func BenchmarkBinCounts(b *testing.B) {
	p := MustPopulation(Config{Users: 1, Weeks: 1, Seed: 1})
	u := p.Users[0]
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = u.BinCounts(i % u.Bins())
	}
}

func BenchmarkSeriesOneUserWeek(b *testing.B) {
	p := MustPopulation(Config{Users: 1, Weeks: 1, Seed: 1})
	u := p.Users[0]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = u.Series()
	}
}
