package stats

// Confusion tallies binary-classification outcomes for a detector:
// positives are windows that contain attack traffic, and a "positive"
// prediction is a raised alarm.
type Confusion struct {
	TP, FP, TN, FN int
}

// Add merges another confusion matrix into c.
func (c *Confusion) Add(o Confusion) {
	c.TP += o.TP
	c.FP += o.FP
	c.TN += o.TN
	c.FN += o.FN
}

// Precision returns TP / (TP + FP), or 0 when no alarms were raised.
func (c Confusion) Precision() float64 {
	d := c.TP + c.FP
	if d == 0 {
		return 0
	}
	return float64(c.TP) / float64(d)
}

// Recall returns TP / (TP + FN) — the detection rate — or 0 when
// there were no attack windows.
func (c Confusion) Recall() float64 {
	d := c.TP + c.FN
	if d == 0 {
		return 0
	}
	return float64(c.TP) / float64(d)
}

// FalsePositiveRate returns FP / (FP + TN) — the paper's FP_i — or 0
// when there were no benign windows.
func (c Confusion) FalsePositiveRate() float64 {
	d := c.FP + c.TN
	if d == 0 {
		return 0
	}
	return float64(c.FP) / float64(d)
}

// FalseNegativeRate returns FN / (TP + FN) — the paper's FN_i, the
// missed-detection probability — or 0 when there were no attack
// windows.
func (c Confusion) FalseNegativeRate() float64 {
	d := c.TP + c.FN
	if d == 0 {
		return 0
	}
	return float64(c.FN) / float64(d)
}

// F1 returns the F-measure: the harmonic mean of precision and
// recall, the threshold-selection objective the paper lists alongside
// percentiles (§4).
func (c Confusion) F1() float64 {
	return HarmonicMean(c.Precision(), c.Recall())
}

// FBeta returns the F_beta measure, weighting recall beta times as
// much as precision. Beta must be positive; beta == 1 gives F1.
func (c Confusion) FBeta(beta float64) float64 {
	p, r := c.Precision(), c.Recall()
	if p <= 0 || r <= 0 || beta <= 0 {
		return 0
	}
	b2 := beta * beta
	return (1 + b2) * p * r / (b2*p + r)
}

// Total returns the number of classified windows.
func (c Confusion) Total() int { return c.TP + c.FP + c.TN + c.FN }

// Utility computes the paper's per-host utility
//
//	U_i = 1 − [w·FN_i + (1−w)·FP_i]
//
// for a false-negative rate fn, false-positive rate fp and weight w in
// [0, 1]. Higher is better; 1 is a perfect detector.
func Utility(fn, fp, w float64) float64 {
	return 1 - (w*fn + (1-w)*fp)
}

// UtilityOf computes the paper's utility directly from a confusion
// matrix.
func UtilityOf(c Confusion, w float64) float64 {
	return Utility(c.FalseNegativeRate(), c.FalsePositiveRate(), w)
}
