package stats

import (
	"math"
	"math/rand"
	"reflect"
	"sort"
	"testing"
)

// randColumns builds nCols sorted sample columns. Values mix small
// integers (count features repeat heavily) with continuous draws so
// both the run-length-compressed and the near-all-distinct regimes
// are exercised.
func randColumns(rng *rand.Rand, nCols int) [][]float64 {
	cols := make([][]float64, nCols)
	for i := range cols {
		n := 1 + rng.Intn(40)
		col := make([]float64, n)
		for j := range col {
			if rng.Intn(3) == 0 {
				col[j] = rng.Float64() * 50
			} else {
				col[j] = float64(rng.Intn(12))
			}
		}
		sort.Float64s(col)
		cols[i] = col
	}
	return cols
}

// mergedReference builds the whole-heap reference distribution the
// compressed fold must reproduce bit for bit.
func mergedReference(t *testing.T, cols [][]float64) *Empirical {
	t.Helper()
	dists := make([]*Empirical, len(cols))
	for i, c := range cols {
		dists[i] = MustEmpirical(c)
	}
	m, err := MergeEmpiricals(dists)
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func foldAll(t *testing.T, cols [][]float64) *Compressed {
	t.Helper()
	var c Compressed
	for _, col := range cols {
		if err := c.AddSorted(col); err != nil {
			t.Fatal(err)
		}
	}
	return &c
}

func TestCompressedQuantileBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	qs := []float64{0, 0.01, 0.25, 0.5, 0.75, 0.9, 0.99, 0.999, 1}
	for trial := 0; trial < 50; trial++ {
		cols := randColumns(rng, 1+rng.Intn(8))
		ref := mergedReference(t, cols)
		c := foldAll(t, cols)
		if c.N() != int64(ref.N()) {
			t.Fatalf("trial %d: N=%d want %d", trial, c.N(), ref.N())
		}
		for _, q := range qs {
			want, err := ref.Quantile(q)
			if err != nil {
				t.Fatal(err)
			}
			got, err := c.Quantile(q)
			if err != nil {
				t.Fatal(err)
			}
			if math.Float64bits(got) != math.Float64bits(want) {
				t.Fatalf("trial %d q=%g: %x != %x (%g vs %g)",
					trial, q, math.Float64bits(got), math.Float64bits(want), got, want)
			}
		}
	}
}

func TestCompressedFoldOrderInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(87))
	for trial := 0; trial < 30; trial++ {
		cols := randColumns(rng, 2+rng.Intn(7))
		seq := foldAll(t, cols)

		// Reversed fold order.
		rev := make([][]float64, len(cols))
		for i, c := range cols {
			rev[len(cols)-1-i] = c
		}
		back := foldAll(t, rev)
		if !reflect.DeepEqual(seq.uniq, back.uniq) || !reflect.DeepEqual(seq.cum, back.cum) {
			t.Fatalf("trial %d: reversed fold order diverges", trial)
		}

		// Two partial accumulators merged (the per-worker fold shape).
		cut := 1 + rng.Intn(len(cols)-1)
		left := foldAll(t, cols[:cut])
		right := foldAll(t, cols[cut:])
		left.Merge(right)
		if !reflect.DeepEqual(seq.uniq, left.uniq) || !reflect.DeepEqual(seq.cum, left.cum) {
			t.Fatalf("trial %d: Merge of partial folds diverges from sequential", trial)
		}
	}
}

func TestCompressedFrontierBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	type point struct{ t, fp, fn float64 }
	for trial := 0; trial < 30; trial++ {
		cols := randColumns(rng, 1+rng.Intn(6))
		attack := make([]float64, rng.Intn(5))
		for i := range attack {
			attack[i] = rng.Float64() * 30
		}
		ref := mergedReference(t, cols)
		want, err := NewFrontier(ref, attack)
		if err != nil {
			t.Fatal(err)
		}
		got, err := NewFrontierCompressed(foldAll(t, cols), attack)
		if err != nil {
			t.Fatal(err)
		}
		var wantPts, gotPts []point
		want.Visit(func(t, fp, fn float64) { wantPts = append(wantPts, point{t, fp, fn}) })
		got.Visit(func(t, fp, fn float64) { gotPts = append(gotPts, point{t, fp, fn}) })
		if len(wantPts) != len(gotPts) {
			t.Fatalf("trial %d: %d visit points, want %d", trial, len(gotPts), len(wantPts))
		}
		for i := range wantPts {
			w, g := wantPts[i], gotPts[i]
			if math.Float64bits(w.t) != math.Float64bits(g.t) ||
				math.Float64bits(w.fp) != math.Float64bits(g.fp) ||
				math.Float64bits(w.fn) != math.Float64bits(g.fn) {
				t.Fatalf("trial %d point %d: got %+v want %+v", trial, i, g, w)
			}
		}
		score := func(fp, fn float64) float64 { return Utility(fn, fp, 0.4) }
		if wb, gb := want.Maximize(score), got.Maximize(score); math.Float64bits(wb) != math.Float64bits(gb) {
			t.Fatalf("trial %d: Maximize %g != %g", trial, gb, wb)
		}
	}
}

func TestCompressedValidation(t *testing.T) {
	var c Compressed
	if _, err := c.Quantile(0.5); err != ErrNoSamples {
		t.Fatalf("empty Quantile err = %v, want ErrNoSamples", err)
	}
	if _, err := NewFrontierCompressed(&c, nil); err != ErrNoSamples {
		t.Fatalf("empty frontier err = %v, want ErrNoSamples", err)
	}
	if err := c.AddSorted([]float64{2, 1}); err == nil {
		t.Fatal("unsorted column accepted")
	}
	if err := c.AddSorted([]float64{1, math.NaN()}); err == nil {
		t.Fatal("NaN column accepted")
	}
	if err := c.AddSorted(nil); err != nil {
		t.Fatalf("empty column should be a no-op: %v", err)
	}
	if err := c.AddSorted([]float64{3}); err != nil {
		t.Fatal(err)
	}
	for _, q := range []float64{-0.1, 1.1, math.NaN()} {
		if _, err := c.Quantile(q); err == nil {
			t.Fatalf("quantile %g accepted", q)
		}
	}
	if v, err := c.Quantile(1); err != nil || v != 3 {
		t.Fatalf("single-sample quantile = %g, %v", v, err)
	}
	c.AddEmpirical(nil) // no-op, must not panic
	var d Compressed
	d.Merge(&c)
	d.Merge(nil)
	if d.N() != 1 || d.NumDistinct() != 1 {
		t.Fatalf("merge into empty: N=%d distinct=%d", d.N(), d.NumDistinct())
	}
}
