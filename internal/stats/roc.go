package stats

import (
	"fmt"
	"math"
)

// ROCPoint is one operating point of a threshold detector.
type ROCPoint struct {
	Threshold float64
	FPR       float64 // false-positive rate, P(benign > T)
	TPR       float64 // true-positive rate / detection, P(attacked > T)
}

// ROC sweeps the threshold across the union of benign and attacked
// sample values and returns the full ⟨FPR, TPR⟩ curve, sorted by
// increasing FPR. The detector alarms on values strictly greater
// than the threshold, matching core.Detector. The curve always
// includes the (0,·) and (1,1) endpoints.
//
// The paper evaluates detectors at fixed operating points (the 99th
// percentile, the utility optimum); the ROC view generalizes those to
// the whole trade-off frontier and underlies the F-measure and
// utility optimizations.
// The implementation is the same merge-sweep the threshold-frontier
// engine uses (see Frontier): the two sorted sample sets are merged
// with two-pointer cursors — no threshold set map, no per-threshold
// binary searches — and both rates fall out of the cursor positions,
// with arithmetic identical to TailProb's.
func ROC(benign, attacked *Empirical) ([]ROCPoint, error) {
	if benign == nil || benign.N() == 0 || attacked == nil || attacked.N() == 0 {
		return nil, ErrNoSamples
	}
	b, a := benign.sorted, attacked.sorted
	nb, na := float64(len(b)), float64(len(a))
	// A threshold below every sample gives the (1,1) corner; it sorts
	// before both sample sets, so the merged sweep starts with it.
	thr := make([]float64, 1, len(b)+len(a)+1)
	thr[0] = math.Min(b[0], a[0]) - 1
	var i, j int
	for i < len(b) || j < len(a) {
		var v float64
		if j >= len(a) || (i < len(b) && b[i] <= a[j]) {
			v = b[i]
		} else {
			v = a[j]
		}
		for i < len(b) && b[i] == v {
			i++
		}
		for j < len(a) && a[j] == v {
			j++
		}
		thr = append(thr, v)
	}
	// One ascending pass fills the curve back to front (descending
	// threshold = ascending FPR). After the duplicate-consuming loops
	// above, cb/ca are exactly the |{x <= t}| counts TailProb's binary
	// search would return.
	curve := make([]ROCPoint, len(thr))
	var cb, ca int
	for k, t := range thr {
		for cb < len(b) && b[cb] <= t {
			cb++
		}
		for ca < len(a) && a[ca] <= t {
			ca++
		}
		curve[len(thr)-1-k] = ROCPoint{
			Threshold: t,
			FPR:       1 - float64(cb)/nb,
			TPR:       1 - float64(ca)/na,
		}
	}
	return curve, nil
}

// AUC integrates a ROC curve with the trapezoid rule. 0.5 is a
// coin-flip detector; 1.0 is perfect separation.
func AUC(curve []ROCPoint) (float64, error) {
	if len(curve) < 2 {
		return 0, fmt.Errorf("stats: AUC needs at least two ROC points, got %d", len(curve))
	}
	var area float64
	for i := 1; i < len(curve); i++ {
		dx := curve[i].FPR - curve[i-1].FPR
		if dx < 0 {
			return 0, fmt.Errorf("stats: ROC curve not sorted by FPR at index %d", i)
		}
		area += dx * (curve[i].TPR + curve[i-1].TPR) / 2
	}
	return area, nil
}

// OperatingPointAt returns the best operating point within a
// false-positive budget — how an IT operator reads "best detection at
// a 1% false-positive budget" off the frontier. The rule: among the
// points with FPR <= maxFPR, take the maximum FPR; among points tied
// at that FPR, take the maximum TPR. An error is returned when no
// point fits the budget.
func OperatingPointAt(curve []ROCPoint, maxFPR float64) (ROCPoint, error) {
	if len(curve) == 0 {
		return ROCPoint{}, fmt.Errorf("stats: empty ROC curve")
	}
	var best ROCPoint
	found := false
	for _, p := range curve {
		if p.FPR > maxFPR {
			continue
		}
		if !found || p.FPR > best.FPR || (p.FPR == best.FPR && p.TPR > best.TPR) {
			best, found = p, true
		}
	}
	if !found {
		return ROCPoint{}, fmt.Errorf("stats: no ROC point with FPR <= %g", maxFPR)
	}
	return best, nil
}

// KolmogorovSmirnov computes the two-sample KS statistic
// D = sup |F_a(x) − F_b(x)| and the asymptotic p-value for the
// hypothesis that a and b come from the same distribution. The
// reproduction uses it to quantify the week-over-week distribution
// drift behind the paper's threshold-instability observation (§6.1).
func KolmogorovSmirnov(a, b *Empirical) (d, pValue float64, err error) {
	if a == nil || a.N() == 0 || b == nil || b.N() == 0 {
		return 0, 0, ErrNoSamples
	}
	sa, sb := a.sorted, b.sorted
	var i, j int
	na, nb := float64(len(sa)), float64(len(sb))
	for i < len(sa) && j < len(sb) {
		x := math.Min(sa[i], sb[j])
		for i < len(sa) && sa[i] <= x {
			i++
		}
		for j < len(sb) && sb[j] <= x {
			j++
		}
		if diff := math.Abs(float64(i)/na - float64(j)/nb); diff > d {
			d = diff
		}
	}
	// Asymptotic Kolmogorov distribution (Smirnov's formula).
	ne := na * nb / (na + nb)
	lambda := (math.Sqrt(ne) + 0.12 + 0.11/math.Sqrt(ne)) * d
	pValue = ksProb(lambda)
	return d, pValue, nil
}

// ksProb evaluates the Kolmogorov Q function Q(λ) = 2 Σ (−1)^{k−1}
// exp(−2 k² λ²), clamped to [0, 1].
func ksProb(lambda float64) float64 {
	if lambda <= 0 {
		return 1
	}
	var sum float64
	sign := 1.0
	for k := 1; k <= 100; k++ {
		term := sign * 2 * math.Exp(-2*float64(k*k)*lambda*lambda)
		sum += term
		if math.Abs(term) < 1e-12 {
			break
		}
		sign = -sign
	}
	if sum < 0 {
		return 0
	}
	if sum > 1 {
		return 1
	}
	return sum
}
