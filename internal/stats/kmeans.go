package stats

import (
	"fmt"
	"math"

	"repro/internal/xrand"
)

// KMeansResult describes a clustering of n points into k groups.
type KMeansResult struct {
	// Assign maps point index to cluster index in [0, k).
	Assign []int
	// Centroids holds the final cluster centers.
	Centroids [][]float64
	// Inertia is the total within-cluster sum of squared distances.
	Inertia float64
	// Iters is the number of Lloyd iterations performed.
	Iters int
}

// KMeans clusters points (each a d-dimensional vector) into k groups
// using k-means++ seeding and Lloyd's algorithm. The paper attempts
// k-means over per-user 99th-percentile values when exploring
// partial-diversity groupings (§5, "Grouping Users") and reports that
// no natural cluster separation exists; we implement it both to
// reproduce that negative result and as a general grouping method.
//
// It returns an error if points is empty, k < 1, k > len(points), or
// the points have inconsistent dimensions.
func KMeans(src *xrand.Source, points [][]float64, k, maxIters int) (*KMeansResult, error) {
	n := len(points)
	if n == 0 {
		return nil, fmt.Errorf("stats: kmeans requires at least one point")
	}
	if k < 1 || k > n {
		return nil, fmt.Errorf("stats: kmeans requires 1 <= k <= n, got k=%d n=%d", k, n)
	}
	dim := len(points[0])
	for i, p := range points {
		if len(p) != dim {
			return nil, fmt.Errorf("stats: kmeans point %d has dimension %d, want %d", i, len(p), dim)
		}
	}
	if maxIters < 1 {
		maxIters = 100
	}

	centroids := seedPlusPlus(src, points, k)
	assign := make([]int, n)
	counts := make([]int, k)
	res := &KMeansResult{}

	for iter := 0; iter < maxIters; iter++ {
		changed := false
		for i, p := range points {
			best, bestD := 0, math.Inf(1)
			for c := range centroids {
				d := sqDist(p, centroids[c])
				if d < bestD {
					best, bestD = c, d
				}
			}
			if assign[i] != best || iter == 0 {
				changed = changed || assign[i] != best
				assign[i] = best
			}
		}
		res.Iters = iter + 1
		if iter > 0 && !changed {
			break
		}
		// recompute centroids
		for c := range centroids {
			counts[c] = 0
			for d := range centroids[c] {
				centroids[c][d] = 0
			}
		}
		for i, p := range points {
			c := assign[i]
			counts[c]++
			for d, v := range p {
				centroids[c][d] += v
			}
		}
		for c := range centroids {
			if counts[c] == 0 {
				// Re-seed an empty cluster at the point farthest from
				// its assigned centroid, a standard fix that keeps k
				// clusters alive.
				centroids[c] = append([]float64(nil), farthestPoint(points, assign, centroids)...)
				continue
			}
			for d := range centroids[c] {
				centroids[c][d] /= float64(counts[c])
			}
		}
	}

	res.Assign = assign
	res.Centroids = centroids
	for i, p := range points {
		res.Inertia += sqDist(p, centroids[assign[i]])
	}
	return res, nil
}

// KMeans1D clusters scalar values; a convenience wrapper used for
// grouping users by a single feature threshold.
func KMeans1D(src *xrand.Source, vals []float64, k, maxIters int) (*KMeansResult, error) {
	points := make([][]float64, len(vals))
	for i, v := range vals {
		points[i] = []float64{v}
	}
	return KMeans(src, points, k, maxIters)
}

func seedPlusPlus(src *xrand.Source, points [][]float64, k int) [][]float64 {
	n := len(points)
	centroids := make([][]float64, 0, k)
	first := src.Intn(n)
	centroids = append(centroids, append([]float64(nil), points[first]...))
	d2 := make([]float64, n)
	for len(centroids) < k {
		var total float64
		for i, p := range points {
			best := math.Inf(1)
			for _, c := range centroids {
				if d := sqDist(p, c); d < best {
					best = d
				}
			}
			d2[i] = best
			total += best
		}
		var idx int
		if total == 0 {
			idx = src.Intn(n)
		} else {
			target := src.Float64() * total
			var cum float64
			for i, d := range d2 {
				cum += d
				if cum >= target {
					idx = i
					break
				}
			}
		}
		centroids = append(centroids, append([]float64(nil), points[idx]...))
	}
	return centroids
}

func farthestPoint(points [][]float64, assign []int, centroids [][]float64) []float64 {
	bestIdx, bestD := 0, -1.0
	for i, p := range points {
		d := sqDist(p, centroids[assign[i]])
		if d > bestD {
			bestIdx, bestD = i, d
		}
	}
	return points[bestIdx]
}

func sqDist(a, b []float64) float64 {
	var s float64
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return s
}

// SilhouetteScore computes the mean silhouette coefficient of a
// clustering: values near 1 mean well-separated clusters, values near
// 0 mean overlapping clusters. The paper's observation that user
// thresholds "sweep through the entire range of values" with "no
// natural holes" corresponds to a low silhouette score.
func SilhouetteScore(points [][]float64, assign []int, k int) float64 {
	n := len(points)
	if n < 2 || k < 2 {
		return 0
	}
	var total float64
	var counted int
	for i := range points {
		// mean distance to own cluster (a) and nearest other (b)
		sums := make([]float64, k)
		counts := make([]int, k)
		for j := range points {
			if i == j {
				continue
			}
			sums[assign[j]] += math.Sqrt(sqDist(points[i], points[j]))
			counts[assign[j]]++
		}
		own := assign[i]
		if counts[own] == 0 {
			continue // singleton cluster: silhouette undefined, skip
		}
		a := sums[own] / float64(counts[own])
		b := math.Inf(1)
		for c := 0; c < k; c++ {
			if c == own || counts[c] == 0 {
				continue
			}
			if m := sums[c] / float64(counts[c]); m < b {
				b = m
			}
		}
		if math.IsInf(b, 1) {
			continue
		}
		den := math.Max(a, b)
		if den > 0 {
			total += (b - a) / den
			counted++
		}
	}
	if counted == 0 {
		return 0
	}
	return total / float64(counted)
}
