package stats

import (
	"math"
	"sort"
	"testing"

	"repro/internal/xrand"
)

// The *Sorted fast-path functions must agree exactly with the
// Empirical methods they bypass — they are the same algorithm on the
// same data, minus the copy.
func TestSortedFastPathMatchesEmpirical(t *testing.T) {
	samples := []float64{5, 1, 9, 2, 2, 7, 3.5, 0, 11, 6}
	e := MustEmpirical(samples)
	sorted := append([]float64(nil), samples...)
	sort.Float64s(sorted)

	for _, q := range []float64{0, 0.01, 0.25, 0.5, 0.75, 0.99, 0.999, 1} {
		want := e.MustQuantile(q)
		got, err := QuantileSorted(sorted, q)
		if err != nil || got != want {
			t.Fatalf("QuantileSorted(%g) = %g, %v; want %g", q, got, err, want)
		}
	}
	for _, x := range []float64{-1, 0, 2, 2.5, 6, 11, 40} {
		if got, want := CDFSorted(sorted, x), e.CDF(x); got != want {
			t.Fatalf("CDFSorted(%g) = %g, want %g", x, got, want)
		}
		if got, want := TailProbSorted(sorted, x), e.TailProb(x); got != want {
			t.Fatalf("TailProbSorted(%g) = %g, want %g", x, got, want)
		}
	}
}

// TestSortedFastPathRandomizedSweep is the property-based counterpart
// of the hand-picked cases above: across many random sample sets —
// mixed continuous and integer-valued (ties!), spanning decades like
// real feature columns — the *Sorted fast-path functions must agree
// bit-for-bit with the Empirical methods on random query points.
// Seeds are fixed so a failure reproduces exactly.
func TestSortedFastPathRandomizedSweep(t *testing.T) {
	for _, seed := range []uint64{1, 2, 3, 0xbeef, 0xf1f0} {
		r := xrand.New(seed)
		for trial := 0; trial < 40; trial++ {
			n := 1 + r.Intn(300)
			samples := make([]float64, n)
			for i := range samples {
				switch r.Intn(3) {
				case 0: // integer counters with heavy ties
					samples[i] = float64(r.Intn(20))
				case 1: // continuous body
					samples[i] = 100 * r.Float64()
				default: // heavy tail spanning decades
					samples[i] = math.Exp(8 * r.Float64())
				}
			}
			e := MustEmpirical(samples)
			sorted := append([]float64(nil), samples...)
			sort.Float64s(sorted)

			for k := 0; k < 25; k++ {
				q := r.Float64()
				want := e.MustQuantile(q)
				got, err := QuantileSorted(sorted, q)
				if err != nil || got != want {
					t.Fatalf("seed %#x trial %d: QuantileSorted(%v) = %v, %v; want %v",
						seed, trial, q, got, err, want)
				}
			}
			// Query at random points, at exact sample values (the
			// boundary CDF cares about), and beyond both ends.
			queries := []float64{
				sorted[0] - 1, sorted[n-1] + 1,
				sorted[r.Intn(n)], sorted[r.Intn(n)],
			}
			for k := 0; k < 20; k++ {
				queries = append(queries, sorted[0]+(sorted[n-1]-sorted[0])*r.Float64())
			}
			for _, x := range queries {
				if got, want := CDFSorted(sorted, x), e.CDF(x); got != want {
					t.Fatalf("seed %#x trial %d: CDFSorted(%v) = %v, want %v", seed, trial, x, got, want)
				}
				if got, want := TailProbSorted(sorted, x), e.TailProb(x); got != want {
					t.Fatalf("seed %#x trial %d: TailProbSorted(%v) = %v, want %v", seed, trial, x, got, want)
				}
			}
			// The zero-copy constructor over the same sorted data must
			// answer identically to the copy-and-sort constructor.
			ze, err := NewEmpiricalFromSorted(sorted)
			if err != nil {
				t.Fatalf("seed %#x trial %d: %v", seed, trial, err)
			}
			for _, q := range []float64{0, 0.25, 0.5, 0.99, 1} {
				if ze.MustQuantile(q) != e.MustQuantile(q) {
					t.Fatalf("seed %#x trial %d: zero-copy quantile(%v) mismatch", seed, trial, q)
				}
			}
		}
	}
}

func TestSortedFastPathErrors(t *testing.T) {
	if _, err := QuantileSorted(nil, 0.5); err == nil {
		t.Fatal("empty slice accepted")
	}
	if _, err := QuantileSorted([]float64{1, 2}, 1.5); err == nil {
		t.Fatal("out-of-range quantile accepted")
	}
	if got := CDFSorted(nil, 1); got != 0 {
		t.Fatalf("CDFSorted(empty) = %g", got)
	}
}

func TestNewEmpiricalFromSorted(t *testing.T) {
	sorted := []float64{1, 2, 2, 5}
	e, err := NewEmpiricalFromSorted(sorted)
	if err != nil {
		t.Fatal(err)
	}
	// Zero-copy adoption: the distribution reads the caller's slice.
	if e.N() != 4 || e.At(3) != 5 {
		t.Fatalf("adopted wrong samples: n=%d", e.N())
	}
	if _, err := NewEmpiricalFromSorted([]float64{2, 1}); err == nil {
		t.Fatal("unsorted input accepted")
	}
	if _, err := NewEmpiricalFromSorted([]float64{1, math.NaN()}); err == nil {
		t.Fatal("NaN input accepted")
	}
	if _, err := NewEmpiricalFromSorted(nil); err == nil {
		t.Fatal("empty input accepted")
	}
}

// Samples must return a defensive copy: distributions are shared
// across goroutines by the analysis cache, so callers must not be
// able to mutate internal state through the accessor.
func TestSamplesIsDefensiveCopy(t *testing.T) {
	e := MustEmpirical([]float64{3, 1, 2})
	s := e.Samples()
	s[0] = 999
	if e.At(0) != 1 || e.Min() != 1 {
		t.Fatalf("mutating Samples() corrupted the distribution: %v", e.Samples())
	}
	if got := e.Samples(); got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Fatalf("Samples() = %v", got)
	}
}
