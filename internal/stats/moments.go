package stats

import "math"

// Welford accumulates streaming mean and variance using Welford's
// numerically stable online algorithm. The zero value is ready to use.
type Welford struct {
	n    int
	mean float64
	m2   float64
	min  float64
	max  float64
}

// Add incorporates one observation.
func (w *Welford) Add(x float64) {
	if w.n == 0 {
		w.min, w.max = x, x
	} else {
		if x < w.min {
			w.min = x
		}
		if x > w.max {
			w.max = x
		}
	}
	w.n++
	delta := x - w.mean
	w.mean += delta / float64(w.n)
	w.m2 += delta * (x - w.mean)
}

// N returns the number of observations added.
func (w *Welford) N() int { return w.n }

// Mean returns the running mean (0 if empty).
func (w *Welford) Mean() float64 { return w.mean }

// Variance returns the sample variance (denominator n-1), or 0 when
// fewer than two observations exist.
func (w *Welford) Variance() float64 {
	if w.n < 2 {
		return 0
	}
	return w.m2 / float64(w.n-1)
}

// StdDev returns the sample standard deviation.
func (w *Welford) StdDev() float64 { return math.Sqrt(w.Variance()) }

// Min returns the smallest observation (0 if empty).
func (w *Welford) Min() float64 { return w.min }

// Max returns the largest observation (0 if empty).
func (w *Welford) Max() float64 { return w.max }

// Merge combines another accumulator into w using the parallel
// variance formula (Chan et al.), so per-shard accumulators can be
// reduced without losing precision.
func (w *Welford) Merge(o *Welford) {
	if o.n == 0 {
		return
	}
	if w.n == 0 {
		*w = *o
		return
	}
	n := w.n + o.n
	delta := o.mean - w.mean
	w.m2 += o.m2 + delta*delta*float64(w.n)*float64(o.n)/float64(n)
	w.mean += delta * float64(o.n) / float64(n)
	if o.min < w.min {
		w.min = o.min
	}
	if o.max > w.max {
		w.max = o.max
	}
	w.n = n
}

// Mean returns the arithmetic mean of vals, or 0 for empty input.
func Mean(vals []float64) float64 {
	if len(vals) == 0 {
		return 0
	}
	var sum float64
	for _, v := range vals {
		sum += v
	}
	return sum / float64(len(vals))
}

// StdDev returns the sample standard deviation (n-1) of vals, or 0
// when fewer than two values exist.
func StdDev(vals []float64) float64 {
	if len(vals) < 2 {
		return 0
	}
	mean := Mean(vals)
	var ss float64
	for _, v := range vals {
		d := v - mean
		ss += d * d
	}
	return math.Sqrt(ss / float64(len(vals)-1))
}

// HarmonicMean returns the harmonic mean of a and b (the combination
// underlying the F-measure). It returns 0 when either input is 0.
func HarmonicMean(a, b float64) float64 {
	if a <= 0 || b <= 0 {
		return 0
	}
	return 2 * a * b / (a + b)
}

// Pearson returns the Pearson correlation coefficient between x and y.
// It returns 0 when the inputs differ in length, have fewer than two
// points, or either side has zero variance.
func Pearson(x, y []float64) float64 {
	if len(x) != len(y) || len(x) < 2 {
		return 0
	}
	mx, my := Mean(x), Mean(y)
	var sxy, sxx, syy float64
	for i := range x {
		dx, dy := x[i]-mx, y[i]-my
		sxy += dx * dy
		sxx += dx * dx
		syy += dy * dy
	}
	if sxx == 0 || syy == 0 {
		return 0
	}
	return sxy / math.Sqrt(sxx*syy)
}

// Spearman returns the Spearman rank correlation between x and y
// (Pearson correlation of the ranks, with ties given average rank).
func Spearman(x, y []float64) float64 {
	if len(x) != len(y) || len(x) < 2 {
		return 0
	}
	return Pearson(Ranks(x), Ranks(y))
}

// Ranks returns the 1-based average ranks of vals (ties share the
// mean of the ranks they occupy).
func Ranks(vals []float64) []float64 {
	n := len(vals)
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	// insertion-free: sort indices by value
	quickSortIdx(idx, vals)
	ranks := make([]float64, n)
	for i := 0; i < n; {
		j := i
		for j+1 < n && vals[idx[j+1]] == vals[idx[i]] {
			j++
		}
		avg := (float64(i) + float64(j)) / 2.0
		for k := i; k <= j; k++ {
			ranks[idx[k]] = avg + 1
		}
		i = j + 1
	}
	return ranks
}

func quickSortIdx(idx []int, vals []float64) {
	if len(idx) < 2 {
		return
	}
	// simple median-of-three quicksort on indices keyed by vals
	lo, hi := 0, len(idx)-1
	mid := (lo + hi) / 2
	if vals[idx[mid]] < vals[idx[lo]] {
		idx[mid], idx[lo] = idx[lo], idx[mid]
	}
	if vals[idx[hi]] < vals[idx[lo]] {
		idx[hi], idx[lo] = idx[lo], idx[hi]
	}
	if vals[idx[hi]] < vals[idx[mid]] {
		idx[hi], idx[mid] = idx[mid], idx[hi]
	}
	pivot := vals[idx[mid]]
	i, j := lo, hi
	for i <= j {
		for vals[idx[i]] < pivot {
			i++
		}
		for vals[idx[j]] > pivot {
			j--
		}
		if i <= j {
			idx[i], idx[j] = idx[j], idx[i]
			i++
			j--
		}
	}
	quickSortIdx(idx[:j+1], vals)
	quickSortIdx(idx[i:], vals)
}
