package stats

import (
	"math"
	"testing"

	"repro/internal/xrand"
)

// twoBlobs returns points from two well-separated 2-D Gaussian blobs.
func twoBlobs(r *xrand.Source, nPer int) ([][]float64, []int) {
	pts := make([][]float64, 0, 2*nPer)
	truth := make([]int, 0, 2*nPer)
	for i := 0; i < nPer; i++ {
		pts = append(pts, []float64{r.Normal(0, 0.5), r.Normal(0, 0.5)})
		truth = append(truth, 0)
	}
	for i := 0; i < nPer; i++ {
		pts = append(pts, []float64{r.Normal(10, 0.5), r.Normal(10, 0.5)})
		truth = append(truth, 1)
	}
	return pts, truth
}

func TestKMeansSeparatesBlobs(t *testing.T) {
	r := xrand.New(3)
	pts, truth := twoBlobs(r, 50)
	res, err := KMeans(r, pts, 2, 100)
	if err != nil {
		t.Fatal(err)
	}
	// All points with the same truth label must share a cluster.
	c0 := res.Assign[0]
	for i, a := range res.Assign {
		want := c0
		if truth[i] == 1 {
			want = 1 - c0
		}
		if a != want {
			t.Fatalf("point %d assigned %d, want %d", i, a, want)
		}
	}
}

func TestKMeansErrors(t *testing.T) {
	r := xrand.New(1)
	if _, err := KMeans(r, nil, 1, 10); err == nil {
		t.Fatal("empty points accepted")
	}
	pts := [][]float64{{1}, {2}}
	if _, err := KMeans(r, pts, 0, 10); err == nil {
		t.Fatal("k=0 accepted")
	}
	if _, err := KMeans(r, pts, 3, 10); err == nil {
		t.Fatal("k>n accepted")
	}
	if _, err := KMeans(r, [][]float64{{1}, {1, 2}}, 1, 10); err == nil {
		t.Fatal("ragged dimensions accepted")
	}
}

func TestKMeansKEqualsN(t *testing.T) {
	r := xrand.New(7)
	pts := [][]float64{{0}, {10}, {20}}
	res, err := KMeans(r, pts, 3, 50)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[int]bool{}
	for _, a := range res.Assign {
		seen[a] = true
	}
	if len(seen) != 3 {
		t.Fatalf("k=n did not produce singleton clusters: %v", res.Assign)
	}
	if res.Inertia > 1e-9 {
		t.Fatalf("k=n inertia = %g, want 0", res.Inertia)
	}
}

func TestKMeansInertiaDecreasesWithK(t *testing.T) {
	r := xrand.New(11)
	vals := make([]float64, 120)
	for i := range vals {
		vals[i] = r.LogNormal(2, 1.5)
	}
	prev := math.Inf(1)
	for _, k := range []int{1, 2, 4, 8} {
		res, err := KMeans1D(xrand.New(5), vals, k, 200)
		if err != nil {
			t.Fatal(err)
		}
		if res.Inertia > prev+1e-9 {
			t.Fatalf("inertia increased at k=%d: %g > %g", k, res.Inertia, prev)
		}
		prev = res.Inertia
	}
}

func TestKMeansAssignInRange(t *testing.T) {
	r := xrand.New(13)
	vals := make([]float64, 30)
	for i := range vals {
		vals[i] = r.Float64()
	}
	res, err := KMeans1D(r, vals, 4, 50)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Assign) != 30 {
		t.Fatalf("assign length %d", len(res.Assign))
	}
	for _, a := range res.Assign {
		if a < 0 || a >= 4 {
			t.Fatalf("assignment %d out of range", a)
		}
	}
	if res.Iters < 1 {
		t.Fatal("no iterations recorded")
	}
}

func TestKMeansDeterministicForSeed(t *testing.T) {
	vals := make([]float64, 50)
	r := xrand.New(17)
	for i := range vals {
		vals[i] = r.LogNormal(1, 1)
	}
	a, _ := KMeans1D(xrand.New(99), vals, 3, 100)
	b, _ := KMeans1D(xrand.New(99), vals, 3, 100)
	for i := range a.Assign {
		if a.Assign[i] != b.Assign[i] {
			t.Fatal("kmeans not deterministic for fixed seed")
		}
	}
}

func TestSilhouetteHighForSeparatedClusters(t *testing.T) {
	r := xrand.New(19)
	pts, truth := twoBlobs(r, 30)
	s := SilhouetteScore(pts, truth, 2)
	if s < 0.8 {
		t.Fatalf("silhouette of separated blobs = %g, want > 0.8", s)
	}
}

func TestSilhouetteLowForUniformSmear(t *testing.T) {
	// The paper's negative result: thresholds sweep the whole range
	// with no holes, so any 2-way split has poor silhouette.
	r := xrand.New(23)
	pts := make([][]float64, 200)
	for i := range pts {
		pts[i] = []float64{r.Float64() * 100}
	}
	res, err := KMeans(xrand.New(1), pts, 2, 100)
	if err != nil {
		t.Fatal(err)
	}
	s := SilhouetteScore(pts, res.Assign, 2)
	if s > 0.75 {
		t.Fatalf("silhouette of uniform smear = %g, expected weak structure", s)
	}
}

func TestSilhouetteDegenerate(t *testing.T) {
	if s := SilhouetteScore(nil, nil, 2); s != 0 {
		t.Fatalf("empty silhouette = %g", s)
	}
	if s := SilhouetteScore([][]float64{{1}, {2}}, []int{0, 1}, 1); s != 0 {
		t.Fatalf("k=1 silhouette = %g", s)
	}
}

func BenchmarkKMeans350Users(b *testing.B) {
	r := xrand.New(1)
	vals := make([]float64, 350)
	for i := range vals {
		vals[i] = r.LogNormal(3, 2)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, _ = KMeans1D(xrand.New(uint64(i)), vals, 8, 100)
	}
}

func BenchmarkQuantile(b *testing.B) {
	r := xrand.New(1)
	vals := make([]float64, 10000)
	for i := range vals {
		vals[i] = r.LogNormal(3, 2)
	}
	e := MustEmpirical(vals)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = e.MustQuantile(0.99)
	}
}
