package stats

import (
	"fmt"
	"math"
)

// Histogram is a fixed-width bin histogram over [Lo, Hi). Values below
// Lo are clamped into the first bin and values at or above Hi into the
// last, so the histogram never drops observations (the resourceful
// attacker builds histograms of user traffic and must account for the
// entire mass).
type Histogram struct {
	Lo, Hi float64
	Counts []uint64
	total  uint64
	width  float64
}

// NewHistogram creates a histogram with nbins equal-width bins over
// [lo, hi). It returns an error unless lo < hi and nbins >= 1.
func NewHistogram(lo, hi float64, nbins int) (*Histogram, error) {
	if !(lo < hi) {
		return nil, fmt.Errorf("stats: histogram requires lo < hi, got [%g, %g)", lo, hi)
	}
	if nbins < 1 {
		return nil, fmt.Errorf("stats: histogram requires >= 1 bin, got %d", nbins)
	}
	return &Histogram{
		Lo:     lo,
		Hi:     hi,
		Counts: make([]uint64, nbins),
		width:  (hi - lo) / float64(nbins),
	}, nil
}

// Observe adds one observation.
func (h *Histogram) Observe(x float64) {
	h.Counts[h.binFor(x)]++
	h.total++
}

func (h *Histogram) binFor(x float64) int {
	if math.IsNaN(x) || x < h.Lo {
		return 0
	}
	b := int((x - h.Lo) / h.width)
	if b >= len(h.Counts) {
		b = len(h.Counts) - 1
	}
	return b
}

// Total returns the number of observations recorded.
func (h *Histogram) Total() uint64 { return h.total }

// BinCenter returns the midpoint value of bin i.
func (h *Histogram) BinCenter(i int) float64 {
	return h.Lo + (float64(i)+0.5)*h.width
}

// CDF returns the fraction of observations in bins whose upper edge
// is <= x (a step approximation of P(X <= x)).
func (h *Histogram) CDF(x float64) float64 {
	if h.total == 0 {
		return 0
	}
	var cum uint64
	for i, c := range h.Counts {
		upper := h.Lo + float64(i+1)*h.width
		if upper > x {
			break
		}
		cum += c
	}
	return float64(cum) / float64(h.total)
}

// Quantile returns the left edge of the first bin at which the
// cumulative fraction reaches q. It is a conservative (lower-bound)
// quantile estimate suitable for threshold estimation from histogram
// summaries shipped to the central console.
func (h *Histogram) Quantile(q float64) (float64, error) {
	if h.total == 0 {
		return 0, ErrNoSamples
	}
	if q < 0 || q > 1 || math.IsNaN(q) {
		return 0, fmt.Errorf("stats: quantile %g outside [0, 1]", q)
	}
	target := q * float64(h.total)
	var cum float64
	for i, c := range h.Counts {
		cum += float64(c)
		if cum >= target {
			return h.Lo + float64(i)*h.width, nil
		}
	}
	return h.Hi, nil
}

// Merge adds o's counts into h. The histograms must have identical
// geometry.
func (h *Histogram) Merge(o *Histogram) error {
	if h.Lo != o.Lo || h.Hi != o.Hi || len(h.Counts) != len(o.Counts) {
		return fmt.Errorf("stats: merging histograms with different geometry: [%g,%g)x%d vs [%g,%g)x%d",
			h.Lo, h.Hi, len(h.Counts), o.Lo, o.Hi, len(o.Counts))
	}
	for i, c := range o.Counts {
		h.Counts[i] += c
	}
	h.total += o.total
	return nil
}

// LogHistogram buckets positive values into logarithmically spaced
// bins (one per factor of base). It is the natural summary for the
// multi-decade feature spreads in Fig 1.
type LogHistogram struct {
	Base    float64
	MinExp  int
	Counts  []uint64
	zeroCnt uint64
	total   uint64
}

// NewLogHistogram creates a log histogram with bins
// [base^minExp, base^(minExp+1)), ... covering nbins decades. Values
// below base^minExp (including zero) are counted in a dedicated
// underflow bucket; values beyond the top land in the last bin.
func NewLogHistogram(base float64, minExp, nbins int) (*LogHistogram, error) {
	if base <= 1 {
		return nil, fmt.Errorf("stats: log histogram base must exceed 1, got %g", base)
	}
	if nbins < 1 {
		return nil, fmt.Errorf("stats: log histogram requires >= 1 bin, got %d", nbins)
	}
	return &LogHistogram{Base: base, MinExp: minExp, Counts: make([]uint64, nbins)}, nil
}

// Observe adds one observation.
func (h *LogHistogram) Observe(x float64) {
	h.total++
	if x < math.Pow(h.Base, float64(h.MinExp)) || math.IsNaN(x) {
		h.zeroCnt++
		return
	}
	b := int(math.Floor(math.Log(x)/math.Log(h.Base))) - h.MinExp
	if b < 0 {
		b = 0
	}
	if b >= len(h.Counts) {
		b = len(h.Counts) - 1
	}
	h.Counts[b]++
}

// Total returns the number of observations recorded.
func (h *LogHistogram) Total() uint64 { return h.total }

// Underflow returns the number of observations below the lowest bin.
func (h *LogHistogram) Underflow() uint64 { return h.zeroCnt }

// SpreadDecades returns the number of decades (log-base bins) between
// the lowest and highest non-empty bins, the quantity Fig 1 visualizes
// ("threshold diversity spans 3-4 orders of magnitude").
func (h *LogHistogram) SpreadDecades() int {
	lo, hi := -1, -1
	for i, c := range h.Counts {
		if c > 0 {
			if lo == -1 {
				lo = i
			}
			hi = i
		}
	}
	if lo == -1 {
		return 0
	}
	return hi - lo
}
