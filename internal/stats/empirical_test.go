package stats

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/xrand"
)

func TestNewEmpiricalErrors(t *testing.T) {
	if _, err := NewEmpirical(nil); err != ErrNoSamples {
		t.Fatalf("empty input: got %v, want ErrNoSamples", err)
	}
	if _, err := NewEmpirical([]float64{1, math.NaN()}); err == nil {
		t.Fatal("NaN sample accepted")
	}
}

func TestEmpiricalDoesNotAliasInput(t *testing.T) {
	in := []float64{3, 1, 2}
	e := MustEmpirical(in)
	in[0] = 100
	if e.Max() != 3 {
		t.Fatalf("distribution aliased caller slice: max=%g", e.Max())
	}
}

func TestQuantileKnownValues(t *testing.T) {
	e := MustEmpirical([]float64{1, 2, 3, 4, 5})
	cases := []struct{ q, want float64 }{
		{0, 1}, {0.25, 2}, {0.5, 3}, {0.75, 4}, {1, 5}, {0.1, 1.4},
	}
	for _, c := range cases {
		got := e.MustQuantile(c.q)
		if math.Abs(got-c.want) > 1e-12 {
			t.Errorf("Quantile(%g) = %g, want %g", c.q, got, c.want)
		}
	}
}

func TestQuantileSingleSample(t *testing.T) {
	e := MustEmpirical([]float64{7})
	for _, q := range []float64{0, 0.5, 0.99, 1} {
		if got := e.MustQuantile(q); got != 7 {
			t.Errorf("Quantile(%g) = %g, want 7", q, got)
		}
	}
}

func TestQuantileRangeErrors(t *testing.T) {
	e := MustEmpirical([]float64{1, 2})
	for _, q := range []float64{-0.1, 1.1, math.NaN()} {
		if _, err := e.Quantile(q); err == nil {
			t.Errorf("Quantile(%g) did not error", q)
		}
	}
}

func TestQuantileMonotonic(t *testing.T) {
	f := func(seed uint64) bool {
		r := xrand.New(seed)
		n := r.Intn(200) + 2
		samples := make([]float64, n)
		for i := range samples {
			samples[i] = r.LogNormal(0, 2)
		}
		e := MustEmpirical(samples)
		prev := math.Inf(-1)
		for q := 0.0; q <= 1.0; q += 0.01 {
			v := e.MustQuantile(q)
			if v < prev {
				return false
			}
			prev = v
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestCDFAndTailProb(t *testing.T) {
	e := MustEmpirical([]float64{1, 2, 2, 3})
	cases := []struct{ x, cdf float64 }{
		{0.5, 0}, {1, 0.25}, {1.5, 0.25}, {2, 0.75}, {3, 1}, {4, 1},
	}
	for _, c := range cases {
		if got := e.CDF(c.x); math.Abs(got-c.cdf) > 1e-12 {
			t.Errorf("CDF(%g) = %g, want %g", c.x, got, c.cdf)
		}
		if got := e.TailProb(c.x); math.Abs(got-(1-c.cdf)) > 1e-12 {
			t.Errorf("TailProb(%g) = %g, want %g", c.x, got, 1-c.cdf)
		}
	}
}

func TestTailProbMatchesFalsePositiveDefinition(t *testing.T) {
	// The FP rate of a threshold detector with threshold = 99th
	// percentile should be at most 1% on the training data itself —
	// the paper's stated motivation for the 99th-percentile heuristic.
	r := xrand.New(5)
	samples := make([]float64, 10000)
	for i := range samples {
		samples[i] = r.LogNormal(3, 1)
	}
	e := MustEmpirical(samples)
	thr := e.MustQuantile(0.99)
	if fp := e.TailProb(thr); fp > 0.0101 {
		t.Fatalf("FP at own 99th percentile = %g, want <= ~0.01", fp)
	}
}

func TestInverseCDF(t *testing.T) {
	e := MustEmpirical([]float64{10, 20, 30, 40})
	cases := []struct {
		p    float64
		want float64
	}{
		{0, 10}, {0.25, 10}, {0.26, 20}, {0.5, 20}, {0.75, 30}, {0.9, 40}, {1, 40},
	}
	for _, c := range cases {
		got, err := e.InverseCDF(c.p)
		if err != nil {
			t.Fatalf("InverseCDF(%g): %v", c.p, err)
		}
		if got != c.want {
			t.Errorf("InverseCDF(%g) = %g, want %g", c.p, got, c.want)
		}
	}
}

func TestInverseCDFRoundTrip(t *testing.T) {
	// CDF(InverseCDF(p)) >= p for all p — the guarantee the
	// resourceful attacker relies on.
	f := func(seed uint64) bool {
		r := xrand.New(seed)
		n := r.Intn(100) + 1
		samples := make([]float64, n)
		for i := range samples {
			samples[i] = float64(r.Intn(50))
		}
		e := MustEmpirical(samples)
		for _, p := range []float64{0.01, 0.1, 0.5, 0.9, 0.99} {
			v, err := e.InverseCDF(p)
			if err != nil || e.CDF(v) < p-1e-12 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestMergePreservesMass(t *testing.T) {
	a := MustEmpirical([]float64{1, 5, 9})
	b := MustEmpirical([]float64{2, 2})
	m := a.Merge(b)
	if m.N() != 5 {
		t.Fatalf("merged N = %d, want 5", m.N())
	}
	want := []float64{1, 2, 2, 5, 9}
	for i, v := range m.Samples() {
		if v != want[i] {
			t.Fatalf("merged samples = %v, want %v", m.Samples(), want)
		}
	}
	// Originals untouched.
	if a.N() != 3 || b.N() != 2 {
		t.Fatal("merge mutated inputs")
	}
}

func TestMergeEmpiricals(t *testing.T) {
	a := MustEmpirical([]float64{3})
	m, err := MergeEmpiricals([]*Empirical{nil, a, nil})
	if err != nil || m.N() != 1 || m.Min() != 3 {
		t.Fatalf("MergeEmpiricals = %v, %v", m, err)
	}
	if _, err := MergeEmpiricals(nil); err != ErrNoSamples {
		t.Fatalf("MergeEmpiricals(nil) err = %v", err)
	}
}

func TestHomogeneousThresholdBiasedTowardHeavyUsers(t *testing.T) {
	// Reproduces the core qualitative claim of §6.2: merging a light
	// user with a heavy user and taking the global 99th percentile
	// yields a threshold far above the light user's own tail.
	r := xrand.New(42)
	light := make([]float64, 5000)
	heavy := make([]float64, 5000)
	for i := range light {
		light[i] = r.LogNormal(1, 0.5) // median ~e
		heavy[i] = r.LogNormal(6, 0.5) // median ~400
	}
	le, he := MustEmpirical(light), MustEmpirical(heavy)
	global := le.Merge(he)
	globalThr := global.MustQuantile(0.99)
	lightThr := le.MustQuantile(0.99)
	if globalThr < 10*lightThr {
		t.Fatalf("global threshold %g not dominated by heavy user (light thr %g)", globalThr, lightThr)
	}
	// The light user's FP rate under the global threshold collapses
	// to ~0 (it never exceeds), i.e. detection is "miserable".
	if fp := le.TailProb(globalThr); fp > 0.001 {
		t.Fatalf("light user FP under global threshold = %g, want ~0", fp)
	}
}

func TestShifted(t *testing.T) {
	e := MustEmpirical([]float64{1, 2, 3})
	s := e.Shifted(10)
	want := []float64{11, 12, 13}
	for i, v := range s.Samples() {
		if v != want[i] {
			t.Fatalf("Shifted = %v, want %v", s.Samples(), want)
		}
	}
	if e.Max() != 3 {
		t.Fatal("Shifted mutated original")
	}
}

func TestShiftedTailProbMonotoneInShift(t *testing.T) {
	// P(g + b > T) must be non-decreasing in b: adding attack traffic
	// can only increase the alarm probability. This is the invariant
	// behind Fig 4(a)'s monotone detection curves.
	f := func(seed uint64) bool {
		r := xrand.New(seed)
		samples := make([]float64, 200)
		for i := range samples {
			samples[i] = r.Exponential(50)
		}
		e := MustEmpirical(samples)
		thr := e.MustQuantile(0.99)
		prev := -1.0
		for b := 0.0; b < 200; b += 10 {
			p := e.Shifted(b).TailProb(thr)
			if p < prev-1e-12 {
				return false
			}
			prev = p
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestEmptyEmpiricalQueries(t *testing.T) {
	var e Empirical
	if e.N() != 0 || e.Min() != 0 || e.Max() != 0 || e.Mean() != 0 || e.StdDev() != 0 {
		t.Fatal("zero-value Empirical not inert")
	}
	if e.CDF(5) != 0 {
		t.Fatal("zero-value CDF != 0")
	}
	if _, err := e.Quantile(0.5); err != ErrNoSamples {
		t.Fatal("zero-value Quantile did not return ErrNoSamples")
	}
	if _, err := e.InverseCDF(0.5); err != ErrNoSamples {
		t.Fatal("zero-value InverseCDF did not return ErrNoSamples")
	}
}

func TestMeanStdDevAgainstKnown(t *testing.T) {
	e := MustEmpirical([]float64{2, 4, 4, 4, 5, 5, 7, 9})
	if got := e.Mean(); got != 5 {
		t.Fatalf("Mean = %g, want 5", got)
	}
	want := math.Sqrt(32.0 / 7.0)
	if got := e.StdDev(); math.Abs(got-want) > 1e-12 {
		t.Fatalf("StdDev = %g, want %g", got, want)
	}
}
