package stats

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/xrand"
)

func TestWelfordMatchesBatch(t *testing.T) {
	r := xrand.New(1)
	vals := make([]float64, 1000)
	var w Welford
	for i := range vals {
		vals[i] = r.LogNormal(2, 1)
		w.Add(vals[i])
	}
	if math.Abs(w.Mean()-Mean(vals)) > 1e-9 {
		t.Fatalf("Welford mean %g != batch mean %g", w.Mean(), Mean(vals))
	}
	if math.Abs(w.StdDev()-StdDev(vals)) > 1e-9 {
		t.Fatalf("Welford stddev %g != batch stddev %g", w.StdDev(), StdDev(vals))
	}
	e := MustEmpirical(vals)
	if w.Min() != e.Min() || w.Max() != e.Max() {
		t.Fatal("Welford min/max mismatch")
	}
}

func TestWelfordMerge(t *testing.T) {
	r := xrand.New(2)
	var all, a, b Welford
	for i := 0; i < 500; i++ {
		v := r.Normal(5, 2)
		all.Add(v)
		if i%2 == 0 {
			a.Add(v)
		} else {
			b.Add(v)
		}
	}
	a.Merge(&b)
	if a.N() != all.N() {
		t.Fatalf("merged N = %d, want %d", a.N(), all.N())
	}
	if math.Abs(a.Mean()-all.Mean()) > 1e-9 || math.Abs(a.Variance()-all.Variance()) > 1e-9 {
		t.Fatalf("merged moments (%g, %g) != full (%g, %g)",
			a.Mean(), a.Variance(), all.Mean(), all.Variance())
	}
}

func TestWelfordMergeEmpty(t *testing.T) {
	var a, b Welford
	a.Add(3)
	a.Merge(&b) // no-op
	if a.N() != 1 || a.Mean() != 3 {
		t.Fatal("merge with empty changed accumulator")
	}
	b.Merge(&a)
	if b.N() != 1 || b.Mean() != 3 {
		t.Fatal("merge into empty failed")
	}
}

func TestHarmonicMean(t *testing.T) {
	if got := HarmonicMean(1, 1); got != 1 {
		t.Fatalf("HarmonicMean(1,1) = %g", got)
	}
	if got := HarmonicMean(0, 5); got != 0 {
		t.Fatalf("HarmonicMean(0,5) = %g", got)
	}
	want := 2 * 0.5 * 0.25 / 0.75
	if got := HarmonicMean(0.5, 0.25); math.Abs(got-want) > 1e-12 {
		t.Fatalf("HarmonicMean(0.5,0.25) = %g, want %g", got, want)
	}
}

func TestPearsonKnown(t *testing.T) {
	x := []float64{1, 2, 3, 4, 5}
	y := []float64{2, 4, 6, 8, 10}
	if got := Pearson(x, y); math.Abs(got-1) > 1e-12 {
		t.Fatalf("perfect positive correlation = %g", got)
	}
	yNeg := []float64{10, 8, 6, 4, 2}
	if got := Pearson(x, yNeg); math.Abs(got+1) > 1e-12 {
		t.Fatalf("perfect negative correlation = %g", got)
	}
	if got := Pearson(x, []float64{1, 1, 1, 1, 1}); got != 0 {
		t.Fatalf("zero-variance correlation = %g", got)
	}
	if got := Pearson(x, []float64{1, 2}); got != 0 {
		t.Fatalf("length-mismatch correlation = %g", got)
	}
}

func TestSpearmanMonotone(t *testing.T) {
	// Spearman is 1 for any strictly monotone relationship.
	x := []float64{1, 2, 3, 4, 5, 6}
	y := make([]float64, len(x))
	for i, v := range x {
		y[i] = math.Exp(v) // nonlinear but monotone
	}
	if got := Spearman(x, y); math.Abs(got-1) > 1e-12 {
		t.Fatalf("Spearman of monotone data = %g, want 1", got)
	}
}

func TestRanksWithTies(t *testing.T) {
	got := Ranks([]float64{10, 20, 20, 30})
	want := []float64{1, 2.5, 2.5, 4}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Ranks = %v, want %v", got, want)
		}
	}
}

func TestConfusionMetrics(t *testing.T) {
	c := Confusion{TP: 8, FP: 2, TN: 88, FN: 2}
	if got := c.Precision(); got != 0.8 {
		t.Errorf("Precision = %g", got)
	}
	if got := c.Recall(); got != 0.8 {
		t.Errorf("Recall = %g", got)
	}
	if got := c.FalsePositiveRate(); math.Abs(got-2.0/90) > 1e-12 {
		t.Errorf("FPR = %g", got)
	}
	if got := c.FalseNegativeRate(); got != 0.2 {
		t.Errorf("FNR = %g", got)
	}
	if got := c.F1(); math.Abs(got-0.8) > 1e-12 {
		t.Errorf("F1 = %g", got)
	}
	if got := c.Total(); got != 100 {
		t.Errorf("Total = %d", got)
	}
}

func TestConfusionZeroDenominators(t *testing.T) {
	var c Confusion
	if c.Precision() != 0 || c.Recall() != 0 || c.FalsePositiveRate() != 0 ||
		c.FalseNegativeRate() != 0 || c.F1() != 0 {
		t.Fatal("zero confusion matrix produced nonzero rates")
	}
}

func TestConfusionAdd(t *testing.T) {
	a := Confusion{TP: 1, FP: 2, TN: 3, FN: 4}
	a.Add(Confusion{TP: 10, FP: 20, TN: 30, FN: 40})
	if a != (Confusion{TP: 11, FP: 22, TN: 33, FN: 44}) {
		t.Fatalf("Add = %+v", a)
	}
}

func TestFBeta(t *testing.T) {
	c := Confusion{TP: 8, FP: 2, TN: 88, FN: 2}
	if got := c.FBeta(1); math.Abs(got-c.F1()) > 1e-12 {
		t.Fatalf("FBeta(1) = %g != F1 = %g", got, c.F1())
	}
	// Recall-heavy beta should stay equal here since P == R.
	if got := c.FBeta(2); math.Abs(got-0.8) > 1e-12 {
		t.Fatalf("FBeta(2) = %g, want 0.8", got)
	}
	if got := c.FBeta(0); got != 0 {
		t.Fatalf("FBeta(0) = %g, want 0", got)
	}
}

func TestUtilityFormula(t *testing.T) {
	// U = 1 - [w*FN + (1-w)*FP], paper §6.1.
	if got := Utility(0, 0, 0.4); got != 1 {
		t.Fatalf("perfect detector utility = %g", got)
	}
	if got := Utility(1, 1, 0.4); got != 0 {
		t.Fatalf("worst detector utility = %g", got)
	}
	want := 1 - (0.4*0.5 + 0.6*0.1)
	if got := Utility(0.5, 0.1, 0.4); math.Abs(got-want) > 1e-12 {
		t.Fatalf("Utility(0.5,0.1,0.4) = %g, want %g", got, want)
	}
}

func TestUtilityBounds(t *testing.T) {
	f := func(a, b, c uint8) bool {
		fn := float64(a) / 255
		fp := float64(b) / 255
		w := float64(c) / 255
		u := Utility(fn, fp, w)
		return u >= -1e-12 && u <= 1+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestUtilityOf(t *testing.T) {
	c := Confusion{TP: 5, FN: 5, FP: 10, TN: 90}
	want := Utility(0.5, 0.1, 0.3)
	if got := UtilityOf(c, 0.3); math.Abs(got-want) > 1e-12 {
		t.Fatalf("UtilityOf = %g, want %g", got, want)
	}
}

func TestBoxplotKnown(t *testing.T) {
	b, err := NewBoxplot([]float64{1, 2, 3, 4, 5, 6, 7, 8, 9, 100})
	if err != nil {
		t.Fatal(err)
	}
	if b.N != 10 || b.Min != 1 || b.Max != 100 {
		t.Fatalf("boxplot extremes: %+v", b)
	}
	if b.Median != 5.5 {
		t.Fatalf("median = %g, want 5.5", b.Median)
	}
	if len(b.Outliers) != 1 || b.Outliers[0] != 100 {
		t.Fatalf("outliers = %v, want [100]", b.Outliers)
	}
	if b.WhiskerHi != 9 {
		t.Fatalf("upper whisker = %g, want 9", b.WhiskerHi)
	}
}

func TestBoxplotInvariants(t *testing.T) {
	f := func(seed uint64) bool {
		r := xrand.New(seed)
		n := r.Intn(100) + 1
		vals := make([]float64, n)
		for i := range vals {
			vals[i] = r.LogNormal(0, 2)
		}
		b, err := NewBoxplot(vals)
		if err != nil {
			return false
		}
		return b.Min <= b.Q1 && b.Q1 <= b.Median &&
			b.Median <= b.Q3 && b.Q3 <= b.Max &&
			b.WhiskerLo <= b.WhiskerHi &&
			b.N == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestBoxplotEmpty(t *testing.T) {
	if _, err := NewBoxplot(nil); err == nil {
		t.Fatal("empty boxplot did not error")
	}
}

func TestBoxplotString(t *testing.T) {
	b, _ := NewBoxplot([]float64{1, 2, 3})
	if s := b.String(); s == "" {
		t.Fatal("empty String()")
	}
}

func TestHistogramBasics(t *testing.T) {
	h, err := NewHistogram(0, 10, 10)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range []float64{-5, 0, 0.5, 5, 9.99, 10, 1000} {
		h.Observe(v)
	}
	if h.Total() != 7 {
		t.Fatalf("Total = %d", h.Total())
	}
	if h.Counts[0] != 3 { // -5 (clamped), 0, 0.5
		t.Fatalf("bin 0 = %d, want 3", h.Counts[0])
	}
	if h.Counts[9] != 3 { // 9.99, 10 and 1000 clamped to last
		t.Fatalf("bin 9 = %d, want 3", h.Counts[9])
	}
}

func TestHistogramErrors(t *testing.T) {
	if _, err := NewHistogram(5, 5, 10); err == nil {
		t.Fatal("lo==hi accepted")
	}
	if _, err := NewHistogram(0, 1, 0); err == nil {
		t.Fatal("0 bins accepted")
	}
}

func TestHistogramQuantileApproximatesEmpirical(t *testing.T) {
	r := xrand.New(9)
	h, _ := NewHistogram(0, 1000, 2000)
	vals := make([]float64, 20000)
	for i := range vals {
		vals[i] = r.Exponential(100)
		h.Observe(vals[i])
	}
	e := MustEmpirical(vals)
	for _, q := range []float64{0.5, 0.9, 0.99} {
		hq, err := h.Quantile(q)
		if err != nil {
			t.Fatal(err)
		}
		eq := e.MustQuantile(q)
		if math.Abs(hq-eq) > 2 { // within a few bin widths
			t.Errorf("hist quantile %g = %g, empirical = %g", q, hq, eq)
		}
	}
}

func TestHistogramCDFMonotone(t *testing.T) {
	r := xrand.New(10)
	h, _ := NewHistogram(0, 100, 50)
	for i := 0; i < 1000; i++ {
		h.Observe(r.Float64() * 100)
	}
	prev := -1.0
	for x := 0.0; x <= 110; x += 2 {
		c := h.CDF(x)
		if c < prev {
			t.Fatalf("CDF not monotone at %g", x)
		}
		prev = c
	}
	if h.CDF(100) != 1 {
		t.Fatalf("CDF(hi) = %g, want 1", h.CDF(100))
	}
}

func TestHistogramMerge(t *testing.T) {
	a, _ := NewHistogram(0, 10, 5)
	b, _ := NewHistogram(0, 10, 5)
	a.Observe(1)
	b.Observe(9)
	if err := a.Merge(b); err != nil {
		t.Fatal(err)
	}
	if a.Total() != 2 || a.Counts[4] != 1 {
		t.Fatalf("merge result: %+v", a)
	}
	c, _ := NewHistogram(0, 20, 5)
	if err := a.Merge(c); err == nil {
		t.Fatal("geometry mismatch accepted")
	}
}

func TestHistogramEmptyQuantile(t *testing.T) {
	h, _ := NewHistogram(0, 1, 4)
	if _, err := h.Quantile(0.5); err != ErrNoSamples {
		t.Fatalf("err = %v", err)
	}
}

func TestLogHistogramSpread(t *testing.T) {
	h, err := NewLogHistogram(10, 0, 6)
	if err != nil {
		t.Fatal(err)
	}
	// Samples spanning 1..10^4: spread should be 4 decades.
	for _, v := range []float64{1, 5, 50, 500, 5000, 50000 / 5} {
		h.Observe(v)
	}
	if got := h.SpreadDecades(); got != 4 {
		t.Fatalf("SpreadDecades = %d, want 4", got)
	}
	if h.Total() != 6 {
		t.Fatalf("Total = %d", h.Total())
	}
}

func TestLogHistogramUnderflow(t *testing.T) {
	h, _ := NewLogHistogram(10, 0, 4)
	h.Observe(0)
	h.Observe(0.5)
	h.Observe(2)
	if h.Underflow() != 2 {
		t.Fatalf("Underflow = %d, want 2", h.Underflow())
	}
}

func TestLogHistogramErrors(t *testing.T) {
	if _, err := NewLogHistogram(1, 0, 4); err == nil {
		t.Fatal("base 1 accepted")
	}
	if _, err := NewLogHistogram(10, 0, 0); err == nil {
		t.Fatal("0 bins accepted")
	}
}

func TestLogHistogramEmptySpread(t *testing.T) {
	h, _ := NewLogHistogram(10, 0, 4)
	if h.SpreadDecades() != 0 {
		t.Fatal("empty histogram has nonzero spread")
	}
}
