package stats

import (
	"fmt"
	"math"
	"sort"
)

// Compressed is a mergeable run-length-compressed empirical
// distribution: the streaming counterpart of Empirical for group
// threshold derivation when the member columns cannot all be resident
// at once. It stores each distinct sample value once, together with
// the cumulative sample count at or below it, so quantiles are exact
// order-statistic lookups over the virtual concatenated-and-sorted
// sample array — bit-identical to MergeEmpiricals + QuantileSorted on
// the same multiset — while memory scales with the number of distinct
// values (feature columns are window counts with heavy repetition),
// not the number of samples.
//
// The zero value is an empty accumulator. Folding is commutative and
// associative: any interleaving of AddSorted/Merge calls over the same
// multiset of samples yields the same accumulator state, which is what
// makes the parallel shard fold deterministic regardless of worker
// scheduling.
type Compressed struct {
	uniq []float64 // distinct sample values, ascending
	cum  []int64   // cum[i] = number of samples <= uniq[i]

	// The previous generation's buffers, recycled by the merge's
	// copy-and-swap so steady-state folding allocates only on growth.
	uniqScratch []float64
	cumScratch  []int64
}

// N returns the total number of samples folded in.
func (c *Compressed) N() int64 {
	if len(c.cum) == 0 {
		return 0
	}
	return c.cum[len(c.cum)-1]
}

// NumDistinct returns the number of distinct sample values — the
// accumulator's memory footprint driver.
func (c *Compressed) NumDistinct() int { return len(c.uniq) }

// AddSorted folds an already-sorted, NaN-free sample column into the
// accumulator. The input is validated under the same contract as
// Empirical.AdoptSorted and is not retained. An empty column is a
// no-op, mirroring MergeEmpiricals skipping empty members.
func (c *Compressed) AddSorted(col []float64) error {
	for i, v := range col {
		if math.IsNaN(v) {
			return fmt.Errorf("stats: sample %d is NaN", i)
		}
		if i > 0 && v < col[i-1] {
			return fmt.Errorf("stats: samples not sorted at index %d (%g < %g)", i, v, col[i-1])
		}
	}
	if len(col) == 0 {
		return nil
	}
	c.mergeCol(col)
	return nil
}

// AddEmpirical folds an Empirical's samples without the defensive
// copy Samples() would force. A nil or empty distribution is a no-op,
// exactly as MergeEmpiricals skips nil members.
func (c *Compressed) AddEmpirical(e *Empirical) {
	if e == nil || len(e.sorted) == 0 {
		return
	}
	// Empirical's invariant already guarantees sorted and NaN-free.
	c.mergeCol(e.sorted)
}

// mergeCol two-pointer merges a sorted raw column into the (uniq, cum)
// runs, writing the next generation into the scratch buffers and
// swapping.
func (c *Compressed) mergeCol(col []float64) {
	uniq, cum := c.uniq, c.cum
	out := c.uniqScratch[:0]
	outC := c.cumScratch[:0]
	i, j := 0, 0
	var consumed int64 // col samples <= current value
	for i < len(uniq) || j < len(col) {
		var v float64
		switch {
		case i >= len(uniq):
			v = col[j]
		case j >= len(col):
			v = uniq[i]
		case uniq[i] <= col[j]:
			v = uniq[i]
		default:
			v = col[j]
		}
		acc := int64(0)
		if i < len(uniq) && uniq[i] == v {
			acc = cum[i]
			i++
		} else if i > 0 {
			acc = cum[i-1]
		}
		for j < len(col) && col[j] == v {
			j++
			consumed++
		}
		out = append(out, v)
		outC = append(outC, acc+consumed)
	}
	c.uniq, c.uniqScratch = out, uniq[:0]
	c.cum, c.cumScratch = outC, cum[:0]
}

// Merge folds another accumulator's entire multiset into c. o is left
// unchanged; merging with an empty or nil accumulator is a no-op.
func (c *Compressed) Merge(o *Compressed) {
	if o == nil || len(o.uniq) == 0 {
		return
	}
	uniq, cum := c.uniq, c.cum
	oU, oC := o.uniq, o.cum
	out := c.uniqScratch[:0]
	outC := c.cumScratch[:0]
	i, j := 0, 0
	for i < len(uniq) || j < len(oU) {
		var v float64
		switch {
		case i >= len(uniq):
			v = oU[j]
		case j >= len(oU):
			v = uniq[i]
		case uniq[i] <= oU[j]:
			v = uniq[i]
		default:
			v = oU[j]
		}
		a, b := int64(0), int64(0)
		if i < len(uniq) && uniq[i] == v {
			a = cum[i]
			i++
		} else if i > 0 {
			a = cum[i-1]
		}
		if j < len(oU) && oU[j] == v {
			b = oC[j]
			j++
		} else if j > 0 {
			b = oC[j-1]
		}
		out = append(out, v)
		outC = append(outC, a+b)
	}
	c.uniq, c.uniqScratch = out, uniq[:0]
	c.cum, c.cumScratch = outC, cum[:0]
}

// at returns the k-th (0-based) order statistic of the virtual
// expanded sample array.
func (c *Compressed) at(k int64) float64 {
	i := sort.Search(len(c.cum), func(i int) bool { return c.cum[i] > k })
	return c.uniq[i]
}

// Quantile computes the Hyndman-Fan type 7 q-quantile of the folded
// multiset, bit-identical to QuantileSorted over the fully expanded
// sorted sample array: the order statistics it interpolates between
// are the same float64 values, so the arithmetic is
// operand-for-operand the same.
func (c *Compressed) Quantile(q float64) (float64, error) {
	n := c.N()
	if n == 0 {
		return 0, ErrNoSamples
	}
	if q < 0 || q > 1 || math.IsNaN(q) {
		return 0, fmt.Errorf("stats: quantile %g outside [0, 1]", q)
	}
	if n == 1 {
		return c.at(0), nil
	}
	h := q * float64(n-1)
	lo := int64(math.Floor(h))
	if lo >= n-1 {
		return c.at(n - 1), nil
	}
	frac := h - float64(lo)
	a := c.at(lo)
	return a + frac*(c.at(lo+1)-a), nil
}

// NewFrontierCompressed builds the threshold frontier of the folded
// multiset: bit-identical to NewFrontier over MergeEmpiricals of the
// same samples. The accumulator's (uniq, cum) runs are exactly the
// run-length compression Frontier.Reset would compute from the merged
// sorted column — pcdf[i] = float64(count <= uniq[i-1]) / n, the same
// division on the same integers — and the shifted-quantile ladder
// interpolates the same order statistics, so the resulting sweep
// visits the same (t, fp, fn) sequence.
func NewFrontierCompressed(c *Compressed, attack []float64) (*Frontier, error) {
	if c == nil || c.N() == 0 {
		return nil, ErrNoSamples
	}
	f := &Frontier{attack: attack}
	for _, q := range frontierQuantiles {
		base, err := c.Quantile(q)
		if err != nil {
			return nil, err
		}
		for _, b := range attack {
			f.shifted = append(f.shifted, base+b)
		}
	}
	sort.Float64s(f.shifted)
	nF := float64(c.N())
	f.uniq = append([]float64(nil), c.uniq...)
	f.pcdf = make([]float64, 0, len(c.cum)+1)
	f.pcdf = append(f.pcdf, 0)
	for _, cnt := range c.cum {
		f.pcdf = append(f.pcdf, float64(cnt)/nF)
	}
	return f, nil
}
