package stats

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"testing"

	"repro/internal/xrand"
)

// frontierFixture builds a duplicate-heavy training distribution (the
// real feature columns are counts) and an attack sweep spanning the
// benign range and beyond.
func frontierFixture(seed uint64, n int) (*Empirical, []float64) {
	r := xrand.New(seed)
	v := make([]float64, n)
	for i := range v {
		v[i] = math.Floor(r.LogNormal(3, 1))
	}
	attack := []float64{1, 7.5, 40, 400, 1e6}
	return MustEmpirical(v), attack
}

// referenceCandidates rebuilds the candidate set the way the
// pre-frontier brute force did: a dedup map over every training
// sample plus every coarse attack-shifted quantile, then sorted.
func referenceCandidates(train *Empirical, attack []float64) []float64 {
	set := make(map[float64]struct{})
	for i := 0; i < train.N(); i++ {
		set[train.At(i)] = struct{}{}
	}
	for _, q := range []float64{0, 0.25, 0.5, 0.75, 0.9, 0.99, 1} {
		base := train.MustQuantile(q)
		for _, b := range attack {
			set[base+b] = struct{}{}
		}
	}
	out := make([]float64, 0, len(set))
	for c := range set {
		out = append(out, c)
	}
	sort.Float64s(out)
	return out
}

func TestFrontierEnumeratesExactCandidateSet(t *testing.T) {
	train, attack := frontierFixture(1, 500)
	f, err := NewFrontier(train, attack)
	if err != nil {
		t.Fatal(err)
	}
	var got []float64
	f.Visit(func(thr, _, _ float64) { got = append(got, thr) })
	want := referenceCandidates(train, attack)
	if len(got) != len(want) {
		t.Fatalf("frontier enumerates %d candidates, reference has %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("candidate %d: %v != reference %v", i, got[i], want[i])
		}
	}
	for i := 1; i < len(got); i++ {
		if got[i] <= got[i-1] {
			t.Fatalf("candidates not strictly ascending at %d: %v after %v", i, got[i], got[i-1])
		}
	}
}

func TestFrontierOperatingPointsMatchDirectQueries(t *testing.T) {
	train, attack := frontierFixture(2, 300)
	f, err := NewFrontier(train, attack)
	if err != nil {
		t.Fatal(err)
	}
	f.Visit(func(thr, fp, fn float64) {
		if want := train.TailProb(thr); fp != want {
			t.Fatalf("t=%v: fp %v != TailProb %v", thr, fp, want)
		}
		var want float64
		for _, b := range attack {
			want += train.CDF(thr - b)
		}
		want /= float64(len(attack))
		if fn != want {
			t.Fatalf("t=%v: fn %v != averaged CDF %v", thr, fn, want)
		}
	})
}

func TestFrontierEmptyAttack(t *testing.T) {
	train, _ := frontierFixture(3, 100)
	f, err := NewFrontier(train, nil)
	if err != nil {
		t.Fatal(err)
	}
	count := 0
	f.Visit(func(thr, fp, fn float64) {
		count++
		if fn != 0 {
			t.Fatalf("t=%v: fn %v with no attack magnitudes", thr, fn)
		}
	})
	uniq := map[float64]struct{}{}
	for i := 0; i < train.N(); i++ {
		uniq[train.At(i)] = struct{}{}
	}
	if count != len(uniq) {
		t.Fatalf("%d candidates, want the %d unique training samples", count, len(uniq))
	}
}

func TestFrontierResetReuse(t *testing.T) {
	trainA, attackA := frontierFixture(4, 200)
	trainB, attackB := frontierFixture(5, 350)
	reused, err := NewFrontier(trainA, attackA)
	if err != nil {
		t.Fatal(err)
	}
	if err := reused.Reset(trainB, attackB); err != nil {
		t.Fatal(err)
	}
	fresh, err := NewFrontier(trainB, attackB)
	if err != nil {
		t.Fatal(err)
	}
	type pt struct{ t, fp, fn float64 }
	var a, b []pt
	reused.Visit(func(t, fp, fn float64) { a = append(a, pt{t, fp, fn}) })
	fresh.Visit(func(t, fp, fn float64) { b = append(b, pt{t, fp, fn}) })
	if len(a) != len(b) {
		t.Fatalf("reused frontier has %d points, fresh %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("point %d: reused %+v != fresh %+v", i, a[i], b[i])
		}
	}
}

func TestFrontierRepeatedSweepsIdentical(t *testing.T) {
	train, attack := frontierFixture(6, 250)
	f, err := NewFrontier(train, attack)
	if err != nil {
		t.Fatal(err)
	}
	score := func(fp, fn float64) float64 { return Utility(fn, fp, 0.4) }
	first := f.Maximize(score)
	for i := 0; i < 3; i++ {
		if again := f.Maximize(score); again != first {
			t.Fatalf("sweep %d: %v != first sweep %v (cursor scratch leaked)", i, again, first)
		}
	}
}

// TestFrontierConcurrentSweeps sweeps one shared frontier from many
// goroutines at once — the memoized-frontier sharing pattern of
// parallel Assignment builds (e.g. full-diversity and 8-partial
// configuring simultaneously, both hitting the same user's cached
// frontier). Run under -race this is the regression guard for the
// sweep state living on the caller's stack rather than the struct.
func TestFrontierConcurrentSweeps(t *testing.T) {
	train, attack := frontierFixture(8, 400)
	f, err := NewFrontier(train, attack)
	if err != nil {
		t.Fatal(err)
	}
	utility := func(fp, fn float64) float64 { return Utility(fn, fp, 0.4) }
	fmeasure := func(fp, fn float64) float64 {
		recall := 1 - fn
		if recall+fp == 0 {
			return 0
		}
		return HarmonicMean(recall/(recall+fp), recall)
	}
	wantU, wantF := f.Maximize(utility), f.Maximize(fmeasure)
	var wg sync.WaitGroup
	errs := make(chan string, 16)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for iter := 0; iter < 50; iter++ {
				if got := f.Maximize(utility); got != wantU {
					errs <- fmt.Sprintf("goroutine %d: utility %v != %v", g, got, wantU)
					return
				}
				if got := f.Maximize(fmeasure); got != wantF {
					errs <- fmt.Sprintf("goroutine %d: f-measure %v != %v", g, got, wantF)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for e := range errs {
		t.Error(e)
	}
}

func TestFrontierErrors(t *testing.T) {
	if _, err := NewFrontier(nil, []float64{1}); err == nil {
		t.Fatal("nil training accepted")
	}
	if _, err := NewFrontier(&Empirical{}, []float64{1}); err == nil {
		t.Fatal("empty training accepted")
	}
	if _, err := AcquireFrontier(nil, nil); err == nil {
		t.Fatal("acquire with nil training accepted")
	}
}

func TestCountAboveSorted(t *testing.T) {
	sorted := []float64{1, 2, 2, 3, 5, 5, 5, 9}
	for _, tc := range []struct {
		x    float64
		want int
	}{{0, 8}, {1, 7}, {2, 5}, {4.5, 4}, {5, 1}, {9, 0}, {10, 0}} {
		if got := CountAboveSorted(sorted, tc.x); got != tc.want {
			t.Fatalf("CountAboveSorted(%g) = %d, want %d", tc.x, got, tc.want)
		}
	}
	if CountAboveSorted(nil, 0) != 0 {
		t.Fatal("empty slice")
	}
}

func TestCountShiftedAboveMatchesWalk(t *testing.T) {
	r := xrand.New(7)
	for trial := 0; trial < 100; trial++ {
		n := 1 + int(r.Uint64()%64)
		v := make([]float64, n)
		for i := range v {
			v[i] = math.Floor(r.LogNormal(2, 1.5))
		}
		sort.Float64s(v)
		shift := r.LogNormal(1, 2)
		thr := r.LogNormal(2.5, 1.5)
		walk := 0
		for _, x := range v {
			if x+shift > thr {
				walk++
			}
		}
		if got := CountShiftedAbove(v, shift, thr); got != walk {
			t.Fatalf("trial %d: binary-search count %d != walk %d (shift=%v thr=%v)",
				trial, got, walk, shift, thr)
		}
	}
}

func BenchmarkFrontierBuildAndMaximize(b *testing.B) {
	train, attack := frontierFixture(11, 672) // one user-week column
	score := func(fp, fn float64) float64 { return Utility(fn, fp, 0.4) }
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		f, err := AcquireFrontier(train, attack)
		if err != nil {
			b.Fatal(err)
		}
		_ = f.Maximize(score)
		f.Release()
	}
}
