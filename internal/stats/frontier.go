package stats

import (
	"sort"
	"sync"
)

// frontierQuantiles is the coarse quantile ladder of the frontier's
// candidate-set contract: attack-shifted candidate thresholds are
// generated at exactly these training quantiles. The ladder is part
// of the engine's behavioral contract — the objective-optimizing
// heuristics' brute-force reference enumerates the same points — so
// changing it changes every utility/F-measure threshold in the repro.
var frontierQuantiles = [...]float64{0, 0.25, 0.5, 0.75, 0.9, 0.99, 1}

// Frontier is the threshold-frontier engine: given one training
// distribution and a set of additive attack magnitudes, it enumerates
// every candidate threshold in ascending order together with its
// exact operating point —
//
//	fp(T) = P(g > T)                     (training false-positive rate)
//	fn(T) = avg_b P(g + b <= T)          (missed-detection rate)
//
// — in one merge-sweep with monotone two-pointer cursors. The
// candidate set is the union of
//
//   - every training sample, and
//   - every coarse training quantile (frontierQuantiles) shifted by
//     every attack magnitude (these matter when attacks are larger
//     than the benign range),
//
// deduplicated by float equality: exactly the set the pre-frontier
// brute-force scan built in a map and probed with per-candidate
// binary searches. Candidates are never materialized — the sweep
// streams them from the run-length-compressed training column and
// the (tiny) sorted shifted-quantile buffer — so a frontier owns only
// its compressed column and the shifted-quantile buffer, and a
// Reset/Visit cycle performs zero allocations once those buffers have
// grown.
//
// A Frontier retains a (read-only) reference to the attack slice,
// which must stay unmodified for as long as the frontier is used; the
// training distribution is compressed into owned buffers during Reset
// and not retained. The zero value is empty; Reset before use. After
// Reset, Visit and Maximize are read-only (sweep cursors live on the
// caller's stack), so one built frontier may be swept from many
// goroutines concurrently — the analysis workspace's memoized
// per-user frontiers are shared by parallel Assignment builds. Reset
// itself must not race with sweeps.
type Frontier struct {
	attack  []float64 // attack magnitudes (shared, read-only)
	shifted []float64 // sorted attack-shifted coarse quantiles (owned)
	// uniq and pcdf are the run-length-compressed training column:
	// uniq holds the distinct sample values ascending and pcdf[i] is
	// the empirical CDF after consuming the first i of them —
	// pcdf[0] = 0 and pcdf[i] = float64(|{g <= uniq[i-1]}|)/n, the
	// exact division CDFSorted performs, precomputed once. Feature
	// columns are window counts with heavy value repetition, so
	// |uniq| is typically far below the raw sample count and every
	// sweep runs over the compressed column with zero divisions.
	uniq, pcdf []float64
}

// NewFrontier builds a frontier over a training distribution and a
// set of attack magnitudes. attack may be empty, in which case the
// candidate set is the training samples alone and fn is identically
// zero.
func NewFrontier(train *Empirical, attack []float64) (*Frontier, error) {
	f := &Frontier{}
	if err := f.Reset(train, attack); err != nil {
		return nil, err
	}
	return f, nil
}

// Reset re-targets the frontier at a new training distribution and
// attack set, reusing the scratch buffers of previous builds
// (amortized-zero allocation across many Resets).
func (f *Frontier) Reset(train *Empirical, attack []float64) error {
	if train == nil || len(train.sorted) == 0 {
		return ErrNoSamples
	}
	f.attack = attack
	f.shifted = f.shifted[:0]
	for _, q := range frontierQuantiles {
		base := train.MustQuantile(q)
		for _, b := range attack {
			f.shifted = append(f.shifted, base+b)
		}
	}
	sort.Float64s(f.shifted)
	// Run-length-compress the sorted column into (uniq, pcdf).
	sorted := train.sorted
	n := len(sorted)
	nF := float64(n)
	f.uniq = f.uniq[:0]
	f.pcdf = append(f.pcdf[:0], 0)
	for idx := 0; idx < n; {
		v := sorted[idx]
		for idx < n && sorted[idx] == v {
			idx++
		}
		f.uniq = append(f.uniq, v)
		f.pcdf = append(f.pcdf, float64(idx)/nF)
	}
	return nil
}

// Visit sweeps the frontier, calling visit for every candidate
// threshold in strictly ascending order with its exact (fp, fn)
// operating point. The arithmetic reproduces the brute-force scan
// bit for bit: fp = 1 - |{g <= T}|/n, fn = (Σ_b |{g <= T-b}|/n)/|b|
// with the per-magnitude terms accumulated in attack order.
func (f *Frontier) Visit(visit func(t, fp, fn float64)) {
	uniq, shifted, attack, pcdf := f.uniq, f.shifted, f.attack, f.pcdf
	nU := len(uniq)
	nMag := float64(len(attack))
	// The per-magnitude cursors live on this call's stack (heap only
	// for outlandish magnitude counts), so concurrent sweeps of one
	// shared frontier never touch common mutable state — memoized
	// frontiers are swept by parallel Assignment builds.
	var cursorBuf [64]int
	cursors := cursorBuf[:0]
	if len(attack) <= len(cursorBuf) {
		cursors = cursorBuf[:len(attack)]
	} else {
		cursors = make([]int, len(attack))
	}
	i, j := 0, 0
	for i < nU || j < len(shifted) {
		var t float64
		if j >= len(shifted) || (i < nU && uniq[i] <= shifted[j]) {
			t = uniq[i]
		} else {
			t = shifted[j]
		}
		// Consume t from both streams; afterwards pcdf[i] is exactly
		// the |{g <= t}|/n value CDFSorted's binary search would
		// return.
		if i < nU && uniq[i] == t {
			i++
		}
		for j < len(shifted) && shifted[j] == t {
			j++
		}
		fp := 1 - pcdf[i]
		var fn float64
		for k, b := range attack {
			x := t - b
			c := cursors[k]
			for c < nU && uniq[c] <= x {
				c++
			}
			cursors[k] = c
			fn += pcdf[c]
		}
		if len(attack) > 0 {
			fn /= nMag
		}
		visit(t, fp, fn)
	}
}

// Maximize returns the candidate threshold maximizing score(fp, fn).
// Ties (scores within 1e-15) prefer the smallest threshold — the more
// sensitive detector — matching the brute-force scan's rule exactly.
func (f *Frontier) Maximize(score func(fp, fn float64) float64) float64 {
	bestT, bestScore := 0.0, -1.0
	first := true
	f.Visit(func(t, fp, fn float64) {
		if first {
			bestT, first = t, false
		}
		if s := score(fp, fn); s > bestScore+1e-15 {
			bestT, bestScore = t, s
		}
	})
	return bestT
}

// frontierPool recycles Frontier scratch buffers across the many
// short-lived builds core.Configure performs for merged groups.
var frontierPool = sync.Pool{New: func() any { return new(Frontier) }}

// AcquireFrontier returns a pooled frontier reset to the given
// inputs. Callers must Release it when done and must not retain it
// afterwards.
func AcquireFrontier(train *Empirical, attack []float64) (*Frontier, error) {
	f := frontierPool.Get().(*Frontier)
	if err := f.Reset(train, attack); err != nil {
		frontierPool.Put(f)
		return nil, err
	}
	return f, nil
}

// Release drops the frontier's reference to the shared attack slice
// and returns it (scratch buffers intact) to the pool.
func (f *Frontier) Release() {
	f.attack = nil
	frontierPool.Put(f)
}

// CountAboveSorted returns |{v in sorted : v > x}| — the number of
// alarming windows of a threshold detector with threshold x — by
// binary search over an already-sorted slice.
func CountAboveSorted(sorted []float64, x float64) int {
	idx := sort.Search(len(sorted), func(i int) bool { return sorted[i] > x })
	return len(sorted) - idx
}

// CountShiftedAbove returns |{v in sorted : v+shift > x}|: the number
// of windows that alarm once a constant additive attack of size shift
// is overlaid. Float addition is monotone non-decreasing in v, so the
// alarm predicate is monotone over the sorted slice and the binary
// search returns exactly the count a window-by-window walk computing
// v+shift > x would — including at rounding boundaries.
func CountShiftedAbove(sorted []float64, shift, x float64) int {
	idx := sort.Search(len(sorted), func(i int) bool { return sorted[i]+shift > x })
	return len(sorted) - idx
}
