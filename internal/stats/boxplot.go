package stats

import "fmt"

// Boxplot is the five-number summary plus Tukey whiskers and outliers,
// matching what the paper's Fig 3(a) and Fig 4(b) render.
type Boxplot struct {
	Min, Q1, Median, Q3, Max float64
	// WhiskerLo/WhiskerHi are the most extreme samples within 1.5 IQR
	// of the quartiles (standard Tukey whiskers).
	WhiskerLo, WhiskerHi float64
	// Outliers holds samples beyond the whiskers, in ascending order.
	Outliers []float64
	N        int
}

// NewBoxplot computes a boxplot summary of samples.
func NewBoxplot(samples []float64) (Boxplot, error) {
	e, err := NewEmpirical(samples)
	if err != nil {
		return Boxplot{}, err
	}
	return BoxplotOf(e), nil
}

// BoxplotOf computes a boxplot summary of an existing empirical
// distribution.
func BoxplotOf(e *Empirical) Boxplot {
	b := Boxplot{
		Min:    e.Min(),
		Q1:     e.MustQuantile(0.25),
		Median: e.MustQuantile(0.5),
		Q3:     e.MustQuantile(0.75),
		Max:    e.Max(),
		N:      e.N(),
	}
	iqr := b.Q3 - b.Q1
	loFence := b.Q1 - 1.5*iqr
	hiFence := b.Q3 + 1.5*iqr
	b.WhiskerLo, b.WhiskerHi = b.Max, b.Min
	for _, v := range e.sorted {
		if v < loFence || v > hiFence {
			b.Outliers = append(b.Outliers, v)
			continue
		}
		if v < b.WhiskerLo {
			b.WhiskerLo = v
		}
		if v > b.WhiskerHi {
			b.WhiskerHi = v
		}
	}
	if b.WhiskerLo > b.WhiskerHi { // every sample was an outlier (degenerate)
		b.WhiskerLo, b.WhiskerHi = b.Median, b.Median
	}
	return b
}

// IQR returns the interquartile range.
func (b Boxplot) IQR() float64 { return b.Q3 - b.Q1 }

// String renders the summary on one line, suitable for the textual
// "figures" produced by cmd/experiments.
func (b Boxplot) String() string {
	return fmt.Sprintf("n=%d min=%.4g q1=%.4g med=%.4g q3=%.4g max=%.4g whiskers=[%.4g, %.4g] outliers=%d",
		b.N, b.Min, b.Q1, b.Median, b.Q3, b.Max, b.WhiskerLo, b.WhiskerHi, len(b.Outliers))
}
