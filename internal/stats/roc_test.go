package stats

import (
	"math"
	"testing"

	"repro/internal/xrand"
)

func twoClasses(sep float64, n int, seed uint64) (*Empirical, *Empirical) {
	r := xrand.New(seed)
	benign := make([]float64, n)
	attacked := make([]float64, n)
	for i := 0; i < n; i++ {
		benign[i] = r.Normal(0, 1)
		attacked[i] = r.Normal(sep, 1)
	}
	return MustEmpirical(benign), MustEmpirical(attacked)
}

func TestROCEndpoints(t *testing.T) {
	b, a := twoClasses(2, 500, 1)
	curve, err := ROC(b, a)
	if err != nil {
		t.Fatal(err)
	}
	first, last := curve[0], curve[len(curve)-1]
	if first.FPR != 0 {
		t.Fatalf("curve does not start at FPR 0: %+v", first)
	}
	if last.FPR != 1 || last.TPR != 1 {
		t.Fatalf("curve does not end at (1,1): %+v", last)
	}
	// Monotone in both axes.
	for i := 1; i < len(curve); i++ {
		if curve[i].FPR < curve[i-1].FPR || curve[i].TPR < curve[i-1].TPR-1e-12 {
			t.Fatalf("curve not monotone at %d: %+v -> %+v", i, curve[i-1], curve[i])
		}
	}
}

func TestAUCOrdersBySeparation(t *testing.T) {
	prev := 0.0
	for _, sep := range []float64{0, 1, 2, 4} {
		b, a := twoClasses(sep, 800, 7)
		curve, err := ROC(b, a)
		if err != nil {
			t.Fatal(err)
		}
		auc, err := AUC(curve)
		if err != nil {
			t.Fatal(err)
		}
		if auc < prev-0.02 {
			t.Fatalf("AUC not increasing with separation: %g after %g", auc, prev)
		}
		prev = auc
	}
	// Perfect separation -> AUC ~ 1; none -> ~0.5.
	b, a := twoClasses(10, 500, 3)
	curve, _ := ROC(b, a)
	if auc, _ := AUC(curve); auc < 0.999 {
		t.Fatalf("separated AUC = %g", auc)
	}
	b, a = twoClasses(0, 2000, 5)
	curve, _ = ROC(b, a)
	if auc, _ := AUC(curve); math.Abs(auc-0.5) > 0.05 {
		t.Fatalf("coin-flip AUC = %g", auc)
	}
}

func TestAUCTheoreticalValue(t *testing.T) {
	// For two unit-variance normals separated by d, AUC = Φ(d/√2).
	b, a := twoClasses(1.5, 4000, 11)
	curve, _ := ROC(b, a)
	auc, _ := AUC(curve)
	want := 0.5 * (1 + math.Erf(1.5/2))
	if math.Abs(auc-want) > 0.02 {
		t.Fatalf("AUC = %g, want ~%g", auc, want)
	}
}

func TestROCErrors(t *testing.T) {
	b, _ := twoClasses(1, 10, 1)
	if _, err := ROC(nil, b); err == nil {
		t.Fatal("nil benign accepted")
	}
	if _, err := ROC(b, nil); err == nil {
		t.Fatal("nil attacked accepted")
	}
	if _, err := AUC(nil); err == nil {
		t.Fatal("empty AUC accepted")
	}
	if _, err := AUC([]ROCPoint{{FPR: 1}, {FPR: 0}}); err == nil {
		t.Fatal("unsorted curve accepted")
	}
}

func TestOperatingPointAt(t *testing.T) {
	b, a := twoClasses(2, 1000, 13)
	curve, _ := ROC(b, a)
	p, err := OperatingPointAt(curve, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if p.FPR > 0.01 {
		t.Fatalf("operating point FPR %g exceeds budget", p.FPR)
	}
	if p.TPR <= 0 {
		t.Fatalf("operating point TPR %g", p.TPR)
	}
	if _, err := OperatingPointAt(nil, 0.01); err == nil {
		t.Fatal("empty curve accepted")
	}
}

func TestKSIdenticalDistributions(t *testing.T) {
	r := xrand.New(17)
	v1 := make([]float64, 2000)
	v2 := make([]float64, 2000)
	for i := range v1 {
		v1[i] = r.LogNormal(1, 1)
		v2[i] = r.LogNormal(1, 1)
	}
	d, p, err := KolmogorovSmirnov(MustEmpirical(v1), MustEmpirical(v2))
	if err != nil {
		t.Fatal(err)
	}
	if d > 0.06 {
		t.Fatalf("KS statistic %g for identical distributions", d)
	}
	if p < 0.01 {
		t.Fatalf("p-value %g rejects identical distributions", p)
	}
}

func TestKSShiftedDistributions(t *testing.T) {
	r := xrand.New(19)
	v1 := make([]float64, 1000)
	v2 := make([]float64, 1000)
	for i := range v1 {
		v1[i] = r.Normal(0, 1)
		v2[i] = r.Normal(1, 1)
	}
	d, p, err := KolmogorovSmirnov(MustEmpirical(v1), MustEmpirical(v2))
	if err != nil {
		t.Fatal(err)
	}
	// Theoretical D for a unit shift of unit normals is ~0.38.
	if d < 0.25 {
		t.Fatalf("KS statistic %g too small for shifted distributions", d)
	}
	if p > 1e-6 {
		t.Fatalf("p-value %g does not reject shifted distributions", p)
	}
}

func TestKSSelfIsZero(t *testing.T) {
	e := MustEmpirical([]float64{1, 2, 3, 4, 5})
	d, p, err := KolmogorovSmirnov(e, e)
	if err != nil || d != 0 || p != 1 {
		t.Fatalf("self-KS: d=%g p=%g err=%v", d, p, err)
	}
}

func TestKSErrors(t *testing.T) {
	e := MustEmpirical([]float64{1})
	if _, _, err := KolmogorovSmirnov(nil, e); err == nil {
		t.Fatal("nil a accepted")
	}
	if _, _, err := KolmogorovSmirnov(e, &Empirical{}); err == nil {
		t.Fatal("empty b accepted")
	}
}

func TestKSProbBounds(t *testing.T) {
	if ksProb(0) != 1 {
		t.Fatal("ksProb(0) != 1")
	}
	if p := ksProb(10); p > 1e-12 {
		t.Fatalf("ksProb(10) = %g", p)
	}
	prev := 1.0
	for l := 0.1; l < 3; l += 0.1 {
		p := ksProb(l)
		if p > prev+1e-12 || p < 0 || p > 1 {
			t.Fatalf("ksProb not monotone/bounded at %g: %g", l, p)
		}
		prev = p
	}
}

func BenchmarkROC(b *testing.B) {
	be, at := twoClasses(2, 672, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ROC(be, at); err != nil {
			b.Fatal(err)
		}
	}
}
