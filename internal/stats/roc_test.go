package stats

import (
	"math"
	"reflect"
	"sort"
	"testing"

	"repro/internal/xrand"
)

func twoClasses(sep float64, n int, seed uint64) (*Empirical, *Empirical) {
	r := xrand.New(seed)
	benign := make([]float64, n)
	attacked := make([]float64, n)
	for i := 0; i < n; i++ {
		benign[i] = r.Normal(0, 1)
		attacked[i] = r.Normal(sep, 1)
	}
	return MustEmpirical(benign), MustEmpirical(attacked)
}

func TestROCEndpoints(t *testing.T) {
	b, a := twoClasses(2, 500, 1)
	curve, err := ROC(b, a)
	if err != nil {
		t.Fatal(err)
	}
	first, last := curve[0], curve[len(curve)-1]
	if first.FPR != 0 {
		t.Fatalf("curve does not start at FPR 0: %+v", first)
	}
	if last.FPR != 1 || last.TPR != 1 {
		t.Fatalf("curve does not end at (1,1): %+v", last)
	}
	// Monotone in both axes.
	for i := 1; i < len(curve); i++ {
		if curve[i].FPR < curve[i-1].FPR || curve[i].TPR < curve[i-1].TPR-1e-12 {
			t.Fatalf("curve not monotone at %d: %+v -> %+v", i, curve[i-1], curve[i])
		}
	}
}

func TestAUCOrdersBySeparation(t *testing.T) {
	prev := 0.0
	for _, sep := range []float64{0, 1, 2, 4} {
		b, a := twoClasses(sep, 800, 7)
		curve, err := ROC(b, a)
		if err != nil {
			t.Fatal(err)
		}
		auc, err := AUC(curve)
		if err != nil {
			t.Fatal(err)
		}
		if auc < prev-0.02 {
			t.Fatalf("AUC not increasing with separation: %g after %g", auc, prev)
		}
		prev = auc
	}
	// Perfect separation -> AUC ~ 1; none -> ~0.5.
	b, a := twoClasses(10, 500, 3)
	curve, _ := ROC(b, a)
	if auc, _ := AUC(curve); auc < 0.999 {
		t.Fatalf("separated AUC = %g", auc)
	}
	b, a = twoClasses(0, 2000, 5)
	curve, _ = ROC(b, a)
	if auc, _ := AUC(curve); math.Abs(auc-0.5) > 0.05 {
		t.Fatalf("coin-flip AUC = %g", auc)
	}
}

func TestAUCTheoreticalValue(t *testing.T) {
	// For two unit-variance normals separated by d, AUC = Φ(d/√2).
	b, a := twoClasses(1.5, 4000, 11)
	curve, _ := ROC(b, a)
	auc, _ := AUC(curve)
	want := 0.5 * (1 + math.Erf(1.5/2))
	if math.Abs(auc-want) > 0.02 {
		t.Fatalf("AUC = %g, want ~%g", auc, want)
	}
}

func TestROCErrors(t *testing.T) {
	b, _ := twoClasses(1, 10, 1)
	if _, err := ROC(nil, b); err == nil {
		t.Fatal("nil benign accepted")
	}
	if _, err := ROC(b, nil); err == nil {
		t.Fatal("nil attacked accepted")
	}
	if _, err := AUC(nil); err == nil {
		t.Fatal("empty AUC accepted")
	}
	if _, err := AUC([]ROCPoint{{FPR: 1}, {FPR: 0}}); err == nil {
		t.Fatal("unsorted curve accepted")
	}
}

// refROC is the pre-merge-sweep implementation kept as a behavioral
// reference: a threshold-set map over both sample sets plus the
// below-minimum sentinel, sorted, with two binary searches per
// threshold. The merge-sweep must reproduce it exactly.
func refROC(benign, attacked *Empirical) []ROCPoint {
	thrSet := make(map[float64]struct{}, benign.N()+attacked.N()+1)
	for i := 0; i < benign.N(); i++ {
		thrSet[benign.At(i)] = struct{}{}
	}
	for i := 0; i < attacked.N(); i++ {
		thrSet[attacked.At(i)] = struct{}{}
	}
	thrSet[math.Min(benign.Min(), attacked.Min())-1] = struct{}{}
	thresholds := make([]float64, 0, len(thrSet))
	for v := range thrSet {
		thresholds = append(thresholds, v)
	}
	sort.Float64s(thresholds)
	curve := make([]ROCPoint, 0, len(thresholds))
	for i := len(thresholds) - 1; i >= 0; i-- {
		t := thresholds[i]
		curve = append(curve, ROCPoint{
			Threshold: t,
			FPR:       benign.TailProb(t),
			TPR:       attacked.TailProb(t),
		})
	}
	return curve
}

// TestROCMatchesReference pins the merge-sweep ROC bit-identical to
// the map-and-binary-search reference, including duplicate-heavy
// integer samples and values shared between the two classes.
func TestROCMatchesReference(t *testing.T) {
	r := xrand.New(23)
	for trial := 0; trial < 50; trial++ {
		nb := 5 + int(r.Uint64()%300)
		na := 5 + int(r.Uint64()%300)
		bv := make([]float64, nb)
		av := make([]float64, na)
		for i := range bv {
			bv[i] = math.Floor(r.LogNormal(2, 1))
		}
		for i := range av {
			av[i] = math.Floor(r.LogNormal(2.5, 1)) // overlaps benign support
		}
		be, ae := MustEmpirical(bv), MustEmpirical(av)
		got, err := ROC(be, ae)
		if err != nil {
			t.Fatal(err)
		}
		want := refROC(be, ae)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("trial %d: merge-sweep ROC diverges from reference (%d vs %d points)",
				trial, len(got), len(want))
		}
	}
}

func TestOperatingPointAt(t *testing.T) {
	b, a := twoClasses(2, 1000, 13)
	curve, _ := ROC(b, a)
	p, err := OperatingPointAt(curve, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if p.FPR > 0.01 {
		t.Fatalf("operating point FPR %g exceeds budget", p.FPR)
	}
	if p.TPR <= 0 {
		t.Fatalf("operating point TPR %g", p.TPR)
	}
	if _, err := OperatingPointAt(nil, 0.01); err == nil {
		t.Fatal("empty curve accepted")
	}
}

// TestOperatingPointAtBoundaries exercises the tie-breaking rule on
// hand-built curves: max TPR among points tied at the maximum
// admissible FPR, regardless of point order, and an error when the
// budget sits below the curve's minimum FPR.
func TestOperatingPointAtBoundaries(t *testing.T) {
	dup := []ROCPoint{
		{Threshold: 9, FPR: 0.01, TPR: 0.40},
		{Threshold: 8, FPR: 0.01, TPR: 0.70}, // winner: same FPR, higher TPR
		{Threshold: 7, FPR: 0.01, TPR: 0.55},
		{Threshold: 6, FPR: 0.50, TPR: 0.99}, // over budget
	}
	p, err := OperatingPointAt(dup, 0.01)
	if err != nil {
		t.Fatal(err)
	}
	if p.Threshold != 8 || p.TPR != 0.70 {
		t.Fatalf("duplicate-FPR tie broke to %+v, want the max-TPR point", p)
	}
	// Same curve reversed: the rule must not depend on scan order.
	rev := []ROCPoint{dup[3], dup[2], dup[1], dup[0]}
	if p, _ = OperatingPointAt(rev, 0.01); p.Threshold != 8 {
		t.Fatalf("reversed curve broke tie to %+v", p)
	}
	// Budget below the curve's minimum FPR: no admissible point.
	if _, err := OperatingPointAt(dup, 0.001); err == nil {
		t.Fatal("budget below minimum FPR accepted")
	}
	// Budget exactly at a point's FPR is admissible (<=, not <).
	if p, err = OperatingPointAt(dup, 0.5); err != nil || p.FPR != 0.5 {
		t.Fatalf("exact-budget point: %+v, %v", p, err)
	}
	// A zero-FPR-only curve under a zero budget still resolves.
	zero := []ROCPoint{{Threshold: 1, FPR: 0, TPR: 0.2}, {Threshold: 2, FPR: 0, TPR: 0.1}}
	if p, err = OperatingPointAt(zero, 0); err != nil || p.TPR != 0.2 {
		t.Fatalf("zero-budget point: %+v, %v", p, err)
	}
}

func TestKSIdenticalDistributions(t *testing.T) {
	r := xrand.New(17)
	v1 := make([]float64, 2000)
	v2 := make([]float64, 2000)
	for i := range v1 {
		v1[i] = r.LogNormal(1, 1)
		v2[i] = r.LogNormal(1, 1)
	}
	d, p, err := KolmogorovSmirnov(MustEmpirical(v1), MustEmpirical(v2))
	if err != nil {
		t.Fatal(err)
	}
	if d > 0.06 {
		t.Fatalf("KS statistic %g for identical distributions", d)
	}
	if p < 0.01 {
		t.Fatalf("p-value %g rejects identical distributions", p)
	}
}

func TestKSShiftedDistributions(t *testing.T) {
	r := xrand.New(19)
	v1 := make([]float64, 1000)
	v2 := make([]float64, 1000)
	for i := range v1 {
		v1[i] = r.Normal(0, 1)
		v2[i] = r.Normal(1, 1)
	}
	d, p, err := KolmogorovSmirnov(MustEmpirical(v1), MustEmpirical(v2))
	if err != nil {
		t.Fatal(err)
	}
	// Theoretical D for a unit shift of unit normals is ~0.38.
	if d < 0.25 {
		t.Fatalf("KS statistic %g too small for shifted distributions", d)
	}
	if p > 1e-6 {
		t.Fatalf("p-value %g does not reject shifted distributions", p)
	}
}

func TestKSSelfIsZero(t *testing.T) {
	e := MustEmpirical([]float64{1, 2, 3, 4, 5})
	d, p, err := KolmogorovSmirnov(e, e)
	if err != nil || d != 0 || p != 1 {
		t.Fatalf("self-KS: d=%g p=%g err=%v", d, p, err)
	}
}

func TestKSErrors(t *testing.T) {
	e := MustEmpirical([]float64{1})
	if _, _, err := KolmogorovSmirnov(nil, e); err == nil {
		t.Fatal("nil a accepted")
	}
	if _, _, err := KolmogorovSmirnov(e, &Empirical{}); err == nil {
		t.Fatal("empty b accepted")
	}
}

func TestKSProbBounds(t *testing.T) {
	if ksProb(0) != 1 {
		t.Fatal("ksProb(0) != 1")
	}
	if p := ksProb(10); p > 1e-12 {
		t.Fatalf("ksProb(10) = %g", p)
	}
	prev := 1.0
	for l := 0.1; l < 3; l += 0.1 {
		p := ksProb(l)
		if p > prev+1e-12 || p < 0 || p > 1 {
			t.Fatalf("ksProb not monotone/bounded at %g: %g", l, p)
		}
		prev = p
	}
}

func BenchmarkROC(b *testing.B) {
	be, at := twoClasses(2, 672, 1)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ROC(be, at); err != nil {
			b.Fatal(err)
		}
	}
}
