// Package stats implements the statistical machinery the reproduction
// needs: empirical distributions with quantile/tail queries, streaming
// moments, histograms, boxplot summaries, precision/recall/F-measure,
// correlation and k-means clustering.
//
// The paper's entire methodology is built on empirical per-user feature
// distributions P(g_i^j): thresholds are percentiles of those
// distributions, false-positive rates are upper-tail probabilities, and
// the resourceful attacker inverts them. Empirical is therefore the
// central type of this package.
package stats

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// ErrNoSamples is returned by constructors and queries that require at
// least one sample.
var ErrNoSamples = errors.New("stats: empirical distribution has no samples")

// Empirical is an immutable empirical distribution over float64
// samples. Construct with NewEmpirical; all queries are O(log n) or
// O(1). The zero value is empty and returns ErrNoSamples from
// fallible queries.
type Empirical struct {
	sorted []float64
}

// NewEmpirical builds an empirical distribution from the given
// samples. The input slice is copied and may be reused by the caller.
// NaN samples are rejected.
func NewEmpirical(samples []float64) (*Empirical, error) {
	if len(samples) == 0 {
		return nil, ErrNoSamples
	}
	cp := make([]float64, len(samples))
	for i, s := range samples {
		if math.IsNaN(s) {
			return nil, fmt.Errorf("stats: sample %d is NaN", i)
		}
		cp[i] = s
	}
	sort.Float64s(cp)
	return &Empirical{sorted: cp}, nil
}

// MustEmpirical is NewEmpirical that panics on error; intended for
// tests and generators that control their inputs.
func MustEmpirical(samples []float64) *Empirical {
	e, err := NewEmpirical(samples)
	if err != nil {
		panic(err)
	}
	return e
}

// N returns the number of samples.
func (e *Empirical) N() int { return len(e.sorted) }

// Min returns the smallest sample, or 0 for an empty distribution.
func (e *Empirical) Min() float64 {
	if len(e.sorted) == 0 {
		return 0
	}
	return e.sorted[0]
}

// Max returns the largest sample, or 0 for an empty distribution.
func (e *Empirical) Max() float64 {
	if len(e.sorted) == 0 {
		return 0
	}
	return e.sorted[len(e.sorted)-1]
}

// Mean returns the sample mean, or 0 for an empty distribution.
func (e *Empirical) Mean() float64 {
	if len(e.sorted) == 0 {
		return 0
	}
	var sum float64
	for _, v := range e.sorted {
		sum += v
	}
	return sum / float64(len(e.sorted))
}

// StdDev returns the sample standard deviation (denominator n-1), or
// 0 when fewer than two samples exist.
func (e *Empirical) StdDev() float64 {
	n := len(e.sorted)
	if n < 2 {
		return 0
	}
	mean := e.Mean()
	var ss float64
	for _, v := range e.sorted {
		d := v - mean
		ss += d * d
	}
	return math.Sqrt(ss / float64(n-1))
}

// Quantile returns the q-quantile (0 <= q <= 1) using linear
// interpolation between order statistics (Hyndman-Fan type 7, the
// default of R, NumPy and Excel). Quantile(0.99) is the paper's "99th
// percentile" threshold heuristic.
func (e *Empirical) Quantile(q float64) (float64, error) {
	n := len(e.sorted)
	if n == 0 {
		return 0, ErrNoSamples
	}
	if q < 0 || q > 1 || math.IsNaN(q) {
		return 0, fmt.Errorf("stats: quantile %g outside [0, 1]", q)
	}
	if n == 1 {
		return e.sorted[0], nil
	}
	h := q * float64(n-1)
	lo := int(math.Floor(h))
	if lo >= n-1 {
		return e.sorted[n-1], nil
	}
	frac := h - float64(lo)
	return e.sorted[lo] + frac*(e.sorted[lo+1]-e.sorted[lo]), nil
}

// MustQuantile is Quantile that panics on error.
func (e *Empirical) MustQuantile(q float64) float64 {
	v, err := e.Quantile(q)
	if err != nil {
		panic(err)
	}
	return v
}

// Percentile is shorthand for Quantile(p/100).
func (e *Empirical) Percentile(p float64) (float64, error) {
	return e.Quantile(p / 100)
}

// CDF returns the empirical P(X <= x): the fraction of samples that
// are <= x. Returns 0 for an empty distribution.
func (e *Empirical) CDF(x float64) float64 {
	n := len(e.sorted)
	if n == 0 {
		return 0
	}
	// index of first sample > x
	idx := sort.Search(n, func(i int) bool { return e.sorted[i] > x })
	return float64(idx) / float64(n)
}

// TailProb returns the empirical P(X > x), the probability mass
// strictly above x. This is exactly the false-positive rate of a
// threshold detector with threshold x evaluated on these samples.
func (e *Empirical) TailProb(x float64) float64 {
	return 1 - e.CDF(x)
}

// InverseCDF returns the smallest sample value v such that
// P(X <= v) >= p. Unlike Quantile it never interpolates, so the
// result is always an observed sample. The resourceful attacker uses
// this to compute the largest additive traffic that keeps the evasion
// probability at its target.
func (e *Empirical) InverseCDF(p float64) (float64, error) {
	n := len(e.sorted)
	if n == 0 {
		return 0, ErrNoSamples
	}
	if p < 0 || p > 1 || math.IsNaN(p) {
		return 0, fmt.Errorf("stats: probability %g outside [0, 1]", p)
	}
	if p == 0 {
		return e.sorted[0], nil
	}
	k := int(math.Ceil(p*float64(n))) - 1
	if k < 0 {
		k = 0
	}
	if k >= n {
		k = n - 1
	}
	return e.sorted[k], nil
}

// Samples returns the sorted sample slice. The caller must not
// modify it.
func (e *Empirical) Samples() []float64 { return e.sorted }

// Merge returns a new empirical distribution over the union of the
// samples of e and others. This is how the homogeneous policy
// "collapses all the individual distributions into a single global
// distribution" at the central console (paper §4).
func (e *Empirical) Merge(others ...*Empirical) *Empirical {
	total := len(e.sorted)
	for _, o := range others {
		total += len(o.sorted)
	}
	merged := make([]float64, 0, total)
	merged = append(merged, e.sorted...)
	for _, o := range others {
		merged = append(merged, o.sorted...)
	}
	sort.Float64s(merged)
	return &Empirical{sorted: merged}
}

// MergeEmpiricals builds a single distribution from many, skipping
// nils and empties. Returns ErrNoSamples if nothing remains.
func MergeEmpiricals(dists []*Empirical) (*Empirical, error) {
	var total int
	for _, d := range dists {
		if d != nil {
			total += len(d.sorted)
		}
	}
	if total == 0 {
		return nil, ErrNoSamples
	}
	merged := make([]float64, 0, total)
	for _, d := range dists {
		if d != nil {
			merged = append(merged, d.sorted...)
		}
	}
	sort.Float64s(merged)
	return &Empirical{sorted: merged}, nil
}

// Shifted returns the distribution of X + delta — the attacked
// traffic g + b for a constant additive attack b (paper §3: malicious
// traffic is additive in the tracked feature).
func (e *Empirical) Shifted(delta float64) *Empirical {
	out := make([]float64, len(e.sorted))
	for i, v := range e.sorted {
		out[i] = v + delta
	}
	return &Empirical{sorted: out}
}
