// Package stats implements the statistical machinery the reproduction
// needs: empirical distributions with quantile/tail queries, streaming
// moments, histograms, boxplot summaries, precision/recall/F-measure,
// correlation and k-means clustering.
//
// The paper's entire methodology is built on empirical per-user feature
// distributions P(g_i^j): thresholds are percentiles of those
// distributions, false-positive rates are upper-tail probabilities, and
// the resourceful attacker inverts them. Empirical is therefore the
// central type of this package.
package stats

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// ErrNoSamples is returned by constructors and queries that require at
// least one sample.
var ErrNoSamples = errors.New("stats: empirical distribution has no samples")

// Empirical is an immutable empirical distribution over float64
// samples. Construct with NewEmpirical; all queries are O(log n) or
// O(1). The zero value is empty and returns ErrNoSamples from
// fallible queries.
type Empirical struct {
	sorted []float64
}

// NewEmpirical builds an empirical distribution from the given
// samples. The input slice is copied and may be reused by the caller.
// NaN samples are rejected.
func NewEmpirical(samples []float64) (*Empirical, error) {
	if len(samples) == 0 {
		return nil, ErrNoSamples
	}
	cp := make([]float64, len(samples))
	for i, s := range samples {
		if math.IsNaN(s) {
			return nil, fmt.Errorf("stats: sample %d is NaN", i)
		}
		cp[i] = s
	}
	sort.Float64s(cp)
	return &Empirical{sorted: cp}, nil
}

// NewEmpiricalFromSorted adopts an already-sorted sample slice without
// copying it — the zero-alloc construction path the analysis
// workspace uses to share one sorted column across many views. The
// caller transfers ownership: the slice must never be modified after
// the call (the distribution would silently corrupt). The input is
// verified to be sorted and NaN-free in one allocation-free pass.
func NewEmpiricalFromSorted(sorted []float64) (*Empirical, error) {
	e := &Empirical{}
	if err := e.AdoptSorted(sorted); err != nil {
		return nil, err
	}
	return e, nil
}

// AdoptSorted initializes e in place to adopt an already-sorted slice,
// under the same contract (and the same validation pass) as
// NewEmpiricalFromSorted. It exists so bulk constructors can carve
// thousands of distributions out of one []Empirical slab instead of
// allocating each behind a pointer; e must not be shared with other
// goroutines until the call returns.
func (e *Empirical) AdoptSorted(sorted []float64) error {
	if len(sorted) == 0 {
		return ErrNoSamples
	}
	if math.IsNaN(sorted[0]) {
		return fmt.Errorf("stats: sample 0 is NaN")
	}
	for i := 1; i < len(sorted); i++ {
		if math.IsNaN(sorted[i]) {
			return fmt.Errorf("stats: sample %d is NaN", i)
		}
		if sorted[i] < sorted[i-1] {
			return fmt.Errorf("stats: samples not sorted at index %d (%g < %g)", i, sorted[i], sorted[i-1])
		}
	}
	e.sorted = sorted
	return nil
}

// MustEmpirical is NewEmpirical that panics on error; intended for
// tests and generators that control their inputs.
func MustEmpirical(samples []float64) *Empirical {
	e, err := NewEmpirical(samples)
	if err != nil {
		panic(err)
	}
	return e
}

// N returns the number of samples.
func (e *Empirical) N() int { return len(e.sorted) }

// Min returns the smallest sample, or 0 for an empty distribution.
func (e *Empirical) Min() float64 {
	if len(e.sorted) == 0 {
		return 0
	}
	return e.sorted[0]
}

// Max returns the largest sample, or 0 for an empty distribution.
func (e *Empirical) Max() float64 {
	if len(e.sorted) == 0 {
		return 0
	}
	return e.sorted[len(e.sorted)-1]
}

// Mean returns the sample mean, or 0 for an empty distribution.
func (e *Empirical) Mean() float64 {
	if len(e.sorted) == 0 {
		return 0
	}
	var sum float64
	for _, v := range e.sorted {
		sum += v
	}
	return sum / float64(len(e.sorted))
}

// StdDev returns the sample standard deviation (denominator n-1), or
// 0 when fewer than two samples exist.
func (e *Empirical) StdDev() float64 {
	n := len(e.sorted)
	if n < 2 {
		return 0
	}
	mean := e.Mean()
	var ss float64
	for _, v := range e.sorted {
		d := v - mean
		ss += d * d
	}
	return math.Sqrt(ss / float64(n-1))
}

// Quantile returns the q-quantile (0 <= q <= 1) using linear
// interpolation between order statistics (Hyndman-Fan type 7, the
// default of R, NumPy and Excel). Quantile(0.99) is the paper's "99th
// percentile" threshold heuristic.
func (e *Empirical) Quantile(q float64) (float64, error) {
	return QuantileSorted(e.sorted, q)
}

// QuantileSorted is the zero-alloc quantile fast path: it computes
// the Hyndman-Fan type 7 q-quantile directly on an already-sorted
// slice, with no Empirical wrapper and no copy. Empirical.Quantile
// delegates here; the analysis workspace calls it on shared sorted
// columns.
func QuantileSorted(sorted []float64, q float64) (float64, error) {
	n := len(sorted)
	if n == 0 {
		return 0, ErrNoSamples
	}
	if q < 0 || q > 1 || math.IsNaN(q) {
		return 0, fmt.Errorf("stats: quantile %g outside [0, 1]", q)
	}
	if n == 1 {
		return sorted[0], nil
	}
	h := q * float64(n-1)
	lo := int(math.Floor(h))
	if lo >= n-1 {
		return sorted[n-1], nil
	}
	frac := h - float64(lo)
	return sorted[lo] + frac*(sorted[lo+1]-sorted[lo]), nil
}

// MustQuantile is Quantile that panics on error.
func (e *Empirical) MustQuantile(q float64) float64 {
	v, err := e.Quantile(q)
	if err != nil {
		panic(err)
	}
	return v
}

// Percentile is shorthand for Quantile(p/100).
func (e *Empirical) Percentile(p float64) (float64, error) {
	return e.Quantile(p / 100)
}

// CDF returns the empirical P(X <= x): the fraction of samples that
// are <= x. Returns 0 for an empty distribution.
func (e *Empirical) CDF(x float64) float64 {
	return CDFSorted(e.sorted, x)
}

// CDFSorted computes the empirical P(X <= x) directly on an
// already-sorted slice — the zero-alloc counterpart of Empirical.CDF.
// Returns 0 for an empty slice.
func CDFSorted(sorted []float64, x float64) float64 {
	n := len(sorted)
	if n == 0 {
		return 0
	}
	// index of first sample > x
	idx := sort.Search(n, func(i int) bool { return sorted[i] > x })
	return float64(idx) / float64(n)
}

// TailProbSorted computes the empirical P(X > x) on an
// already-sorted slice: the false-positive rate of a threshold
// detector with threshold x, without building an Empirical.
func TailProbSorted(sorted []float64, x float64) float64 {
	return 1 - CDFSorted(sorted, x)
}

// TailProb returns the empirical P(X > x), the probability mass
// strictly above x. This is exactly the false-positive rate of a
// threshold detector with threshold x evaluated on these samples.
func (e *Empirical) TailProb(x float64) float64 {
	return 1 - e.CDF(x)
}

// InverseCDF returns the smallest sample value v such that
// P(X <= v) >= p. Unlike Quantile it never interpolates, so the
// result is always an observed sample. The resourceful attacker uses
// this to compute the largest additive traffic that keeps the evasion
// probability at its target.
func (e *Empirical) InverseCDF(p float64) (float64, error) {
	n := len(e.sorted)
	if n == 0 {
		return 0, ErrNoSamples
	}
	if p < 0 || p > 1 || math.IsNaN(p) {
		return 0, fmt.Errorf("stats: probability %g outside [0, 1]", p)
	}
	if p == 0 {
		return e.sorted[0], nil
	}
	k := int(math.Ceil(p*float64(n))) - 1
	if k < 0 {
		k = 0
	}
	if k >= n {
		k = n - 1
	}
	return e.sorted[k], nil
}

// Samples returns a defensive copy of the sorted sample slice. The
// internal slice is never exposed: Empirical values are shared across
// goroutines by the analysis workspace, and a caller mutating the
// returned slice must not be able to corrupt them. Allocation-averse
// callers should iterate with N/At or use the *Sorted fast-path
// functions instead.
func (e *Empirical) Samples() []float64 {
	cp := make([]float64, len(e.sorted))
	copy(cp, e.sorted)
	return cp
}

// At returns the i-th order statistic (the i-th smallest sample),
// allocation-free. It panics if i is out of range, like a slice
// index.
func (e *Empirical) At(i int) float64 { return e.sorted[i] }

// Merge returns a new empirical distribution over the union of the
// samples of e and others. This is how the homogeneous policy
// "collapses all the individual distributions into a single global
// distribution" at the central console (paper §4).
func (e *Empirical) Merge(others ...*Empirical) *Empirical {
	total := len(e.sorted)
	for _, o := range others {
		total += len(o.sorted)
	}
	merged := make([]float64, 0, total)
	merged = append(merged, e.sorted...)
	for _, o := range others {
		merged = append(merged, o.sorted...)
	}
	sort.Float64s(merged)
	return &Empirical{sorted: merged}
}

// MergeEmpiricals builds a single distribution from many, skipping
// nils and empties. Returns ErrNoSamples if nothing remains.
func MergeEmpiricals(dists []*Empirical) (*Empirical, error) {
	var total int
	for _, d := range dists {
		if d != nil {
			total += len(d.sorted)
		}
	}
	if total == 0 {
		return nil, ErrNoSamples
	}
	merged := make([]float64, 0, total)
	for _, d := range dists {
		if d != nil {
			merged = append(merged, d.sorted...)
		}
	}
	sort.Float64s(merged)
	return &Empirical{sorted: merged}, nil
}

// Shifted returns the distribution of X + delta — the attacked
// traffic g + b for a constant additive attack b (paper §3: malicious
// traffic is additive in the tracked feature).
func (e *Empirical) Shifted(delta float64) *Empirical {
	out := make([]float64, len(e.sorted))
	for i, v := range e.sorted {
		out[i] = v + delta
	}
	return &Empirical{sorted: out}
}
