// Package snapshot is the on-disk workspace store: a compact binary
// columnar format holding everything a materialized analysis
// workspace derives from a deterministic enterprise — per-user feature
// matrices, per-(week, feature) sorted columns and per-day sorted
// views — written once and mapped back as zero-copy []float64 views.
//
// Since PR 1–4 the matrices are a pure function of
// (seed, users, weeks, bin width, engine version): the store is
// content-addressed by exactly that key (plus the remaining generator
// knobs — start time, heavy fraction, weekly trend — so two configs
// can never alias). A snapshot whose header does not match the
// requested key, whose engine version is stale, or whose payload fails
// the checksum is rejected with an error; callers fall back to
// regeneration.
//
// # File layout
//
// All integers are little-endian uint64; all payload data is raw
// IEEE-754 float64, 8-byte aligned so the mapped file can be
// reinterpreted in place:
//
//	offset 0    magic "RPWSSNP1" (8 bytes)
//	offset 8    header: 12 × uint64
//	              headerVersion, engine, seed, users, weeks,
//	              binWidthMicros, startMicros, heavyFraction bits,
//	              weeklyTrend bits, binsPerWeek, payloadFloats,
//	              checksum (CRC-32C of the payload, low 32 bits)
//	offset 104  payload: users × record, one record per user:
//	              rows       bins × 6 floats   (bin-major, canonical
//	                                            feature order)
//	              sorted     weeks × 6 × binsPerWeek floats
//	                                           (week-major, feature
//	                                            columns sorted asc)
//	              days       weeks × 6 × 7 × binsPerDay floats
//	                                           (each day's windows
//	                                            sorted asc)
//
// The record is user-major so a writer can stream a population
// through bounded shards — generate a shard, append its records,
// release — without ever holding more than one shard in memory; every
// view a reader needs is still a contiguous float64 run addressable in
// closed form from (user, week, feature).
//
// The format is declared little-endian; Create and Open refuse to run
// on big-endian hosts rather than silently writing a foreign byte
// order.
package snapshot

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
	"path/filepath"
	"strings"
	"time"
	"unsafe"

	"repro/internal/features"
	"repro/internal/trace"
)

// EngineVersion identifies the trace-generation engine whose output
// the snapshot caches. Bump it whenever the generator's model or draw
// order changes (anything that would alter a single matrix value):
// every existing snapshot then misses its key and is regenerated
// instead of silently serving stale matrices.
const EngineVersion = 1

const (
	magic         = "RPWSSNP1"
	headerVersion = 1
	headerBytes   = 8 + 12*8 // magic + 12 uint64 fields
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// hostLittleEndian reports whether this host stores float64/uint64
// little-endian (the only byte order the format supports).
var hostLittleEndian = func() bool {
	var x uint16 = 1
	return *(*byte)(unsafe.Pointer(&x)) == 1
}()

// Key content-addresses one materialized workspace: the full set of
// inputs the deterministic generation engine consumes. Two keys are
// interchangeable if and only if they produce bit-identical matrices
// (under one EngineVersion).
type Key struct {
	Seed          uint64
	Users         int
	Weeks         int
	BinWidth      time.Duration
	StartMicros   int64
	HeavyFraction float64
	WeeklyTrend   float64
}

// KeyFor derives the snapshot key of a trace configuration, applying
// the same defaulting NewPopulation does, so a partially specified
// Config (zero bin width, zero trend) addresses the same snapshot as
// its normalized form.
func KeyFor(cfg trace.Config) (Key, error) {
	cfg, err := cfg.Normalized()
	if err != nil {
		return Key{}, err
	}
	return Key{
		Seed:          cfg.Seed,
		Users:         cfg.Users,
		Weeks:         cfg.Weeks,
		BinWidth:      cfg.BinWidth,
		StartMicros:   cfg.StartMicros,
		HeavyFraction: cfg.HeavyFraction,
		WeeklyTrend:   cfg.WeeklyTrend,
	}, nil
}

// BinsPerWeek returns the number of aggregation windows per week.
func (k Key) BinsPerWeek() int {
	return int((7 * 24 * time.Hour) / k.BinWidth)
}

// Layout returns the payload geometry of the key.
func (k Key) Layout() Layout {
	bpw := k.BinsPerWeek()
	return Layout{Users: k.Users, Weeks: k.Weeks, BinsPerWeek: bpw, BinsPerDay: bpw / 7}
}

// hash folds every addressed field (and the engine version) into the
// filename discriminator, so configs that share the printable fields
// but differ in start time, heavy fraction or trend cannot collide.
func (k Key) hash() uint64 {
	const prime = 1099511628211
	h := uint64(14695981039346656037)
	mix := func(v uint64) {
		for i := 0; i < 8; i++ {
			h ^= (v >> (8 * i)) & 0xff
			h *= prime
		}
	}
	mix(headerVersion)
	mix(EngineVersion)
	mix(k.Seed)
	mix(uint64(k.Users))
	mix(uint64(k.Weeks))
	mix(uint64(k.BinWidth.Microseconds()))
	mix(uint64(k.StartMicros))
	mix(math.Float64bits(k.HeavyFraction))
	mix(math.Float64bits(k.WeeklyTrend))
	return h
}

// Filename returns the content-addressed file name of the key inside
// a snapshot directory: human-readable coordinates plus a hash of the
// full key, e.g. "ws-s1-u5000-w2-b15m0s-v1-8f3a….snap".
func (k Key) Filename() string {
	return fmt.Sprintf("ws-s%d-u%d-w%d-b%s-v%d-%016x.snap",
		k.Seed, k.Users, k.Weeks, k.BinWidth, EngineVersion, k.hash())
}

// Path returns the key's file path under dir.
func (k Key) Path(dir string) string { return filepath.Join(dir, k.Filename()) }

func (k Key) validate() error {
	if !hostLittleEndian {
		return fmt.Errorf("snapshot: format is little-endian; unsupported on this host")
	}
	if k.Users <= 0 || k.Weeks <= 0 {
		return fmt.Errorf("snapshot: key needs positive users/weeks, got %d/%d", k.Users, k.Weeks)
	}
	// The width must divide a day, not merely a week: the layout's day
	// views carve each week into 7 × BinsPerDay windows, and a width
	// like 1120m (9 bins/week) divides a week but truncates
	// BinsPerDay to 9/7 = 1, silently writing day views that cover 7
	// of the week's 9 bins with inconsistent RecordFloats geometry.
	// Day divisibility implies week divisibility (a week is 7 days).
	if k.BinWidth <= 0 || (24*time.Hour)%k.BinWidth != 0 {
		return fmt.Errorf("snapshot: bin width %v does not divide a day (day views need 7 equal per-day windows per week)", k.BinWidth)
	}
	return nil
}

// Layout describes the payload geometry; every offset a reader or
// writer needs is a closed-form function of it.
type Layout struct {
	Users, Weeks, BinsPerWeek, BinsPerDay int
}

// Bins returns the total windows per user.
func (l Layout) Bins() int { return l.Weeks * l.BinsPerWeek }

// RecordFloats returns the float64 count of one user's record.
func (l Layout) RecordFloats() int {
	return l.Bins()*features.NumFeatures + // rows
		l.Weeks*features.NumFeatures*l.BinsPerWeek + // sorted columns
		l.Weeks*features.NumFeatures*7*l.BinsPerDay // day views
}

// PayloadFloats returns the float64 count of the whole payload.
func (l Layout) PayloadFloats() int { return l.Users * l.RecordFloats() }

// RowsOff returns the record-relative float offset of the matrix rows.
func (l Layout) RowsOff() int { return 0 }

// SortedOff returns the record-relative float offset of one sorted
// (week, feature) column (BinsPerWeek floats).
func (l Layout) SortedOff(week, f int) int {
	return l.Bins()*features.NumFeatures +
		(week*features.NumFeatures+f)*l.BinsPerWeek
}

// DayOff returns the record-relative float offset of one (week,
// feature) day view (7×BinsPerDay floats, each day sorted).
func (l Layout) DayOff(week, f int) int {
	return l.Bins()*features.NumFeatures +
		l.Weeks*features.NumFeatures*l.BinsPerWeek +
		(week*features.NumFeatures+f)*7*l.BinsPerDay
}

// floatBytes reinterprets a float64 slice as raw bytes (little-endian
// hosts only, guarded at Create/Open).
func floatBytes(fs []float64) []byte {
	if len(fs) == 0 {
		return nil
	}
	return unsafe.Slice((*byte)(unsafe.Pointer(&fs[0])), len(fs)*8)
}

// bytesFloats reinterprets raw bytes as a float64 slice. The caller
// guarantees 8-byte alignment and length divisibility (both hold by
// construction: mmap is page-aligned and the header is 104 bytes).
func bytesFloats(b []byte) []float64 {
	if len(b) == 0 {
		return nil
	}
	return unsafe.Slice((*float64)(unsafe.Pointer(&b[0])), len(b)/8)
}

func (k Key) encodeHeader(checksum uint32, payloadFloats int) []byte {
	buf := make([]byte, headerBytes)
	copy(buf, magic)
	fields := []uint64{
		headerVersion,
		EngineVersion,
		k.Seed,
		uint64(k.Users),
		uint64(k.Weeks),
		uint64(k.BinWidth.Microseconds()),
		uint64(k.StartMicros),
		math.Float64bits(k.HeavyFraction),
		math.Float64bits(k.WeeklyTrend),
		uint64(k.BinsPerWeek()),
		uint64(payloadFloats),
		uint64(checksum),
	}
	for i, v := range fields {
		binary.LittleEndian.PutUint64(buf[8+8*i:], v)
	}
	return buf
}

// checkHeader validates a header against the key and returns the
// payload float count and checksum it declares. The checksum comes
// back as the full uint64 field so a flipped bit in its zero padding
// is caught by the comparison, not silently truncated away.
func (k Key) checkHeader(buf []byte) (payloadFloats int, checksum uint64, err error) {
	if len(buf) < headerBytes || string(buf[:8]) != magic {
		return 0, 0, fmt.Errorf("snapshot: bad magic (not a workspace snapshot)")
	}
	field := func(i int) uint64 { return binary.LittleEndian.Uint64(buf[8+8*i:]) }
	checks := []struct {
		name string
		got  uint64
		want uint64
	}{
		{"header version", field(0), headerVersion},
		{"engine version", field(1), EngineVersion},
		{"seed", field(2), k.Seed},
		{"users", field(3), uint64(k.Users)},
		{"weeks", field(4), uint64(k.Weeks)},
		{"bin width", field(5), uint64(k.BinWidth.Microseconds())},
		{"start micros", field(6), uint64(k.StartMicros)},
		{"heavy fraction", field(7), math.Float64bits(k.HeavyFraction)},
		{"weekly trend", field(8), math.Float64bits(k.WeeklyTrend)},
		{"bins per week", field(9), uint64(k.BinsPerWeek())},
	}
	for _, c := range checks {
		if c.got != c.want {
			return 0, 0, fmt.Errorf("snapshot: %s mismatch (file %d, want %d)", c.name, c.got, c.want)
		}
	}
	return int(field(10)), field(11), nil
}

// Writer streams one snapshot to disk: records are appended user by
// user (or shard by shard) and the file becomes visible under its
// content-addressed name only after Finish seals the checksum and
// renames the temporary file into place — a crashed or aborted write
// can never be mistaken for a valid snapshot.
type Writer struct {
	key   Key
	lay   Layout
	f     *os.File
	bw    *bufio.Writer
	crc   uint32
	users int
	tmp   string
	final string
	done  bool

	// Manifest accounting, tracked record by record as users are
	// appended: per-record CRC-32Cs plus the running CRC of each
	// manifest shard (fixed ManifestShardUsers granularity, so every
	// build strategy — single writer, merged parts — produces the
	// identical manifest for the same key).
	recCRCs   []uint32
	shardCRCs []uint32
}

// StaleTempAge is how old an unsealed temp file must be before Create
// sweeps it. Live builds keep their temp file's mtime fresh (the
// buffered writer flushes continuously), so only writers that crashed
// or were killed mid-build ever cross the gate.
const StaleTempAge = time.Hour

// sweepStaleTemps removes leaked temp files of crashed or killed
// writers from a store directory. Every temp this package creates is
// named "ws-…" and carries a ".tmp" marker, so sealed snapshots,
// manifests and shard part files can never match; the age gate keeps
// live concurrent builds (whose temps are freshly written) safe. Best
// effort: sweep errors are ignored, the store stays usable either way.
func sweepStaleTemps(dir string) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return
	}
	cutoff := time.Now().Add(-StaleTempAge)
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() || !strings.HasPrefix(name, "ws-") || !strings.Contains(name, ".tmp") {
			continue
		}
		info, err := e.Info()
		if err != nil || info.ModTime().After(cutoff) {
			continue
		}
		_ = os.Remove(filepath.Join(dir, name))
	}
}

// Create opens a snapshot writer for key under dir (created if
// missing). The caller must either Finish or Abort it.
func Create(dir string, key Key) (*Writer, error) {
	if err := key.validate(); err != nil {
		return nil, err
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("snapshot: %w", err)
	}
	sweepStaleTemps(dir)
	final := key.Path(dir)
	// A per-writer unique temp name: concurrent cold builds of the
	// same key (two goroutines, two processes) must never share a
	// temp file, or they would interleave writes and seal a corrupt
	// snapshot. Whoever renames last wins; both results are
	// byte-identical anyway.
	f, err := os.CreateTemp(dir, key.Filename()+".tmp*")
	if err != nil {
		return nil, fmt.Errorf("snapshot: %w", err)
	}
	w := &Writer{key: key, lay: key.Layout(), f: f,
		bw: bufio.NewWriterSize(f, 1<<20), tmp: f.Name(), final: final}
	// Header placeholder; Finish rewrites it with the checksum.
	if _, err := w.bw.Write(key.encodeHeader(0, w.lay.PayloadFloats())); err != nil {
		w.Abort()
		return nil, fmt.Errorf("snapshot: %w", err)
	}
	return w, nil
}

// Layout returns the writer's payload geometry.
func (w *Writer) Layout() Layout { return w.lay }

// AppendUsers appends whole user records (len must be a multiple of
// Layout().RecordFloats()) in user order.
func (w *Writer) AppendUsers(recs []float64) error {
	rf := w.lay.RecordFloats()
	if len(recs)%rf != 0 {
		return fmt.Errorf("snapshot: AppendUsers got %d floats, not a multiple of the %d-float record", len(recs), rf)
	}
	n := len(recs) / rf
	if w.users+n > w.lay.Users {
		return fmt.Errorf("snapshot: appending %d users past the declared %d", w.users+n, w.lay.Users)
	}
	b := floatBytes(recs)
	w.crc = crc32.Update(w.crc, crcTable, b)
	for i := 0; i < n; i++ {
		rb := b[i*rf*8 : (i+1)*rf*8]
		w.recCRCs = append(w.recCRCs, crc32.Checksum(rb, crcTable))
		si := (w.users + i) / ManifestShardUsers
		if si == len(w.shardCRCs) {
			w.shardCRCs = append(w.shardCRCs, 0)
		}
		w.shardCRCs[si] = crc32.Update(w.shardCRCs[si], crcTable, rb)
	}
	if _, err := w.bw.Write(b); err != nil {
		return fmt.Errorf("snapshot: %w", err)
	}
	w.users += n
	return nil
}

// Finish seals the snapshot: all users must have been appended. It
// flushes, patches the header checksum, syncs and atomically renames
// the file into place.
func (w *Writer) Finish() error {
	if w.done {
		return fmt.Errorf("snapshot: writer already finished")
	}
	if w.users != w.lay.Users {
		w.Abort()
		return fmt.Errorf("snapshot: %d of %d users appended", w.users, w.lay.Users)
	}
	if err := w.bw.Flush(); err != nil {
		w.Abort()
		return fmt.Errorf("snapshot: %w", err)
	}
	if _, err := w.f.WriteAt(w.key.encodeHeader(w.crc, w.lay.PayloadFloats()), 0); err != nil {
		w.Abort()
		return fmt.Errorf("snapshot: %w", err)
	}
	if err := w.f.Sync(); err != nil {
		w.Abort()
		return fmt.Errorf("snapshot: %w", err)
	}
	if err := w.f.Close(); err != nil {
		w.Abort()
		return fmt.Errorf("snapshot: %w", err)
	}
	w.done = true
	if err := os.Rename(w.tmp, w.final); err != nil {
		os.Remove(w.tmp)
		return fmt.Errorf("snapshot: %w", err)
	}
	// The manifest seals after the snapshot so a reader can never see
	// a manifest without its store. A failed manifest write degrades
	// the store to manifest-less (OpenUser errors, full Open still
	// works), which is strictly better than no snapshot at all.
	if err := writeManifest(w.final+manifestSuffix, w.key, w.shardCRCs, w.recCRCs); err != nil {
		return fmt.Errorf("snapshot: manifest: %w", err)
	}
	return nil
}

// Abort discards the partial snapshot. Safe to call after a failed
// Finish or on any error path; never clobbers a sealed file.
func (w *Writer) Abort() {
	if w.done {
		return
	}
	w.done = true
	_ = w.f.Close()
	_ = os.Remove(w.tmp)
}

// Snapshot is an open, validated, memory-mapped workspace snapshot.
// All float views returned from it alias the mapping: they are strictly
// read-only (the pages are mapped PROT_READ — a write faults
// immediately rather than corrupting shared state) and must not be
// used after Close.
type Snapshot struct {
	key     Key
	lay     Layout
	data    []byte // whole mapping (or read fallback)
	payload []float64
	unmap   func() error
}

// Open maps the snapshot addressed by key under dir and fully
// validates it: magic, header/engine versions, every key field, file
// size, and the CRC-32C payload checksum. Any mismatch — a stale
// engine, a truncated write, a flipped bit — returns an error and no
// Snapshot; the caller regenerates instead.
//
// The checksum pass reads the file sequentially through a small
// buffer rather than through the mapping: reading through the mapping
// would fault every page into the process's resident set, while a
// buffered read leaves the bytes in the (reclaimable) page cache and
// keeps the process's peak RSS bounded — the property the sharded
// materializer exists to provide. Mapped pages then fault in lazily,
// and only for the views actually used.
func Open(dir string, key Key) (*Snapshot, error) {
	if err := key.validate(); err != nil {
		return nil, err
	}
	lay := key.Layout()
	path := key.Path(dir)
	f, err := os.Open(path)
	if err != nil {
		return nil, err // fs.ErrNotExist on a cold store
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, fmt.Errorf("snapshot: %w", err)
	}
	wantSize := int64(headerBytes) + int64(lay.PayloadFloats())*8
	if st.Size() != wantSize {
		return nil, fmt.Errorf("snapshot: %s is %d bytes, want %d (truncated or foreign)", path, st.Size(), wantSize)
	}
	var hdr [headerBytes]byte
	if _, err := io.ReadFull(f, hdr[:]); err != nil {
		return nil, fmt.Errorf("snapshot: %w", err)
	}
	payloadFloats, checksum, err := key.checkHeader(hdr[:])
	if err != nil {
		return nil, err
	}
	if payloadFloats != lay.PayloadFloats() {
		return nil, fmt.Errorf("snapshot: payload declares %d floats, layout needs %d", payloadFloats, lay.PayloadFloats())
	}
	crc := uint32(0)
	buf := make([]byte, 1<<20)
	for {
		n, err := f.Read(buf)
		crc = crc32.Update(crc, crcTable, buf[:n])
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("snapshot: %w", err)
		}
	}
	if uint64(crc) != checksum {
		return nil, fmt.Errorf("snapshot: payload checksum %08x != header %08x (corrupt)", crc, checksum)
	}
	data, unmap, err := mapFile(path, int(wantSize))
	if err != nil {
		return nil, fmt.Errorf("snapshot: %w", err)
	}
	return &Snapshot{
		key: key, lay: lay, data: data, unmap: unmap,
		payload: bytesFloats(data[headerBytes:]),
	}, nil
}

// Key returns the key the snapshot was opened (and validated) under.
func (s *Snapshot) Key() Key { return s.key }

// Layout returns the payload geometry.
func (s *Snapshot) Layout() Layout { return s.lay }

// checkUser validates a user index against the store's geometry. The
// panic names the index and the full geometry instead of letting an
// out-of-range index surface as an opaque slice-bounds fault deep in
// record arithmetic (a hidsd -user beyond the store's population used
// to die exactly that way).
func (l Layout) checkUser(u int) {
	if u < 0 || u >= l.Users {
		panic(fmt.Sprintf("snapshot: user %d outside store population [0, %d) (weeks=%d binsPerWeek=%d)",
			u, l.Users, l.Weeks, l.BinsPerWeek))
	}
}

// checkWeekFeature validates (week, feature) coordinates against the
// store's geometry with the same descriptive-panic contract.
func (l Layout) checkWeekFeature(week, f int) {
	if week < 0 || week >= l.Weeks {
		panic(fmt.Sprintf("snapshot: week %d outside store range [0, %d) (users=%d binsPerWeek=%d)",
			week, l.Weeks, l.Users, l.BinsPerWeek))
	}
	if f < 0 || f >= features.NumFeatures {
		panic(fmt.Sprintf("snapshot: feature %d outside [0, %d)", f, features.NumFeatures))
	}
}

// User returns user u's whole record as a zero-copy float view.
func (s *Snapshot) User(u int) []float64 {
	s.lay.checkUser(u)
	rf := s.lay.RecordFloats()
	return s.payload[u*rf : (u+1)*rf : (u+1)*rf]
}

// Rows returns user u's matrix rows as a zero-copy view of the
// mapping (bin-major, canonical feature order).
func (s *Snapshot) Rows(u int) [][features.NumFeatures]float64 {
	rec := s.User(u)
	bins := s.lay.Bins()
	return unsafe.Slice((*[features.NumFeatures]float64)(unsafe.Pointer(&rec[0])), bins)
}

// SortedColumn returns user u's sorted (week, feature) column.
func (s *Snapshot) SortedColumn(u, week, f int) []float64 {
	s.lay.checkWeekFeature(week, f)
	rec := s.User(u)
	off := s.lay.SortedOff(week, f)
	return rec[off : off+s.lay.BinsPerWeek : off+s.lay.BinsPerWeek]
}

// DayColumns returns user u's (week, feature) day view: 7 per-day
// sorted slices sharing one contiguous run of the mapping.
func (s *Snapshot) DayColumns(u, week, f int) [][]float64 {
	s.lay.checkWeekFeature(week, f)
	rec := s.User(u)
	off := s.lay.DayOff(week, f)
	bpd := s.lay.BinsPerDay
	days := make([][]float64, 7)
	for d := 0; d < 7; d++ {
		lo := off + d*bpd
		days[d] = rec[lo : lo+bpd : lo+bpd]
	}
	return days
}

// DropUserRange releases the mapped pages holding users [lo, hi)
// from the process's resident set. Streaming evaluators call it after
// finishing a shard so peak RSS tracks one shard's working set instead
// of accumulating the whole population; the data stays valid — a later
// access simply refaults from the file. No-op on heap-backed
// (non-mmap) snapshots, on a closed snapshot, and for empty ranges.
//
// Only whole pages strictly inside the range are dropped (the range is
// rounded inward to page boundaries), so records straddling the
// range's edges are never victimized while a neighboring shard may
// still be reading them.
func (s *Snapshot) DropUserRange(lo, hi int) {
	if !mmapBacked || s.data == nil {
		return
	}
	if lo < 0 {
		lo = 0
	}
	if hi > s.lay.Users {
		hi = s.lay.Users
	}
	if hi <= lo {
		return
	}
	recBytes := s.lay.RecordFloats() * 8
	start := headerBytes + lo*recBytes
	end := headerBytes + hi*recBytes
	page := os.Getpagesize()
	start = (start + page - 1) / page * page // round up
	end = end / page * page                  // round down
	if end <= start {
		return
	}
	dropPages(s.data[start:end])
}

// Close unmaps the snapshot. Every view handed out becomes invalid:
// callers must ensure no goroutine still reads them (the Workspace
// wrapper documents the same rule).
func (s *Snapshot) Close() error {
	if s.unmap == nil {
		return nil
	}
	u := s.unmap
	s.unmap = nil
	s.data, s.payload = nil, nil
	return u()
}
