//go:build !unix

package snapshot

import "os"

// mmapBacked is false here: views are heap slices, so dropping pages
// would destroy data rather than release it.
const mmapBacked = false

// mapFile on platforms without syscall.Mmap falls back to reading the
// whole file into memory. The views are then plain heap slices —
// still safe, just not zero-copy; Close is a no-op release.
func mapFile(path string, size int) (data []byte, unmap func() error, err error) {
	data, err = os.ReadFile(path)
	if err != nil {
		return nil, nil, err
	}
	return data, func() error { return nil }, nil
}
