package snapshot

import (
	"bytes"
	"errors"
	"io/fs"
	"os"
	"testing"
	"time"

	"repro/internal/xrand"
)

// testPayload returns the same deterministic payload fillTestRecords
// seals, without writing anything.
func testPayload(key Key) []float64 {
	lay := key.Layout()
	payload := make([]float64, lay.PayloadFloats())
	r := xrand.New(41)
	for i := range payload {
		payload[i] = float64(r.Intn(1 << 20))
	}
	return payload
}

// sealParts writes the payload's user ranges as sealed part files.
func sealParts(t *testing.T, dir string, key Key, payload []float64, cuts []int) {
	t.Helper()
	rf := key.Layout().RecordFloats()
	for i := 0; i+1 < len(cuts); i++ {
		lo, hi := cuts[i], cuts[i+1]
		w, err := CreateShard(dir, key, lo, hi)
		if err != nil {
			t.Fatal(err)
		}
		if err := w.AppendUsers(payload[lo*rf : hi*rf]); err != nil {
			t.Fatal(err)
		}
		if err := w.Finish(); err != nil {
			t.Fatal(err)
		}
	}
}

// TestMergedShardsByteIdentical is the central determinism pin: the
// same payload built as (a) one Writer and (b) sealed parts merged by
// MergeShards must produce byte-identical .snap AND .manifest files —
// including a ragged last shard and part boundaries that do not align
// with the manifest's integrity shards.
func TestMergedShardsByteIdentical(t *testing.T) {
	key := testKey(ManifestShardUsers+13, 1, 6*time.Hour)
	singleDir, mergedDir := t.TempDir(), t.TempDir()
	payload := fillTestRecords(t, singleDir, key)

	sealParts(t, mergedDir, key, payload, []int{0, 40, ManifestShardUsers + 1, key.Users})
	n, err := MergeShards(mergedDir, key)
	if err != nil {
		t.Fatal(err)
	}
	if n != 3 {
		t.Fatalf("merged %d parts, want 3", n)
	}
	for _, suffix := range []string{"", manifestSuffix} {
		a, err := os.ReadFile(key.Path(singleDir) + suffix)
		if err != nil {
			t.Fatal(err)
		}
		b, err := os.ReadFile(key.Path(mergedDir) + suffix)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(a, b) {
			t.Fatalf("single-writer and merged %q files differ (%d vs %d bytes)", ".snap"+suffix, len(a), len(b))
		}
	}
	// The consumed parts are gone; the merged store serves both paths.
	parts, err := findParts(mergedDir, key)
	if err != nil {
		t.Fatal(err)
	}
	if len(parts) != 0 {
		t.Fatalf("%d part files survived the merge", len(parts))
	}
	s, err := Open(mergedDir, key)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	rf := key.Layout().RecordFloats()
	for _, u := range []int{0, 39, 40, ManifestShardUsers, key.Users - 1} {
		rec, err := OpenUser(mergedDir, key, u)
		if err != nil {
			t.Fatalf("OpenUser(%d) on merged store: %v", u, err)
		}
		if rec.Record()[3] != payload[u*rf+3] {
			t.Fatalf("merged record %d diverges from payload", u)
		}
	}
}

func TestCreateShardValidatesRange(t *testing.T) {
	dir := t.TempDir()
	key := testKey(10, 1, 6*time.Hour)
	for _, r := range [][2]int{{-1, 5}, {5, 5}, {6, 4}, {0, 11}} {
		if w, err := CreateShard(dir, key, r[0], r[1]); err == nil {
			w.Abort()
			t.Fatalf("CreateShard accepted range [%d, %d)", r[0], r[1])
		}
	}
}

func TestShardFinishRequiresFullRange(t *testing.T) {
	dir := t.TempDir()
	key := testKey(10, 1, 6*time.Hour)
	w, err := CreateShard(dir, key, 2, 6)
	if err != nil {
		t.Fatal(err)
	}
	rf := w.Layout().RecordFloats()
	if err := w.AppendUsers(make([]float64, rf)); err != nil {
		t.Fatal(err)
	}
	if err := w.AppendUsers(make([]float64, 4*rf)); err == nil {
		t.Fatal("appended past the shard range")
	}
	if err := w.Finish(); err == nil {
		t.Fatal("Finish sealed a part with 1 of 4 users")
	}
	if _, err := os.Stat(key.PartPath(dir, 2, 6)); !errors.Is(err, fs.ErrNotExist) {
		t.Fatalf("partial part became visible: %v", err)
	}
}

func TestMergeRejectsBadTiling(t *testing.T) {
	key := testKey(12, 1, 6*time.Hour)
	payload := testPayload(key)
	for name, cuts := range map[string][]int{
		"gap":          {0, 4, 8}, // then a part [9, 12): hole at 8
		"missing tail": {0, 6},
		"missing head": {4, 12},
	} {
		t.Run(name, func(t *testing.T) {
			dir := t.TempDir()
			sealParts(t, dir, key, payload, cuts)
			if name == "gap" {
				sealParts(t, dir, key, payload, []int{9, 12})
			}
			if _, err := MergeShards(dir, key); err == nil {
				t.Fatal("MergeShards accepted parts that do not tile the population")
			} else {
				t.Log(err)
			}
			if _, err := os.Stat(key.Path(dir)); !errors.Is(err, fs.ErrNotExist) {
				t.Fatalf("failed merge left a sealed snapshot: %v", err)
			}
		})
	}
	if _, err := MergeShards(t.TempDir(), key); err == nil {
		t.Fatal("MergeShards accepted an empty directory")
	}
}

func TestMergeRejectsCorruptPart(t *testing.T) {
	dir := t.TempDir()
	key := testKey(8, 1, 6*time.Hour)
	payload := testPayload(key)
	sealParts(t, dir, key, payload, []int{0, 4, 8})
	corrupt(t, key.PartPath(dir, 4, 8), func(b []byte) []byte {
		b[partHdrBytes+21] ^= 0x01
		return b
	})
	if _, err := MergeShards(dir, key); err == nil {
		t.Fatal("MergeShards accepted a corrupt part")
	}
	if _, err := os.Stat(key.Path(dir)); !errors.Is(err, fs.ErrNotExist) {
		t.Fatalf("failed merge left a sealed snapshot: %v", err)
	}
}
