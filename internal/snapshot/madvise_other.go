//go:build !linux

package snapshot

// dropPages is a no-op where madvise is unavailable; streaming
// evaluation still works, the kernel just reclaims pages on its own
// schedule.
func dropPages(b []byte) {}
