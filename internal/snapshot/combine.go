package snapshot

// CRC-32C combination: given crc(A), crc(B) and len(B), compute
// crc(A ∥ B) without touching a byte of either buffer. Appending len2
// zero bytes to a message multiplies its CRC register by x^(8·len2) in
// GF(2)[x]/P — a linear operator over the 32 register bits — so the
// concatenation identity is
//
//	crc(A ∥ B) = shift_len2(crc(A)) XOR crc(B)
//
// with shift_len2 represented as a 32×32 bit matrix built by repeated
// squaring (the classic zlib crc32_combine construction, instantiated
// for the Castagnoli polynomial this package checksums with). The
// pre/post inversion of the presented CRC cancels through the XOR the
// same way it does in zlib, so the identity holds directly on the
// values hash/crc32 returns.
//
// The splice merge leans on one extra fact: snapshot records all share
// one byte length, so the operator for that length can be built once
// (O(log len) squarings) and every subsequent fold is a single 32-word
// matrix-vector apply — folding a 100k-record CRC table into manifest
// shard CRCs costs ~32 XORs per record instead of re-reading ~100 KB.

// castPolyReflected is the Castagnoli polynomial in the reflected bit
// order hash/crc32's little-endian algorithm uses.
const castPolyReflected = 0x82f63b78

// crcShift is the precomputed "append N zero bytes" operator.
type crcShift struct {
	mat [32]uint32
}

// gf2Apply multiplies the matrix by a bit vector.
func gf2Apply(mat *[32]uint32, vec uint32) uint32 {
	var sum uint32
	for i := 0; vec != 0; vec >>= 1 {
		if vec&1 != 0 {
			sum ^= mat[i]
		}
		i++
	}
	return sum
}

// gf2MatMul composes two operators: out = a ∘ b.
func gf2MatMul(a, b *[32]uint32) [32]uint32 {
	var out [32]uint32
	for n := 0; n < 32; n++ {
		out[n] = gf2Apply(a, b[n])
	}
	return out
}

// makeCRCShift builds the operator for appending len2 zero bytes.
func makeCRCShift(len2 int64) crcShift {
	// Identity.
	var res [32]uint32
	for n := 0; n < 32; n++ {
		res[n] = 1 << n
	}
	if len2 <= 0 {
		return crcShift{mat: res}
	}
	// One-bit shift operator in the reflected domain...
	var cur [32]uint32
	cur[0] = castPolyReflected
	for n := 1; n < 32; n++ {
		cur[n] = 1 << (n - 1)
	}
	// ...squared three times is the one-zero-byte operator x^8.
	for i := 0; i < 3; i++ {
		cur = gf2MatMul(&cur, &cur)
	}
	// Square-and-multiply over the byte count.
	for {
		if len2&1 != 0 {
			res = gf2MatMul(&cur, &res)
		}
		len2 >>= 1
		if len2 == 0 {
			break
		}
		cur = gf2MatMul(&cur, &cur)
	}
	return crcShift{mat: res}
}

// combine folds the CRC of a following buffer (whose length the shift
// was built for) onto the CRC of everything before it.
func (s *crcShift) combine(crc1, crc2 uint32) uint32 {
	return gf2Apply(&s.mat, crc1) ^ crc2
}

// crc32Combine returns crc(A ∥ B) from crc(A)=crc1, crc(B)=crc2 and
// len(B)=len2 — the one-shot form for heterogeneous lengths (part
// payloads); repeated folds over one length should build the crcShift
// once instead.
func crc32Combine(crc1, crc2 uint32, len2 int64) uint32 {
	if len2 <= 0 {
		return crc1
	}
	s := makeCRCShift(len2)
	return s.combine(crc1, crc2)
}
