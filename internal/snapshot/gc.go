package snapshot

import (
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"
)

// DefaultPartMaxAge is how old an unmerged part (or a quarantined
// *.bad corpse) must be before GC treats it as abandoned. A day is
// far beyond any live build's dispatch-to-merge window while still
// letting an interrupted overnight build resume the next morning.
const DefaultPartMaxAge = 24 * time.Hour

// GCOptions bounds a store directory. Zero-valued limits are "no
// limit" — GC(dir, GCOptions{}) removes nothing but orphans and
// abandoned parts past the default age.
type GCOptions struct {
	// KeepLatest keeps at most N newest sealed snapshots (by mtime).
	KeepLatest int
	// MaxBytes caps the total bytes of kept sealed snapshots
	// (payload files only; their small manifests ride along).
	MaxBytes int64
	// PartMaxAge ages out pending part files and quarantined *.bad
	// files whose build was abandoned: any such file older than this
	// is removed even though its snapshot has not sealed (a resumable
	// build younger than the age keeps its parts). 0 means
	// DefaultPartMaxAge.
	PartMaxAge time.Duration
	// DryRun reports what would be removed without removing it.
	DryRun bool
}

// GCStats reports what a GC pass kept and reclaimed.
type GCStats struct {
	Kept       int   // sealed snapshots retained
	Removed    int   // files removed (snapshots, manifests, parts)
	FreedBytes int64 // bytes reclaimed (or reclaimable, under DryRun)
}

// GC enforces a retention policy on a snapshot store directory:
// sealed snapshots are kept newest-first while they fit both the
// KeepLatest count and the MaxBytes budget, and evicted ones are
// removed together with their manifest sidecars. Orphans go
// regardless of policy: manifests whose snapshot is gone, sealed part
// files whose merged snapshot already exists (a crashed coordinator's
// leftovers), parts of a still-unmerged build older than PartMaxAge
// (an abandoned build — younger parts are kept so interrupted builds
// stay resumable), and quarantined *.bad files once their snapshot
// sealed or they pass the same age gate. Stale temp files are
// Create's job, not GC's.
func GC(dir string, opts GCOptions) (GCStats, error) {
	var st GCStats
	ents, err := os.ReadDir(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return st, nil
		}
		return st, fmt.Errorf("snapshot: %w", err)
	}
	type snapInfo struct {
		name  string
		size  int64
		mtime int64
	}
	var snaps []snapInfo
	have := make(map[string]bool)
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() || !strings.HasPrefix(name, "ws-") || strings.Contains(name, ".tmp") {
			continue
		}
		if strings.HasSuffix(name, ".snap") {
			info, err := e.Info()
			if err != nil {
				continue
			}
			snaps = append(snaps, snapInfo{name: name, size: info.Size(), mtime: info.ModTime().UnixNano()})
			have[name] = true
		}
	}
	remove := func(name string) {
		path := filepath.Join(dir, name)
		info, err := os.Stat(path)
		if err != nil {
			return
		}
		st.Removed++
		st.FreedBytes += info.Size()
		if !opts.DryRun {
			_ = os.Remove(path)
		}
	}

	// Policy pass: newest snapshots first, evict once either cap trips.
	sort.Slice(snaps, func(i, j int) bool { return snaps[i].mtime > snaps[j].mtime })
	var kept int64
	for i, s := range snaps {
		overCount := opts.KeepLatest > 0 && i >= opts.KeepLatest
		overBytes := opts.MaxBytes > 0 && kept+s.size > opts.MaxBytes
		if overCount || overBytes {
			remove(s.name)
			remove(s.name + manifestSuffix)
			delete(have, s.name)
			continue
		}
		kept += s.size
		st.Kept++
	}

	// Orphan pass: manifests without a snapshot; parts whose snapshot
	// already sealed (the merge that made it deletes parts on success,
	// so surviving ones are crash leftovers); parts and quarantined
	// *.bad corpses whose build was abandoned (older than the age
	// gate with no sealed snapshot in sight — a live or resumable
	// build's parts are younger than that by construction).
	partAge := opts.PartMaxAge
	if partAge <= 0 {
		partAge = DefaultPartMaxAge
	}
	cutoff := time.Now().Add(-partAge)
	abandoned := func(e os.DirEntry) bool {
		info, err := e.Info()
		return err == nil && info.ModTime().Before(cutoff)
	}
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() || !strings.HasPrefix(name, "ws-") || strings.Contains(name, ".tmp") {
			continue
		}
		switch {
		case strings.HasSuffix(name, manifestSuffix):
			if !have[strings.TrimSuffix(name, manifestSuffix)] {
				remove(name)
			}
		case strings.Contains(name, ".snap.part-"):
			// Pending parts and *.bad corpses alike: gone once the
			// merged snapshot exists, or once the build is abandoned.
			base := name[:strings.Index(name, ".part-")]
			if have[base] || abandoned(e) {
				remove(name)
			}
		}
	}
	return st, nil
}
