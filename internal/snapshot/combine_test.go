package snapshot

import (
	"hash/crc32"
	"math/rand"
	"testing"
)

// TestCRC32Combine pins the GF(2) combine against hash/crc32 ground
// truth over random buffers of awkward lengths, including empty sides.
func TestCRC32Combine(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	lens := []int{0, 1, 2, 7, 8, 63, 64, 100, 4096, 12345}
	for _, la := range lens {
		for _, lb := range lens {
			a := make([]byte, la)
			b := make([]byte, lb)
			rng.Read(a)
			rng.Read(b)
			want := crc32.Checksum(append(append([]byte{}, a...), b...), crcTable)
			got := crc32Combine(crc32.Checksum(a, crcTable), crc32.Checksum(b, crcTable), int64(lb))
			if got != want {
				t.Fatalf("combine(len %d, len %d) = %08x, want %08x", la, lb, got, want)
			}
		}
	}
}

// TestCRCShiftFold pins the precomputed fixed-length operator over a
// many-record fold — the exact shape the splice merge uses to rebuild
// manifest shard CRCs from per-record CRCs.
func TestCRCShiftFold(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	const recLen = 776 // deliberately not a power of two
	shift := makeCRCShift(recLen)
	var whole []byte
	crc := uint32(0)
	for i := 0; i < 50; i++ {
		rec := make([]byte, recLen)
		rng.Read(rec)
		whole = append(whole, rec...)
		crc = shift.combine(crc, crc32.Checksum(rec, crcTable))
	}
	if want := crc32.Checksum(whole, crcTable); crc != want {
		t.Fatalf("folded CRC %08x != whole-buffer %08x", crc, want)
	}
}
