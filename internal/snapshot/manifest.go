package snapshot

// The manifest is the integrity sidecar of a sealed snapshot: a small
// "<name>.snap.manifest" file describing the payload as fixed-size
// shards of ManifestShardUsers records, each with its own CRC-32C,
// plus an optional per-record CRC table. It exists so a reader can
// validate and fetch ONE user's record in O(record) — OpenUser checks
// the manifest's self-CRC, the snapshot header, and the containing
// shard's checksum, never touching any other shard's payload bytes —
// and so independently built shards can be verified piecemeal.
//
// # Manifest layout
//
// All integers little-endian; the whole file is self-checksummed:
//
//	offset 0    magic "RPWSMAN1" (8 bytes)
//	offset 8    header: 13 × uint64
//	              fields 0–9: identical to the snapshot header
//	              (headerVersion … binsPerWeek), then payloadFloats,
//	              shardUsers (= ManifestShardUsers), flags
//	              (bit 0: per-record CRC table present)
//	then        ceil(users/shardUsers) × uint32 shard CRC-32Cs
//	then        users × uint32 record CRC-32Cs (iff flag bit 0)
//	then        uint32 self-CRC-32C of everything above
//
// The shard granularity is a package constant, deliberately
// independent of how the snapshot was built (single writer, in-process
// pool, merged multi-process parts): every build strategy emits a
// byte-identical manifest for the same key.

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
	"path/filepath"
	"unsafe"

	"repro/internal/features"
)

const (
	manifestMagic  = "RPWSMAN1"
	manifestSuffix = ".manifest"

	manifestFields   = 13
	manifestHdrBytes = 8 + manifestFields*8

	// manifestFlagRecordCRCs marks a manifest carrying the per-record
	// CRC table (4 bytes/user); Writer.Finish always emits it.
	manifestFlagRecordCRCs = 1 << 0
)

// ManifestShardUsers is the manifest's integrity granularity: users
// per checksummed shard. 128 keeps the validated span of an OpenUser
// read ~156× smaller than the full payload at 20k users while the
// manifest itself stays a few KB.
const ManifestShardUsers = 128

// ManifestShards returns the shard count for a population.
func ManifestShards(users int) int {
	return (users + ManifestShardUsers - 1) / ManifestShardUsers
}

// ManifestPath returns the manifest sidecar path of the key under dir.
func (k Key) ManifestPath(dir string) string { return k.Path(dir) + manifestSuffix }

func encodeManifest(key Key, shardCRCs, recCRCs []uint32) []byte {
	lay := key.Layout()
	var flags uint64
	if len(recCRCs) > 0 {
		flags |= manifestFlagRecordCRCs
	}
	buf := make([]byte, 0, manifestHdrBytes+4*len(shardCRCs)+4*len(recCRCs)+4)
	buf = append(buf, manifestMagic...)
	var scratch [8]byte
	put := func(v uint64) {
		binary.LittleEndian.PutUint64(scratch[:], v)
		buf = append(buf, scratch[:]...)
	}
	put32 := func(v uint32) {
		binary.LittleEndian.PutUint32(scratch[:4], v)
		buf = append(buf, scratch[:4]...)
	}
	put(headerVersion)
	put(EngineVersion)
	put(key.Seed)
	put(uint64(key.Users))
	put(uint64(key.Weeks))
	put(uint64(key.BinWidth.Microseconds()))
	put(uint64(key.StartMicros))
	put(math.Float64bits(key.HeavyFraction))
	put(math.Float64bits(key.WeeklyTrend))
	put(uint64(key.BinsPerWeek()))
	put(uint64(lay.PayloadFloats()))
	put(ManifestShardUsers)
	put(flags)
	for _, c := range shardCRCs {
		put32(c)
	}
	for _, c := range recCRCs {
		put32(c)
	}
	put32(crc32.Checksum(buf, crcTable))
	return buf
}

// writeManifest seals a manifest next to its snapshot with the same
// temp-file + atomic-rename discipline the snapshot itself uses (the
// temp name keeps the "ws-…tmp…" shape sweepStaleTemps recognizes).
func writeManifest(path string, key Key, shardCRCs, recCRCs []uint32) error {
	dir, base := filepath.Split(path)
	f, err := os.CreateTemp(dir, base+".tmp*")
	if err != nil {
		return err
	}
	tmp := f.Name()
	fail := func(err error) error {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if _, err := f.Write(encodeManifest(key, shardCRCs, recCRCs)); err != nil {
		return fail(err)
	}
	if err := f.Sync(); err != nil {
		return fail(err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	return nil
}

// readManifest loads and fully validates a manifest: magic, self-CRC,
// every key field, shard granularity and table sizes. It returns the
// shard CRC table and the per-record CRC table (nil when absent).
func readManifest(path string, key Key) (shardCRCs, recCRCs []uint32, err error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return nil, nil, err // fs.ErrNotExist on a manifest-less store
	}
	if len(buf) < manifestHdrBytes+4 || string(buf[:8]) != manifestMagic {
		return nil, nil, fmt.Errorf("snapshot: %s: bad manifest magic", path)
	}
	body, tail := buf[:len(buf)-4], buf[len(buf)-4:]
	if got, want := crc32.Checksum(body, crcTable), binary.LittleEndian.Uint32(tail); got != want {
		return nil, nil, fmt.Errorf("snapshot: manifest self-checksum %08x != trailer %08x (corrupt)", got, want)
	}
	field := func(i int) uint64 { return binary.LittleEndian.Uint64(buf[8+8*i:]) }
	lay := key.Layout()
	checks := []struct {
		name string
		got  uint64
		want uint64
	}{
		{"header version", field(0), headerVersion},
		{"engine version", field(1), EngineVersion},
		{"seed", field(2), key.Seed},
		{"users", field(3), uint64(key.Users)},
		{"weeks", field(4), uint64(key.Weeks)},
		{"bin width", field(5), uint64(key.BinWidth.Microseconds())},
		{"start micros", field(6), uint64(key.StartMicros)},
		{"heavy fraction", field(7), math.Float64bits(key.HeavyFraction)},
		{"weekly trend", field(8), math.Float64bits(key.WeeklyTrend)},
		{"bins per week", field(9), uint64(key.BinsPerWeek())},
		{"payload floats", field(10), uint64(lay.PayloadFloats())},
		{"shard granularity", field(11), ManifestShardUsers},
	}
	for _, c := range checks {
		if c.got != c.want {
			return nil, nil, fmt.Errorf("snapshot: manifest %s mismatch (file %d, want %d)", c.name, c.got, c.want)
		}
	}
	flags := field(12)
	nShards := ManifestShards(key.Users)
	wantLen := manifestHdrBytes + 4*nShards + 4
	if flags&manifestFlagRecordCRCs != 0 {
		wantLen += 4 * key.Users
	}
	if len(buf) != wantLen {
		return nil, nil, fmt.Errorf("snapshot: manifest is %d bytes, want %d (truncated or foreign)", len(buf), wantLen)
	}
	tables := buf[manifestHdrBytes : len(buf)-4]
	shardCRCs = make([]uint32, nShards)
	for i := range shardCRCs {
		shardCRCs[i] = binary.LittleEndian.Uint32(tables[4*i:])
	}
	if flags&manifestFlagRecordCRCs != 0 {
		rec := tables[4*nShards:]
		recCRCs = make([]uint32, key.Users)
		for i := range recCRCs {
			recCRCs[i] = binary.LittleEndian.Uint32(rec[4*i:])
		}
	}
	return shardCRCs, recCRCs, nil
}

// UserRecord is one user's record fetched by OpenUser: an owned copy,
// valid indefinitely, with the same view accessors as Snapshot minus
// the mapping (nothing to Close).
type UserRecord struct {
	key Key
	lay Layout
	u   int
	rec []float64
}

// Key returns the key the record was opened (and validated) under.
func (r *UserRecord) Key() Key { return r.key }

// Layout returns the payload geometry of the record's store.
func (r *UserRecord) Layout() Layout { return r.lay }

// User returns the record's user index.
func (r *UserRecord) User() int { return r.u }

// Record returns the whole record (rows ∥ sorted columns ∥ day views).
func (r *UserRecord) Record() []float64 { return r.rec }

// Rows returns the matrix rows (bin-major, canonical feature order).
func (r *UserRecord) Rows() [][features.NumFeatures]float64 {
	return unsafe.Slice((*[features.NumFeatures]float64)(unsafe.Pointer(&r.rec[0])), r.lay.Bins())
}

// SortedColumn returns the sorted (week, feature) column.
func (r *UserRecord) SortedColumn(week, f int) []float64 {
	r.lay.checkWeekFeature(week, f)
	off := r.lay.SortedOff(week, f)
	return r.rec[off : off+r.lay.BinsPerWeek : off+r.lay.BinsPerWeek]
}

// DayColumns returns the (week, feature) day view: 7 per-day sorted
// slices sharing one contiguous run of the record.
func (r *UserRecord) DayColumns(week, f int) [][]float64 {
	r.lay.checkWeekFeature(week, f)
	off := r.lay.DayOff(week, f)
	bpd := r.lay.BinsPerDay
	days := make([][]float64, 7)
	for d := 0; d < 7; d++ {
		lo := off + d*bpd
		days[d] = r.rec[lo : lo+bpd : lo+bpd]
	}
	return days
}

// OpenUser reads one user's record in O(record work, one-shard I/O):
// it validates the manifest (self-CRC + every key field), the snapshot
// header and file size, then streams ONLY the manifest shard
// containing u — verifying that shard's CRC-32C and, when the manifest
// carries the per-record table, the record's own CRC — without mapping
// the file or touching any other shard's payload bytes. A store
// without a manifest (pre-manifest builds) returns an error; callers
// fall back to the fully validated Open.
//
// Unlike the Snapshot accessors, which panic on programmer-error
// indices into an already-opened store, OpenUser is the front door for
// externally supplied user IDs (hidsd -host), so an out-of-range u is
// an error naming the index and the store's geometry.
func OpenUser(dir string, key Key, u int) (*UserRecord, error) {
	if err := key.validate(); err != nil {
		return nil, err
	}
	lay := key.Layout()
	if u < 0 || u >= lay.Users {
		return nil, fmt.Errorf("snapshot: user %d outside store population [0, %d) (weeks=%d binsPerWeek=%d)",
			u, lay.Users, lay.Weeks, lay.BinsPerWeek)
	}
	path := key.Path(dir)
	shardCRCs, recCRCs, err := readManifest(path+manifestSuffix, key)
	if err != nil {
		return nil, err
	}
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, fmt.Errorf("snapshot: %w", err)
	}
	rf := lay.RecordFloats()
	wantSize := int64(headerBytes) + int64(lay.PayloadFloats())*8
	if st.Size() != wantSize {
		return nil, fmt.Errorf("snapshot: %s is %d bytes, want %d (truncated or foreign)", path, st.Size(), wantSize)
	}
	var hdr [headerBytes]byte
	if _, err := io.ReadFull(f, hdr[:]); err != nil {
		return nil, fmt.Errorf("snapshot: %w", err)
	}
	payloadFloats, _, err := key.checkHeader(hdr[:])
	if err != nil {
		return nil, err
	}
	if payloadFloats != lay.PayloadFloats() {
		return nil, fmt.Errorf("snapshot: payload declares %d floats, layout needs %d", payloadFloats, lay.PayloadFloats())
	}
	si := u / ManifestShardUsers
	lo := si * ManifestShardUsers
	hi := lo + ManifestShardUsers
	if hi > lay.Users {
		hi = lay.Users
	}
	if _, err := f.Seek(int64(headerBytes)+int64(lo)*int64(rf)*8, io.SeekStart); err != nil {
		return nil, fmt.Errorf("snapshot: %w", err)
	}
	br := bufio.NewReaderSize(f, 1<<20)
	rec := make([]float64, rf)
	scratch := make([]float64, rf)
	crc := uint32(0)
	for idx := lo; idx < hi; idx++ {
		dst := scratch
		if idx == u {
			dst = rec
		}
		b := floatBytes(dst)
		if _, err := io.ReadFull(br, b); err != nil {
			return nil, fmt.Errorf("snapshot: %w", err)
		}
		crc = crc32.Update(crc, crcTable, b)
	}
	if crc != shardCRCs[si] {
		return nil, fmt.Errorf("snapshot: shard %d (users [%d, %d)) checksum %08x != manifest %08x (corrupt)",
			si, lo, hi, crc, shardCRCs[si])
	}
	if recCRCs != nil {
		if got := crc32.Checksum(floatBytes(rec), crcTable); got != recCRCs[u] {
			return nil, fmt.Errorf("snapshot: user %d record checksum %08x != manifest %08x (corrupt)", u, got, recCRCs[u])
		}
	}
	return &UserRecord{key: key, lay: lay, u: u, rec: rec}, nil
}
