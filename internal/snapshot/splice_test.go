package snapshot

import (
	"bytes"
	"encoding/binary"
	"errors"
	"hash/crc32"
	"io/fs"
	"math"
	"os"
	"testing"
	"time"
)

// TestSpliceAndStreamingMergesByteIdentical pins the three build
// strategies against each other: one Writer, the splice merge, and
// the streaming (replay-through-a-Writer) merge must seal
// byte-identical .snap AND .manifest files, including part boundaries
// that cross the manifest's 128-user integrity shards.
func TestSpliceAndStreamingMergesByteIdentical(t *testing.T) {
	key := testKey(ManifestShardUsers+29, 1, 6*time.Hour)
	singleDir, spliceDir, streamDir := t.TempDir(), t.TempDir(), t.TempDir()
	payload := fillTestRecords(t, singleDir, key)

	cuts := []int{0, 31, ManifestShardUsers + 2, key.Users}
	sealParts(t, spliceDir, key, payload, cuts)
	sealParts(t, streamDir, key, payload, cuts)
	if n, err := MergeShards(spliceDir, key); err != nil || n != 3 {
		t.Fatalf("MergeShards = %d, %v", n, err)
	}
	if n, err := MergeShardsStreaming(streamDir, key); err != nil || n != 3 {
		t.Fatalf("MergeShardsStreaming = %d, %v", n, err)
	}
	for _, suffix := range []string{"", manifestSuffix} {
		want, err := os.ReadFile(key.Path(singleDir) + suffix)
		if err != nil {
			t.Fatal(err)
		}
		for name, dir := range map[string]string{"splice": spliceDir, "streaming": streamDir} {
			got, err := os.ReadFile(key.Path(dir) + suffix)
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(want, got) {
				t.Fatalf("%s merge %q differs from single writer (%d vs %d bytes)", name, ".snap"+suffix, len(got), len(want))
			}
		}
	}
	// Both merged stores open and validate end to end.
	for _, dir := range []string{spliceDir, streamDir} {
		s, err := Open(dir, key)
		if err != nil {
			t.Fatal(err)
		}
		s.Close()
	}
}

// partTableOff returns the file offset of a part's record-CRC table.
func partTableOff(key Key, lo, hi int) int {
	return partHdrBytes + (hi-lo)*key.Layout().RecordFloats()*8
}

// TestMergeRejectsCorruptTable flips a bit in a part's record-CRC
// table: both merges must refuse to seal.
func TestMergeRejectsCorruptTable(t *testing.T) {
	key := testKey(8, 1, 6*time.Hour)
	payload := testPayload(key)
	for name, merge := range map[string]func(string, Key) (int, error){
		"splice":    MergeShards,
		"streaming": MergeShardsStreaming,
	} {
		t.Run(name, func(t *testing.T) {
			dir := t.TempDir()
			sealParts(t, dir, key, payload, []int{0, 4, 8})
			corrupt(t, key.PartPath(dir, 0, 4), func(b []byte) []byte {
				b[partTableOff(key, 0, 4)+2] ^= 0x10
				return b
			})
			if _, err := merge(dir, key); err == nil {
				t.Fatal("merge accepted a corrupt record-CRC table")
			} else {
				t.Log(err)
			}
			if _, err := os.Stat(key.Path(dir)); !errors.Is(err, fs.ErrNotExist) {
				t.Fatalf("failed merge left a sealed snapshot: %v", err)
			}
		})
	}
}

// TestMergeRejectsTablePayloadSkew forges a part whose table is
// internally consistent (its own checksum matches) but disagrees with
// the payload: the splice's fold-vs-payload cross-check must catch it
// rather than sealing a manifest derived from the wrong record CRCs.
func TestMergeRejectsTablePayloadSkew(t *testing.T) {
	key := testKey(8, 1, 6*time.Hour)
	payload := testPayload(key)
	dir := t.TempDir()
	sealParts(t, dir, key, payload, []int{0, 4, 8})
	corrupt(t, key.PartPath(dir, 4, 8), func(b []byte) []byte {
		// Swap two table entries and re-seal the table's own checksum:
		// tableCRC verifies, but the fold no longer equals partCRC.
		off := partTableOff(key, 4, 8)
		e0 := binary.LittleEndian.Uint32(b[off:])
		e1 := binary.LittleEndian.Uint32(b[off+4:])
		if e0 == e1 {
			t.Fatal("test needs distinct record CRCs to swap")
		}
		binary.LittleEndian.PutUint32(b[off:], e1)
		binary.LittleEndian.PutUint32(b[off+4:], e0)
		table := b[off:]
		binary.LittleEndian.PutUint64(b[8+8*15:], uint64(crc32.Checksum(table, crcTable)))
		return b
	})
	if _, err := MergeShards(dir, key); err == nil {
		t.Fatal("splice merge accepted a table that disagrees with its payload")
	} else {
		t.Log(err)
	}
}

// TestDropUserRangeKeepsData pins that releasing a shard's pages is
// non-destructive: every record rereads bit-identical after the drop.
func TestDropUserRangeKeepsData(t *testing.T) {
	key := testKey(12, 1, 6*time.Hour)
	dir := t.TempDir()
	payload := fillTestRecords(t, dir, key)
	s, err := Open(dir, key)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	rf := key.Layout().RecordFloats()
	touch := func() {
		for u := 0; u < key.Users; u++ {
			rec := s.User(u)
			for _, i := range []int{0, 7, rf - 1} {
				if rec[i] != payload[u*rf+i] {
					t.Fatalf("user %d float %d = %g, want %g", u, i, rec[i], payload[u*rf+i])
				}
			}
		}
	}
	touch()
	s.DropUserRange(0, 5)
	s.DropUserRange(5, key.Users)
	// Degenerate ranges are no-ops.
	s.DropUserRange(-3, 2)
	s.DropUserRange(9, 9)
	s.DropUserRange(10, 99)
	touch()
	s.Close()
	s.DropUserRange(0, key.Users) // closed: must not fault
}

// TestCutRanges pins the weighted cutter's contract: exact tiling,
// non-empty ranges, determinism, graceful degeneration to equal
// counts, and better heavy-tail balance than equal-count cuts.
func TestCutRanges(t *testing.T) {
	tile := func(t *testing.T, cuts [][2]int, n, k int) {
		t.Helper()
		if len(cuts) != k {
			t.Fatalf("%d ranges, want %d", len(cuts), k)
		}
		next := 0
		for _, r := range cuts {
			if r[0] != next || r[1] <= r[0] {
				t.Fatalf("ranges %v do not tile [0, %d) with non-empty pieces", cuts, n)
			}
			next = r[1]
		}
		if next != n {
			t.Fatalf("ranges %v stop at %d, want %d", cuts, next, n)
		}
	}

	t.Run("degenerate", func(t *testing.T) {
		if got := CutRanges(nil, 3); got != nil {
			t.Fatalf("empty weights: %v", got)
		}
		tile(t, CutRanges(make([]float64, 5), 0), 5, 1)  // k clamped up
		tile(t, CutRanges(make([]float64, 3), 10), 3, 3) // k clamped to n
		// Zero and pathological weights fall back to equal counts —
		// the historical i*n/k arithmetic, pinned exactly.
		w := []float64{0, math.NaN(), -4, 0, 0, 0, 0}
		got := CutRanges(w, 3)
		tile(t, got, len(w), 3)
		for i, r := range got {
			want := [2]int{i * len(w) / 3, (i + 1) * len(w) / 3}
			if r != want {
				t.Fatalf("zero-weight cut %d = %v, want equal-count %v", i, r, want)
			}
		}
	})

	t.Run("heavy tail", func(t *testing.T) {
		// 1 user in 8 is 40× heavier — the shape EXPERIMENTS.md
		// measured the ~1.6× equal-cut skew on.
		n, k := 96, 4
		w := make([]float64, n)
		total := 0.0
		for i := range w {
			w[i] = 1
			if i%8 == 3 {
				w[i] = 40
			}
			total += w[i]
		}
		cuts := CutRanges(w, k)
		tile(t, cuts, n, k)
		maxLoad := 0.0
		for _, r := range cuts {
			load := 0.0
			for i := r[0]; i < r[1]; i++ {
				load += w[i]
			}
			if load > maxLoad {
				maxLoad = load
			}
		}
		if imb := maxLoad / (total / float64(k)); imb > 1.15 {
			t.Fatalf("weighted cut imbalance %.2f×, want ≤ 1.15×", imb)
		}
		// Deterministic.
		again := CutRanges(w, k)
		for i := range cuts {
			if cuts[i] != again[i] {
				t.Fatal("CutRanges is not deterministic")
			}
		}
	})

	t.Run("single heavy user", func(t *testing.T) {
		// One user dwarfing everything must not starve other ranges.
		w := make([]float64, 10)
		for i := range w {
			w[i] = 1
		}
		w[0] = 1e9
		tile(t, CutRanges(w, 4), 10, 4)
		w[9] = 1e9
		tile(t, CutRanges(w, 4), 10, 4)
	})
}
