package snapshot

// CutRanges splits users [0, n) (n = len(weights)) into k contiguous,
// non-empty ranges balanced by per-user weight rather than user count.
// Equal-count cuts skew badly under the generator's heavy-tail
// populations — the shard that drew the heavy users does ~1.6× the
// work of its siblings — so distributed builders and streaming
// evaluators cut by expected per-user cost instead.
//
// The cut is deterministic: boundary i (1 ≤ i < k) is the smallest
// index whose weight prefix reaches total·i/k, clamped so every range
// keeps at least one user and the ranges tile [0, n) exactly. NaN and
// negative weights count as zero; if the total weight is zero (or k
// ≤ 1, or n ≤ k) the cut degrades to equal user counts — the same
// arithmetic the equal-split builders used, so unweighted callers are
// unchanged. k is clamped to [1, n].
func CutRanges(weights []float64, k int) [][2]int {
	n := len(weights)
	if n == 0 {
		return nil
	}
	if k < 1 {
		k = 1
	}
	if k > n {
		k = n
	}
	equal := func() [][2]int {
		out := make([][2]int, k)
		for i := 0; i < k; i++ {
			out[i] = [2]int{i * n / k, (i + 1) * n / k}
		}
		return out
	}
	if k == 1 {
		return [][2]int{{0, n}}
	}
	prefix := make([]float64, n+1)
	for i, w := range weights {
		if !(w > 0) { // negative and NaN both fail this test
			w = 0
		}
		prefix[i+1] = prefix[i] + w
	}
	total := prefix[n]
	if !(total > 0) {
		return equal()
	}
	out := make([][2]int, k)
	lo := 0
	for i := 1; i < k; i++ {
		target := total * float64(i) / float64(k)
		// Smallest boundary whose prefix reaches the target...
		b := lo + 1
		for b < n && prefix[b] < target {
			b++
		}
		// ...clamped so the remaining k-i ranges stay non-empty.
		if max := n - (k - i); b > max {
			b = max
		}
		out[i-1] = [2]int{lo, b}
		lo = b
	}
	out[k-1] = [2]int{lo, n}
	return out
}
