package snapshot

// Chunked part transfer: the primitives a remote-build transport uses
// to move a sealed part file between hosts without ever trusting the
// wire. A PartServer serves a sealed part in CRC-checked chunks at
// arbitrary offsets; a PartReceiver reassembles them into a temp file
// and seals it with the same atomic-rename discipline as ShardWriter,
// refusing to commit until every byte of the declared size has
// arrived and the running checksum matches the declared whole-file
// CRC.
//
// Resume is the point of the offset interface: a receiver survives
// any number of connection resets — and even a switch to a different
// host, because part builds are deterministic and every seal of a
// range is byte-identical — by re-fetching from Offset(), so a reset
// mid-transfer costs only the missing tail, never the whole part.
// Restreamed() accounts the bytes that arrived more than once.

import (
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
)

// PartServer serves one sealed part file in CRC-checked chunks. Open
// computes the whole-file CRC-32C up front (one streaming pass) so a
// receiver can pin the transfer's end state before the first chunk.
type PartServer struct {
	f    *os.File
	size int64
	crc  uint32
}

// OpenPartServer opens the sealed part for users [lo, hi) of key
// under dir. The part must exist and have the sealed size; deeper
// soundness (header, tables, payload CRC) stays VerifyPart's job —
// the transfer layer only guarantees the receiver gets the file's
// exact bytes.
func OpenPartServer(dir string, key Key, lo, hi int) (*PartServer, error) {
	if err := key.validate(); err != nil {
		return nil, err
	}
	f, err := os.Open(key.PartPath(dir, lo, hi))
	if err != nil {
		return nil, fmt.Errorf("snapshot: %w", err)
	}
	st, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("snapshot: %w", err)
	}
	if want := key.partSize(lo, hi); st.Size() != want {
		f.Close()
		return nil, fmt.Errorf("snapshot: part %s is %d bytes, want %d (truncated or foreign)",
			filepath.Base(f.Name()), st.Size(), want)
	}
	crc := uint32(0)
	buf := make([]byte, 1<<20)
	for {
		n, rerr := f.Read(buf)
		crc = crc32.Update(crc, crcTable, buf[:n])
		if rerr == io.EOF {
			break
		}
		if rerr != nil {
			f.Close()
			return nil, fmt.Errorf("snapshot: %w", rerr)
		}
	}
	return &PartServer{f: f, size: st.Size(), crc: crc}, nil
}

// Size returns the sealed part's total byte size.
func (s *PartServer) Size() int64 { return s.size }

// CRC returns the CRC-32C of the whole sealed file.
func (s *PartServer) CRC() uint32 { return s.crc }

// ChunkAt reads up to n bytes at offset off (clamped to the file
// end) and returns them with their CRC-32C. buf, when large enough,
// backs the returned slice; a short or nil buf allocates.
func (s *PartServer) ChunkAt(off int64, n int, buf []byte) (data []byte, crc uint32, err error) {
	if off < 0 || off >= s.size {
		return nil, 0, fmt.Errorf("snapshot: chunk offset %d outside part of %d bytes", off, s.size)
	}
	if n <= 0 {
		return nil, 0, fmt.Errorf("snapshot: chunk size %d invalid", n)
	}
	if rem := s.size - off; int64(n) > rem {
		n = int(rem)
	}
	if len(buf) < n {
		buf = make([]byte, n)
	}
	if _, err := s.f.ReadAt(buf[:n], off); err != nil {
		return nil, 0, fmt.Errorf("snapshot: %w", err)
	}
	return buf[:n], crc32.Checksum(buf[:n], crcTable), nil
}

// Close releases the underlying file.
func (s *PartServer) Close() error { return s.f.Close() }

// PartReceiver reassembles a part file from chunks into a temp file
// next to its final path, sealing it by atomic rename only once every
// byte has arrived and the running CRC matches the expected whole-file
// checksum. It is connection-agnostic state: keep one receiver alive
// across reconnects (or host switches) and resume fetching at
// Offset().
type PartReceiver struct {
	tmp, final string
	f          *os.File
	expectSet  bool
	size       int64  // declared total size
	crc        uint32 // declared whole-file CRC-32C
	received   int64  // contiguous prefix written so far
	runCRC     uint32 // CRC-32C of bytes [0, received)
	restreamed int64  // chunk bytes that re-covered already-received ground
	done       bool
}

// NewPartReceiver opens a receiver for the part covering users
// [lo, hi) of key under dir (created if missing). The temp file uses
// the store's ".tmp" convention, so a crashed receiver is swept by the
// next build and never mistaken for a sealed part.
func NewPartReceiver(dir string, key Key, lo, hi int) (*PartReceiver, error) {
	if err := key.validate(); err != nil {
		return nil, err
	}
	if lo < 0 || hi <= lo || hi > key.Users {
		return nil, fmt.Errorf("snapshot: part range [%d, %d) invalid for %d users", lo, hi, key.Users)
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("snapshot: %w", err)
	}
	final := key.PartPath(dir, lo, hi)
	f, err := os.CreateTemp(dir, filepath.Base(final)+".tmp*")
	if err != nil {
		return nil, fmt.Errorf("snapshot: %w", err)
	}
	return &PartReceiver{tmp: f.Name(), final: final, f: f}, nil
}

// Expect declares the transfer's end state: total sealed size and
// whole-file CRC-32C. Calling it again with the same values is a
// no-op (every reconnect re-declares); different values discard any
// partial data and restart from offset zero — deterministic builds
// make that unreachable for honest peers, but a receiver must never
// splice two disagreeing transfers together.
func (r *PartReceiver) Expect(size int64, crc uint32) error {
	if r.done {
		return fmt.Errorf("snapshot: receiver already committed")
	}
	if size <= 0 {
		return fmt.Errorf("snapshot: expected part size %d invalid", size)
	}
	if r.expectSet && (size != r.size || crc != r.crc) {
		if err := r.f.Truncate(0); err != nil {
			return fmt.Errorf("snapshot: %w", err)
		}
		r.received, r.runCRC = 0, 0
	}
	r.expectSet, r.size, r.crc = true, size, crc
	return nil
}

// Offset returns where the next fetch should start: the end of the
// verified contiguous prefix.
func (r *PartReceiver) Offset() int64 { return r.received }

// Restreamed returns how many chunk bytes re-covered ground that had
// already been received — the cost of resets, measured in bytes.
func (r *PartReceiver) Restreamed() int64 { return r.restreamed }

// WriteChunk verifies one chunk against its CRC and folds it into the
// file. Chunks must extend the contiguous prefix: off may sit at or
// before Offset() (a re-delivered chunk re-covers verified ground and
// is counted restreamed) but never beyond it — the receiver refuses
// gaps, because the running CRC can only cover a prefix.
func (r *PartReceiver) WriteChunk(off int64, data []byte, crc uint32) error {
	if r.done {
		return fmt.Errorf("snapshot: receiver already committed")
	}
	if !r.expectSet {
		return fmt.Errorf("snapshot: WriteChunk before Expect")
	}
	if len(data) == 0 {
		return fmt.Errorf("snapshot: empty chunk")
	}
	if got := crc32.Checksum(data, crcTable); got != crc {
		return fmt.Errorf("snapshot: chunk at %d checksum %08x != declared %08x (corrupt in flight)", off, got, crc)
	}
	if off < 0 || off > r.received {
		return fmt.Errorf("snapshot: chunk at %d leaves a gap (have %d contiguous bytes)", off, r.received)
	}
	end := off + int64(len(data))
	if end > r.size {
		return fmt.Errorf("snapshot: chunk at %d runs to %d, past declared size %d", off, end, r.size)
	}
	r.restreamed += min64(r.received, end) - off
	if end <= r.received {
		return nil // entirely re-covered ground; bytes are already sealed into runCRC
	}
	if _, err := r.f.WriteAt(data, off); err != nil {
		return fmt.Errorf("snapshot: %w", err)
	}
	r.runCRC = crc32.Update(r.runCRC, crcTable, data[r.received-off:])
	r.received = end
	return nil
}

// Commit seals the received part: every declared byte must have
// arrived and the running CRC must equal the declared whole-file CRC.
// On success the temp file is synced and atomically renamed to the
// part path — from then on it is indistinguishable from a part sealed
// locally, and VerifyPart remains the end-to-end trust gate.
func (r *PartReceiver) Commit() error {
	if r.done {
		return fmt.Errorf("snapshot: receiver already committed")
	}
	if !r.expectSet || r.received != r.size {
		return fmt.Errorf("snapshot: commit with %d of %d bytes received", r.received, r.size)
	}
	if r.runCRC != r.crc {
		return fmt.Errorf("snapshot: received part checksum %08x != declared %08x", r.runCRC, r.crc)
	}
	if err := r.f.Sync(); err != nil {
		return fmt.Errorf("snapshot: %w", err)
	}
	if err := r.f.Close(); err != nil {
		return fmt.Errorf("snapshot: %w", err)
	}
	r.done = true
	if err := os.Rename(r.tmp, r.final); err != nil {
		os.Remove(r.tmp)
		return fmt.Errorf("snapshot: %w", err)
	}
	return nil
}

// Abort discards the partial transfer.
func (r *PartReceiver) Abort() {
	if r.done {
		return
	}
	r.done = true
	_ = r.f.Close()
	_ = os.Remove(r.tmp)
}

func min64(a, b int64) int64 {
	if a < b {
		return a
	}
	return b
}
