package snapshot

import (
	"errors"
	"io/fs"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

func TestManifestSealedWithSnapshot(t *testing.T) {
	dir := t.TempDir()
	key := testKey(5, 2, 6*time.Hour)
	payload := fillTestRecords(t, dir, key)
	if _, err := os.Stat(key.ManifestPath(dir)); err != nil {
		t.Fatalf("no manifest sidecar after Finish: %v", err)
	}
	lay := key.Layout()
	rf := lay.RecordFloats()
	for u := 0; u < key.Users; u++ {
		rec, err := OpenUser(dir, key, u)
		if err != nil {
			t.Fatalf("OpenUser(%d): %v", u, err)
		}
		if rec.User() != u || rec.Layout() != lay {
			t.Fatalf("OpenUser(%d) metadata: user %d layout %+v", u, rec.User(), rec.Layout())
		}
		for i, v := range rec.Record() {
			if v != payload[u*rf+i] {
				t.Fatalf("user %d float %d: %g != written %g", u, i, v, payload[u*rf+i])
			}
		}
		// The accessors must agree with the mapped store's views.
		rows := rec.Rows()
		if len(rows) != lay.Bins() || rows[2][3] != rec.Record()[2*6+3] {
			t.Fatalf("user %d rows view mismatch", u)
		}
		for week := 0; week < key.Weeks; week++ {
			for f := 0; f < 6; f++ {
				col := rec.SortedColumn(week, f)
				if &col[0] != &rec.Record()[lay.SortedOff(week, f)] {
					t.Fatal("sorted column does not alias the record")
				}
				days := rec.DayColumns(week, f)
				if len(days) != 7 || &days[3][0] != &rec.Record()[lay.DayOff(week, f)+3*lay.BinsPerDay] {
					t.Fatal("day view does not alias the record")
				}
			}
		}
	}
}

func TestOpenUserBoundsError(t *testing.T) {
	dir := t.TempDir()
	key := testKey(3, 1, 6*time.Hour)
	fillTestRecords(t, dir, key)
	for _, u := range []int{-1, 3, 1 << 20} {
		_, err := OpenUser(dir, key, u)
		if err == nil {
			t.Fatalf("OpenUser(%d) accepted an out-of-range user", u)
		}
		if !strings.Contains(err.Error(), "outside store population") {
			t.Fatalf("OpenUser(%d) error does not name the geometry: %v", u, err)
		}
	}
}

// TestOpenUserReadsOnlyItsShard is the O(one shard) pin: with every
// payload byte OUTSIDE user u's manifest shard corrupted, OpenUser(u)
// must still succeed — proving it never reads (let alone validates)
// other shards — while users in the damaged shards, and the
// full-validation Open, must fail.
func TestOpenUserReadsOnlyItsShard(t *testing.T) {
	dir := t.TempDir()
	users := 2*ManifestShardUsers + 40 // three shards, last one ragged
	key := testKey(users, 1, 6*time.Hour)
	payload := fillTestRecords(t, dir, key)
	rf := key.Layout().RecordFloats()
	u := ManifestShardUsers + 7 // lives in shard 1
	shardLo := headerBytes + ManifestShardUsers*rf*8
	shardHi := shardLo + ManifestShardUsers*rf*8
	corrupt(t, key.Path(dir), func(b []byte) []byte {
		for i := headerBytes; i < len(b); i++ {
			if i < shardLo || i >= shardHi {
				b[i] ^= 0xff
			}
		}
		return b
	})
	rec, err := OpenUser(dir, key, u)
	if err != nil {
		t.Fatalf("OpenUser touched bytes outside its shard: %v", err)
	}
	for i, v := range rec.Record() {
		if v != payload[u*rf+i] {
			t.Fatalf("float %d: %g != written %g", i, v, payload[u*rf+i])
		}
	}
	for _, bad := range []int{0, ManifestShardUsers - 1, 2 * ManifestShardUsers, users - 1} {
		if _, err := OpenUser(dir, key, bad); err == nil {
			t.Fatalf("OpenUser(%d) accepted a corrupted shard", bad)
		}
	}
	if _, err := Open(dir, key); err == nil {
		t.Fatal("full Open accepted a corrupted payload")
	}
}

// TestShardCorruptionIsolated: a single bit flip in one shard fails
// exactly that shard's users; every other shard still serves.
func TestShardCorruptionIsolated(t *testing.T) {
	dir := t.TempDir()
	users := 3 * ManifestShardUsers
	key := testKey(users, 1, 6*time.Hour)
	fillTestRecords(t, dir, key)
	rf := key.Layout().RecordFloats()
	corrupt(t, key.Path(dir), func(b []byte) []byte {
		b[headerBytes+ManifestShardUsers*rf*8+17] ^= 0x04 // first byte region of shard 1
		return b
	})
	for u := 0; u < users; u += ManifestShardUsers / 2 {
		_, err := OpenUser(dir, key, u)
		inBad := u/ManifestShardUsers == 1
		if inBad && err == nil {
			t.Fatalf("OpenUser(%d) accepted its corrupted shard", u)
		}
		if !inBad && err != nil {
			t.Fatalf("OpenUser(%d) failed for a corruption in another shard: %v", u, err)
		}
	}
}

func TestOpenUserRejectsManifestDamage(t *testing.T) {
	key := testKey(5, 1, 6*time.Hour)
	for name, mutate := range map[string]func(b []byte) []byte{
		"bit flip":     func(b []byte) []byte { b[manifestHdrBytes+1] ^= 0x10; return b },
		"truncated":    func(b []byte) []byte { return b[:len(b)-4] },
		"bad magic":    func(b []byte) []byte { b[0] = 'X'; return b },
		"wrong engine": func(b []byte) []byte { b[8+8] ^= 0xff; return b },
	} {
		t.Run(name, func(t *testing.T) {
			dir := t.TempDir()
			fillTestRecords(t, dir, key)
			corrupt(t, key.ManifestPath(dir), mutate)
			if _, err := OpenUser(dir, key, 0); err == nil {
				t.Fatal("OpenUser accepted a damaged manifest")
			} else {
				t.Log(err)
			}
			// The full-validation path does not depend on the sidecar.
			s, err := Open(dir, key)
			if err != nil {
				t.Fatalf("Open rejected a store with only manifest damage: %v", err)
			}
			s.Close()
		})
	}
}

func TestOpenUserMissingManifestIsNotExist(t *testing.T) {
	dir := t.TempDir()
	key := testKey(3, 1, 6*time.Hour)
	fillTestRecords(t, dir, key)
	if err := os.Remove(key.ManifestPath(dir)); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenUser(dir, key, 1); !errors.Is(err, fs.ErrNotExist) {
		t.Fatalf("err = %v, want fs.ErrNotExist (pre-manifest store)", err)
	}
}

func TestRejectsNonDayDividingBinWidth(t *testing.T) {
	// Both widths divide a week but not a day; the 1120m one slipped
	// through the old week-divisibility check and truncated BinsPerDay
	// from 9/7 to 1, silently corrupting day views.
	for _, bw := range []time.Duration{1120 * time.Minute, 56 * time.Hour} {
		key := testKey(2, 1, bw)
		if _, err := Create(t.TempDir(), key); err == nil {
			t.Fatalf("Create accepted bin width %v (does not divide a day)", bw)
		} else if !strings.Contains(err.Error(), "does not divide a day") {
			t.Fatalf("bin width %v: unexpected error %v", bw, err)
		}
	}
}

func TestCreateSweepsStaleTemps(t *testing.T) {
	dir := t.TempDir()
	key := testKey(2, 1, 6*time.Hour)
	stale := filepath.Join(dir, "ws-s9-u2-w1-b6h0m0s-v1-dead.snap.tmp123")
	fresh := filepath.Join(dir, "ws-s9-u2-w1-b6h0m0s-v1-beef.snap.tmp456")
	sealed := filepath.Join(dir, "ws-s9-u2-w1-b6h0m0s-v1-cafe.snap")
	for _, p := range []string{stale, fresh, sealed} {
		if err := os.WriteFile(p, []byte("x"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	old := time.Now().Add(-2 * StaleTempAge)
	if err := os.Chtimes(stale, old, old); err != nil {
		t.Fatal(err)
	}
	if err := os.Chtimes(sealed, old, old); err != nil {
		t.Fatal(err)
	}
	w, err := Create(dir, key)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Abort()
	if _, err := os.Stat(stale); !errors.Is(err, fs.ErrNotExist) {
		t.Fatalf("stale temp survived Create: %v", err)
	}
	if _, err := os.Stat(fresh); err != nil {
		t.Fatalf("fresh temp (a live concurrent build) was swept: %v", err)
	}
	if _, err := os.Stat(sealed); err != nil {
		t.Fatalf("sealed snapshot was swept: %v", err)
	}
}

func TestGCRetention(t *testing.T) {
	dir := t.TempDir()
	// Three sealed stores with distinct keys and strictly ordered
	// mtimes (oldest first).
	keys := []Key{
		testKey(2, 1, 6*time.Hour),
		testKey(3, 1, 6*time.Hour),
		testKey(4, 1, 6*time.Hour),
	}
	for i, k := range keys {
		fillTestRecords(t, dir, k)
		mt := time.Now().Add(time.Duration(i-len(keys)) * time.Hour)
		if err := os.Chtimes(k.Path(dir), mt, mt); err != nil {
			t.Fatal(err)
		}
	}
	// An orphan manifest and an already-merged part leftover.
	orphan := filepath.Join(dir, "ws-s9-u99-w1-b6h0m0s-v1-feed.snap.manifest")
	if err := os.WriteFile(orphan, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	mergedPart := keys[2].PartPath(dir, 0, 2)
	if err := os.WriteFile(mergedPart, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	// An unmerged build's part (no sealed snapshot for its key): kept.
	pendingKey := testKey(7, 1, 6*time.Hour)
	pendingPart := pendingKey.PartPath(dir, 0, 7)
	if err := os.WriteFile(pendingPart, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}

	dry, err := GC(dir, GCOptions{KeepLatest: 1, DryRun: true})
	if err != nil {
		t.Fatal(err)
	}
	if dry.Kept != 1 || dry.Removed == 0 {
		t.Fatalf("dry run stats: %+v", dry)
	}
	for _, k := range keys { // dry run must not remove anything
		if _, err := os.Stat(k.Path(dir)); err != nil {
			t.Fatalf("dry run removed %s: %v", k.Filename(), err)
		}
	}

	st, err := GC(dir, GCOptions{KeepLatest: 1})
	if err != nil {
		t.Fatal(err)
	}
	if st.Kept != 1 {
		t.Fatalf("kept %d snapshots, want 1", st.Kept)
	}
	if _, err := os.Stat(keys[2].Path(dir)); err != nil {
		t.Fatalf("newest snapshot evicted: %v", err)
	}
	for _, k := range keys[:2] {
		if _, err := os.Stat(k.Path(dir)); !errors.Is(err, fs.ErrNotExist) {
			t.Fatalf("old snapshot %s survived: %v", k.Filename(), err)
		}
		if _, err := os.Stat(k.ManifestPath(dir)); !errors.Is(err, fs.ErrNotExist) {
			t.Fatalf("old manifest %s survived: %v", k.Filename(), err)
		}
	}
	if _, err := os.Stat(orphan); !errors.Is(err, fs.ErrNotExist) {
		t.Fatal("orphan manifest survived")
	}
	if _, err := os.Stat(mergedPart); !errors.Is(err, fs.ErrNotExist) {
		t.Fatal("already-merged part survived")
	}
	if _, err := os.Stat(pendingPart); err != nil {
		t.Fatalf("pending (unmerged) part was removed: %v", err)
	}
	// The kept store still opens through both paths.
	s, err := Open(dir, keys[2])
	if err != nil {
		t.Fatal(err)
	}
	s.Close()
	if _, err := OpenUser(dir, keys[2], 0); err != nil {
		t.Fatal(err)
	}

	// Byte-cap form: a budget below the survivor's size evicts it too.
	if _, err := GC(dir, GCOptions{MaxBytes: 1}); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(keys[2].Path(dir)); !errors.Is(err, fs.ErrNotExist) {
		t.Fatal("byte cap did not evict the last snapshot")
	}
}
