package snapshot

import (
	"errors"
	"io/fs"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"
)

// TestGCPartAging covers the abandoned-build sweep: pending parts and
// quarantined *.bad corpses older than PartMaxAge go, fresh ones stay
// (a live or resumable build keeps its work), and a *.bad whose
// snapshot already sealed goes regardless of age.
func TestGCPartAging(t *testing.T) {
	dir := t.TempDir()
	old := time.Now().Add(-2 * DefaultPartMaxAge)
	age := func(path string) {
		t.Helper()
		if err := os.Chtimes(path, old, old); err != nil {
			t.Fatal(err)
		}
	}
	mk := func(path string) {
		t.Helper()
		if err := os.WriteFile(path, []byte("x"), 0o644); err != nil {
			t.Fatal(err)
		}
	}

	pendingKey := testKey(7, 1, 6*time.Hour)
	freshPart := pendingKey.PartPath(dir, 0, 3)
	stalePart := pendingKey.PartPath(dir, 3, 7)
	freshBad := pendingKey.PartPath(dir, 0, 3) + QuarantineSuffix
	staleBad := pendingKey.PartPath(dir, 3, 7) + QuarantineSuffix
	mk(freshPart)
	mk(stalePart)
	mk(freshBad)
	mk(staleBad)
	age(stalePart)
	age(staleBad)

	sealedKey := testKey(4, 1, 6*time.Hour)
	fillTestRecords(t, dir, sealedKey)
	sealedBad := sealedKey.PartPath(dir, 0, 2) + QuarantineSuffix
	mk(sealedBad) // fresh, but its snapshot already sealed

	st, err := GC(dir, GCOptions{})
	if err != nil {
		t.Fatal(err)
	}
	for _, gone := range []string{stalePart, staleBad, sealedBad} {
		if _, err := os.Stat(gone); !errors.Is(err, fs.ErrNotExist) {
			t.Fatalf("%s survived GC: %v", filepath.Base(gone), err)
		}
	}
	for _, kept := range []string{freshPart, freshBad} {
		if _, err := os.Stat(kept); err != nil {
			t.Fatalf("%s was removed by GC: %v", filepath.Base(kept), err)
		}
	}
	if st.Removed != 3 {
		t.Fatalf("removed %d files, want 3", st.Removed)
	}

	// A shorter explicit age sweeps the remaining fresh pair too.
	if _, err := GC(dir, GCOptions{PartMaxAge: time.Nanosecond}); err != nil {
		t.Fatal(err)
	}
	for _, gone := range []string{freshPart, freshBad} {
		if _, err := os.Stat(gone); !errors.Is(err, fs.ErrNotExist) {
			t.Fatalf("%s survived an explicit PartMaxAge sweep", filepath.Base(gone))
		}
	}
}

// TestVerifyAndQuarantinePart covers the coordinator's resume gate:
// a sealed part verifies (with the sealed size and CRC reported), a
// flipped payload byte fails verification, QuarantinePart moves the
// corpse out of the way, and neither ListParts nor MergeShards ever
// sees a quarantined file.
func TestVerifyAndQuarantinePart(t *testing.T) {
	dir := t.TempDir()
	key := testKey(9, 1, 6*time.Hour)
	payload := testPayload(key)
	sealParts(t, dir, key, payload, []int{0, 4, 9})

	info, err := VerifyPart(dir, key, 0, 4)
	if err != nil {
		t.Fatalf("VerifyPart on a sound part: %v", err)
	}
	if info.Bytes != key.partSize(0, 4) || info.CRC == 0 {
		t.Fatalf("PartInfo not filled: %+v", info)
	}

	// Flip one payload byte: header and table still read fine, the
	// streaming payload pass must catch it.
	f, err := os.OpenFile(info.Path, os.O_RDWR, 0)
	if err != nil {
		t.Fatal(err)
	}
	var b [1]byte
	off := int64(partHdrBytes) + info.Bytes/2
	if _, err := f.ReadAt(b[:], off); err != nil {
		t.Fatal(err)
	}
	b[0] ^= 0x40
	if _, err := f.WriteAt(b[:], off); err != nil {
		t.Fatal(err)
	}
	f.Close()
	if _, err := VerifyPart(dir, key, 0, 4); err == nil {
		t.Fatal("VerifyPart accepted a corrupt payload")
	}

	bad, err := QuarantinePart(info.Path)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.HasSuffix(bad, QuarantineSuffix) {
		t.Fatalf("quarantine name %q", bad)
	}
	if _, err := os.Stat(bad); err != nil {
		t.Fatal(err)
	}
	parts, err := ListParts(dir, key)
	if err != nil {
		t.Fatal(err)
	}
	if len(parts) != 1 || parts[0].Lo != 4 || parts[0].Hi != 9 {
		t.Fatalf("ListParts sees the quarantined part: %+v", parts)
	}
	// The merge must refuse (the tiling has a hole), not read *.bad.
	if _, err := MergeShards(dir, key); err == nil {
		t.Fatal("MergeShards merged through a quarantined part")
	}

	// Reseal the missing range; now the merge completes and the store
	// opens — the corpse never contaminates it.
	sealParts(t, dir, key, payload, []int{0, 4})
	if n, err := MergeShards(dir, key); err != nil || n != 2 {
		t.Fatalf("MergeShards after reseal: n=%d err=%v", n, err)
	}
	s, err := Open(dir, key)
	if err != nil {
		t.Fatal(err)
	}
	s.Close()
}
