package snapshot

import (
	"errors"
	"io/fs"
	"os"
	"testing"
	"time"

	"repro/internal/trace"
	"repro/internal/xrand"
)

func testKey(users, weeks int, binWidth time.Duration) Key {
	return Key{
		Seed:          9,
		Users:         users,
		Weeks:         weeks,
		BinWidth:      binWidth,
		StartMicros:   trace.DefaultStartMicros,
		HeavyFraction: 0.15,
		WeeklyTrend:   0.8,
	}
}

// fillTestRecords writes deterministic pseudo-random records for the
// whole key and seals the snapshot, returning the payload written.
func fillTestRecords(t *testing.T, dir string, key Key) []float64 {
	t.Helper()
	w, err := Create(dir, key)
	if err != nil {
		t.Fatal(err)
	}
	lay := w.Layout()
	payload := make([]float64, lay.PayloadFloats())
	r := xrand.New(41)
	for i := range payload {
		payload[i] = float64(r.Intn(1 << 20))
	}
	// Append in deliberately ragged chunks (1 user, then the rest) to
	// exercise multi-append accounting.
	rf := lay.RecordFloats()
	if err := w.AppendUsers(payload[:rf]); err != nil {
		t.Fatal(err)
	}
	if err := w.AppendUsers(payload[rf:]); err != nil {
		t.Fatal(err)
	}
	if err := w.Finish(); err != nil {
		t.Fatal(err)
	}
	return payload
}

func TestWriterReaderRoundTrip(t *testing.T) {
	dir := t.TempDir()
	key := testKey(3, 2, 6*time.Hour) // bpw 28, bpd 4
	payload := fillTestRecords(t, dir, key)
	s, err := Open(dir, key)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	lay := s.Layout()
	if lay != key.Layout() {
		t.Fatalf("layout %+v != %+v", lay, key.Layout())
	}
	rf := lay.RecordFloats()
	for u := 0; u < key.Users; u++ {
		rec := s.User(u)
		for i, v := range rec {
			if v != payload[u*rf+i] {
				t.Fatalf("user %d float %d: %g != written %g", u, i, v, payload[u*rf+i])
			}
		}
		rows := s.Rows(u)
		if len(rows) != lay.Bins() {
			t.Fatalf("user %d: %d rows, want %d", u, len(rows), lay.Bins())
		}
		if rows[2][3] != rec[2*6+3] {
			t.Fatal("rows view does not alias the record")
		}
		for week := 0; week < key.Weeks; week++ {
			for f := 0; f < 6; f++ {
				col := s.SortedColumn(u, week, f)
				if len(col) != lay.BinsPerWeek {
					t.Fatalf("sorted column len %d, want %d", len(col), lay.BinsPerWeek)
				}
				if &col[0] != &rec[lay.SortedOff(week, f)] {
					t.Fatal("sorted column does not alias the record")
				}
				days := s.DayColumns(u, week, f)
				if len(days) != 7 || len(days[0]) != lay.BinsPerDay {
					t.Fatalf("day view shape %dx%d", len(days), len(days[0]))
				}
				if &days[3][0] != &rec[lay.DayOff(week, f)+3*lay.BinsPerDay] {
					t.Fatal("day view does not alias the record")
				}
			}
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil { // idempotent
		t.Fatal(err)
	}
}

func TestOpenMissingIsNotExist(t *testing.T) {
	_, err := Open(t.TempDir(), testKey(2, 1, 6*time.Hour))
	if !errors.Is(err, fs.ErrNotExist) {
		t.Fatalf("err = %v, want fs.ErrNotExist", err)
	}
}

// corrupt opens the sealed snapshot file and hands its bytes to
// mutate, writing the result back.
func corrupt(t *testing.T, path string, mutate func(b []byte) []byte) {
	t.Helper()
	b, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, mutate(b), 0o644); err != nil {
		t.Fatal(err)
	}
}

func TestOpenRejectsCorruption(t *testing.T) {
	key := testKey(2, 1, 6*time.Hour)
	for name, mutate := range map[string]func(b []byte) []byte{
		"truncated": func(b []byte) []byte { return b[:len(b)-8] },
		"bit flip in payload": func(b []byte) []byte {
			b[headerBytes+17] ^= 0x04
			return b
		},
		"bit flip in header checksum": func(b []byte) []byte {
			b[headerBytes-1] ^= 0x80
			return b
		},
		"wrong engine version": func(b []byte) []byte {
			b[8+8] ^= 0xff // low byte of the engine field
			return b
		},
		"wrong header version": func(b []byte) []byte {
			b[8] ^= 0xff
			return b
		},
		"wrong seed": func(b []byte) []byte {
			b[8+2*8] ^= 0x01
			return b
		},
		"bad magic": func(b []byte) []byte {
			b[0] = 'X'
			return b
		},
		"grown": func(b []byte) []byte { return append(b, 0) },
	} {
		t.Run(name, func(t *testing.T) {
			dir := t.TempDir()
			fillTestRecords(t, dir, key)
			corrupt(t, key.Path(dir), mutate)
			if _, err := Open(dir, key); err == nil {
				t.Fatal("Open accepted a corrupt snapshot")
			} else {
				t.Log(err)
			}
		})
	}
}

func TestFinishRequiresAllUsers(t *testing.T) {
	dir := t.TempDir()
	key := testKey(3, 1, 6*time.Hour)
	w, err := Create(dir, key)
	if err != nil {
		t.Fatal(err)
	}
	rf := w.Layout().RecordFloats()
	if err := w.AppendUsers(make([]float64, rf)); err != nil {
		t.Fatal(err)
	}
	if err := w.Finish(); err == nil {
		t.Fatal("Finish sealed a snapshot with 1 of 3 users")
	}
	if _, err := os.Stat(key.Path(dir)); !errors.Is(err, fs.ErrNotExist) {
		t.Fatalf("partial snapshot became visible: %v", err)
	}
	// The aborted temp file must be gone too.
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 0 {
		t.Fatalf("directory not clean after abort: %v", ents)
	}
}

func TestAppendRejectsOverflowAndRaggedRecords(t *testing.T) {
	dir := t.TempDir()
	key := testKey(2, 1, 6*time.Hour)
	w, err := Create(dir, key)
	if err != nil {
		t.Fatal(err)
	}
	defer w.Abort()
	rf := w.Layout().RecordFloats()
	if err := w.AppendUsers(make([]float64, rf-1)); err == nil {
		t.Fatal("accepted a partial record")
	}
	if err := w.AppendUsers(make([]float64, 3*rf)); err == nil {
		t.Fatal("accepted more users than declared")
	}
}

func TestKeyForNormalizes(t *testing.T) {
	sparse, err := KeyFor(trace.Config{Users: 10, Weeks: 2, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	full, err := KeyFor(trace.Config{
		Users: 10, Weeks: 2, Seed: 3,
		BinWidth: 15 * time.Minute, StartMicros: trace.DefaultStartMicros,
		HeavyFraction: 0.15, WeeklyTrend: 0.8,
	})
	if err != nil {
		t.Fatal(err)
	}
	if sparse != full {
		t.Fatalf("sparse key %+v != defaulted key %+v", sparse, full)
	}
}

func TestFilenameSeparatesKeys(t *testing.T) {
	base := testKey(10, 2, 15*time.Minute)
	seen := map[string]string{base.Filename(): "base"}
	for name, k := range map[string]Key{
		"seed":  {Seed: 10, Users: 10, Weeks: 2, BinWidth: 15 * time.Minute, StartMicros: base.StartMicros, HeavyFraction: 0.15, WeeklyTrend: 0.8},
		"users": {Seed: 9, Users: 11, Weeks: 2, BinWidth: 15 * time.Minute, StartMicros: base.StartMicros, HeavyFraction: 0.15, WeeklyTrend: 0.8},
		"trend": {Seed: 9, Users: 10, Weeks: 2, BinWidth: 15 * time.Minute, StartMicros: base.StartMicros, HeavyFraction: 0.15, WeeklyTrend: 0.92},
		"start": {Seed: 9, Users: 10, Weeks: 2, BinWidth: 15 * time.Minute, StartMicros: base.StartMicros + 1, HeavyFraction: 0.15, WeeklyTrend: 0.8},
	} {
		fn := k.Filename()
		if prev, dup := seen[fn]; dup {
			t.Fatalf("key variant %q collides with %q: %s", name, prev, fn)
		}
		seen[fn] = name
	}
}
