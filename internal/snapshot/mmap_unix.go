//go:build unix

package snapshot

import (
	"os"
	"syscall"
)

// mmapBacked reports that snapshot views alias a file mapping here,
// so released pages can be dropped from the resident set and will
// refault intact from the file.
const mmapBacked = true

// mapFile maps size bytes of path read-only and shared. The read-only
// protection is part of the format's safety contract: every view the
// analysis layer hands out from a snapshot is documented read-only,
// and PROT_READ turns a contract violation into an immediate fault
// instead of silent corruption of a file other processes share.
func mapFile(path string, size int) (data []byte, unmap func() error, err error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	defer f.Close() // the mapping outlives the descriptor
	data, err = syscall.Mmap(int(f.Fd()), 0, size, syscall.PROT_READ, syscall.MAP_SHARED)
	if err != nil {
		return nil, nil, err
	}
	return data, func() error { return syscall.Munmap(data) }, nil
}
