package snapshot

// Distributed builds: independent workers (goroutines, processes or
// hosts sharing a filesystem) each seal a contiguous user range
// [lo, hi) as a part file next to the final snapshot, and a final
// MergeShards call validates that the sealed parts tile the population
// exactly, streams them through an ordinary Writer, and seals the
// canonical snapshot + manifest. Because the merge replays the exact
// record bytes through the same Writer a single-process Save uses, the
// merged store is byte-identical to the single-process build — both
// the .snap and its .manifest — by construction.
//
// # Part layout
//
// A part is a sealed, self-checksummed slice of the payload:
//
//	offset 0    magic "RPWSPRT1" (8 bytes)
//	offset 8    header: 15 × uint64
//	              fields 0–9: identical to the snapshot header
//	              (headerVersion … binsPerWeek), then payloadFloats
//	              (of the FULL key, so a part can never be mistaken
//	              for a differently sized population), lo, hi,
//	              partFloats ((hi-lo) × recordFloats), partCRC
//	              (CRC-32C of the part payload, low 32 bits)
//	then        payload: users [lo, hi) × record
//
// Parts use the same temp-file + atomic-rename discipline as the
// snapshot writer: a crashed worker leaves only a temp file (swept by
// the next Create), never a sealed-looking part.

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

const (
	partMagic    = "RPWSPRT1"
	partFields   = 15
	partHdrBytes = 8 + partFields*8
)

// PartPath returns the part-file path for users [lo, hi) of the key
// under dir. The range is zero-padded so lexical order is user order.
func (k Key) PartPath(dir string, lo, hi int) string {
	return filepath.Join(dir, fmt.Sprintf("%s.part-%08d-%08d", k.Filename(), lo, hi))
}

func (k Key) encodePartHeader(lo, hi, partFloats int, crc uint32) []byte {
	buf := make([]byte, partHdrBytes)
	copy(buf, partMagic)
	fields := []uint64{
		headerVersion,
		EngineVersion,
		k.Seed,
		uint64(k.Users),
		uint64(k.Weeks),
		uint64(k.BinWidth.Microseconds()),
		uint64(k.StartMicros),
		math.Float64bits(k.HeavyFraction),
		math.Float64bits(k.WeeklyTrend),
		uint64(k.BinsPerWeek()),
		uint64(k.Layout().PayloadFloats()),
		uint64(lo),
		uint64(hi),
		uint64(partFloats),
		uint64(crc),
	}
	for i, v := range fields {
		binary.LittleEndian.PutUint64(buf[8+8*i:], v)
	}
	return buf
}

// checkPartHeader validates a part header against the key and the
// range its filename claims, returning the payload checksum it seals.
func (k Key) checkPartHeader(buf []byte, lo, hi int) (checksum uint64, err error) {
	if len(buf) < partHdrBytes || string(buf[:8]) != partMagic {
		return 0, fmt.Errorf("snapshot: bad part magic (not a shard part)")
	}
	field := func(i int) uint64 { return binary.LittleEndian.Uint64(buf[8+8*i:]) }
	rf := k.Layout().RecordFloats()
	checks := []struct {
		name string
		got  uint64
		want uint64
	}{
		{"header version", field(0), headerVersion},
		{"engine version", field(1), EngineVersion},
		{"seed", field(2), k.Seed},
		{"users", field(3), uint64(k.Users)},
		{"weeks", field(4), uint64(k.Weeks)},
		{"bin width", field(5), uint64(k.BinWidth.Microseconds())},
		{"start micros", field(6), uint64(k.StartMicros)},
		{"heavy fraction", field(7), math.Float64bits(k.HeavyFraction)},
		{"weekly trend", field(8), math.Float64bits(k.WeeklyTrend)},
		{"bins per week", field(9), uint64(k.BinsPerWeek())},
		{"payload floats", field(10), uint64(k.Layout().PayloadFloats())},
		{"range lo", field(11), uint64(lo)},
		{"range hi", field(12), uint64(hi)},
		{"part floats", field(13), uint64((hi - lo) * rf)},
	}
	for _, c := range checks {
		if c.got != c.want {
			return 0, fmt.Errorf("snapshot: part %s mismatch (file %d, want %d)", c.name, c.got, c.want)
		}
	}
	return field(14), nil
}

// ShardWriter streams one contiguous user range of a snapshot to a
// sealed part file. It mirrors Writer's contract: append users
// [lo, hi) in order, then Finish (or Abort).
type ShardWriter struct {
	key    Key
	lay    Layout
	lo, hi int
	f      *os.File
	bw     *bufio.Writer
	crc    uint32
	users  int // appended so far, relative to lo
	tmp    string
	final  string
	done   bool
}

// CreateShard opens a part writer for users [lo, hi) of key under dir
// (created if missing). Ranges from concurrent workers must be
// disjoint; MergeShards enforces that they tile the population.
func CreateShard(dir string, key Key, lo, hi int) (*ShardWriter, error) {
	if err := key.validate(); err != nil {
		return nil, err
	}
	if lo < 0 || hi <= lo || hi > key.Users {
		return nil, fmt.Errorf("snapshot: shard range [%d, %d) invalid for %d users", lo, hi, key.Users)
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("snapshot: %w", err)
	}
	sweepStaleTemps(dir)
	final := key.PartPath(dir, lo, hi)
	f, err := os.CreateTemp(dir, filepath.Base(final)+".tmp*")
	if err != nil {
		return nil, fmt.Errorf("snapshot: %w", err)
	}
	w := &ShardWriter{key: key, lay: key.Layout(), lo: lo, hi: hi, f: f,
		bw: bufio.NewWriterSize(f, 1<<20), tmp: f.Name(), final: final}
	if _, err := w.bw.Write(key.encodePartHeader(lo, hi, (hi-lo)*w.lay.RecordFloats(), 0)); err != nil {
		w.Abort()
		return nil, fmt.Errorf("snapshot: %w", err)
	}
	return w, nil
}

// Layout returns the writer's payload geometry (of the full key).
func (w *ShardWriter) Layout() Layout { return w.lay }

// Range returns the user range [lo, hi) the part covers.
func (w *ShardWriter) Range() (lo, hi int) { return w.lo, w.hi }

// AppendUsers appends whole user records (len must be a multiple of
// Layout().RecordFloats()) in user order within the part's range.
func (w *ShardWriter) AppendUsers(recs []float64) error {
	rf := w.lay.RecordFloats()
	if len(recs)%rf != 0 {
		return fmt.Errorf("snapshot: AppendUsers got %d floats, not a multiple of the %d-float record", len(recs), rf)
	}
	n := len(recs) / rf
	if w.lo+w.users+n > w.hi {
		return fmt.Errorf("snapshot: appending past the shard range [%d, %d)", w.lo, w.hi)
	}
	b := floatBytes(recs)
	w.crc = crc32.Update(w.crc, crcTable, b)
	if _, err := w.bw.Write(b); err != nil {
		return fmt.Errorf("snapshot: %w", err)
	}
	w.users += n
	return nil
}

// Finish seals the part: the full range must have been appended. It
// flushes, patches the header checksum, syncs and atomically renames
// the part into place.
func (w *ShardWriter) Finish() error {
	if w.done {
		return fmt.Errorf("snapshot: shard writer already finished")
	}
	if w.lo+w.users != w.hi {
		w.Abort()
		return fmt.Errorf("snapshot: %d of %d shard users appended", w.users, w.hi-w.lo)
	}
	if err := w.bw.Flush(); err != nil {
		w.Abort()
		return fmt.Errorf("snapshot: %w", err)
	}
	hdr := w.key.encodePartHeader(w.lo, w.hi, (w.hi-w.lo)*w.lay.RecordFloats(), w.crc)
	if _, err := w.f.WriteAt(hdr, 0); err != nil {
		w.Abort()
		return fmt.Errorf("snapshot: %w", err)
	}
	if err := w.f.Sync(); err != nil {
		w.Abort()
		return fmt.Errorf("snapshot: %w", err)
	}
	if err := w.f.Close(); err != nil {
		w.Abort()
		return fmt.Errorf("snapshot: %w", err)
	}
	w.done = true
	if err := os.Rename(w.tmp, w.final); err != nil {
		os.Remove(w.tmp)
		return fmt.Errorf("snapshot: %w", err)
	}
	return nil
}

// Abort discards the partial part file.
func (w *ShardWriter) Abort() {
	if w.done {
		return
	}
	w.done = true
	_ = w.f.Close()
	_ = os.Remove(w.tmp)
}

// partRange is one discovered sealed part.
type partRange struct {
	path   string
	lo, hi int
}

// findParts lists the sealed parts of key under dir, sorted by lo.
func findParts(dir string, key Key) ([]partRange, error) {
	prefix := key.Filename() + ".part-"
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("snapshot: %w", err)
	}
	var parts []partRange
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() || !strings.HasPrefix(name, prefix) || strings.Contains(name, ".tmp") {
			continue
		}
		var lo, hi int
		if _, err := fmt.Sscanf(name[len(prefix):], "%d-%d", &lo, &hi); err != nil {
			continue
		}
		parts = append(parts, partRange{path: filepath.Join(dir, name), lo: lo, hi: hi})
	}
	sort.Slice(parts, func(i, j int) bool { return parts[i].lo < parts[j].lo })
	return parts, nil
}

// MergeShards discovers the sealed parts of key under dir, verifies
// they tile [0, users) exactly, and streams them — re-verifying each
// part's checksum as it goes — through an ordinary Writer into the
// sealed snapshot + manifest, byte-identical to a single-process
// build. On success the consumed part files are removed. It returns
// the number of parts merged.
func MergeShards(dir string, key Key) (int, error) {
	if err := key.validate(); err != nil {
		return 0, err
	}
	parts, err := findParts(dir, key)
	if err != nil {
		return 0, err
	}
	if len(parts) == 0 {
		return 0, fmt.Errorf("snapshot: no sealed parts for %s under %s", key.Filename(), dir)
	}
	next := 0
	for _, p := range parts {
		if p.lo != next {
			return 0, fmt.Errorf("snapshot: parts do not tile the population: next range starts at %d, want %d (have %s)", p.lo, next, filepath.Base(p.path))
		}
		next = p.hi
	}
	if next != key.Users {
		return 0, fmt.Errorf("snapshot: parts cover users [0, %d), store needs [0, %d)", next, key.Users)
	}
	w, err := Create(dir, key)
	if err != nil {
		return 0, err
	}
	lay := key.Layout()
	rf := lay.RecordFloats()
	// Chunked whole-record copies through a float64 buffer: reading
	// into floatBytes of a []float64 keeps the 8-byte alignment
	// AppendUsers' reinterpretation needs.
	chunkRecs := (1 << 20) / (rf * 8)
	if chunkRecs < 1 {
		chunkRecs = 1
	}
	buf := make([]float64, chunkRecs*rf)
	for _, p := range parts {
		if err := mergeOnePart(w, key, p, buf); err != nil {
			w.Abort()
			return 0, err
		}
	}
	if err := w.Finish(); err != nil {
		return 0, err
	}
	for _, p := range parts {
		_ = os.Remove(p.path)
	}
	return len(parts), nil
}

func mergeOnePart(w *Writer, key Key, p partRange, buf []float64) error {
	f, err := os.Open(p.path)
	if err != nil {
		return fmt.Errorf("snapshot: %w", err)
	}
	defer f.Close()
	rf := key.Layout().RecordFloats()
	wantSize := int64(partHdrBytes) + int64(p.hi-p.lo)*int64(rf)*8
	st, err := f.Stat()
	if err != nil {
		return fmt.Errorf("snapshot: %w", err)
	}
	if st.Size() != wantSize {
		return fmt.Errorf("snapshot: part %s is %d bytes, want %d (truncated or foreign)", filepath.Base(p.path), st.Size(), wantSize)
	}
	var hdr [partHdrBytes]byte
	if _, err := io.ReadFull(f, hdr[:]); err != nil {
		return fmt.Errorf("snapshot: %w", err)
	}
	checksum, err := key.checkPartHeader(hdr[:], p.lo, p.hi)
	if err != nil {
		return fmt.Errorf("snapshot: part %s: %w", filepath.Base(p.path), err)
	}
	br := bufio.NewReaderSize(f, 1<<20)
	crc := uint32(0)
	for rem := p.hi - p.lo; rem > 0; {
		n := len(buf) / rf
		if n > rem {
			n = rem
		}
		chunk := buf[:n*rf]
		b := floatBytes(chunk)
		if _, err := io.ReadFull(br, b); err != nil {
			return fmt.Errorf("snapshot: part %s: %w", filepath.Base(p.path), err)
		}
		crc = crc32.Update(crc, crcTable, b)
		if err := w.AppendUsers(chunk); err != nil {
			return err
		}
		rem -= n
	}
	if uint64(crc) != checksum {
		return fmt.Errorf("snapshot: part %s payload checksum %08x != header %08x (corrupt)", filepath.Base(p.path), crc, checksum)
	}
	return nil
}
