package snapshot

// Distributed builds: independent workers (goroutines, processes or
// hosts sharing a filesystem) each seal a contiguous user range
// [lo, hi) as a part file next to the final snapshot, and a final
// MergeShards call validates that the sealed parts tile the population
// exactly and splices them into the canonical snapshot + manifest.
//
// Because the payload is user-major, a part's payload bytes are
// already exactly the bytes the final snapshot needs at that offset —
// so the merge is a verified byte concatenation, and every checksum
// the sealed store carries (header CRC, manifest shard CRCs) is
// recomputed from the parts' CRC tables with the GF(2) combine in
// combine.go instead of re-streaming every record through a Writer.
// MergeShardsStreaming retains the original replay-through-a-Writer
// merge as the independent verify fallback; the two are pinned
// byte-identical.
//
// # Part layout
//
// A part is a sealed, self-checksummed slice of the payload:
//
//	offset 0    magic "RPWSPRT2" (8 bytes)
//	offset 8    header: 16 × uint64
//	              fields 0–9: identical to the snapshot header
//	              (headerVersion … binsPerWeek), then payloadFloats
//	              (of the FULL key, so a part can never be mistaken
//	              for a differently sized population), lo, hi,
//	              partFloats ((hi-lo) × recordFloats), partCRC
//	              (CRC-32C of the part payload, low 32 bits), tableCRC
//	              (CRC-32C of the record-CRC table, low 32 bits)
//	then        payload: users [lo, hi) × record
//	then        table: (hi-lo) × uint32 per-record CRC-32Cs
//
// The per-record table is what lets the merge seal the manifest
// without re-reading a single payload float: record CRCs concatenate
// into manifest shard CRCs and the header checksum by pure CRC
// algebra, and the table itself is cross-checked against partCRC (the
// fold of the table must equal the payload's own checksum) so a
// corrupt table can never produce a sealed store.
//
// Parts use the same temp-file + atomic-rename discipline as the
// snapshot writer: a crashed worker leaves only a temp file (swept by
// the next Create), never a sealed-looking part.

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"io/fs"
	"math"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

const (
	partMagic    = "RPWSPRT2"
	partFields   = 16
	partHdrBytes = 8 + partFields*8
)

// PartPath returns the part-file path for users [lo, hi) of the key
// under dir. The range is zero-padded so lexical order is user order.
func (k Key) PartPath(dir string, lo, hi int) string {
	return filepath.Join(dir, fmt.Sprintf("%s.part-%08d-%08d", k.Filename(), lo, hi))
}

func (k Key) encodePartHeader(lo, hi, partFloats int, crc, tableCRC uint32) []byte {
	buf := make([]byte, partHdrBytes)
	copy(buf, partMagic)
	fields := []uint64{
		headerVersion,
		EngineVersion,
		k.Seed,
		uint64(k.Users),
		uint64(k.Weeks),
		uint64(k.BinWidth.Microseconds()),
		uint64(k.StartMicros),
		math.Float64bits(k.HeavyFraction),
		math.Float64bits(k.WeeklyTrend),
		uint64(k.BinsPerWeek()),
		uint64(k.Layout().PayloadFloats()),
		uint64(lo),
		uint64(hi),
		uint64(partFloats),
		uint64(crc),
		uint64(tableCRC),
	}
	for i, v := range fields {
		binary.LittleEndian.PutUint64(buf[8+8*i:], v)
	}
	return buf
}

// checkPartHeader validates a part header against the key and the
// range its filename claims, returning the payload and record-table
// checksums it seals.
func (k Key) checkPartHeader(buf []byte, lo, hi int) (checksum, tableCRC uint64, err error) {
	if len(buf) < partHdrBytes || string(buf[:8]) != partMagic {
		return 0, 0, fmt.Errorf("snapshot: bad part magic (not a shard part)")
	}
	field := func(i int) uint64 { return binary.LittleEndian.Uint64(buf[8+8*i:]) }
	rf := k.Layout().RecordFloats()
	checks := []struct {
		name string
		got  uint64
		want uint64
	}{
		{"header version", field(0), headerVersion},
		{"engine version", field(1), EngineVersion},
		{"seed", field(2), k.Seed},
		{"users", field(3), uint64(k.Users)},
		{"weeks", field(4), uint64(k.Weeks)},
		{"bin width", field(5), uint64(k.BinWidth.Microseconds())},
		{"start micros", field(6), uint64(k.StartMicros)},
		{"heavy fraction", field(7), math.Float64bits(k.HeavyFraction)},
		{"weekly trend", field(8), math.Float64bits(k.WeeklyTrend)},
		{"bins per week", field(9), uint64(k.BinsPerWeek())},
		{"payload floats", field(10), uint64(k.Layout().PayloadFloats())},
		{"range lo", field(11), uint64(lo)},
		{"range hi", field(12), uint64(hi)},
		{"part floats", field(13), uint64((hi - lo) * rf)},
	}
	for _, c := range checks {
		if c.got != c.want {
			return 0, 0, fmt.Errorf("snapshot: part %s mismatch (file %d, want %d)", c.name, c.got, c.want)
		}
	}
	return field(14), field(15), nil
}

// partSize returns the sealed on-disk size of a part covering
// [lo, hi): header ∥ payload ∥ record-CRC table.
func (k Key) partSize(lo, hi int) int64 {
	rf := int64(k.Layout().RecordFloats())
	return int64(partHdrBytes) + int64(hi-lo)*rf*8 + int64(hi-lo)*4
}

// ShardWriter streams one contiguous user range of a snapshot to a
// sealed part file. It mirrors Writer's contract: append users
// [lo, hi) in order, then Finish (or Abort).
type ShardWriter struct {
	key     Key
	lay     Layout
	lo, hi  int
	f       *os.File
	bw      *bufio.Writer
	crc     uint32
	recCRCs []uint32
	users   int // appended so far, relative to lo
	tmp     string
	final   string
	done    bool
}

// CreateShard opens a part writer for users [lo, hi) of key under dir
// (created if missing). Ranges from concurrent workers must be
// disjoint; MergeShards enforces that they tile the population.
func CreateShard(dir string, key Key, lo, hi int) (*ShardWriter, error) {
	if err := key.validate(); err != nil {
		return nil, err
	}
	if lo < 0 || hi <= lo || hi > key.Users {
		return nil, fmt.Errorf("snapshot: shard range [%d, %d) invalid for %d users", lo, hi, key.Users)
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("snapshot: %w", err)
	}
	sweepStaleTemps(dir)
	final := key.PartPath(dir, lo, hi)
	f, err := os.CreateTemp(dir, filepath.Base(final)+".tmp*")
	if err != nil {
		return nil, fmt.Errorf("snapshot: %w", err)
	}
	w := &ShardWriter{key: key, lay: key.Layout(), lo: lo, hi: hi, f: f,
		bw: bufio.NewWriterSize(f, 1<<20), tmp: f.Name(), final: final}
	if _, err := w.bw.Write(key.encodePartHeader(lo, hi, (hi-lo)*w.lay.RecordFloats(), 0, 0)); err != nil {
		w.Abort()
		return nil, fmt.Errorf("snapshot: %w", err)
	}
	return w, nil
}

// Layout returns the writer's payload geometry (of the full key).
func (w *ShardWriter) Layout() Layout { return w.lay }

// Range returns the user range [lo, hi) the part covers.
func (w *ShardWriter) Range() (lo, hi int) { return w.lo, w.hi }

// AppendUsers appends whole user records (len must be a multiple of
// Layout().RecordFloats()) in user order within the part's range.
func (w *ShardWriter) AppendUsers(recs []float64) error {
	rf := w.lay.RecordFloats()
	if len(recs)%rf != 0 {
		return fmt.Errorf("snapshot: AppendUsers got %d floats, not a multiple of the %d-float record", len(recs), rf)
	}
	n := len(recs) / rf
	if w.lo+w.users+n > w.hi {
		return fmt.Errorf("snapshot: appending past the shard range [%d, %d)", w.lo, w.hi)
	}
	b := floatBytes(recs)
	w.crc = crc32.Update(w.crc, crcTable, b)
	for i := 0; i < n; i++ {
		w.recCRCs = append(w.recCRCs, crc32.Checksum(b[i*rf*8:(i+1)*rf*8], crcTable))
	}
	if _, err := w.bw.Write(b); err != nil {
		return fmt.Errorf("snapshot: %w", err)
	}
	w.users += n
	return nil
}

// encodeCRCTable renders a record-CRC table as its on-disk bytes.
func encodeCRCTable(crcs []uint32) []byte {
	buf := make([]byte, 4*len(crcs))
	for i, c := range crcs {
		binary.LittleEndian.PutUint32(buf[4*i:], c)
	}
	return buf
}

// Finish seals the part: the full range must have been appended. It
// appends the record-CRC table, flushes, patches the header checksums,
// syncs and atomically renames the part into place.
func (w *ShardWriter) Finish() error {
	if w.done {
		return fmt.Errorf("snapshot: shard writer already finished")
	}
	if w.lo+w.users != w.hi {
		w.Abort()
		return fmt.Errorf("snapshot: %d of %d shard users appended", w.users, w.hi-w.lo)
	}
	table := encodeCRCTable(w.recCRCs)
	if _, err := w.bw.Write(table); err != nil {
		w.Abort()
		return fmt.Errorf("snapshot: %w", err)
	}
	if err := w.bw.Flush(); err != nil {
		w.Abort()
		return fmt.Errorf("snapshot: %w", err)
	}
	hdr := w.key.encodePartHeader(w.lo, w.hi, (w.hi-w.lo)*w.lay.RecordFloats(),
		w.crc, crc32.Checksum(table, crcTable))
	if _, err := w.f.WriteAt(hdr, 0); err != nil {
		w.Abort()
		return fmt.Errorf("snapshot: %w", err)
	}
	if err := w.f.Sync(); err != nil {
		w.Abort()
		return fmt.Errorf("snapshot: %w", err)
	}
	if err := w.f.Close(); err != nil {
		w.Abort()
		return fmt.Errorf("snapshot: %w", err)
	}
	w.done = true
	if err := os.Rename(w.tmp, w.final); err != nil {
		os.Remove(w.tmp)
		return fmt.Errorf("snapshot: %w", err)
	}
	return nil
}

// Abort discards the partial part file.
func (w *ShardWriter) Abort() {
	if w.done {
		return
	}
	w.done = true
	_ = w.f.Close()
	_ = os.Remove(w.tmp)
}

// partRange is one discovered sealed part.
type partRange struct {
	path   string
	lo, hi int
}

// findParts lists the sealed parts of key under dir, sorted by lo.
func findParts(dir string, key Key) ([]partRange, error) {
	prefix := key.Filename() + ".part-"
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("snapshot: %w", err)
	}
	var parts []partRange
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() || !strings.HasPrefix(name, prefix) || strings.Contains(name, ".tmp") {
			continue
		}
		var lo, hi int
		if _, err := fmt.Sscanf(name[len(prefix):], "%d-%d", &lo, &hi); err != nil {
			continue
		}
		// The suffix must be exactly the range — anything trailing
		// (a quarantined "….bad", editor droppings) is not a sealed
		// part and must never reach a merge.
		if name[len(prefix):] != fmt.Sprintf("%08d-%08d", lo, hi) {
			continue
		}
		parts = append(parts, partRange{path: filepath.Join(dir, name), lo: lo, hi: hi})
	}
	sort.Slice(parts, func(i, j int) bool { return parts[i].lo < parts[j].lo })
	return parts, nil
}

// checkPartTiling validates that the discovered parts cover [0, users)
// exactly, with no gaps or overlaps.
func checkPartTiling(parts []partRange, key Key, dir string) error {
	if len(parts) == 0 {
		return fmt.Errorf("snapshot: no sealed parts for %s under %s", key.Filename(), dir)
	}
	next := 0
	for _, p := range parts {
		if p.lo != next {
			return fmt.Errorf("snapshot: parts do not tile the population: next range starts at %d, want %d (have %s)", p.lo, next, filepath.Base(p.path))
		}
		next = p.hi
	}
	if next != key.Users {
		return fmt.Errorf("snapshot: parts cover users [0, %d), store needs [0, %d)", next, key.Users)
	}
	return nil
}

// readPartMeta validates one part's size and header, reads its
// record-CRC table (verifying the table's own checksum), and
// cross-checks the table against the payload checksum: the CRC fold of
// the per-record entries must reproduce partCRC exactly, so a sealed
// store can never be derived from a table that disagrees with the
// payload it describes.
func readPartMeta(key Key, p partRange, recShift *crcShift) (payloadCRC uint32, recCRCs []uint32, err error) {
	f, err := os.Open(p.path)
	if err != nil {
		return 0, nil, fmt.Errorf("snapshot: %w", err)
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return 0, nil, fmt.Errorf("snapshot: %w", err)
	}
	if want := key.partSize(p.lo, p.hi); st.Size() != want {
		return 0, nil, fmt.Errorf("snapshot: part %s is %d bytes, want %d (truncated or foreign)", filepath.Base(p.path), st.Size(), want)
	}
	var hdr [partHdrBytes]byte
	if _, err := io.ReadFull(f, hdr[:]); err != nil {
		return 0, nil, fmt.Errorf("snapshot: %w", err)
	}
	checksum, tableCRC, err := key.checkPartHeader(hdr[:], p.lo, p.hi)
	if err != nil {
		return 0, nil, fmt.Errorf("snapshot: part %s: %w", filepath.Base(p.path), err)
	}
	rf := key.Layout().RecordFloats()
	table := make([]byte, 4*(p.hi-p.lo))
	if _, err := f.ReadAt(table, int64(partHdrBytes)+int64(p.hi-p.lo)*int64(rf)*8); err != nil {
		return 0, nil, fmt.Errorf("snapshot: part %s table: %w", filepath.Base(p.path), err)
	}
	if got := crc32.Checksum(table, crcTable); uint64(got) != tableCRC {
		return 0, nil, fmt.Errorf("snapshot: part %s record table checksum %08x != header %08x (corrupt)", filepath.Base(p.path), got, tableCRC)
	}
	recCRCs = make([]uint32, p.hi-p.lo)
	fold := uint32(0)
	for i := range recCRCs {
		recCRCs[i] = binary.LittleEndian.Uint32(table[4*i:])
		fold = recShift.combine(fold, recCRCs[i])
	}
	if uint64(fold) != checksum {
		return 0, nil, fmt.Errorf("snapshot: part %s record table folds to %08x, payload checksum is %08x (inconsistent part)", filepath.Base(p.path), fold, checksum)
	}
	return uint32(checksum), recCRCs, nil
}

// MergeShards discovers the sealed parts of key under dir, verifies
// they tile [0, users) exactly, and splices them into the sealed
// snapshot + manifest, byte-identical to a single-process build. The
// user-major payload makes part payloads byte-exact slices of the
// final store, so the merge concatenates them with verified bulk byte
// copies and derives every checksum — the header CRC and the
// manifest's shard and record tables — from the parts' record-CRC
// tables by CRC combination, never re-streaming records through a
// Writer. On success the consumed part files are removed. It returns
// the number of parts merged.
func MergeShards(dir string, key Key) (int, error) {
	if err := key.validate(); err != nil {
		return 0, err
	}
	parts, err := findParts(dir, key)
	if err != nil {
		return 0, err
	}
	if err := checkPartTiling(parts, key, dir); err != nil {
		return 0, err
	}
	lay := key.Layout()
	recBytes := int64(lay.RecordFloats()) * 8
	recShift := makeCRCShift(recBytes)

	// Pass 1: headers + record-CRC tables, each table cross-checked
	// against its part's payload checksum.
	recCRCs := make([]uint32, 0, key.Users)
	partCRCs := make([]uint32, len(parts))
	for i, p := range parts {
		crc, tbl, err := readPartMeta(key, p, &recShift)
		if err != nil {
			return 0, err
		}
		partCRCs[i] = crc
		recCRCs = append(recCRCs, tbl...)
	}

	// Derive the sealed store's checksums from the tables alone.
	total := uint32(0)
	for i, p := range parts {
		total = crc32Combine(total, partCRCs[i], int64(p.hi-p.lo)*recBytes)
	}
	shardCRCs := make([]uint32, ManifestShards(key.Users))
	for u, rc := range recCRCs {
		si := u / ManifestShardUsers
		shardCRCs[si] = recShift.combine(shardCRCs[si], rc)
	}

	// Pass 2: splice. The combined checksum is known up front, so the
	// final header is written first and never patched.
	sweepStaleTemps(dir)
	final := key.Path(dir)
	f, err := os.CreateTemp(dir, key.Filename()+".tmp*")
	if err != nil {
		return 0, fmt.Errorf("snapshot: %w", err)
	}
	tmp := f.Name()
	fail := func(err error) (int, error) {
		f.Close()
		os.Remove(tmp)
		return 0, err
	}
	bw := bufio.NewWriterSize(f, 1<<20)
	if _, err := bw.Write(key.encodeHeader(total, lay.PayloadFloats())); err != nil {
		return fail(fmt.Errorf("snapshot: %w", err))
	}
	for i, p := range parts {
		if err := spliceOnePart(bw, key, p, partCRCs[i]); err != nil {
			return fail(err)
		}
	}
	if err := bw.Flush(); err != nil {
		return fail(fmt.Errorf("snapshot: %w", err))
	}
	if err := f.Sync(); err != nil {
		return fail(fmt.Errorf("snapshot: %w", err))
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return 0, fmt.Errorf("snapshot: %w", err)
	}
	if err := os.Rename(tmp, final); err != nil {
		os.Remove(tmp)
		return 0, fmt.Errorf("snapshot: %w", err)
	}
	if err := writeManifest(final+manifestSuffix, key, shardCRCs, recCRCs); err != nil {
		return 0, fmt.Errorf("snapshot: manifest: %w", err)
	}
	for _, p := range parts {
		_ = os.Remove(p.path)
	}
	return len(parts), nil
}

// spliceOnePart bulk-copies one part's payload bytes into the
// destination, re-verifying the part checksum as the bytes stream
// through (so a part corrupted after pass 1 still cannot seal).
func spliceOnePart(dst io.Writer, key Key, p partRange, wantCRC uint32) error {
	f, err := os.Open(p.path)
	if err != nil {
		return fmt.Errorf("snapshot: %w", err)
	}
	defer f.Close()
	payloadBytes := int64(p.hi-p.lo) * int64(key.Layout().RecordFloats()) * 8
	if _, err := f.Seek(partHdrBytes, io.SeekStart); err != nil {
		return fmt.Errorf("snapshot: %w", err)
	}
	crc := uint32(0)
	buf := make([]byte, 1<<20)
	for rem := payloadBytes; rem > 0; {
		n := int64(len(buf))
		if n > rem {
			n = rem
		}
		if _, err := io.ReadFull(f, buf[:n]); err != nil {
			return fmt.Errorf("snapshot: part %s: %w", filepath.Base(p.path), err)
		}
		crc = crc32.Update(crc, crcTable, buf[:n])
		if _, err := dst.Write(buf[:n]); err != nil {
			return fmt.Errorf("snapshot: %w", err)
		}
		rem -= n
	}
	if crc != wantCRC {
		return fmt.Errorf("snapshot: part %s payload checksum %08x != header %08x (corrupt)", filepath.Base(p.path), crc, wantCRC)
	}
	return nil
}

// PartInfo describes one sealed part file of a distributed build.
// ListParts returns it with only the discovery fields (Path, Lo, Hi)
// populated; VerifyPart fills Bytes and CRC after proving the part
// sound end to end.
type PartInfo struct {
	Path   string
	Lo, Hi int    // user range [Lo, Hi)
	Bytes  int64  // sealed on-disk size (header ∥ payload ∥ CRC table)
	CRC    uint32 // CRC-32C of the part payload
}

// ListParts returns the sealed parts of key under dir, sorted by Lo.
// Discovery only: the parts are not validated (a truncated or corrupt
// part still lists); callers that need proof run VerifyPart per part.
// Quarantined "*.bad" files and in-flight temps are never listed.
func ListParts(dir string, key Key) ([]PartInfo, error) {
	if err := key.validate(); err != nil {
		return nil, err
	}
	parts, err := findParts(dir, key)
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			return nil, nil // no store directory yet: a cold build, not an error
		}
		return nil, err
	}
	out := make([]PartInfo, len(parts))
	for i, p := range parts {
		out[i] = PartInfo{Path: p.path, Lo: p.lo, Hi: p.hi}
	}
	return out, nil
}

// VerifyPart proves one sealed part sound end to end: size, header
// (against the key and the range), record-CRC table self-checksum,
// table-vs-payload-checksum consistency, and a full streaming read of
// the payload against the sealed CRC. It is the resume gate of a
// fault-tolerant coordinator — only a part that passes may be adopted
// as done work; anything else is quarantined and rebuilt. The returned
// PartInfo carries the sealed size and payload CRC.
func VerifyPart(dir string, key Key, lo, hi int) (PartInfo, error) {
	if err := key.validate(); err != nil {
		return PartInfo{}, err
	}
	if lo < 0 || hi <= lo || hi > key.Users {
		return PartInfo{}, fmt.Errorf("snapshot: part range [%d, %d) invalid for %d users", lo, hi, key.Users)
	}
	p := partRange{path: key.PartPath(dir, lo, hi), lo: lo, hi: hi}
	recShift := makeCRCShift(int64(key.Layout().RecordFloats()) * 8)
	crc, _, err := readPartMeta(key, p, &recShift)
	if err != nil {
		return PartInfo{}, err
	}
	// readPartMeta proves header and table; the payload bytes
	// themselves still need one streaming pass against the sealed CRC.
	if err := spliceOnePart(io.Discard, key, p, crc); err != nil {
		return PartInfo{}, err
	}
	return PartInfo{Path: p.path, Lo: lo, Hi: hi, Bytes: key.partSize(lo, hi), CRC: crc}, nil
}

// QuarantineSuffix marks a part file that failed verification and was
// moved out of the build's way. Quarantined files are invisible to
// ListParts/MergeShards and are reaped by GC once they age out.
const QuarantineSuffix = ".bad"

// QuarantinePart renames a failed part to its quarantine name and
// returns that name. An existing quarantine file for the same part is
// replaced — the newest corpse is the one worth examining.
func QuarantinePart(path string) (string, error) {
	bad := path + QuarantineSuffix
	if err := os.Rename(path, bad); err != nil {
		return "", fmt.Errorf("snapshot: quarantine: %w", err)
	}
	return bad, nil
}

// MergeShardsStreaming is the independent verify fallback for
// MergeShards: it replays every part record through an ordinary Writer
// — recomputing every record CRC from the payload floats instead of
// trusting the parts' tables — and seals the identical snapshot +
// manifest. It exists so the splice's CRC algebra is cross-checkable
// end to end (the byte-identity of the two merges is pinned in tests)
// and as the recovery path if a part's table is ever suspect. On
// success the consumed part files are removed.
func MergeShardsStreaming(dir string, key Key) (int, error) {
	if err := key.validate(); err != nil {
		return 0, err
	}
	parts, err := findParts(dir, key)
	if err != nil {
		return 0, err
	}
	if err := checkPartTiling(parts, key, dir); err != nil {
		return 0, err
	}
	w, err := Create(dir, key)
	if err != nil {
		return 0, err
	}
	lay := key.Layout()
	rf := lay.RecordFloats()
	// Chunked whole-record copies through a float64 buffer: reading
	// into floatBytes of a []float64 keeps the 8-byte alignment
	// AppendUsers' reinterpretation needs.
	chunkRecs := (1 << 20) / (rf * 8)
	if chunkRecs < 1 {
		chunkRecs = 1
	}
	buf := make([]float64, chunkRecs*rf)
	for _, p := range parts {
		if err := mergeOnePart(w, key, p, buf); err != nil {
			w.Abort()
			return 0, err
		}
	}
	if err := w.Finish(); err != nil {
		return 0, err
	}
	for _, p := range parts {
		_ = os.Remove(p.path)
	}
	return len(parts), nil
}

func mergeOnePart(w *Writer, key Key, p partRange, buf []float64) error {
	f, err := os.Open(p.path)
	if err != nil {
		return fmt.Errorf("snapshot: %w", err)
	}
	defer f.Close()
	rf := key.Layout().RecordFloats()
	st, err := f.Stat()
	if err != nil {
		return fmt.Errorf("snapshot: %w", err)
	}
	if want := key.partSize(p.lo, p.hi); st.Size() != want {
		return fmt.Errorf("snapshot: part %s is %d bytes, want %d (truncated or foreign)", filepath.Base(p.path), st.Size(), want)
	}
	var hdr [partHdrBytes]byte
	if _, err := io.ReadFull(f, hdr[:]); err != nil {
		return fmt.Errorf("snapshot: %w", err)
	}
	checksum, tableCRC, err := key.checkPartHeader(hdr[:], p.lo, p.hi)
	if err != nil {
		return fmt.Errorf("snapshot: part %s: %w", filepath.Base(p.path), err)
	}
	br := bufio.NewReaderSize(f, 1<<20)
	crc := uint32(0)
	for rem := p.hi - p.lo; rem > 0; {
		n := len(buf) / rf
		if n > rem {
			n = rem
		}
		chunk := buf[:n*rf]
		b := floatBytes(chunk)
		if _, err := io.ReadFull(br, b); err != nil {
			return fmt.Errorf("snapshot: part %s: %w", filepath.Base(p.path), err)
		}
		crc = crc32.Update(crc, crcTable, b)
		if err := w.AppendUsers(chunk); err != nil {
			return err
		}
		rem -= n
	}
	if uint64(crc) != checksum {
		return fmt.Errorf("snapshot: part %s payload checksum %08x != header %08x (corrupt)", filepath.Base(p.path), crc, checksum)
	}
	table := make([]byte, 4*(p.hi-p.lo))
	if _, err := io.ReadFull(br, table); err != nil {
		return fmt.Errorf("snapshot: part %s table: %w", filepath.Base(p.path), err)
	}
	if got := crc32.Checksum(table, crcTable); uint64(got) != tableCRC {
		return fmt.Errorf("snapshot: part %s record table checksum %08x != header %08x (corrupt)", filepath.Base(p.path), got, tableCRC)
	}
	return nil
}
