//go:build linux

package snapshot

import "syscall"

// dropPages releases a mapped byte range from the process's resident
// set. For a read-only MAP_SHARED file mapping MADV_DONTNEED is
// non-destructive: a later access refaults the page from the file (or
// page cache). Best effort — a failure just leaves pages resident.
func dropPages(b []byte) {
	if len(b) == 0 {
		return
	}
	_ = syscall.Madvise(b, syscall.MADV_DONTNEED)
}
