package snapshot

import (
	"bytes"
	"os"
	"testing"
	"time"
)

// sealOnePart seals users [lo, hi) of a deterministic payload as a
// part under dir and returns the part's on-disk bytes.
func sealOnePart(t *testing.T, dir string, key Key, lo, hi int) []byte {
	t.Helper()
	payload := testPayload(key)
	sealParts(t, dir, key, payload, []int{lo, hi})
	raw, err := os.ReadFile(key.PartPath(dir, lo, hi))
	if err != nil {
		t.Fatal(err)
	}
	return raw
}

// TestChunkTransferRoundTrip streams a sealed part through
// PartServer → PartReceiver in small chunks and pins the received
// file byte-identical to the source, with VerifyPart accepting it.
func TestChunkTransferRoundTrip(t *testing.T) {
	key := testKey(8, 1, 6*time.Hour)
	src, dst := t.TempDir(), t.TempDir()
	want := sealOnePart(t, src, key, 0, key.Users)

	srv, err := OpenPartServer(src, key, 0, key.Users)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	if srv.Size() != int64(len(want)) {
		t.Fatalf("server size %d, part is %d bytes", srv.Size(), len(want))
	}
	rcv, err := NewPartReceiver(dst, key, 0, key.Users)
	if err != nil {
		t.Fatal(err)
	}
	defer rcv.Abort()
	if err := rcv.Expect(srv.Size(), srv.CRC()); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 0, 777)
	for rcv.Offset() < srv.Size() {
		data, crc, err := srv.ChunkAt(rcv.Offset(), 777, buf[:cap(buf)])
		if err != nil {
			t.Fatal(err)
		}
		if err := rcv.WriteChunk(rcv.Offset(), data, crc); err != nil {
			t.Fatal(err)
		}
	}
	if err := rcv.Commit(); err != nil {
		t.Fatal(err)
	}
	if rcv.Restreamed() != 0 {
		t.Fatalf("clean transfer restreamed %d bytes", rcv.Restreamed())
	}
	got, err := os.ReadFile(key.PartPath(dst, 0, key.Users))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("received part bytes differ from source")
	}
	if _, err := VerifyPart(dst, key, 0, key.Users); err != nil {
		t.Fatalf("received part failed verification: %v", err)
	}
}

// TestChunkReceiverResume pins the resume contract: a transfer broken
// mid-stream resumes at Offset() — even against a second server over
// a byte-identical copy of the part (the host-switch case) — and the
// tail fetched after the break is strictly smaller than the part.
func TestChunkReceiverResume(t *testing.T) {
	key := testKey(8, 1, 6*time.Hour)
	srcA, srcB, dst := t.TempDir(), t.TempDir(), t.TempDir()
	want := sealOnePart(t, srcA, key, 0, key.Users)
	if got := sealOnePart(t, srcB, key, 0, key.Users); !bytes.Equal(got, want) {
		t.Fatal("deterministic seal produced differing parts")
	}

	rcv, err := NewPartReceiver(dst, key, 0, key.Users)
	if err != nil {
		t.Fatal(err)
	}
	defer rcv.Abort()

	// Session 1 against host A dies after ~1/3 of the part.
	srvA, err := OpenPartServer(srcA, key, 0, key.Users)
	if err != nil {
		t.Fatal(err)
	}
	if err := rcv.Expect(srvA.Size(), srvA.CRC()); err != nil {
		t.Fatal(err)
	}
	for rcv.Offset() < srvA.Size()/3 {
		data, crc, err := srvA.ChunkAt(rcv.Offset(), 512, nil)
		if err != nil {
			t.Fatal(err)
		}
		if err := rcv.WriteChunk(rcv.Offset(), data, crc); err != nil {
			t.Fatal(err)
		}
	}
	srvA.Close()
	resumeAt := rcv.Offset()
	if resumeAt == 0 || resumeAt >= int64(len(want)) {
		t.Fatalf("bad break point %d of %d", resumeAt, len(want))
	}

	// Session 2 against host B re-declares the same end state and
	// fetches only the tail.
	srvB, err := OpenPartServer(srcB, key, 0, key.Users)
	if err != nil {
		t.Fatal(err)
	}
	defer srvB.Close()
	if err := rcv.Expect(srvB.Size(), srvB.CRC()); err != nil {
		t.Fatal(err)
	}
	if rcv.Offset() != resumeAt {
		t.Fatalf("re-declaring the same transfer moved the offset: %d → %d", resumeAt, rcv.Offset())
	}
	var tail int64
	for rcv.Offset() < srvB.Size() {
		data, crc, err := srvB.ChunkAt(rcv.Offset(), 512, nil)
		if err != nil {
			t.Fatal(err)
		}
		if err := rcv.WriteChunk(rcv.Offset(), data, crc); err != nil {
			t.Fatal(err)
		}
		tail += int64(len(data))
	}
	if tail >= int64(len(want)) {
		t.Fatalf("resume re-streamed %d bytes, the whole %d-byte part", tail, len(want))
	}
	if err := rcv.Commit(); err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(key.PartPath(dst, 0, key.Users))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("resumed part bytes differ from source")
	}
}

// TestChunkReceiverRejects pins the refusal surface: corrupt chunks,
// gapped offsets, oversized chunks, commits before completion, and a
// changed Expect discarding partial data.
func TestChunkReceiverRejects(t *testing.T) {
	key := testKey(8, 1, 6*time.Hour)
	src, dst := t.TempDir(), t.TempDir()
	sealOnePart(t, src, key, 0, key.Users)
	srv, err := OpenPartServer(src, key, 0, key.Users)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	rcv, err := NewPartReceiver(dst, key, 0, key.Users)
	if err != nil {
		t.Fatal(err)
	}
	defer rcv.Abort()

	data, crc, err := srv.ChunkAt(0, 1024, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := rcv.WriteChunk(0, data, crc); err == nil {
		t.Fatal("WriteChunk before Expect succeeded")
	}
	if err := rcv.Expect(srv.Size(), srv.CRC()); err != nil {
		t.Fatal(err)
	}
	flipped := append([]byte(nil), data...)
	flipped[len(flipped)/2] ^= 0x40
	if err := rcv.WriteChunk(0, flipped, crc); err == nil {
		t.Fatal("corrupt chunk accepted")
	}
	if err := rcv.WriteChunk(int64(len(data))+8, data, crc); err == nil {
		t.Fatal("gapped chunk accepted")
	}
	if err := rcv.Commit(); err == nil {
		t.Fatal("commit before completion succeeded")
	}
	if err := rcv.WriteChunk(0, data, crc); err != nil {
		t.Fatal(err)
	}
	// Re-delivering the same chunk is harmless and counted restreamed.
	if err := rcv.WriteChunk(0, data, crc); err != nil {
		t.Fatal(err)
	}
	if rcv.Restreamed() != int64(len(data)) {
		t.Fatalf("restreamed = %d, want %d", rcv.Restreamed(), len(data))
	}
	// A different end state discards the partial transfer.
	if err := rcv.Expect(srv.Size(), srv.CRC()^1); err != nil {
		t.Fatal(err)
	}
	if rcv.Offset() != 0 {
		t.Fatalf("changed Expect kept %d bytes", rcv.Offset())
	}
}
