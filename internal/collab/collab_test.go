package collab

import (
	"testing"

	"repro/internal/attack"
	"repro/internal/core"
	"repro/internal/features"
	"repro/internal/stats"
	"repro/internal/trace"
)

func TestConfigValidation(t *testing.T) {
	if _, err := New(Config{Quorum: 0}); err == nil {
		t.Fatal("quorum 0 accepted")
	}
	if _, err := New(Config{Quorum: 1, SentinelWeight: -1}); err == nil {
		t.Fatal("negative weight accepted")
	}
	if d, err := New(Config{Quorum: 2}); err != nil || d == nil {
		t.Fatalf("valid config rejected: %v", err)
	}
}

func TestVotesAndEvents(t *testing.T) {
	d, err := New(Config{Quorum: 2})
	if err != nil {
		t.Fatal(err)
	}
	alarms := [][]bool{
		{true, false, true, false},
		{true, false, false, false},
		{false, false, true, false},
	}
	votes, err := d.Votes(alarms)
	if err != nil {
		t.Fatal(err)
	}
	wantVotes := []int{2, 0, 2, 0}
	for b := range wantVotes {
		if votes[b] != wantVotes[b] {
			t.Fatalf("votes = %v, want %v", votes, wantVotes)
		}
	}
	events, err := d.Events(alarms)
	if err != nil {
		t.Fatal(err)
	}
	wantEvents := []bool{true, false, true, false}
	for b := range wantEvents {
		if events[b] != wantEvents[b] {
			t.Fatalf("events = %v, want %v", events, wantEvents)
		}
	}
}

func TestSentinelWeight(t *testing.T) {
	d, err := New(Config{Quorum: 3, SentinelWeight: 3, Sentinels: []int{1}})
	if err != nil {
		t.Fatal(err)
	}
	// Only the sentinel alarms: its weight alone meets the quorum.
	alarms := [][]bool{
		{false},
		{true},
		{false},
	}
	events, err := d.Events(alarms)
	if err != nil {
		t.Fatal(err)
	}
	if !events[0] {
		t.Fatal("sentinel vote did not trigger event")
	}
}

// TestQuorumBoundary pins the exact quorum semantics: v >= Quorum
// declares an event, v == Quorum-1 does not. One vote must never be
// the difference between "met" and "nearly met" silently.
func TestQuorumBoundary(t *testing.T) {
	d, err := New(Config{Quorum: 3})
	if err != nil {
		t.Fatal(err)
	}
	alarms := [][]bool{
		// window 0: exactly 3 of 4 hosts alarm (quorum exactly met);
		// window 1: 2 of 4 (one short); window 2: all 4 (exceeded).
		{true, true, true},
		{true, true, true},
		{true, false, true},
		{false, false, true},
	}
	events, err := d.Events(alarms)
	if err != nil {
		t.Fatal(err)
	}
	if !events[0] {
		t.Error("quorum exactly met did not declare an event")
	}
	if events[1] {
		t.Error("one vote short of quorum declared an event")
	}
	if !events[2] {
		t.Error("quorum exceeded did not declare an event")
	}
}

// TestSentinelAloneMeetsQuorum covers the sentinel-dominance edge:
// when SentinelWeight >= Quorum, a single sentinel vote is a fleet
// event on its own, while a lone ordinary host stays below quorum.
func TestSentinelAloneMeetsQuorum(t *testing.T) {
	d, err := New(Config{Quorum: 4, SentinelWeight: 4, Sentinels: []int{2}})
	if err != nil {
		t.Fatal(err)
	}
	alarms := [][]bool{
		{true, false}, // ordinary host alone: no event
		{false, false},
		{false, true}, // sentinel alone: event
	}
	votes, err := d.Votes(alarms)
	if err != nil {
		t.Fatal(err)
	}
	if votes[0] != 1 || votes[1] != 4 {
		t.Fatalf("votes = %v, want [1 4]", votes)
	}
	events, err := d.Events(alarms)
	if err != nil {
		t.Fatal(err)
	}
	if events[0] || !events[1] {
		t.Fatalf("events = %v, want [false true]", events)
	}
}

// TestTallyDeduplicatesVotes checks that duplicate alarm reports from
// the same host in one window — a re-flushed batch after a
// reconnect, a duplicated frame — are counted once: votes come from
// the deduplicated matrix, so quorum cannot be gamed by repetition.
func TestTallyDeduplicatesVotes(t *testing.T) {
	tally, err := NewTally(3, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Host 0 reports window 0 three times; host 1 once.
	for i := 0; i < 3; i++ {
		if err := tally.Mark(0, 0); err != nil {
			t.Fatal(err)
		}
	}
	if err := tally.Mark(1, 0); err != nil {
		t.Fatal(err)
	}
	d, err := New(Config{Quorum: 3})
	if err != nil {
		t.Fatal(err)
	}
	votes, err := d.Votes(tally.Alarms())
	if err != nil {
		t.Fatal(err)
	}
	if votes[0] != 2 {
		t.Fatalf("votes[0] = %d, want 2 (duplicates must collapse)", votes[0])
	}
	events, err := d.Events(tally.Alarms())
	if err != nil {
		t.Fatal(err)
	}
	if events[0] {
		t.Fatal("duplicate votes from one host reached quorum")
	}
}

// TestTallyValidation covers the tally's bounds checking.
func TestTallyValidation(t *testing.T) {
	if _, err := NewTally(0, 5); err == nil {
		t.Fatal("zero hosts accepted")
	}
	if _, err := NewTally(2, 0); err == nil {
		t.Fatal("zero windows accepted")
	}
	tally, err := NewTally(2, 3)
	if err != nil {
		t.Fatal(err)
	}
	if err := tally.Mark(2, 0); err == nil {
		t.Fatal("out-of-range host accepted")
	}
	if err := tally.Mark(0, 3); err == nil {
		t.Fatal("out-of-range window accepted")
	}
	if err := tally.Mark(-1, 0); err == nil {
		t.Fatal("negative host accepted")
	}
}

func TestVotesErrors(t *testing.T) {
	d, _ := New(Config{Quorum: 1})
	if _, err := d.Votes(nil); err == nil {
		t.Fatal("empty fleet accepted")
	}
	if _, err := d.Votes([][]bool{{true}, {true, false}}); err == nil {
		t.Fatal("ragged series accepted")
	}
}

func TestEvaluateConfusion(t *testing.T) {
	d, _ := New(Config{Quorum: 1})
	alarms := [][]bool{{true, false, true, false}}
	attacked := []bool{true, true, false, false}
	c, err := d.Evaluate(alarms, attacked)
	if err != nil {
		t.Fatal(err)
	}
	want := stats.Confusion{TP: 1, FN: 1, FP: 1, TN: 1}
	if c != want {
		t.Fatalf("confusion = %+v", c)
	}
	if _, err := d.Evaluate(alarms, []bool{true}); err == nil {
		t.Fatal("length mismatch accepted")
	}
}

func TestAlarmSeries(t *testing.T) {
	test := [][]float64{{1, 5, 2}, {10, 1, 1}}
	overlay := []float64{0, 0, 4}
	thr := []float64{3, 5}
	alarms, err := AlarmSeries(test, overlay, thr)
	if err != nil {
		t.Fatal(err)
	}
	want := [][]bool{{false, true, true}, {true, false, false}}
	for u := range want {
		for b := range want[u] {
			if alarms[u][b] != want[u][b] {
				t.Fatalf("alarms = %v, want %v", alarms, want)
			}
		}
	}
	if _, err := AlarmSeries(test, overlay, []float64{1}); err == nil {
		t.Fatal("threshold count mismatch accepted")
	}
	if _, err := AlarmSeries(test, []float64{1}, thr); err == nil {
		t.Fatal("overlay length mismatch accepted")
	}
}

// TestCollaborationCompensatesForPoorDetectors reproduces the paper's
// §6.2 observation on generated data: under full diversity some users
// have poor individual detection of the Storm bot, but "those users
// with high detection rates can inform other users when malicious
// events occur" — the fleet-level detection rate beats the median
// individual rate, while fleet-level false positives stay controlled.
func TestCollaborationCompensatesForPoorDetectors(t *testing.T) {
	pop := trace.MustPopulation(trace.Config{Users: 40, Weeks: 2, Seed: 71})
	f := features.Distinct
	var train, test [][]float64
	for _, u := range pop.Users {
		m := u.Series()
		lo0, hi0 := m.WeekRange(0)
		lo1, hi1 := m.WeekRange(1)
		train = append(train, m.ColumnSlice(f, lo0, hi0))
		test = append(test, m.ColumnSlice(f, lo1, hi1))
	}
	dists := make([]*stats.Empirical, len(train))
	for u := range dists {
		var err error
		if dists[u], err = stats.NewEmpirical(train[u]); err != nil {
			t.Fatal(err)
		}
	}
	asn, err := core.Configure(dists, core.Policy{
		Heuristic: core.Percentile{Q: 0.99}, Grouping: core.FullDiversity{}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	bot, err := attack.NewStorm(attack.StormConfig{Bins: len(test[0]), Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	overlay := bot.Overlay().Overlay

	// Individual detection rates.
	var detRates []float64
	for u := range test {
		conf, err := core.Evaluate(test[u], overlay, asn.Thresholds[u])
		if err != nil {
			t.Fatal(err)
		}
		detRates = append(detRates, conf.Recall())
	}
	medianDet := stats.MustEmpirical(detRates).MustQuantile(0.5)

	// Collaborative fleet detection with a small quorum and the
	// Table-2 sentinels carrying double weight.
	alarms, err := AlarmSeries(test, overlay, asn.Thresholds)
	if err != nil {
		t.Fatal(err)
	}
	attacked := make([]bool, len(overlay))
	for b, v := range overlay {
		attacked[b] = v > 0
	}
	d, err := New(Config{Quorum: 5, SentinelWeight: 2, Sentinels: asn.BestUsers(10)})
	if err != nil {
		t.Fatal(err)
	}
	conf, err := d.Evaluate(alarms, attacked)
	if err != nil {
		t.Fatal(err)
	}
	fleetDet := conf.Recall()
	if fleetDet <= medianDet {
		t.Fatalf("fleet detection %.2f not above median individual %.2f", fleetDet, medianDet)
	}
	// Fleet-level false positives on clean windows must stay rare.
	cleanAlarms, err := AlarmSeries(test, nil, asn.Thresholds)
	if err != nil {
		t.Fatal(err)
	}
	cleanEvents, err := d.Events(cleanAlarms)
	if err != nil {
		t.Fatal(err)
	}
	fp := 0
	for _, ev := range cleanEvents {
		if ev {
			fp++
		}
	}
	if frac := float64(fp) / float64(len(cleanEvents)); frac > 0.05 {
		t.Fatalf("fleet false-event rate %.3f too high", frac)
	}
}
