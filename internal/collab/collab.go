// Package collab implements the collaborative detection scheme the
// paper sketches as future work (§5, §7): because personalized
// thresholds make different users sensitive to different attacks
// ("one subset of users surface as sensitive to a particular kind of
// attack... while another subset turns out to be useful for a
// different attack"), users with high detection capability can inform
// the rest when a fleet-wide event is underway.
//
// The scheme here is the simplest credible instantiation: the console
// watches per-window alarm counts across the fleet; when the number
// of hosts alarming on the same feature in the same window reaches a
// quorum, a fleet-wide event is declared and every host is considered
// alerted. Sentinels — the k lowest-threshold hosts for a feature
// (Table 2's "best users") — can optionally carry extra weight.
package collab

import (
	"fmt"
	"math"

	"repro/internal/features"
	"repro/internal/stats"
)

// Config parameterizes the collaborative detector.
type Config struct {
	// Quorum is the number of simultaneously alarming hosts that
	// declares a fleet-wide event. Must be >= 1 unless QuorumFraction
	// is set.
	Quorum int
	// QuorumFraction, when positive, expresses quorum as a fraction of
	// the participating population instead of an absolute count:
	// ceil(fraction × hosts), never below 1 (nor below Quorum when both
	// are set). A degraded fleet that lost agents re-derives a sane
	// quorum from its surviving population this way, instead of
	// demanding votes from the dead. Must be in (0, 1].
	QuorumFraction float64
	// SentinelWeight is the vote weight of sentinel hosts (>= 1;
	// default 1 treats everyone equally).
	SentinelWeight int
	// Sentinels lists the user indices acting as sentinels (the
	// lowest-threshold "best users" for the feature under watch).
	Sentinels []int
}

// ResolveQuorum returns the effective absolute quorum for a
// population of hosts: the larger of Quorum and
// ceil(QuorumFraction × hosts), floored at 1.
func (c Config) ResolveQuorum(hosts int) int {
	q := c.Quorum
	if c.QuorumFraction > 0 {
		if fq := int(math.Ceil(c.QuorumFraction * float64(hosts))); fq > q {
			q = fq
		}
	}
	if q < 1 {
		q = 1
	}
	return q
}

func (c Config) withDefaults() (Config, error) {
	if c.QuorumFraction < 0 || c.QuorumFraction > 1 {
		return c, fmt.Errorf("collab: quorum fraction must be in [0, 1], got %g", c.QuorumFraction)
	}
	if c.Quorum < 1 && c.QuorumFraction == 0 {
		return c, fmt.Errorf("collab: quorum must be >= 1, got %d", c.Quorum)
	}
	if c.Quorum < 0 {
		return c, fmt.Errorf("collab: quorum must not be negative, got %d", c.Quorum)
	}
	if c.SentinelWeight == 0 {
		c.SentinelWeight = 1
	}
	if c.SentinelWeight < 1 {
		return c, fmt.Errorf("collab: sentinel weight must be >= 1, got %d", c.SentinelWeight)
	}
	return c, nil
}

// Detector evaluates fleet-wide events from per-host alarm series.
type Detector struct {
	cfg      Config
	sentinel map[int]bool
}

// New creates a collaborative detector.
func New(cfg Config) (*Detector, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	d := &Detector{cfg: cfg, sentinel: make(map[int]bool, len(cfg.Sentinels))}
	for _, u := range cfg.Sentinels {
		d.sentinel[u] = true
	}
	return d, nil
}

// Feature is the feature type alias re-exported for callers.
type Feature = features.Feature

// Votes returns the per-window weighted alarm count across hosts.
// alarms[u][b] reports whether host u alarmed in window b; all hosts
// must have equal-length series.
func (d *Detector) Votes(alarms [][]bool) ([]int, error) {
	if len(alarms) == 0 {
		return nil, fmt.Errorf("collab: no hosts")
	}
	bins := len(alarms[0])
	votes := make([]int, bins)
	for u, series := range alarms {
		if len(series) != bins {
			return nil, fmt.Errorf("collab: host %d has %d windows, want %d", u, len(series), bins)
		}
		w := 1
		if d.sentinel[u] {
			w = d.cfg.SentinelWeight
		}
		for b, alarm := range series {
			if alarm {
				votes[b] += w
			}
		}
	}
	return votes, nil
}

// Events returns the windows in which the fleet-wide quorum is met.
func (d *Detector) Events(alarms [][]bool) ([]bool, error) {
	votes, err := d.Votes(alarms)
	if err != nil {
		return nil, err
	}
	quorum := d.cfg.ResolveQuorum(len(alarms))
	events := make([]bool, len(votes))
	for b, v := range votes {
		events[b] = v >= quorum
	}
	return events, nil
}

// Evaluate scores collaborative detection of a fleet-wide attack:
// attacked[b] marks windows in which the attack was active on every
// host. A fleet event on an attacked window is a true positive; on a
// clean window, a false positive. The returned confusion is
// fleet-level (one decision per window, not per host).
func (d *Detector) Evaluate(alarms [][]bool, attacked []bool) (stats.Confusion, error) {
	events, err := d.Events(alarms)
	if err != nil {
		return stats.Confusion{}, err
	}
	if len(attacked) != len(events) {
		return stats.Confusion{}, fmt.Errorf("collab: attacked series %d windows, want %d", len(attacked), len(events))
	}
	var c stats.Confusion
	for b, ev := range events {
		switch {
		case attacked[b] && ev:
			c.TP++
		case attacked[b] && !ev:
			c.FN++
		case !attacked[b] && ev:
			c.FP++
		default:
			c.TN++
		}
	}
	return c, nil
}

// Tally accumulates per-(host, window) alarm marks into the boolean
// alarm matrix Votes consumes. Marks are idempotent: a host that
// reports the same window twice — a re-flush after a reconnect, a
// duplicated batch on the wire — still casts a single vote, which
// keeps the quorum honest against double counting.
type Tally struct {
	alarms [][]bool
}

// NewTally creates an all-clear tally for a fleet of hosts observed
// over bins windows.
func NewTally(hosts, bins int) (*Tally, error) {
	if hosts < 1 {
		return nil, fmt.Errorf("collab: tally needs >= 1 host, got %d", hosts)
	}
	if bins < 1 {
		return nil, fmt.Errorf("collab: tally needs >= 1 window, got %d", bins)
	}
	t := &Tally{alarms: make([][]bool, hosts)}
	for u := range t.alarms {
		t.alarms[u] = make([]bool, bins)
	}
	return t, nil
}

// Mark records that host raised an alarm in window bin. Duplicate
// marks are counted once.
func (t *Tally) Mark(host, bin int) error {
	if host < 0 || host >= len(t.alarms) {
		return fmt.Errorf("collab: host %d outside [0, %d)", host, len(t.alarms))
	}
	if bin < 0 || bin >= len(t.alarms[host]) {
		return fmt.Errorf("collab: window %d outside [0, %d)", bin, len(t.alarms[host]))
	}
	t.alarms[host][bin] = true
	return nil
}

// Alarms returns the accumulated alarm matrix. The matrix is shared
// with the tally: callers should be done marking before use.
func (t *Tally) Alarms() [][]bool { return t.alarms }

// AlarmSeries converts per-host feature series plus thresholds into
// the boolean alarm matrix Votes consumes. overlay may be nil (no
// attack).
func AlarmSeries(test [][]float64, overlay []float64, thresholds []float64) ([][]bool, error) {
	if len(test) != len(thresholds) {
		return nil, fmt.Errorf("collab: %d hosts but %d thresholds", len(test), len(thresholds))
	}
	out := make([][]bool, len(test))
	for u := range test {
		if overlay != nil && len(overlay) != len(test[u]) {
			return nil, fmt.Errorf("collab: host %d series %d windows, overlay %d", u, len(test[u]), len(overlay))
		}
		row := make([]bool, len(test[u]))
		for b, g := range test[u] {
			v := g
			if overlay != nil {
				v += overlay[b]
			}
			row[b] = v > thresholds[u]
		}
		out[u] = row
	}
	return out, nil
}
