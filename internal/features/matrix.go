package features

import (
	"fmt"
	"time"

	"repro/internal/stats"
)

// Matrix is one user's binned feature time series: row b holds the
// six feature values of window b in canonical feature order.
type Matrix struct {
	// BinWidth is the aggregation window.
	BinWidth time.Duration
	// StartMicros is the Unix-microsecond time of bin 0's left edge.
	StartMicros int64
	// Rows holds one row per window.
	Rows [][NumFeatures]float64
}

// NewMatrix allocates an all-zero matrix with the given geometry.
func NewMatrix(binWidth time.Duration, startMicros int64, bins int) *Matrix {
	return &Matrix{
		BinWidth:    binWidth,
		StartMicros: startMicros,
		Rows:        make([][NumFeatures]float64, bins),
	}
}

// FromCounts builds a matrix by sampling fn for every bin; fn must be
// pure in the bin index. This is the bridge from the trace
// generator's fast path into the analysis pipeline.
func FromCounts(binWidth time.Duration, startMicros int64, bins int, fn func(bin int) Counts) *Matrix {
	m := NewMatrix(binWidth, startMicros, bins)
	for b := range m.Rows {
		m.Rows[b] = fn(b).AsVector()
	}
	return m
}

// Bins returns the number of windows.
func (m *Matrix) Bins() int { return len(m.Rows) }

// Column returns a copy of one feature's series.
func (m *Matrix) Column(f Feature) []float64 {
	if !f.Valid() {
		panic(fmt.Sprintf("features: Column(%d) on invalid feature", int(f)))
	}
	out := make([]float64, len(m.Rows))
	for b := range m.Rows {
		out[b] = m.Rows[b][f]
	}
	return out
}

// ColumnSlice returns a copy of one feature's series over bins
// [lo, hi). It panics if the range is out of bounds.
func (m *Matrix) ColumnSlice(f Feature, lo, hi int) []float64 {
	if lo < 0 || hi > len(m.Rows) || lo > hi {
		panic(fmt.Sprintf("features: ColumnSlice range [%d, %d) outside [0, %d)", lo, hi, len(m.Rows)))
	}
	out := make([]float64, hi-lo)
	for b := lo; b < hi; b++ {
		out[b-lo] = m.Rows[b][f]
	}
	return out
}

// ColumnInto copies one feature's series over bins [lo, hi) into dst,
// which must have length hi-lo — the allocation-free counterpart of
// ColumnSlice used by the columnar workspace's slab-backed extraction.
func (m *Matrix) ColumnInto(dst []float64, f Feature, lo, hi int) {
	if lo < 0 || hi > len(m.Rows) || lo > hi {
		panic(fmt.Sprintf("features: ColumnInto range [%d, %d) outside [0, %d)", lo, hi, len(m.Rows)))
	}
	if len(dst) != hi-lo {
		panic(fmt.Sprintf("features: ColumnInto dst len %d != %d", len(dst), hi-lo))
	}
	for b := lo; b < hi; b++ {
		dst[b-lo] = m.Rows[b][f]
	}
}

// Distribution builds the empirical distribution of one feature over
// bins [lo, hi) — the per-user P(g_i^j) of the paper.
func (m *Matrix) Distribution(f Feature, lo, hi int) (*stats.Empirical, error) {
	return stats.NewEmpirical(m.ColumnSlice(f, lo, hi))
}

// BinsPerWeek returns the number of windows per week for this
// matrix's bin width.
func (m *Matrix) BinsPerWeek() int {
	return int((7 * 24 * time.Hour) / m.BinWidth)
}

// Weeks returns the number of complete weeks covered.
func (m *Matrix) Weeks() int { return len(m.Rows) / m.BinsPerWeek() }

// WeekRange returns the half-open bin range [lo, hi) of week w. It
// panics if the matrix does not contain week w in full.
func (m *Matrix) WeekRange(w int) (lo, hi int) {
	bw := m.BinsPerWeek()
	lo, hi = w*bw, (w+1)*bw
	if w < 0 || hi > len(m.Rows) {
		panic(fmt.Sprintf("features: week %d outside matrix with %d complete weeks", w, m.Weeks()))
	}
	return lo, hi
}

// AddRow accumulates counts into bin b (used by attack overlays).
func (m *Matrix) AddRow(b int, c Counts) {
	v := c.AsVector()
	for f := range v {
		m.Rows[b][f] += v[f]
	}
}

// Clone returns a deep copy, so an attack overlay can be applied
// without disturbing the benign series.
func (m *Matrix) Clone() *Matrix {
	cp := &Matrix{BinWidth: m.BinWidth, StartMicros: m.StartMicros,
		Rows: make([][NumFeatures]float64, len(m.Rows))}
	copy(cp.Rows, m.Rows)
	return cp
}
