package features

import (
	"testing"
	"time"
)

func TestFeatureNamesRoundTrip(t *testing.T) {
	for _, f := range All() {
		got, err := Parse(f.String())
		if err != nil {
			t.Fatalf("Parse(%q): %v", f.String(), err)
		}
		if got != f {
			t.Fatalf("Parse(%q) = %v, want %v", f.String(), got, f)
		}
	}
	if _, err := Parse("num-bogus"); err == nil {
		t.Fatal("bogus name parsed")
	}
}

func TestFeatureValidAndString(t *testing.T) {
	if Feature(-1).Valid() || Feature(6).Valid() {
		t.Fatal("out-of-range feature claimed valid")
	}
	if Feature(99).String() != "feature(99)" {
		t.Fatalf("invalid String = %q", Feature(99).String())
	}
	if len(All()) != NumFeatures {
		t.Fatalf("All() has %d features", len(All()))
	}
	for _, f := range All() {
		if f.Anomaly() == "unknown" {
			t.Errorf("feature %v has no anomaly class", f)
		}
	}
}

func TestCountsVectorAndGet(t *testing.T) {
	c := Counts{DNS: 1, TCP: 2, TCPSYN: 3, HTTP: 4, Distinct: 5, UDP: 6}
	v := c.AsVector()
	for i, f := range All() {
		if v[i] != float64(c.Get(f)) {
			t.Fatalf("vector[%d]=%g != Get(%v)=%d", i, v[i], f, c.Get(f))
		}
	}
}

func TestCountsGetPanicsOnInvalid(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Get(invalid) did not panic")
		}
	}()
	Counts{}.Get(Feature(42))
}

func TestCountsAdd(t *testing.T) {
	a := Counts{DNS: 1, TCP: 2, TCPSYN: 2, HTTP: 1, Distinct: 2, UDP: 3}
	b := Counts{TCP: 10, TCPSYN: 12, Distinct: 5}
	got := a.Add(b)
	want := Counts{DNS: 1, TCP: 12, TCPSYN: 14, HTTP: 1, Distinct: 7, UDP: 3}
	if got != want {
		t.Fatalf("Add = %+v, want %+v", got, want)
	}
}

func testMatrix() *Matrix {
	m := NewMatrix(15*time.Minute, 0, 2*672) // two weeks of 15-min bins
	for b := range m.Rows {
		m.Rows[b] = Counts{TCP: b % 7, UDP: b % 3, DNS: 1}.AsVector()
	}
	return m
}

func TestMatrixGeometry(t *testing.T) {
	m := testMatrix()
	if m.Bins() != 1344 {
		t.Fatalf("Bins = %d", m.Bins())
	}
	if m.BinsPerWeek() != 672 {
		t.Fatalf("BinsPerWeek = %d", m.BinsPerWeek())
	}
	if m.Weeks() != 2 {
		t.Fatalf("Weeks = %d", m.Weeks())
	}
	lo, hi := m.WeekRange(1)
	if lo != 672 || hi != 1344 {
		t.Fatalf("WeekRange(1) = [%d, %d)", lo, hi)
	}
}

func TestMatrixWeekRangePanics(t *testing.T) {
	m := testMatrix()
	defer func() {
		if recover() == nil {
			t.Fatal("WeekRange(2) did not panic on 2-week matrix")
		}
	}()
	m.WeekRange(2)
}

func TestMatrixColumn(t *testing.T) {
	m := testMatrix()
	col := m.Column(TCP)
	if len(col) != m.Bins() {
		t.Fatalf("column length %d", len(col))
	}
	for b, v := range col {
		if v != float64(b%7) {
			t.Fatalf("col[%d] = %g", b, v)
		}
	}
	// Column is a copy.
	col[0] = 999
	if m.Rows[0][TCP] == 999 {
		t.Fatal("Column aliases matrix storage")
	}
}

func TestMatrixColumnSlice(t *testing.T) {
	m := testMatrix()
	s := m.ColumnSlice(UDP, 10, 20)
	if len(s) != 10 {
		t.Fatalf("slice length %d", len(s))
	}
	for i, v := range s {
		if v != float64((10+i)%3) {
			t.Fatalf("slice[%d] = %g", i, v)
		}
	}
}

func TestMatrixColumnPanics(t *testing.T) {
	m := testMatrix()
	for name, fn := range map[string]func(){
		"invalid feature": func() { m.Column(Feature(9)) },
		"bad range":       func() { m.ColumnSlice(TCP, 5, 2) },
		"out of bounds":   func() { m.ColumnSlice(TCP, 0, m.Bins()+1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s did not panic", name)
				}
			}()
			fn()
		}()
	}
}

func TestMatrixDistribution(t *testing.T) {
	m := testMatrix()
	d, err := m.Distribution(DNS, 0, m.Bins())
	if err != nil {
		t.Fatal(err)
	}
	if d.N() != m.Bins() || d.Min() != 1 || d.Max() != 1 {
		t.Fatalf("distribution: n=%d min=%g max=%g", d.N(), d.Min(), d.Max())
	}
}

func TestMatrixFromCounts(t *testing.T) {
	m := FromCounts(5*time.Minute, 100, 10, func(bin int) Counts {
		return Counts{TCP: bin}
	})
	if m.Bins() != 10 || m.BinWidth != 5*time.Minute || m.StartMicros != 100 {
		t.Fatalf("geometry: %+v", m)
	}
	if m.Rows[7][TCP] != 7 {
		t.Fatalf("row 7 = %v", m.Rows[7])
	}
}

func TestMatrixAddRowAndClone(t *testing.T) {
	m := NewMatrix(15*time.Minute, 0, 3)
	cp := m.Clone()
	m.AddRow(1, Counts{TCP: 5, Distinct: 2})
	if m.Rows[1][TCP] != 5 || m.Rows[1][Distinct] != 2 {
		t.Fatalf("AddRow result: %v", m.Rows[1])
	}
	if cp.Rows[1][TCP] != 0 {
		t.Fatal("Clone shares storage with original")
	}
	m.AddRow(1, Counts{TCP: 3})
	if m.Rows[1][TCP] != 8 {
		t.Fatal("AddRow does not accumulate")
	}
}
