// Package features defines the six behavioral traffic features of the
// paper's Table 1 and the binned per-user time series ("feature
// matrices") every policy and experiment operates on.
//
// All six features are additive counters over an aggregation window
// (5 or 15 minutes in the paper), which is the property that makes
// the paper's additive attack model well defined: a bot that injects
// traffic adds to the tracked count.
package features

import "fmt"

// Feature identifies one monitored traffic feature.
type Feature int

// The features of Table 1, in canonical order.
const (
	// DNS is num-DNS-connections (botnet C&C detection; Damballa).
	DNS Feature = iota
	// TCP is num-TCP-connections (scans, DDoS; Cisco CSA).
	TCP
	// TCPSYN is num-TCP-SYN (scans, DDoS; BRO, CSA).
	TCPSYN
	// HTTP is num-HTTP-connections (clickfraud, DDoS; BRO, BlackIce).
	HTTP
	// Distinct is num-distinct-connections (scans; BRO), measured as
	// distinct destination IP addresses per window.
	Distinct
	// UDP is num-UDP-connections (scans, DDoS; Cisco CSA).
	UDP
)

// NumFeatures is the number of monitored features.
const NumFeatures = 6

// All lists every feature in canonical order.
func All() []Feature {
	return []Feature{DNS, TCP, TCPSYN, HTTP, Distinct, UDP}
}

var featureNames = [NumFeatures]string{
	"num-DNS-connections",
	"num-TCP-connections",
	"num-TCP-SYN",
	"num-HTTP-connections",
	"num-distinct-connections",
	"num-UDP-connections",
}

// String returns the paper's feature name.
func (f Feature) String() string {
	if f < 0 || int(f) >= NumFeatures {
		return fmt.Sprintf("feature(%d)", int(f))
	}
	return featureNames[f]
}

// Valid reports whether f is one of the six defined features.
func (f Feature) Valid() bool { return f >= 0 && int(f) < NumFeatures }

// Parse resolves a feature by its paper name (as printed by String).
func Parse(name string) (Feature, error) {
	for i, n := range featureNames {
		if n == name {
			return Feature(i), nil
		}
	}
	return 0, fmt.Errorf("features: unknown feature %q", name)
}

// Anomaly returns the anomaly class the feature targets (Table 1).
func (f Feature) Anomaly() string {
	switch f {
	case DNS:
		return "Botnet C&C"
	case TCP, TCPSYN, UDP:
		return "scans, DDoS"
	case HTTP:
		return "Clickfraud, DDoS"
	case Distinct:
		return "scans"
	default:
		return "unknown"
	}
}

// Counts holds one window's values of all six features for one user.
type Counts struct {
	// DNS is num-DNS-connections: DNS queries issued.
	DNS int
	// TCP is num-TCP-connections: outbound TCP connections initiated.
	TCP int
	// TCPSYN is num-TCP-SYN: outbound SYN packets (connections plus
	// retransmissions).
	TCPSYN int
	// HTTP is num-HTTP-connections: outbound TCP connections to port
	// 80 (a subset of TCP).
	HTTP int
	// Distinct is num-distinct-connections: distinct destination IP
	// addresses contacted.
	Distinct int
	// UDP is num-UDP-connections: outbound non-DNS UDP flows
	// initiated.
	UDP int
}

// AsVector returns the counts in canonical feature order.
func (c Counts) AsVector() [NumFeatures]float64 {
	return [NumFeatures]float64{
		float64(c.DNS), float64(c.TCP), float64(c.TCPSYN),
		float64(c.HTTP), float64(c.Distinct), float64(c.UDP),
	}
}

// Get returns the value of one feature. It panics on an invalid
// feature.
func (c Counts) Get(f Feature) int {
	switch f {
	case DNS:
		return c.DNS
	case TCP:
		return c.TCP
	case TCPSYN:
		return c.TCPSYN
	case HTTP:
		return c.HTTP
	case Distinct:
		return c.Distinct
	case UDP:
		return c.UDP
	default:
		panic(fmt.Sprintf("features: Get(%d) on invalid feature", int(f)))
	}
}

// Add returns the element-wise sum of c and o — the observable result
// of overlaying additive attack traffic on benign traffic.
func (c Counts) Add(o Counts) Counts {
	return Counts{
		DNS:      c.DNS + o.DNS,
		TCP:      c.TCP + o.TCP,
		TCPSYN:   c.TCPSYN + o.TCPSYN,
		HTTP:     c.HTTP + o.HTTP,
		Distinct: c.Distinct + o.Distinct,
		UDP:      c.UDP + o.UDP,
	}
}
