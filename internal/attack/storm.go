package attack

import (
	"fmt"
	"math"
	"time"

	"repro/internal/xrand"
)

// StormConfig parameterizes the Storm-zombie activity synthesizer.
// The paper overlaid a one-week trace of a live Storm bot (all
// inessential services disabled) on every user trace and measured the
// num-distinct-connections feature; this synthesizer reproduces the
// published behaviour of Storm's Overnet/Kademlia P2P layer: a
// sustained background of UDP peer-discovery churn touching many
// distinct peers per window, punctuated by harder-working spam/DDoS
// campaign phases.
type StormConfig struct {
	// BinWidth is the aggregation window (must match the user
	// matrices it will be overlaid on).
	BinWidth time.Duration
	// Bins is the length of the synthesized activity series.
	Bins int
	// Seed drives the synthesis.
	Seed uint64
	// BaseDistinct is the mean distinct peers contacted per window
	// during idle P2P churn (zero means the default 120, scaled for a
	// 15-minute window).
	BaseDistinct float64
	// CampaignDistinct is the mean during campaign phases (zero
	// means the default 600).
	CampaignDistinct float64
}

// StormBot is a synthesized Storm zombie activity trace.
type StormBot struct {
	cfg StormConfig
	// Distinct[b] is the number of distinct destinations the bot
	// contacts in window b.
	Distinct []float64
	// Campaign[b] reports whether window b is inside a spam/DDoS
	// campaign phase.
	Campaign []bool
}

// NewStorm synthesizes a Storm bot activity series.
func NewStorm(cfg StormConfig) (*StormBot, error) {
	if cfg.Bins <= 0 {
		return nil, fmt.Errorf("attack: StormConfig.Bins must be positive, got %d", cfg.Bins)
	}
	if cfg.BinWidth == 0 {
		cfg.BinWidth = 15 * time.Minute
	}
	scale := cfg.BinWidth.Minutes() / 15
	if cfg.BaseDistinct == 0 {
		cfg.BaseDistinct = 80 * scale
	}
	if cfg.CampaignDistinct == 0 {
		cfg.CampaignDistinct = 3000 * scale
	}
	if cfg.BaseDistinct < 0 || cfg.CampaignDistinct < 0 {
		return nil, fmt.Errorf("attack: negative Storm rates")
	}
	r := xrand.New(cfg.Seed)
	bot := &StormBot{
		cfg:      cfg,
		Distinct: make([]float64, cfg.Bins),
		Campaign: make([]bool, cfg.Bins),
	}
	// Two-state semi-Markov process: churn <-> campaign. Storm bots
	// were observed alternating long quiet P2P maintenance with
	// multi-hour campaign bursts.
	inCampaign := false
	remaining := 0
	for b := 0; b < cfg.Bins; b++ {
		if remaining == 0 {
			inCampaign = !inCampaign && r.Float64() < 0.35
			if inCampaign {
				remaining = 4 + r.Intn(20) // 1h..6h campaigns
			} else {
				remaining = 8 + r.Intn(60) // 2h..17h churn stretches
			}
		}
		remaining--
		mean := cfg.BaseDistinct
		sigma := 1.1 // P2P churn is very bursty window to window
		if inCampaign {
			bot.Campaign[b] = true
			mean = cfg.CampaignDistinct
			sigma = 0.9
		}
		// The bot never sleeps (the paper's zombie host ran
		// continuously), but its activity fluctuates over a wide
		// range — wide enough to straddle the user population's
		// threshold range, which is what makes per-user detection
		// rates diverse (Fig 5).
		v := float64(r.Poisson(mean * math.Exp(sigma*r.NormFloat64())))
		bot.Distinct[b] = v
	}
	return bot, nil
}

// Overlay returns the bot's activity as an Additive attack aligned
// with a user series of the same length.
func (s *StormBot) Overlay() Additive {
	return Additive{Overlay: append([]float64(nil), s.Distinct...)}
}

// CampaignFraction returns the fraction of windows in campaign mode.
func (s *StormBot) CampaignFraction() float64 {
	n := 0
	for _, c := range s.Campaign {
		if c {
			n++
		}
	}
	return float64(n) / float64(len(s.Campaign))
}
