package attack

import (
	"math"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/stats"
	"repro/internal/xrand"
)

func hostProfile(seed uint64, n int) *stats.Empirical {
	r := xrand.New(seed)
	v := make([]float64, n)
	for i := range v {
		v[i] = r.LogNormal(3, 0.8)
	}
	return stats.MustEmpirical(v)
}

func TestNaiveOverlay(t *testing.T) {
	a, err := Naive(10, 2, 5, 40)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Overlay) != 10 {
		t.Fatalf("overlay length %d", len(a.Overlay))
	}
	for b, v := range a.Overlay {
		want := 0.0
		if b >= 2 && b < 5 {
			want = 40
		}
		if v != want {
			t.Fatalf("overlay[%d] = %g, want %g", b, v, want)
		}
	}
	if a.Windows() != 3 {
		t.Fatalf("Windows = %d", a.Windows())
	}
	if a.Magnitude() != 40 {
		t.Fatalf("Magnitude = %g", a.Magnitude())
	}
}

func TestNaiveErrors(t *testing.T) {
	if _, err := Naive(10, 5, 2, 1); err == nil {
		t.Fatal("inverted range accepted")
	}
	if _, err := Naive(10, 0, 20, 1); err == nil {
		t.Fatal("oversized range accepted")
	}
	if _, err := Naive(10, 0, 5, 0); err == nil {
		t.Fatal("zero size accepted")
	}
}

func TestAdditiveEmpty(t *testing.T) {
	var a Additive
	if a.Magnitude() != 0 || a.Windows() != 0 {
		t.Fatal("zero-value Additive not inert")
	}
}

func TestMimicrySizeDefinition(t *testing.T) {
	// b must be the largest volume with P(g + b < T) >= evadeProb.
	profile := hostProfile(1, 5000)
	threshold := profile.MustQuantile(0.99)
	b, err := MimicrySize(profile, threshold, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	if b <= 0 {
		t.Fatalf("mimicry size = %g, want positive", b)
	}
	// Evasion probability at the chosen size meets the target:
	// P(g + b < T) = P(g < T - b) = CDF approximately at q90.
	if got := profile.CDF(threshold - b); got < 0.9-1e-9 {
		t.Fatalf("evade probability %g below target", got)
	}
	// One unit more traffic must break the target (maximality).
	if got := profile.CDF(threshold - (b + profile.MustQuantile(0.95) - profile.MustQuantile(0.9) + 1e-9)); got >= 0.9 {
		t.Logf("note: profile nearly flat near q90; maximality check skipped")
	}
}

func TestMimicrySizeClampsAtZero(t *testing.T) {
	profile := hostProfile(2, 1000)
	// A threshold below the q90 of the profile leaves no room at all.
	thr := profile.MustQuantile(0.5)
	b, err := MimicrySize(profile, thr, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	if b != 0 {
		t.Fatalf("mimicry size = %g, want 0 when no room", b)
	}
}

func TestMimicryLowerThresholdLessRoom(t *testing.T) {
	// The core of Fig 4(b): a diversity policy's lower threshold
	// strictly reduces the attacker's hidden traffic.
	profile := hostProfile(3, 3000)
	lo, hi := profile.MustQuantile(0.95), profile.MustQuantile(0.9999)
	bLo, err := MimicrySize(profile, lo, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	bHi, err := MimicrySize(profile, hi, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	if bLo >= bHi {
		t.Fatalf("lower threshold allows %g >= higher threshold's %g", bLo, bHi)
	}
	// Exact relation: difference of sizes equals difference of
	// thresholds (both clamp to the same q90 baseline).
	if math.Abs((bHi-bLo)-(hi-lo)) > 1e-9 {
		t.Fatalf("room difference %g != threshold difference %g", bHi-bLo, hi-lo)
	}
}

func TestMimicryHigherEvadeProbLessTraffic(t *testing.T) {
	f := func(seed uint64) bool {
		profile := hostProfile(seed, 500)
		thr := profile.MustQuantile(0.99)
		b90, err1 := MimicrySize(profile, thr, 0.90)
		b99, err2 := MimicrySize(profile, thr, 0.99)
		return err1 == nil && err2 == nil && b99 <= b90
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

func TestMimicryErrors(t *testing.T) {
	profile := hostProfile(4, 100)
	if _, err := MimicrySize(nil, 10, 0.9); err == nil {
		t.Fatal("nil profile accepted")
	}
	if _, err := MimicrySize(profile, 10, 0); err == nil {
		t.Fatal("evadeProb 0 accepted")
	}
	if _, err := MimicrySize(profile, 10, 1.2); err == nil {
		t.Fatal("evadeProb > 1 accepted")
	}
}

func TestMimicryOverlay(t *testing.T) {
	profile := hostProfile(5, 2000)
	thr := profile.MustQuantile(0.99)
	a, err := Mimicry(profile, thr, 0.9, 50)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Overlay) != 50 || a.Windows() != 50 {
		t.Fatalf("overlay: %d windows of %d", a.Windows(), len(a.Overlay))
	}
	size, _ := MimicrySize(profile, thr, 0.9)
	for _, v := range a.Overlay {
		if v != size {
			t.Fatalf("overlay value %g != size %g", v, size)
		}
	}
}

func TestHiddenTrafficAlias(t *testing.T) {
	profile := hostProfile(6, 500)
	thr := profile.MustQuantile(0.99)
	a, _ := HiddenTraffic(profile, thr, 0.9)
	b, _ := MimicrySize(profile, thr, 0.9)
	if a != b {
		t.Fatal("HiddenTraffic != MimicrySize")
	}
}

func TestStormSynthesis(t *testing.T) {
	bot, err := NewStorm(StormConfig{Bins: 672, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if len(bot.Distinct) != 672 || len(bot.Campaign) != 672 {
		t.Fatalf("series lengths: %d, %d", len(bot.Distinct), len(bot.Campaign))
	}
	// The bot never sleeps: every window has activity.
	zero := 0
	for _, v := range bot.Distinct {
		if v <= 0 {
			zero++
		}
	}
	if zero > 3 {
		t.Fatalf("%d idle windows; Storm churns continuously", zero)
	}
	// Campaign windows are hotter on average than churn windows.
	var cSum, qSum float64
	var cN, qN int
	for b, v := range bot.Distinct {
		if bot.Campaign[b] {
			cSum += v
			cN++
		} else {
			qSum += v
			qN++
		}
	}
	if cN == 0 || qN == 0 {
		t.Fatal("degenerate campaign structure")
	}
	if cSum/float64(cN) < 2*qSum/float64(qN) {
		t.Fatalf("campaign mean %g not well above churn mean %g",
			cSum/float64(cN), qSum/float64(qN))
	}
	frac := bot.CampaignFraction()
	if frac <= 0.02 || frac >= 0.8 {
		t.Fatalf("campaign fraction = %g", frac)
	}
}

func TestStormDeterminism(t *testing.T) {
	a, _ := NewStorm(StormConfig{Bins: 100, Seed: 9})
	b, _ := NewStorm(StormConfig{Bins: 100, Seed: 9})
	for i := range a.Distinct {
		if a.Distinct[i] != b.Distinct[i] {
			t.Fatal("storm synthesis not deterministic")
		}
	}
	c, _ := NewStorm(StormConfig{Bins: 100, Seed: 10})
	same := true
	for i := range a.Distinct {
		if a.Distinct[i] != c.Distinct[i] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different seeds produced identical storms")
	}
}

func TestStormOverlayCopies(t *testing.T) {
	bot, _ := NewStorm(StormConfig{Bins: 10, Seed: 1})
	ov := bot.Overlay()
	ov.Overlay[0] = -1
	if bot.Distinct[0] == -1 {
		t.Fatal("Overlay aliases bot storage")
	}
}

func TestStormErrors(t *testing.T) {
	if _, err := NewStorm(StormConfig{Bins: 0}); err == nil {
		t.Fatal("0 bins accepted")
	}
	if _, err := NewStorm(StormConfig{Bins: 10, BaseDistinct: -5}); err == nil {
		t.Fatal("negative rate accepted")
	}
}

func TestStormBinWidthScaling(t *testing.T) {
	// The activity mix is heavy-tailed, so sample means need many
	// windows to stabilize.
	b15, _ := NewStorm(StormConfig{Bins: 20000, Seed: 3, BinWidth: 15 * time.Minute})
	b5, _ := NewStorm(StormConfig{Bins: 20000, Seed: 3, BinWidth: 5 * time.Minute})
	mean := func(v []float64) float64 {
		var s float64
		for _, x := range v {
			s += x
		}
		return s / float64(len(v))
	}
	ratio := mean(b15.Distinct) / mean(b5.Distinct)
	if ratio < 1.8 || ratio > 5 {
		t.Fatalf("15m/5m activity ratio = %g, want ~3", ratio)
	}
}
