// Package attack implements the paper's threat models (§3, §6):
//
//   - the naive attacker, who injects a fixed additive amount of
//     traffic per window without knowing the host's behavior
//     (Fig 4a);
//   - the resourceful (mimicry) attacker, who has profiled the host,
//     knows P(g) and the threshold, and sends the largest additive
//     volume that still evades detection with a target probability
//     (Fig 4b);
//   - a Storm-botnet zombie activity synthesizer standing in for the
//     paper's live Storm trace (Fig 5); see DESIGN.md §2 for the
//     substitution rationale.
//
// All attacks are additive in the tracked feature, matching the
// paper's model: the detector sees g + b.
package attack

import (
	"fmt"

	"repro/internal/stats"
)

// Additive is an attack expressed as a per-window additive overlay on
// one feature's series. Zero entries mean "no attack in this window".
type Additive struct {
	// Overlay[b] is the malicious traffic added in window b.
	Overlay []float64
}

// Magnitude returns the constant per-window size for constant
// attacks, or the mean positive overlay otherwise.
func (a Additive) Magnitude() float64 {
	var sum float64
	var n int
	for _, v := range a.Overlay {
		if v > 0 {
			sum += v
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// Windows returns the number of attacked windows.
func (a Additive) Windows() int {
	n := 0
	for _, v := range a.Overlay {
		if v > 0 {
			n++
		}
	}
	return n
}

// Naive builds the naive attacker of Fig 4(a): a constant additive
// size injected into every window of the range [from, to) of a series
// of length total. The attacker knows nothing about the host, so the
// same size is used regardless of user.
func Naive(total, from, to int, size float64) (Additive, error) {
	if from < 0 || to > total || from >= to {
		return Additive{}, fmt.Errorf("attack: window range [%d, %d) outside [0, %d)", from, to, total)
	}
	if size <= 0 {
		return Additive{}, fmt.Errorf("attack: size must be positive, got %g", size)
	}
	ov := make([]float64, total)
	for b := from; b < to; b++ {
		ov[b] = size
	}
	return Additive{Overlay: ov}, nil
}

// MimicrySize computes the resourceful attacker's per-window volume
// for one host (§6.2): the largest b such that
//
//	P(g + b < T) >= evadeProb
//
// i.e. b = T − Q(g, evadeProb) where Q is the host distribution's
// inverse CDF, clamped at 0 when even b = 0 would be detected too
// often. profile is the attacker's own measurement of the host's
// traffic (the paper's strong threat model assumes the attacker can
// build this histogram on the compromised machine).
func MimicrySize(profile *stats.Empirical, threshold, evadeProb float64) (float64, error) {
	if profile == nil || profile.N() == 0 {
		return 0, stats.ErrNoSamples
	}
	if evadeProb <= 0 || evadeProb > 1 {
		return 0, fmt.Errorf("attack: evade probability %g outside (0, 1]", evadeProb)
	}
	q, err := profile.InverseCDF(evadeProb)
	if err != nil {
		return 0, err
	}
	b := threshold - q
	if b < 0 {
		b = 0
	}
	return b, nil
}

// Mimicry builds a constant overlay at the host's mimicry size over
// all windows of a series of length total. The attacker sends this
// volume continuously, staying below the detection radar with
// probability ~evadeProb per window.
func Mimicry(profile *stats.Empirical, threshold, evadeProb float64, total int) (Additive, error) {
	size, err := MimicrySize(profile, threshold, evadeProb)
	if err != nil {
		return Additive{}, err
	}
	ov := make([]float64, total)
	for b := range ov {
		ov[b] = size
	}
	return Additive{Overlay: ov}, nil
}

// HiddenTraffic is the attacker-effectiveness metric of Fig 4(b): the
// total undetected volume a mimicry attacker extracts per window from
// one host, i.e. simply its mimicry size. Provided as a named
// function so experiment code reads like the paper.
func HiddenTraffic(profile *stats.Empirical, threshold, evadeProb float64) (float64, error) {
	return MimicrySize(profile, threshold, evadeProb)
}
