package fleet

import (
	"errors"
	"reflect"
	"sync"
	"testing"
	"time"

	"repro/internal/analysis"
	"repro/internal/collab"
	"repro/internal/console"
	"repro/internal/core"
	"repro/internal/features"
	"repro/internal/netsim"
	"repro/internal/par"
	"repro/internal/stats"
	"repro/internal/trace"
)

func p99Policy(g core.Grouping) core.Policy {
	return core.Policy{Heuristic: core.Percentile{Q: 0.99}, Grouping: g}
}

// buildMats synthesizes the exact per-user matrices a fleet Config
// generates. Synthesis is the expensive part of every test here
// (hundreds of millions of per-connection draws at scale), so each
// test generates once and shares the matrices between the fleet run
// (Config.Matrices) and the in-memory workspace it is pinned to.
func buildMats(t *testing.T, cfg Config) []*features.Matrix {
	t.Helper()
	pop := trace.MustPopulation(trace.Config{
		Users:       cfg.Users,
		Weeks:       cfg.Weeks,
		Seed:        cfg.Seed,
		BinWidth:    cfg.BinWidth,
		WeeklyTrend: cfg.WeeklyTrend,
	})
	mats := make([]*features.Matrix, cfg.Users)
	par.ForEach(cfg.Users, 0, func(u int) {
		mats[u] = pop.Users[u].Series()
	})
	return mats
}

// alarmConfusion scores one host's console-observed alarm series
// against its overlay, with core.Evaluate's classification rules.
func alarmConfusion(alarms []bool, overlay []float64) stats.Confusion {
	var c stats.Confusion
	for b, alarm := range alarms {
		var a float64
		if overlay != nil {
			a = overlay[b]
		}
		switch {
		case a > 0 && alarm:
			c.TP++
		case a > 0 && !alarm:
			c.FN++
		case a == 0 && alarm:
			c.FP++
		default:
			c.TN++
		}
	}
	return c
}

// assertWireMatchesWorkspace pins the distributed path to the
// in-memory path: thresholds pushed over the wire must equal the
// workspace configuration bit for bit on every feature, and the
// console-observed alarm series must reproduce core.EvaluatePolicy's
// per-user confusion exactly.
func assertWireMatchesWorkspace(t *testing.T, cfg Config, ws *analysis.Workspace, res *Result, overlays [][]float64) {
	t.Helper()
	for _, f := range features.All() {
		asn, err := ws.Assignment(f, cfg.TrainWeek, cfg.Policy, cfg.AttackMagnitudes, "wire")
		if err != nil {
			t.Fatal(err)
		}
		for u := 0; u < cfg.Users; u++ {
			if got, want := res.Thresholds[u][f], asn.Thresholds[u]; got != want {
				t.Fatalf("host %d feature %s: wire threshold %v != workspace %v", u, f, got, want)
			}
		}
	}

	f := res.WatchFeature
	asn, err := ws.Assignment(f, cfg.TrainWeek, cfg.Policy, cfg.AttackMagnitudes, "wire")
	if err != nil {
		t.Fatal(err)
	}
	eval, err := core.EvaluatePolicy(core.EvalInput{
		Test:       ws.Raw(f, cfg.TestWeek),
		Attack:     overlays,
		Policy:     cfg.Policy,
		Assignment: asn,
	})
	if err != nil {
		t.Fatal(err)
	}
	for u := 0; u < cfg.Users; u++ {
		var ov []float64
		if overlays != nil {
			ov = overlays[u]
		}
		got := alarmConfusion(res.Alarms[u], ov)
		if got != eval.Points[u].Confusion {
			t.Fatalf("host %d: wire confusion %+v != in-memory %+v", u, got, eval.Points[u].Confusion)
		}
	}
}

// fleetOverlays rebuilds the per-user overlays a fleet run injected,
// from the same seeded plan and the same workspace data — the
// in-memory mirror of what each agent's OverlayFn computed.
func fleetOverlays(t *testing.T, cfg Config, ws *analysis.Workspace, res *Result) [][]float64 {
	t.Helper()
	if !cfg.Attack.active() {
		return nil
	}
	bins := ws.BinsPerWeek()
	victims, err := cfg.Attack.victimSet(cfg.Users)
	if err != nil {
		t.Fatal(err)
	}
	var storm []float64
	if cfg.Attack.Kind == AttackStorm {
		if storm, err = cfg.Attack.stormSeries(bins, ws.BinWidth()); err != nil {
			t.Fatal(err)
		}
	}
	out := make([][]float64, cfg.Users)
	for u := 0; u < cfg.Users; u++ {
		var trainDist *stats.Empirical
		if cfg.Attack.Kind == AttackMimicry {
			trainDist = ws.Dist(u, cfg.Attack.Feature, cfg.TrainWeek)
		}
		ov, err := cfg.Attack.overlayFor(u, victims, bins, storm,
			trainDist, res.Thresholds[u][cfg.Attack.Feature])
		if err != nil {
			t.Fatal(err)
		}
		out[u] = ov
	}
	return out
}

// TestFleetWireMatchesWorkspaceClean pins the clean (no-attack)
// distributed pipeline to the in-memory evaluation: every alert the
// console received is a false positive the workspace predicts, and
// vice versa.
func TestFleetWireMatchesWorkspaceClean(t *testing.T) {
	cfg := Config{
		Users:    40,
		Weeks:    2,
		Seed:     7,
		BinWidth: time.Hour,
		Policy:   p99Policy(core.FullDiversity{}),
	}
	// This test deliberately leaves Config.Matrices unset so the
	// simulator's internal population-synthesis path gets end-to-end
	// coverage; the others pre-build to share the generation pass.
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rcfg, err := cfg.withDefaults()
	if err != nil {
		t.Fatal(err)
	}
	assertWireMatchesWorkspace(t, rcfg, analysis.New(buildMats(t, rcfg)), res, nil)

	// The console tally for the watch feature alone must be bounded by
	// the all-feature tally it reports per host.
	for u := 0; u < cfg.Users; u++ {
		watch := 0
		for _, alarm := range res.Alarms[u] {
			if alarm {
				watch++
			}
		}
		if watch > res.AlertCounts[u] {
			t.Fatalf("host %d: %d watch-feature alarms but console tallied %d total", u, watch, res.AlertCounts[u])
		}
	}
}

// TestFleetWireMatchesWorkspaceNaive runs a naive additive campaign
// against a victim subset and checks TP/FP/FN/TN equivalence under a
// partial-diversity policy (the host-order-sensitive one).
func TestFleetWireMatchesWorkspaceNaive(t *testing.T) {
	cfg := Config{
		Users:    30,
		Weeks:    2,
		Seed:     11,
		BinWidth: time.Hour,
		Policy:   p99Policy(core.PartialDiversity{NumGroups: 4}),
		Attack: &AttackPlan{
			Kind:           AttackNaive,
			Feature:        features.TCP,
			Size:           500,
			FromBin:        24,
			ToBin:          48,
			VictimFraction: 0.3,
			Seed:           99,
		},
	}
	cfg.Matrices = buildMats(t, cfg)
	ws := analysis.New(cfg.Matrices)
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rcfg, err := cfg.withDefaults()
	if err != nil {
		t.Fatal(err)
	}
	overlays := fleetOverlays(t, rcfg, ws, res)
	nVictims := 0
	for _, ov := range overlays {
		if ov != nil {
			nVictims++
		}
	}
	if want := 9; nVictims != want { // 30 users * 0.3
		t.Fatalf("victims = %d, want %d", nVictims, want)
	}
	assertWireMatchesWorkspace(t, rcfg, ws, res, overlays)
	if got := res.AttackedWindows[24]; !got {
		t.Fatal("window 24 not marked attacked")
	}
	if res.AttackedWindows[23] || res.AttackedWindows[48] {
		t.Fatal("attack window bounds wrong")
	}
}

// TestFleetWireMatchesWorkspaceMimicry checks the resourceful
// attacker path: the per-host mimicry size is computed from the
// wire-pushed threshold, and detection outcomes match the in-memory
// evaluation bit for bit.
func TestFleetWireMatchesWorkspaceMimicry(t *testing.T) {
	cfg := Config{
		Users:    25,
		Weeks:    2,
		Seed:     13,
		BinWidth: time.Hour,
		Policy:   p99Policy(core.Homogeneous{}),
		Attack: &AttackPlan{
			Kind:      AttackMimicry,
			Feature:   features.UDP,
			EvadeProb: 0.9,
		},
	}
	cfg.Matrices = buildMats(t, cfg)
	ws := analysis.New(cfg.Matrices)
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rcfg, err := cfg.withDefaults()
	if err != nil {
		t.Fatal(err)
	}
	assertWireMatchesWorkspace(t, rcfg, ws, res, fleetOverlays(t, rcfg, ws, res))
}

// TestFleetCollabQuorum runs a Storm campaign with collaborative
// detection and checks the fleet-event series against the collab
// detector applied directly to the console-observed alarm matrix.
func TestFleetCollabQuorum(t *testing.T) {
	cfg := Config{
		Users:    40,
		Weeks:    2,
		Seed:     17,
		BinWidth: time.Hour,
		Policy:   p99Policy(core.FullDiversity{}),
		Attack: &AttackPlan{
			Kind:    AttackStorm,
			Feature: features.Distinct,
			Seed:    5,
		},
		Collab: &collab.Config{Quorum: 5, SentinelWeight: 2, Sentinels: []int{0, 1, 2}},
	}
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.FleetEvents == nil || res.FleetVotes == nil || res.FleetConfusion == nil {
		t.Fatal("collab outputs missing")
	}
	det, err := collab.New(*cfg.Collab)
	if err != nil {
		t.Fatal(err)
	}
	events, err := det.Events(res.Alarms)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(events, res.FleetEvents) {
		t.Fatal("FleetEvents differ from detector output on the alarm matrix")
	}
	// The Storm bot straddles the fleet's thresholds, so a quorum of 5
	// must fire somewhere during the campaign, and the confusion must
	// cover every test window.
	fired := false
	for _, ev := range res.FleetEvents {
		fired = fired || ev
	}
	if !fired {
		t.Fatal("storm campaign never reached quorum")
	}
	c := *res.FleetConfusion
	if c.TP+c.FN+c.FP+c.TN != res.TestBins {
		t.Fatalf("confusion covers %d windows, want %d", c.TP+c.FN+c.FP+c.TN, res.TestBins)
	}
}

// TestFleetDeterministic1000Agents is the scale gate: a thousand
// agents plus console over the in-memory transport, under an active
// campaign with collaborative detection, twice — the two Results must
// be deeply equal, or the fleet has a scheduling dependence. Run
// under -race this is the soak CI executes in its dedicated step
// (`make soak`); -short skips it so the regular race suite stays
// within budget.
func TestFleetDeterministic1000Agents(t *testing.T) {
	if testing.Short() {
		t.Skip("thousand-agent soak skipped in -short mode (run via make soak)")
	}
	cfg := Config{
		Users:    1000,
		Weeks:    2,
		Seed:     42,
		BinWidth: 4 * time.Hour,
		Policy:   p99Policy(core.PartialDiversity{NumGroups: 8}),
		Attack: &AttackPlan{
			Kind:           AttackNaive,
			Feature:        features.TCP,
			Size:           1000,
			VictimFraction: 0.1,
			Seed:           7,
		},
		Collab: &collab.Config{Quorum: 20},
	}
	// One generation pass (hundreds of millions of synthetic
	// connections) shared by both runs and the workspace check.
	cfg.Matrices = buildMats(t, cfg)
	ws := analysis.New(cfg.Matrices)
	first, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if first.Users != 1000 || len(first.Thresholds) != 1000 || len(first.Alarms) != 1000 {
		t.Fatalf("result covers %d users", first.Users)
	}
	second, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(first, second) {
		t.Fatal("same seed produced different Results")
	}
	// The wire-level outcomes must still match the in-memory pipeline
	// at this scale.
	rcfg, err := cfg.withDefaults()
	if err != nil {
		t.Fatal(err)
	}
	assertWireMatchesWorkspace(t, rcfg, ws, first, fleetOverlays(t, rcfg, ws, first))
}

// TestFleetConfigValidation exercises the fail-fast paths.
func TestFleetConfigValidation(t *testing.T) {
	base := Config{Users: 2, Weeks: 2, Policy: p99Policy(core.FullDiversity{})}
	for name, mutate := range map[string]func(*Config){
		"no users":          func(c *Config) { c.Users = 0 },
		"missing policy":    func(c *Config) { c.Policy = core.Policy{} },
		"train==test":       func(c *Config) { c.TrainWeek, c.TestWeek = 1, 1 },
		"weeks too short":   func(c *Config) { c.TestWeek = 5 },
		"bad attack feat":   func(c *Config) { c.Attack = &AttackPlan{Kind: AttackNaive, Feature: 99} },
		"bad watch feature": func(c *Config) { c.Watch = 99 },
	} {
		cfg := base
		mutate(&cfg)
		if _, err := cfg.withDefaults(); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
	if _, err := base.withDefaults(); err != nil {
		t.Errorf("valid config rejected: %v", err)
	}
	// Watch semantics: zero defaults to TCP, WatchDNS selects DNS, and
	// an active attack overrides both with the attacked feature.
	if got, _ := base.withDefaults(); got.Watch != features.TCP {
		t.Errorf("default Watch = %v, want TCP", got.Watch)
	}
	dns := base
	dns.Watch = WatchDNS
	if got, err := dns.withDefaults(); err != nil || got.Watch != features.DNS {
		t.Errorf("WatchDNS -> %v, %v; want DNS", got.Watch, err)
	}
	attacked := base
	attacked.Watch = WatchDNS
	attacked.Attack = &AttackPlan{Kind: AttackNaive, Feature: features.UDP, Size: 1}
	if got, err := attacked.withDefaults(); err != nil || got.Watch != features.UDP {
		t.Errorf("attacked Watch = %v, %v; want UDP", got.Watch, err)
	}
}

// TestFleetClockBarrier checks the logical clock advances only when
// every participant arrives, and that ticks count barrier rounds.
func TestFleetClockBarrier(t *testing.T) {
	const n, rounds = 8, 25
	c := NewClock(n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				if err := c.Step(); err != nil {
					t.Errorf("step: %v", err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if c.Tick() != rounds {
		t.Fatalf("tick = %d, want %d", c.Tick(), rounds)
	}
}

// TestFleetClockCancel checks that cancelling releases waiters with
// ErrClockCancelled instead of deadlocking — the property that lets
// one failing agent abort a fleet run cleanly.
func TestFleetClockCancel(t *testing.T) {
	c := NewClock(2)
	errCh := make(chan error, 1)
	go func() { errCh <- c.Step() }()
	c.Cancel()
	if err := <-errCh; err != ErrClockCancelled {
		t.Fatalf("step after cancel: %v", err)
	}
	if err := c.Step(); err != ErrClockCancelled {
		t.Fatalf("step on cancelled clock: %v", err)
	}
}

// TestFleetThresholdWaitAbortsOnCancel pins the prompt-abort
// behavior: an agent whose thresholds will never arrive must return
// ErrClockCancelled shortly after the fleet clock is cancelled,
// instead of sitting out the full threshold timeout.
func TestFleetThresholdWaitAbortsOnCancel(t *testing.T) {
	network := netsim.NewMemNetwork()
	ln, err := network.Listen("console")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	// Scripted console: ack everything, never push thresholds.
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		defer conn.Close()
		for {
			if _, _, err := console.ReadMsg(conn); err != nil {
				return
			}
			if err := console.WriteMsg(conn, console.MsgAck, console.Ack{}); err != nil {
				return
			}
		}
	}()
	conn, err := network.Dial("console")
	if err != nil {
		t.Fatal(err)
	}
	agent, err := console.NewAgent(conn, 0, "")
	if err != nil {
		t.Fatal(err)
	}
	defer agent.Close()

	m := features.NewMatrix(time.Hour, 0, 336)
	for b := range m.Rows {
		m.Rows[b][features.TCP] = 1 // non-empty distributions
	}
	clock := NewClock(2) // a second participant that never arrives
	go func() {
		time.Sleep(50 * time.Millisecond)
		clock.Cancel()
	}()
	start := time.Now()
	_, err = RunAgent(AgentRun{
		Agent:            agent,
		Matrix:           m,
		TrainLo:          0,
		TrainHi:          168,
		MonitorLo:        168,
		MonitorHi:        336,
		ThresholdTimeout: time.Minute,
		Clock:            clock,
	})
	if !errors.Is(err, ErrClockCancelled) {
		t.Fatalf("RunAgent returned %v, want ErrClockCancelled", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("abort took %v, want well under the 1m threshold timeout", elapsed)
	}
}

// TestFleetParseSpecs covers the CLI-name parsers the daemons share.
func TestFleetParseSpecs(t *testing.T) {
	if g, err := ParseGrouping("partial8"); err != nil || g.Name() != "8-partial" {
		t.Fatalf("partial8 -> %v, %v", g, err)
	}
	if _, err := ParseGrouping("partialx"); err == nil {
		t.Fatal("partialx accepted")
	}
	if _, err := ParseGrouping("bogus"); err == nil {
		t.Fatal("bogus grouping accepted")
	}
	h, mags, err := ParseHeuristic("utility0.4")
	if err != nil || len(mags) == 0 || h.Name() != "utility(w=0.4)" {
		t.Fatalf("utility0.4 -> %v, %v, %v", h, mags, err)
	}
	if h, _, err := ParseHeuristic("mean3sigma"); err != nil || h.Name() != "mean+3σ" {
		t.Fatalf("mean3sigma -> %v, %v", h, err)
	}
	if _, _, err := ParseHeuristic("p98.6x"); err == nil {
		t.Fatal("bad heuristic accepted")
	}
	if _, err := (ConsoleSpec{Grouping: "full", Heuristic: "p99", Hosts: 0}).Build(); err == nil {
		t.Fatal("zero hosts accepted")
	}
	if srv, err := (ConsoleSpec{Grouping: "full", Heuristic: "p99", Hosts: 3}).Build(); err != nil || srv == nil {
		t.Fatalf("valid spec rejected: %v", err)
	}
}
