package fleet

import (
	"fmt"
	"time"

	"repro/internal/attack"
	"repro/internal/features"
	"repro/internal/stats"
	"repro/internal/xrand"
)

// AttackKind selects the threat model injected into a fleet run.
type AttackKind int

// The supported attack campaigns, mirroring internal/attack.
const (
	// AttackNone runs a clean fleet (false-positive measurement).
	AttackNone AttackKind = iota
	// AttackNaive injects a constant additive size into the attacked
	// window range of every victim (§6.1, Fig 4a).
	AttackNaive
	// AttackMimicry has the resourceful attacker profile each victim's
	// training distribution and send the largest volume that evades
	// its pushed threshold with probability EvadeProb (§6.2, Fig 4b).
	AttackMimicry
	// AttackStorm overlays a synthesized Storm-zombie activity series
	// on every victim (Fig 5).
	AttackStorm
)

// String names the attack kind.
func (k AttackKind) String() string {
	switch k {
	case AttackNone:
		return "none"
	case AttackNaive:
		return "naive"
	case AttackMimicry:
		return "mimicry"
	case AttackStorm:
		return "storm"
	default:
		return fmt.Sprintf("attackkind(%d)", int(k))
	}
}

// AttackPlan describes one campaign against a fleet: which threat
// model, on which feature, against which victims, over which windows
// of the test week. The zero value means no attack.
type AttackPlan struct {
	// Kind selects the threat model.
	Kind AttackKind
	// Feature is the attacked feature.
	Feature features.Feature
	// Size is the naive attacker's constant per-window volume.
	Size float64
	// EvadeProb is the mimicry attacker's per-window evasion target
	// (the paper uses 0.9).
	EvadeProb float64
	// FromBin/ToBin bound the attacked window range within the test
	// week, half-open; both zero means the whole week.
	FromBin, ToBin int
	// Victims lists attacked user indices explicitly. Nil selects
	// victims with VictimFraction and Seed instead.
	Victims []int
	// VictimFraction is the fraction of the fleet compromised when
	// Victims is nil; zero with nil Victims means everyone.
	VictimFraction float64
	// Seed drives victim selection and Storm synthesis.
	Seed uint64
}

// active reports whether the plan injects anything.
func (p *AttackPlan) active() bool { return p != nil && p.Kind != AttackNone }

// window returns the attacked bin range clamped to [0, bins).
func (p *AttackPlan) window(bins int) (from, to int) {
	from, to = p.FromBin, p.ToBin
	if from == 0 && to == 0 {
		return 0, bins
	}
	if from < 0 {
		from = 0
	}
	if to > bins {
		to = bins
	}
	return from, to
}

// victimSet resolves the victim subset deterministically: explicit
// Victims verbatim, otherwise a seeded sample of VictimFraction of
// the fleet (everyone when the fraction is zero).
func (p *AttackPlan) victimSet(users int) (map[int]bool, error) {
	set := make(map[int]bool)
	if p.Victims != nil {
		for _, u := range p.Victims {
			if u < 0 || u >= users {
				return nil, fmt.Errorf("fleet: victim %d outside fleet of %d", u, users)
			}
			set[u] = true
		}
		return set, nil
	}
	if p.VictimFraction < 0 || p.VictimFraction > 1 {
		return nil, fmt.Errorf("fleet: victim fraction %g outside [0, 1]", p.VictimFraction)
	}
	if p.VictimFraction == 0 {
		for u := 0; u < users; u++ {
			set[u] = true
		}
		return set, nil
	}
	n := int(float64(users) * p.VictimFraction)
	if n < 1 {
		n = 1
	}
	// Salt the seed so victim selection and Storm synthesis draw from
	// unrelated streams even when both use the same plan seed.
	perm := xrand.New(p.Seed ^ 0x71c71c71).Perm(users)
	for _, u := range perm[:n] {
		set[u] = true
	}
	return set, nil
}

// stormSeries synthesizes the shared Storm activity series for a
// test week of the given geometry (every victim hosts the same bot,
// as in the paper's overlay methodology).
func (p *AttackPlan) stormSeries(bins int, binWidth time.Duration) ([]float64, error) {
	bot, err := attack.NewStorm(attack.StormConfig{
		Bins:     bins,
		BinWidth: binWidth,
		Seed:     p.Seed,
	})
	if err != nil {
		return nil, err
	}
	return bot.Overlay().Overlay, nil
}

// overlayFor builds victim u's additive overlay for a test week of
// bins windows. storm is the shared Storm series (nil unless Kind is
// AttackStorm); trainDist and threshold feed the mimicry attacker and
// may be nil/0 otherwise. A non-victim gets a nil overlay.
func (p *AttackPlan) overlayFor(u int, victims map[int]bool, bins int, storm []float64, trainDist *stats.Empirical, threshold float64) ([]float64, error) {
	if !p.active() || !victims[u] {
		return nil, nil
	}
	from, to := p.window(bins)
	if from >= to {
		return nil, fmt.Errorf("fleet: attack window [%d, %d) is empty", from, to)
	}
	switch p.Kind {
	case AttackNaive:
		ov, err := attack.Naive(bins, from, to, p.Size)
		if err != nil {
			return nil, err
		}
		return ov.Overlay, nil
	case AttackMimicry:
		size, err := attack.MimicrySize(trainDist, threshold, p.EvadeProb)
		if err != nil {
			return nil, err
		}
		ov := make([]float64, bins)
		for b := from; b < to; b++ {
			ov[b] = size
		}
		return ov, nil
	case AttackStorm:
		ov := make([]float64, bins)
		for b := from; b < to; b++ {
			ov[b] = storm[b]
		}
		return ov, nil
	default:
		return nil, fmt.Errorf("fleet: unknown attack kind %d", int(p.Kind))
	}
}

// AttackedWindows returns the boolean positives series of the plan: a
// window is attacked when any victim carries a positive overlay in
// it. For constant-size plans this is simply [FromBin, ToBin); for
// Storm it excludes the (rare) zero-activity windows, matching the
// positives definition core.Evaluate uses (overlay > 0).
func (p *AttackPlan) AttackedWindows(bins int, storm []float64) []bool {
	out := make([]bool, bins)
	if !p.active() {
		return out
	}
	from, to := p.window(bins)
	for b := from; b < to; b++ {
		if p.Kind == AttackStorm {
			out[b] = storm[b] > 0
		} else {
			out[b] = true
		}
	}
	return out
}
