package fleet

import (
	"errors"
	"sync"
)

// ErrClockCancelled is returned by Clock.Step after Cancel: the fleet
// run is aborting and no further ticks will happen.
var ErrClockCancelled = errors.New("fleet: logical clock cancelled")

// Clock is the fleet's logical time source: a reusable barrier over n
// participants. Each participant calls Step to finish the current
// tick; Step returns once every participant has arrived, at which
// point the logical time has advanced by one. Wall time never enters:
// a fleet run's notion of "now" is purely the tick count, which is
// what makes replay order — and therefore every Result — a function
// of the seed alone rather than of goroutine scheduling.
//
// A participant that fails mid-run must Cancel the clock, or the
// remaining participants would wait forever on a barrier that can no
// longer fill.
type Clock struct {
	mu        sync.Mutex
	cond      *sync.Cond
	n         int
	arrived   int
	tick      int
	cancelled bool
}

// NewClock creates a logical clock over n participants (n >= 1).
func NewClock(n int) *Clock {
	if n < 1 {
		panic("fleet: clock needs >= 1 participant")
	}
	c := &Clock{n: n}
	c.cond = sync.NewCond(&c.mu)
	return c
}

// Step blocks until all n participants have called Step for the
// current tick, then advances the clock. It returns
// ErrClockCancelled if Cancel was (or is) called while waiting.
func (c *Clock) Step() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.cancelled {
		return ErrClockCancelled
	}
	t := c.tick
	c.arrived++
	if c.arrived >= c.n { // >= : Leave may shrink n mid-round
		c.arrived = 0
		c.tick++
		c.cond.Broadcast()
		return nil
	}
	for c.tick == t && !c.cancelled {
		c.cond.Wait()
	}
	if c.cancelled {
		return ErrClockCancelled
	}
	return nil
}

// Leave permanently removes one participant from the barrier — the
// degraded-mode exit for an agent that is permanently lost. The
// survivors keep ticking over a smaller population instead of
// deadlocking on a Step that will never come; if the departure
// completes the current round, the tick advances immediately.
func (c *Clock) Leave() {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.cancelled || c.n == 0 {
		return
	}
	c.n--
	if c.n > 0 && c.arrived >= c.n {
		c.arrived = 0
		c.tick++
	}
	c.cond.Broadcast()
}

// Cancel aborts the clock: every current and future Step returns
// ErrClockCancelled. Idempotent.
func (c *Clock) Cancel() {
	c.mu.Lock()
	c.cancelled = true
	c.cond.Broadcast()
	c.mu.Unlock()
}

// Cancelled reports whether Cancel has been called.
func (c *Clock) Cancelled() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.cancelled
}

// Tick returns the current logical time (the number of completed
// barrier rounds).
func (c *Clock) Tick() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.tick
}
