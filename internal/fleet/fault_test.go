package fleet

import (
	"fmt"
	"reflect"
	"sync"
	"testing"
	"time"

	"repro/internal/collab"
	"repro/internal/core"
	"repro/internal/features"
	"repro/internal/netsim"
)

// faultFleetConfigSeed builds the shared small-fleet geometry the
// fault suite runs: 12 hosts, two weeks of 4-hour windows (42 per
// week), alerts flushed every 6 windows — 7 logical clock ticks — a
// Storm campaign straddling the fleet's thresholds, and collaborative
// quorum detection. Small enough that a grid of runs stays cheap,
// busy enough that every flush round actually carries alert batches
// the fault layer can drop, spool and re-deliver.
func faultFleetConfigSeed(t *testing.T, seed uint64) Config {
	t.Helper()
	cfg := Config{
		Users:      12,
		Weeks:      2,
		Seed:       seed,
		BinWidth:   4 * time.Hour,
		FlushEvery: 6,
		Policy:     p99Policy(core.FullDiversity{}),
		Attack: &AttackPlan{
			Kind:    AttackStorm,
			Feature: features.Distinct,
			Seed:    5,
		},
		Collab: &collab.Config{Quorum: 3},
	}
	cfg.Matrices = buildMats(t, cfg)
	return cfg
}

func faultFleetConfig(t *testing.T) Config { return faultFleetConfigSeed(t, 23) }

// healingPlans is the convergence grid: every plan here eventually
// heals, so a fleet run under it must produce a Result DeepEqual to
// the fault-free run of the same Config. The plans cover each fault
// mechanism alone and combined.
func healingPlans() []struct {
	name string
	plan netsim.FaultPlan
} {
	return []struct {
		name string
		plan netsim.FaultPlan
	}{
		{"drops heal", netsim.FaultPlan{
			Seed: 101, DropProb: 0.25, HealTick: 4,
		}},
		{"drops forever", netsim.FaultPlan{
			// No HealTick: drops never stop, but retried protocols make
			// progress through probabilistic faults, so this still
			// converges (the FaultPlan doc's claim, pinned here).
			Seed: 102, DropProb: 0.25,
		}},
		{"resets heal", netsim.FaultPlan{
			Seed: 103, ResetProb: 0.2, HealTick: 4,
		}},
		{"delay jitter drops", netsim.FaultPlan{
			Seed: 104, DropProb: 0.1,
			Delay: 50 * time.Microsecond, Jitter: 100 * time.Microsecond,
			HealTick: 5,
		}},
		{"partition heals", netsim.FaultPlan{
			Seed:       105,
			Partitions: []netsim.Partition{{Hosts: []int{2, 5, 7}, From: 2, To: 4}},
		}},
		{"crash restart", netsim.FaultPlan{
			Seed: 106,
			Crashes: []netsim.CrashWindow{
				{Host: 1, From: 1, To: 3},
				{Host: 6, From: 3, To: 5},
			},
		}},
		{"reconnect storm", netsim.FaultPlan{
			// Every host severed for one tick, then the whole fleet
			// redials the console at once.
			Seed:       107,
			Partitions: []netsim.Partition{{From: 2, To: 3}},
		}},
		{"chaos", netsim.FaultPlan{
			Seed: 108, DropProb: 0.2, ResetProb: 0.1, HealTick: 3,
			Partitions: []netsim.Partition{{Hosts: []int{3, 4}, From: 1, To: 3}},
			Crashes:    []netsim.CrashWindow{{Host: 9, From: 2, To: 4}},
		}},
	}
}

// assertResultsEqual fails with a field-level hint before the blunt
// DeepEqual verdict, so a divergence is diagnosable from the log.
func assertResultsEqual(t *testing.T, got, want *Result) {
	t.Helper()
	if got.Survivors != want.Survivors {
		t.Errorf("Survivors = %d, want %d", got.Survivors, want.Survivors)
	}
	if got.TotalAlerts != want.TotalAlerts {
		t.Errorf("TotalAlerts = %d, want %d", got.TotalAlerts, want.TotalAlerts)
	}
	if got.Epoch != want.Epoch {
		t.Errorf("Epoch = %d, want %d", got.Epoch, want.Epoch)
	}
	if !reflect.DeepEqual(got.AlertCounts, want.AlertCounts) {
		t.Errorf("AlertCounts = %v, want %v", got.AlertCounts, want.AlertCounts)
	}
	if !reflect.DeepEqual(got.Lost, want.Lost) || !reflect.DeepEqual(got.Partitioned, want.Partitioned) {
		t.Errorf("casualties = lost %v / partitioned %v, want %v / %v",
			got.Lost, got.Partitioned, want.Lost, want.Partitioned)
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("Results differ beyond the fields above (thresholds, alarms, or collab series)")
	}
}

// TestFleetFaultConvergence is the tentpole property: a fleet run
// under any healing fault plan — drops, resets, delay, partitions,
// crash/restart windows, a full reconnect storm, all combined — ends
// in a Result deeply equal to the fault-free run of the same Config.
// Self-healing is invisible in the outcome: no lost alerts, no
// duplicated alerts, no threshold drift, no phantom casualties.
func TestFleetFaultConvergence(t *testing.T) {
	cfg := faultFleetConfig(t)
	baseline, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if baseline.Survivors != cfg.Users || baseline.Lost != nil || baseline.Partitioned != nil {
		t.Fatalf("fault-free baseline not clean: survivors %d, lost %v, partitioned %v",
			baseline.Survivors, baseline.Lost, baseline.Partitioned)
	}
	if baseline.TotalAlerts == 0 {
		t.Fatal("baseline carried no alerts; the convergence check would be vacuous")
	}
	for _, tc := range healingPlans() {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			fcfg := cfg
			fcfg.Faults = &tc.plan
			res, err := Run(fcfg)
			if err != nil {
				t.Fatal(err)
			}
			assertResultsEqual(t, res, baseline)
		})
	}
}

// TestFleetFaultDegradedQuorum pins degraded mode: one host crashes
// for good mid-run, another is permanently partitioned, and the fleet
// finishes over the ten survivors. The Result classifies each
// casualty by its fault, dead hosts contribute no votes after their
// loss, the fractional quorum resolves over survivors — and the whole
// degraded run is still deterministic.
func TestFleetFaultDegradedQuorum(t *testing.T) {
	cfg := faultFleetConfig(t)
	cfg.Collab = &collab.Config{QuorumFraction: 0.25}
	cfg.Faults = &netsim.FaultPlan{
		Seed:       201,
		Crashes:    []netsim.CrashWindow{{Host: 3, From: 2, To: -1}},
		Partitions: []netsim.Partition{{Hosts: []int{8}, From: 3, To: -1}},
	}
	cfg.AllowDegraded = true
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Survivors != 10 {
		t.Fatalf("Survivors = %d, want 10", res.Survivors)
	}
	if !reflect.DeepEqual(res.Lost, []int{3}) {
		t.Fatalf("Lost = %v, want [3]", res.Lost)
	}
	if !reflect.DeepEqual(res.Partitioned, []int{8}) {
		t.Fatalf("Partitioned = %v, want [8]", res.Partitioned)
	}
	if res.Lagging != nil {
		t.Fatalf("Lagging = %v, want none", res.Lagging)
	}
	// ceil(0.25 * 10 survivors) = 3, never the configured fraction of
	// the nominal fleet size.
	if res.EffectiveQuorum != 3 {
		t.Fatalf("EffectiveQuorum = %d, want 3", res.EffectiveQuorum)
	}
	if res.Groups[3] != -1 || res.Groups[8] != -1 {
		t.Fatalf("casualty groups = %d, %d; want -1, -1", res.Groups[3], res.Groups[8])
	}
	// No phantom votes: host 3 went down at tick 2, so its last
	// delivered batch covers windows [0, 12); host 8 at tick 3, windows
	// [0, 18). Anything later on those rows would be an alert the
	// console invented.
	for b := 2 * cfg.FlushEvery; b < res.TestBins; b++ {
		if res.Alarms[3][b] {
			t.Fatalf("host 3 alarmed in window %d after its permanent crash", b)
		}
	}
	for b := 3 * cfg.FlushEvery; b < res.TestBins; b++ {
		if res.Alarms[8][b] {
			t.Fatalf("host 8 alarmed in window %d after its permanent partition", b)
		}
	}
	// The fleet series must be exactly an absolute-quorum detector at
	// the resolved quorum over the console-observed alarm matrix.
	det, err := collab.New(collab.Config{Quorum: res.EffectiveQuorum})
	if err != nil {
		t.Fatal(err)
	}
	events, err := det.Events(res.Alarms)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(events, res.FleetEvents) {
		t.Fatal("FleetEvents differ from the resolved-quorum detector over the alarm matrix")
	}
	again, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	assertResultsEqual(t, again, res)
}

// TestFleetFaultDeadFromStart covers permanent windows open at tick
// 0: the host never connects, the console's expected population
// excludes it up front (so thresholds still get configured and
// pushed), and the Result reports it lost with no thresholds, no
// group, and no alerts.
func TestFleetFaultDeadFromStart(t *testing.T) {
	cfg := faultFleetConfig(t)
	cfg.Faults = &netsim.FaultPlan{
		Seed:    301,
		Crashes: []netsim.CrashWindow{{Host: 0, From: 0, To: -1}},
	}
	cfg.AllowDegraded = true
	res, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Survivors != 11 || !reflect.DeepEqual(res.Lost, []int{0}) {
		t.Fatalf("survivors %d, lost %v; want 11, [0]", res.Survivors, res.Lost)
	}
	var zero [features.NumFeatures]float64
	if res.Groups[0] != -1 || res.Thresholds[0] != zero || res.AlertCounts[0] != 0 {
		t.Fatalf("dead-from-start host leaked state: group %d, thresholds %v, alerts %d",
			res.Groups[0], res.Thresholds[0], res.AlertCounts[0])
	}
	for u := 1; u < cfg.Users; u++ {
		if res.Groups[u] < 0 {
			t.Fatalf("surviving host %d has no group", u)
		}
	}
	if res.EffectiveQuorum != 3 {
		t.Fatalf("EffectiveQuorum = %d, want 3", res.EffectiveQuorum)
	}
}

// TestFleetFaultConfigValidation exercises the fail-fast paths the
// fault layer adds to Config.
func TestFleetFaultConfigValidation(t *testing.T) {
	base := Config{Users: 4, Weeks: 2, Policy: p99Policy(core.FullDiversity{})}
	for name, mutate := range map[string]func(*Config){
		"healing partition at tick 0": func(c *Config) {
			c.Faults = &netsim.FaultPlan{Partitions: []netsim.Partition{{Hosts: []int{1}, From: 0, To: 2}}}
		},
		"healing crash at tick 0": func(c *Config) {
			c.Faults = &netsim.FaultPlan{Crashes: []netsim.CrashWindow{{Host: 1, From: 0, To: 2}}}
		},
		"permanent loss needs AllowDegraded": func(c *Config) {
			c.Faults = &netsim.FaultPlan{Crashes: []netsim.CrashWindow{{Host: 1, From: 2, To: -1}}}
		},
		"drop probability above 1": func(c *Config) {
			c.Faults = &netsim.FaultPlan{DropProb: 1.5}
		},
		"drop plus reset above 1": func(c *Config) {
			c.Faults = &netsim.FaultPlan{DropProb: 0.7, ResetProb: 0.6}
		},
	} {
		cfg := base
		mutate(&cfg)
		if _, err := cfg.withDefaults(); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
	healing := base
	healing.Faults = &netsim.FaultPlan{
		DropProb:   0.5,
		Partitions: []netsim.Partition{{Hosts: []int{1}, From: 1, To: 2}},
	}
	if _, err := healing.withDefaults(); err != nil {
		t.Errorf("healing plan rejected: %v", err)
	}
	degraded := base
	degraded.Faults = &netsim.FaultPlan{Crashes: []netsim.CrashWindow{{Host: 1, From: 2, To: -1}}}
	degraded.AllowDegraded = true
	if _, err := degraded.withDefaults(); err != nil {
		t.Errorf("permanent plan with AllowDegraded rejected: %v", err)
	}

	// A plan that kills the whole fleet at tick 0 has no run to do.
	small := Config{
		Users: 2, Weeks: 2, Seed: 1, BinWidth: 4 * time.Hour,
		Policy:        p99Policy(core.FullDiversity{}),
		AllowDegraded: true,
		Faults:        &netsim.FaultPlan{Partitions: []netsim.Partition{{From: 0, To: -1}}},
	}
	small.Matrices = buildMats(t, small)
	if _, err := Run(small); err == nil {
		t.Error("plan killing every host at tick 0 accepted")
	}
}

// TestFleetClockLeave pins the degraded-mode barrier shrink: a
// departing participant never strands the survivors, completes the
// current round if it was the last arrival missing, and the last
// survivor ticks freely.
func TestFleetClockLeave(t *testing.T) {
	c := NewClock(3)
	var wg sync.WaitGroup
	errs := make([]error, 2)
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			errs[i] = c.Step()
		}(i)
	}
	time.Sleep(10 * time.Millisecond) // widen the waiting-at-barrier interleaving
	c.Leave()
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("stepper %d: %v", i, err)
		}
	}
	if c.Tick() != 1 {
		t.Fatalf("tick = %d after Leave completed the round, want 1", c.Tick())
	}

	done := make(chan error, 1)
	go func() { done <- c.Step() }()
	c.Leave()
	if err := <-done; err != nil {
		t.Fatalf("survivor step after Leave: %v", err)
	}
	if c.Tick() != 2 {
		t.Fatalf("tick = %d, want 2", c.Tick())
	}

	// A single remaining participant self-completes every round.
	if err := c.Step(); err != nil {
		t.Fatalf("solo step: %v", err)
	}
	if c.Tick() != 3 {
		t.Fatalf("tick = %d, want 3", c.Tick())
	}
	c.Leave()
	c.Leave() // empty barrier: no-op, no panic

	// Leave after Cancel changes nothing: the clock stays cancelled.
	c2 := NewClock(2)
	c2.Cancel()
	c2.Leave()
	if err := c2.Step(); err != ErrClockCancelled {
		t.Fatalf("step on cancelled clock after Leave: %v", err)
	}
}

// TestChaosConvergenceGrid is the chaos soak (`make chaos-soak`): the
// convergence property over a grid of population seeds and heavier
// fault plans, under the race detector. -short skips it so the
// regular suite stays within budget.
func TestChaosConvergenceGrid(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos soak skipped in -short mode (run via make chaos-soak)")
	}
	for _, seed := range []uint64{31, 77} {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			cfg := faultFleetConfigSeed(t, seed)
			baseline, err := Run(cfg)
			if err != nil {
				t.Fatal(err)
			}
			plans := []struct {
				name string
				plan netsim.FaultPlan
			}{
				{"heavy drops resets", netsim.FaultPlan{
					Seed: seed*2 + 1, DropProb: 0.35, ResetProb: 0.15,
					Delay: 20 * time.Microsecond, Jitter: 80 * time.Microsecond,
					HealTick: 5,
				}},
				{"double storm", netsim.FaultPlan{
					Seed: seed*2 + 2,
					Partitions: []netsim.Partition{
						{From: 1, To: 2},
						{From: 3, To: 4},
					},
				}},
				{"everything at once", netsim.FaultPlan{
					Seed: seed*2 + 3, DropProb: 0.2, ResetProb: 0.1, HealTick: 4,
					Partitions: []netsim.Partition{{Hosts: []int{0, 1, 2, 3, 4, 5}, From: 2, To: 4}},
					Crashes: []netsim.CrashWindow{
						{Host: 7, From: 1, To: 5},
						{Host: 10, From: 4, To: 6},
					},
				}},
			}
			for _, tc := range plans {
				tc := tc
				t.Run(tc.name, func(t *testing.T) {
					t.Parallel()
					fcfg := cfg
					fcfg.Faults = &tc.plan
					res, err := Run(fcfg)
					if err != nil {
						t.Fatal(err)
					}
					assertResultsEqual(t, res, baseline)
				})
			}
		})
	}
}

// TestChaosDegradedDeterminism soaks the degraded path: permanent
// losses on top of probabilistic chaos, twice — the casualty
// classification, the resolved quorum and the full Result must be
// identical across runs.
func TestChaosDegradedDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos soak skipped in -short mode (run via make chaos-soak)")
	}
	cfg := faultFleetConfig(t)
	cfg.Collab = &collab.Config{QuorumFraction: 0.4}
	cfg.Faults = &netsim.FaultPlan{
		Seed: 55, DropProb: 0.2, HealTick: 4,
		Crashes:    []netsim.CrashWindow{{Host: 2, From: 2, To: -1}},
		Partitions: []netsim.Partition{{Hosts: []int{7}, From: 4, To: -1}},
	}
	cfg.AllowDegraded = true
	first, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if first.Survivors != 10 {
		t.Fatalf("Survivors = %d, want 10", first.Survivors)
	}
	if !reflect.DeepEqual(first.Lost, []int{2}) || !reflect.DeepEqual(first.Partitioned, []int{7}) {
		t.Fatalf("casualties = lost %v / partitioned %v, want [2] / [7]", first.Lost, first.Partitioned)
	}
	if first.EffectiveQuorum != 4 { // ceil(0.4 * 10)
		t.Fatalf("EffectiveQuorum = %d, want 4", first.EffectiveQuorum)
	}
	second, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	assertResultsEqual(t, second, first)
}
