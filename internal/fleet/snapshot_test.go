package fleet

import (
	"os"
	"reflect"
	"testing"

	"repro/internal/core"
)

// TestFleetSnapshotBackedRunMatches pins the snapshot-backed fleet
// path to per-agent synthesis: the same Config must produce a
// DeepEqual Result whether agents synthesize their matrices, the run
// cold-builds the snapshot, or a second run warm-maps it.
func TestFleetSnapshotBackedRunMatches(t *testing.T) {
	dir := t.TempDir()
	base := Config{
		Users: 12, Weeks: 2, Seed: 11,
		Policy: core.Policy{
			Heuristic: core.Percentile{Q: 0.99},
			Grouping:  core.PartialDiversity{NumGroups: 3},
		},
	}
	want, err := Run(base)
	if err != nil {
		t.Fatal(err)
	}

	snap := base
	snap.SnapshotDir = dir
	cold, err := Run(snap) // miss: materializes the snapshot, then runs off it
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(cold, want) {
		t.Fatal("cold snapshot-backed fleet result diverges from synthesized run")
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	// One sealed snapshot plus its manifest sidecar, nothing else.
	if len(ents) != 2 {
		t.Fatalf("cold run left %d files in the store, want .snap + .manifest", len(ents))
	}
	warm, err := Run(snap) // hit: generation skipped entirely
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(warm, want) {
		t.Fatal("warm snapshot-backed fleet result diverges from synthesized run")
	}
}
