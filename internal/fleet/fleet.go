// Package fleet is the in-process fleet simulator: one console server
// and N end-host agents wired over an in-memory net.Conn transport
// (netsim.MemNetwork), driven through the paper's full distributed
// loop — train, upload, threshold push, synchronized test-week
// replay, alert batching, collaborative quorum detection — with no
// real sockets and no wall-clock dependence.
//
// A fleet run is fully deterministic given its Config: the population
// is seeded (internal/trace), attack campaigns derive from a seeded
// xrand stream, agents connect in user order so the console's
// host-order-dependent threshold assignment is fixed, and replay
// advances on a logical barrier clock (Clock) instead of timers. The
// same Config therefore always produces an identical Result, byte for
// byte — which is what lets fleet_test.go pin the wire-level pipeline
// to the in-memory analysis pipeline (core.EvaluatePolicy over an
// analysis.Workspace) on identical populations, and what makes
// thousand-agent soak runs reproducible under the race detector.
package fleet

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sort"
	"sync"
	"time"

	"repro/internal/analysis"
	"repro/internal/collab"
	"repro/internal/console"
	"repro/internal/core"
	"repro/internal/features"
	"repro/internal/netsim"
	"repro/internal/snapshot"
	"repro/internal/stats"
	"repro/internal/trace"
)

// Config parameterizes one fleet simulation.
type Config struct {
	// Users is the fleet size.
	Users int
	// Weeks of synthetic capture; must cover TrainWeek and TestWeek.
	Weeks int
	// Seed drives the population (and, with Attack.Seed, everything
	// else that is random).
	Seed uint64
	// BinWidth is the aggregation window (default 15 minutes).
	BinWidth time.Duration
	// WeeklyTrend overrides the population's weekly rate trend; zero
	// keeps the calibrated default.
	WeeklyTrend float64
	// Matrices optionally supplies pre-built per-user feature
	// matrices, one per host, all sharing one geometry that covers
	// TrainWeek and TestWeek. When set, population synthesis is
	// skipped entirely (Seed/BinWidth/WeeklyTrend are ignored) —
	// thousand-agent soak runs share one generation pass instead of
	// re-synthesizing hundreds of millions of connections per run.
	// The matrices are only read during the run.
	Matrices []*features.Matrix
	// SnapshotDir points at the on-disk workspace store. When set
	// (and Matrices is nil) the run maps the population's matrices
	// from a content-addressed snapshot instead of synthesizing them
	// per agent — a warm thousand-agent soak skips generation
	// entirely — and on a miss materializes the snapshot first,
	// streamed in bounded shards. Stale or corrupt snapshots fall
	// back to per-agent synthesis.
	SnapshotDir string

	// Policy is the enterprise configuration policy the console
	// applies.
	Policy core.Policy
	// AttackMagnitudes feed objective-optimizing heuristics (may be
	// nil for percentile-style heuristics).
	AttackMagnitudes []float64

	// TrainWeek and TestWeek implement the week-n-train /
	// week-n+1-test methodology (defaults 0 and 1).
	TrainWeek, TestWeek int
	// FlushEvery batches alerts every N windows; zero means one
	// simulated day. Each flush is also one logical clock tick.
	FlushEvery int

	// Attack optionally injects a campaign into the test week.
	Attack *AttackPlan
	// Collab optionally runs collaborative quorum detection over the
	// alert batches the console received.
	Collab *collab.Config
	// Watch is the feature whose fleet-wide alarm matrix feeds
	// collaborative detection; the zero value means the default, TCP.
	// DNS is feature 0 and collides with "unset" — use WatchDNS to
	// watch it on a clean fleet. An active Attack overrides Watch
	// with the attacked feature.
	Watch features.Feature

	// ThresholdTimeout bounds each agent's wait for thresholds
	// (default 5 minutes — generous because N agents under the race
	// detector configure slowly, and a deterministic run only ever
	// times out when genuinely wedged).
	ThresholdTimeout time.Duration
	// Logf receives console log lines (default silent).
	Logf func(format string, args ...any)

	// Faults, when set, wraps the in-memory transport in a seeded
	// chaos layer (netsim.FaultNetwork) driven by the fleet clock:
	// drops, delays, resets, partitions and crash windows fire on the
	// plan's schedule, and agents self-heal through them. Healing
	// windows (To >= 0) must start at tick 1 or later — tick 0 covers
	// connect, upload and the threshold push, which a valid run needs
	// exactly once. Windows opening at or before tick 0 must be
	// permanent (To < 0): those hosts are dead from the start and
	// excluded from the run. Nil runs on the perfect network,
	// byte-identical to pre-fault behavior.
	Faults *netsim.FaultPlan
	// Retry overrides the agents' self-healing budget; the zero value
	// picks fault-run defaults (unlimited redials with microsecond
	// backoffs — the fault plan, not wall time, decides who stays
	// down). Ignored without Faults.
	Retry console.RetryPolicy
	// AllowDegraded accepts fault plans with permanent losses: the
	// fleet finishes over its survivors (failing agents leave the
	// clock's barrier instead of cancelling it) and the Result records
	// who was lost. Required when Faults does not heal.
	AllowDegraded bool
}

func (c Config) withDefaults() (Config, error) {
	if c.Users <= 0 {
		return c, fmt.Errorf("fleet: Config.Users must be positive, got %d", c.Users)
	}
	if c.Matrices != nil {
		if len(c.Matrices) != c.Users {
			return c, fmt.Errorf("fleet: %d matrices for %d users", len(c.Matrices), c.Users)
		}
		m0 := c.Matrices[0]
		for u, m := range c.Matrices {
			if m == nil || m.Bins() != m0.Bins() || m.BinWidth != m0.BinWidth {
				return c, fmt.Errorf("fleet: matrix %d geometry differs from matrix 0", u)
			}
		}
		c.Weeks = m0.Weeks()
		c.BinWidth = m0.BinWidth
	}
	if c.TrainWeek == 0 && c.TestWeek == 0 {
		c.TrainWeek, c.TestWeek = 0, 1
	}
	if c.TrainWeek < 0 || c.TestWeek < 0 || c.TrainWeek == c.TestWeek {
		return c, fmt.Errorf("fleet: bad train/test weeks %d/%d", c.TrainWeek, c.TestWeek)
	}
	minWeeks := c.TrainWeek + 1
	if c.TestWeek >= c.TrainWeek {
		minWeeks = c.TestWeek + 1
	}
	if c.Weeks < minWeeks {
		return c, fmt.Errorf("fleet: %d weeks do not cover train week %d and test week %d",
			c.Weeks, c.TrainWeek, c.TestWeek)
	}
	if c.Policy.Heuristic == nil || c.Policy.Grouping == nil {
		return c, fmt.Errorf("fleet: Config.Policy incomplete")
	}
	if c.Attack.active() && !c.Attack.Feature.Valid() {
		return c, fmt.Errorf("fleet: invalid attacked feature %d", int(c.Attack.Feature))
	}
	switch {
	case c.Watch == WatchDNS:
		c.Watch = features.DNS
	case c.Watch == 0:
		c.Watch = features.TCP
	case !c.Watch.Valid():
		return c, fmt.Errorf("fleet: invalid watch feature %d", int(c.Watch))
	}
	if c.Attack.active() {
		c.Watch = c.Attack.Feature
	}
	if c.Faults != nil {
		if err := c.Faults.Validate(); err != nil {
			return c, fmt.Errorf("fleet: %w", err)
		}
		for _, w := range c.Faults.Partitions {
			if w.To >= 0 && w.From < 1 {
				return c, fmt.Errorf("fleet: healing partition [%d, %d) must start at tick >= 1 (tick 0 covers connect/upload/push)", w.From, w.To)
			}
		}
		for _, w := range c.Faults.Crashes {
			if w.To >= 0 && w.From < 1 {
				return c, fmt.Errorf("fleet: healing crash window [%d, %d) of host %d must start at tick >= 1 (tick 0 covers connect/upload/push)", w.From, w.To, w.Host)
			}
		}
		if !c.Faults.Heals() && !c.AllowDegraded {
			return c, fmt.Errorf("fleet: fault plan has permanent losses; set AllowDegraded")
		}
	}
	return c, nil
}

// WatchDNS is the Config.Watch sentinel for watching
// num-DNS-connections on a clean fleet: DNS is feature 0, which an
// untyped Config cannot distinguish from "unset, default to TCP".
const WatchDNS features.Feature = -1

// Result is everything a fleet run observed, in deterministic order:
// per-host threshold assignments as pushed over the wire, per-host
// alarm series as received by the console, and the collaborative
// fleet-event series. Two runs of the same Config produce
// reflect.DeepEqual Results.
type Result struct {
	// Policy is the console's policy name.
	Policy string
	// Users is the fleet size; TestBins the monitored window count.
	Users, TestBins int
	// WatchFeature is the feature Alarms/FleetEvents cover.
	WatchFeature features.Feature
	// Epoch is the console's final configuration epoch.
	Epoch int

	// Thresholds[u] is the full six-feature threshold vector host u
	// received.
	Thresholds [][features.NumFeatures]float64
	// Groups[u] is the configuration group host u landed in.
	Groups []int

	// AlertCounts[u] is the console's tally for host u (all
	// features); TotalAlerts the fleet-wide sum.
	AlertCounts []int
	TotalAlerts int

	// Alarms[u][b] reports whether host u alarmed on the watch
	// feature in test window b, rebuilt from the console's alert log
	// (duplicates deduplicated) — the console-side ground truth.
	Alarms [][]bool

	// AttackedWindows[b] marks the test windows the attack plan made
	// positive (all false without an attack).
	AttackedWindows []bool

	// FleetVotes/FleetEvents are the collaborative detector's
	// per-window weighted votes and quorum events (nil without a
	// Collab config). FleetConfusion scores events against
	// AttackedWindows (nil without an active attack).
	FleetVotes     []int
	FleetEvents    []bool
	FleetConfusion *stats.Confusion

	// Survivors counts the hosts that completed the run. On a healthy
	// or fully-healing run it equals Users, and the degraded fields
	// below are nil/zero — which is exactly what lets the convergence
	// suite DeepEqual a healing fault run against its fault-free twin.
	Survivors int
	// Lost lists hosts that never finished: dead from the start, or
	// crashed permanently mid-run (sorted; nil when none).
	Lost []int
	// Partitioned lists hosts that never finished because a permanent
	// network partition cut them off (sorted; nil when none).
	Partitioned []int
	// Lagging lists survivors whose final thresholds trail the
	// console's epoch (sorted; nil when none).
	Lagging []int
	// EffectiveQuorum is the absolute quorum collaborative detection
	// actually used, resolved over the surviving population (zero
	// without a Collab config).
	EffectiveQuorum int
	// SnapshotFallbacks counts snapshot-store fallback events (stale,
	// corrupt or unwritable store) during this run; 0 on warm or
	// storeless runs.
	SnapshotFallbacks int
}

// openFleetSnapshot maps the workspace snapshot of the run's
// population, cold-building it (sharded) on a miss. Any failure —
// unaddressable config, unwritable directory — returns nil and the
// run falls back to per-agent synthesis; a snapshot is an
// accelerator, never a correctness dependency. Fallback events are
// logged and counted so Result.SnapshotFallbacks surfaces them.
func openFleetSnapshot(cfg Config) (*analysis.Workspace, int) {
	logf := cfg.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}
	fallbacks := 0
	warn := func(stage string, err error) {
		fallbacks++
		logf("fleet: snapshot %s fallback (%s): %v", stage, cfg.SnapshotDir, err)
	}
	tcfg := trace.Config{
		Users:       cfg.Users,
		Weeks:       cfg.Weeks,
		Seed:        cfg.Seed,
		BinWidth:    cfg.BinWidth,
		WeeklyTrend: cfg.WeeklyTrend,
	}
	key, err := snapshot.KeyFor(tcfg)
	if err != nil {
		warn("key", err)
		return nil, fallbacks
	}
	pop, err := trace.NewPopulation(tcfg)
	if err != nil {
		return nil, fallbacks
	}
	ws, _, err := analysis.LoadOrMaterialize(context.Background(), cfg.SnapshotDir, key, 0, 0, pop.CostWeights(), warn,
		func(u int, rows [][features.NumFeatures]float64) {
			pop.Users[u].FillSeries(rows)
		})
	if err != nil {
		return nil, fallbacks
	}
	return ws, fallbacks
}

// Run executes one fleet simulation to completion.
func Run(cfg Config) (*Result, error) {
	cfg, err := cfg.withDefaults()
	if err != nil {
		return nil, err
	}
	// Resolve the per-host matrices: pre-built, mapped from the
	// snapshot store, or synthesized lazily inside each agent's
	// goroutine from the seeded population.
	snapshotFallbacks := 0
	if cfg.Matrices == nil && cfg.SnapshotDir != "" {
		ws, fallbacks := openFleetSnapshot(cfg)
		snapshotFallbacks = fallbacks
		if ws != nil {
			// The mapped views live until every agent is done; Run's
			// other defers (server close, agent closes) are declared
			// later, so they unwind first.
			defer ws.Close()
			cfg.Matrices = ws.Matrices()
		}
	}
	var matrixOf func(u int) *features.Matrix
	var bpw int
	var binWidth time.Duration
	if cfg.Matrices != nil {
		matrixOf = func(u int) *features.Matrix { return cfg.Matrices[u] }
		bpw = cfg.Matrices[0].BinsPerWeek()
		binWidth = cfg.Matrices[0].BinWidth
	} else {
		pop, err := trace.NewPopulation(trace.Config{
			Users:       cfg.Users,
			Weeks:       cfg.Weeks,
			Seed:        cfg.Seed,
			BinWidth:    cfg.BinWidth,
			WeeklyTrend: cfg.WeeklyTrend,
		})
		if err != nil {
			return nil, err
		}
		matrixOf = func(u int) *features.Matrix { return pop.Users[u].Series() }
		bpw = pop.Cfg.BinsPerWeek()
		binWidth = pop.Cfg.BinWidth
	}
	flushEvery := cfg.FlushEvery
	if flushEvery <= 0 {
		flushEvery = bpw / 7 // one simulated day
	}

	// Resolve the campaign up front: victim subset and (for Storm)
	// the shared bot activity series are seeded, not scheduled.
	var victims map[int]bool
	var storm []float64
	if cfg.Attack.active() {
		if victims, err = cfg.Attack.victimSet(cfg.Users); err != nil {
			return nil, err
		}
		if cfg.Attack.Kind == AttackStorm {
			if storm, err = cfg.Attack.stormSeries(bpw, binWidth); err != nil {
				return nil, err
			}
		}
	}

	// Classify the fault plan's planned losses up front. A permanent
	// window open at or before tick 0 means the host is dead from the
	// start: it never connects, never uploads, and the console's
	// expected population excludes it. Mid-run permanent losses (From
	// >= 1) participate normally until their window opens.
	deadFromStart := make(map[int]bool)
	if cfg.Faults != nil {
		for u := 0; u < cfg.Users; u++ {
			if from, _, ok := cfg.Faults.PermanentLoss(u); ok && from <= 0 {
				deadFromStart[u] = true
			}
		}
	}
	participants := cfg.Users - len(deadFromStart)
	if participants <= 0 {
		return nil, fmt.Errorf("fleet: fault plan kills all %d hosts at tick 0", cfg.Users)
	}

	srv, err := console.NewServer(console.ServerConfig{
		Policy:           cfg.Policy,
		ExpectedHosts:    participants,
		AttackMagnitudes: cfg.AttackMagnitudes,
		Logf:             cfg.Logf,
	})
	if err != nil {
		return nil, err
	}

	// The clock exists before any connection so it can drive the fault
	// layer: logical ticks (completed flush rounds) are the time base
	// partitions and crash windows fire on.
	clock := NewClock(participants)
	network := netsim.NewMemNetwork()
	var fnet *netsim.FaultNetwork
	if cfg.Faults != nil {
		if fnet, err = netsim.NewFaultNetwork(network, *cfg.Faults, clock); err != nil {
			return nil, err
		}
	}
	ln, err := network.Listen("console")
	if err != nil {
		return nil, err
	}
	serveDone := make(chan error, 1)
	go func() { serveDone <- srv.Serve(ln) }()
	defer func() {
		_ = srv.Close()
		<-serveDone
	}()

	// Under faults the agents need a redial path and a retry budget.
	// The defaults make healing a function of the fault plan alone:
	// unlimited redials, microsecond backoffs (wall time is noise
	// here — the logical clock is what gates a partition's heal), and
	// a short link wait so a flush into a dead partition fails fast
	// and spools instead of stalling the barrier.
	retry := cfg.Retry
	if cfg.Faults != nil && retry == (console.RetryPolicy{}) {
		retry = console.RetryPolicy{
			MaxDials:     -1,
			MaxOpRetries: 32,
			Backoff:      200 * time.Microsecond,
			BackoffMax:   2 * time.Millisecond,
			LinkWait:     5 * time.Millisecond,
			Seed:         cfg.Faults.Seed ^ 0xa5a5a5a5deadbeef,
		}
	}

	// Connect agents sequentially in user order. The console assigns
	// thresholds by first-seen host order, so connection order is part
	// of the deterministic contract — racing the dials here would make
	// partial-diversity group membership scheduler-dependent. Hosts
	// dead from the start are skipped entirely.
	agents := make([]*console.Agent, cfg.Users)
	defer func() {
		for _, a := range agents {
			if a != nil {
				_ = a.Close()
			}
		}
	}()
	for u := 0; u < cfg.Users; u++ {
		if deadFromStart[u] {
			continue
		}
		if fnet != nil {
			agents[u], err = console.Connect(console.AgentConfig{
				HostID:   uint32(u),
				Hostname: fmt.Sprintf("host-%d", u),
				Dial:     fnet.Dialer(u, "console"),
				Retry:    retry,
			})
		} else {
			var conn net.Conn
			if conn, err = network.Dial("console"); err != nil {
				return nil, err
			}
			agents[u], err = console.NewAgent(conn, uint32(u), fmt.Sprintf("host-%d", u))
		}
		if err != nil {
			return nil, fmt.Errorf("fleet: connecting host %d: %w", u, err)
		}
	}

	// Drive every agent through the shared run loop, replay
	// synchronized on the logical clock (one tick per flush).
	trainLo, trainHi := cfg.TrainWeek*bpw, (cfg.TrainWeek+1)*bpw
	testLo, testHi := cfg.TestWeek*bpw, (cfg.TestWeek+1)*bpw
	reports := make([]*AgentReport, cfg.Users)
	errs := make([]error, cfg.Users)
	var wg sync.WaitGroup
	for u := 0; u < cfg.Users; u++ {
		if agents[u] == nil {
			continue
		}
		wg.Add(1)
		go func(u int) {
			defer wg.Done()
			m := matrixOf(u)
			var overlayFn func(console.Thresholds) ([]float64, error)
			if cfg.Attack.active() {
				overlayFn = func(thr console.Thresholds) ([]float64, error) {
					var trainDist *stats.Empirical
					if cfg.Attack.Kind == AttackMimicry {
						var err error
						trainDist, err = m.Distribution(cfg.Attack.Feature, trainLo, trainHi)
						if err != nil {
							return nil, err
						}
					}
					return cfg.Attack.overlayFor(u, victims, bpw, storm,
						trainDist, thr.Values[cfg.Attack.Feature])
				}
			}
			reports[u], errs[u] = RunAgent(AgentRun{
				Agent:            agents[u],
				Matrix:           m,
				TrainLo:          trainLo,
				TrainHi:          trainHi,
				MonitorLo:        testLo,
				MonitorHi:        testHi,
				FlushEvery:       flushEvery,
				ThresholdTimeout: cfg.ThresholdTimeout,
				OverlayFn:        overlayFn,
				OverlayFeature:   cfg.Attack.featureOrTCP(),
				Clock:            clock,
				SpoolFlushes:     cfg.Faults != nil,
				LeaveOnError:     cfg.AllowDegraded,
				Logf:             cfg.Logf,
			})
		}(u)
	}
	wg.Wait()

	deg := degraded{survivors: participants}
	if cfg.AllowDegraded {
		// Degraded mode: a failing agent left the barrier instead of
		// cancelling it, so the rest finished. Classify each casualty
		// by what the fault plan says happened to it.
		for u, runErr := range errs {
			switch {
			case agents[u] == nil:
				// Dead from the start — already excluded from the
				// participant count, only the classification is added.
				_, byPartition, _ := cfg.Faults.PermanentLoss(u)
				deg.add(u, byPartition)
			case runErr == nil:
				continue
			case errors.Is(runErr, ErrClockCancelled):
				return nil, fmt.Errorf("fleet: host %d: %w", u, runErr)
			default:
				deg.survivors--
				_, byPartition, planned := cfg.Faults.PermanentLoss(u)
				deg.add(u, planned && byPartition)
				if cfg.Logf != nil {
					cfg.Logf("fleet: host %d lost: %v", u, runErr)
				}
			}
		}
		if deg.survivors <= 0 {
			return nil, fmt.Errorf("fleet: no host survived the run")
		}
	} else {
		// A single failing agent cancels the clock, so most agents
		// finish with ErrClockCancelled — report the root cause, not
		// the cascade.
		cancelled := -1
		for u, err := range errs {
			if err == nil {
				continue
			}
			if errors.Is(err, ErrClockCancelled) {
				if cancelled < 0 {
					cancelled = u
				}
				continue
			}
			return nil, fmt.Errorf("fleet: host %d: %w", u, err)
		}
		if cancelled >= 0 {
			return nil, fmt.Errorf("fleet: host %d: %w", cancelled, ErrClockCancelled)
		}
	}

	res, err := buildResult(cfg, srv, reports, storm, testLo, testHi, deg)
	if err != nil {
		return nil, err
	}
	res.SnapshotFallbacks = snapshotFallbacks
	return res, nil
}

// degraded accumulates the run's casualty accounting.
type degraded struct {
	survivors   int
	lost        []int
	partitioned []int
}

func (d *degraded) add(u int, byPartition bool) {
	if byPartition {
		d.partitioned = append(d.partitioned, u)
	} else {
		d.lost = append(d.lost, u)
	}
}

// sortedOrNil sorts s ascending, returning nil for an empty slice so
// Result comparisons treat "no casualties" one way only.
func sortedOrNil(s []int) []int {
	if len(s) == 0 {
		return nil
	}
	sort.Ints(s)
	return s
}

// featureOrTCP returns the attacked feature, or TCP for a nil plan
// (the value is unused without an overlay; it just must be valid).
func (p *AttackPlan) featureOrTCP() features.Feature {
	if p.active() {
		return p.Feature
	}
	return features.TCP
}

// buildResult assembles the deterministic Result from the console's
// state and the per-agent reports.
func buildResult(cfg Config, srv *console.Server, reports []*AgentReport, storm []float64, testLo, testHi int, deg degraded) (*Result, error) {
	res := &Result{
		Policy:       cfg.Policy.Name(),
		Users:        cfg.Users,
		TestBins:     testHi - testLo,
		WatchFeature: cfg.Watch,
		Epoch:        srv.Epoch(),
		Thresholds:   make([][features.NumFeatures]float64, cfg.Users),
		Groups:       make([]int, cfg.Users),
		AlertCounts:  make([]int, cfg.Users),
		Survivors:    deg.survivors,
		Lost:         sortedOrNil(deg.lost),
		Partitioned:  sortedOrNil(deg.partitioned),
	}
	for u, rep := range reports {
		if rep == nil {
			// Casualty: no thresholds ever confirmed on this host. The
			// console's tally still speaks for whatever it received
			// before the loss.
			res.Groups[u] = -1
			res.AlertCounts[u] = srv.AlertCount(uint32(u))
			res.TotalAlerts += res.AlertCounts[u]
			continue
		}
		res.Thresholds[u] = rep.Thresholds.Values
		res.Groups[u] = rep.Thresholds.Group
		res.AlertCounts[u] = srv.AlertCount(uint32(u))
		res.TotalAlerts += res.AlertCounts[u]
		if rep.Thresholds.Epoch < res.Epoch {
			res.Lagging = append(res.Lagging, u)
		}
	}

	// Rebuild the watch feature's alarm matrix from the console's
	// alert log: the console-side view of the fleet, deduplicated, so
	// neither arrival order nor repeated batches can perturb it.
	tally, err := collab.NewTally(cfg.Users, res.TestBins)
	if err != nil {
		return nil, err
	}
	for _, batch := range srv.Alerts() {
		if int(batch.HostID) >= cfg.Users {
			return nil, fmt.Errorf("fleet: alert from unknown host %d", batch.HostID)
		}
		for _, a := range batch.Alerts {
			if features.Feature(a.Feature) != cfg.Watch {
				continue
			}
			if a.Bin < testLo || a.Bin >= testHi {
				return nil, fmt.Errorf("fleet: host %d alerted outside the test week (window %d)", batch.HostID, a.Bin)
			}
			if err := tally.Mark(int(batch.HostID), a.Bin-testLo); err != nil {
				return nil, err
			}
		}
	}
	res.Alarms = tally.Alarms()

	// Positives exist only if some victim actually carried malicious
	// volume: a mimicry campaign whose per-host size clamps to zero on
	// every victim injected nothing, so no window is attacked.
	injected := false
	for _, rep := range reports {
		if rep != nil && rep.OverlayActive {
			injected = true
			break
		}
	}
	if cfg.Attack.active() && injected {
		res.AttackedWindows = cfg.Attack.AttackedWindows(res.TestBins, storm)
	} else {
		res.AttackedWindows = make([]bool, res.TestBins)
	}

	if cfg.Collab != nil {
		// Degraded-mode quorum: resolve the (possibly fractional)
		// quorum over the surviving population, so the fleet never
		// demands votes from the dead. On a full-strength run this is
		// exactly the configured absolute quorum.
		cc := *cfg.Collab
		cc.Quorum = cc.ResolveQuorum(deg.survivors)
		cc.QuorumFraction = 0
		res.EffectiveQuorum = cc.Quorum
		det, err := collab.New(cc)
		if err != nil {
			return nil, err
		}
		if res.FleetVotes, err = det.Votes(res.Alarms); err != nil {
			return nil, err
		}
		if res.FleetEvents, err = det.Events(res.Alarms); err != nil {
			return nil, err
		}
		if cfg.Attack.active() {
			conf, err := det.Evaluate(res.Alarms, res.AttackedWindows)
			if err != nil {
				return nil, err
			}
			res.FleetConfusion = &conf
		}
	}
	return res, nil
}
