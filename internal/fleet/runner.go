package fleet

import (
	"errors"
	"fmt"
	"io"
	"strconv"
	"strings"
	"time"

	"repro/internal/console"
	"repro/internal/core"
	"repro/internal/features"
)

// AgentRun drives one end-host agent through the full paper loop —
// upload the training window, receive thresholds, monitor the test
// window, batch alerts — over an already-connected *console.Agent.
// It is the run loop cmd/hidsd wraps over TCP and the fleet
// simulator wraps over the in-memory transport; keeping it shared is
// what makes the simulator's behavior the daemon's behavior.
type AgentRun struct {
	// Agent is the connected end-host agent (the caller dials).
	Agent *console.Agent
	// Matrix is the host's full feature matrix.
	Matrix *features.Matrix
	// TrainLo/TrainHi is the half-open training bin range uploaded to
	// the console.
	TrainLo, TrainHi int
	// MonitorLo/MonitorHi is the half-open monitored bin range.
	MonitorLo, MonitorHi int
	// FlushEvery batches alerts every N monitored windows (the
	// paper's periodic alert reports); <= 0 means one final batch.
	FlushEvery int
	// Epoch is the configuration epoch whose thresholds to wait for.
	Epoch int
	// ThresholdTimeout bounds the wait for thresholds (zero: 5m).
	ThresholdTimeout time.Duration
	// OverlayFn, when set, is called once thresholds have arrived and
	// returns the additive attack overlay for the monitored range
	// (aligned with it, nil for no attack) on OverlayFeature. It runs
	// post-threshold so mimicry attackers can use the pushed value.
	OverlayFn func(thr console.Thresholds) ([]float64, error)
	// OverlayFeature is the feature the overlay adds to.
	OverlayFeature features.Feature
	// Clock, when set, synchronizes replay with the rest of a fleet:
	// one Step per flush interval. Nil runs free (the daemon case).
	Clock *Clock
	// SpoolFlushes tolerates transient flush failures mid-run: the
	// alerts stay spooled in the agent (sequenced, so the eventual
	// re-flush cannot double-count) and the run keeps stepping — which
	// is what lets a partitioned agent reach the tick where its
	// partition heals. The final flush must still succeed. Permanent
	// failures (closed or dead agent) always abort.
	SpoolFlushes bool
	// LeaveOnError makes a failing agent Leave the clock's barrier
	// instead of cancelling it, so a degraded fleet finishes over its
	// survivors. Without it (the default), any agent error aborts the
	// whole fleet.
	LeaveOnError bool
	// Logf receives progress lines (default silent).
	Logf func(format string, args ...any)
}

// AgentReport summarizes one agent run.
type AgentReport struct {
	// Thresholds is the configuration the console pushed.
	Thresholds console.Thresholds
	// AlertsSent counts the alerts flushed to the console.
	AlertsSent int
	// Windows counts the monitored windows.
	Windows int
	// OverlayActive reports whether the attack overlay injected any
	// positive volume on this host. A mimicry attacker whose size
	// clamps to zero (no volume evades the threshold) is inactive.
	OverlayActive bool
}

// RunAgent executes the run loop. On any error with a Clock attached,
// the clock is cancelled so sibling agents do not deadlock on a
// barrier this agent will never reach.
func RunAgent(r AgentRun) (rep *AgentReport, err error) {
	if r.Clock != nil {
		defer func() {
			if err != nil {
				if r.LeaveOnError && err != ErrClockCancelled {
					r.Clock.Leave()
				} else {
					r.Clock.Cancel()
				}
			}
		}()
	}
	logf := r.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}
	if r.Agent == nil || r.Matrix == nil {
		return nil, fmt.Errorf("fleet: AgentRun needs Agent and Matrix")
	}
	bins := r.Matrix.Bins()
	if r.TrainLo < 0 || r.TrainHi > bins || r.TrainLo >= r.TrainHi {
		return nil, fmt.Errorf("fleet: train range [%d, %d) outside [0, %d)", r.TrainLo, r.TrainHi, bins)
	}
	if r.MonitorLo < 0 || r.MonitorHi > bins || r.MonitorLo > r.MonitorHi {
		return nil, fmt.Errorf("fleet: monitor range [%d, %d) outside [0, %d)", r.MonitorLo, r.MonitorHi, bins)
	}
	timeout := r.ThresholdTimeout
	if timeout == 0 {
		timeout = 5 * time.Minute
	}

	if err := r.Agent.UploadMatrix(r.Matrix, r.TrainLo, r.TrainHi); err != nil {
		return nil, fmt.Errorf("fleet: upload: %w", err)
	}
	logf("fleet: training distributions uploaded; waiting for thresholds")
	thr, err := r.waitThresholds(timeout)
	if err != nil {
		return nil, err
	}
	logf("fleet: thresholds received (policy %s, group %d)", thr.Policy, thr.Group)

	var overlay []float64
	if r.OverlayFn != nil {
		if overlay, err = r.OverlayFn(thr); err != nil {
			return nil, fmt.Errorf("fleet: building attack overlay: %w", err)
		}
		if overlay != nil && len(overlay) != r.MonitorHi-r.MonitorLo {
			return nil, fmt.Errorf("fleet: overlay covers %d windows, monitor range has %d",
				len(overlay), r.MonitorHi-r.MonitorLo)
		}
	}

	rep = &AgentReport{Thresholds: thr, Windows: r.MonitorHi - r.MonitorLo}
	for _, v := range overlay {
		if v > 0 {
			rep.OverlayActive = true
			break
		}
	}
	for b := r.MonitorLo; b < r.MonitorHi; b++ {
		vec := r.Matrix.Rows[b]
		if overlay != nil {
			vec[r.OverlayFeature] += overlay[b-r.MonitorLo]
		}
		if err := r.Agent.ObserveVector(b, vec); err != nil {
			return nil, fmt.Errorf("fleet: observe window %d: %w", b, err)
		}
		if r.FlushEvery > 0 && (b-r.MonitorLo+1)%r.FlushEvery == 0 {
			rep.AlertsSent += r.Agent.PendingAlerts()
			if ferr := r.Agent.Flush(); ferr != nil {
				if !r.SpoolFlushes ||
					errors.Is(ferr, console.ErrAgentClosed) || errors.Is(ferr, console.ErrAgentDead) {
					return nil, fmt.Errorf("fleet: flush at window %d: %w", b, ferr)
				}
				logf("fleet: flush at window %d spooled (%d batches): %v",
					b, r.Agent.SpooledBatches(), ferr)
			}
			if r.Clock != nil {
				if err := r.Clock.Step(); err != nil {
					return nil, err
				}
			}
		}
	}
	rep.AlertsSent += r.Agent.PendingAlerts()
	if err := r.Agent.Flush(); err != nil {
		return nil, fmt.Errorf("fleet: final flush: %w", err)
	}
	return rep, nil
}

// waitThresholds blocks until the console pushes this epoch's
// thresholds. Without a Clock it is a plain bounded wait. With one,
// it waits in short slices and gives up as soon as the clock is
// cancelled: when a sibling agent fails before configuration (so
// thresholds will never come), the whole fleet aborts promptly
// instead of sitting out the full timeout.
func (r *AgentRun) waitThresholds(timeout time.Duration) (console.Thresholds, error) {
	if r.Clock == nil {
		thr, err := r.Agent.WaitThresholdsEpoch(r.Epoch, timeout)
		if err != nil {
			return thr, fmt.Errorf("fleet: thresholds: %w", err)
		}
		return thr, nil
	}
	deadline := time.Now().Add(timeout)
	for {
		slice := 200 * time.Millisecond
		if remain := time.Until(deadline); remain < slice {
			slice = remain
		}
		if slice <= 0 {
			return console.Thresholds{}, fmt.Errorf("fleet: thresholds: %w", console.ErrThresholdsTimeout)
		}
		thr, err := r.Agent.WaitThresholdsEpoch(r.Epoch, slice)
		switch {
		case err == nil:
			return thr, nil
		case r.Clock.Cancelled():
			return thr, ErrClockCancelled
		case !errors.Is(err, console.ErrThresholdsTimeout):
			return thr, fmt.Errorf("fleet: thresholds: %w", err)
		}
	}
}

// ParseGrouping resolves a grouping policy by its CLI name: "homog",
// "full", or "partialN" (e.g. partial8).
func ParseGrouping(name string) (core.Grouping, error) {
	switch {
	case name == "homog":
		return core.Homogeneous{}, nil
	case name == "full":
		return core.FullDiversity{}, nil
	case strings.HasPrefix(name, "partial"):
		n, err := strconv.Atoi(strings.TrimPrefix(name, "partial"))
		if err != nil || n < 2 {
			return nil, fmt.Errorf("fleet: bad partial-diversity group count in %q", name)
		}
		return core.PartialDiversity{NumGroups: n}, nil
	default:
		return nil, fmt.Errorf("fleet: unknown grouping policy %q (want homog, full, partialN)", name)
	}
}

// ParseHeuristic resolves a threshold heuristic by its CLI name —
// "p99", "p999", "utilityW" (e.g. utility0.4), "meanKsigma" (e.g.
// mean3sigma) — and returns the default attack magnitudes
// objective-optimizing heuristics need (nil for the others).
func ParseHeuristic(name string) (core.Heuristic, []float64, error) {
	switch {
	case name == "p99":
		return core.Percentile{Q: 0.99}, nil, nil
	case name == "p999":
		return core.Percentile{Q: 0.999}, nil, nil
	case strings.HasPrefix(name, "utility"):
		w, err := strconv.ParseFloat(strings.TrimPrefix(name, "utility"), 64)
		if err != nil || w < 0 || w > 1 {
			return nil, nil, fmt.Errorf("fleet: bad utility weight in %q", name)
		}
		return core.UtilityOptimal{W: w}, []float64{10, 50, 100, 500, 1000}, nil
	case strings.HasPrefix(name, "mean") && strings.HasSuffix(name, "sigma"):
		k, err := strconv.ParseFloat(strings.TrimSuffix(strings.TrimPrefix(name, "mean"), "sigma"), 64)
		if err != nil || k <= 0 {
			return nil, nil, fmt.Errorf("fleet: bad sigma multiple in %q", name)
		}
		return core.MeanSigma{K: k}, nil, nil
	default:
		return nil, nil, fmt.Errorf("fleet: unknown heuristic %q (want p99, p999, utilityW, meanKsigma)", name)
	}
}

// ConsoleSpec is the CLI-level description of a console server, the
// part of cmd/consoled that is policy rather than transport.
type ConsoleSpec struct {
	// Grouping and Heuristic are CLI names (see ParseGrouping,
	// ParseHeuristic).
	Grouping, Heuristic string
	// Hosts is the number of hosts to wait for before configuring.
	Hosts int
	// WriteTimeout and IdleTimeout pass through to the server config:
	// a write deadline per outbound frame, and a bound on how long a
	// connection may sit silent before being reaped.
	WriteTimeout time.Duration
	IdleTimeout  time.Duration
	// Logf receives operational log lines.
	Logf func(format string, args ...any)
}

// Build parses the spec and constructs the console server.
func (s ConsoleSpec) Build() (*console.Server, error) {
	g, err := ParseGrouping(s.Grouping)
	if err != nil {
		return nil, err
	}
	h, mags, err := ParseHeuristic(s.Heuristic)
	if err != nil {
		return nil, err
	}
	return console.NewServer(console.ServerConfig{
		Policy:           core.Policy{Heuristic: h, Grouping: g},
		ExpectedHosts:    s.Hosts,
		AttackMagnitudes: mags,
		WriteTimeout:     s.WriteTimeout,
		IdleTimeout:      s.IdleTimeout,
		Logf:             s.Logf,
	})
}

// WriteConsoleSummary renders the end-of-run report cmd/consoled
// prints on shutdown: per-host alert counts, the group structure, and
// the liveness ledger — reconnect churn per host, plus the hosts the
// console would exclude from quorum after grace (zero grace skips the
// dead-host line).
func WriteConsoleSummary(w io.Writer, srv *console.Server, grace time.Duration) {
	fmt.Fprintf(w, "\n=== console summary ===\n")
	fmt.Fprintf(w, "hosts seen: %d\n", len(srv.Hosts()))
	fmt.Fprintf(w, "total alerts: %d\n", srv.TotalAlerts())
	liveness := srv.Liveness()
	for _, id := range srv.Hosts() {
		line := fmt.Sprintf("  host %3d: %d alerts", id, srv.AlertCount(id))
		if lv, ok := liveness[id]; ok {
			line += fmt.Sprintf(" (connects %d, disconnects %d)", lv.Connects, lv.Disconnects)
		}
		fmt.Fprintf(w, "%s\n", line)
	}
	if asn := srv.Assignment(features.TCP); asn != nil {
		fmt.Fprintf(w, "TCP groups: %d\n", len(asn.Groups))
	}
	if grace > 0 {
		if dead := srv.DeadHosts(grace); len(dead) > 0 {
			fmt.Fprintf(w, "dead after %v grace: %v\n", grace, dead)
		}
	}
}
