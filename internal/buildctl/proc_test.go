package buildctl

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"os/exec"
	"strconv"
	"testing"
	"time"

	"repro/internal/analysis"
	"repro/internal/snapshot"
)

// TestBuildctlWorkerHelper is not a test: it is the subprocess worker
// body the ExecWorker tests re-exec, speaking the tracegen
// -shard-range protocol — retryable/fatal exit codes and a one-line
// JSON RangeResult on stdout. Without the env contract it skips.
func TestBuildctlWorkerHelper(t *testing.T) {
	dir := os.Getenv("REPRO_BUILDCTL_HELPER_DIR")
	if dir == "" {
		t.Skip("helper mode: only runs re-exec'd by the ExecWorker tests")
	}
	if os.Getenv("REPRO_BUILDCTL_HELPER_FATAL") != "" {
		fmt.Fprintln(os.Stderr, "injected fatal config error")
		os.Exit(ExitFatal)
	}
	attempt, _ := strconv.Atoi(os.Getenv("REPRO_BUILDCTL_HELPER_ATTEMPT"))
	failBelow, _ := strconv.Atoi(os.Getenv("REPRO_BUILDCTL_HELPER_FAIL_BELOW"))
	if attempt < failBelow {
		fmt.Fprintln(os.Stderr, "injected retryable worker crash")
		os.Exit(ExitRetryable)
	}
	users, err := strconv.Atoi(os.Getenv("REPRO_BUILDCTL_HELPER_USERS"))
	if err != nil {
		fmt.Fprintln(os.Stderr, "bad REPRO_BUILDCTL_HELPER_USERS")
		os.Exit(ExitFatal)
	}
	var lo, hi int
	if n, err := fmt.Sscanf(os.Getenv("REPRO_BUILDCTL_HELPER_RANGE"), "%d:%d", &lo, &hi); n != 2 || err != nil {
		fmt.Fprintln(os.Stderr, "bad REPRO_BUILDCTL_HELPER_RANGE")
		os.Exit(ExitFatal)
	}
	pop, key := testPop(t, users)
	start := time.Now()
	if err := analysis.BuildShardRange(context.Background(), dir, key, lo, hi, 0, genFor(pop)); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(ExitRetryable)
	}
	info, err := snapshot.VerifyPart(dir, key, lo, hi)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(ExitRetryable)
	}
	out, err := json.Marshal(RangeResult{
		Lo: lo, Hi: hi, Bytes: info.Bytes,
		CRC:       fmt.Sprintf("%08x", info.CRC),
		ElapsedMS: time.Since(start).Milliseconds(),
	})
	if err != nil {
		t.Fatal(err)
	}
	fmt.Println(string(out))
	if os.Getenv("REPRO_BUILDCTL_HELPER_NOISE") != "" {
		// A worker whose logger writes structured JSON to stdout after
		// the result line — the parsing hazard the garbage test pins.
		fmt.Printf("{\"level\":\"info\",\"msg\":\"part sealed\",\"lo\":%d,\"hi\":%d}\n", lo, hi)
		fmt.Println("worker: shutting down")
	}
}

func helperWorker(t *testing.T, dir string, users int, extraEnv ...string) *ExecWorker {
	t.Helper()
	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	return &ExecWorker{Command: func(ctx context.Context, tk Task) *exec.Cmd {
		cmd := exec.CommandContext(ctx, exe, "-test.run", "^TestBuildctlWorkerHelper$", "-test.count=1")
		cmd.Env = append(os.Environ(),
			"REPRO_BUILDCTL_HELPER_DIR="+dir,
			"REPRO_BUILDCTL_HELPER_USERS="+strconv.Itoa(users),
			fmt.Sprintf("REPRO_BUILDCTL_HELPER_RANGE=%d:%d", tk.Lo, tk.Hi),
			"REPRO_BUILDCTL_HELPER_ATTEMPT="+strconv.Itoa(tk.Attempt),
		)
		cmd.Env = append(cmd.Env, extraEnv...)
		return cmd
	}}
}

// TestCoordinatorExecWorker drives genuinely separate worker
// processes through the coordinator: every range's first attempt
// exits ExitRetryable (a worker crash as the OS sees it), the retries
// rebuild, and the merged store is byte-identical to the clean
// single-process build.
func TestCoordinatorExecWorker(t *testing.T) {
	const users = 24
	pop, key := testPop(t, users)
	want, wantMan := wantBytes(t, pop, key)
	dir := t.TempDir()
	st, err := Build(context.Background(), Options{
		Dir: dir, Key: key,
		Worker:   helperWorker(t, dir, users, "REPRO_BUILDCTL_HELPER_FAIL_BELOW=1"),
		Parallel: 2, Ranges: 2,
		MaxAttempts: 4, Backoff: 5 * time.Millisecond,
	})
	if err != nil {
		t.Fatalf("cross-process build: %v (stats %+v)", err, st)
	}
	if st.Failures < 2 || st.Attempts < 4 {
		t.Fatalf("expected every range's first attempt to fail: %+v", st)
	}
	assertSealedIdentical(t, dir, key, want, wantMan)
}

// TestCoordinatorExecWorkerNoisyStdout re-execs workers that append
// structured JSON log lines after the result line. Before the parsing
// fix, the last log line decoded as a zero RangeResult and failed the
// dispatched-range check with a Fatal abort; now the build must
// complete cleanly.
func TestCoordinatorExecWorkerNoisyStdout(t *testing.T) {
	const users = 24
	pop, key := testPop(t, users)
	want, wantMan := wantBytes(t, pop, key)
	dir := t.TempDir()
	st, err := Build(context.Background(), Options{
		Dir: dir, Key: key,
		Worker:   helperWorker(t, dir, users, "REPRO_BUILDCTL_HELPER_NOISE=1"),
		Parallel: 2, Ranges: 2,
	})
	if err != nil {
		t.Fatalf("build with noisy worker stdout: %v (stats %+v)", err, st)
	}
	if st.Failures != 0 {
		t.Fatalf("noisy stdout burned %d failures (stats %+v)", st.Failures, st)
	}
	assertSealedIdentical(t, dir, key, want, wantMan)
}

// TestCoordinatorExecWorkerFatal pins the exit-code split: a worker
// exiting ExitFatal aborts the build instead of retrying.
func TestCoordinatorExecWorkerFatal(t *testing.T) {
	const users = 6
	_, key := testPop(t, users)
	dir := t.TempDir()
	_, err := Build(context.Background(), Options{
		Dir: dir, Key: key,
		Worker:   helperWorker(t, dir, users, "REPRO_BUILDCTL_HELPER_FATAL=1"),
		Parallel: 1, Ranges: 1,
	})
	if err == nil || !IsFatal(err) {
		t.Fatalf("err = %v, want fatal abort on ExitFatal", err)
	}
}
