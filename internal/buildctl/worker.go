package buildctl

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"os/exec"

	"repro/internal/analysis"
	"repro/internal/features"
	"repro/internal/snapshot"
)

// Task is one dispatched build attempt: seal users [Lo, Hi) of the
// coordinator's key as a part file. Attempt counts prior attempts of
// this exact range — hedged duplicates included — so fault injectors
// and subprocess workers can vary behavior per attempt.
type Task struct {
	Lo, Hi  int
	Attempt int
}

func (t Task) String() string {
	return fmt.Sprintf("[%d, %d) attempt %d", t.Lo, t.Hi, t.Attempt)
}

// Worker executes build attempts. The sealed part file on disk is the
// real output — a nil error only means the worker believes it sealed
// one; the coordinator trusts nothing it has not run through
// snapshot.VerifyPart. Build must honor ctx cancellation (a hedge win
// or an attempt deadline cancels stragglers) and must be safe for
// concurrent calls: the coordinator runs up to Options.Parallel
// attempts at once, and hedged duplicates of one range can overlap.
// Overlapping seals of the same range are safe because every build
// strategy produces byte-identical parts sealed by atomic rename.
type Worker interface {
	Build(ctx context.Context, t Task) error
}

// WorkerFunc adapts a function to the Worker interface.
type WorkerFunc func(ctx context.Context, t Task) error

// Build implements Worker.
func (f WorkerFunc) Build(ctx context.Context, t Task) error { return f(ctx, t) }

// fatalError marks a failure retrying cannot fix; the coordinator
// aborts the build instead of burning attempts on it.
type fatalError struct{ err error }

func (e fatalError) Error() string { return e.err.Error() }
func (e fatalError) Unwrap() error { return e.err }

// Fatal wraps err so the coordinator treats it as non-retryable: a bad
// key, an invalid range, a worker binary that cannot start. nil stays
// nil.
func Fatal(err error) error {
	if err == nil {
		return nil
	}
	return fatalError{err: err}
}

// IsFatal reports whether err (or anything it wraps) was marked with
// Fatal.
func IsFatal(err error) bool {
	var fe fatalError
	return errors.As(err, &fe)
}

// LocalWorker builds parts in-process via analysis.BuildShardRange —
// the Worker the single-binary coordinator path uses.
type LocalWorker struct {
	Dir        string
	Key        snapshot.Key
	ShardUsers int
	Generate   func(u int, rows [][features.NumFeatures]float64)
}

// Build implements Worker.
func (w *LocalWorker) Build(ctx context.Context, t Task) error {
	return analysis.BuildShardRange(ctx, w.Dir, w.Key, t.Lo, t.Hi, w.ShardUsers, w.Generate)
}

// Exit codes of the subprocess worker protocol (tracegen -shard-range
// speaks it). ExecWorker maps ExitRetryable to an ordinary failed
// attempt — backoff and retry — and any other non-zero exit to a
// Fatal error that aborts the build: a worker that cannot parse its
// own range will not parse it better the fourth time.
const (
	ExitRetryable = 3 // transient failure: retrying the range may succeed
	ExitFatal     = 4 // permanent failure: bad key, range, or config
)

// RangeResult is the machine-readable single line a subprocess worker
// prints on stdout after sealing its part: the range it sealed, the
// sealed payload size and CRC-32C (as VerifyPart reports them), and
// the build wall-clock. Coordinators use it for accounting and as a
// cheap sanity check that the worker built what it was asked to; the
// authoritative check stays VerifyPart on the file itself.
type RangeResult struct {
	Lo        int    `json:"lo"`
	Hi        int    `json:"hi"`
	Bytes     int64  `json:"bytes"`
	CRC       string `json:"crc"` // %08x CRC-32C of the part payload
	ElapsedMS int64  `json:"elapsed_ms"`
}

// ParseRangeResult decodes the last line of a worker's stdout that
// unmarshals to a valid RangeResult, tolerating logging noise around
// it — a re-exec'd test binary appends PASS, and a worker that logs
// JSON lines ({"level":...}) after the result must not have a log
// line win. Unknown fields disqualify a line (a structured log line
// would otherwise decode to a zero result), as does an empty range.
func ParseRangeResult(out []byte) (RangeResult, error) {
	lines := bytes.Split(bytes.TrimSpace(out), []byte("\n"))
	var firstErr error
	for i := len(lines) - 1; i >= 0; i-- {
		line := bytes.TrimSpace(lines[i])
		if len(line) == 0 || line[0] != '{' {
			continue
		}
		var res RangeResult
		dec := json.NewDecoder(bytes.NewReader(line))
		dec.DisallowUnknownFields()
		err := dec.Decode(&res)
		if err == nil && res.Hi <= res.Lo {
			err = fmt.Errorf("empty range [%d, %d)", res.Lo, res.Hi)
		}
		if err != nil {
			if firstErr == nil {
				firstErr = fmt.Errorf("buildctl: worker result line %q: %w", line, err)
			}
			continue // a log line that happens to be JSON; keep scanning up
		}
		return res, nil
	}
	if firstErr != nil {
		return RangeResult{}, firstErr
	}
	return RangeResult{}, errors.New("buildctl: worker printed no result line")
}

// ExecWorker dispatches attempts as subprocesses — the re-exec'd
// `tracegen -shard-range` flow, where a worker crash is a process
// exit rather than a panic in the coordinator's address space.
type ExecWorker struct {
	// Command constructs the subprocess for one attempt. It must use
	// exec.CommandContext(ctx, ...) so a coordinator deadline or a
	// hedge win kills the straggler instead of orphaning it.
	Command func(ctx context.Context, t Task) *exec.Cmd
}

// Build implements Worker: run the subprocess, classify its exit code
// (ExitRetryable → retryable error, anything else non-zero → Fatal),
// and check the reported RangeResult names the dispatched range.
func (w *ExecWorker) Build(ctx context.Context, t Task) error {
	cmd := w.Command(ctx, t)
	var stdout, stderr bytes.Buffer
	cmd.Stdout = &stdout
	cmd.Stderr = &stderr
	if err := cmd.Run(); err != nil {
		if ctx.Err() != nil {
			return ctx.Err() // killed by deadline or hedge win, not a worker fault
		}
		var xe *exec.ExitError
		if errors.As(err, &xe) && xe.ExitCode() == ExitRetryable {
			return fmt.Errorf("buildctl: worker %v: retryable exit: %s", t, lastLine(stderr.Bytes()))
		}
		return Fatal(fmt.Errorf("buildctl: worker %v: %w: %s", t, err, lastLine(stderr.Bytes())))
	}
	res, err := ParseRangeResult(stdout.Bytes())
	if err != nil {
		return err // garbled stdout from a successful exit: retry
	}
	if res.Lo != t.Lo || res.Hi != t.Hi {
		return Fatal(fmt.Errorf("buildctl: worker reported range [%d, %d), dispatched %v", res.Lo, res.Hi, t))
	}
	return nil
}

// lastLine extracts the final non-empty line of a worker's stderr for
// error messages, keeping multi-KB panic dumps out of the log line.
func lastLine(out []byte) []byte {
	lines := bytes.Split(bytes.TrimSpace(out), []byte("\n"))
	for i := len(lines) - 1; i >= 0; i-- {
		if line := bytes.TrimSpace(lines[i]); len(line) > 0 {
			return line
		}
	}
	return []byte("(no output)")
}
