package buildctl

import (
	"time"

	"repro/internal/xrand"
)

// Retry is the backoff policy the coordinator applies between failed
// attempts, exported so transports (remote workers, reconnect loops)
// share one delay schedule instead of inventing their own: Base
// doubles per consecutive failure up to Max, then seeded jitter in
// [0.5, 1.0)× spreads synchronized failures out.
type Retry struct {
	Base time.Duration
	Max  time.Duration
}

// Delay returns the wait before retrying after `failures` consecutive
// failures (>= 1), drawing jitter from rng. A zero policy gets the
// coordinator defaults (20ms base, 2s cap).
func (r Retry) Delay(failures int, rng *xrand.Source) time.Duration {
	if r.Base <= 0 {
		r.Base = 20 * time.Millisecond
	}
	if r.Max <= 0 {
		r.Max = 2 * time.Second
	}
	d := r.Base
	for i := 1; i < failures && d < r.Max; i++ {
		d *= 2
	}
	if d > r.Max {
		d = r.Max
	}
	return time.Duration((0.5 + 0.5*rng.Float64()) * float64(d))
}
