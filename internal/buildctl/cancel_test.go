package buildctl

import (
	"context"
	"runtime"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// TestHedgeLoserCancelledPromptly is the goroutine-leak regression
// test for first-valid-wins: every range's first attempt hangs on its
// context with a 30s deadline, the hedge seals the part, and the
// losing attempt must observe cancellation immediately — not at its
// own deadline — so the build finishes in hedge time and no attempt
// goroutine outlives the Build call.
func TestHedgeLoserCancelledPromptly(t *testing.T) {
	pop, key := testPop(t, 36)
	dir := t.TempDir()
	var hung, cancelled atomic.Int64
	local := &LocalWorker{Dir: dir, Key: key, Generate: genFor(pop)}
	worker := WorkerFunc(func(ctx context.Context, tk Task) error {
		if tk.Attempt == 0 {
			hung.Add(1)
			<-ctx.Done()
			cancelled.Add(1)
			return ctx.Err()
		}
		return local.Build(ctx, tk)
	})
	base := runtime.NumGoroutine()
	const deadline = 30 * time.Second
	start := time.Now()
	st, err := Build(context.Background(), Options{
		Dir: dir, Key: key, Worker: worker,
		Parallel: 4, Ranges: 2,
		AttemptTimeout: deadline,
		HedgeAfter:     30 * time.Millisecond, HedgeFactor: 3,
	})
	if err != nil {
		t.Fatalf("build: %v (stats %+v)", err, st)
	}
	if elapsed := time.Since(start); elapsed >= deadline/3 {
		t.Fatalf("build took %v — hung losers were waited out, not cancelled (deadline %v)", elapsed, deadline)
	}
	if st.Hedges < 2 {
		t.Fatalf("hedges = %d, want one per range (stats %+v)", st.Hedges, st)
	}
	// Build drains in-flight attempts before returning, so by now every
	// hung attempt must have seen ctx.Done.
	if h, c := hung.Load(), cancelled.Load(); h == 0 || c != h {
		t.Fatalf("hung=%d cancelled=%d — losing attempts leaked past Build", h, c)
	}
	// And no attempt goroutine may outlive the call. Allow a short grace
	// for runtime bookkeeping (timer/GC goroutines settling).
	dl := time.Now().Add(3 * time.Second)
	for {
		if n := runtime.NumGoroutine(); n <= base+3 {
			break
		}
		if time.Now().After(dl) {
			buf := make([]byte, 1<<20)
			t.Fatalf("goroutines leaked: %d before, %d after\n%s",
				base, runtime.NumGoroutine(), buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestParseRangeResultGarbage pins the stdout-parsing contract: the
// result is the last line that unmarshals to a valid RangeResult, and
// trailing noise — PASS lines, plain log text, structured JSON log
// lines, truncated JSON — must not shadow it or decode as a bogus
// zero result.
func TestParseRangeResultGarbage(t *testing.T) {
	want := RangeResult{Lo: 3, Hi: 9, Bytes: 1234, CRC: "0badf00d", ElapsedMS: 7}
	const res = `{"lo":3,"hi":9,"bytes":1234,"crc":"0badf00d","elapsed_ms":7}`
	cases := map[string]string{
		"bare":              res,
		"pass-suffix":       res + "\nPASS\nok  \trepro/internal/buildctl\t0.01s\n",
		"log-prefix":        "starting build\nsealed part\n" + res,
		"json-log-suffix":   res + "\n{\"level\":\"info\",\"msg\":\"part sealed\",\"host\":\"w1\"}\n",
		"json-log-both":     "{\"level\":\"debug\",\"msg\":\"dialing\"}\n" + res + "\n{\"level\":\"info\",\"msg\":\"done\"}\nPASS",
		"truncated-suffix":  res + "\n{\"lo\":3,\"hi\":",
		"empty-range-noise": res + "\n{\"lo\":0,\"hi\":0,\"bytes\":0,\"crc\":\"\",\"elapsed_ms\":0}",
		"crlf":              res + "\r\n{\"level\":\"info\",\"msg\":\"done\"}\r\n",
	}
	for name, out := range cases {
		t.Run(name, func(t *testing.T) {
			got, err := ParseRangeResult([]byte(out))
			if err != nil {
				t.Fatalf("ParseRangeResult: %v", err)
			}
			if got != want {
				t.Fatalf("got %+v, want %+v", got, want)
			}
		})
	}
	t.Run("no-result", func(t *testing.T) {
		for _, out := range []string{"", "PASS", "{\"level\":\"info\"}\n{\"level\":\"warn\"}"} {
			if _, err := ParseRangeResult([]byte(out)); err == nil {
				t.Fatalf("ParseRangeResult(%q) = nil error, want failure", out)
			}
		}
	})
	t.Run("error-names-line", func(t *testing.T) {
		_, err := ParseRangeResult([]byte("{\"level\":\"info\",\"msg\":\"done\"}"))
		if err == nil || !strings.Contains(err.Error(), "level") {
			t.Fatalf("err = %v, want it to quote the rejected line", err)
		}
	})
}
