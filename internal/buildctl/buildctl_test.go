package buildctl

import (
	"bytes"
	"context"
	"errors"
	"os"
	"testing"
	"time"

	"repro/internal/analysis"
	"repro/internal/features"
	"repro/internal/snapshot"
	"repro/internal/trace"
)

// testPop is the convergence suite's shared population: small enough
// that a part builds in milliseconds, large enough to cut into ranges
// worth hedging and re-cutting.
func testPop(t *testing.T, users int) (*trace.Population, snapshot.Key) {
	t.Helper()
	pop := trace.MustPopulation(trace.Config{Users: users, Weeks: 1, Seed: 7, BinWidth: 6 * time.Hour})
	key, err := snapshot.KeyFor(pop.Cfg)
	if err != nil {
		t.Fatal(err)
	}
	return pop, key
}

func genFor(pop *trace.Population) func(u int, rows [][features.NumFeatures]float64) {
	return func(u int, rows [][features.NumFeatures]float64) {
		pop.Users[u].FillSeries(rows)
	}
}

// wantBytes builds the ground truth every faulty run must reproduce:
// a clean single-process Save's snapshot and manifest bytes.
func wantBytes(t *testing.T, pop *trace.Population, key snapshot.Key) (snap, man []byte) {
	t.Helper()
	dir := t.TempDir()
	mem := analysis.NewGenerated(key.Users, func(u int) *features.Matrix { return pop.Users[u].Series() })
	if _, err := mem.Save(dir, key); err != nil {
		t.Fatal(err)
	}
	snap, err := os.ReadFile(key.Path(dir))
	if err != nil {
		t.Fatal(err)
	}
	man, err = os.ReadFile(key.ManifestPath(dir))
	if err != nil {
		t.Fatal(err)
	}
	return snap, man
}

// assertSealedIdentical is the convergence pin: the coordinator's
// merged snapshot AND manifest must be byte-identical to the clean
// single-process build, whatever faults the run survived.
func assertSealedIdentical(t *testing.T, dir string, key snapshot.Key, want, wantMan []byte) {
	t.Helper()
	got, err := os.ReadFile(key.Path(dir))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("coordinated snapshot bytes differ from single-process Save")
	}
	gotMan, err := os.ReadFile(key.ManifestPath(dir))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(gotMan, wantMan) {
		t.Fatal("coordinated manifest bytes differ from single-process Save")
	}
}

func TestCoordinatorClean(t *testing.T) {
	pop, key := testPop(t, 36)
	want, wantMan := wantBytes(t, pop, key)
	dir := t.TempDir()
	opts := Options{
		Dir: dir, Key: key,
		Worker:   &LocalWorker{Dir: dir, Key: key, Generate: genFor(pop)},
		Parallel: 4, Weights: pop.CostWeights(),
	}
	st, err := Build(context.Background(), opts)
	if err != nil {
		t.Fatal(err)
	}
	if st.Warm || st.MergedParts < 2 || st.SealedParts != st.MergedParts || st.Failures != 0 {
		t.Fatalf("clean build stats off: %+v", st)
	}
	assertSealedIdentical(t, dir, key, want, wantMan)

	// Second run over the sealed store is a warm no-op.
	st, err = Build(context.Background(), opts)
	if err != nil || !st.Warm || st.Attempts != 0 {
		t.Fatalf("warm rerun: err=%v stats=%+v", err, st)
	}
}

// TestCoordinatorFaultMatrix is the ISSUE's convergence suite: under
// every seeded fault plan the build must complete and seal bytes
// identical to the clean single-process Save.
func TestCoordinatorFaultMatrix(t *testing.T) {
	pop, key := testPop(t, 36)
	want, wantMan := wantBytes(t, pop, key)
	plans := map[string]FaultPlan{
		"crash30":   {Seed: 1, Crash: 0.3, Limit: 2},
		"slow-all":  {Seed: 2, Slow: 1.0, SlowDelay: 2 * time.Millisecond},
		"corrupt30": {Seed: 3, Corrupt: 0.3, Limit: 2},
		"chaos": {
			Seed: 4, Crash: 0.2, Hang: 0.15, Slow: 0.2, Corrupt: 0.2,
			SlowDelay: 2 * time.Millisecond, Limit: 2,
		},
	}
	for name, plan := range plans {
		t.Run(name, func(t *testing.T) {
			dir := t.TempDir()
			st, err := Build(context.Background(), Options{
				Dir: dir, Key: key,
				Worker: &FaultyWorker{
					Inner: &LocalWorker{Dir: dir, Key: key, Generate: genFor(pop)},
					Plan:  plan, Dir: dir, Key: key,
				},
				Parallel: 4, Weights: pop.CostWeights(),
				MaxAttempts: 6, Backoff: 2 * time.Millisecond,
				AttemptTimeout: 10 * time.Second, HedgeAfter: 100 * time.Millisecond,
				Seed: plan.Seed,
			})
			if err != nil {
				t.Fatalf("build under %s plan: %v (stats %+v)", name, err, st)
			}
			assertSealedIdentical(t, dir, key, want, wantMan)
		})
	}
}

// TestCoordinatorResume pins the resume scan: verified parts from a
// previous run are adopted without rebuilding, a corrupt one is
// quarantined to *.bad and its range rebuilt, and the sealed result
// is still byte-identical.
func TestCoordinatorResume(t *testing.T) {
	pop, key := testPop(t, 36)
	want, wantMan := wantBytes(t, pop, key)
	dir := t.TempDir()
	for _, r := range [][2]int{{0, 12}, {12, 24}} {
		if err := analysis.BuildShardRange(context.Background(), dir, key, r[0], r[1], 0, genFor(pop)); err != nil {
			t.Fatal(err)
		}
	}
	// Flip a payload byte in the second part: header and table still
	// read fine, only the full verification pass can reject it.
	corrupt := key.PartPath(dir, 12, 24)
	f, err := os.OpenFile(corrupt, os.O_RDWR, 0)
	if err != nil {
		t.Fatal(err)
	}
	fi, err := f.Stat()
	if err != nil {
		t.Fatal(err)
	}
	var b [1]byte
	if _, err := f.ReadAt(b[:], fi.Size()/2); err != nil {
		t.Fatal(err)
	}
	b[0] ^= 0x10
	if _, err := f.WriteAt(b[:], fi.Size()/2); err != nil {
		t.Fatal(err)
	}
	f.Close()

	st, err := Build(context.Background(), Options{
		Dir: dir, Key: key,
		Worker:   &LocalWorker{Dir: dir, Key: key, Generate: genFor(pop)},
		Parallel: 3, Ranges: 3,
	})
	if err != nil {
		t.Fatal(err)
	}
	if st.ResumedParts != 1 || st.ResumedUsers != 12 {
		t.Fatalf("resume adopted %d parts / %d users, want 1 / 12 (stats %+v)", st.ResumedParts, st.ResumedUsers, st)
	}
	if st.QuarantinedParts != 1 {
		t.Fatalf("quarantined %d parts, want 1 (stats %+v)", st.QuarantinedParts, st)
	}
	if _, err := os.Stat(corrupt + snapshot.QuarantineSuffix); err != nil {
		t.Fatalf("quarantine corpse missing: %v", err)
	}
	assertSealedIdentical(t, dir, key, want, wantMan)
}

// TestCoordinatorResumeMidBuild halts a faulty build after two sealed
// parts (ErrHalted), then resumes it to completion — the ISSUE's
// resumed-build-over-partial-directory case, faults included.
func TestCoordinatorResumeMidBuild(t *testing.T) {
	pop, key := testPop(t, 36)
	want, wantMan := wantBytes(t, pop, key)
	dir := t.TempDir()
	opts := Options{
		Dir: dir, Key: key,
		Worker: &FaultyWorker{
			Inner: &LocalWorker{Dir: dir, Key: key, Generate: genFor(pop)},
			Plan:  FaultPlan{Seed: 11, Crash: 0.3, Corrupt: 0.2, Limit: 2},
			Dir:   dir, Key: key,
		},
		Parallel: 2, Ranges: 6,
		MaxAttempts: 6, Backoff: 2 * time.Millisecond,
		HaltAfter: 2,
	}
	st, err := Build(context.Background(), opts)
	if !errors.Is(err, ErrHalted) {
		t.Fatalf("err = %v, want ErrHalted", err)
	}
	if st.SealedParts < 2 {
		t.Fatalf("halted after %d sealed parts, want >= 2", st.SealedParts)
	}
	if _, err := os.Stat(key.Path(dir)); err == nil {
		t.Fatal("halted build sealed the snapshot")
	}

	opts.HaltAfter = 0
	st, err = Build(context.Background(), opts)
	if err != nil {
		t.Fatalf("resumed build: %v (stats %+v)", err, st)
	}
	if st.ResumedParts < 2 {
		t.Fatalf("resumed %d parts, want >= 2 (stats %+v)", st.ResumedParts, st)
	}
	assertSealedIdentical(t, dir, key, want, wantMan)
}

// TestCoordinatorHedgesHungWorker is the ISSUE's in-test hedging
// assertion: with one worker hung on its first attempt and a 30s
// attempt deadline, the build must still complete promptly — the
// straggler detector dispatches a hedged duplicate instead of waiting
// the deadline out.
func TestCoordinatorHedgesHungWorker(t *testing.T) {
	pop, key := testPop(t, 36)
	want, wantMan := wantBytes(t, pop, key)
	dir := t.TempDir()
	const deadline = 30 * time.Second
	st, err := Build(context.Background(), Options{
		Dir: dir, Key: key,
		Worker: &FaultyWorker{
			Inner: &LocalWorker{Dir: dir, Key: key, Generate: genFor(pop)},
			Plan: FaultPlan{Script: func(t Task) Fault {
				if t.Lo == 0 && t.Attempt == 0 {
					return FaultHang
				}
				return FaultNone
			}},
			Dir: dir, Key: key,
		},
		Parallel: 4, AttemptTimeout: deadline,
		HedgeAfter: 50 * time.Millisecond, HedgeFactor: 3,
	})
	if err != nil {
		t.Fatalf("build with hung worker: %v (stats %+v)", err, st)
	}
	if st.Hedges < 1 {
		t.Fatalf("no hedge dispatched (stats %+v)", st)
	}
	if st.Elapsed >= deadline/3 {
		t.Fatalf("build took %v — it waited out the hang instead of hedging (deadline %v)", st.Elapsed, deadline)
	}
	assertSealedIdentical(t, dir, key, want, wantMan)
}

// TestCoordinatorRecutsPoisonedRange poisons every range wider than 9
// users; the coordinator must converge by splitting the failing
// ranges until the pieces fit under the poison width.
func TestCoordinatorRecutsPoisonedRange(t *testing.T) {
	pop, key := testPop(t, 36)
	want, wantMan := wantBytes(t, pop, key)
	dir := t.TempDir()
	st, err := Build(context.Background(), Options{
		Dir: dir, Key: key,
		Worker: &FaultyWorker{
			Inner: &LocalWorker{Dir: dir, Key: key, Generate: genFor(pop)},
			Plan: FaultPlan{Script: func(t Task) Fault {
				if t.Hi-t.Lo > 9 {
					return FaultCrash
				}
				return FaultNone
			}},
			Dir: dir, Key: key,
		},
		Parallel: 2, Ranges: 2, // two 18-wide ranges: both poisoned
		MaxAttempts: 6, RecutAfter: 2, Backoff: 2 * time.Millisecond,
	})
	if err != nil {
		t.Fatalf("build with poisoned ranges: %v (stats %+v)", err, st)
	}
	if st.Recuts < 2 {
		t.Fatalf("recuts = %d, want >= 2 (stats %+v)", st.Recuts, st)
	}
	assertSealedIdentical(t, dir, key, want, wantMan)
}

// TestCoordinatorHedgedDuplicateRace forces every range's first
// attempt to straggle so its hedge races it to the seal. Duplicate
// seals are byte-identical and first-valid-wins, so the result must
// still match the clean build exactly.
func TestCoordinatorHedgedDuplicateRace(t *testing.T) {
	pop, key := testPop(t, 36)
	want, wantMan := wantBytes(t, pop, key)
	dir := t.TempDir()
	st, err := Build(context.Background(), Options{
		Dir: dir, Key: key,
		Worker: &FaultyWorker{
			Inner: &LocalWorker{Dir: dir, Key: key, Generate: genFor(pop)},
			Plan: FaultPlan{Script: func(t Task) Fault {
				if t.Attempt == 0 {
					return FaultSlow
				}
				return FaultNone
			}, SlowDelay: 80 * time.Millisecond},
			Dir: dir, Key: key,
		},
		Parallel: 8, Ranges: 4,
		HedgeAfter: 20 * time.Millisecond, HedgeFactor: 3,
	})
	if err != nil {
		t.Fatalf("build with racing hedges: %v (stats %+v)", err, st)
	}
	if st.Hedges < 1 {
		t.Fatalf("no hedges dispatched (stats %+v)", st)
	}
	assertSealedIdentical(t, dir, key, want, wantMan)
}

// TestCoordinatorFatalAborts pins the retryable/fatal split: a Fatal
// worker error aborts the build instead of burning attempts.
func TestCoordinatorFatalAborts(t *testing.T) {
	_, key := testPop(t, 12)
	dir := t.TempDir()
	boom := errors.New("bad worker config")
	st, err := Build(context.Background(), Options{
		Dir: dir, Key: key,
		Worker: WorkerFunc(func(ctx context.Context, t Task) error {
			return Fatal(boom)
		}),
		Parallel: 2, Ranges: 2,
	})
	if err == nil || !IsFatal(err) || !errors.Is(err, boom) {
		t.Fatalf("err = %v, want fatal wrapping the worker error", err)
	}
	if st.Attempts > 4 {
		t.Fatalf("fatal error burned %d attempts (stats %+v)", st.Attempts, st)
	}
}

// TestCoordinatorRetriesExhausted pins the abort path: a range that
// keeps failing past MaxAttempts fails the build with the last error,
// and the error names the range.
func TestCoordinatorRetriesExhausted(t *testing.T) {
	_, key := testPop(t, 8)
	dir := t.TempDir()
	st, err := Build(context.Background(), Options{
		Dir: dir, Key: key,
		Worker: WorkerFunc(func(ctx context.Context, t Task) error {
			return errors.New("always down")
		}),
		Parallel: 1, Ranges: 1,
		MaxAttempts: 3, RecutAfter: 10, // re-cutting disabled
		Backoff: time.Millisecond,
	})
	if err == nil || IsFatal(err) {
		t.Fatalf("err = %v, want non-fatal exhaustion error", err)
	}
	if st.Attempts != 3 || st.Failures != 3 {
		t.Fatalf("attempts=%d failures=%d, want 3/3 (stats %+v)", st.Attempts, st.Failures, st)
	}
}
