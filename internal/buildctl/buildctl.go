// Package buildctl is the fault-tolerant coordinator for distributed
// snapshot builds: it drives a MaterializeDistributed-style build to
// completion while workers crash, hang, slow down, or seal corrupt
// parts.
//
// The design leans on two properties the snapshot layer already
// guarantees. First, a part build is deterministic — every attempt at
// the same range seals byte-identical bytes via temp-file + atomic
// rename — so duplicate attempts (retries racing stragglers, hedges
// racing hangs) can never disagree; whichever seals first wins and
// the rest are harmless. Second, snapshot.VerifyPart proves a sealed
// part sound end to end, so the coordinator never trusts a worker's
// word: the file on disk is the output, and only a verified file
// counts as done work. Together these make the whole control plane
// idempotent: kill a build anywhere and rerunning resumes from the
// verified parts on disk.
//
// The coordinator itself is a single-goroutine event loop over a
// bounded pool of attempt goroutines: ranges come from
// snapshot.CutRanges over per-user cost weights, failed attempts back
// off with seeded jitter and retry, ranges that keep failing are
// re-cut in half and redistributed, and a running attempt that falls
// far behind the completed-attempt median is hedged with a duplicate
// dispatch. When every range is done the parts are merged and sealed
// exactly as a clean single-process build would have sealed them.
package buildctl

import (
	"context"
	"errors"
	"fmt"
	"os"
	"sort"
	"time"

	"repro/internal/par"
	"repro/internal/snapshot"
	"repro/internal/xrand"
)

// Options configures one coordinated build. Dir, Key and Worker are
// required; everything else has serviceable defaults.
type Options struct {
	Dir    string
	Key    snapshot.Key
	Worker Worker

	// Parallel bounds concurrently running attempts (hedges included).
	// <= 0 means GOMAXPROCS clamped to the user count, exactly like
	// analysis.MaterializeDistributed's worker pool.
	Parallel int
	// Ranges is the target number of initial ranges (<= 0: Parallel).
	// More ranges than workers buys finer-grained retries and resumes
	// at the cost of more part files to merge.
	Ranges int
	// Weights optionally supplies per-user generation cost for the
	// range cuts (one non-negative weight per user); nil or a
	// wrong-length slice means equal user counts. As everywhere else,
	// weights change worker assignment, never sealed bytes.
	Weights []float64
	// WeightsFn, when non-nil, is consulted instead of Weights every
	// time ranges are cut — at the resume scan and at every re-cut —
	// so a transport that observes per-host throughput can steer later
	// cuts while a build is running. It must return one non-negative
	// weight per user (anything else falls back to Weights). Called
	// from the event-loop goroutine only.
	WeightsFn func() []float64
	// ShardUsers is advisory geometry recorded for workers that want
	// it (LocalWorker takes its own); kept here so a coordinator can
	// be described by one struct.
	ShardUsers int

	// AttemptTimeout bounds one attempt's wall-clock; 0 means no
	// deadline. Builds whose workers can hang need either a deadline
	// or hedging (HedgeAfter) to guarantee progress.
	AttemptTimeout time.Duration
	// Backoff is the base delay before retrying a failed range,
	// doubling per consecutive failure up to BackoffMax, with seeded
	// jitter in [0.5, 1.0)× so synchronized failures spread out.
	// Defaults: 20ms base, 2s cap.
	Backoff    time.Duration
	BackoffMax time.Duration
	// MaxAttempts bounds attempts per range (hedges included) before
	// the build aborts (default 4). Re-cutting resets the count: the
	// children are new, narrower ranges.
	MaxAttempts int
	// RecutAfter is the number of consecutive failures after which a
	// range of width >= 2 is split in half (by weight) and
	// redistributed instead of retried whole (default 2). Set it
	// above MaxAttempts to disable re-cutting.
	RecutAfter int

	// HedgeAfter is the minimum elapsed time before a lone running
	// attempt may be hedged with a duplicate dispatch. HedgeFactor
	// scales the running median of completed attempt durations into
	// the straggler threshold (default 3; < 0 disables hedging); the
	// effective threshold is max(HedgeAfter, HedgeFactor × median),
	// or HedgeAfter alone until the first attempt completes. With
	// HedgeAfter 0 and nothing completed yet, nothing is hedged.
	HedgeAfter  time.Duration
	HedgeFactor float64

	// Seed drives retry jitter. Same seed, same jitter schedule.
	Seed uint64
	// HaltAfter, when > 0, stops the build with ErrHalted after that
	// many newly sealed parts — the hook the resume tests and the
	// chaos smoke use to kill a build mid-flight deterministically.
	HaltAfter int
	// Logf, when non-nil, receives one line per notable event
	// (failures, hedges, re-cuts, quarantines, resumes).
	Logf func(format string, args ...any)
}

// ErrHalted reports a build stopped by Options.HaltAfter. The build
// is resumable: rerunning the same Options picks up the sealed parts.
var ErrHalted = errors.New("buildctl: halted before completion (resumable)")

// Stats describes what one Build call did.
type Stats struct {
	Warm             bool          // snapshot already sealed; nothing ran
	Ranges           int           // ranges scheduled (initial cuts + re-cut children)
	Attempts         int           // attempts dispatched, hedges included
	Failures         int           // attempts that failed or sealed an invalid part
	Hedges           int           // duplicate dispatches against stragglers
	Recuts           int           // ranges split after repeated failure
	SealedParts      int           // parts newly sealed and verified by this run
	ResumedParts     int           // verified parts adopted from a previous run
	ResumedUsers     int           // users covered by adopted parts
	QuarantinedParts int           // corrupt parts moved to *.bad
	RebuiltUsers     int           // users dispatched more than once (retries + hedges)
	MergedParts      int           // parts spliced into the sealed snapshot
	Elapsed          time.Duration // wall-clock of the whole Build call
}

// Build drives the key's snapshot to sealed under dir, tolerating
// worker failure. It resumes from any verified parts already on disk,
// quarantines corrupt ones, retries/hedges/re-cuts per Options, and
// finishes with snapshot.MergeShards — so the sealed snapshot and
// manifest are byte-identical to a clean single-process Save. ctx
// cancellation aborts in-flight attempts and returns ctx's error;
// sealed parts stay behind for the next run to resume from.
func Build(ctx context.Context, opts Options) (st Stats, err error) {
	start := time.Now()
	defer func() { st.Elapsed = time.Since(start) }()
	o, err := opts.withDefaults()
	if err != nil {
		return st, err
	}
	if s, oerr := snapshot.Open(o.Dir, o.Key); oerr == nil {
		s.Close()
		st.Warm = true
		return st, nil
	}
	// Two rounds: if the merge rejects a part (a worker corrupted it
	// after verification — the one window verification cannot close),
	// re-scan from disk, quarantine what fails, rebuild the holes and
	// merge again.
	for round := 0; ; round++ {
		c := newCoordinator(o, &st)
		if err := c.scan(); err != nil {
			return st, err
		}
		if err := c.run(ctx); err != nil {
			return st, err
		}
		c.sweepStrays()
		n, merr := snapshot.MergeShards(o.Dir, o.Key)
		if merr == nil {
			st.MergedParts = n
			return st, nil
		}
		if round >= 1 {
			return st, fmt.Errorf("buildctl: merge failed after re-verification: %w", merr)
		}
		o.Logf("buildctl: merge failed (%v); re-verifying parts and rebuilding", merr)
	}
}

func (o Options) withDefaults() (Options, error) {
	if o.Worker == nil {
		return o, errors.New("buildctl: Options.Worker is required")
	}
	o.Parallel = par.Workers(o.Parallel, o.Key.Users)
	if o.Ranges <= 0 {
		o.Ranges = o.Parallel
	}
	if o.Backoff <= 0 {
		o.Backoff = 20 * time.Millisecond
	}
	if o.BackoffMax <= 0 {
		o.BackoffMax = 2 * time.Second
	}
	if o.MaxAttempts <= 0 {
		o.MaxAttempts = 4
	}
	if o.RecutAfter <= 0 {
		o.RecutAfter = 2
	}
	if o.HedgeFactor == 0 {
		o.HedgeFactor = 3
	}
	if o.Logf == nil {
		o.Logf = func(string, ...any) {}
	}
	return o, nil
}

// rangeState is the coordinator's view of one contiguous user range.
type rangeState struct {
	lo, hi   int
	attempts int   // attempts dispatched (hedges included)
	failures int   // consecutive failed attempts
	lastErr  error // most recent failure, for the abort message
	readyAt  time.Time
	done     bool
	running  map[int]*attemptState
}

type attemptState struct {
	id     int
	start  time.Time
	cancel context.CancelFunc
}

type attemptResult struct {
	lo, hi  int
	id      int
	err     error
	elapsed time.Duration
}

type coordinator struct {
	opts      Options
	st        *Stats
	rng       *xrand.Source // jitter; event-loop goroutine only
	ranges    map[[2]int]*rangeState
	attempts  map[int]*attemptState // every in-flight attempt by id
	results   chan attemptResult
	durations []time.Duration // completed successful attempt durations
	inflight  int
	covered   int // users in done ranges
	sealedNew int // parts sealed by this run (HaltAfter budget)
	nextID    int
}

func newCoordinator(opts Options, st *Stats) *coordinator {
	return &coordinator{
		opts:     opts,
		st:       st,
		rng:      xrand.New(opts.Seed ^ 0xb171dc71c0ffee01),
		ranges:   make(map[[2]int]*rangeState),
		attempts: make(map[int]*attemptState),
		results:  make(chan attemptResult, 2*opts.Parallel+4),
	}
}

func (c *coordinator) addRange(lo, hi int) *rangeState {
	rs := &rangeState{lo: lo, hi: hi, running: make(map[int]*attemptState)}
	c.ranges[[2]int{lo, hi}] = rs
	c.st.Ranges++
	return rs
}

// scan is the resume pass: adopt every verified non-overlapping part
// already on disk as done work, quarantine parts that fail
// verification, discard valid parts that overlap adopted ones (a
// re-cut parent from an abandoned run cannot tile with its children),
// and cut the remaining gaps into build ranges.
func (c *coordinator) scan() error {
	parts, err := snapshot.ListParts(c.opts.Dir, c.opts.Key)
	if err != nil {
		return err
	}
	users := c.opts.Key.Users
	next := 0
	var gaps [][2]int
	for _, p := range parts {
		if p.Lo < next {
			os.Remove(p.Path)
			c.opts.Logf("buildctl: removed part [%d, %d): overlaps adopted work", p.Lo, p.Hi)
			continue
		}
		if _, verr := snapshot.VerifyPart(c.opts.Dir, c.opts.Key, p.Lo, p.Hi); verr != nil {
			if bad, qerr := snapshot.QuarantinePart(p.Path); qerr == nil {
				c.st.QuarantinedParts++
				c.opts.Logf("buildctl: quarantined %s: %v", bad, verr)
			}
			continue
		}
		rs := c.addRange(p.Lo, p.Hi)
		c.st.Ranges-- // adopted, not scheduled
		rs.done = true
		c.covered += p.Hi - p.Lo
		c.st.ResumedParts++
		c.st.ResumedUsers += p.Hi - p.Lo
		if p.Lo > next {
			gaps = append(gaps, [2]int{next, p.Lo})
		}
		next = p.Hi
	}
	if next < users {
		gaps = append(gaps, [2]int{next, users})
	}
	if c.st.ResumedParts > 0 {
		c.opts.Logf("buildctl: resumed %d verified parts covering %d/%d users",
			c.st.ResumedParts, c.covered, users)
	}
	for _, g := range gaps {
		width := g[1] - g[0]
		// Each gap gets its proportional share of the target range
		// count, at least one.
		k := (width*c.opts.Ranges + users - 1) / users
		for _, cut := range snapshot.CutRanges(c.rangeWeights(g[0], g[1]), k) {
			c.addRange(g[0]+cut[0], g[0]+cut[1])
		}
	}
	return nil
}

// rangeWeights returns the per-user cost weights of [lo, hi), or an
// all-zero slice (→ equal-count cuts) when none were supplied.
// WeightsFn wins over the static Weights so observed-cost feedback
// reaches re-cuts made mid-build.
func (c *coordinator) rangeWeights(lo, hi int) []float64 {
	if c.opts.WeightsFn != nil {
		if w := c.opts.WeightsFn(); len(w) == c.opts.Key.Users {
			return w[lo:hi]
		}
	}
	if len(c.opts.Weights) == c.opts.Key.Users {
		return c.opts.Weights[lo:hi]
	}
	return make([]float64, hi-lo)
}

// run is the event loop: dispatch ready ranges into free slots, react
// to attempt results, hedge stragglers on the tick. It returns once
// every user is covered by a verified part, the halt budget is spent,
// ctx dies, or a range exhausts its attempts.
func (c *coordinator) run(ctx context.Context) error {
	tick := time.NewTicker(c.tickEvery())
	defer tick.Stop()
	for {
		if c.covered >= c.opts.Key.Users {
			c.shutdown()
			return nil
		}
		if c.opts.HaltAfter > 0 && c.sealedNew >= c.opts.HaltAfter {
			c.opts.Logf("buildctl: halting after %d newly sealed parts", c.sealedNew)
			c.shutdown()
			return ErrHalted
		}
		c.dispatch(ctx)
		select {
		case <-ctx.Done():
			c.shutdown()
			return ctx.Err()
		case r := <-c.results:
			if err := c.handle(r); err != nil {
				c.shutdown()
				return err
			}
		case <-tick.C:
			c.maybeHedge(ctx)
		}
	}
}

// tickEvery sizes the housekeeping tick under the smallest timing
// knob in play so backoff expiry and hedge thresholds are observed
// promptly without a hot loop.
func (c *coordinator) tickEvery() time.Duration {
	d := 25 * time.Millisecond
	if c.opts.HedgeAfter > 0 && c.opts.HedgeAfter/4 < d {
		d = c.opts.HedgeAfter / 4
	}
	if c.opts.Backoff/2 < d {
		d = c.opts.Backoff / 2
	}
	if d < time.Millisecond {
		d = time.Millisecond
	}
	return d
}

// readyRanges returns the not-done ranges with no attempt in flight
// whose backoff has expired, lowest user first — the deterministic
// dispatch order.
func (c *coordinator) readyRanges(now time.Time) []*rangeState {
	var out []*rangeState
	for _, rs := range c.ranges {
		if !rs.done && len(rs.running) == 0 && !rs.readyAt.After(now) {
			out = append(out, rs)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].lo < out[j].lo })
	return out
}

func (c *coordinator) dispatch(ctx context.Context) {
	if c.inflight >= c.opts.Parallel {
		return
	}
	for _, rs := range c.readyRanges(time.Now()) {
		if c.inflight >= c.opts.Parallel {
			return
		}
		c.launch(ctx, rs, false)
	}
}

// launch starts one attempt goroutine for rs. The goroutine builds,
// then — only on a claimed success — verifies the sealed part end to
// end before reporting, so the event loop never sees an unproven
// "done". Verification runs out here, off the event loop, because it
// streams the whole part; concurrent verifies of one range are safe
// (every seal of a range is byte-identical).
func (c *coordinator) launch(ctx context.Context, rs *rangeState, hedge bool) {
	t := Task{Lo: rs.lo, Hi: rs.hi, Attempt: rs.attempts}
	rs.attempts++
	c.st.Attempts++
	if t.Attempt > 0 {
		c.st.RebuiltUsers += rs.hi - rs.lo
	}
	if hedge {
		c.st.Hedges++
		c.opts.Logf("buildctl: hedging straggler %v", t)
	}
	var actx context.Context
	var cancel context.CancelFunc
	if c.opts.AttemptTimeout > 0 {
		actx, cancel = context.WithTimeout(ctx, c.opts.AttemptTimeout)
	} else {
		actx, cancel = context.WithCancel(ctx)
	}
	a := &attemptState{id: c.nextID, start: time.Now(), cancel: cancel}
	c.nextID++
	rs.running[a.id] = a
	c.attempts[a.id] = a
	c.inflight++
	go func() {
		err := c.opts.Worker.Build(actx, t)
		if err == nil {
			if _, verr := snapshot.VerifyPart(c.opts.Dir, c.opts.Key, t.Lo, t.Hi); verr != nil {
				err = fmt.Errorf("sealed part failed verification: %w", verr)
			}
		}
		c.results <- attemptResult{lo: t.Lo, hi: t.Hi, id: a.id, err: err, elapsed: time.Since(a.start)}
	}()
}

// handle folds one attempt result into the range state. A non-nil
// return aborts the whole build.
func (c *coordinator) handle(r attemptResult) error {
	c.inflight--
	// Cancel through the attempt registry, not the range state: every
	// result path — including a range re-cut away under a late result —
	// must release the attempt's context (and its deadline timer).
	if a := c.attempts[r.id]; a != nil {
		delete(c.attempts, r.id)
		a.cancel()
	}
	rs := c.ranges[[2]int{r.lo, r.hi}]
	if rs == nil {
		return nil // range re-cut away; nothing to account against
	}
	delete(rs.running, r.id)
	if rs.done {
		return nil // a sibling (hedge) already completed the range
	}
	if r.err == nil {
		rs.done = true
		rs.lastErr = nil
		c.covered += rs.hi - rs.lo
		c.sealedNew++
		c.st.SealedParts++
		c.durations = append(c.durations, r.elapsed)
		// Stragglers of a done range only burn slots; their seals
		// would be byte-identical anyway.
		for _, sib := range rs.running {
			sib.cancel()
		}
		return nil
	}
	c.st.Failures++
	rs.failures++
	rs.lastErr = r.err
	c.opts.Logf("buildctl: attempt on [%d, %d) failed (%d consecutive): %v", rs.lo, rs.hi, rs.failures, r.err)
	if IsFatal(r.err) {
		return fmt.Errorf("buildctl: range [%d, %d): %w", rs.lo, rs.hi, r.err)
	}
	if len(rs.running) > 0 {
		return nil // a hedge is still in flight; it decides the range's fate
	}
	// All attempts down. Anything left at the part path failed
	// verification (or was sealed by a worker that then reported an
	// error) — move it out of the rebuild's way.
	if bad, qerr := snapshot.QuarantinePart(c.opts.Key.PartPath(c.opts.Dir, rs.lo, rs.hi)); qerr == nil {
		c.st.QuarantinedParts++
		c.opts.Logf("buildctl: quarantined %s", bad)
	}
	if rs.failures >= c.opts.RecutAfter && rs.hi-rs.lo >= 2 {
		c.recut(rs)
		return nil
	}
	if rs.attempts >= c.opts.MaxAttempts {
		return fmt.Errorf("buildctl: range [%d, %d) failed %d attempts: %w", rs.lo, rs.hi, rs.attempts, r.err)
	}
	rs.readyAt = time.Now().Add(c.backoff(rs.failures))
	return nil
}

// recut splits a repeatedly failing range in half by weight and
// schedules the fresh halves — narrowing the blast radius of a
// poisoned range (one pathological user, one bad disk region) while
// the healthy half proceeds.
func (c *coordinator) recut(rs *rangeState) {
	delete(c.ranges, [2]int{rs.lo, rs.hi})
	c.st.Recuts++
	cuts := snapshot.CutRanges(c.rangeWeights(rs.lo, rs.hi), 2)
	for _, cut := range cuts {
		c.addRange(rs.lo+cut[0], rs.lo+cut[1])
	}
	c.opts.Logf("buildctl: re-cut [%d, %d) after %d failures into %d ranges", rs.lo, rs.hi, rs.failures, len(cuts))
}

func (c *coordinator) backoff(failures int) time.Duration {
	return Retry{Base: c.opts.Backoff, Max: c.opts.BackoffMax}.Delay(failures, c.rng)
}

// hedgeThreshold is the elapsed time past which a lone running
// attempt counts as a straggler.
func (c *coordinator) hedgeThreshold() time.Duration {
	if len(c.durations) == 0 {
		return c.opts.HedgeAfter // 0 → no hedging before the first completion
	}
	meds := append([]time.Duration(nil), c.durations...)
	sort.Slice(meds, func(i, j int) bool { return meds[i] < meds[j] })
	thr := time.Duration(c.opts.HedgeFactor * float64(meds[len(meds)/2]))
	if thr < c.opts.HedgeAfter {
		thr = c.opts.HedgeAfter
	}
	return thr
}

// maybeHedge dispatches a duplicate attempt against each range whose
// single running attempt has straggled past the threshold, capacity
// permitting. Duplicate seals are byte-identical, so first valid wins
// and the loser is cancelled — hangs stop costing a full attempt
// deadline.
func (c *coordinator) maybeHedge(ctx context.Context) {
	if c.opts.HedgeFactor < 0 || c.inflight >= c.opts.Parallel {
		return
	}
	thr := c.hedgeThreshold()
	if thr <= 0 {
		return
	}
	now := time.Now()
	var lagging []*rangeState
	for _, rs := range c.ranges {
		if rs.done || len(rs.running) != 1 {
			continue
		}
		for _, a := range rs.running {
			if now.Sub(a.start) > thr {
				lagging = append(lagging, rs)
			}
		}
	}
	sort.Slice(lagging, func(i, j int) bool { return lagging[i].lo < lagging[j].lo })
	for _, rs := range lagging {
		if c.inflight >= c.opts.Parallel {
			return
		}
		c.launch(ctx, rs, true)
	}
}

// shutdown cancels every running attempt and drains their results so
// no goroutine outlives the build. Late verified successes are still
// adopted — the part is sealed and sound whether or not anyone waits
// for it, and resumed builds will find it.
func (c *coordinator) shutdown() {
	for _, a := range c.attempts {
		a.cancel()
	}
	for c.inflight > 0 {
		r := <-c.results
		c.inflight--
		delete(c.attempts, r.id)
		rs := c.ranges[[2]int{r.lo, r.hi}]
		if rs != nil {
			delete(rs.running, r.id)
		}
		if rs != nil && !rs.done && r.err == nil {
			rs.done = true
			c.covered += rs.hi - rs.lo
			c.sealedNew++
			c.st.SealedParts++
		}
	}
}

// sweepStrays removes sealed parts that do not correspond to a done
// range — recut parents or hedge leftovers whose geometry no longer
// tiles — so the merge sees exactly the coordinated tiling.
func (c *coordinator) sweepStrays() {
	parts, err := snapshot.ListParts(c.opts.Dir, c.opts.Key)
	if err != nil {
		return
	}
	for _, p := range parts {
		rs := c.ranges[[2]int{p.Lo, p.Hi}]
		if rs == nil || !rs.done {
			os.Remove(p.Path)
			c.opts.Logf("buildctl: removed stray part [%d, %d)", p.Lo, p.Hi)
		}
	}
}
