package buildctl

import (
	"context"
	"errors"
	"os"
	"time"

	"repro/internal/snapshot"
	"repro/internal/xrand"
)

// Fault is one injectable worker failure mode.
type Fault int

const (
	FaultNone    Fault = iota
	FaultCrash         // fail before sealing anything (crash-before-seal)
	FaultHang          // block until the attempt is cancelled
	FaultSlow          // add SlowDelay of latency, then build normally
	FaultCorrupt       // build and seal, then flip a byte in the sealed part
)

func (f Fault) String() string {
	switch f {
	case FaultNone:
		return "none"
	case FaultCrash:
		return "crash"
	case FaultHang:
		return "hang"
	case FaultSlow:
		return "slow"
	case FaultCorrupt:
		return "corrupt"
	}
	return "unknown"
}

// FaultPlan is a seeded schedule of injected worker faults. The draw
// for an attempt is a pure function of (Seed, Lo, Hi, Attempt): the
// same plan over the same ranges injects the same faults regardless
// of scheduling, which is what makes chaos runs reproducible.
//
// Crash, Hang, Slow and Corrupt are cumulative probabilities of the
// respective fault (their sum must be ≤ 1; the remainder is a clean
// build). Script, when non-nil, replaces the seeded draw entirely —
// tests use it to hang exactly one attempt or poison exactly one
// range.
type FaultPlan struct {
	Seed                       uint64
	Crash, Hang, Slow, Corrupt float64
	// SlowDelay is the latency FaultSlow injects (default 50ms).
	SlowDelay time.Duration
	// Limit, when > 0, exempts attempt numbers >= Limit from faults,
	// bounding the injected faults per range so every plan converges
	// once the coordinator's MaxAttempts exceeds it.
	Limit int
	// Script overrides the seeded draw when non-nil (Limit still
	// applies).
	Script func(t Task) Fault
}

// draw decides the fault injected into one attempt.
func (p FaultPlan) draw(t Task) Fault {
	if p.Limit > 0 && t.Attempt >= p.Limit {
		return FaultNone
	}
	if p.Script != nil {
		return p.Script(t)
	}
	// One throwaway seeded stream per (range, attempt): deterministic
	// under any dispatch order, no shared state to lock.
	h := p.Seed
	for _, v := range [...]uint64{uint64(t.Lo), uint64(t.Hi), uint64(t.Attempt)} {
		h = (h ^ v) * 0x9e3779b97f4a7c15
		h ^= h >> 32
	}
	u := xrand.New(h).Float64()
	switch {
	case u < p.Crash:
		return FaultCrash
	case u < p.Crash+p.Hang:
		return FaultHang
	case u < p.Crash+p.Hang+p.Slow:
		return FaultSlow
	case u < p.Crash+p.Hang+p.Slow+p.Corrupt:
		return FaultCorrupt
	}
	return FaultNone
}

// ErrInjectedCrash is the error a FaultCrash attempt reports; tests
// and logs can tell injected failures from organic ones.
var ErrInjectedCrash = errors.New("buildctl: injected crash before seal")

// FaultyWorker wraps a Worker with a FaultPlan — the chaos harness of
// the convergence suite and the build-chaos smoke. Crash fails before
// delegating (nothing sealed), Hang parks on ctx (only an attempt
// deadline or a hedge win frees the slot), Slow sleeps then delegates,
// Corrupt delegates then flips one payload byte of the sealed part —
// modeling storage corruption after a worker believed it sealed sound
// bytes, the case only VerifyPart can catch.
type FaultyWorker struct {
	Inner Worker
	Plan  FaultPlan
	// Dir and Key locate sealed parts for FaultCorrupt.
	Dir string
	Key snapshot.Key
}

// Build implements Worker.
func (w *FaultyWorker) Build(ctx context.Context, t Task) error {
	switch w.Plan.draw(t) {
	case FaultCrash:
		return ErrInjectedCrash
	case FaultHang:
		<-ctx.Done()
		return ctx.Err()
	case FaultSlow:
		delay := w.Plan.SlowDelay
		if delay <= 0 {
			delay = 50 * time.Millisecond
		}
		timer := time.NewTimer(delay)
		defer timer.Stop()
		select {
		case <-timer.C:
		case <-ctx.Done():
			return ctx.Err()
		}
	case FaultCorrupt:
		if err := w.Inner.Build(ctx, t); err != nil {
			return err
		}
		corruptPart(w.Key.PartPath(w.Dir, t.Lo, t.Hi))
		return nil // the worker believes it succeeded
	}
	return w.Inner.Build(ctx, t)
}

// corruptPart flips one byte in the middle of a sealed part in place.
// Best effort: if a hedged duplicate already replaced or removed the
// file there is nothing left to corrupt, which is fine — the fault
// modeled here is silent bit damage, not a guaranteed detection case.
func corruptPart(path string) {
	f, err := os.OpenFile(path, os.O_RDWR, 0)
	if err != nil {
		return
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil || st.Size() == 0 {
		return
	}
	var b [1]byte
	off := st.Size() / 2
	if _, err := f.ReadAt(b[:], off); err != nil {
		return
	}
	b[0] ^= 0x20
	f.WriteAt(b[:], off)
}
