package netsim

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
)

// PcapWriter exports packet records as a classic libpcap capture file
// (LINKTYPE_RAW: packets begin at the IPv4 header), so synthesized
// enterprise traces open directly in tcpdump and Wireshark. IPv4,
// TCP and UDP headers are fully synthesized, including checksums.
//
// Payload bytes beyond the headers are zero-filled up to each
// record's Length (truncated at the snap length), which keeps files
// compact while preserving the on-the-wire sizes tools display.
type PcapWriter struct {
	w       *bufio.Writer
	snapLen uint32
	count   int64
	err     error
	seq     uint32
}

// pcap constants
const (
	pcapMagic       = 0xa1b2c3d4 // microsecond-timestamp magic
	pcapVersionMaj  = 2
	pcapVersionMin  = 4
	pcapLinkTypeRaw = 101 // LINKTYPE_RAW: raw IPv4/IPv6
	// DefaultSnapLen truncates stored packets; 256 bytes keeps full
	// headers plus a little payload.
	DefaultSnapLen = 256
)

// NewPcapWriter writes the pcap global header. snapLen 0 selects
// DefaultSnapLen.
func NewPcapWriter(w io.Writer, snapLen uint32) (*PcapWriter, error) {
	if snapLen == 0 {
		snapLen = DefaultSnapLen
	}
	if snapLen < 40 {
		return nil, fmt.Errorf("netsim: pcap snap length %d below smallest header stack", snapLen)
	}
	bw := bufio.NewWriterSize(w, 64<<10)
	var hdr [24]byte
	le := binary.LittleEndian
	le.PutUint32(hdr[0:4], pcapMagic)
	le.PutUint16(hdr[4:6], pcapVersionMaj)
	le.PutUint16(hdr[6:8], pcapVersionMin)
	// thiszone, sigfigs = 0
	le.PutUint32(hdr[16:20], snapLen)
	le.PutUint32(hdr[20:24], pcapLinkTypeRaw)
	if _, err := bw.Write(hdr[:]); err != nil {
		return nil, fmt.Errorf("netsim: writing pcap header: %w", err)
	}
	return &PcapWriter{w: bw, snapLen: snapLen}, nil
}

// Write appends one record as a raw-IP pcap packet.
func (pw *PcapWriter) Write(r Record) error {
	if pw.err != nil {
		return pw.err
	}
	pkt := pw.buildPacket(r)
	origLen := int(r.Length)
	if origLen < len(pkt) {
		origLen = len(pkt)
	}
	inclLen := len(pkt)
	if uint32(inclLen) > pw.snapLen {
		inclLen = int(pw.snapLen)
	}
	var rec [16]byte
	le := binary.LittleEndian
	le.PutUint32(rec[0:4], uint32(r.Time/1_000_000))
	le.PutUint32(rec[4:8], uint32(r.Time%1_000_000))
	le.PutUint32(rec[8:12], uint32(inclLen))
	le.PutUint32(rec[12:16], uint32(origLen))
	if _, err := pw.w.Write(rec[:]); err != nil {
		pw.err = fmt.Errorf("netsim: writing pcap record header: %w", err)
		return pw.err
	}
	if _, err := pw.w.Write(pkt[:inclLen]); err != nil {
		pw.err = fmt.Errorf("netsim: writing pcap packet: %w", err)
		return pw.err
	}
	pw.count++
	return nil
}

// buildPacket synthesizes IPv4 + transport headers plus zero payload
// up to the record length (capped at the snap length).
func (pw *PcapWriter) buildPacket(r Record) []byte {
	var transport []byte
	switch r.Proto {
	case ProtoTCP:
		transport = pw.tcpHeader(r)
	case ProtoUDP:
		transport = pw.udpHeader(r)
	default:
		transport = nil
	}
	headerLen := 20 + len(transport)
	total := int(r.Length)
	if total < headerLen {
		total = headerLen
	}
	stored := total
	if uint32(stored) > pw.snapLen {
		stored = int(pw.snapLen)
	}
	pkt := make([]byte, stored)
	ip := pkt[0:20]
	ip[0] = 0x45 // v4, 20-byte header
	binary.BigEndian.PutUint16(ip[2:4], uint16(total))
	binary.BigEndian.PutUint16(ip[4:6], uint16(pw.seq))
	pw.seq++
	ip[8] = 64 // TTL
	ip[9] = byte(r.Proto)
	copy(ip[12:16], r.Src.Addr[:])
	copy(ip[16:20], r.Dst.Addr[:])
	binary.BigEndian.PutUint16(ip[10:12], checksum(ip))
	copy(pkt[20:], transport)
	return pkt
}

// tcpHeader builds a 20-byte TCP header with a valid checksum over
// the header alone (payload is zeros, which contribute nothing).
func (pw *PcapWriter) tcpHeader(r Record) []byte {
	h := make([]byte, 20)
	binary.BigEndian.PutUint16(h[0:2], r.Src.Port)
	binary.BigEndian.PutUint16(h[2:4], r.Dst.Port)
	binary.BigEndian.PutUint32(h[4:8], pw.seq*1469) // arbitrary but stable
	h[12] = 5 << 4                                  // data offset: 5 words
	h[13] = byte(r.Flags)
	binary.BigEndian.PutUint16(h[14:16], 65535) // window
	binary.BigEndian.PutUint16(h[16:18], tcpUDPChecksum(r, h, len(h)))
	return h
}

// udpHeader builds an 8-byte UDP header.
func (pw *PcapWriter) udpHeader(r Record) []byte {
	h := make([]byte, 8)
	binary.BigEndian.PutUint16(h[0:2], r.Src.Port)
	binary.BigEndian.PutUint16(h[2:4], r.Dst.Port)
	udpLen := int(r.Length) - 20
	if udpLen < 8 {
		udpLen = 8
	}
	binary.BigEndian.PutUint16(h[4:6], uint16(udpLen))
	binary.BigEndian.PutUint16(h[6:8], tcpUDPChecksum(r, h, udpLen))
	return h
}

// tcpUDPChecksum computes the transport checksum over the IPv4
// pseudo-header plus the header bytes (the zero payload contributes
// nothing).
func tcpUDPChecksum(r Record, transport []byte, length int) uint16 {
	pseudo := make([]byte, 12+len(transport))
	copy(pseudo[0:4], r.Src.Addr[:])
	copy(pseudo[4:8], r.Dst.Addr[:])
	pseudo[9] = byte(r.Proto)
	binary.BigEndian.PutUint16(pseudo[10:12], uint16(length))
	copy(pseudo[12:], transport)
	return checksum(pseudo)
}

// checksum is the Internet checksum (RFC 1071).
func checksum(b []byte) uint16 {
	var sum uint32
	for i := 0; i+1 < len(b); i += 2 {
		sum += uint32(binary.BigEndian.Uint16(b[i : i+2]))
	}
	if len(b)%2 == 1 {
		sum += uint32(b[len(b)-1]) << 8
	}
	for sum>>16 != 0 {
		sum = sum&0xffff + sum>>16
	}
	return ^uint16(sum)
}

// Count returns the packets written.
func (pw *PcapWriter) Count() int64 { return pw.count }

// Flush flushes buffered data.
func (pw *PcapWriter) Flush() error {
	if pw.err != nil {
		return pw.err
	}
	if err := pw.w.Flush(); err != nil {
		pw.err = fmt.Errorf("netsim: flushing pcap: %w", err)
	}
	return pw.err
}

// PcapPacket is one decoded packet from a pcap file (used by the
// reader below and the round-trip tests).
type PcapPacket struct {
	TimeMicros int64
	OrigLen    int
	Data       []byte // raw IP packet, possibly truncated at snap length
}

// PcapReader reads classic little-endian pcap files written by
// PcapWriter (LINKTYPE_RAW, microsecond timestamps).
type PcapReader struct {
	r       *bufio.Reader
	snapLen uint32
}

// NewPcapReader validates the global header.
func NewPcapReader(r io.Reader) (*PcapReader, error) {
	br := bufio.NewReaderSize(r, 64<<10)
	var hdr [24]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("netsim: reading pcap header: %w", err)
	}
	le := binary.LittleEndian
	if le.Uint32(hdr[0:4]) != pcapMagic {
		return nil, fmt.Errorf("netsim: not a little-endian microsecond pcap")
	}
	if lt := le.Uint32(hdr[20:24]); lt != pcapLinkTypeRaw {
		return nil, fmt.Errorf("netsim: unsupported pcap link type %d", lt)
	}
	return &PcapReader{r: br, snapLen: le.Uint32(hdr[16:20])}, nil
}

// Next reads the next packet; io.EOF signals a clean end.
func (pr *PcapReader) Next() (PcapPacket, error) {
	var rec [16]byte
	if _, err := io.ReadFull(pr.r, rec[:]); err != nil {
		if err == io.EOF {
			return PcapPacket{}, io.EOF
		}
		return PcapPacket{}, fmt.Errorf("netsim: reading pcap record header: %w", err)
	}
	le := binary.LittleEndian
	inclLen := le.Uint32(rec[8:12])
	if inclLen > pr.snapLen {
		return PcapPacket{}, fmt.Errorf("netsim: pcap record of %d bytes exceeds snap length %d", inclLen, pr.snapLen)
	}
	data := make([]byte, inclLen)
	if _, err := io.ReadFull(pr.r, data); err != nil {
		return PcapPacket{}, fmt.Errorf("netsim: reading pcap packet: %w", err)
	}
	return PcapPacket{
		TimeMicros: int64(le.Uint32(rec[0:4]))*1_000_000 + int64(le.Uint32(rec[4:8])),
		OrigLen:    int(le.Uint32(rec[12:16])),
		Data:       data,
	}, nil
}

// DecodeIPv4 parses the record-relevant fields back out of a raw IP
// packet produced by PcapWriter — the inverse mapping used in tests
// and by downstream consumers that want Record semantics from
// captured data.
func DecodeIPv4(data []byte) (Record, error) {
	if len(data) < 20 || data[0]>>4 != 4 {
		return Record{}, fmt.Errorf("netsim: not an IPv4 packet")
	}
	ihl := int(data[0]&0x0f) * 4
	if ihl < 20 || len(data) < ihl {
		return Record{}, fmt.Errorf("netsim: bad IPv4 header length %d", ihl)
	}
	var r Record
	r.Length = binary.BigEndian.Uint16(data[2:4])
	r.Proto = Proto(data[9])
	copy(r.Src.Addr[:], data[12:16])
	copy(r.Dst.Addr[:], data[16:20])
	rest := data[ihl:]
	switch r.Proto {
	case ProtoTCP:
		if len(rest) < 20 {
			return Record{}, fmt.Errorf("netsim: truncated TCP header")
		}
		r.Src.Port = binary.BigEndian.Uint16(rest[0:2])
		r.Dst.Port = binary.BigEndian.Uint16(rest[2:4])
		r.Flags = TCPFlags(rest[13])
	case ProtoUDP:
		if len(rest) < 8 {
			return Record{}, fmt.Errorf("netsim: truncated UDP header")
		}
		r.Src.Port = binary.BigEndian.Uint16(rest[0:2])
		r.Dst.Port = binary.BigEndian.Uint16(rest[2:4])
	}
	return r, nil
}
