package netsim

import (
	"io"
	"net"
	"sync"
	"testing"
)

func TestMemNetworkRoundTrip(t *testing.T) {
	n := NewMemNetwork()
	ln, err := n.Listen("console")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	if ln.Addr().Network() != "mem" || ln.Addr().String() != "console" {
		t.Fatalf("addr = %v/%v", ln.Addr().Network(), ln.Addr())
	}

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		conn, err := ln.Accept()
		if err != nil {
			t.Errorf("accept: %v", err)
			return
		}
		defer conn.Close()
		buf := make([]byte, 5)
		if _, err := io.ReadFull(conn, buf); err != nil {
			t.Errorf("server read: %v", err)
			return
		}
		if _, err := conn.Write(buf); err != nil {
			t.Errorf("server write: %v", err)
		}
	}()

	conn, err := n.Dial("console")
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Write([]byte("hello")); err != nil {
		t.Fatal(err)
	}
	echo := make([]byte, 5)
	if _, err := io.ReadFull(conn, echo); err != nil {
		t.Fatal(err)
	}
	if string(echo) != "hello" {
		t.Fatalf("echo = %q", echo)
	}
	wg.Wait()
}

func TestMemNetworkDialUnbound(t *testing.T) {
	n := NewMemNetwork()
	if _, err := n.Dial("nowhere"); err == nil {
		t.Fatal("dial to unbound name succeeded")
	}
}

func TestMemNetworkDuplicateBind(t *testing.T) {
	n := NewMemNetwork()
	ln, err := n.Listen("x")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := n.Listen("x"); err == nil {
		t.Fatal("duplicate bind succeeded")
	}
	// Closing frees the name for rebinding.
	_ = ln.Close()
	ln2, err := n.Listen("x")
	if err != nil {
		t.Fatalf("rebind after close: %v", err)
	}
	_ = ln2.Close()
}

func TestMemListenerClose(t *testing.T) {
	n := NewMemNetwork()
	ln, err := n.Listen("c")
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		_, err := ln.Accept()
		done <- err
	}()
	if err := ln.Close(); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != net.ErrClosed {
		t.Fatalf("accept after close: %v", err)
	}
	if _, err := n.Dial("c"); err == nil {
		t.Fatal("dial after close succeeded")
	}
	// Idempotent.
	if err := ln.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestMemConnPeerCloseGivesEOF(t *testing.T) {
	n := NewMemNetwork()
	ln, err := n.Listen("eof")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	accepted := make(chan net.Conn, 1)
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			t.Errorf("accept: %v", err)
			close(accepted)
			return
		}
		accepted <- conn
	}()
	client, err := n.Dial("eof")
	if err != nil {
		t.Fatal(err)
	}
	server := <-accepted
	if server == nil {
		t.Fatal("no server conn")
	}
	_ = client.Close()
	// The console server relies on a closing agent surfacing as io.EOF
	// so the disconnect is treated as a clean shutdown.
	if _, err := server.Read(make([]byte, 1)); err != io.EOF {
		t.Fatalf("read after peer close: %v, want io.EOF", err)
	}
	_ = server.Close()
}
