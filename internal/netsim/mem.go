package netsim

import (
	"context"
	"fmt"
	"net"
	"sync"
)

// MemNetwork is an in-process network fabric: listeners bind names,
// dialers are handed the peer end of a synchronous net.Pipe. It lets
// the console server and thousands of agent goroutines speak the real
// wire protocol with no sockets, no ports and no kernel buffering —
// the transport layer of the fleet simulator (internal/fleet).
//
// Because net.Pipe is fully synchronous, a MemNetwork adds no timing
// of its own: message interleaving is determined entirely by the
// goroutines driving the connections, which is what lets a seeded
// fleet run reproduce byte-identical protocol exchanges.
type MemNetwork struct {
	mu        sync.Mutex
	listeners map[string]*MemListener
}

// NewMemNetwork creates an empty in-process network.
func NewMemNetwork() *MemNetwork {
	return &MemNetwork{listeners: make(map[string]*MemListener)}
}

// memAddr is the net.Addr of a MemNetwork endpoint.
type memAddr string

// Network implements net.Addr.
func (memAddr) Network() string { return "mem" }

// String implements net.Addr.
func (a memAddr) String() string { return string(a) }

// MemListener implements net.Listener over a MemNetwork name.
type MemListener struct {
	network *MemNetwork
	addr    memAddr
	conns   chan net.Conn
	done    chan struct{}
	once    sync.Once
}

// Listen binds name on the network. Binding an already-bound name
// fails, like a port collision.
func (n *MemNetwork) Listen(name string) (*MemListener, error) {
	n.mu.Lock()
	defer n.mu.Unlock()
	if _, dup := n.listeners[name]; dup {
		return nil, fmt.Errorf("netsim: address %q already bound", name)
	}
	l := &MemListener{
		network: n,
		addr:    memAddr(name),
		conns:   make(chan net.Conn),
		done:    make(chan struct{}),
	}
	n.listeners[name] = l
	return l, nil
}

// Dial connects to the listener bound at name and returns the client
// end of the pipe. It fails if nothing is listening or the listener
// has closed.
func (n *MemNetwork) Dial(name string) (net.Conn, error) {
	return n.DialContext(context.Background(), name)
}

// DialContext is Dial bounded by ctx: a bound listener that never
// accepts (a hung peer) fails the dial with ctx's error instead of
// blocking forever — the shape a deadline-driven transport needs.
func (n *MemNetwork) DialContext(ctx context.Context, name string) (net.Conn, error) {
	n.mu.Lock()
	l := n.listeners[name]
	n.mu.Unlock()
	if l == nil {
		return nil, fmt.Errorf("netsim: dial %q: connection refused", name)
	}
	client, server := net.Pipe()
	select {
	case l.conns <- server:
		return client, nil
	case <-l.done:
		_ = client.Close()
		_ = server.Close()
		return nil, fmt.Errorf("netsim: dial %q: %w", name, net.ErrClosed)
	case <-ctx.Done():
		_ = client.Close()
		_ = server.Close()
		return nil, fmt.Errorf("netsim: dial %q: %w", name, ctx.Err())
	}
}

// Accept implements net.Listener.
func (l *MemListener) Accept() (net.Conn, error) {
	select {
	case conn := <-l.conns:
		return conn, nil
	case <-l.done:
		return nil, net.ErrClosed
	}
}

// Close implements net.Listener: it unbinds the name and fails all
// pending and future Dial/Accept calls. Close is idempotent.
func (l *MemListener) Close() error {
	l.once.Do(func() {
		close(l.done)
		l.network.mu.Lock()
		if l.network.listeners[string(l.addr)] == l {
			delete(l.network.listeners, string(l.addr))
		}
		l.network.mu.Unlock()
	})
	return nil
}

// Addr implements net.Listener.
func (l *MemListener) Addr() net.Addr { return l.addr }
