package netsim

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// drainListener accepts every connection and discards its bytes, the
// minimal always-reading peer (net.Pipe writes block until read).
func drainListener(ln *MemListener) {
	for {
		conn, err := ln.Accept()
		if err != nil {
			return
		}
		go func() { _, _ = io.Copy(io.Discard, conn) }()
	}
}

// runFaultSchedule drives a fixed script of dials and writes through
// a FaultNetwork and returns the outcome log: the observable fault
// schedule. The script advances the logical tick every 10 steps so
// offline windows are exercised alongside probabilistic faults.
func runFaultSchedule(t *testing.T, plan FaultPlan) []string {
	t.Helper()
	mem := NewMemNetwork()
	var tick atomic.Int64
	fnet, err := NewFaultNetwork(mem, plan, TickerFunc(func() int { return int(tick.Load()) }))
	if err != nil {
		t.Fatal(err)
	}
	ln, err := fnet.Listen("svc")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go drainListener(ln)

	var log []string
	for host := 0; host < 3; host++ {
		tick.Store(0)
		var conn net.Conn
		for i := 0; i < 40; i++ {
			tick.Store(int64(i / 10))
			if conn == nil {
				c, err := fnet.Dial(host, "svc")
				if err != nil {
					log = append(log, fmt.Sprintf("h%d s%d dial: %v", host, i, err))
					continue
				}
				conn = c
			}
			payload := bytes.Repeat([]byte{byte(host*41 + i)}, 1+(i*7)%64)
			n, err := conn.Write(payload)
			log = append(log, fmt.Sprintf("h%d s%d write: n=%d err=%v", host, i, n, err))
			if err != nil || errors.Is(err, ErrSevered) {
				conn = nil
				continue
			}
			// A dropped write reports success but severs; probe so the
			// schedule log captures it deterministically.
			if fc, ok := conn.(*FaultConn); ok && fc.isSevered() {
				log = append(log, fmt.Sprintf("h%d s%d severed", host, i))
				conn = nil
			}
		}
		if conn != nil {
			_ = conn.Close()
		}
	}
	return log
}

// TestFaultScheduleDeterministic pins the determinism contract: the
// same plan and seed reproduce the same fault schedule, and a
// different seed produces a different one.
func TestFaultScheduleDeterministic(t *testing.T) {
	plan := FaultPlan{
		Seed:      42,
		DropProb:  0.2,
		ResetProb: 0.15,
		Crashes:   []CrashWindow{{Host: 1, From: 1, To: 3}},
		Partitions: []Partition{
			{Hosts: []int{2}, From: 2, To: 3},
		},
	}
	a := runFaultSchedule(t, plan)
	b := runFaultSchedule(t, plan)
	if len(a) != len(b) {
		t.Fatalf("schedule lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("schedules diverge at step %d:\n  %s\n  %s", i, a[i], b[i])
		}
	}

	plan.Seed = 43
	c := runFaultSchedule(t, plan)
	same := len(a) == len(c)
	if same {
		for i := range a {
			if a[i] != c[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("different seeds produced identical fault schedules")
	}
}

// TestFaultConnPrefixDelivery pins the delivery invariant: whatever
// the drop/reset schedule does, the bytes the peer receives are a
// strict prefix of the bytes written — never reordered, duplicated,
// or corrupted mid-stream.
func TestFaultConnPrefixDelivery(t *testing.T) {
	for seed := uint64(1); seed <= 8; seed++ {
		mem := NewMemNetwork()
		fnet, err := NewFaultNetwork(mem, FaultPlan{
			Seed:      seed,
			DropProb:  0.15,
			ResetProb: 0.15,
		}, nil)
		if err != nil {
			t.Fatal(err)
		}
		ln, err := fnet.Listen("svc")
		if err != nil {
			t.Fatal(err)
		}

		var mu sync.Mutex
		var received bytes.Buffer
		done := make(chan struct{})
		go func() {
			defer close(done)
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			buf := make([]byte, 256)
			for {
				n, err := conn.Read(buf)
				mu.Lock()
				received.Write(buf[:n])
				mu.Unlock()
				if err != nil {
					return
				}
			}
		}()

		conn, err := fnet.Dial(7, "svc")
		if err != nil {
			t.Fatal(err)
		}
		var sent bytes.Buffer
		for i := 0; i < 300; i++ {
			payload := bytes.Repeat([]byte{byte(i)}, 1+(i*13)%97)
			sent.Write(payload)
			if _, err := conn.Write(payload); err != nil {
				break
			}
			if conn.(*FaultConn).isSevered() {
				break
			}
		}
		_ = conn.Close()
		_ = ln.Close()
		<-done

		mu.Lock()
		got := received.Bytes()
		mu.Unlock()
		want := sent.Bytes()
		if len(got) > len(want) {
			t.Fatalf("seed %d: received %d bytes, only %d written", seed, len(got), len(want))
		}
		if !bytes.Equal(got, want[:len(got)]) {
			t.Fatalf("seed %d: received stream is not a prefix of the written stream", seed)
		}
	}
}

// TestFaultOfflineWindows walks hosts through crash and partition
// windows and checks dials, writes and the classification helpers.
func TestFaultOfflineWindows(t *testing.T) {
	plan := FaultPlan{
		Crashes:    []CrashWindow{{Host: 1, From: 1, To: 3}},
		Partitions: []Partition{{Hosts: []int{2}, From: 2, To: -1}},
	}
	if plan.Heals() {
		t.Fatal("plan with a permanent partition reported as healing")
	}
	if from, byPart, ok := plan.PermanentLoss(2); !ok || !byPart || from != 2 {
		t.Fatalf("PermanentLoss(2) = (%d, %v, %v), want (2, true, true)", from, byPart, ok)
	}
	if _, _, ok := plan.PermanentLoss(1); ok {
		t.Fatal("host 1 heals but was classified as a permanent loss")
	}

	mem := NewMemNetwork()
	var tick atomic.Int64
	fnet, err := NewFaultNetwork(mem, plan, TickerFunc(func() int { return int(tick.Load()) }))
	if err != nil {
		t.Fatal(err)
	}
	ln, err := fnet.Listen("svc")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go drainListener(ln)

	dial := func(host int) (net.Conn, error) { return fnet.Dial(host, "svc") }

	// Tick 0: everyone healthy.
	c1, err := dial(1)
	if err != nil {
		t.Fatalf("host 1 dial at tick 0: %v", err)
	}
	if _, err := c1.Write([]byte("ok")); err != nil {
		t.Fatalf("host 1 write at tick 0: %v", err)
	}

	// Tick 1: host 1 crashed — live conn severs, dials refused.
	tick.Store(1)
	if _, err := c1.Write([]byte("x")); !errors.Is(err, ErrHostOffline) {
		t.Fatalf("host 1 write in crash window: err=%v, want ErrHostOffline", err)
	}
	if _, err := dial(1); !errors.Is(err, ErrHostOffline) {
		t.Fatalf("host 1 dial in crash window: err=%v, want ErrHostOffline", err)
	}
	if c, err := dial(2); err != nil {
		t.Fatalf("host 2 dial at tick 1: %v", err)
	} else {
		_ = c.Close()
	}

	// Tick 2: host 2 permanently partitioned.
	tick.Store(2)
	if _, err := dial(2); !errors.Is(err, ErrHostOffline) {
		t.Fatalf("host 2 dial at tick 2: err=%v, want ErrHostOffline", err)
	}

	// Tick 3: host 1 restarted; host 2 still gone.
	tick.Store(3)
	c1, err = dial(1)
	if err != nil {
		t.Fatalf("host 1 dial after restart: %v", err)
	}
	if _, err := c1.Write([]byte("back")); err != nil {
		t.Fatalf("host 1 write after restart: %v", err)
	}
	_ = c1.Close()
	if _, err := dial(2); !errors.Is(err, ErrHostOffline) {
		t.Fatalf("host 2 dial at tick 3: err=%v, want ErrHostOffline", err)
	}
}

// TestFaultPlanValidate rejects malformed plans.
func TestFaultPlanValidate(t *testing.T) {
	bad := map[string]FaultPlan{
		"drop>1":      {DropProb: 1.5},
		"reset<0":     {ResetProb: -0.1},
		"sum>1":       {DropProb: 0.7, ResetProb: 0.7},
		"neg delay":   {Delay: -time.Second},
		"neg heal":    {HealTick: -1},
		"empty part":  {Partitions: []Partition{{From: 3, To: 3}}},
		"neg host":    {Partitions: []Partition{{Hosts: []int{-1}, From: 0, To: 1}}},
		"empty crash": {Crashes: []CrashWindow{{Host: 0, From: 2, To: 1}}},
	}
	for name, plan := range bad {
		if err := plan.Validate(); err == nil {
			t.Errorf("%s: Validate accepted %+v", name, plan)
		}
	}
	good := FaultPlan{Seed: 1, DropProb: 0.3, ResetProb: 0.2, Delay: time.Millisecond,
		Partitions: []Partition{{From: 1, To: -1}}, Crashes: []CrashWindow{{Host: 3, From: 0, To: 2}}}
	if err := good.Validate(); err != nil {
		t.Errorf("valid plan rejected: %v", err)
	}
	var nilPlan *FaultPlan
	if err := nilPlan.Validate(); err != nil {
		t.Errorf("nil plan rejected: %v", err)
	}
	if !nilPlan.Heals() || nilPlan.OfflineAt(0, 0) {
		t.Error("nil plan should be a perfect network")
	}
}
