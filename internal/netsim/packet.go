// Package netsim models the packet stream an end-host capture tool
// (the paper used a windump wrapper) would deliver to the HIDS
// pipeline, plus a compact binary on-disk trace format.
//
// The design follows gopacket's conventions where they apply: packet
// addressing is expressed through small, hashable value types
// (Endpoint, FlowKey) that can be used directly as map keys, and the
// decode path is allocation-free (DecodeRecord fills a caller-owned
// struct).
package netsim

import (
	"fmt"
	"time"
)

// Proto identifies the transport protocol of a packet record.
type Proto uint8

// Transport protocols tracked by the pipeline. Only TCP and UDP
// matter for the paper's six features; others are carried through and
// ignored by the feature extractor.
const (
	ProtoUnknown Proto = 0
	ProtoTCP     Proto = 6
	ProtoUDP     Proto = 17
	ProtoICMP    Proto = 1
)

// String returns the conventional protocol name.
func (p Proto) String() string {
	switch p {
	case ProtoTCP:
		return "tcp"
	case ProtoUDP:
		return "udp"
	case ProtoICMP:
		return "icmp"
	default:
		return fmt.Sprintf("proto(%d)", uint8(p))
	}
}

// TCPFlags is the TCP flag byte (FIN, SYN, RST, PSH, ACK, URG).
type TCPFlags uint8

// TCP flag bits, matching the on-the-wire bit positions.
const (
	FlagFIN TCPFlags = 1 << iota
	FlagSYN
	FlagRST
	FlagPSH
	FlagACK
	FlagURG
)

// Has reports whether all bits in mask are set.
func (f TCPFlags) Has(mask TCPFlags) bool { return f&mask == mask }

// IsSYN reports whether the packet is an initial SYN (SYN set, ACK
// clear) — the event counted by the num-TCP-SYN feature and used to
// detect outbound connection attempts.
func (f TCPFlags) IsSYN() bool { return f.Has(FlagSYN) && !f.Has(FlagACK) }

// String renders the set flags in tcpdump style, e.g. "S", "SA", "F".
func (f TCPFlags) String() string {
	if f == 0 {
		return "."
	}
	var b []byte
	for _, fl := range []struct {
		bit TCPFlags
		ch  byte
	}{
		{FlagSYN, 'S'}, {FlagACK, 'A'}, {FlagFIN, 'F'},
		{FlagRST, 'R'}, {FlagPSH, 'P'}, {FlagURG, 'U'},
	} {
		if f.Has(fl.bit) {
			b = append(b, fl.ch)
		}
	}
	return string(b)
}

// Addr is an IPv4 address as a comparable array (usable as a map
// key, like gopacket's fixed-size Endpoint raw bytes).
type Addr [4]byte

// String renders dotted-quad notation.
func (a Addr) String() string {
	return fmt.Sprintf("%d.%d.%d.%d", a[0], a[1], a[2], a[3])
}

// AddrFrom4 builds an Addr from four octets.
func AddrFrom4(a, b, c, d byte) Addr { return Addr{a, b, c, d} }

// AddrFromUint32 builds an Addr from a big-endian uint32, convenient
// for synthesizing distinct destinations.
func AddrFromUint32(v uint32) Addr {
	return Addr{byte(v >> 24), byte(v >> 16), byte(v >> 8), byte(v)}
}

// Uint32 returns the address as a big-endian uint32.
func (a Addr) Uint32() uint32 {
	return uint32(a[0])<<24 | uint32(a[1])<<16 | uint32(a[2])<<8 | uint32(a[3])
}

// Endpoint is one side of a conversation: address plus transport
// port. It is a comparable value type usable as a map key.
type Endpoint struct {
	Addr Addr
	Port uint16
}

// String renders "a.b.c.d:port".
func (e Endpoint) String() string { return fmt.Sprintf("%s:%d", e.Addr, e.Port) }

// FlowKey identifies a unidirectional five-tuple flow. It is
// comparable and usable as a map key; Reverse gives the opposite
// direction (gopacket's Flow.Reverse analogue).
type FlowKey struct {
	Proto    Proto
	Src, Dst Endpoint
}

// Reverse returns the key of the opposite direction.
func (k FlowKey) Reverse() FlowKey {
	return FlowKey{Proto: k.Proto, Src: k.Dst, Dst: k.Src}
}

// String renders "tcp 1.2.3.4:555->5.6.7.8:80".
func (k FlowKey) String() string {
	return fmt.Sprintf("%s %s->%s", k.Proto, k.Src, k.Dst)
}

// Well-known destination ports used for feature classification,
// matching the paper's Bro-derived features ("TCP connections on port
// 80", DNS connections).
const (
	PortDNS   = 53
	PortHTTP  = 80
	PortHTTPS = 443
)

// Record is one captured packet header: everything the behavioral
// feature extractor needs, nothing more. It is the unit of the .etr
// trace format.
type Record struct {
	// Time is the capture timestamp in microseconds since the Unix
	// epoch (the resolution of classic pcap).
	Time int64
	// Src and Dst are the packet's transport endpoints.
	Src, Dst Endpoint
	// Proto is the transport protocol.
	Proto Proto
	// Flags carries TCP flags; zero for non-TCP packets.
	Flags TCPFlags
	// Length is the IP-layer packet length in bytes.
	Length uint16
}

// Timestamp returns the capture time as a time.Time in UTC.
func (r Record) Timestamp() time.Time {
	return time.UnixMicro(r.Time).UTC()
}

// Key returns the unidirectional flow key of the packet.
func (r Record) Key() FlowKey {
	return FlowKey{Proto: r.Proto, Src: r.Src, Dst: r.Dst}
}

// IsDNS reports whether the packet is addressed to the DNS port (UDP
// or TCP port 53), the definition behind num-DNS-connections.
func (r Record) IsDNS() bool { return r.Dst.Port == PortDNS }

// IsHTTP reports whether the packet is TCP to port 80, the definition
// behind num-HTTP-connections.
func (r Record) IsHTTP() bool { return r.Proto == ProtoTCP && r.Dst.Port == PortHTTP }

// String renders a one-line tcpdump-ish summary.
func (r Record) String() string {
	return fmt.Sprintf("%s %s %s->%s flags=%s len=%d",
		r.Timestamp().Format("15:04:05.000000"), r.Proto, r.Src, r.Dst, r.Flags, r.Length)
}
