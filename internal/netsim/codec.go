package netsim

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// The .etr ("end-host trace") format is a little-endian binary stream:
//
//	header (16 bytes):
//	  magic   [4]byte  "ETR1"
//	  version uint16   currently 1
//	  flags   uint16   reserved, zero
//	  hostID  uint32   end-host identifier
//	  reserved uint32  zero
//	records (24 bytes each):
//	  time   int64   microseconds since Unix epoch
//	  srcIP  [4]byte
//	  dstIP  [4]byte
//	  srcPort uint16
//	  dstPort uint16
//	  proto  uint8
//	  flags  uint8
//	  length uint16
//
// The format is append-friendly (no record count in the header) so a
// capture agent can stream records to disk and a reader can consume a
// file that is still being written.

const (
	traceMagic   = "ETR1"
	traceVersion = 1
	headerSize   = 16
	recordSize   = 24
)

// Errors returned by the trace codec.
var (
	ErrBadMagic    = errors.New("netsim: not an ETR1 trace file")
	ErrBadVersion  = errors.New("netsim: unsupported trace version")
	ErrShortRecord = errors.New("netsim: truncated record")
)

// EncodeRecord serializes r into buf, which must be at least
// RecordSize bytes. It returns the number of bytes written.
func EncodeRecord(buf []byte, r Record) int {
	_ = buf[recordSize-1] // bounds hint
	binary.LittleEndian.PutUint64(buf[0:8], uint64(r.Time))
	copy(buf[8:12], r.Src.Addr[:])
	copy(buf[12:16], r.Dst.Addr[:])
	binary.LittleEndian.PutUint16(buf[16:18], r.Src.Port)
	binary.LittleEndian.PutUint16(buf[18:20], r.Dst.Port)
	buf[20] = byte(r.Proto)
	buf[21] = byte(r.Flags)
	binary.LittleEndian.PutUint16(buf[22:24], r.Length)
	return recordSize
}

// DecodeRecord parses a record from buf into r. buf must hold at
// least RecordSize bytes.
func DecodeRecord(buf []byte, r *Record) {
	_ = buf[recordSize-1]
	r.Time = int64(binary.LittleEndian.Uint64(buf[0:8]))
	copy(r.Src.Addr[:], buf[8:12])
	copy(r.Dst.Addr[:], buf[12:16])
	r.Src.Port = binary.LittleEndian.Uint16(buf[16:18])
	r.Dst.Port = binary.LittleEndian.Uint16(buf[18:20])
	r.Proto = Proto(buf[20])
	r.Flags = TCPFlags(buf[21])
	r.Length = binary.LittleEndian.Uint16(buf[22:24])
}

// RecordSize is the fixed on-disk size of one packet record.
const RecordSize = recordSize

// TraceWriter streams packet records to an io.Writer in .etr format.
type TraceWriter struct {
	w     *bufio.Writer
	buf   [recordSize]byte
	count int64
	err   error
}

// NewTraceWriter writes the file header for hostID and returns a
// writer positioned at the first record.
func NewTraceWriter(w io.Writer, hostID uint32) (*TraceWriter, error) {
	bw := bufio.NewWriterSize(w, 64<<10)
	var hdr [headerSize]byte
	copy(hdr[0:4], traceMagic)
	binary.LittleEndian.PutUint16(hdr[4:6], traceVersion)
	binary.LittleEndian.PutUint16(hdr[6:8], 0)
	binary.LittleEndian.PutUint32(hdr[8:12], hostID)
	if _, err := bw.Write(hdr[:]); err != nil {
		return nil, fmt.Errorf("netsim: writing trace header: %w", err)
	}
	return &TraceWriter{w: bw}, nil
}

// Write appends one record. Records should be written in
// non-decreasing time order; the writer does not enforce this, but
// readers and the feature extractor assume it.
func (tw *TraceWriter) Write(r Record) error {
	if tw.err != nil {
		return tw.err
	}
	EncodeRecord(tw.buf[:], r)
	if _, err := tw.w.Write(tw.buf[:]); err != nil {
		tw.err = fmt.Errorf("netsim: writing record: %w", err)
		return tw.err
	}
	tw.count++
	return nil
}

// Count returns the number of records written so far.
func (tw *TraceWriter) Count() int64 { return tw.count }

// Flush flushes buffered records to the underlying writer.
func (tw *TraceWriter) Flush() error {
	if tw.err != nil {
		return tw.err
	}
	if err := tw.w.Flush(); err != nil {
		tw.err = fmt.Errorf("netsim: flushing trace: %w", err)
	}
	return tw.err
}

// TraceReader streams packet records from an io.Reader in .etr
// format.
type TraceReader struct {
	r      *bufio.Reader
	hostID uint32
	buf    [recordSize]byte
}

// NewTraceReader validates the header and returns a reader positioned
// at the first record.
func NewTraceReader(r io.Reader) (*TraceReader, error) {
	br := bufio.NewReaderSize(r, 64<<10)
	var hdr [headerSize]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("netsim: reading trace header: %w", err)
	}
	if string(hdr[0:4]) != traceMagic {
		return nil, ErrBadMagic
	}
	if v := binary.LittleEndian.Uint16(hdr[4:6]); v != traceVersion {
		return nil, fmt.Errorf("%w: %d", ErrBadVersion, v)
	}
	return &TraceReader{
		r:      br,
		hostID: binary.LittleEndian.Uint32(hdr[8:12]),
	}, nil
}

// HostID returns the end-host identifier from the file header.
func (tr *TraceReader) HostID() uint32 { return tr.hostID }

// Next reads the next record into rec. It returns io.EOF at a clean
// end of stream and ErrShortRecord if the stream ends mid-record.
func (tr *TraceReader) Next(rec *Record) error {
	n, err := io.ReadFull(tr.r, tr.buf[:])
	switch {
	case err == io.EOF:
		return io.EOF
	case err == io.ErrUnexpectedEOF:
		return fmt.Errorf("%w: got %d of %d bytes", ErrShortRecord, n, recordSize)
	case err != nil:
		return fmt.Errorf("netsim: reading record: %w", err)
	}
	DecodeRecord(tr.buf[:], rec)
	return nil
}

// ReadAll drains the remaining records. Convenient for tests and
// small traces; large traces should stream with Next.
func (tr *TraceReader) ReadAll() ([]Record, error) {
	var out []Record
	for {
		var rec Record
		err := tr.Next(&rec)
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return out, err
		}
		out = append(out, rec)
	}
}
