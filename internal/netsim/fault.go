package netsim

import (
	"context"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"repro/internal/xrand"
)

// Seeded fault injection over the in-process fabric.
//
// A FaultNetwork wraps a MemNetwork and applies a declarative
// FaultPlan to every connection a host dials through it: per-write
// drop and reset probabilities, fixed delay plus seeded jitter, and
// scheduled offline windows (partitions over host sets, per-host
// crash/restart windows). Time is the fleet's logical tick (a Ticker,
// usually the fleet barrier clock), never the wall clock, so a fault
// schedule is a pure function of (plan, seed, per-host connection
// index, per-connection write index, tick) — the same plan and seed
// reproduce the same fault schedule byte for byte, regardless of
// goroutine interleaving or machine speed.
//
// Faults act on the dialer's edge only: probabilistic faults fire on
// the host's writes, offline windows refuse the host's dials and
// sever the host's reads and writes. Severing closes the underlying
// pipe, so the un-wrapped peer (the console) observes an ordinary
// EOF/closed-pipe failure — exactly what a kernel would deliver.
//
// The delivery invariant the protocol layers rely on: the byte stream
// a peer receives from a FaultConn is always a strict prefix of the
// byte stream written to it. A dropped write is swallowed whole and
// immediately severs the connection (the writer sees success, then a
// dead link — a lost segment after the local send buffer accepted
// it); a reset delivers a seeded-length prefix of the write and
// severs. Nothing is ever reordered, duplicated, or corrupted
// in-stream, so a length-prefixed codec on top either decodes whole
// frames or fails cleanly — never a torn frame. fuzz_test.go pins
// this.

// Ticker supplies logical time to a FaultNetwork. The fleet's barrier
// clock implements it; tests use TickerFunc. A nil Ticker pins time
// at tick 0.
type Ticker interface {
	Tick() int
}

// TickerFunc adapts a function to the Ticker interface.
type TickerFunc func() int

// Tick implements Ticker.
func (f TickerFunc) Tick() int { return f() }

// Partition takes a set of hosts offline for a window of logical
// ticks: their dials are refused and their established connections
// sever on the next read or write. An empty host set partitions every
// host (a console-side blackout).
type Partition struct {
	// Hosts lists the partitioned host indices; empty means all hosts.
	Hosts []int
	// From is the first tick of the window (inclusive).
	From int
	// To is the first tick after the window (exclusive); negative
	// means the partition never heals.
	To int
}

// CrashWindow models one agent's process crash and restart: the host
// is offline for ticks [From, To). Negative To means the host never
// restarts.
type CrashWindow struct {
	Host int
	From int
	To   int
}

// FaultPlan declares a deterministic fault schedule. The zero value
// is a perfect network.
type FaultPlan struct {
	// Seed drives every probabilistic decision (drops, resets, reset
	// prefix lengths, jitter). Independent per-connection streams are
	// derived from it, so decision sequences do not depend on how
	// connections interleave.
	Seed uint64

	// DropProb is the per-write probability that the write is
	// swallowed (reported as successful) and the connection severed.
	DropProb float64
	// ResetProb is the per-write probability that the connection is
	// reset mid-stream: a seeded-length prefix of the write is
	// delivered, then the connection severs with an error.
	ResetProb float64
	// Delay is added to every write while probabilistic faults are
	// active; Jitter adds a seeded uniform extra in [0, Jitter).
	Delay  time.Duration
	Jitter time.Duration
	// HealTick, when positive, stops all probabilistic faults (drops,
	// resets, delay, jitter) once the tick reaches it; zero means they
	// run forever. Note that probabilistic faults never permanently
	// sever a retried protocol — only offline windows can — so plans
	// without permanent windows converge even with HealTick zero.
	HealTick int

	// Partitions and Crashes schedule offline windows.
	Partitions []Partition
	Crashes    []CrashWindow
}

// Errors surfaced by the fault layer.
var (
	// ErrHostOffline reports a dial or I/O attempt inside an offline
	// window (partition or crash).
	ErrHostOffline = errors.New("netsim: host offline")
	// ErrFaultReset reports a seeded mid-stream connection reset.
	ErrFaultReset = errors.New("netsim: connection reset by fault plan")
	// ErrSevered reports I/O on a connection a fault already severed.
	ErrSevered = errors.New("netsim: connection severed by fault plan")
)

// Validate checks the plan's probabilities and windows.
func (p *FaultPlan) Validate() error {
	if p == nil {
		return nil
	}
	if p.DropProb < 0 || p.DropProb > 1 {
		return fmt.Errorf("netsim: DropProb %v outside [0, 1]", p.DropProb)
	}
	if p.ResetProb < 0 || p.ResetProb > 1 {
		return fmt.Errorf("netsim: ResetProb %v outside [0, 1]", p.ResetProb)
	}
	if p.DropProb+p.ResetProb > 1 {
		return fmt.Errorf("netsim: DropProb+ResetProb %v exceeds 1", p.DropProb+p.ResetProb)
	}
	if p.Delay < 0 || p.Jitter < 0 {
		return fmt.Errorf("netsim: negative delay or jitter")
	}
	if p.HealTick < 0 {
		return fmt.Errorf("netsim: negative HealTick %d", p.HealTick)
	}
	for i, w := range p.Partitions {
		if w.From < 0 {
			return fmt.Errorf("netsim: partition %d starts at negative tick %d", i, w.From)
		}
		if w.To >= 0 && w.To <= w.From {
			return fmt.Errorf("netsim: partition %d window [%d, %d) is empty", i, w.From, w.To)
		}
		for _, h := range w.Hosts {
			if h < 0 {
				return fmt.Errorf("netsim: partition %d lists negative host %d", i, h)
			}
		}
	}
	for i, w := range p.Crashes {
		if w.Host < 0 {
			return fmt.Errorf("netsim: crash %d on negative host %d", i, w.Host)
		}
		if w.From < 0 {
			return fmt.Errorf("netsim: crash %d starts at negative tick %d", i, w.From)
		}
		if w.To >= 0 && w.To <= w.From {
			return fmt.Errorf("netsim: crash %d window [%d, %d) is empty", i, w.From, w.To)
		}
	}
	return nil
}

// Heals reports whether every offline window eventually ends. A
// healing plan may still run probabilistic faults forever (see
// HealTick): retried protocols make progress through those, so only
// permanent offline windows preclude convergence with a fault-free
// run.
func (p *FaultPlan) Heals() bool {
	if p == nil {
		return true
	}
	for _, w := range p.Partitions {
		if w.To < 0 {
			return false
		}
	}
	for _, w := range p.Crashes {
		if w.To < 0 {
			return false
		}
	}
	return true
}

// OfflineAt reports whether host is inside an offline window at tick.
func (p *FaultPlan) OfflineAt(host, tick int) bool {
	if p == nil {
		return false
	}
	for _, w := range p.Partitions {
		if tick >= w.From && (w.To < 0 || tick < w.To) && w.covers(host) {
			return true
		}
	}
	for _, w := range p.Crashes {
		if w.Host == host && tick >= w.From && (w.To < 0 || tick < w.To) {
			return true
		}
	}
	return false
}

func (w Partition) covers(host int) bool {
	if len(w.Hosts) == 0 {
		return true
	}
	for _, h := range w.Hosts {
		if h == host {
			return true
		}
	}
	return false
}

// PermanentLoss reports whether host goes offline forever: ok is true
// when some never-healing window covers it, from is the earliest such
// window's start tick, and byPartition distinguishes a partition from
// a crash (a crash wins a tie — the process is gone either way).
func (p *FaultPlan) PermanentLoss(host int) (from int, byPartition, ok bool) {
	if p == nil {
		return 0, false, false
	}
	for _, w := range p.Crashes {
		if w.Host == host && w.To < 0 && (!ok || w.From <= from) {
			from, byPartition, ok = w.From, false, true
		}
	}
	for _, w := range p.Partitions {
		if w.To < 0 && w.covers(host) && (!ok || w.From < from) {
			from, byPartition, ok = w.From, true, true
		}
	}
	return from, byPartition, ok
}

// injecting reports whether probabilistic faults are active at tick.
func (p *FaultPlan) injecting(tick int) bool {
	if p.DropProb == 0 && p.ResetProb == 0 && p.Delay == 0 && p.Jitter == 0 {
		return false
	}
	return p.HealTick <= 0 || tick < p.HealTick
}

// FaultNetwork applies a FaultPlan to connections dialed through it.
// Listen passes through to the underlying MemNetwork (the console's
// edge is not faulted; the fault model is the agents' access network).
type FaultNetwork struct {
	mem    *MemNetwork
	plan   FaultPlan
	ticker Ticker

	mu    sync.Mutex
	conns map[int]uint64 // successful dials per host: the RNG stream index
}

// NewFaultNetwork wraps mem with plan. ticker supplies logical time
// (nil pins tick 0).
func NewFaultNetwork(mem *MemNetwork, plan FaultPlan, ticker Ticker) (*FaultNetwork, error) {
	if err := plan.Validate(); err != nil {
		return nil, err
	}
	return &FaultNetwork{
		mem:    mem,
		plan:   plan,
		ticker: ticker,
		conns:  make(map[int]uint64),
	}, nil
}

// Plan returns the network's fault plan.
func (n *FaultNetwork) Plan() FaultPlan { return n.plan }

// Listen binds name on the underlying network, unfaulted.
func (n *FaultNetwork) Listen(name string) (*MemListener, error) {
	return n.mem.Listen(name)
}

func (n *FaultNetwork) tick() int {
	if n.ticker == nil {
		return 0
	}
	return n.ticker.Tick()
}

// Dial connects host to the listener at name through the fault layer.
// Dials inside an offline window are refused; a successful dial
// returns a FaultConn whose probabilistic fault stream is seeded by
// (plan seed, host, connection index) — failed dials do not consume a
// stream index, so retry counts never skew the schedule.
func (n *FaultNetwork) Dial(host int, name string) (net.Conn, error) {
	return n.DialContext(context.Background(), host, name)
}

// DialContext is Dial bounded by ctx (see MemNetwork.DialContext).
func (n *FaultNetwork) DialContext(ctx context.Context, host int, name string) (net.Conn, error) {
	if tick := n.tick(); n.plan.OfflineAt(host, tick) {
		return nil, fmt.Errorf("netsim: dial %q from host %d at tick %d: %w", name, host, tick, ErrHostOffline)
	}
	conn, err := n.mem.DialContext(ctx, name)
	if err != nil {
		return nil, err
	}
	n.mu.Lock()
	idx := n.conns[host]
	n.conns[host]++
	n.mu.Unlock()
	return &FaultConn{
		Conn: conn,
		net:  n,
		host: host,
		rng:  xrand.New(mix64(mix64(n.plan.Seed, uint64(host)+0x9e37), idx+0x79b9)),
	}, nil
}

// Dialer returns a dial closure for one host, the shape agent retry
// loops consume.
func (n *FaultNetwork) Dialer(host int, name string) func() (net.Conn, error) {
	return func() (net.Conn, error) { return n.Dial(host, name) }
}

// mix64 is a splitmix-style finalizer combining h and v into a well
// mixed 64-bit value (xrand's seeding mixer is unexported; any strong
// mixer serves, it only has to be deterministic).
func mix64(h, v uint64) uint64 {
	h ^= v + 0x9e3779b97f4a7c15 + (h << 6) + (h >> 2)
	h ^= h >> 33
	h *= 0xff51afd7ed558ccd
	h ^= h >> 33
	h *= 0xc4ceb9fe1a85ec53
	h ^= h >> 33
	return h
}

// FaultConn is one faulted connection: the client end of a MemNetwork
// pipe with the plan's faults applied to this host's edge.
type FaultConn struct {
	net.Conn
	net  *FaultNetwork
	host int

	mu      sync.Mutex // guards rng and severed
	rng     *xrand.Source
	severed bool
}

// sever kills the connection: both ends fail from here on (the peer
// sees EOF / closed pipe).
func (c *FaultConn) sever() {
	c.mu.Lock()
	c.severed = true
	c.mu.Unlock()
	_ = c.Conn.Close()
}

func (c *FaultConn) isSevered() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.severed
}

// Write applies the plan to one write. Decisions draw from the
// connection's seeded stream in a fixed order (fault uniform, jitter
// uniform, reset cut), so the fault schedule is identical across runs.
func (c *FaultConn) Write(p []byte) (int, error) {
	if c.isSevered() {
		return 0, ErrSevered
	}
	tick := c.net.tick()
	if c.net.plan.OfflineAt(c.host, tick) {
		c.sever()
		return 0, fmt.Errorf("netsim: write from host %d at tick %d: %w", c.host, tick, ErrHostOffline)
	}
	plan := &c.net.plan
	if !plan.injecting(tick) {
		return c.Conn.Write(p)
	}
	var (
		u     = -1.0
		delay = plan.Delay
		cut   int
	)
	c.mu.Lock()
	if plan.DropProb > 0 || plan.ResetProb > 0 {
		u = c.rng.Float64()
	}
	if plan.Jitter > 0 {
		delay += time.Duration(c.rng.Float64() * float64(plan.Jitter))
	}
	if u >= 0 && u >= plan.DropProb && u < plan.DropProb+plan.ResetProb && len(p) > 0 {
		cut = c.rng.Intn(len(p))
	}
	c.mu.Unlock()
	if delay > 0 {
		time.Sleep(delay)
	}
	switch {
	case u >= 0 && u < plan.DropProb:
		// Swallow the whole write and sever: the writer's transport
		// accepted the bytes, the peer never sees them.
		c.sever()
		return len(p), nil
	case u >= 0 && u < plan.DropProb+plan.ResetProb:
		n, _ := c.Conn.Write(p[:cut])
		c.sever()
		return n, fmt.Errorf("netsim: write from host %d: %w", c.host, ErrFaultReset)
	}
	return c.Conn.Write(p)
}

// Read forwards to the pipe, severing (and discarding the read) when
// the host is inside an offline window — a partitioned host receives
// nothing, even bytes the peer pushed before the partition was
// observed on this edge.
func (c *FaultConn) Read(p []byte) (int, error) {
	if c.isSevered() {
		return 0, ErrSevered
	}
	n, err := c.Conn.Read(p)
	if tick := c.net.tick(); c.net.plan.OfflineAt(c.host, tick) {
		c.sever()
		return 0, fmt.Errorf("netsim: read on host %d at tick %d: %w", c.host, tick, ErrHostOffline)
	}
	return n, err
}

// Close severs without consulting the plan (an orderly local close).
func (c *FaultConn) Close() error {
	c.mu.Lock()
	c.severed = true
	c.mu.Unlock()
	return c.Conn.Close()
}
