package netsim

import (
	"bytes"
	"errors"
	"io"
	"strings"
	"testing"
	"testing/quick"
	"time"
)

func sampleRecord() Record {
	return Record{
		Time:   1172707200000000, // 2007-03-01 00:00:00 UTC, inside the paper's Q1 2007 window
		Src:    Endpoint{Addr: AddrFrom4(10, 1, 2, 3), Port: 49152},
		Dst:    Endpoint{Addr: AddrFrom4(93, 184, 216, 34), Port: 80},
		Proto:  ProtoTCP,
		Flags:  FlagSYN,
		Length: 60,
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	var buf [RecordSize]byte
	want := sampleRecord()
	if n := EncodeRecord(buf[:], want); n != RecordSize {
		t.Fatalf("EncodeRecord wrote %d bytes", n)
	}
	var got Record
	DecodeRecord(buf[:], &got)
	if got != want {
		t.Fatalf("round trip: got %+v, want %+v", got, want)
	}
}

func TestEncodeDecodeProperty(t *testing.T) {
	f := func(ts int64, sa, da [4]byte, sp, dp uint16, proto, flags uint8, length uint16) bool {
		want := Record{
			Time:   ts,
			Src:    Endpoint{Addr: sa, Port: sp},
			Dst:    Endpoint{Addr: da, Port: dp},
			Proto:  Proto(proto),
			Flags:  TCPFlags(flags),
			Length: length,
		}
		var buf [RecordSize]byte
		EncodeRecord(buf[:], want)
		var got Record
		DecodeRecord(buf[:], &got)
		return got == want
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTraceWriterReaderRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	tw, err := NewTraceWriter(&buf, 42)
	if err != nil {
		t.Fatal(err)
	}
	recs := make([]Record, 100)
	base := sampleRecord()
	for i := range recs {
		recs[i] = base
		recs[i].Time += int64(i) * 1000
		recs[i].Dst.Addr = AddrFromUint32(uint32(i))
		if err := tw.Write(recs[i]); err != nil {
			t.Fatal(err)
		}
	}
	if tw.Count() != 100 {
		t.Fatalf("Count = %d", tw.Count())
	}
	if err := tw.Flush(); err != nil {
		t.Fatal(err)
	}

	tr, err := NewTraceReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	if tr.HostID() != 42 {
		t.Fatalf("HostID = %d", tr.HostID())
	}
	got, err := tr.ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(recs) {
		t.Fatalf("read %d records, wrote %d", len(got), len(recs))
	}
	for i := range recs {
		if got[i] != recs[i] {
			t.Fatalf("record %d: got %+v, want %+v", i, got[i], recs[i])
		}
	}
}

func TestTraceReaderBadMagic(t *testing.T) {
	_, err := NewTraceReader(strings.NewReader("NOTATRACEFILE___"))
	if !errors.Is(err, ErrBadMagic) {
		t.Fatalf("err = %v, want ErrBadMagic", err)
	}
}

func TestTraceReaderShortHeader(t *testing.T) {
	if _, err := NewTraceReader(strings.NewReader("ETR1")); err == nil {
		t.Fatal("short header accepted")
	}
}

func TestTraceReaderBadVersion(t *testing.T) {
	var buf bytes.Buffer
	tw, _ := NewTraceWriter(&buf, 1)
	_ = tw.Flush()
	b := buf.Bytes()
	b[4] = 99 // corrupt version
	_, err := NewTraceReader(bytes.NewReader(b))
	if !errors.Is(err, ErrBadVersion) {
		t.Fatalf("err = %v, want ErrBadVersion", err)
	}
}

func TestTraceReaderTruncatedRecord(t *testing.T) {
	var buf bytes.Buffer
	tw, _ := NewTraceWriter(&buf, 1)
	_ = tw.Write(sampleRecord())
	_ = tw.Flush()
	b := buf.Bytes()[:buf.Len()-5] // drop last 5 bytes
	tr, err := NewTraceReader(bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	var rec Record
	err = tr.Next(&rec)
	if !errors.Is(err, ErrShortRecord) {
		t.Fatalf("err = %v, want ErrShortRecord", err)
	}
}

func TestTraceReaderEmptyTrace(t *testing.T) {
	var buf bytes.Buffer
	tw, _ := NewTraceWriter(&buf, 7)
	_ = tw.Flush()
	tr, err := NewTraceReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	var rec Record
	if err := tr.Next(&rec); err != io.EOF {
		t.Fatalf("err = %v, want io.EOF", err)
	}
}

func TestWriterPersistsErrors(t *testing.T) {
	w := &failAfter{n: 0}
	tw, err := NewTraceWriter(w, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Writes go to a 64 KiB bufio buffer, so force the failure via Flush.
	_ = tw.Write(sampleRecord())
	if err := tw.Flush(); err == nil {
		t.Fatal("flush to failing writer succeeded")
	}
	if err := tw.Write(sampleRecord()); err == nil {
		t.Fatal("write after error succeeded")
	}
}

type failAfter struct{ n int }

func (f *failAfter) Write(p []byte) (int, error) {
	if f.n <= 0 {
		return 0, errors.New("disk full")
	}
	f.n--
	return len(p), nil
}

func TestFlagsPredicates(t *testing.T) {
	if !FlagSYN.IsSYN() {
		t.Error("pure SYN not recognized")
	}
	if (FlagSYN | FlagACK).IsSYN() {
		t.Error("SYN-ACK misclassified as initial SYN")
	}
	if FlagACK.IsSYN() {
		t.Error("ACK misclassified as SYN")
	}
	if !(FlagSYN | FlagACK).Has(FlagACK) {
		t.Error("Has(ACK) failed")
	}
}

func TestFlagsString(t *testing.T) {
	cases := map[TCPFlags]string{
		0:                 ".",
		FlagSYN:           "S",
		FlagSYN | FlagACK: "SA",
		FlagFIN:           "F",
		FlagRST:           "R",
	}
	for f, want := range cases {
		if got := f.String(); got != want {
			t.Errorf("%08b.String() = %q, want %q", uint8(f), got, want)
		}
	}
}

func TestAddrConversions(t *testing.T) {
	a := AddrFrom4(192, 168, 1, 200)
	if a.String() != "192.168.1.200" {
		t.Fatalf("String = %s", a)
	}
	if got := AddrFromUint32(a.Uint32()); got != a {
		t.Fatalf("uint32 round trip: %v != %v", got, a)
	}
}

func TestFlowKeyReverse(t *testing.T) {
	r := sampleRecord()
	k := r.Key()
	rev := k.Reverse()
	if rev.Src != k.Dst || rev.Dst != k.Src || rev.Proto != k.Proto {
		t.Fatalf("Reverse = %+v", rev)
	}
	if rev.Reverse() != k {
		t.Fatal("double reverse is not identity")
	}
}

func TestFlowKeyUsableAsMapKey(t *testing.T) {
	m := map[FlowKey]int{}
	k := sampleRecord().Key()
	m[k]++
	m[k]++
	m[k.Reverse()]++
	if m[k] != 2 || m[k.Reverse()] != 1 {
		t.Fatalf("map counts: %v", m)
	}
}

func TestRecordClassifiers(t *testing.T) {
	r := sampleRecord()
	if !r.IsHTTP() {
		t.Error("port-80 TCP not classified HTTP")
	}
	if r.IsDNS() {
		t.Error("port-80 classified DNS")
	}
	dns := r
	dns.Proto = ProtoUDP
	dns.Dst.Port = PortDNS
	if !dns.IsDNS() {
		t.Error("port-53 UDP not classified DNS")
	}
	udp80 := r
	udp80.Proto = ProtoUDP
	if udp80.IsHTTP() {
		t.Error("UDP port 80 classified HTTP")
	}
}

func TestRecordTimestamp(t *testing.T) {
	r := sampleRecord()
	want := time.Date(2007, 3, 1, 0, 0, 0, 0, time.UTC)
	if got := r.Timestamp(); !got.Equal(want) {
		t.Fatalf("Timestamp = %v, want %v", got, want)
	}
}

func TestStringers(t *testing.T) {
	r := sampleRecord()
	for name, s := range map[string]string{
		"Proto":    r.Proto.String(),
		"Record":   r.String(),
		"FlowKey":  r.Key().String(),
		"Endpoint": r.Src.String(),
	} {
		if s == "" {
			t.Errorf("%s.String() empty", name)
		}
	}
	if ProtoUnknown.String() != "proto(0)" {
		t.Errorf("unknown proto = %q", ProtoUnknown.String())
	}
}

func BenchmarkEncodeRecord(b *testing.B) {
	var buf [RecordSize]byte
	r := sampleRecord()
	b.SetBytes(RecordSize)
	for i := 0; i < b.N; i++ {
		EncodeRecord(buf[:], r)
	}
}

func BenchmarkDecodeRecord(b *testing.B) {
	var buf [RecordSize]byte
	EncodeRecord(buf[:], sampleRecord())
	var r Record
	b.SetBytes(RecordSize)
	for i := 0; i < b.N; i++ {
		DecodeRecord(buf[:], &r)
	}
}

func BenchmarkTraceWriter(b *testing.B) {
	r := sampleRecord()
	tw, _ := NewTraceWriter(io.Discard, 1)
	b.SetBytes(RecordSize)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = tw.Write(r)
	}
}
