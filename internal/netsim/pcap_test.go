package netsim

import (
	"bytes"
	"encoding/binary"
	"io"
	"testing"
)

func TestPcapRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	pw, err := NewPcapWriter(&buf, 0)
	if err != nil {
		t.Fatal(err)
	}
	recs := []Record{
		sampleRecord(),
		{
			Time:  sampleRecord().Time + 1500,
			Src:   Endpoint{Addr: AddrFrom4(10, 1, 2, 3), Port: 5353},
			Dst:   Endpoint{Addr: AddrFrom4(10, 0, 0, 2), Port: 53},
			Proto: ProtoUDP, Length: 90,
		},
	}
	for _, r := range recs {
		if err := pw.Write(r); err != nil {
			t.Fatal(err)
		}
	}
	if pw.Count() != 2 {
		t.Fatalf("Count = %d", pw.Count())
	}
	if err := pw.Flush(); err != nil {
		t.Fatal(err)
	}

	pr, err := NewPcapReader(bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatal(err)
	}
	for i, want := range recs {
		pkt, err := pr.Next()
		if err != nil {
			t.Fatalf("packet %d: %v", i, err)
		}
		if pkt.TimeMicros != want.Time {
			t.Fatalf("packet %d time %d, want %d", i, pkt.TimeMicros, want.Time)
		}
		got, err := DecodeIPv4(pkt.Data)
		if err != nil {
			t.Fatal(err)
		}
		if got.Src != want.Src || got.Dst != want.Dst || got.Proto != want.Proto {
			t.Fatalf("packet %d: got %+v, want %+v", i, got, want)
		}
		if want.Proto == ProtoTCP && got.Flags != want.Flags {
			t.Fatalf("packet %d flags %v, want %v", i, got.Flags, want.Flags)
		}
	}
	if _, err := pr.Next(); err != io.EOF {
		t.Fatalf("expected EOF, got %v", err)
	}
}

func TestPcapGlobalHeader(t *testing.T) {
	var buf bytes.Buffer
	pw, _ := NewPcapWriter(&buf, 128)
	_ = pw.Flush()
	b := buf.Bytes()
	if len(b) != 24 {
		t.Fatalf("header length %d", len(b))
	}
	le := binary.LittleEndian
	if le.Uint32(b[0:4]) != 0xa1b2c3d4 {
		t.Fatal("bad magic")
	}
	if le.Uint16(b[4:6]) != 2 || le.Uint16(b[6:8]) != 4 {
		t.Fatal("bad version")
	}
	if le.Uint32(b[16:20]) != 128 {
		t.Fatal("bad snaplen")
	}
	if le.Uint32(b[20:24]) != 101 {
		t.Fatal("bad link type")
	}
}

func TestPcapIPChecksumValid(t *testing.T) {
	var buf bytes.Buffer
	pw, _ := NewPcapWriter(&buf, 0)
	_ = pw.Write(sampleRecord())
	_ = pw.Flush()
	pr, _ := NewPcapReader(bytes.NewReader(buf.Bytes()))
	pkt, err := pr.Next()
	if err != nil {
		t.Fatal(err)
	}
	// Recomputing the IPv4 header checksum over the stored header
	// (including the checksum field) must yield zero.
	ip := pkt.Data[0:20]
	var sum uint32
	for i := 0; i < 20; i += 2 {
		sum += uint32(binary.BigEndian.Uint16(ip[i : i+2]))
	}
	for sum>>16 != 0 {
		sum = sum&0xffff + sum>>16
	}
	if uint16(sum) != 0xffff {
		t.Fatalf("IPv4 checksum invalid: folded sum %#x", sum)
	}
}

func TestPcapSnapLenTruncates(t *testing.T) {
	var buf bytes.Buffer
	pw, err := NewPcapWriter(&buf, 48)
	if err != nil {
		t.Fatal(err)
	}
	big := sampleRecord()
	big.Length = 1500
	_ = pw.Write(big)
	_ = pw.Flush()
	pr, _ := NewPcapReader(bytes.NewReader(buf.Bytes()))
	pkt, err := pr.Next()
	if err != nil {
		t.Fatal(err)
	}
	if len(pkt.Data) != 48 {
		t.Fatalf("stored %d bytes, want 48", len(pkt.Data))
	}
	if pkt.OrigLen != 1500 {
		t.Fatalf("orig length %d, want 1500", pkt.OrigLen)
	}
}

func TestPcapWriterRejectsTinySnapLen(t *testing.T) {
	var buf bytes.Buffer
	if _, err := NewPcapWriter(&buf, 10); err == nil {
		t.Fatal("snap length 10 accepted")
	}
}

func TestPcapReaderRejectsGarbage(t *testing.T) {
	if _, err := NewPcapReader(bytes.NewReader(make([]byte, 24))); err == nil {
		t.Fatal("zero header accepted")
	}
	if _, err := NewPcapReader(bytes.NewReader([]byte{1, 2, 3})); err == nil {
		t.Fatal("short header accepted")
	}
}

func TestDecodeIPv4Errors(t *testing.T) {
	if _, err := DecodeIPv4(nil); err == nil {
		t.Fatal("nil packet accepted")
	}
	if _, err := DecodeIPv4(make([]byte, 19)); err == nil {
		t.Fatal("short packet accepted")
	}
	bad := make([]byte, 20)
	bad[0] = 0x60 // IPv6 version nibble
	if _, err := DecodeIPv4(bad); err == nil {
		t.Fatal("IPv6 version accepted")
	}
	truncTCP := make([]byte, 22)
	truncTCP[0] = 0x45
	truncTCP[9] = byte(ProtoTCP)
	if _, err := DecodeIPv4(truncTCP); err == nil {
		t.Fatal("truncated TCP accepted")
	}
}

func TestPcapICMPPassThrough(t *testing.T) {
	// Non-TCP/UDP protocols are written with an IP header only.
	var buf bytes.Buffer
	pw, _ := NewPcapWriter(&buf, 0)
	r := sampleRecord()
	r.Proto = ProtoICMP
	r.Flags = 0
	if err := pw.Write(r); err != nil {
		t.Fatal(err)
	}
	_ = pw.Flush()
	pr, _ := NewPcapReader(bytes.NewReader(buf.Bytes()))
	pkt, err := pr.Next()
	if err != nil {
		t.Fatal(err)
	}
	got, err := DecodeIPv4(pkt.Data)
	if err != nil {
		t.Fatal(err)
	}
	if got.Proto != ProtoICMP || got.Src.Addr != r.Src.Addr {
		t.Fatalf("got %+v", got)
	}
}

func BenchmarkPcapWrite(b *testing.B) {
	pw, _ := NewPcapWriter(io.Discard, 0)
	r := sampleRecord()
	b.SetBytes(int64(r.Length))
	for i := 0; i < b.N; i++ {
		_ = pw.Write(r)
	}
}
