package netsim

import (
	"bytes"
	"io"
	"testing"

	"repro/internal/xrand"
)

// TestTraceReaderSurvivesCorruption feeds randomly corrupted .etr
// streams to the reader: whatever the bytes, the reader must return
// records or errors, never panic, and never read past the input.
func TestTraceReaderSurvivesCorruption(t *testing.T) {
	// Start from a valid trace and flip random bytes.
	var valid bytes.Buffer
	tw, _ := NewTraceWriter(&valid, 7)
	for i := 0; i < 50; i++ {
		r := sampleRecord()
		r.Time += int64(i) * 1000
		_ = tw.Write(r)
	}
	_ = tw.Flush()
	base := valid.Bytes()

	rng := xrand.New(99)
	for trial := 0; trial < 200; trial++ {
		data := append([]byte(nil), base...)
		// Corrupt 1-8 random bytes, possibly in the header.
		for k := 0; k <= rng.Intn(8); k++ {
			data[rng.Intn(len(data))] ^= byte(1 + rng.Intn(255))
		}
		// Possibly truncate.
		if rng.Intn(2) == 0 {
			data = data[:rng.Intn(len(data)+1)]
		}
		tr, err := NewTraceReader(bytes.NewReader(data))
		if err != nil {
			continue // rejected header: fine
		}
		var rec Record
		for n := 0; n < 1000; n++ {
			if err := tr.Next(&rec); err != nil {
				break // EOF or corruption error: fine
			}
		}
	}
}

// TestPcapReaderSurvivesCorruption does the same for the pcap reader.
func TestPcapReaderSurvivesCorruption(t *testing.T) {
	var valid bytes.Buffer
	pw, _ := NewPcapWriter(&valid, 0)
	for i := 0; i < 20; i++ {
		_ = pw.Write(sampleRecord())
	}
	_ = pw.Flush()
	base := valid.Bytes()

	rng := xrand.New(101)
	for trial := 0; trial < 200; trial++ {
		data := append([]byte(nil), base...)
		for k := 0; k <= rng.Intn(8); k++ {
			data[rng.Intn(len(data))] ^= byte(1 + rng.Intn(255))
		}
		if rng.Intn(2) == 0 {
			data = data[:rng.Intn(len(data)+1)]
		}
		pr, err := NewPcapReader(bytes.NewReader(data))
		if err != nil {
			continue
		}
		for n := 0; n < 1000; n++ {
			pkt, err := pr.Next()
			if err != nil {
				break
			}
			// Decoding arbitrary bytes must not panic either.
			_, _ = DecodeIPv4(pkt.Data)
		}
	}
}

// TestDecodeIPv4ArbitraryBytes hammers the decoder with random
// buffers of every small length.
func TestDecodeIPv4ArbitraryBytes(t *testing.T) {
	rng := xrand.New(103)
	for trial := 0; trial < 2000; trial++ {
		n := rng.Intn(64)
		buf := make([]byte, n)
		for i := range buf {
			buf[i] = byte(rng.Intn(256))
		}
		_, _ = DecodeIPv4(buf) // must not panic
	}
}

// TestTraceReaderStopsAtEOFExactly verifies the reader consumes
// exactly the bytes it needs and leaves any trailing garbage alone.
func TestTraceReaderStopsAtEOFExactly(t *testing.T) {
	var buf bytes.Buffer
	tw, _ := NewTraceWriter(&buf, 1)
	_ = tw.Write(sampleRecord())
	_ = tw.Flush()
	r := bytes.NewReader(buf.Bytes())
	tr, err := NewTraceReader(r)
	if err != nil {
		t.Fatal(err)
	}
	var rec Record
	if err := tr.Next(&rec); err != nil {
		t.Fatal(err)
	}
	if err := tr.Next(&rec); err != io.EOF {
		t.Fatalf("expected io.EOF, got %v", err)
	}
}
