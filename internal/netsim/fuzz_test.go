package netsim

import (
	"bytes"
	"io"
	"net"
	"testing"
	"time"

	"repro/internal/xrand"
)

// TestTraceReaderSurvivesCorruption feeds randomly corrupted .etr
// streams to the reader: whatever the bytes, the reader must return
// records or errors, never panic, and never read past the input.
func TestTraceReaderSurvivesCorruption(t *testing.T) {
	// Start from a valid trace and flip random bytes.
	var valid bytes.Buffer
	tw, _ := NewTraceWriter(&valid, 7)
	for i := 0; i < 50; i++ {
		r := sampleRecord()
		r.Time += int64(i) * 1000
		_ = tw.Write(r)
	}
	_ = tw.Flush()
	base := valid.Bytes()

	rng := xrand.New(99)
	for trial := 0; trial < 200; trial++ {
		data := append([]byte(nil), base...)
		// Corrupt 1-8 random bytes, possibly in the header.
		for k := 0; k <= rng.Intn(8); k++ {
			data[rng.Intn(len(data))] ^= byte(1 + rng.Intn(255))
		}
		// Possibly truncate.
		if rng.Intn(2) == 0 {
			data = data[:rng.Intn(len(data)+1)]
		}
		tr, err := NewTraceReader(bytes.NewReader(data))
		if err != nil {
			continue // rejected header: fine
		}
		var rec Record
		for n := 0; n < 1000; n++ {
			if err := tr.Next(&rec); err != nil {
				break // EOF or corruption error: fine
			}
		}
	}
}

// TestPcapReaderSurvivesCorruption does the same for the pcap reader.
func TestPcapReaderSurvivesCorruption(t *testing.T) {
	var valid bytes.Buffer
	pw, _ := NewPcapWriter(&valid, 0)
	for i := 0; i < 20; i++ {
		_ = pw.Write(sampleRecord())
	}
	_ = pw.Flush()
	base := valid.Bytes()

	rng := xrand.New(101)
	for trial := 0; trial < 200; trial++ {
		data := append([]byte(nil), base...)
		for k := 0; k <= rng.Intn(8); k++ {
			data[rng.Intn(len(data))] ^= byte(1 + rng.Intn(255))
		}
		if rng.Intn(2) == 0 {
			data = data[:rng.Intn(len(data)+1)]
		}
		pr, err := NewPcapReader(bytes.NewReader(data))
		if err != nil {
			continue
		}
		for n := 0; n < 1000; n++ {
			pkt, err := pr.Next()
			if err != nil {
				break
			}
			// Decoding arbitrary bytes must not panic either.
			_, _ = DecodeIPv4(pkt.Data)
		}
	}
}

// TestDecodeIPv4ArbitraryBytes hammers the decoder with random
// buffers of every small length.
func TestDecodeIPv4ArbitraryBytes(t *testing.T) {
	rng := xrand.New(103)
	for trial := 0; trial < 2000; trial++ {
		n := rng.Intn(64)
		buf := make([]byte, n)
		for i := range buf {
			buf[i] = byte(rng.Intn(256))
		}
		_, _ = DecodeIPv4(buf) // must not panic
	}
}

// TestFaultConnPrefixFuzz fuzzes the delivery invariant the protocol
// layers build on (fault_test.go pins it for one fixed plan): across
// drop-only, reset-only and mixed plans, random-size writes, and
// repeated redials, the byte stream the peer receives is always an
// exact prefix of the byte stream written — drops swallow whole
// writes, resets deliver a prefix, nothing is ever reordered,
// duplicated, or corrupted in-stream.
func TestFaultConnPrefixFuzz(t *testing.T) {
	plans := []FaultPlan{
		{Seed: 1, DropProb: 0.3},
		{Seed: 2, ResetProb: 0.3},
		{Seed: 3, DropProb: 0.2, ResetProb: 0.2},
		{Seed: 4, DropProb: 0.15, ResetProb: 0.15,
			Delay: 5 * time.Microsecond, Jitter: 10 * time.Microsecond},
	}
	for pi, plan := range plans {
		mem := NewMemNetwork()
		ln, err := mem.Listen("sink")
		if err != nil {
			t.Fatal(err)
		}
		fnet, err := NewFaultNetwork(mem, plan, nil)
		if err != nil {
			t.Fatal(err)
		}
		rng := xrand.New(uint64(1000 + pi))
		for trial := 0; trial < 25; trial++ {
			// Accept concurrently: MemNetwork.Dial hands the server end
			// over synchronously.
			acceptCh := make(chan net.Conn, 1)
			go func() {
				c, err := ln.Accept()
				if err != nil {
					c = nil
				}
				acceptCh <- c
			}()
			conn, err := fnet.Dial(0, "sink")
			if err != nil {
				t.Fatal(err)
			}
			peer := <-acceptCh
			if peer == nil {
				t.Fatal("accept failed")
			}
			recvCh := make(chan []byte, 1)
			go func() {
				var got []byte
				buf := make([]byte, 256)
				for {
					n, err := peer.Read(buf)
					got = append(got, buf[:n]...)
					if err != nil {
						recvCh <- got
						return
					}
				}
			}()
			// Write random-size random-content chunks until a fault
			// kills the connection (or the budget runs out). Every
			// chunk counts as attempted in full: a reset's partial
			// delivery is still a prefix of it.
			var attempted []byte
			for w := 0; w < 40; w++ {
				chunk := make([]byte, 1+rng.Intn(400))
				for i := range chunk {
					chunk[i] = byte(rng.Intn(256))
				}
				attempted = append(attempted, chunk...)
				if _, err := conn.Write(chunk); err != nil {
					break
				}
			}
			_ = conn.Close()
			got := <-recvCh
			_ = peer.Close()
			if len(got) > len(attempted) {
				t.Fatalf("plan %d trial %d: received %d bytes, only %d written",
					pi, trial, len(got), len(attempted))
			}
			if !bytes.Equal(got, attempted[:len(got)]) {
				t.Fatalf("plan %d trial %d: received %d bytes are not a prefix of the written stream",
					pi, trial, len(got))
			}
		}
		_ = ln.Close()
	}
}

// TestTraceReaderStopsAtEOFExactly verifies the reader consumes
// exactly the bytes it needs and leaves any trailing garbage alone.
func TestTraceReaderStopsAtEOFExactly(t *testing.T) {
	var buf bytes.Buffer
	tw, _ := NewTraceWriter(&buf, 1)
	_ = tw.Write(sampleRecord())
	_ = tw.Flush()
	r := bytes.NewReader(buf.Bytes())
	tr, err := NewTraceReader(r)
	if err != nil {
		t.Fatal(err)
	}
	var rec Record
	if err := tr.Next(&rec); err != nil {
		t.Fatal(err)
	}
	if err := tr.Next(&rec); err != io.EOF {
		t.Fatalf("expected io.EOF, got %v", err)
	}
}
