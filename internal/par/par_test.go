package par

import (
	"errors"
	"sync/atomic"
	"testing"
)

func TestForEachCoversAllIndices(t *testing.T) {
	for _, workers := range []int{0, 1, 3, 64} {
		n := 257
		seen := make([]atomic.Int32, n)
		ForEach(n, workers, func(i int) { seen[i].Add(1) })
		for i := range seen {
			if got := seen[i].Load(); got != 1 {
				t.Fatalf("workers=%d: index %d visited %d times", workers, i, got)
			}
		}
	}
}

func TestForEachEmpty(t *testing.T) {
	called := false
	ForEach(0, 4, func(int) { called = true })
	ForEach(-3, 4, func(int) { called = true })
	if called {
		t.Fatal("fn called for empty range")
	}
}

func TestForEachErrReturnsLowestIndexError(t *testing.T) {
	errA, errB := errors.New("a"), errors.New("b")
	err := ForEachErr(100, 8, func(i int) error {
		switch i {
		case 90:
			return errB
		case 7:
			return errA
		}
		return nil
	})
	if err != errA {
		t.Fatalf("got %v, want error from lowest failing index", err)
	}
	if err := ForEachErr(10, 4, func(int) error { return nil }); err != nil {
		t.Fatalf("unexpected error %v", err)
	}
}

func TestWorkersClamping(t *testing.T) {
	if w := Workers(8, 3); w != 3 {
		t.Fatalf("Workers(8,3) = %d", w)
	}
	if w := Workers(0, 1000); w < 1 {
		t.Fatalf("Workers(0,1000) = %d", w)
	}
	if w := Workers(-1, 0); w != 1 {
		t.Fatalf("Workers(-1,0) = %d", w)
	}
}
