// Package par provides the bounded fork-join primitives the analysis
// read path is built on: every fan-out in the experiment engine —
// per-user shards, per-policy evaluations, per-sweep points — runs
// through ForEach/ForEachErr so the whole process shares one notion
// of parallelism and never spawns unbounded goroutines.
package par

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Workers normalizes a requested worker count: values < 1 mean "one
// worker per available CPU", and the count never exceeds n (no point
// parking goroutines with nothing to do).
func Workers(requested, n int) int {
	w := requested
	if w < 1 {
		w = runtime.GOMAXPROCS(0)
	}
	if w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	return w
}

// ForEach runs fn(i) for every i in [0, n) on at most workers
// goroutines (workers < 1 selects GOMAXPROCS). It returns when all
// calls have completed. Indices are handed out atomically, so the
// work distribution is dynamic: cheap items don't stall behind
// expensive ones. fn must be safe for concurrent invocation on
// distinct indices.
func ForEach(n, workers int, fn func(i int)) {
	if n <= 0 {
		return
	}
	w := Workers(workers, n)
	if w == 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(w)
	for g := 0; g < w; g++ {
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1)) - 1
				if i >= n {
					return
				}
				fn(i)
			}
		}()
	}
	wg.Wait()
}

// ForEachErr is ForEach for fallible work: it runs fn(i) for every i
// in [0, n) and returns the error from the lowest index that failed
// (deterministic regardless of scheduling). All indices are attempted
// even after a failure, keeping the completion semantics identical to
// the serial loop the caller replaced.
func ForEachErr(n, workers int, fn func(i int) error) error {
	if n <= 0 {
		return nil
	}
	var (
		mu       sync.Mutex
		firstIdx = n
		firstErr error
	)
	ForEach(n, workers, func(i int) {
		if err := fn(i); err != nil {
			mu.Lock()
			if i < firstIdx {
				firstIdx, firstErr = i, err
			}
			mu.Unlock()
		}
	})
	return firstErr
}
