package analysis

// Streaming bounded-heap evaluation: iterate a mapped snapshot in
// user-range shards through reused shard-sized workspace views, so a
// population-wide analysis touches one shard's working set at a time
// and peak RSS is set by the shard size, not the population.
//
// The pieces compose rather than fork the existing machinery:
//
//   - ViewRange(lo, hi) is a shard-sized Workspace sharing the parent's
//     mapping and matrices — its blocks wire through the exact same
//     ensureBlock/DaySorted lazy paths, just offset by userBase, so
//     every per-user value a view serves is bit-identical to what the
//     full workspace would serve for the same user.
//   - StreamShards fans the shards over the par pool and releases each
//     shard's mapped pages (snapshot.DropUserRange) as soon as its
//     callback returns.
//   - The population-wide entry points — TailStats, Sweep, Assignment
//     (via core.StreamPlan's bounded fold), EvaluateSharded and the
//     experiment runners above them — route through StreamShards when
//     SetStreamShard has armed the workspace, writing each shard's
//     slice of the population-indexed result.
//
// Fold contract: every per-shard partial lands in a disjoint slice of
// a population-sized output (user-indexed results) or folds through a
// commutative, associative reduction (max for Sweep, the multiset
// accumulators of core.StreamPlan), so shard completion order — which
// the worker pool does not define — can never change a result. That,
// plus the views' bit-identical reads, is why the streaming path is
// equivalence-pinned against the whole-heap path rather than merely
// close.

import (
	"fmt"
	"sync"

	"repro/internal/core"
	"repro/internal/features"
	"repro/internal/par"
)

// SetStreamShard arms streaming evaluation: population-wide analyses
// on this workspace will iterate the snapshot in shards of at most n
// users (n <= 0 disarms). It only takes effect on snapshot-backed
// workspaces — an in-memory workspace already holds everything, so
// there is nothing to bound — and must be called before analyses run
// (results are memoized under path-independent keys, so late arming
// only affects not-yet-computed artifacts).
func (w *Workspace) SetStreamShard(n int) {
	if n < 0 {
		n = 0
	}
	w.streamShard = n
}

// StreamShard returns the armed shard size (0 = streaming off).
func (w *Workspace) StreamShard() int { return w.streamShard }

// Streaming reports whether population-wide analyses stream in
// bounded shards.
func (w *Workspace) Streaming() bool { return w.snap != nil && w.streamShard > 0 }

// ViewRange returns a shard-sized view of a snapshot-backed workspace
// covering local users [lo, hi) — a real Workspace whose user u is the
// parent's user lo+u. The view shares the parent's mapping and matrix
// headers; its columnar blocks and memo are its own, so they are
// garbage the moment the view is dropped. Views must not outlive the
// parent's Close.
func (w *Workspace) ViewRange(lo, hi int) *Workspace {
	if w.snap == nil {
		panic("analysis: ViewRange needs a snapshot-backed workspace")
	}
	if lo < 0 || hi <= lo || hi > w.users {
		panic(fmt.Sprintf("analysis: view range [%d, %d) outside population [0, %d)", lo, hi, w.users))
	}
	nBlocks := w.weeks * features.NumFeatures
	return &Workspace{
		matrices:    w.matrices[lo:hi:hi],
		users:       hi - lo,
		weeks:       w.weeks,
		binsPerWeek: w.binsPerWeek,
		binWidth:    w.binWidth,
		blocks:      make([]*block, nBlocks),
		blockOnce:   make([]sync.Once, nBlocks),
		memo:        make(map[string]*memoCell),
		snap:        w.snap,
		userBase:    w.userBase + lo,
	}
}

// StreamShards runs fn over the population in contiguous user-range
// shards of StreamShard users (DefaultShardUsers when unarmed), each
// through a fresh ViewRange view, fanned over the worker pool
// (workers < 1 = one per CPU). After fn returns for a shard, the
// shard's mapped pages are released from the resident set; fn must not
// retain views or any slice obtained from one past its return, except
// data it copied. Shards run concurrently: fn writes to shared state
// must target disjoint [lo, hi) slices or take their own locks. The
// lowest-indexed error wins, matching par.ForEachErr.
func (w *Workspace) StreamShards(workers int, fn func(view *Workspace, lo, hi int) error) error {
	if w.snap == nil {
		return fmt.Errorf("analysis: StreamShards needs a snapshot-backed workspace")
	}
	shard := w.streamShard
	if shard <= 0 {
		shard = DefaultShardUsers
	}
	if shard > w.users {
		shard = w.users
	}
	nShards := (w.users + shard - 1) / shard
	return par.ForEachErr(nShards, workers, func(s int) error {
		lo := s * shard
		hi := min(lo+shard, w.users)
		view := w.ViewRange(lo, hi)
		if err := fn(view, lo, hi); err != nil {
			return err
		}
		w.snap.DropUserRange(w.userBase+lo, w.userBase+hi)
		return nil
	})
}

// streamAssignment configures one policy with core.StreamPlan's
// bounded fold: pass A reads every user's grouping statistic (the
// training p99, exactly what ConfigureWith derives) off the mapped
// sorted columns shard by shard; pass B folds each user's training
// distribution into the plan. Returns ok == false — with no error —
// when the heuristic has no bounded fold over merged groups
// (core.MeanSigma under a merging policy); the caller falls back to
// the whole-heap configure, which reproduces any genuine error too.
func (w *Workspace) streamAssignment(f features.Feature, trainWeek int, pol core.Policy, attack []float64) (*core.Assignment, bool, error) {
	stat := make([]float64, w.users)
	err := w.StreamShards(0, func(view *Workspace, lo, hi int) error {
		dists := view.Dists(f, trainWeek)
		for u, d := range dists {
			t, err := d.Quantile(0.99)
			if err != nil {
				return fmt.Errorf("analysis: user %d %s: %w", lo+u, f, err)
			}
			stat[lo+u] = t
		}
		return nil
	})
	if err != nil {
		return nil, false, err
	}
	plan, err := core.NewStreamPlan(pol, stat, attack)
	if err != nil {
		return nil, false, nil
	}
	err = w.StreamShards(0, func(view *Workspace, lo, hi int) error {
		dists := view.Dists(f, trainWeek)
		for u, d := range dists {
			if err := plan.FoldUser(lo+u, d); err != nil {
				return err
			}
		}
		return nil
	})
	if err != nil {
		return nil, false, err
	}
	asn, err := plan.Finish()
	if err != nil {
		return nil, false, err
	}
	return asn, true, nil
}

// EvaluateSharded scores a pre-configured assignment over one test
// week shard by shard — the streaming twin of core.EvaluatePolicy
// with EvalInput.Assignment set. overlay, when non-nil, is the shared
// per-window additive attack applied to every user (the shape the
// sweep runners use; every user has the same bin count). Results are
// bit-identical to the whole-heap evaluation: each user's operating
// point is core.ScorePoint over the same test column, threshold and
// overlay, written to its own population-indexed slot. workers < 1
// fans one shard per CPU.
func (w *Workspace) EvaluateSharded(f features.Feature, testWeek int, asn *core.Assignment, overlay []float64, workers int) (*core.EvalResult, error) {
	if asn == nil {
		return nil, fmt.Errorf("analysis: EvaluateSharded needs a configured assignment")
	}
	if len(asn.Thresholds) != w.users {
		return nil, fmt.Errorf("analysis: assignment covers %d users, population has %d", len(asn.Thresholds), w.users)
	}
	res := &core.EvalResult{Assignment: asn, Points: make([]core.OperatingPoint, w.users)}
	err := w.StreamShards(workers, func(view *Workspace, lo, hi int) error {
		raw := view.Raw(f, testWeek)
		for u := range raw {
			pt, err := core.ScorePoint(lo+u, raw[u], overlay, asn.Thresholds[lo+u])
			if err != nil {
				return err
			}
			res.Points[lo+u] = pt
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return res, nil
}
