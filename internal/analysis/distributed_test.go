package analysis

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"io/fs"
	"os"
	"os/exec"
	"reflect"
	"strconv"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/features"
	"repro/internal/snapshot"
	"repro/internal/trace"
)

// helperConfig mirrors the population TestCrossProcessShardBuild uses;
// the re-exec'd worker rebuilds it from env so both processes derive
// the identical key and generator.
func helperConfig(users int) trace.Config {
	return trace.Config{Users: users, Weeks: 2, Seed: 7, BinWidth: 3 * time.Hour}
}

// TestShardWorkerHelper is not a test: it is the worker body
// TestCrossProcessShardBuild re-execs as a genuinely separate process.
// Without the env contract it skips immediately.
func TestShardWorkerHelper(t *testing.T) {
	dir := os.Getenv("REPRO_SHARD_HELPER_DIR")
	if dir == "" {
		t.Skip("helper mode: only runs re-exec'd by TestCrossProcessShardBuild")
	}
	users, err := strconv.Atoi(os.Getenv("REPRO_SHARD_HELPER_USERS"))
	if err != nil {
		t.Fatal(err)
	}
	var lo, hi int
	if n, err := fmt.Sscanf(os.Getenv("REPRO_SHARD_HELPER_RANGE"), "%d:%d", &lo, &hi); n != 2 || err != nil {
		t.Fatalf("bad REPRO_SHARD_HELPER_RANGE %q: %v", os.Getenv("REPRO_SHARD_HELPER_RANGE"), err)
	}
	pop := trace.MustPopulation(helperConfig(users))
	key, err := snapshot.KeyFor(pop.Cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := BuildShardRange(context.Background(), dir, key, lo, hi, 0, func(u int, rows [][features.NumFeatures]float64) {
		pop.Users[u].FillSeries(rows)
	}); err != nil {
		t.Fatal(err)
	}
}

// TestCrossProcessShardBuild is the ISSUE's three-way determinism
// pin: the same key built via (a) single-process Save, (b) in-process
// distributed workers, and (c) two separate coordinator processes
// over disjoint shard ranges plus a merge, must produce byte-identical
// snapshots AND manifests.
func TestCrossProcessShardBuild(t *testing.T) {
	const users = 40
	pop := trace.MustPopulation(helperConfig(users))
	key, err := snapshot.KeyFor(pop.Cfg)
	if err != nil {
		t.Fatal(err)
	}
	gen := func(u int, rows [][features.NumFeatures]float64) {
		pop.Users[u].FillSeries(rows)
	}

	// (a) single-process Save from a fully in-memory workspace.
	saveDir := t.TempDir()
	mem := NewGenerated(users, func(u int) *features.Matrix { return pop.Users[u].Series() })
	if _, err := mem.Save(saveDir, key); err != nil {
		t.Fatal(err)
	}

	// (b) in-process distributed build: three part writers + merge.
	distDir := t.TempDir()
	ws, err := MaterializeDistributed(context.Background(), distDir, key, 0, 3, pop.CostWeights(), gen)
	if err != nil {
		t.Fatal(err)
	}
	ws.Close()

	// (c) two genuinely separate worker processes (the test binary
	// re-exec'd onto the helper), then a merge in this process — the
	// tracegen -shard-range / -merge coordinator flow.
	procDir := t.TempDir()
	exe, err := os.Executable()
	if err != nil {
		t.Fatal(err)
	}
	for _, rng := range []string{"0:17", "17:40"} {
		cmd := exec.Command(exe, "-test.run", "^TestShardWorkerHelper$", "-test.count=1")
		cmd.Env = append(os.Environ(),
			"REPRO_SHARD_HELPER_DIR="+procDir,
			"REPRO_SHARD_HELPER_USERS="+strconv.Itoa(users),
			"REPRO_SHARD_HELPER_RANGE="+rng,
		)
		if out, err := cmd.CombinedOutput(); err != nil {
			t.Fatalf("worker process %s failed: %v\n%s", rng, err, out)
		}
	}
	if n, err := snapshot.MergeShards(procDir, key); err != nil || n != 2 {
		t.Fatalf("MergeShards: n=%d err=%v", n, err)
	}

	want, err := os.ReadFile(key.Path(saveDir))
	if err != nil {
		t.Fatal(err)
	}
	wantMan, err := os.ReadFile(key.ManifestPath(saveDir))
	if err != nil {
		t.Fatal(err)
	}
	for name, dir := range map[string]string{"in-process distributed": distDir, "cross-process": procDir} {
		got, err := os.ReadFile(key.Path(dir))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("%s snapshot bytes differ from single-process Save", name)
		}
		gotMan, err := os.ReadFile(key.ManifestPath(dir))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(gotMan, wantMan) {
			t.Fatalf("%s manifest bytes differ from single-process Save", name)
		}
	}

	// The merged store round-trips through the workspace layer.
	loaded, err := Load(procDir, key)
	if err != nil {
		t.Fatal(err)
	}
	defer loaded.Close()
	requireEqualWorkspaces(t, loaded, mem)
}

// TestLoadOrMaterializeWorkers pins the workers > 1 cold path to the
// single-pass build byte for byte, and the warm path to a plain map.
func TestLoadOrMaterializeWorkers(t *testing.T) {
	pop, key := popAndKey(t, 23, 2, 11, 6*time.Hour)
	gen := func(u int, rows [][features.NumFeatures]float64) {
		pop.Users[u].FillSeries(rows)
	}
	singleDir, distDir := t.TempDir(), t.TempDir()
	ws, _, err := LoadOrMaterialize(context.Background(), singleDir, key, 0, 0, nil, nil, gen)
	if err != nil {
		t.Fatal(err)
	}
	ws.Close()
	ws, warm, err := LoadOrMaterialize(context.Background(), distDir, key, 5, 4, pop.CostWeights(), nil, gen)
	if err != nil {
		t.Fatal(err)
	}
	ws.Close()
	if warm {
		t.Fatal("cold build reported warm")
	}
	want, err := os.ReadFile(key.Path(singleDir))
	if err != nil {
		t.Fatal(err)
	}
	got, err := os.ReadFile(key.Path(distDir))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("workers>1 cold build bytes differ from single-pass build")
	}
	if ws, warm, err = LoadOrMaterialize(context.Background(), distDir, key, 5, 4, nil, nil, gen); err != nil || !warm {
		t.Fatalf("second call: warm=%v err=%v", warm, err)
	}
	ws.Close()
}

// TestMaterializeCancelled pins the ctx contract: cancelling a
// materialization mid-build aborts it with the context's error, seals
// nothing (no .snap, no part), and leaves no temp files behind — a
// coordinator deadline or Ctrl-C cannot leak a poisoned store.
func TestMaterializeCancelled(t *testing.T) {
	pop, key := popAndKey(t, 30, 2, 11, 6*time.Hour)
	var built atomic.Int32
	newGen := func(ctx context.Context, cancel context.CancelFunc) func(u int, rows [][features.NumFeatures]float64) {
		return func(u int, rows [][features.NumFeatures]float64) {
			if built.Add(1) == 3 {
				cancel() // die mid-population, from inside generation
			}
			pop.Users[u].FillSeries(rows)
		}
	}
	assertNothingSealed := func(t *testing.T, dir string) {
		t.Helper()
		if _, err := os.Stat(key.Path(dir)); !errors.Is(err, fs.ErrNotExist) {
			t.Fatalf("cancelled build sealed a snapshot: %v", err)
		}
		ents, err := os.ReadDir(dir)
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range ents {
			t.Fatalf("cancelled build left %s behind", e.Name())
		}
	}

	t.Run("sharded", func(t *testing.T) {
		dir := t.TempDir()
		built.Store(0)
		ctx, cancel := context.WithCancel(context.Background())
		defer cancel()
		// Shard granularity 1 so the per-shard ctx check fires right
		// after the cancelling user, deterministically.
		_, err := MaterializeSharded(ctx, dir, key, 1, newGen(ctx, cancel))
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
		assertNothingSealed(t, dir)
	})
	t.Run("distributed", func(t *testing.T) {
		dir := t.TempDir()
		built.Store(0)
		ctx, cancel := context.WithCancel(context.Background())
		defer cancel()
		_, err := MaterializeDistributed(ctx, dir, key, 1, 3, nil, newGen(ctx, cancel))
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
		assertNothingSealed(t, dir)
	})
	t.Run("shard-range", func(t *testing.T) {
		dir := t.TempDir()
		ctx, cancel := context.WithCancel(context.Background())
		cancel() // already dead before the first record
		err := BuildShardRange(ctx, dir, key, 0, 10, 1, newGen(ctx, cancel))
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
		assertNothingSealed(t, dir)
	})
}

// TestLoadUserMatrix covers hidsd's O(record) load path: the fetched
// matrix must equal the fully loaded workspace's, out-of-range users
// must error (not panic) naming the geometry, and a manifest-less
// store must surface fs.ErrNotExist so callers fall back to Load.
func TestLoadUserMatrix(t *testing.T) {
	pop, key := popAndKey(t, 9, 2, 5, 6*time.Hour)
	dir := t.TempDir()
	ws, err := MaterializeSharded(context.Background(), dir, key, 0, func(u int, rows [][features.NumFeatures]float64) {
		pop.Users[u].FillSeries(rows)
	})
	if err != nil {
		t.Fatal(err)
	}
	defer ws.Close()
	for _, u := range []int{0, 4, 8} {
		m, err := LoadUserMatrix(dir, key, u)
		if err != nil {
			t.Fatalf("LoadUserMatrix(%d): %v", u, err)
		}
		want := ws.Matrices()[u]
		if m.BinWidth != want.BinWidth || m.StartMicros != want.StartMicros {
			t.Fatalf("user %d matrix metadata diverges", u)
		}
		if !reflect.DeepEqual(m.Rows, want.Rows) {
			t.Fatalf("user %d rows diverge from the mapped workspace", u)
		}
	}
	for _, u := range []int{-1, 9} {
		if _, err := LoadUserMatrix(dir, key, u); err == nil {
			t.Fatalf("LoadUserMatrix(%d) accepted an out-of-range user", u)
		}
	}
	if err := os.Remove(key.ManifestPath(dir)); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadUserMatrix(dir, key, 1); !errors.Is(err, fs.ErrNotExist) {
		t.Fatalf("manifest-less store: err = %v, want fs.ErrNotExist", err)
	}
}
