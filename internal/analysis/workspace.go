// Package analysis is the columnar read path of the experiment
// engine: a Workspace computed once per enterprise that every runner
// (Fig 1 … Fig 5b, Table 2, Table 3) shares.
//
// The paper's evaluation re-reads the same feature matrices over and
// over — per-user, per-week quantiles for Fig 1, train/test series
// for every policy of Fig 3/4/5, attack sweeps for each figure. The
// seed implementation rebuilt those inputs on every call: each
// TailStats re-copied and re-sorted a column per (feature, quantile)
// pair, every evalPolicies re-derived the train/test split and
// re-configured thresholds per policy. The workspace replaces that
// with pre-sorted columnar views and memoized derived artifacts:
//
//   - Raw(f, w): per-user time-ordered columns of one feature-week,
//     extracted once, shared by every evaluation loop;
//   - Sorted(f, w) / Dists(f, w): the same columns pre-sorted with
//     stats.Empirical views adopting the sorted slices zero-copy
//     (stats.NewEmpiricalFromSorted), so quantile/CDF queries hit the
//     stats fast path with no per-call allocation;
//   - TailStats / Sweep / Assignment / Memo: memoized quantile
//     vectors, attack sweeps, threshold configurations and arbitrary
//     derived artifacts keyed by their parameters;
//   - Frontiers / DaySorted / SplitOverlay: the threshold-frontier
//     engine's memoized per-user frontiers (shared by every
//     objective-optimizing heuristic under one attack sweep) and the
//     pre-sorted attacked-window views that turn the Fig 4a/5a/5b
//     attack sweeps into binary-search counting.
//
// Everything returned by a Workspace is shared and must be treated
// as read-only; all methods are safe for concurrent use.
package analysis

import (
	"fmt"
	"math"
	"sort"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/features"
	"repro/internal/par"
	"repro/internal/snapshot"
	"repro/internal/stats"
)

// Workspace holds the per-enterprise columnar cache. Construct with
// New, NewGenerated, Load or MaterializeSharded; the zero value is
// not usable.
type Workspace struct {
	matrices    []*features.Matrix
	users       int
	weeks       int
	binsPerWeek int
	binWidth    time.Duration

	// blocks[w*NumFeatures+f] is the lazily built columnar view of
	// one (feature, week); blockOnce guards each build (NewGenerated
	// fills every block eagerly and burns the onces; Load leaves them
	// all unfired and ensureBlock wires each block from the mapped
	// snapshot on first use).
	blocks    []*block
	blockOnce []sync.Once

	mu   sync.Mutex
	memo map[string]*memoCell

	// snap is the backing store of a snapshot-loaded workspace (nil
	// for in-memory ones): ensureBlock adopts its mapped sorted
	// columns and DaySorted its day views, instead of re-deriving
	// either from the matrices.
	snap *snapshot.Snapshot

	// userBase offsets this workspace's local user indices into snap:
	// a ViewRange shard over users [lo, hi) has userBase == lo and
	// users == hi-lo, so local user u is snapshot record userBase+u.
	// Zero for full workspaces.
	userBase int

	// streamShard > 0 turns the population-wide analyses (TailStats,
	// Sweep, Assignment, EvaluateSharded and the runners above them)
	// into shard-by-shard streams over ViewRange views of at most this
	// many users, releasing each shard's mapped pages after use. Only
	// meaningful on snapshot-backed workspaces; see streaming.go.
	streamShard int
}

// block is the columnar view of one (feature, week): every user's
// time-ordered column, the sorted counterpart, and an Empirical
// adopting the sorted slice. The per-user slices are carved out of
// two block-wide slabs (or, for a snapshot-backed workspace, point
// straight into the mapped file), so building a block costs O(1)
// allocations instead of O(users).
type block struct {
	raw    [][]float64
	sorted [][]float64
	dists  []*stats.Empirical

	// rawBuf/sortedBuf back the per-user slices; emp backs dists.
	// sortedBuf is nil when sorted views alias a snapshot mapping.
	rawBuf, sortedBuf []float64
	emp               []stats.Empirical
}

// newBlock allocates a block whose column slices will be carved from
// two users×binsPerWeek slabs.
func newBlock(users, bpw int) *block {
	return &block{
		raw:       make([][]float64, users),
		sorted:    make([][]float64, users),
		dists:     make([]*stats.Empirical, users),
		rawBuf:    make([]float64, users*bpw),
		sortedBuf: make([]float64, users*bpw),
		emp:       make([]stats.Empirical, users),
	}
}

type memoCell struct {
	once sync.Once
	val  any
	err  error
}

// New builds a workspace over fully materialized per-user matrices.
// All matrices must share the same geometry and cover at least one
// complete week; New panics otherwise (the enterprise constructor
// guarantees this, so a violation is a programming error).
func New(matrices []*features.Matrix) *Workspace {
	if len(matrices) == 0 {
		panic("analysis: empty population")
	}
	m0 := matrices[0]
	weeks := m0.Weeks()
	if weeks < 1 {
		panic("analysis: matrices cover no complete week")
	}
	for u, m := range matrices {
		if m == nil || m.Bins() != m0.Bins() || m.BinWidth != m0.BinWidth {
			panic(fmt.Sprintf("analysis: user %d matrix geometry differs from user 0", u))
		}
	}
	nBlocks := weeks * features.NumFeatures
	return &Workspace{
		matrices:    matrices,
		users:       len(matrices),
		weeks:       weeks,
		binsPerWeek: m0.BinsPerWeek(),
		binWidth:    m0.BinWidth,
		blocks:      make([]*block, nBlocks),
		blockOnce:   make([]sync.Once, nBlocks),
		memo:        make(map[string]*memoCell),
	}
}

// NewGenerated builds a workspace whose matrices and columnar blocks
// are produced in one fused parallel pass: each worker pulls one
// user's matrix from matrixOf (typically a trace.Generator filling
// rows week by week) and immediately extracts, sorts and wraps every
// (feature, week) column while the freshly generated rows are still
// cache-hot. This replaces the two-pass materialize-then-Warm flow —
// there is no intermediate per-bin Counts round-trip and no second
// sweep over cold matrices. matrixOf runs on the shared worker pool:
// it must be safe for concurrent calls with distinct u and must
// return matrices of identical geometry covering at least one
// complete week (panics otherwise, matching New).
func NewGenerated(users int, matrixOf func(u int) *features.Matrix) *Workspace {
	if users <= 0 {
		panic("analysis: empty population")
	}
	matrices := make([]*features.Matrix, users)
	matrices[0] = matrixOf(0)
	m0 := matrices[0]
	weeks := m0.Weeks()
	if weeks < 1 {
		panic("analysis: matrices cover no complete week")
	}
	nBlocks := weeks * features.NumFeatures
	w := &Workspace{
		matrices:    matrices,
		users:       users,
		weeks:       weeks,
		binsPerWeek: m0.BinsPerWeek(),
		binWidth:    m0.BinWidth,
		blocks:      make([]*block, nBlocks),
		blockOnce:   make([]sync.Once, nBlocks),
		memo:        make(map[string]*memoCell),
	}
	for idx := range w.blocks {
		w.blocks[idx] = newBlock(users, w.binsPerWeek)
	}
	par.ForEach(users, 0, func(u int) {
		m := matrices[u]
		if m == nil {
			m = matrixOf(u)
			matrices[u] = m
		}
		if m == nil || m.Bins() != m0.Bins() || m.BinWidth != m0.BinWidth {
			panic(fmt.Sprintf("analysis: user %d matrix geometry differs from user 0", u))
		}
		for week := 0; week < weeks; week++ {
			for _, f := range features.All() {
				w.blocks[week*features.NumFeatures+int(f)].fillUser(m, u, f, week, w.binsPerWeek)
			}
		}
	})
	// Mark every block built so ensureBlock never rebuilds them.
	for idx := range w.blockOnce {
		w.blockOnce[idx].Do(func() {})
	}
	return w
}

// Matrices returns the per-user matrices the workspace was built
// over, in user order. Shared, read-only.
func (w *Workspace) Matrices() []*features.Matrix { return w.matrices }

// Users returns the population size.
func (w *Workspace) Users() int { return w.users }

// Weeks returns the number of complete weeks covered.
func (w *Workspace) Weeks() int { return w.weeks }

// BinsPerWeek returns the number of aggregation windows per week.
func (w *Workspace) BinsPerWeek() int { return w.binsPerWeek }

// BinWidth returns the aggregation window width.
func (w *Workspace) BinWidth() time.Duration { return w.binWidth }

// Warm eagerly builds every (feature, week) columnar block in one
// parallel pass. Enterprise.Materialize calls this so that all
// subsequent analysis runs from the cache.
func (w *Workspace) Warm() {
	for week := 0; week < w.weeks; week++ {
		for _, f := range features.All() {
			w.ensureBlock(f, week)
		}
	}
}

func (w *Workspace) blockIndex(f features.Feature, week int) int {
	if !f.Valid() {
		panic(fmt.Sprintf("analysis: invalid feature %d", int(f)))
	}
	if week < 0 || week >= w.weeks {
		panic(fmt.Sprintf("analysis: week %d outside [0, %d)", week, w.weeks))
	}
	return week*features.NumFeatures + int(f)
}

// fillUser extracts, sorts and wraps one user's column of one
// (feature, week) into the block's slabs — the single source of truth
// shared by the lazy ensureBlock path and the fused NewGenerated pass.
func (b *block) fillUser(m *features.Matrix, u int, f features.Feature, week int, bpw int) {
	lo, hi := m.WeekRange(week)
	raw := b.rawBuf[u*bpw : (u+1)*bpw : (u+1)*bpw]
	m.ColumnInto(raw, f, lo, hi)
	sorted := b.sortedBuf[u*bpw : (u+1)*bpw : (u+1)*bpw]
	copy(sorted, raw)
	sort.Float64s(sorted)
	if err := b.emp[u].AdoptSorted(sorted); err != nil {
		// Matrices are counters: never NaN, never empty for a
		// complete week. Reaching here is a corrupted matrix.
		panic(fmt.Sprintf("analysis: user %d %s week %d: %v", u, f, week, err))
	}
	b.raw[u] = raw
	b.sorted[u] = sorted
	b.dists[u] = &b.emp[u]
}

// ensureBlock builds the columnar view of one (feature, week) on
// first use, fanning the per-user extract-and-sort over all CPUs. On
// a snapshot-backed workspace the sorted columns (and the
// distributions adopting them) are zero-copy views of the mapping —
// only the raw time-ordered columns are materialized here, because
// rows interleave the six features so a raw column is the one view
// the file cannot serve as a contiguous run.
func (w *Workspace) ensureBlock(f features.Feature, week int) *block {
	idx := w.blockIndex(f, week)
	w.blockOnce[idx].Do(func() {
		bpw := w.binsPerWeek
		var b *block
		if w.snap != nil {
			b = &block{
				raw:    make([][]float64, w.users),
				sorted: make([][]float64, w.users),
				dists:  make([]*stats.Empirical, w.users),
				rawBuf: make([]float64, w.users*bpw),
				emp:    make([]stats.Empirical, w.users),
			}
			par.ForEach(w.users, 0, func(u int) {
				s := w.snap.SortedColumn(w.userBase+u, week, int(f))
				if err := b.emp[u].AdoptSorted(s); err != nil {
					// The checksum passed, so this is a logically
					// malformed writer, not disk corruption.
					panic(fmt.Sprintf("analysis: snapshot user %d %s week %d: %v", w.userBase+u, f, week, err))
				}
				b.sorted[u] = s
				b.dists[u] = &b.emp[u]
				m := w.matrices[u]
				lo, hi := m.WeekRange(week)
				raw := b.rawBuf[u*bpw : (u+1)*bpw : (u+1)*bpw]
				m.ColumnInto(raw, f, lo, hi)
				b.raw[u] = raw
			})
		} else {
			b = newBlock(w.users, bpw)
			par.ForEach(w.users, 0, func(u int) {
				b.fillUser(w.matrices[u], u, f, week, bpw)
			})
		}
		w.blocks[idx] = b
	})
	return w.blocks[idx]
}

// Raw returns every user's time-ordered column of one feature-week.
// The slices are shared: callers must not modify them.
func (w *Workspace) Raw(f features.Feature, week int) [][]float64 {
	return w.ensureBlock(f, week).raw
}

// RawUser returns one user's time-ordered column (shared, read-only).
func (w *Workspace) RawUser(u int, f features.Feature, week int) []float64 {
	return w.ensureBlock(f, week).raw[u]
}

// Sorted returns every user's pre-sorted column of one feature-week
// (shared, read-only) — the input shape of the stats fast path.
func (w *Workspace) Sorted(f features.Feature, week int) [][]float64 {
	return w.ensureBlock(f, week).sorted
}

// Dists returns every user's memoized empirical distribution of one
// feature-week. The distributions share the workspace's sorted
// columns (zero-copy) and are safe for concurrent use.
func (w *Workspace) Dists(f features.Feature, week int) []*stats.Empirical {
	return w.ensureBlock(f, week).dists
}

// Dist returns one user's memoized distribution.
func (w *Workspace) Dist(u int, f features.Feature, week int) *stats.Empirical {
	return w.ensureBlock(f, week).dists[u]
}

// Memo returns the value of fn memoized under key. The first caller
// computes; concurrent callers of the same key block until the value
// is ready; errors are memoized too. The returned value is shared —
// callers must treat it as read-only.
func (w *Workspace) Memo(key string, fn func() (any, error)) (any, error) {
	w.mu.Lock()
	cell, ok := w.memo[key]
	if !ok {
		cell = &memoCell{}
		w.memo[key] = cell
	}
	w.mu.Unlock()
	cell.once.Do(func() { cell.val, cell.err = fn() })
	return cell.val, cell.err
}

// Close releases the workspace's backing snapshot mapping, when it
// was loaded from one (no-op otherwise). After Close every view the
// workspace ever returned — matrices, columns, distributions — is
// invalid: the caller must guarantee no goroutine still reads them.
func (w *Workspace) Close() error {
	if w.snap == nil {
		return nil
	}
	s := w.snap
	w.snap = nil
	return s.Close()
}

// TailStats returns every user's q-quantile of one feature-week in
// user order — the per-user thresholds Fig 1 plots — computed once
// from the pre-sorted columns and memoized. The returned slice is
// shared and must not be modified.
func (w *Workspace) TailStats(f features.Feature, week int, q float64) ([]float64, error) {
	key := fmt.Sprintf("tail/%d/%d/%g", int(f), week, q)
	v, err := w.Memo(key, func() (any, error) {
		out := make([]float64, w.users)
		if w.Streaming() {
			err := w.StreamShards(0, func(view *Workspace, lo, hi int) error {
				sorted := view.Sorted(f, week)
				for u := range sorted {
					t, err := stats.QuantileSorted(sorted[u], q)
					if err != nil {
						return fmt.Errorf("analysis: user %d %s: %w", lo+u, f, err)
					}
					out[lo+u] = t
				}
				return nil
			})
			if err != nil {
				return nil, err
			}
			return out, nil
		}
		sorted := w.Sorted(f, week)
		err := par.ForEachErr(w.users, 0, func(u int) error {
			t, err := stats.QuantileSorted(sorted[u], q)
			if err != nil {
				return fmt.Errorf("analysis: user %d %s: %w", u, f, err)
			}
			out[u] = t
			return nil
		})
		if err != nil {
			return nil, err
		}
		return out, nil
	})
	if err != nil {
		return nil, err
	}
	return v.([]float64), nil
}

// Sweep returns the memoized attack-size sweep for one feature and
// training week: n geometrically spaced sizes from 1 up to the
// maximum feature value any user exhibits in that week (§6.1). The
// maximum is read off the pre-sorted columns in O(users). The
// returned slice is shared and must not be modified.
func (w *Workspace) Sweep(f features.Feature, trainWeek, n int) []float64 {
	key := fmt.Sprintf("sweep/%d/%d/%d", int(f), trainWeek, n)
	v, _ := w.Memo(key, func() (any, error) {
		var max float64
		if w.Streaming() {
			// Max is a fold over disjoint shard maxima; the mutex only
			// orders the per-shard folds, the result is order-free.
			var mu sync.Mutex
			err := w.StreamShards(0, func(view *Workspace, lo, hi int) error {
				sorted := view.Sorted(f, trainWeek)
				local := 0.0
				for _, col := range sorted {
					if len(col) > 0 && col[len(col)-1] > local {
						local = col[len(col)-1]
					}
				}
				mu.Lock()
				if local > max {
					max = local
				}
				mu.Unlock()
				return nil
			})
			if err != nil {
				return nil, err
			}
		} else {
			sorted := w.Sorted(f, trainWeek)
			for u := 0; u < w.users; u++ {
				if col := sorted[u]; len(col) > 0 {
					if v := col[len(col)-1]; v > max {
						max = v
					}
				}
			}
		}
		if max < 2 {
			max = 2
		}
		return GeomSpace(1, max, n), nil
	})
	return v.([]float64)
}

// Assignment returns the memoized threshold configuration of one
// policy on one feature's training week. sweepKey must uniquely
// identify the attack-magnitude input (use "" for nil magnitudes):
// the cache key is (feature, week, policy name, sweepKey). When the
// policy's heuristic optimizes an objective over the threshold
// frontier, the configuration reuses the workspace's memoized
// per-user frontiers, so every frontier-scoring heuristic under the
// same sweep shares one frontier build per user. The returned
// assignment is shared and must not be modified.
func (w *Workspace) Assignment(f features.Feature, trainWeek int, pol core.Policy, attack []float64, sweepKey string) (*core.Assignment, error) {
	key := fmt.Sprintf("asn/%d/%d/%s/%s", int(f), trainWeek, pol.Name(), sweepKey)
	v, err := w.Memo(key, func() (any, error) {
		if w.Streaming() {
			asn, ok, err := w.streamAssignment(f, trainWeek, pol, attack)
			if err != nil {
				return nil, err
			}
			if ok {
				return asn, nil
			}
			// Not streamable (the heuristic has no bounded fold over
			// merged groups): fall through to the whole-heap configure.
		}
		in := core.ConfigureInput{Train: w.Dists(f, trainWeek), Policy: pol, Attack: attack}
		if _, ok := pol.Heuristic.(core.FrontierScorer); ok && len(attack) > 0 {
			fronts, err := w.Frontiers(f, trainWeek, attack, sweepKey)
			if err != nil {
				return nil, err
			}
			in.UserFrontiers = fronts
		}
		return core.ConfigureWith(in)
	})
	if err != nil {
		return nil, err
	}
	return v.(*core.Assignment), nil
}

// Frontiers returns every user's memoized threshold frontier of one
// feature's training week for one attack-magnitude set — the shared
// substrate of all objective-optimizing heuristics (utility for any
// weight, F-measure) under that sweep. sweepKey must uniquely
// identify attack, exactly as for Assignment: the cache key is
// (user, feature, week, sweepKey) with the user as the slice index.
// Each frontier compresses its user's sorted column into unique
// values plus a precomputed CDF and owns only that plus its sweep
// scratch; the returned slice and frontiers are shared and must be
// treated as read-only.
func (w *Workspace) Frontiers(f features.Feature, week int, attack []float64, sweepKey string) ([]*stats.Frontier, error) {
	key := fmt.Sprintf("frontier/%d/%d/%s", int(f), week, sweepKey)
	v, err := w.Memo(key, func() (any, error) {
		dists := w.Dists(f, week)
		out := make([]*stats.Frontier, w.users)
		err := par.ForEachErr(w.users, 0, func(u int) error {
			fr, err := stats.NewFrontier(dists[u], attack)
			if err != nil {
				return fmt.Errorf("analysis: user %d %s week %d frontier: %w", u, f, week, err)
			}
			out[u] = fr
			return nil
		})
		if err != nil {
			return nil, err
		}
		return out, nil
	})
	if err != nil {
		return nil, err
	}
	return v.([]*stats.Frontier), nil
}

// DaySorted returns, for every user, the per-day sorted window values
// of one feature-week: out[u][d] holds day d's windows of user u's
// column, sorted ascending. Fig 4a's day-long constant-overlay attack
// sweeps read their TP counts off these columns with one binary
// search per (policy, size, day, user) instead of re-walking every
// window per magnitude. The result is memoized; slices are shared and
// read-only.
func (w *Workspace) DaySorted(f features.Feature, week int) [][][]float64 {
	key := fmt.Sprintf("daysorted/%d/%d", int(f), week)
	v, _ := w.Memo(key, func() (any, error) {
		if w.snap != nil {
			// Day views ship pre-sorted in the snapshot: serve them
			// as zero-copy views of the mapping, after the same
			// malformed-writer scan ensureBlock runs on the sorted
			// columns (the checksum only proves the bytes are what
			// the writer produced, not that the writer was right).
			out := make([][][]float64, w.users)
			par.ForEach(w.users, 0, func(u int) {
				days := w.snap.DayColumns(w.userBase+u, week, int(f))
				for d, day := range days {
					for i, v := range day {
						if math.IsNaN(v) || (i > 0 && v < day[i-1]) {
							panic(fmt.Sprintf("analysis: snapshot user %d %s week %d day %d: day view not sorted at %d", w.userBase+u, f, week, d, i))
						}
					}
				}
				out[u] = days
			})
			return out, nil
		}
		raw := w.Raw(f, week)
		binsPerDay := w.binsPerWeek / 7
		out := make([][][]float64, w.users)
		par.ForEach(w.users, 0, func(u int) {
			buf := make([]float64, 7*binsPerDay)
			days := make([][]float64, 7)
			for d := 0; d < 7; d++ {
				col := buf[d*binsPerDay : (d+1)*binsPerDay]
				copy(col, raw[u][d*binsPerDay:(d+1)*binsPerDay])
				sort.Float64s(col)
				days[d] = col
			}
			out[u] = days
		})
		return out, nil
	})
	return v.([][][]float64)
}

// OverlaySplit is the benign/attacked decomposition of one overlaid
// test week, pre-sorted for binary-search confusion counting.
type OverlaySplit struct {
	// Benign[u] holds the sorted observed values of user u's
	// zero-overlay windows; Attacked[u] the sorted observed values
	// (window + overlay) of the attacked (overlay > 0) windows.
	Benign, Attacked [][]float64
}

// SplitOverlay returns the memoized benign/attacked split of one
// feature-week under an additive overlay. overlayKey must uniquely
// identify overlay (same contract as Assignment's sweepKey); overlay
// must be non-negative and cover exactly one week of windows. Every
// per-user confusion matrix of the overlaid week then reduces to two
// binary searches (stats.CountAboveSorted on each half) — the values
// are the identical g+a sums a window-by-window core.Evaluate walk
// would compare, so the counts match it exactly. Shared, read-only.
func (w *Workspace) SplitOverlay(f features.Feature, week int, overlay []float64, overlayKey string) (*OverlaySplit, error) {
	key := fmt.Sprintf("split/%d/%d/%s", int(f), week, overlayKey)
	v, err := w.Memo(key, func() (any, error) {
		if len(overlay) != w.binsPerWeek {
			return nil, fmt.Errorf("analysis: overlay covers %d windows, week has %d", len(overlay), w.binsPerWeek)
		}
		attacked := 0
		for b, a := range overlay {
			if a < 0 {
				return nil, fmt.Errorf("analysis: negative overlay %g at window %d", a, b)
			}
			if a > 0 {
				attacked++
			}
		}
		raw := w.Raw(f, week)
		out := &OverlaySplit{
			Benign:   make([][]float64, w.users),
			Attacked: make([][]float64, w.users),
		}
		par.ForEach(w.users, 0, func(u int) {
			att := make([]float64, 0, attacked)
			ben := make([]float64, 0, w.binsPerWeek-attacked)
			for b, a := range overlay {
				if a > 0 {
					att = append(att, raw[u][b]+a)
				} else {
					ben = append(ben, raw[u][b])
				}
			}
			sort.Float64s(att)
			sort.Float64s(ben)
			out.Attacked[u], out.Benign[u] = att, ben
		})
		return out, nil
	})
	if err != nil {
		return nil, err
	}
	return v.(*OverlaySplit), nil
}

// GeomSpace returns n geometrically spaced values over [lo, hi],
// guarding the degenerate inputs that used to yield NaN/Inf
// magnitudes (empty training weeks drive hi to 0): non-positive or
// non-finite bounds are clamped so the result is always finite and
// non-decreasing.
func GeomSpace(lo, hi float64, n int) []float64 {
	if lo <= 0 || math.IsNaN(lo) || math.IsInf(lo, 0) {
		lo = 1
	}
	if hi <= lo || math.IsNaN(hi) || math.IsInf(hi, 0) {
		hi = lo
	}
	if n < 2 {
		return []float64{hi}
	}
	out := make([]float64, n)
	if hi == lo {
		for i := range out {
			out[i] = lo
		}
		return out
	}
	ratio := hi / lo
	for i := range out {
		out[i] = lo * math.Pow(ratio, float64(i)/float64(n-1))
	}
	return out
}
