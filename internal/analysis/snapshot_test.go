package analysis

import (
	"bytes"
	"context"
	"os"
	"reflect"
	"testing"
	"time"

	"repro/internal/features"
	"repro/internal/snapshot"
	"repro/internal/trace"
)

func popAndKey(t *testing.T, users, weeks int, seed uint64, binWidth time.Duration) (*trace.Population, snapshot.Key) {
	t.Helper()
	pop := trace.MustPopulation(trace.Config{
		Users: users, Weeks: weeks, Seed: seed, BinWidth: binWidth,
	})
	key, err := snapshot.KeyFor(pop.Cfg)
	if err != nil {
		t.Fatal(err)
	}
	return pop, key
}

// requireEqualWorkspaces asserts that two workspaces serve
// bit-identical views: matrices, raw and sorted columns,
// distributions, tail stats and day views.
func requireEqualWorkspaces(t *testing.T, got, want *Workspace) {
	t.Helper()
	if got.Users() != want.Users() || got.Weeks() != want.Weeks() ||
		got.BinsPerWeek() != want.BinsPerWeek() || got.BinWidth() != want.BinWidth() {
		t.Fatalf("geometry (%d,%d,%d,%v) != (%d,%d,%d,%v)",
			got.Users(), got.Weeks(), got.BinsPerWeek(), got.BinWidth(),
			want.Users(), want.Weeks(), want.BinsPerWeek(), want.BinWidth())
	}
	for u := 0; u < want.Users(); u++ {
		gm, wm := got.Matrices()[u], want.Matrices()[u]
		if gm.BinWidth != wm.BinWidth || gm.StartMicros != wm.StartMicros {
			t.Fatalf("user %d matrix metadata diverges", u)
		}
		if !reflect.DeepEqual(gm.Rows, wm.Rows) {
			t.Fatalf("user %d matrix rows diverge", u)
		}
	}
	for week := 0; week < want.Weeks(); week++ {
		for _, f := range features.All() {
			if !reflect.DeepEqual(got.Raw(f, week), want.Raw(f, week)) {
				t.Fatalf("%s week %d: raw columns diverge", f, week)
			}
			if !reflect.DeepEqual(got.Sorted(f, week), want.Sorted(f, week)) {
				t.Fatalf("%s week %d: sorted columns diverge", f, week)
			}
			if !reflect.DeepEqual(got.DaySorted(f, week), want.DaySorted(f, week)) {
				t.Fatalf("%s week %d: day views diverge", f, week)
			}
			gt, err := got.TailStats(f, week, 0.99)
			if err != nil {
				t.Fatal(err)
			}
			wt, err := want.TailStats(f, week, 0.99)
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(gt, wt) {
				t.Fatalf("%s week %d: tail stats diverge", f, week)
			}
			for u := 0; u < want.Users(); u++ {
				gd, wd := got.Dist(u, f, week), want.Dist(u, f, week)
				if gd.N() != wd.N() || gd.Min() != wd.Min() || gd.Max() != wd.Max() ||
					gd.MustQuantile(0.999) != wd.MustQuantile(0.999) {
					t.Fatalf("%s week %d user %d: distributions diverge", f, week, u)
				}
			}
		}
	}
}

// TestSnapshotRoundTripProperty is the Save→Load property test: for
// every seed (including the heavy-tail monsters 53 and 87 that stress
// episode levels and destination pools) and population shape, the
// loaded workspace is bit-identical to the in-memory one it was saved
// from.
func TestSnapshotRoundTripProperty(t *testing.T) {
	for _, tc := range []struct {
		seed     uint64
		users    int
		weeks    int
		binWidth time.Duration
	}{
		{1, 9, 2, 3 * time.Hour},
		{7, 5, 3, 6 * time.Hour},
		{53, 11, 2, 3 * time.Hour}, // heavy-tail seed
		{87, 8, 2, 6 * time.Hour},  // heavy-tail seed
		{424242, 3, 2, 90 * time.Minute},
	} {
		pop, key := popAndKey(t, tc.users, tc.weeks, tc.seed, tc.binWidth)
		dir := t.TempDir()
		mem := NewGenerated(tc.users, func(u int) *features.Matrix {
			return pop.Users[u].Series()
		})
		path, err := mem.Save(dir, key)
		if err != nil {
			t.Fatalf("seed %d: %v", tc.seed, err)
		}
		if _, err := os.Stat(path); err != nil {
			t.Fatalf("seed %d: sealed file missing: %v", tc.seed, err)
		}
		loaded, err := Load(dir, key)
		if err != nil {
			t.Fatalf("seed %d: %v", tc.seed, err)
		}
		requireEqualWorkspaces(t, loaded, mem)
		if err := loaded.Close(); err != nil {
			t.Fatalf("seed %d: %v", tc.seed, err)
		}
		if err := loaded.Close(); err != nil { // idempotent
			t.Fatal(err)
		}
	}
}

// TestMaterializeShardedBitIdentical pins the sharded streaming path
// to the unsharded one at the byte level: the snapshot file written
// shard by shard must equal the file Save produces from a fully
// in-memory workspace, for shard sizes that divide the population
// unevenly. In full (non -short) mode the population is the
// 5000-user ROADMAP scale, demonstrating that sharding changes only
// peak memory, never a single byte of output.
func TestMaterializeShardedBitIdentical(t *testing.T) {
	users, weeks, binWidth := 5000, 1, 15*time.Minute
	shards := []int{512}
	if testing.Short() {
		users, weeks, binWidth = 37, 2, 3*time.Hour
		shards = []int{1, 5, 16, 37, 1000}
	}
	pop, key := popAndKey(t, users, weeks, 1, binWidth)
	memDir := t.TempDir()
	mem := NewGenerated(users, func(u int) *features.Matrix {
		return pop.Users[u].Series()
	})
	memPath, err := mem.Save(memDir, key)
	if err != nil {
		t.Fatal(err)
	}
	want, err := os.ReadFile(memPath)
	if err != nil {
		t.Fatal(err)
	}
	for _, shard := range shards {
		dir := t.TempDir()
		ws, err := MaterializeSharded(context.Background(), dir, key, shard, func(u int, rows [][features.NumFeatures]float64) {
			pop.Users[u].FillSeries(rows)
		})
		if err != nil {
			t.Fatalf("shard %d: %v", shard, err)
		}
		if ws.Users() != users {
			t.Fatalf("shard %d: %d users", shard, ws.Users())
		}
		if err := ws.Close(); err != nil {
			t.Fatal(err)
		}
		got, err := os.ReadFile(key.Path(dir))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("shard %d: sharded snapshot bytes differ from unsharded Save", shard)
		}
	}
}

// TestLoadRejectsCorruptOrStale exercises the fall-back contract at
// the analysis layer: truncation, payload bit-flips and a bumped
// engine version must all fail Load (callers then regenerate).
func TestLoadRejectsCorruptOrStale(t *testing.T) {
	pop, key := popAndKey(t, 4, 2, 5, 6*time.Hour)
	build := func(t *testing.T) (string, string) {
		dir := t.TempDir()
		ws := NewGenerated(4, func(u int) *features.Matrix { return pop.Users[u].Series() })
		path, err := ws.Save(dir, key)
		if err != nil {
			t.Fatal(err)
		}
		return dir, path
	}
	for name, mutate := range map[string]func(b []byte) []byte{
		"truncated": func(b []byte) []byte { return b[:len(b)/2] },
		"payload bit flip": func(b []byte) []byte {
			b[len(b)-3] ^= 0x10
			return b
		},
		"stale engine version": func(b []byte) []byte {
			b[8+8]++ // engine field, low byte
			return b
		},
	} {
		t.Run(name, func(t *testing.T) {
			dir, path := build(t)
			b, err := os.ReadFile(path)
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(path, mutate(b), 0o644); err != nil {
				t.Fatal(err)
			}
			if ws, err := Load(dir, key); err == nil {
				ws.Close()
				t.Fatal("Load accepted a corrupt/stale snapshot")
			} else {
				t.Log(err)
			}
		})
	}
}

// TestSaveRejectsMismatchedKey guards the geometry validation: a key
// whose shape disagrees with the workspace must not produce a file.
func TestSaveRejectsMismatchedKey(t *testing.T) {
	pop, key := popAndKey(t, 4, 2, 5, 6*time.Hour)
	ws := NewGenerated(4, func(u int) *features.Matrix { return pop.Users[u].Series() })
	dir := t.TempDir()
	for name, bad := range map[string]snapshot.Key{
		"users":     {Seed: key.Seed, Users: 5, Weeks: key.Weeks, BinWidth: key.BinWidth, StartMicros: key.StartMicros, HeavyFraction: key.HeavyFraction, WeeklyTrend: key.WeeklyTrend},
		"weeks":     {Seed: key.Seed, Users: 4, Weeks: 3, BinWidth: key.BinWidth, StartMicros: key.StartMicros, HeavyFraction: key.HeavyFraction, WeeklyTrend: key.WeeklyTrend},
		"bin width": {Seed: key.Seed, Users: 4, Weeks: key.Weeks, BinWidth: 3 * time.Hour, StartMicros: key.StartMicros, HeavyFraction: key.HeavyFraction, WeeklyTrend: key.WeeklyTrend},
		"start":     {Seed: key.Seed, Users: 4, Weeks: key.Weeks, BinWidth: key.BinWidth, StartMicros: key.StartMicros + 60e6, HeavyFraction: key.HeavyFraction, WeeklyTrend: key.WeeklyTrend},
	} {
		if _, err := ws.Save(dir, bad); err == nil {
			t.Fatalf("%s: Save accepted a mismatched key", name)
		}
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(ents) != 0 {
		t.Fatalf("rejected Saves left files behind: %v", ents)
	}
}
