package analysis

import (
	"math"
	"sort"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/features"
	"repro/internal/stats"
	"repro/internal/trace"
)

// testMatrices builds a small deterministic population: user u's
// feature f value in bin b is a simple mix of all three indices.
func testMatrices(users, weeks int) []*features.Matrix {
	const binWidth = 6 * time.Hour // 28 bins/week keeps the test fast
	bpw := int((7 * 24 * time.Hour) / binWidth)
	out := make([]*features.Matrix, users)
	for u := 0; u < users; u++ {
		m := features.NewMatrix(binWidth, 0, weeks*bpw)
		for b := range m.Rows {
			for f := 0; f < features.NumFeatures; f++ {
				m.Rows[b][f] = float64((u + 1) * (f + 2) * ((b * 7) % 13) % 101)
			}
		}
		out[u] = m
	}
	return out
}

func TestWorkspaceColumnsMatchMatrix(t *testing.T) {
	ms := testMatrices(5, 2)
	ws := New(ms)
	if ws.Users() != 5 || ws.Weeks() != 2 {
		t.Fatalf("geometry: %d users, %d weeks", ws.Users(), ws.Weeks())
	}
	for week := 0; week < 2; week++ {
		raw := ws.Raw(features.TCP, week)
		sorted := ws.Sorted(features.TCP, week)
		dists := ws.Dists(features.TCP, week)
		for u, m := range ms {
			lo, hi := m.WeekRange(week)
			want := m.ColumnSlice(features.TCP, lo, hi)
			if len(raw[u]) != len(want) {
				t.Fatalf("user %d raw length %d != %d", u, len(raw[u]), len(want))
			}
			for b := range want {
				if raw[u][b] != want[b] {
					t.Fatalf("user %d bin %d: raw %g != %g", u, b, raw[u][b], want[b])
				}
			}
			// Sorted view is a permutation with the same quantiles as a
			// freshly built distribution.
			ref, err := stats.NewEmpirical(want)
			if err != nil {
				t.Fatal(err)
			}
			for _, q := range []float64{0, 0.25, 0.5, 0.99, 1} {
				got, err := stats.QuantileSorted(sorted[u], q)
				if err != nil || got != ref.MustQuantile(q) {
					t.Fatalf("user %d q%g: %g != %g (%v)", u, q, got, ref.MustQuantile(q), err)
				}
				if dv := dists[u].MustQuantile(q); dv != ref.MustQuantile(q) {
					t.Fatalf("user %d dist q%g: %g != %g", u, q, dv, ref.MustQuantile(q))
				}
			}
		}
	}
	// Memoized: same backing arrays on the second call.
	if &ws.Raw(features.TCP, 0)[0][0] != &ws.Raw(features.TCP, 0)[0][0] {
		t.Fatal("Raw not cached")
	}
}

func TestWorkspaceTailStats(t *testing.T) {
	ms := testMatrices(4, 1)
	ws := New(ms)
	tails, err := ws.TailStats(features.UDP, 0, 0.99)
	if err != nil {
		t.Fatal(err)
	}
	if len(tails) != 4 {
		t.Fatalf("%d tails", len(tails))
	}
	for u, m := range ms {
		lo, hi := m.WeekRange(0)
		d, _ := m.Distribution(features.UDP, lo, hi)
		if want := d.MustQuantile(0.99); tails[u] != want {
			t.Fatalf("user %d: %g != %g", u, tails[u], want)
		}
	}
	again, _ := ws.TailStats(features.UDP, 0, 0.99)
	if &again[0] != &tails[0] {
		t.Fatal("TailStats not memoized")
	}
}

func TestWorkspaceSweep(t *testing.T) {
	ms := testMatrices(3, 1)
	ws := New(ms)
	sweep := ws.Sweep(features.TCP, 0, 10)
	if len(sweep) != 10 || sweep[0] != 1 {
		t.Fatalf("sweep = %v", sweep)
	}
	var max float64
	for _, m := range ms {
		lo, hi := m.WeekRange(0)
		for b := lo; b < hi; b++ {
			if v := m.Rows[b][features.TCP]; v > max {
				max = v
			}
		}
	}
	if math.Abs(sweep[len(sweep)-1]-max) > 1e-9*max {
		t.Fatalf("sweep max %g != population max %g", sweep[len(sweep)-1], max)
	}
	if again := ws.Sweep(features.TCP, 0, 10); &again[0] != &sweep[0] {
		t.Fatal("Sweep not memoized")
	}
}

func TestWorkspaceAssignmentMemoized(t *testing.T) {
	ws := New(testMatrices(6, 1))
	pol := core.Policy{Heuristic: core.Percentile{Q: 0.99}, Grouping: core.FullDiversity{}}
	a1, err := ws.Assignment(features.TCP, 0, pol, nil, "")
	if err != nil {
		t.Fatal(err)
	}
	a2, err := ws.Assignment(features.TCP, 0, pol, nil, "")
	if err != nil {
		t.Fatal(err)
	}
	if a1 != a2 {
		t.Fatal("Assignment not memoized")
	}
	// A different policy must get its own cache slot.
	other, err := ws.Assignment(features.TCP, 0,
		core.Policy{Heuristic: core.Percentile{Q: 0.99}, Grouping: core.Homogeneous{}}, nil, "")
	if err != nil {
		t.Fatal(err)
	}
	if other == a1 {
		t.Fatal("distinct policies share a cache entry")
	}
}

func TestMemoSingleFlight(t *testing.T) {
	ws := New(testMatrices(2, 1))
	var calls int
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			v, err := ws.Memo("k", func() (any, error) {
				calls++ // safe: Memo guarantees exactly one invocation
				return 42, nil
			})
			if err != nil || v.(int) != 42 {
				panic("memo value wrong")
			}
		}()
	}
	wg.Wait()
	if calls != 1 {
		t.Fatalf("memoized fn called %d times", calls)
	}
}

func TestGeomSpaceGuards(t *testing.T) {
	// The degenerate inputs that used to produce NaN/Inf.
	for _, tc := range []struct{ lo, hi float64 }{
		{0, 100}, {-5, 100}, {1, 0}, {1, 1}, {0, 0},
		{math.NaN(), 10}, {1, math.NaN()}, {1, math.Inf(1)},
	} {
		out := GeomSpace(tc.lo, tc.hi, 8)
		if len(out) != 8 {
			t.Fatalf("GeomSpace(%g,%g) length %d", tc.lo, tc.hi, len(out))
		}
		for i, v := range out {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Fatalf("GeomSpace(%g,%g)[%d] = %g", tc.lo, tc.hi, i, v)
			}
			if i > 0 && v < out[i-1] {
				t.Fatalf("GeomSpace(%g,%g) decreasing at %d: %v", tc.lo, tc.hi, i, out)
			}
		}
	}
	// The healthy path is unchanged.
	v := GeomSpace(1, 100, 3)
	for i, want := range []float64{1, 10, 100} {
		if math.Abs(v[i]-want) > 1e-9 {
			t.Fatalf("GeomSpace(1,100,3) = %v", v)
		}
	}
}

// TestFrontiersMemoizedAndIdentical pins the workspace's per-user
// frontiers to fresh builds from the same distributions, and the
// frontier-backed Assignment to a frontier-free core.Configure.
func TestFrontiersMemoizedAndIdentical(t *testing.T) {
	ws := New(testMatrices(9, 2))
	attack := GeomSpace(1, 500, 6)
	fronts, err := ws.Frontiers(features.TCP, 0, attack, "sp6")
	if err != nil {
		t.Fatal(err)
	}
	again, err := ws.Frontiers(features.TCP, 0, attack, "sp6")
	if err != nil {
		t.Fatal(err)
	}
	if &fronts[0] != &again[0] {
		t.Fatal("frontiers not memoized: second call rebuilt the slice")
	}
	u := core.UtilityOptimal{W: 0.4}
	dists := ws.Dists(features.TCP, 0)
	for i, fr := range fronts {
		fresh, err := stats.NewFrontier(dists[i], attack)
		if err != nil {
			t.Fatal(err)
		}
		if got, want := fr.Maximize(u.Score), fresh.Maximize(u.Score); got != want {
			t.Fatalf("user %d: memoized frontier threshold %v != fresh %v", i, got, want)
		}
	}
	for _, h := range []core.Heuristic{core.UtilityOptimal{W: 0.4}, core.FMeasureOptimal{}} {
		pol := core.Policy{Heuristic: h, Grouping: core.FullDiversity{}}
		asn, err := ws.Assignment(features.TCP, 0, pol, attack, "sp6")
		if err != nil {
			t.Fatal(err)
		}
		ref, err := core.Configure(dists, pol, attack)
		if err != nil {
			t.Fatal(err)
		}
		for i := range ref.Thresholds {
			if asn.Thresholds[i] != ref.Thresholds[i] {
				t.Fatalf("%s: user %d cached-frontier threshold %v != plain Configure %v",
					pol.Name(), i, asn.Thresholds[i], ref.Thresholds[i])
			}
		}
	}
}

// TestDaySortedMatchesRaw checks the per-day sorted columns are exact
// sorted permutations of the raw day slices and are memoized.
func TestDaySortedMatchesRaw(t *testing.T) {
	ws := New(testMatrices(4, 2))
	days := ws.DaySorted(features.UDP, 1)
	raw := ws.Raw(features.UDP, 1)
	binsPerDay := ws.BinsPerWeek() / 7
	for u := range days {
		if len(days[u]) != 7 {
			t.Fatalf("user %d has %d days", u, len(days[u]))
		}
		for d := 0; d < 7; d++ {
			want := append([]float64(nil), raw[u][d*binsPerDay:(d+1)*binsPerDay]...)
			sort.Float64s(want)
			got := days[u][d]
			if len(got) != len(want) {
				t.Fatalf("user %d day %d: %d windows, want %d", u, d, len(got), len(want))
			}
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("user %d day %d window %d: %v != %v", u, d, i, got[i], want[i])
				}
			}
		}
	}
	if again := ws.DaySorted(features.UDP, 1); &again[0] != &days[0] {
		t.Fatal("day-sorted columns not memoized")
	}
}

// TestSplitOverlayMatchesEvaluate pins the sorted benign/attacked
// decomposition against a window-by-window core.Evaluate: identical
// confusion counts for every user and threshold.
func TestSplitOverlayMatchesEvaluate(t *testing.T) {
	ws := New(testMatrices(6, 2))
	bins := ws.BinsPerWeek()
	overlay := make([]float64, bins)
	for b := range overlay {
		if b%3 == 0 {
			overlay[b] = float64(5 + b%17)
		}
	}
	split, err := ws.SplitOverlay(features.TCP, 1, overlay, "test-overlay")
	if err != nil {
		t.Fatal(err)
	}
	raw := ws.Raw(features.TCP, 1)
	for u := range raw {
		for _, thr := range []float64{0, 10, 33.5, 90, 1e9} {
			want, err := core.Evaluate(raw[u], overlay, thr)
			if err != nil {
				t.Fatal(err)
			}
			tp := stats.CountAboveSorted(split.Attacked[u], thr)
			fp := stats.CountAboveSorted(split.Benign[u], thr)
			got := stats.Confusion{
				TP: tp, FN: len(split.Attacked[u]) - tp,
				FP: fp, TN: len(split.Benign[u]) - fp,
			}
			if got != want {
				t.Fatalf("user %d thr %g: split confusion %+v != Evaluate %+v", u, thr, got, want)
			}
		}
	}
	if _, err := ws.SplitOverlay(features.TCP, 1, overlay[:3], "short"); err == nil {
		t.Fatal("short overlay accepted")
	}
	neg := make([]float64, bins)
	neg[0] = -1
	if _, err := ws.SplitOverlay(features.TCP, 1, neg, "neg"); err == nil {
		t.Fatal("negative overlay accepted")
	}
}

// TestAssignmentsConcurrentFrontierSharing rebuilds the production
// race scenario: the three grouping policies of one objective
// heuristic configure in parallel (as evalPolicies does), and with a
// small population both full diversity and 8-partial produce
// singleton groups — so two goroutines sweep the same memoized
// per-user frontier simultaneously. Run under -race; thresholds must
// also match a serial reference workspace exactly.
func TestAssignmentsConcurrentFrontierSharing(t *testing.T) {
	ms := testMatrices(20, 2)
	attack := GeomSpace(1, 300, 8)
	h := core.UtilityOptimal{W: 0.4}
	pols := []core.Policy{
		{Heuristic: h, Grouping: core.Homogeneous{}},
		{Heuristic: h, Grouping: core.FullDiversity{}},
		{Heuristic: h, Grouping: core.PartialDiversity{NumGroups: 8}},
	}
	for round := 0; round < 10; round++ {
		ws := New(ms)
		got := make([]*core.Assignment, len(pols))
		var wg sync.WaitGroup
		for p := range pols {
			wg.Add(1)
			go func(p int) {
				defer wg.Done()
				asn, err := ws.Assignment(features.TCP, 0, pols[p], attack, "sp8")
				if err != nil {
					panic(err)
				}
				got[p] = asn
			}(p)
		}
		wg.Wait()
		ref := New(ms) // serial reference
		for p, pol := range pols {
			want, err := ref.Assignment(features.TCP, 0, pol, attack, "sp8")
			if err != nil {
				t.Fatal(err)
			}
			for u := range want.Thresholds {
				if got[p].Thresholds[u] != want.Thresholds[u] {
					t.Fatalf("round %d %s: user %d threshold %v != serial %v",
						round, pol.Name(), u, got[p].Thresholds[u], want.Thresholds[u])
				}
			}
		}
	}
}

// TestNewGeneratedMatchesNewWarm pins the fused constructor to the
// two-pass flow: generating matrices inside NewGenerated's parallel
// pass must yield exactly the blocks New+Warm builds from the same
// matrices, and the workspace must adopt the produced matrices.
func TestNewGeneratedMatchesNewWarm(t *testing.T) {
	ms := testMatrices(12, 2)
	fused := NewGenerated(len(ms), func(u int) *features.Matrix { return ms[u] })
	ref := New(ms)
	ref.Warm()
	if got := fused.Matrices(); len(got) != len(ms) || got[3] != ms[3] {
		t.Fatal("fused workspace did not adopt the generated matrices")
	}
	for week := 0; week < fused.Weeks(); week++ {
		for _, f := range features.All() {
			gotRaw, wantRaw := fused.Raw(f, week), ref.Raw(f, week)
			gotSorted, wantSorted := fused.Sorted(f, week), ref.Sorted(f, week)
			for u := range wantRaw {
				for b := range wantRaw[u] {
					if gotRaw[u][b] != wantRaw[u][b] || gotSorted[u][b] != wantSorted[u][b] {
						t.Fatalf("%s week %d user %d: fused columns diverge", f, week, u)
					}
				}
				if fused.Dist(u, f, week).N() != ref.Dist(u, f, week).N() {
					t.Fatalf("%s week %d user %d: dists diverge", f, week, u)
				}
			}
		}
	}
}

// TestNewGeneratedParallelGeneration drives real trace generators
// from NewGenerated's worker pool into one shared workspace — the
// -race guard for the fused generate-extract-sort pass — and checks
// the result is identical to serial per-user generation.
func TestNewGeneratedParallelGeneration(t *testing.T) {
	pop := trace.MustPopulation(trace.Config{Users: 16, Weeks: 2, Seed: 21})
	ws := NewGenerated(len(pop.Users), func(u int) *features.Matrix {
		return pop.Users[u].Series()
	})
	for u, want := range pop.Users {
		m := want.Series()
		got := ws.Matrices()[u]
		for b := range m.Rows {
			if got.Rows[b] != m.Rows[b] {
				t.Fatalf("user %d bin %d: parallel generation diverges from serial", u, b)
			}
		}
	}
}

func TestNewGeneratedPanics(t *testing.T) {
	ms := testMatrices(3, 1)
	bad := features.NewMatrix(ms[0].BinWidth, 0, ms[0].Bins()*2)
	for name, fn := range map[string]func(){
		"empty": func() { NewGenerated(0, func(int) *features.Matrix { return nil }) },
		"geometry": func() {
			NewGenerated(2, func(u int) *features.Matrix {
				if u == 1 {
					return bad
				}
				return ms[u]
			})
		},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", name)
				}
			}()
			fn()
		}()
	}
}
