package analysis

import (
	"context"
	"math"
	"reflect"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/features"
)

// streamedPair materializes one sharded store and maps it twice: a
// whole-heap workspace and a streaming one armed with shardUsers.
// Both read the same sealed bytes, so any divergence is the streaming
// layer's fault alone.
func streamedPair(t *testing.T, users int, seed uint64, shardUsers int) (whole, streamed *Workspace) {
	t.Helper()
	pop, key := popAndKey(t, users, 2, seed, 6*time.Hour)
	dir := t.TempDir()
	gen := func(u int, rows [][features.NumFeatures]float64) {
		pop.Users[u].FillSeries(rows)
	}
	ws, err := MaterializeSharded(context.Background(), dir, key, 0, gen)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { ws.Close() })
	streamed, err = Load(dir, key)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { streamed.Close() })
	streamed.SetStreamShard(shardUsers)
	if !streamed.Streaming() {
		t.Fatal("SetStreamShard did not arm streaming on a mapped workspace")
	}
	return ws, streamed
}

// TestStreamingMatchesWholeHeap is the tentpole's equivalence pin:
// every population-wide artifact computed through bounded shards must
// be bit-identical — not close — to the whole-heap computation, for
// shard sizes bracketing the geometry (single user, odd size that
// leaves a ragged tail, larger than the population) and for a
// heavy-tail seed on each.
func TestStreamingMatchesWholeHeap(t *testing.T) {
	const users = 37
	policies := []core.Policy{
		{Heuristic: core.Percentile{Q: 0.99}, Grouping: core.Homogeneous{}},
		{Heuristic: core.Percentile{Q: 0.99}, Grouping: core.FullDiversity{}},
		{Heuristic: core.UtilityOptimal{W: 0.4}, Grouping: core.PartialDiversity{NumGroups: 8}},
		// No bounded fold for MeanSigma over merged groups: the
		// streaming path must fall back to the whole-heap configure
		// and still agree.
		{Heuristic: core.MeanSigma{K: 3}, Grouping: core.Homogeneous{}},
	}
	for _, tc := range []struct {
		seed  uint64
		shard int
	}{
		{53, 1}, {53, 7}, {87, 7}, {87, 128},
	} {
		whole, streamed := streamedPair(t, users, tc.seed, tc.shard)
		f, trainWeek, testWeek := features.TCP, 0, 1

		wt, err := whole.TailStats(f, trainWeek, 0.99)
		if err != nil {
			t.Fatal(err)
		}
		st, err := streamed.TailStats(f, trainWeek, 0.99)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(wt, st) {
			t.Fatalf("seed %d shard %d: tail stats diverge", tc.seed, tc.shard)
		}
		wsw, ssw := whole.Sweep(f, trainWeek, 24), streamed.Sweep(f, trainWeek, 24)
		for i := range wsw {
			if math.Float64bits(wsw[i]) != math.Float64bits(ssw[i]) {
				t.Fatalf("seed %d shard %d: sweep[%d] %v != %v", tc.seed, tc.shard, i, ssw[i], wsw[i])
			}
		}
		for _, pol := range policies {
			wa, err := whole.Assignment(f, trainWeek, pol, wsw, "sp24")
			if err != nil {
				t.Fatal(err)
			}
			sa, err := streamed.Assignment(f, trainWeek, pol, ssw, "sp24")
			if err != nil {
				t.Fatal(err)
			}
			if !reflect.DeepEqual(wa, sa) {
				t.Fatalf("seed %d shard %d %s: assignments diverge", tc.seed, tc.shard, pol.Name())
			}
			shared := make([]float64, whole.BinsPerWeek())
			for i := range shared {
				if i%4 == 3 {
					shared[i] = wsw[i%len(wsw)]
				}
			}
			for _, overlay := range [][]float64{nil, shared} {
				attack := make([][]float64, users)
				if overlay != nil {
					for u := range attack {
						attack[u] = overlay
					}
				}
				want, err := core.EvaluatePolicy(core.EvalInput{
					Test:       whole.Raw(f, testWeek),
					Attack:     attack,
					Policy:     pol,
					Assignment: wa,
				})
				if err != nil {
					t.Fatal(err)
				}
				got, err := streamed.EvaluateSharded(f, testWeek, sa, overlay, 4)
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(want, got) {
					t.Fatalf("seed %d shard %d %s overlay=%v: evaluations diverge",
						tc.seed, tc.shard, pol.Name(), overlay != nil)
				}
			}
		}
	}
}

// TestViewRangeIsBitIdenticalWindow pins that a shard view serves the
// exact slices the parent serves for the same users — the property the
// whole streaming contract rests on — and that views reject nonsense
// ranges loudly.
func TestViewRangeIsBitIdenticalWindow(t *testing.T) {
	whole, streamed := streamedPair(t, 19, 53, 7)
	view := streamed.ViewRange(5, 12)
	if view.Users() != 7 {
		t.Fatalf("view users = %d, want 7", view.Users())
	}
	for week := 0; week < whole.Weeks(); week++ {
		for _, f := range features.All() {
			pr, ps := whole.Raw(f, week), whole.Sorted(f, week)
			vr, vs := view.Raw(f, week), view.Sorted(f, week)
			for u := 0; u < view.Users(); u++ {
				if !reflect.DeepEqual(vr[u], pr[5+u]) || !reflect.DeepEqual(vs[u], ps[5+u]) {
					t.Fatalf("%s week %d: view user %d diverges from parent user %d", f, week, u, 5+u)
				}
			}
			pd, vd := whole.DaySorted(f, week), view.DaySorted(f, week)
			for u := 0; u < view.Users(); u++ {
				if !reflect.DeepEqual(vd[u], pd[5+u]) {
					t.Fatalf("%s week %d: view day columns for user %d diverge", f, week, u)
				}
			}
		}
	}
	for _, r := range [][2]int{{-1, 3}, {3, 3}, {5, 99}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("ViewRange(%d, %d) did not panic", r[0], r[1])
				}
			}()
			streamed.ViewRange(r[0], r[1])
		}()
	}
}

// TestStreamShardsCoversEveryUserConcurrently runs the fold with more
// workers than shards on shared state — the -race guard for the
// parallel fan-out — and checks exact disjoint tiling of [0, users).
func TestStreamShardsCoversEveryUserConcurrently(t *testing.T) {
	_, streamed := streamedPair(t, 23, 87, 5)
	seen := make([]int, 23)
	var mu sync.Mutex
	err := streamed.StreamShards(8, func(view *Workspace, lo, hi int) error {
		if view.Users() != hi-lo {
			t.Errorf("view covers %d users for range [%d, %d)", view.Users(), lo, hi)
		}
		mu.Lock()
		defer mu.Unlock()
		for u := lo; u < hi; u++ {
			seen[u]++
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for u, n := range seen {
		if n != 1 {
			t.Fatalf("user %d visited %d times", u, n)
		}
	}
}

// TestStreamingWorkspaceServesIdenticalViews runs the full workspace
// equivalence battery (matrices, raw/sorted/day columns, tails,
// distributions) over a streaming-armed mapping vs a plain one.
func TestStreamingWorkspaceServesIdenticalViews(t *testing.T) {
	whole, streamed := streamedPair(t, 16, 53, 3)
	requireEqualWorkspaces(t, streamed, whole)
}
