package analysis

// The snapshot integration: a materialized Workspace is a pure
// function of its generation key, so it is computed once, persisted
// in internal/snapshot's columnar format, and mapped back as
// zero-copy views.
//
//   - Save serializes any workspace (rows are copied out of its
//     matrices; sorted columns and day views are recomputed from the
//     rows, which is bit-identical to the in-memory build because
//     sorting the same column yields the same slice).
//   - Load maps a snapshot and builds a workspace whose matrices,
//     sorted columns, distributions and day views alias the mapping.
//     Only the raw time-ordered columns are rebuilt (lazily, per
//     block): rows interleave the six features, so a raw column is
//     the one view the file cannot serve as a contiguous run.
//   - MaterializeSharded streams a population through bounded
//     user-shards straight into a snapshot writer — generate, derive,
//     append, release — so peak heap is O(shard × record), not
//     O(users × record), then Loads the result. The returned
//     workspace is bit-identical to NewGenerated over the same
//     generator.

import (
	"context"
	"errors"
	"fmt"
	"io/fs"
	"sort"
	"sync"
	"unsafe"

	"repro/internal/features"
	"repro/internal/par"
	"repro/internal/snapshot"
)

// DefaultShardUsers is the shard granularity used when a caller does
// not choose one: large enough to keep every core busy inside a
// shard, small enough that a shard buffer stays in the tens of
// megabytes at paper-scale geometries.
const DefaultShardUsers = 512

// Save writes the workspace to dir under the content-addressed key,
// returning the sealed file's path. The key's geometry must match the
// workspace; the key's generation fields (seed, trend, …) are the
// caller's assertion of where the matrices came from — Save cannot
// verify them, exactly as a build cache trusts its own key.
func (w *Workspace) Save(dir string, key snapshot.Key) (string, error) {
	lay := key.Layout()
	if key.Users != w.users || key.Weeks != w.weeks ||
		key.BinWidth != w.binWidth || lay.BinsPerWeek != w.binsPerWeek {
		return "", fmt.Errorf("analysis: snapshot key geometry (%d users, %d weeks, %v bins) does not match workspace (%d, %d, %v)",
			key.Users, key.Weeks, key.BinWidth, w.users, w.weeks, w.binWidth)
	}
	if sm := w.matrices[0].StartMicros; sm != key.StartMicros {
		return "", fmt.Errorf("analysis: snapshot key start %d does not match workspace start %d", key.StartMicros, sm)
	}
	wr, err := snapshot.Create(dir, key)
	if err != nil {
		return "", err
	}
	if err := writeRecords(context.Background(), wr, w.users, DefaultShardUsers, func(u int, rec []float64) {
		copy(rowsView(rec, lay), w.matrices[u].Rows)
		fillDerived(rec, lay)
	}); err != nil {
		wr.Abort()
		return "", err
	}
	if err := wr.Finish(); err != nil {
		return "", err
	}
	return key.Path(dir), nil
}

// Load maps the snapshot addressed by key under dir into a zero-copy
// workspace. Everything the workspace serves that the file holds —
// matrices, sorted columns, the distributions adopting them, day
// views — aliases the read-only mapping; mutating any of it faults.
// Load itself only maps and checksums the file (the warm path is two
// orders of magnitude cheaper than regeneration); per-(feature, week)
// views are wired on first use by the workspace's existing lazy block
// machinery. A missing, stale (engine or key mismatch) or corrupt
// (size or checksum) file returns an error and the caller
// regenerates. Close the workspace to release the mapping once
// nothing reads from it anymore.
func Load(dir string, key snapshot.Key) (*Workspace, error) {
	snap, err := snapshot.Open(dir, key)
	if err != nil {
		return nil, err
	}
	lay := snap.Layout()
	users, weeks, bpw := lay.Users, lay.Weeks, lay.BinsPerWeek
	nBlocks := weeks * features.NumFeatures
	w := &Workspace{
		users:       users,
		weeks:       weeks,
		binsPerWeek: bpw,
		binWidth:    key.BinWidth,
		blocks:      make([]*block, nBlocks),
		blockOnce:   make([]sync.Once, nBlocks),
		memo:        make(map[string]*memoCell),
		snap:        snap,
	}
	matSlab := make([]features.Matrix, users)
	w.matrices = make([]*features.Matrix, users)
	for u := range w.matrices {
		matSlab[u] = features.Matrix{
			BinWidth:    key.BinWidth,
			StartMicros: key.StartMicros,
			Rows:        snap.Rows(u),
		}
		w.matrices[u] = &matSlab[u]
	}
	return w, nil
}

// LoadOrMaterialize is the store's standard access chain: map the
// snapshot if a valid one exists (warm == true; generate is never
// called), otherwise cold-build it with MaterializeSharded. Callers
// own the failure policy — the enterprise and the fleet harness fall
// back to in-memory materialization, tracegen reports the error.
//
// warn, when non-nil, surfaces fallback events that were previously
// silent: stage "load" fires when a snapshot file exists but could
// not be mapped (stale engine/key, corrupt checksum, short file —
// anything but plain absence), stage "materialize" when the
// cold-build itself fails. Operators watching warn can tell a mystery
// cold rebuild from a routine first run.
// workers chooses the cold-build strategy: <= 1 builds in one
// streaming pass (MaterializeSharded), > 1 fans contiguous user
// ranges over that many in-process part builders and merges
// (MaterializeDistributed) — byte-identical output either way.
// weights optionally supplies per-user generation cost (one
// non-negative weight per user) for load-balanced worker ranges; nil
// (or a wrong-length slice) means equal user counts. Only the range
// boundaries depend on it — the sealed store is byte-identical for
// any weights.
// ctx bounds the cold build only (the warm map is nearly
// instantaneous): a coordinator deadline or Ctrl-C cancels in-flight
// part builds instead of leaking them.
func LoadOrMaterialize(ctx context.Context, dir string, key snapshot.Key, shardUsers, workers int, weights []float64, warn func(stage string, err error), generate func(u int, rows [][features.NumFeatures]float64)) (ws *Workspace, warm bool, err error) {
	ws, lerr := Load(dir, key)
	if lerr == nil {
		return ws, true, nil
	}
	if warn != nil && !errors.Is(lerr, fs.ErrNotExist) {
		warn("load", lerr)
	}
	if workers > 1 {
		ws, err = MaterializeDistributed(ctx, dir, key, shardUsers, workers, weights, generate)
	} else {
		ws, err = MaterializeSharded(ctx, dir, key, shardUsers, generate)
	}
	if err != nil && warn != nil {
		warn("materialize", err)
	}
	return ws, false, err
}

// LoadUserMatrix fetches ONE user's matrix from the store in
// O(record): snapshot.OpenUser validates the manifest and the
// containing integrity shard only, so at population scale the read
// touches a few hundred records' worth of bytes instead of
// checksumming and mapping the whole file the way Load must. The
// returned matrix owns its rows (no mapping to close). Callers fall
// back to a full Load for manifest-less (pre-manifest) stores.
func LoadUserMatrix(dir string, key snapshot.Key, u int) (*features.Matrix, error) {
	rec, err := snapshot.OpenUser(dir, key, u)
	if err != nil {
		return nil, err
	}
	return &features.Matrix{
		BinWidth:    key.BinWidth,
		StartMicros: key.StartMicros,
		Rows:        rec.Rows(),
	}, nil
}

// BuildShardRange materializes users [lo, hi) of key into a sealed
// part file under dir — one worker's slice of a distributed build.
// generate has the MaterializeSharded contract; it is only called for
// users inside the range, so a coordinator can hand disjoint ranges
// to separate processes (or hosts sharing a filesystem) and each pays
// only its slice of the generation cost. snapshot.MergeShards seals
// the parts into the canonical snapshot once all ranges exist.
// ctx aborts the build between (and inside) generation shards: on
// cancellation the part writer is aborted — its temp file removed,
// nothing sealed — and ctx's error returned.
func BuildShardRange(ctx context.Context, dir string, key snapshot.Key, lo, hi, shardUsers int, generate func(u int, rows [][features.NumFeatures]float64)) error {
	wr, err := snapshot.CreateShard(dir, key, lo, hi)
	if err != nil {
		return err
	}
	lay := wr.Layout()
	if err := writeRecordsRange(ctx, wr, lo, hi, shardUsers, func(u int, rec []float64) {
		generate(u, rowsView(rec, lay))
		fillDerived(rec, lay)
	}); err != nil {
		wr.Abort()
		return err
	}
	return wr.Finish()
}

// MaterializeDistributed is the in-process coordinator: it fans
// contiguous user ranges over a pool of part builders, merges the
// sealed parts into the canonical snapshot, and maps it. The result —
// snapshot and manifest both — is byte-identical to MaterializeSharded
// over the same generator (the cross-process determinism tests pin
// all build strategies to each other).
//
// weights optionally supplies per-user generation cost for the range
// cuts (snapshot.CutRanges): with a heavy-tail population, equal user
// counts leave the worker that drew the heavy users ~1.6× behind its
// siblings, while weight-balanced ranges even the wall-clock out. nil
// or wrong-length weights fall back to equal counts. The cut never
// changes the sealed bytes, only which worker produces which part.
// ctx cancellation aborts every in-flight part build; the first
// worker error likewise cancels its siblings, so a failed distributed
// build releases its goroutines promptly instead of letting the
// surviving workers generate records nobody will merge.
func MaterializeDistributed(ctx context.Context, dir string, key snapshot.Key, shardUsers, workers int, weights []float64, generate func(u int, rows [][features.NumFeatures]float64)) (*Workspace, error) {
	workers = par.Workers(workers, key.Users)
	if workers < 2 {
		return MaterializeSharded(ctx, dir, key, shardUsers, generate)
	}
	if len(weights) != key.Users {
		weights = make([]float64, key.Users) // zero total → equal counts
	}
	cuts := snapshot.CutRanges(weights, workers)
	bctx, cancel := context.WithCancel(ctx)
	defer cancel()
	var wg sync.WaitGroup
	errs := make([]error, len(cuts))
	for i, r := range cuts {
		wg.Add(1)
		go func(i, lo, hi int) {
			defer wg.Done()
			if errs[i] = BuildShardRange(bctx, dir, key, lo, hi, shardUsers, generate); errs[i] != nil {
				cancel()
			}
		}(i, r[0], r[1])
	}
	wg.Wait()
	// Prefer a real build failure over the context errors the
	// cancelled siblings report in its wake.
	for _, err := range errs {
		if err != nil && !errors.Is(err, context.Canceled) {
			return nil, err
		}
	}
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	if _, err := snapshot.MergeShards(dir, key); err != nil {
		return nil, err
	}
	return Load(dir, key)
}

// MaterializeSharded materializes a population straight into a
// snapshot at dir and returns the loaded zero-copy workspace.
// generate must fill rows (one user's full capture, Layout().Bins()
// rows) deterministically and be safe for concurrent calls with
// distinct u — it is the same contract as NewGenerated's matrixOf,
// minus the Matrix wrapper. Users are processed in shards of
// shardUsers (<= 0 means DefaultShardUsers): the shard buffer is the
// only population-sized state ever resident, so peak heap stays
// O(shardUsers) while populations of 20k–100k users stream to disk.
// ctx cancellation aborts the build between generation shards (and
// skips remaining per-user fills inside one): the writer's temp file
// is removed and ctx's error returned — no partial snapshot can seal.
func MaterializeSharded(ctx context.Context, dir string, key snapshot.Key, shardUsers int, generate func(u int, rows [][features.NumFeatures]float64)) (*Workspace, error) {
	wr, err := snapshot.Create(dir, key)
	if err != nil {
		return nil, err
	}
	lay := wr.Layout()
	if err := writeRecords(ctx, wr, key.Users, shardUsers, func(u int, rec []float64) {
		generate(u, rowsView(rec, lay))
		fillDerived(rec, lay)
	}); err != nil {
		wr.Abort()
		return nil, err
	}
	if err := wr.Finish(); err != nil {
		return nil, err
	}
	return Load(dir, key)
}

// recordAppender is the writer seam writeRecordsRange streams
// through: the full-snapshot Writer and the part-file ShardWriter
// share it.
type recordAppender interface {
	Layout() snapshot.Layout
	AppendUsers([]float64) error
}

// writeRecords pulls user records through fill in bounded shards and
// appends them to the writer in user order. One shard buffer is
// reused for the whole run; fill runs on the shared worker pool.
func writeRecords(ctx context.Context, wr *snapshot.Writer, users, shardUsers int, fill func(u int, rec []float64)) error {
	return writeRecordsRange(ctx, wr, 0, users, shardUsers, fill)
}

// writeRecordsRange is writeRecords over the user range [lo, hi).
// Cancellation is honored at shard granularity for the append (a
// partially filled shard is never written) and at user granularity
// inside the parallel fill (remaining fills become no-ops), so a
// cancelled build stops within roughly one user's generation time.
func writeRecordsRange(ctx context.Context, wr recordAppender, lo, hi, shardUsers int, fill func(u int, rec []float64)) error {
	if shardUsers <= 0 {
		shardUsers = DefaultShardUsers
	}
	if shardUsers > hi-lo {
		shardUsers = hi - lo
	}
	rf := wr.Layout().RecordFloats()
	buf := make([]float64, shardUsers*rf)
	for base := lo; base < hi; base += shardUsers {
		n := min(shardUsers, hi-base)
		chunk := buf[:n*rf]
		par.ForEach(n, 0, func(i int) {
			if ctx.Err() != nil {
				return
			}
			fill(base+i, chunk[i*rf:(i+1)*rf:(i+1)*rf])
		})
		if err := ctx.Err(); err != nil {
			return err
		}
		if err := wr.AppendUsers(chunk); err != nil {
			return err
		}
	}
	return nil
}

// rowsView reinterprets a record's rows region as matrix rows.
func rowsView(rec []float64, lay snapshot.Layout) [][features.NumFeatures]float64 {
	return unsafe.Slice((*[features.NumFeatures]float64)(unsafe.Pointer(&rec[0])), lay.Bins())
}

// fillDerived computes a record's sorted columns and day views from
// its rows region, in place. The arithmetic mirrors block.fillUser
// and Workspace.DaySorted exactly — same extraction order, same
// sort.Float64s — so a loaded snapshot is bit-identical to the
// in-memory build.
func fillDerived(rec []float64, lay snapshot.Layout) {
	rows := rowsView(rec, lay)
	bpw, bpd := lay.BinsPerWeek, lay.BinsPerDay
	for week := 0; week < lay.Weeks; week++ {
		base := week * bpw
		for f := 0; f < features.NumFeatures; f++ {
			off := lay.SortedOff(week, f)
			col := rec[off : off+bpw : off+bpw]
			for b := 0; b < bpw; b++ {
				col[b] = rows[base+b][f]
			}
			doff := lay.DayOff(week, f)
			day := rec[doff : doff+7*bpd : doff+7*bpd]
			copy(day, col[:7*bpd])
			for d := 0; d < 7; d++ {
				sort.Float64s(day[d*bpd : (d+1)*bpd])
			}
			sort.Float64s(col)
		}
	}
}
