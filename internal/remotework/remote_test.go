package remotework

import (
	"bytes"
	"context"
	"errors"
	"net"
	"os"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/analysis"
	"repro/internal/buildctl"
	"repro/internal/features"
	"repro/internal/netsim"
	"repro/internal/snapshot"
	"repro/internal/trace"
)

// testPop mirrors the buildctl convergence suite's population: small
// enough to build in milliseconds, big enough to cut into ranges.
func testPop(t *testing.T, users int) (*trace.Population, snapshot.Key) {
	t.Helper()
	pop := trace.MustPopulation(trace.Config{Users: users, Weeks: 1, Seed: 7, BinWidth: 6 * time.Hour})
	key, err := snapshot.KeyFor(pop.Cfg)
	if err != nil {
		t.Fatal(err)
	}
	return pop, key
}

// wantBytes is the ground truth every remote run must reproduce: a
// clean single-process Save's snapshot and manifest bytes.
func wantBytes(t *testing.T, pop *trace.Population, key snapshot.Key) (snap, man []byte) {
	t.Helper()
	dir := t.TempDir()
	mem := analysis.NewGenerated(key.Users, func(u int) *features.Matrix { return pop.Users[u].Series() })
	if _, err := mem.Save(dir, key); err != nil {
		t.Fatal(err)
	}
	snap, err := os.ReadFile(key.Path(dir))
	if err != nil {
		t.Fatal(err)
	}
	man, err = os.ReadFile(key.ManifestPath(dir))
	if err != nil {
		t.Fatal(err)
	}
	return snap, man
}

func assertSealedIdentical(t *testing.T, dir string, key snapshot.Key, want, wantMan []byte) {
	t.Helper()
	got, err := os.ReadFile(key.Path(dir))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatal("remote-built snapshot bytes differ from single-process Save")
	}
	gotMan, err := os.ReadFile(key.ManifestPath(dir))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(gotMan, wantMan) {
		t.Fatal("remote-built manifest bytes differ from single-process Save")
	}
}

// startDaemon serves a Daemon on a loopback TCP listener, returning
// its address and a stop function.
func startDaemon(t *testing.T, d *Daemon) (addr string, stop func()) {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go d.Serve(l)
	return l.Addr().String(), func() { l.Close() }
}

func tcpHost(name, addr string) Host {
	return Host{Name: name, Dial: func(ctx context.Context) (net.Conn, error) {
		var d net.Dialer
		return d.DialContext(ctx, "tcp", addr)
	}}
}

// TestRemoteCleanTCP is the baseline: a coordinated build over two
// real TCP daemons seals snap+manifest byte-identical to the clean
// single-process Save, and the pool's summary accounts the streamed
// bytes.
func TestRemoteCleanTCP(t *testing.T) {
	pop, key := testPop(t, 36)
	want, wantMan := wantBytes(t, pop, key)
	dir := t.TempDir()

	addrA, stopA := startDaemon(t, &Daemon{Dir: t.TempDir()})
	defer stopA()
	addrB, stopB := startDaemon(t, &Daemon{Dir: t.TempDir()})
	defer stopB()

	pool := &Pool{
		Dir: dir, Key: key, Cfg: pop.Cfg,
		Hosts:       []Host{tcpHost("a", addrA), tcpHost("b", addrB)},
		ChunkBytes:  4096,
		BaseWeights: pop.CostWeights(),
	}
	// HedgeFactor < 0 disables hedging: the clean baseline pins exact
	// byte accounting, which duplicate dispatches would blur.
	st, err := buildctl.Build(context.Background(), buildctl.Options{
		Dir: dir, Key: key, Worker: pool,
		Parallel: 4, Ranges: 4, HedgeFactor: -1,
		WeightsFn: pool.WeightsFn,
	})
	if err != nil {
		t.Fatalf("remote build: %v (stats %+v)", err, st)
	}
	assertSealedIdentical(t, dir, key, want, wantMan)

	sum := pool.Summary()
	if sum.BytesStreamed != sum.BytesCommitted || sum.BytesRestreamed != 0 {
		t.Fatalf("clean build streamed %d, committed %d, restreamed %d",
			sum.BytesStreamed, sum.BytesCommitted, sum.BytesRestreamed)
	}
	if w := pool.WeightsFn(); len(w) != key.Users {
		t.Fatalf("WeightsFn after build returned %d weights, want %d", len(w), key.Users)
	}
}

// killConn wraps a TCP conn so the test can sever a host's transfers
// after a byte budget — a daemon killed mid-stream, as the client
// sees it.
type killConn struct {
	net.Conn
	budget *atomic.Int64 // read bytes remaining before the kill
	killed func()
}

func (c *killConn) Read(p []byte) (int, error) {
	n, err := c.Conn.Read(p)
	if c.budget.Add(-int64(n)) < 0 {
		c.killed()
		c.Conn.Close()
		return 0, errors.New("killed mid-stream")
	}
	return n, err
}

// TestRemoteKillMidStreamTCP is the acceptance pin for resume over
// real TCP: host A dies mid-stream (conn severed, daemon gone for
// good), the pool fails over to host B, and — because parts are
// deterministic and the receiver survives the host switch — B streams
// strictly fewer bytes than the full part: only the missing tail.
func TestRemoteKillMidStreamTCP(t *testing.T) {
	pop, key := testPop(t, 24)
	want, wantMan := wantBytes(t, pop, key)
	dir := t.TempDir()

	addrA, stopA := startDaemon(t, &Daemon{Dir: t.TempDir()})
	addrB, stopB := startDaemon(t, &Daemon{Dir: t.TempDir()})
	defer stopB()

	// Host A serves ~20 KB of frames, then every conn dies and future
	// dials are refused — the kill -9 shape.
	var budget atomic.Int64
	budget.Store(20 << 10)
	var dead atomic.Bool
	hostA := Host{Name: "a", Dial: func(ctx context.Context) (net.Conn, error) {
		if dead.Load() {
			return nil, errors.New("connection refused (daemon dead)")
		}
		var d net.Dialer
		conn, err := d.DialContext(ctx, "tcp", addrA)
		if err != nil {
			return nil, err
		}
		return &killConn{Conn: conn, budget: &budget, killed: func() {
			if dead.CompareAndSwap(false, true) {
				stopA()
			}
		}}, nil
	}}

	pool := &Pool{
		Dir: dir, Key: key, Cfg: pop.Cfg,
		Hosts:      []Host{hostA, tcpHost("b", addrB)},
		ChunkBytes: 2048, Reconnects: 6,
		Retry: buildctl.Retry{Base: 2 * time.Millisecond, Max: 20 * time.Millisecond},
	}
	// One range: the whole population is a single part, so the byte
	// accounting below is exact.
	st, err := buildctl.Build(context.Background(), buildctl.Options{
		Dir: dir, Key: key, Worker: pool,
		Parallel: 1, Ranges: 1,
		MaxAttempts: 6, Backoff: 2 * time.Millisecond,
	})
	if err != nil {
		t.Fatalf("remote build with killed daemon: %v (stats %+v)", err, st)
	}
	assertSealedIdentical(t, dir, key, want, wantMan)
	if !dead.Load() {
		t.Fatal("host A was never killed; the test exercised nothing")
	}

	sum := pool.Summary()
	partBytes := sum.BytesCommitted
	var a, b HostSummary
	for _, h := range sum.Hosts {
		switch h.Host {
		case "a":
			a = h
		case "b":
			b = h
		}
	}
	if a.BytesStreamed == 0 {
		t.Fatalf("host A streamed nothing before dying (summary %+v)", sum)
	}
	if b.BytesStreamed >= partBytes {
		t.Fatalf("failover re-streamed the whole part: host B streamed %d of a %d-byte part",
			b.BytesStreamed, partBytes)
	}
	if b.BytesStreamed == 0 {
		t.Fatalf("host B streamed nothing; who finished the part? (summary %+v)", sum)
	}
	if sum.BytesRestreamed != 0 {
		t.Fatalf("resume wasted %d re-streamed bytes, want 0 (summary %+v)", sum.BytesRestreamed, sum)
	}
	if a.Failures == 0 {
		t.Fatalf("host A's death was never recorded (summary %+v)", sum)
	}
}

// TestRemoteHeartbeatLossFailsFast pins the hung-host path: a host
// that accepts the build request and then goes silent is declared
// hung after the heartbeat window — seconds, not the attempt deadline
// — and the miss is visible in the health summary.
func TestRemoteHeartbeatLossFailsFast(t *testing.T) {
	pop, key := testPop(t, 8)
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	// A hung daemon: accepts, reads the request, never answers.
	go func() {
		for {
			conn, err := l.Accept()
			if err != nil {
				return
			}
			go func() {
				buf := make([]byte, 1<<16)
				for {
					if _, err := conn.Read(buf); err != nil {
						conn.Close()
						return
					}
				}
			}()
		}
	}()

	pool := &Pool{
		Dir: t.TempDir(), Key: key, Cfg: pop.Cfg,
		Hosts:          []Host{tcpHost("hung", l.Addr().String())},
		HeartbeatEvery: 20 * time.Millisecond, HeartbeatMisses: 3,
		Reconnects: 1, QuarantineAfter: 2,
		Retry: buildctl.Retry{Base: time.Millisecond, Max: 5 * time.Millisecond},
	}
	start := time.Now()
	err = pool.Build(context.Background(), buildctl.Task{Lo: 0, Hi: key.Users})
	if err == nil {
		t.Fatal("build against a hung host succeeded")
	}
	if !errors.Is(err, errHeartbeatLost) {
		t.Fatalf("err = %v, want heartbeat loss", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("hung host took %v to fail — that is a deadline, not a heartbeat", elapsed)
	}
	sum := pool.Summary()
	if len(sum.Hosts) != 1 || sum.Hosts[0].HeartbeatMisses == 0 {
		t.Fatalf("heartbeat misses not recorded (summary %+v)", sum)
	}
	if sum.Hosts[0].Quarantines == 0 {
		t.Fatalf("repeat offender never quarantined (summary %+v)", sum)
	}
}

// TestRemoteQuarantineReadmits pins the probation state machine: a
// host that fails repeatedly is quarantined (no dials while the
// window holds), then re-admitted and used again after it passes.
func TestRemoteQuarantineReadmits(t *testing.T) {
	pop, key := testPop(t, 8)
	addrB, stopB := startDaemon(t, &Daemon{Dir: t.TempDir()})
	defer stopB()

	var aDials atomic.Int64
	var aHealthy atomic.Bool
	addrA, stopA := startDaemon(t, &Daemon{Dir: t.TempDir()})
	defer stopA()
	hostA := Host{Name: "a", Dial: func(ctx context.Context) (net.Conn, error) {
		aDials.Add(1)
		if !aHealthy.Load() {
			return nil, errors.New("connection refused")
		}
		var d net.Dialer
		return d.DialContext(ctx, "tcp", addrA)
	}}

	pool := &Pool{
		Dir: t.TempDir(), Key: key, Cfg: pop.Cfg,
		Hosts:           []Host{hostA, tcpHost("b", addrB)},
		QuarantineAfter: 1, Probation: 300 * time.Millisecond,
		Reconnects: 3,
		Retry:      buildctl.Retry{Base: time.Millisecond, Max: 5 * time.Millisecond},
	}
	// One build while A is down: A fails its session and lands in
	// quarantine; B carries the range.
	if err := pool.Build(context.Background(), buildctl.Task{Lo: 0, Hi: key.Users}); err != nil {
		t.Fatalf("build with host A down: %v", err)
	}
	os.Remove(key.PartPath(pool.Dir, 0, key.Users))
	sum := pool.Summary()
	if sum.Hosts[0].Quarantines == 0 {
		t.Fatalf("host A never quarantined (summary %+v)", sum)
	}
	dialsAtQuarantine := aDials.Load()

	// While quarantined, A gets no traffic.
	if err := pool.Build(context.Background(), buildctl.Task{Lo: 0, Hi: key.Users}); err != nil {
		t.Fatalf("build during quarantine: %v", err)
	}
	os.Remove(key.PartPath(pool.Dir, 0, key.Users))
	if got := aDials.Load(); got != dialsAtQuarantine {
		t.Fatalf("quarantined host was dialed (%d → %d dials)", dialsAtQuarantine, got)
	}

	// After probation, a recovered A is re-admitted.
	aHealthy.Store(true)
	time.Sleep(pool.Probation + 50*time.Millisecond)
	for i := 0; i < 4 && aDials.Load() == dialsAtQuarantine; i++ {
		if err := pool.Build(context.Background(), buildctl.Task{Lo: 0, Hi: key.Users, Attempt: i}); err != nil {
			t.Fatalf("build after probation: %v", err)
		}
		os.Remove(key.PartPath(pool.Dir, 0, key.Users))
	}
	if aDials.Load() == dialsAtQuarantine {
		t.Fatal("host A never re-admitted after probation")
	}
}

// fabricHosts wires n daemons into a FaultNetwork: daemon i listens
// at name "wi" on the underlying MemNetwork, and the returned hosts
// dial it as netsim host index i — so partitions and crash windows
// can take down exactly one daemon's connectivity.
func fabricHosts(t *testing.T, fn *netsim.FaultNetwork, daemons []*Daemon) []Host {
	t.Helper()
	hosts := make([]Host, len(daemons))
	for i, d := range daemons {
		name := string(rune('a' + i))
		l, err := fn.Listen(name)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { l.Close() })
		go d.Serve(l)
		idx := i
		hosts[i] = Host{Name: name, Dial: func(ctx context.Context) (net.Conn, error) {
			return fn.DialContext(ctx, idx, name)
		}}
	}
	return hosts
}

// TestRemoteFaultFabricConvergence is the transport soak: a two-
// daemon build over netsim's fault fabric under seeded write drops,
// mid-stream resets, a partition long enough to span heartbeat
// windows, and a crash window that takes one daemon out entirely —
// and the merged store must still be byte-identical to the clean
// single-process Save.
func TestRemoteFaultFabricConvergence(t *testing.T) {
	pop, key := testPop(t, 36)
	want, wantMan := wantBytes(t, pop, key)

	plans := map[string]netsim.FaultPlan{
		"resets30":  {Seed: 3, DropProb: 0.05, ResetProb: 0.30},
		"partition": {Seed: 5, ResetProb: 0.10, Partitions: []netsim.Partition{{Hosts: []int{1}, From: 2, To: 8}}},
		"host-crash": {
			Seed: 9, DropProb: 0.05, ResetProb: 0.15,
			Crashes: []netsim.CrashWindow{{Host: 0, From: 1, To: 12}},
		},
	}
	for name, plan := range plans {
		t.Run(name, func(t *testing.T) {
			dir := t.TempDir()
			mem := netsim.NewMemNetwork()
			start := time.Now()
			// Logical time advances with the wall clock so offline
			// windows open and close while the build runs.
			fn, err := netsim.NewFaultNetwork(mem, plan, netsim.TickerFunc(func() int {
				return int(time.Since(start) / (50 * time.Millisecond))
			}))
			if err != nil {
				t.Fatal(err)
			}
			daemons := []*Daemon{{Dir: t.TempDir()}, {Dir: t.TempDir()}}
			pool := &Pool{
				Dir: dir, Key: key, Cfg: pop.Cfg,
				Hosts:      fabricHosts(t, fn, daemons),
				ChunkBytes: 2048,
				// Short windows keep the soak fast: a partitioned
				// host fails in tens of milliseconds and the build
				// routes around it.
				HeartbeatEvery: 25 * time.Millisecond, HeartbeatMisses: 3,
				DialTimeout: time.Second, RPCTimeout: 2 * time.Second,
				Reconnects: 8, QuarantineAfter: 3, Probation: 100 * time.Millisecond,
				Retry: buildctl.Retry{Base: 2 * time.Millisecond, Max: 30 * time.Millisecond},
				Seed:  plan.Seed, BaseWeights: pop.CostWeights(),
			}
			st, err := buildctl.Build(context.Background(), buildctl.Options{
				Dir: dir, Key: key, Worker: pool,
				Parallel: 2, Ranges: 4,
				MaxAttempts: 10, Backoff: 5 * time.Millisecond,
				AttemptTimeout: 30 * time.Second,
				HedgeAfter:     300 * time.Millisecond, HedgeFactor: 4,
				WeightsFn: pool.WeightsFn,
				Seed:      plan.Seed,
			})
			if err != nil {
				t.Fatalf("fabric build under %s: %v (stats %+v, summary %+v)", name, err, st, pool.Summary())
			}
			assertSealedIdentical(t, dir, key, want, wantMan)
			sum := pool.Summary()
			if sum.BytesStreamed < sum.BytesCommitted {
				t.Fatalf("streamed %d < committed %d: accounting broken", sum.BytesStreamed, sum.BytesCommitted)
			}
		})
	}
}

// TestRemoteFabricResumeStreamsTail asserts the resume byte bound on
// the fabric: with aggressive mid-stream resets and one range, total
// streamed bytes stay below two full parts (a restart-from-zero
// transport would stream the prefix again on every reset), and the
// part converges byte-identical.
func TestRemoteFabricResumeStreamsTail(t *testing.T) {
	pop, key := testPop(t, 24)
	want, wantMan := wantBytes(t, pop, key)
	dir := t.TempDir()
	mem := netsim.NewMemNetwork()
	fn, err := netsim.NewFaultNetwork(mem, netsim.FaultPlan{Seed: 17, ResetProb: 0.35}, nil)
	if err != nil {
		t.Fatal(err)
	}
	daemons := []*Daemon{{Dir: t.TempDir()}}
	pool := &Pool{
		Dir: dir, Key: key, Cfg: pop.Cfg,
		Hosts:      fabricHosts(t, fn, daemons),
		ChunkBytes: 8192,
		Reconnects: 200, QuarantineAfter: 100000,
		Retry: buildctl.Retry{Base: time.Millisecond, Max: 5 * time.Millisecond},
		Seed:  17,
	}
	if err := pool.Build(context.Background(), buildctl.Task{Lo: 0, Hi: key.Users}); err != nil {
		t.Fatalf("resumed build: %v (summary %+v)", err, pool.Summary())
	}
	sum := pool.Summary()
	if sum.BytesRestreamed != 0 {
		t.Fatalf("resume re-streamed %d bytes; every session should continue at the offset (summary %+v)",
			sum.BytesRestreamed, sum)
	}
	if sum.Hosts[0].Failures == 0 {
		t.Fatal("no session ever failed; the reset plan exercised nothing")
	}
	if _, err := snapshot.VerifyPart(dir, key, 0, key.Users); err != nil {
		t.Fatalf("resumed part failed verification: %v", err)
	}
	if _, err := snapshot.MergeShards(dir, key); err != nil {
		t.Fatal(err)
	}
	assertSealedIdentical(t, dir, key, want, wantMan)
}

// TestRemoteWeightsFeedback pins the throughput→weights loop: after
// attempts whose observed per-user cost differs across the
// population, WeightsFn returns heavier weights for the slower users,
// so the coordinator's next cut shifts boundaries.
func TestRemoteWeightsFeedback(t *testing.T) {
	pop, key := testPop(t, 20)
	pool := &Pool{Dir: t.TempDir(), Key: key, Cfg: pop.Cfg, Hosts: []Host{{Name: "x"}}}
	pool.init()
	h := pool.hs[0]
	// Users [0, 10) built fast, [10, 20) slow.
	h.inflight = 2
	pool.recordSuccess(h, buildctl.Task{Lo: 0, Hi: 10}, 10*time.Millisecond, 1000)
	pool.recordSuccess(h, buildctl.Task{Lo: 10, Hi: 20}, 100*time.Millisecond, 1000)
	w := pool.WeightsFn()
	if len(w) != 20 {
		t.Fatalf("WeightsFn returned %d weights, want 20", len(w))
	}
	if !(w[15] > 5*w[5]) {
		t.Fatalf("slow users not weighted heavier: fast=%v slow=%v", w[5], w[15])
	}
	cuts := snapshot.CutRanges(w, 2)
	if len(cuts) != 2 || cuts[0][1] <= 10 {
		t.Fatalf("weighted cut %v did not widen the fast half (want boundary > 10)", cuts)
	}
	// The summary carries the final EWMA share.
	sum := pool.Summary()
	if sum.Hosts[0].ThroughputBps <= 0 || sum.Hosts[0].Weight != 1 {
		t.Fatalf("summary EWMA off: %+v", sum.Hosts[0])
	}
}

// TestRemoteDaemonRejectsBadRequest pins the fatal path end to end: a
// request the daemon can never build (invalid range) aborts the
// coordinator attempt with a Fatal error instead of burning retries.
func TestRemoteDaemonRejectsBadRequest(t *testing.T) {
	pop, key := testPop(t, 8)
	addr, stop := startDaemon(t, &Daemon{Dir: t.TempDir()})
	defer stop()
	pool := &Pool{
		Dir: t.TempDir(), Key: key, Cfg: pop.Cfg,
		Hosts: []Host{tcpHost("a", addr)},
	}
	err := pool.Build(context.Background(), buildctl.Task{Lo: 5, Hi: 99})
	if err == nil || !buildctl.IsFatal(err) {
		t.Fatalf("err = %v, want fatal abort on invalid range", err)
	}
	if !strings.Contains(err.Error(), "invalid") {
		t.Fatalf("err = %v, want the daemon's message", err)
	}
}
