package remotework

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"os"
	"sort"
	"sync"
	"time"

	"repro/internal/buildctl"
	"repro/internal/snapshot"
	"repro/internal/trace"
	"repro/internal/xrand"
)

// Host is one remote worker daemon: a display name and a dial
// function. Real deployments dial TCP; tests dial through netsim's
// fault fabric.
type Host struct {
	Name string
	Dial func(ctx context.Context) (net.Conn, error)
}

// Pool is a buildctl.Worker that dispatches build attempts to remote
// daemons and streams the sealed parts back. One Build call runs up
// to Reconnects+1 sessions — against different hosts if the first
// choice keeps failing — over a single PartReceiver, so every session
// after the first resumes from the received offset instead of
// re-streaming the part.
type Pool struct {
	Dir   string
	Key   snapshot.Key
	Cfg   trace.Config // normalized config daemons rebuild the key from
	Hosts []Host

	// ChunkBytes sizes fetches (default 256 KiB). Smaller chunks mean
	// more round trips and a finer-grained fault surface.
	ChunkBytes int
	// HeartbeatEvery is the liveness interval daemons are asked to
	// heartbeat at while building (default 500ms); a session that sees
	// no frame for HeartbeatEvery×HeartbeatMisses (default 3) declares
	// the host hung and fails fast — the coordinator's retry/hedge
	// machinery takes it from there.
	HeartbeatEvery  time.Duration
	HeartbeatMisses int
	// DialTimeout bounds a dial (default 5s); RPCTimeout bounds every
	// other single frame exchange (default 30s).
	DialTimeout time.Duration
	RPCTimeout  time.Duration
	// Retry is the jittered backoff between a Build call's sessions
	// (zero value: coordinator defaults). Reconnects caps the sessions
	// per Build call (default 4 reconnects, so 5 sessions).
	Retry      buildctl.Retry
	Reconnects int
	// QuarantineAfter consecutive session failures quarantine a host
	// for the Probation window (defaults 3 and 3s); a quarantined host
	// receives no work until the window passes, then is re-admitted.
	// When every host is quarantined the least-recently condemned one
	// is probed anyway — total starvation would deadlock a build that
	// could still finish.
	QuarantineAfter int
	Probation       time.Duration
	// Alpha is the EWMA smoothing for observed throughput and per-user
	// cost (default 0.5).
	Alpha float64
	// Seed drives session backoff jitter.
	Seed uint64
	// BaseWeights optionally seeds WeightsFn with a-priori per-user
	// costs (Population.CostWeights); observed costs blend over them.
	BaseWeights []float64
	// Logf, when non-nil, receives one line per notable event.
	Logf func(format string, args ...any)

	once sync.Once
	mu   sync.Mutex
	hs   []*hostState
	rng  *xrand.Source
	// obs is the per-user observed-cost EWMA (seconds per user),
	// folded from successful attempts and consumed by WeightsFn.
	obs            []float64
	obsSet         []bool
	committedBytes int64
}

type hostState struct {
	host Host

	attempts, successes, failures int
	heartbeatMisses               int
	quarantines                   int
	consecFails                   int
	quarantinedUntil              time.Time
	inflight                      int
	bytesStreamed                 int64
	ewmaBps                       float64 // observed end-to-end throughput
}

func (p *Pool) init() {
	p.once.Do(func() {
		if p.ChunkBytes <= 0 {
			p.ChunkBytes = 256 << 10
		}
		if p.HeartbeatEvery <= 0 {
			p.HeartbeatEvery = 500 * time.Millisecond
		}
		if p.HeartbeatMisses <= 0 {
			p.HeartbeatMisses = 3
		}
		if p.DialTimeout <= 0 {
			p.DialTimeout = 5 * time.Second
		}
		if p.RPCTimeout <= 0 {
			p.RPCTimeout = 30 * time.Second
		}
		if p.Reconnects <= 0 {
			p.Reconnects = 4
		}
		if p.QuarantineAfter <= 0 {
			p.QuarantineAfter = 3
		}
		if p.Probation <= 0 {
			p.Probation = 3 * time.Second
		}
		if p.Alpha <= 0 || p.Alpha > 1 {
			p.Alpha = 0.5
		}
		if p.Logf == nil {
			p.Logf = func(string, ...any) {}
		}
		p.rng = xrand.New(p.Seed ^ 0x5ee7a11c0de0301)
		p.hs = make([]*hostState, len(p.Hosts))
		for i, h := range p.Hosts {
			p.hs[i] = &hostState{host: h}
		}
		p.obs = make([]float64, p.Key.Users)
		p.obsSet = make([]bool, p.Key.Users)
	})
}

// errNoHosts aborts a build that cannot possibly progress.
var errNoHosts = errors.New("remotework: pool has no hosts")

// pickHost chooses the next session's host: healthy hosts first
// (probation passed), least-loaded, fastest observed, rotated by the
// attempt number so a hedge or retry lands on a different host than
// the attempt it is racing. With every host quarantined, the one
// whose probation expires soonest is probed anyway.
func (p *Pool) pickHost(t buildctl.Task, sess int) *hostState {
	p.mu.Lock()
	defer p.mu.Unlock()
	now := time.Now()
	var healthy []*hostState
	for _, h := range p.hs {
		if now.After(h.quarantinedUntil) {
			healthy = append(healthy, h)
		}
	}
	if len(healthy) == 0 {
		for _, h := range p.hs {
			if healthy == nil || h.quarantinedUntil.Before(healthy[0].quarantinedUntil) {
				healthy = []*hostState{h}
			}
		}
		if len(healthy) > 0 {
			p.Logf("remotework: all hosts quarantined; probing %s", healthy[0].host.Name)
		}
	}
	if len(healthy) == 0 {
		return nil
	}
	sort.SliceStable(healthy, func(i, j int) bool {
		if healthy[i].inflight != healthy[j].inflight {
			return healthy[i].inflight < healthy[j].inflight
		}
		return healthy[i].ewmaBps > healthy[j].ewmaBps
	})
	h := healthy[(t.Attempt+sess)%len(healthy)]
	h.inflight++
	h.attempts++
	return h
}

func (p *Pool) recordFailure(h *hostState, heartbeatMiss bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	h.inflight--
	h.failures++
	h.consecFails++
	if heartbeatMiss {
		h.heartbeatMisses++
	}
	if h.consecFails >= p.QuarantineAfter && time.Now().After(h.quarantinedUntil) {
		h.quarantines++
		h.quarantinedUntil = time.Now().Add(p.Probation)
		p.Logf("remotework: quarantining %s for %v after %d consecutive failures",
			h.host.Name, p.Probation, h.consecFails)
	}
}

func (p *Pool) recordSuccess(h *hostState, t buildctl.Task, elapsed time.Duration, size int64) {
	p.mu.Lock()
	defer p.mu.Unlock()
	h.inflight--
	h.successes++
	h.consecFails = 0
	sec := elapsed.Seconds()
	if sec <= 0 {
		sec = 1e-6
	}
	bps := float64(size) / sec
	if h.ewmaBps == 0 {
		h.ewmaBps = bps
	} else {
		h.ewmaBps = p.Alpha*bps + (1-p.Alpha)*h.ewmaBps
	}
	p.committedBytes += size
	// Attribute the attempt's wall-clock evenly to its users: the
	// observed cost EWMA WeightsFn feeds back into CutRanges.
	perUser := sec / float64(t.Hi-t.Lo)
	for u := t.Lo; u < t.Hi; u++ {
		if p.obsSet[u] {
			p.obs[u] = p.Alpha*perUser + (1-p.Alpha)*p.obs[u]
		} else {
			p.obs[u], p.obsSet[u] = perUser, true
		}
	}
}

// WeightsFn returns the per-user cost weights the coordinator's
// re-cuts should use: observed cost where an attempt has measured it,
// base weights rescaled into the observed regime elsewhere. Pass it
// as buildctl.Options.WeightsFn.
func (p *Pool) WeightsFn() []float64 {
	p.init()
	p.mu.Lock()
	defer p.mu.Unlock()
	var obsSum, baseObsSum float64
	n := 0
	for u, set := range p.obsSet {
		if set {
			obsSum += p.obs[u]
			if len(p.BaseWeights) == p.Key.Users {
				baseObsSum += p.BaseWeights[u]
			}
			n++
		}
	}
	if n == 0 {
		if len(p.BaseWeights) == p.Key.Users {
			return append([]float64(nil), p.BaseWeights...)
		}
		return nil
	}
	meanObs := obsSum / float64(n)
	// Scale base weights so their observed subset has the observed
	// mean cost; unobserved users then sit in the same unit system.
	scale := 0.0
	if baseObsSum > 0 {
		scale = obsSum / baseObsSum
	}
	w := make([]float64, p.Key.Users)
	for u := range w {
		switch {
		case p.obsSet[u]:
			w[u] = p.obs[u]
		case scale > 0 && len(p.BaseWeights) == p.Key.Users:
			w[u] = p.BaseWeights[u] * scale
		default:
			w[u] = meanObs
		}
	}
	return w
}

// Build implements buildctl.Worker: run sessions with backoff until
// one streams and seals the part, resuming mid-part across sessions
// and hosts. A daemon-declared permanent error aborts via
// buildctl.Fatal; anything else is retryable and the coordinator
// decides the range's fate.
func (p *Pool) Build(ctx context.Context, t buildctl.Task) error {
	p.init()
	if len(p.hs) == 0 {
		return buildctl.Fatal(errNoHosts)
	}
	rcv, err := snapshot.NewPartReceiver(p.Dir, p.Key, t.Lo, t.Hi)
	if err != nil {
		return buildctl.Fatal(err)
	}
	committed := false
	defer func() {
		if !committed {
			rcv.Abort()
		}
	}()
	rng := xrand.New(p.Seed ^ (uint64(t.Lo)<<32 | uint64(t.Hi)<<8 | uint64(t.Attempt)) ^ 0x7e57)
	var lastErr error
	for sess := 0; sess <= p.Reconnects; sess++ {
		if err := ctx.Err(); err != nil {
			return err
		}
		h := p.pickHost(t, sess)
		if h == nil {
			return buildctl.Fatal(errNoHosts)
		}
		start := time.Now()
		err := p.session(ctx, h, t, rcv)
		if err == nil {
			if cerr := rcv.Commit(); cerr != nil {
				// A commit refusal means the transfer lied somewhere;
				// treat like a failed session and restart clean.
				p.recordFailure(h, false)
				lastErr = cerr
				continue
			}
			committed = true
			p.recordSuccess(h, t, time.Since(start), rcv.Offset())
			return nil
		}
		p.recordFailure(h, errors.Is(err, errHeartbeatLost))
		if buildctl.IsFatal(err) || ctx.Err() != nil {
			return err
		}
		lastErr = err
		p.Logf("remotework: session %d for %v on %s failed at offset %d: %v",
			sess, t, h.host.Name, rcv.Offset(), err)
		delay := p.Retry.Delay(sess+1, rng)
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(delay):
		}
	}
	return fmt.Errorf("remotework: %v failed %d sessions: %w", t, p.Reconnects+1, lastErr)
}

// errHeartbeatLost marks a session that declared its host hung: no
// heartbeat (or any other frame) within the liveness window.
var errHeartbeatLost = errors.New("remotework: heartbeat lost (host hung)")

// session runs one connection's worth of progress: request the build,
// wait out heartbeats, then fetch chunks from the receiver's offset
// until the part is complete.
func (p *Pool) session(ctx context.Context, h *hostState, t buildctl.Task, rcv *snapshot.PartReceiver) error {
	dctx, cancel := context.WithTimeout(ctx, p.DialTimeout)
	conn, err := h.host.Dial(dctx)
	cancel()
	if err != nil {
		return fmt.Errorf("dial %s: %w", h.host.Name, err)
	}
	defer conn.Close()
	// A coordinator cancel (hedge win, attempt deadline) must not wait
	// out an I/O deadline: kill the conn as soon as ctx dies.
	stop := context.AfterFunc(ctx, func() { conn.Close() })
	defer stop()

	req, _ := json.Marshal(buildRequest{
		Users: p.Cfg.Users, Weeks: p.Cfg.Weeks,
		BinWidthMicros: p.Cfg.BinWidth.Microseconds(),
		Seed:           p.Cfg.Seed, StartMicros: p.Cfg.StartMicros,
		HeavyFraction: p.Cfg.HeavyFraction, WeeklyTrend: p.Cfg.WeeklyTrend,
		Lo: t.Lo, Hi: t.Hi,
		HeartbeatMS: p.HeartbeatEvery.Milliseconds(),
	})
	if err := writeFrame(conn, p.RPCTimeout, mBuild, req); err != nil {
		return fmt.Errorf("build request: %w", err)
	}

	// Liveness phase: the daemon is building. Any frame resets the
	// window; silence past HeartbeatEvery×HeartbeatMisses is a hung
	// host, reported distinctly so health scoring can see it.
	var ready readyInfo
	hbWindow := time.Duration(p.HeartbeatMisses) * p.HeartbeatEvery
	for {
		typ, payload, err := readFrame(conn, hbWindow)
		if err != nil {
			var ne net.Error
			if (errors.As(err, &ne) && ne.Timeout() || errors.Is(err, os.ErrDeadlineExceeded)) && ctx.Err() == nil {
				return fmt.Errorf("%w: no frame from %s in %v", errHeartbeatLost, h.host.Name, hbWindow)
			}
			return fmt.Errorf("awaiting build on %s: %w", h.host.Name, err)
		}
		if typ == mHeartbeat {
			continue
		}
		if typ == mErr {
			return decodeErr(payload)
		}
		if typ != mReady {
			return fmt.Errorf("unexpected frame type %d awaiting build", typ)
		}
		if err := json.Unmarshal(payload, &ready); err != nil {
			return fmt.Errorf("ready frame: %w", err)
		}
		break
	}
	if err := rcv.Expect(ready.Size, ready.CRC); err != nil {
		return err
	}

	// Fetch phase: client-driven, one chunk per round trip, always
	// from the receiver's contiguous offset — which is exactly what
	// makes a reconnect resume instead of restart.
	for rcv.Offset() < ready.Size {
		if err := ctx.Err(); err != nil {
			return err
		}
		off := rcv.Offset()
		if err := writeFrame(conn, p.RPCTimeout, mFetch, encodeFetch(off, p.ChunkBytes)); err != nil {
			return fmt.Errorf("fetch at %d: %w", off, err)
		}
		typ, payload, err := readFrame(conn, p.RPCTimeout)
		if err != nil {
			return fmt.Errorf("chunk at %d: %w", off, err)
		}
		if typ == mErr {
			return decodeErr(payload)
		}
		if typ != mChunk {
			return fmt.Errorf("unexpected frame type %d awaiting chunk", typ)
		}
		coff, crc, data, err := decodeChunk(payload)
		if err != nil {
			return err
		}
		if err := rcv.WriteChunk(coff, data, crc); err != nil {
			return err
		}
		p.mu.Lock()
		h.bytesStreamed += int64(len(data))
		p.mu.Unlock()
	}
	return nil
}

// decodeErr turns a daemon error frame into a session error,
// promoting permanent failures to buildctl.Fatal.
func decodeErr(payload []byte) error {
	var ei errInfo
	if err := json.Unmarshal(payload, &ei); err != nil {
		return fmt.Errorf("undecodable error frame: %w", err)
	}
	err := fmt.Errorf("remotework: daemon: %s", ei.Msg)
	if !ei.Retryable {
		return buildctl.Fatal(err)
	}
	return err
}

// HostSummary is one host's line in the pool summary.
type HostSummary struct {
	Host            string  `json:"host"`
	Attempts        int     `json:"attempts"`
	Successes       int     `json:"successes"`
	Failures        int     `json:"failures"`
	HeartbeatMisses int     `json:"heartbeat_misses"`
	Quarantines     int     `json:"quarantines"`
	BytesStreamed   int64   `json:"bytes_streamed"`
	ThroughputBps   float64 `json:"throughput_bps"`
	Weight          float64 `json:"weight"` // final EWMA share of fleet throughput
}

// Summary is the pool's one-line-JSON observability report: per-host
// health and throughput, plus fleet-wide streamed vs committed bytes
// (their difference is the re-streamed waste resets cost).
type Summary struct {
	Hosts           []HostSummary `json:"hosts"`
	BytesStreamed   int64         `json:"bytes_streamed"`
	BytesCommitted  int64         `json:"bytes_committed"`
	BytesRestreamed int64         `json:"bytes_restreamed"`
}

// Summary snapshots the pool's counters.
func (p *Pool) Summary() Summary {
	p.init()
	p.mu.Lock()
	defer p.mu.Unlock()
	var s Summary
	var totalBps float64
	for _, h := range p.hs {
		totalBps += h.ewmaBps
	}
	for _, h := range p.hs {
		weight := 0.0
		if totalBps > 0 {
			weight = h.ewmaBps / totalBps
		}
		s.Hosts = append(s.Hosts, HostSummary{
			Host: h.host.Name, Attempts: h.attempts, Successes: h.successes,
			Failures: h.failures, HeartbeatMisses: h.heartbeatMisses,
			Quarantines: h.quarantines, BytesStreamed: h.bytesStreamed,
			ThroughputBps: h.ewmaBps, Weight: weight,
		})
		s.BytesStreamed += h.bytesStreamed
	}
	s.BytesCommitted = p.committedBytes
	if s.BytesStreamed > s.BytesCommitted {
		s.BytesRestreamed = s.BytesStreamed - s.BytesCommitted
	}
	return s
}
