// Package remotework is the remote build transport: a buildctl.Worker
// that dispatches shard-range builds to worker daemons over a framed,
// length-prefixed protocol and streams the sealed part file back in
// CRC-checked chunks with resume-from-offset on reconnect.
//
// The transport treats loss and slowness as the common case. Every
// RPC carries a deadline; failed sessions retry with the coordinator's
// exponential backoff + seeded jitter (buildctl.Retry); a daemon
// heartbeats while its build runs so a hung host is distinguished
// from a slow one and fails fast into the coordinator's hedge path;
// hosts that fail repeatedly are quarantined and re-admitted after a
// probation window; and each host's observed throughput feeds an EWMA
// that the coordinator's re-cuts consume as cost weights.
//
// Trust never moves to the wire: chunks are CRC-checked frame by
// frame, the reassembled part must match the declared whole-file
// checksum before it is sealed (snapshot.PartReceiver), and the
// coordinator still runs snapshot.VerifyPart on every sealed part —
// exactly as it does for local workers.
//
// The protocol runs over anything net.Conn-shaped: real TCP between
// tracegen processes, or netsim's in-memory fault fabric, where
// seeded drops, resets, partitions and crash windows exercise the
// whole stack in-process.
package remotework

import (
	"encoding/binary"
	"fmt"
	"io"
	"net"
	"time"
)

// Frame types. A frame on the wire is: uint32 big-endian payload
// length, one type byte, then the payload. Every frame is sent with a
// single Write call, so under netsim's fault fabric a frame is
// delivered whole or torn at a seeded cut — never interleaved — and
// the reader either decodes a whole frame or fails cleanly.
const (
	mBuild     = byte(1) // client → daemon: JSON buildRequest
	mHeartbeat = byte(2) // daemon → client: build in flight, empty payload
	mReady     = byte(3) // daemon → client: JSON readyInfo (part sealed)
	mFetch     = byte(4) // client → daemon: 8B offset | 4B max bytes
	mChunk     = byte(5) // daemon → client: 8B offset | 4B CRC-32C | data
	mErr       = byte(6) // daemon → client: JSON errInfo
)

// maxFrame bounds a frame payload; a length prefix beyond it means a
// corrupt or foreign stream, not a big frame.
const maxFrame = 16 << 20

// buildRequest asks a daemon to seal users [Lo, Hi) of the population
// the config describes. The config rides fully normalized (defaults
// applied) so every daemon derives the identical snapshot key.
type buildRequest struct {
	Users          int     `json:"users"`
	Weeks          int     `json:"weeks"`
	BinWidthMicros int64   `json:"bin_width_us"`
	Seed           uint64  `json:"seed"`
	StartMicros    int64   `json:"start_us"`
	HeavyFraction  float64 `json:"heavy_fraction"`
	WeeklyTrend    float64 `json:"weekly_trend"`
	Lo             int     `json:"lo"`
	Hi             int     `json:"hi"`
	HeartbeatMS    int64   `json:"heartbeat_ms"`
}

// readyInfo declares the sealed part's transfer end state.
type readyInfo struct {
	Size int64  `json:"size"`
	CRC  uint32 `json:"crc"` // CRC-32C of the whole sealed file
}

// errInfo reports a daemon-side failure. Retryable failures burn one
// session; permanent ones (a config the daemon cannot build) abort
// the whole range via buildctl.Fatal.
type errInfo struct {
	Retryable bool   `json:"retryable"`
	Msg       string `json:"msg"`
}

// writeFrame sends one frame with a single Write, bounded by deadline
// when positive.
func writeFrame(c net.Conn, deadline time.Duration, typ byte, payload []byte) error {
	if len(payload) > maxFrame {
		return fmt.Errorf("remotework: frame payload %d exceeds %d", len(payload), maxFrame)
	}
	buf := make([]byte, 5+len(payload))
	binary.BigEndian.PutUint32(buf, uint32(len(payload)))
	buf[4] = typ
	copy(buf[5:], payload)
	if deadline > 0 {
		if err := c.SetWriteDeadline(time.Now().Add(deadline)); err != nil {
			return err
		}
		defer c.SetWriteDeadline(time.Time{})
	}
	_, err := c.Write(buf)
	return err
}

// readFrame reads one frame, bounded by deadline when positive.
func readFrame(c net.Conn, deadline time.Duration) (typ byte, payload []byte, err error) {
	if deadline > 0 {
		if err := c.SetReadDeadline(time.Now().Add(deadline)); err != nil {
			return 0, nil, err
		}
		defer c.SetReadDeadline(time.Time{})
	}
	var hdr [5]byte
	if _, err := io.ReadFull(c, hdr[:]); err != nil {
		return 0, nil, err
	}
	n := binary.BigEndian.Uint32(hdr[:4])
	if n > maxFrame {
		return 0, nil, fmt.Errorf("remotework: frame length %d exceeds %d (corrupt stream)", n, maxFrame)
	}
	payload = make([]byte, n)
	if _, err := io.ReadFull(c, payload); err != nil {
		return 0, nil, err
	}
	return hdr[4], payload, nil
}

// encodeFetch renders an mFetch payload: fetch up to n bytes at off.
func encodeFetch(off int64, n int) []byte {
	buf := make([]byte, 12)
	binary.BigEndian.PutUint64(buf, uint64(off))
	binary.BigEndian.PutUint32(buf[8:], uint32(n))
	return buf
}

// decodeFetch parses an mFetch payload.
func decodeFetch(p []byte) (off int64, n int, err error) {
	if len(p) != 12 {
		return 0, 0, fmt.Errorf("remotework: fetch payload is %d bytes, want 12", len(p))
	}
	return int64(binary.BigEndian.Uint64(p)), int(binary.BigEndian.Uint32(p[8:])), nil
}

// encodeChunk renders an mChunk payload: data at off with its CRC.
func encodeChunk(off int64, crc uint32, data []byte) []byte {
	buf := make([]byte, 12+len(data))
	binary.BigEndian.PutUint64(buf, uint64(off))
	binary.BigEndian.PutUint32(buf[8:], crc)
	copy(buf[12:], data)
	return buf
}

// decodeChunk parses an mChunk payload.
func decodeChunk(p []byte) (off int64, crc uint32, data []byte, err error) {
	if len(p) < 12 {
		return 0, 0, nil, fmt.Errorf("remotework: chunk payload is %d bytes, want >= 12", len(p))
	}
	return int64(binary.BigEndian.Uint64(p)), binary.BigEndian.Uint32(p[8:]), p[12:], nil
}
