package remotework

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"net"
	"sync"
	"time"

	"repro/internal/analysis"
	"repro/internal/features"
	"repro/internal/snapshot"
	"repro/internal/trace"
)

// Daemon is the worker side of the transport: it accepts connections,
// builds requested shard ranges into its scratch store, and serves
// the sealed parts back in CRC-checked chunks. One connection carries
// one session: a build request, heartbeats while the build runs, a
// ready declaration, then client-driven chunk fetches until the
// client hangs up.
//
// The scratch store doubles as the resume cache: a part sealed for a
// session that died mid-stream is found by the next session's
// VerifyPart probe and served immediately, so a reconnecting client
// re-fetches only the tail it is missing.
type Daemon struct {
	// Dir is the scratch store sealed parts live in.
	Dir string
	// BuildDelay, when positive, stretches every build by sleeping
	// per built user — the knob chaos smokes use to make
	// kill-mid-stream timing windows wide enough to hit reliably.
	BuildDelay time.Duration
	// Logf, when non-nil, receives one line per session event.
	Logf func(format string, args ...any)

	mu   sync.Mutex
	pops map[trace.Config]*trace.Population
}

func (d *Daemon) logf(format string, args ...any) {
	if d.Logf != nil {
		d.Logf(format, args...)
	}
}

// Serve accepts sessions on l until Accept fails (closing the
// listener is the shutdown path). Each session runs on its own
// goroutine; a session error ends that session only.
func (d *Daemon) Serve(l net.Listener) error {
	for {
		conn, err := l.Accept()
		if err != nil {
			return err
		}
		go func() {
			defer conn.Close()
			if err := d.session(conn); err != nil {
				d.logf("remotework: session from %v: %v", conn.RemoteAddr(), err)
			}
		}()
	}
}

// population returns the cached population for a normalized config,
// constructing it once — population construction is the expensive
// part of a cold daemon, and every range of one build shares it.
func (d *Daemon) population(cfg trace.Config) (*trace.Population, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.pops == nil {
		d.pops = make(map[trace.Config]*trace.Population)
	}
	if pop := d.pops[cfg]; pop != nil {
		return pop, nil
	}
	pop, err := trace.NewPopulation(cfg)
	if err != nil {
		return nil, err
	}
	d.pops[cfg] = pop
	return pop, nil
}

// sendErr reports a session failure to the client; best effort — the
// conn may already be gone.
func sendErr(conn net.Conn, retryable bool, err error) error {
	p, _ := json.Marshal(errInfo{Retryable: retryable, Msg: err.Error()})
	_ = writeFrame(conn, 5*time.Second, mErr, p)
	return err
}

// session runs one build-and-stream exchange.
func (d *Daemon) session(conn net.Conn) error {
	typ, payload, err := readFrame(conn, 30*time.Second)
	if err != nil {
		return fmt.Errorf("reading build request: %w", err)
	}
	if typ != mBuild {
		return fmt.Errorf("expected build frame, got type %d", typ)
	}
	var req buildRequest
	if err := json.Unmarshal(payload, &req); err != nil {
		return sendErr(conn, false, fmt.Errorf("bad build request: %w", err))
	}
	cfg := trace.Config{
		Users: req.Users, Weeks: req.Weeks,
		BinWidth: time.Duration(req.BinWidthMicros) * time.Microsecond,
		Seed:     req.Seed, StartMicros: req.StartMicros,
		HeavyFraction: req.HeavyFraction, WeeklyTrend: req.WeeklyTrend,
	}
	key, err := snapshot.KeyFor(cfg)
	if err != nil {
		return sendErr(conn, false, err)
	}
	if req.Lo < 0 || req.Hi <= req.Lo || req.Hi > key.Users {
		return sendErr(conn, false, fmt.Errorf("range [%d, %d) invalid for %d users", req.Lo, req.Hi, key.Users))
	}

	// A sealed part from an earlier session (one whose client died
	// mid-stream) short-circuits the build: verify and serve it.
	if _, verr := snapshot.VerifyPart(d.Dir, key, req.Lo, req.Hi); verr != nil {
		if err := d.build(conn, cfg, key, req); err != nil {
			return err
		}
	} else {
		d.logf("remotework: part [%d, %d) already sealed; serving cached", req.Lo, req.Hi)
	}
	return d.stream(conn, key, req)
}

// build seals the requested part, heartbeating while it runs so the
// client can tell a working daemon from a hung one. The build is
// cancelled if the client goes away (its heartbeat write fails) —
// idempotent seals make restarting on the next session safe.
func (d *Daemon) build(conn net.Conn, cfg trace.Config, key snapshot.Key, req buildRequest) error {
	pop, err := d.population(cfg)
	if err != nil {
		return sendErr(conn, false, err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	done := make(chan error, 1)
	go func() {
		done <- analysis.BuildShardRange(ctx, d.Dir, key, req.Lo, req.Hi, 0, func(u int, rows [][features.NumFeatures]float64) {
			pop.Users[u].FillSeries(rows)
			if d.BuildDelay > 0 {
				time.Sleep(d.BuildDelay)
			}
		})
	}()
	hb := req.HeartbeatMS
	if hb <= 0 {
		hb = 500
	}
	ticker := time.NewTicker(time.Duration(hb) * time.Millisecond)
	defer ticker.Stop()
	for {
		select {
		case err := <-done:
			if err != nil {
				return sendErr(conn, true, fmt.Errorf("build [%d, %d): %w", req.Lo, req.Hi, err))
			}
			return nil
		case <-ticker.C:
			if err := writeFrame(conn, 5*time.Second, mHeartbeat, nil); err != nil {
				cancel() // client is gone; stop burning the range
				<-done
				return fmt.Errorf("heartbeat: %w", err)
			}
		}
	}
}

// stream declares the sealed part and serves client-driven fetches
// until the client hangs up.
func (d *Daemon) stream(conn net.Conn, key snapshot.Key, req buildRequest) error {
	srv, err := snapshot.OpenPartServer(d.Dir, key, req.Lo, req.Hi)
	if err != nil {
		return sendErr(conn, true, err)
	}
	defer srv.Close()
	ready, _ := json.Marshal(readyInfo{Size: srv.Size(), CRC: srv.CRC()})
	if err := writeFrame(conn, 30*time.Second, mReady, ready); err != nil {
		return fmt.Errorf("ready: %w", err)
	}
	buf := make([]byte, 0)
	for {
		typ, payload, err := readFrame(conn, 5*time.Minute)
		if err != nil {
			if errors.Is(err, net.ErrClosed) {
				return nil
			}
			return nil // client hangup ends the session; the part stays cached
		}
		if typ != mFetch {
			return sendErr(conn, true, fmt.Errorf("expected fetch frame, got type %d", typ))
		}
		off, n, err := decodeFetch(payload)
		if err != nil {
			return sendErr(conn, true, err)
		}
		if n > maxFrame-12 {
			n = maxFrame - 12
		}
		data, crc, err := srv.ChunkAt(off, n, buf)
		if err != nil {
			return sendErr(conn, true, err)
		}
		buf = data[:cap(data)]
		if err := writeFrame(conn, 30*time.Second, mChunk, encodeChunk(off, crc, data)); err != nil {
			return fmt.Errorf("chunk at %d: %w", off, err)
		}
	}
}
