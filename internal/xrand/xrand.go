// Package xrand provides a deterministic, seedable random number
// generator and the probability distributions used throughout the
// reproduction: uniform, normal, exponential, Poisson, lognormal,
// Pareto, Weibull, Zipf and categorical (alias-method) sampling.
//
// The enterprise trace generator must be reproducible bit-for-bit from
// a seed so that every experiment in EXPERIMENTS.md regenerates the
// exact same population. math/rand's global state is unsuitable for
// that (package-level locking, version-dependent streams), so xrand
// implements its own core generator: xoshiro256** seeded through
// SplitMix64, the combination recommended by the xoshiro authors.
//
// All types in this package are NOT safe for concurrent use; create
// one Source per goroutine (Fork gives independent streams).
package xrand

import (
	"fmt"
	"math"
)

// Source is a deterministic pseudo-random source implementing
// xoshiro256**. The zero value is NOT usable; construct with New.
// The four state words are scalar fields (not an array) so Uint64
// stays within the compiler's inlining budget — every sampler's draw
// loop bottoms out there.
type Source struct {
	s0, s1, s2, s3 uint64

	// polar-method cache for NormFloat64
	spare     float64
	haveSpare bool
}

// New returns a Source seeded from seed via SplitMix64, which
// guarantees the four xoshiro words are well mixed even for small or
// highly structured seeds (0, 1, 2, ...).
func New(seed uint64) *Source {
	var src Source
	src.Reseed(seed)
	return &src
}

// Reseed resets the source to the stream determined by seed.
func (r *Source) Reseed(seed uint64) {
	r.haveSpare = false
	sm := seed
	sm, r.s0 = splitmix64(sm)
	sm, r.s1 = splitmix64(sm)
	sm, r.s2 = splitmix64(sm)
	_, r.s3 = splitmix64(sm)
}

// splitmix64 advances the SplitMix64 state and returns the new state
// and output word.
func splitmix64(state uint64) (next, out uint64) {
	state += 0x9e3779b97f4a7c15
	z := state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return state, z ^ (z >> 31)
}

// Uint64 returns the next 64 uniformly distributed bits. The xoshiro
// update is algebraically flattened — each new state word is an
// independent expression over the loaded state — so the four stores
// have no serial dependency chain; every distribution sampler sits in
// a draw loop on top of this.
func (r *Source) Uint64() uint64 {
	s0, s1, s2, s3 := r.s0, r.s1, r.s2, r.s3
	t := s3 ^ s1
	r.s0 = s0 ^ t
	r.s1 = s1 ^ s2 ^ s0
	r.s2 = s2 ^ s0 ^ s1<<17
	r.s3 = t<<45 | t>>19
	x := s1 * 5
	return (x<<7 | x>>57) * 9
}

// Fork returns a new Source whose stream is independent of r's. It is
// implemented with xoshiro's long-jump polynomial, which advances the
// parent by 2^192 steps; up to 2^64 forks have non-overlapping
// subsequences.
func (r *Source) Fork() *Source {
	child := &Source{s0: r.s0, s1: r.s1, s2: r.s2, s3: r.s3}
	r.longJump()
	return child
}

var longJumpPoly = [4]uint64{
	0x76e15d3efefdcbbf, 0xc5004e441c522fb3,
	0x77710069854ee241, 0x39109bb02acbe635,
}

func (r *Source) longJump() {
	var s0, s1, s2, s3 uint64
	for _, jp := range longJumpPoly {
		for b := 0; b < 64; b++ {
			if jp&(1<<uint(b)) != 0 {
				s0 ^= r.s0
				s1 ^= r.s1
				s2 ^= r.s2
				s3 ^= r.s3
			}
			r.Uint64()
		}
	}
	r.s0, r.s1, r.s2, r.s3 = s0, s1, s2, s3
}

// Float64 returns a uniform float64 in [0, 1) with 53 random bits.
func (r *Source) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Threshold53 converts a probability into an integer threshold for
// 53-bit uniforms: for any Source r,
//
//	r.Uint64()>>11 < Threshold53(p)
//
// consumes one draw and decides exactly like r.Float64() < p — the
// 53-bit word m and the quotient m/2^53 are both exact, so the float
// comparison and the integer comparison cut the same set of draws.
// Hot accept/reject loops use this to stay in integer registers (and
// within the compiler's inlining budget, which the two-deep
// Float64→Uint64 call no longer fits).
func Threshold53(p float64) uint64 {
	if !(p > 0) {
		return 0
	}
	if p >= 1 {
		return 1 << 53
	}
	return uint64(math.Ceil(p * (1 << 53)))
}

// Float64Open returns a uniform float64 in (0, 1); useful as input to
// inverse-CDF transforms that cannot accept 0.
func (r *Source) Float64Open() float64 {
	for {
		f := r.Float64()
		if f != 0 {
			return f
		}
	}
}

// Intn returns a uniform int in [0, n). It panics if n <= 0.
// Lemire's nearly-divisionless bounded sampling is used to avoid
// modulo bias.
func (r *Source) Intn(n int) int {
	if n <= 0 {
		panic(fmt.Sprintf("xrand: Intn bound must be positive, got %d", n))
	}
	bound := uint64(n)
	x := r.Uint64()
	hi, lo := mul64(x, bound)
	if lo < bound {
		threshold := (-bound) % bound
		for lo < threshold {
			x = r.Uint64()
			hi, lo = mul64(x, bound)
		}
	}
	return int(hi)
}

// mul64 returns the 128-bit product of a and b as (hi, lo).
func mul64(a, b uint64) (hi, lo uint64) {
	const mask32 = 1<<32 - 1
	a0, a1 := a&mask32, a>>32
	b0, b1 := b&mask32, b>>32
	t := a1*b0 + (a0*b0)>>32
	w1 := t&mask32 + a0*b1
	hi = a1*b1 + t>>32 + w1>>32
	lo = a * b
	return hi, lo
}

// Perm returns a random permutation of [0, n) using Fisher-Yates.
func (r *Source) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Shuffle pseudo-randomizes the order of n elements using the
// provided swap function, as in math/rand.
func (r *Source) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		swap(i, j)
	}
}

// NormFloat64 returns a standard normal variate (mean 0, stddev 1)
// using the Marsaglia polar method. The spare value is cached.
func (r *Source) NormFloat64() float64 {
	if r.haveSpare {
		r.haveSpare = false
		return r.spare
	}
	for {
		u := 2*r.Float64() - 1
		v := 2*r.Float64() - 1
		s := u*u + v*v
		if s >= 1 || s == 0 {
			continue
		}
		f := math.Sqrt(-2 * math.Log(s) / s)
		r.spare = v * f
		r.haveSpare = true
		return u * f
	}
}

// ExpFloat64 returns an exponential variate with rate 1 (mean 1).
func (r *Source) ExpFloat64() float64 {
	return -math.Log(r.Float64Open())
}
