package xrand

import (
	"fmt"
	"math"
	"testing"
)

var zipfRanksParams = []struct {
	n int
	s float64
}{
	{1, 1.1},
	{2, 1.05},
	{10, 0.5},
	{100, 1.2},
	{220, 1.17},
	{3000, 1.05},
	{3000, 2.5},
	{30000, 1.05},
	{30000, 1.30},
}

// TestZipfRanksStreamEquivalence pins the table sampler to the
// reference rejection-inversion sampler: same Source seed, identical
// variate stream, identical uniform consumption (checked by comparing
// the post-stream generator states).
func TestZipfRanksStreamEquivalence(t *testing.T) {
	for _, p := range zipfRanksParams {
		draws := 200000
		if testing.Short() {
			draws = 20000
		}
		ra, rb := New(uint64(p.n)*31+1), New(uint64(p.n)*31+1)
		ref := NewZipf(ra, p.n, p.s)
		tab := NewZipfRanks(p.n, p.s)
		for i := 0; i < draws; i++ {
			want := ref.Next()
			got := tab.Next(rb)
			if got != want {
				t.Fatalf("n=%d s=%g draw %d: table %d != reference %d", p.n, p.s, i, got, want)
			}
		}
		if ra.Uint64() != rb.Uint64() {
			t.Fatalf("n=%d s=%g: table consumed a different number of uniforms", p.n, p.s)
		}
	}
}

// TestZipfRanksBoundaryAgreement probes every precomputed boundary at
// offsets just inside and outside the guard band: the table's
// classification of u must match the reference step everywhere.
// Inside the band the table delegates to the reference (trivially
// equal); just outside is where a boundary misplaced by more than the
// pipeline's float error would first disagree.
func TestZipfRanksBoundaryAgreement(t *testing.T) {
	for _, p := range zipfRanksParams {
		if testing.Short() && p.n > 3000 {
			continue
		}
		tab := NewZipfRanks(p.n, p.s)
		lo := tab.hIntegralX1
		hi := tab.hIntegralN
		if lo > hi {
			lo, hi = hi, lo
		}
		offsets := []float64{
			-64 * tab.guard, -4 * tab.guard, -1.5 * tab.guard, -1.01 * tab.guard,
			-0.5 * tab.guard, 0, 0.5 * tab.guard,
			1.01 * tab.guard, 1.5 * tab.guard, 4 * tab.guard, 64 * tab.guard,
		}
		probe := func(b float64) {
			if math.IsNaN(b) {
				return
			}
			for _, off := range offsets {
				u := b + off
				if u <= lo || u > hi {
					continue
				}
				gk, gok := tab.classify(u)
				wk, wok := tab.step(u)
				if gok != wok || (gok && gk != wk) {
					t.Fatalf("n=%d s=%g u=%v (boundary %v offset %g): table (%d,%t) != reference (%d,%t)",
						p.n, p.s, u, b, off, gk, gok, wk, wok)
				}
			}
		}
		for _, b := range tab.buckets {
			probe(b.lo)
			probe(b.c)
		}
	}
}

// TestZipfRanksUniformAgreement hammers classify with uniforms spread
// over the whole draw range.
func TestZipfRanksUniformAgreement(t *testing.T) {
	r := New(99)
	for _, p := range zipfRanksParams {
		tab := NewZipfRanks(p.n, p.s)
		n := 200000
		if testing.Short() {
			n = 20000
		}
		for i := 0; i < n; i++ {
			u := tab.hIntegralN + r.Float64()*tab.delta
			gk, gok := tab.classify(u)
			wk, wok := tab.step(u)
			if gok != wok || (gok && gk != wk) {
				t.Fatalf("n=%d s=%g u=%v: table (%d,%t) != reference (%d,%t)", p.n, p.s, u, gk, gok, wk, wok)
			}
		}
	}
}

func TestZipfRanksPanics(t *testing.T) {
	for name, fn := range map[string]func(){
		"zero-n": func() { NewZipfRanks(0, 1) },
		"zero-s": func() { NewZipfRanks(10, 0) },
		"huge-n": func() { NewZipfRanks(maxZipfRanks+1, 1.1) },
		"neg-s":  func() { NewZipfRanks(10, -2) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", name)
				}
			}()
			fn()
		}()
	}
}

func BenchmarkZipfNext(b *testing.B) {
	r := New(1)
	z := NewZipf(r, 30000, 1.05)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		z.Next()
	}
}

func BenchmarkZipfRanksNext(b *testing.B) {
	for _, n := range []int{220, 1200, 30000} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			r := New(1)
			z := NewZipfRanks(n, 1.05)
			b.ResetTimer()
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				z.Next(r)
			}
		})
	}
}

// BenchmarkNewZipfRanks covers the body of the pool-size
// distribution; the 30000 cap is excluded because its ~1 MB/op of
// table allocation makes the timing swing with the harness process's
// heap state, which the bench-check gate cannot tolerate (its build
// cost shows up in EXPERIMENTS.md instead).
func BenchmarkNewZipfRanks(b *testing.B) {
	for _, n := range []int{220, 1200} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				NewZipfRanks(n, 1.05)
			}
		})
	}
}

// TestZipfRanksSampleDistinct pins the bulk counts-path sampler to n
// sequential Next calls: same uniform consumption, same marks, same
// distinct count.
func TestZipfRanksSampleDistinct(t *testing.T) {
	for _, p := range zipfRanksParams {
		tab := NewZipfRanks(p.n, p.s)
		ra, rb := New(uint64(p.n)*13+3), New(uint64(p.n)*13+3)
		for epoch := uint16(1); epoch <= 4; epoch++ {
			n := 1000 * int(epoch)
			wantMarks := make([]uint16, p.n)
			gotMarks := make([]uint16, p.n)
			want := 0
			for i := 0; i < n; i++ {
				k := tab.Next(ra)
				if wantMarks[k-1] != epoch {
					wantMarks[k-1] = epoch
					want++
				}
			}
			got := tab.SampleDistinct(rb, n, gotMarks, epoch)
			if got != want {
				t.Fatalf("n=%d s=%g: SampleDistinct %d != reference %d", p.n, p.s, got, want)
			}
			if ra.Uint64() != rb.Uint64() {
				t.Fatalf("n=%d s=%g: uniform consumption diverged", p.n, p.s)
			}
		}
	}
}

// TestZipfRanksPooledEquivalence pins pooled construction to the
// plain one: tables built into recycled (dirty) storage must emit the
// identical variate stream. The release-and-rebuild loop walks the
// sizes out of order so each build inherits another size's leftover
// bytes — exactly the dirty-reuse case the pool's safety argument
// rests on.
func TestZipfRanksPooledEquivalence(t *testing.T) {
	// Warm the pools with deliberately mismatched sizes so the first
	// builds below already see dirty storage.
	for _, p := range zipfRanksParams {
		NewZipfRanksPooled(p.n, p.s).Release()
	}
	for round := 0; round < 3; round++ {
		for i := len(zipfRanksParams) - 1; i >= 0; i-- {
			p := zipfRanksParams[i]
			draws := 20000
			if testing.Short() {
				draws = 2000
			}
			ra, rb := New(uint64(p.n)*977+uint64(round)), New(uint64(p.n)*977+uint64(round))
			fresh := NewZipfRanks(p.n, p.s)
			pooled := NewZipfRanksPooled(p.n, p.s)
			for d := 0; d < draws; d++ {
				want := fresh.Next(ra)
				got := pooled.Next(rb)
				if got != want {
					t.Fatalf("round %d n=%d s=%g draw %d: pooled %d != fresh %d", round, p.n, p.s, d, got, want)
				}
			}
			if ra.Uint64() != rb.Uint64() {
				t.Fatalf("round %d n=%d s=%g: pooled table consumed a different number of uniforms", round, p.n, p.s)
			}
			pooled.Release()
		}
	}
}

// BenchmarkNewZipfRanksPooled is the pooled counterpart of
// BenchmarkNewZipfRanks: same table sizes, construction into recycled
// storage. The allocs/op column is the point — a warmed pool builds
// for zero allocations, which is what flattens the per-user setup
// tail in the 5000-user sweep.
func BenchmarkNewZipfRanksPooled(b *testing.B) {
	for _, n := range []int{220, 1200} {
		b.Run(fmt.Sprintf("n=%d", n), func(b *testing.B) {
			NewZipfRanksPooled(n, 1.05).Release()
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				NewZipfRanksPooled(n, 1.05).Release()
			}
		})
	}
}
