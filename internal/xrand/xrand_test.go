package xrand

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDeterminism(t *testing.T) {
	a := New(42)
	b := New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("streams diverged at step %d", i)
		}
	}
}

func TestDifferentSeedsDiffer(t *testing.T) {
	a := New(1)
	b := New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("seeds 1 and 2 produced %d identical words out of 100", same)
	}
}

func TestReseedRestoresStream(t *testing.T) {
	r := New(7)
	first := make([]uint64, 50)
	for i := range first {
		first[i] = r.Uint64()
	}
	r.Reseed(7)
	for i := range first {
		if got := r.Uint64(); got != first[i] {
			t.Fatalf("after Reseed word %d = %d, want %d", i, got, first[i])
		}
	}
}

func TestReseedClearsNormalSpare(t *testing.T) {
	r := New(7)
	r.NormFloat64() // leaves a spare cached
	r.Reseed(7)
	a := r.NormFloat64()
	r2 := New(7)
	b := r2.NormFloat64()
	if a != b {
		t.Fatalf("Reseed did not clear the polar-method spare: %g != %g", a, b)
	}
}

func TestForkIndependence(t *testing.T) {
	parent := New(99)
	child := parent.Fork()
	// The two streams must not be identical.
	identical := true
	for i := 0; i < 64; i++ {
		if parent.Uint64() != child.Uint64() {
			identical = false
			break
		}
	}
	if identical {
		t.Fatal("forked stream identical to parent stream")
	}
}

func TestForkDeterminism(t *testing.T) {
	mk := func() (uint64, uint64) {
		p := New(5)
		c1 := p.Fork()
		c2 := p.Fork()
		return c1.Uint64(), c2.Uint64()
	}
	a1, a2 := mk()
	b1, b2 := mk()
	if a1 != b1 || a2 != b2 {
		t.Fatal("Fork is not deterministic")
	}
	if a1 == a2 {
		t.Fatal("sibling forks produced the same first word")
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(3)
	for i := 0; i < 100000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of [0,1): %g", f)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := New(11)
	const n = 200000
	var sum float64
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	mean := sum / n
	if math.Abs(mean-0.5) > 0.005 {
		t.Fatalf("Float64 mean = %g, want ~0.5", mean)
	}
}

func TestIntnBounds(t *testing.T) {
	r := New(13)
	for _, n := range []int{1, 2, 3, 7, 100, 1 << 20} {
		for i := 0; i < 2000; i++ {
			v := r.Intn(n)
			if v < 0 || v >= n {
				t.Fatalf("Intn(%d) = %d out of range", n, v)
			}
		}
	}
}

func TestIntnUniform(t *testing.T) {
	r := New(17)
	const buckets = 10
	const n = 100000
	counts := make([]int, buckets)
	for i := 0; i < n; i++ {
		counts[r.Intn(buckets)]++
	}
	want := float64(n) / buckets
	for b, c := range counts {
		if math.Abs(float64(c)-want) > 5*math.Sqrt(want) {
			t.Fatalf("bucket %d count %d deviates from %g by more than 5 sigma", b, c, want)
		}
	}
}

func TestIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("Intn(0) did not panic")
		}
	}()
	New(1).Intn(0)
}

func TestPermIsPermutation(t *testing.T) {
	r := New(19)
	for _, n := range []int{0, 1, 2, 10, 100} {
		p := r.Perm(n)
		if len(p) != n {
			t.Fatalf("Perm(%d) has length %d", n, len(p))
		}
		seen := make([]bool, n)
		for _, v := range p {
			if v < 0 || v >= n || seen[v] {
				t.Fatalf("Perm(%d) = %v is not a permutation", n, p)
			}
			seen[v] = true
		}
	}
}

func TestShuffleProperty(t *testing.T) {
	f := func(seed uint64, size uint8) bool {
		n := int(size%32) + 1
		r := New(seed)
		vals := make([]int, n)
		for i := range vals {
			vals[i] = i
		}
		r.Shuffle(n, func(i, j int) { vals[i], vals[j] = vals[j], vals[i] })
		seen := make([]bool, n)
		for _, v := range vals {
			if v < 0 || v >= n || seen[v] {
				return false
			}
			seen[v] = true
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestNormalMoments(t *testing.T) {
	r := New(23)
	const n = 200000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		v := r.Normal(10, 3)
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean-10) > 0.05 {
		t.Fatalf("Normal mean = %g, want ~10", mean)
	}
	if math.Abs(math.Sqrt(variance)-3) > 0.05 {
		t.Fatalf("Normal stddev = %g, want ~3", math.Sqrt(variance))
	}
}

func TestExponentialMean(t *testing.T) {
	r := New(29)
	const n = 200000
	var sum float64
	for i := 0; i < n; i++ {
		sum += r.Exponential(4)
	}
	if mean := sum / n; math.Abs(mean-4) > 0.1 {
		t.Fatalf("Exponential(4) mean = %g", mean)
	}
}

func TestLogNormalMedian(t *testing.T) {
	r := New(31)
	const n = 100001
	vals := make([]float64, n)
	for i := range vals {
		vals[i] = r.LogNormal(2, 1.5)
	}
	// Median of lognormal(mu, sigma) is exp(mu).
	med := quickMedian(vals)
	want := math.Exp(2)
	if math.Abs(med-want)/want > 0.05 {
		t.Fatalf("LogNormal median = %g, want ~%g", med, want)
	}
}

func quickMedian(vals []float64) float64 {
	// simple selection; fine for tests
	cp := append([]float64(nil), vals...)
	k := len(cp) / 2
	lo, hi := 0, len(cp)-1
	for {
		if lo >= hi {
			return cp[k]
		}
		pivot := cp[(lo+hi)/2]
		i, j := lo, hi
		for i <= j {
			for cp[i] < pivot {
				i++
			}
			for cp[j] > pivot {
				j--
			}
			if i <= j {
				cp[i], cp[j] = cp[j], cp[i]
				i++
				j--
			}
		}
		if k <= j {
			hi = j
		} else if k >= i {
			lo = i
		} else {
			return cp[k]
		}
	}
}

func TestParetoTail(t *testing.T) {
	r := New(37)
	const n = 200000
	xm, alpha := 2.0, 1.5
	exceed := 0
	for i := 0; i < n; i++ {
		v := r.Pareto(xm, alpha)
		if v < xm {
			t.Fatalf("Pareto produced %g < xm=%g", v, xm)
		}
		if v > 10 {
			exceed++
		}
	}
	// P(X > 10) = (xm/10)^alpha
	want := math.Pow(xm/10, alpha)
	got := float64(exceed) / n
	if math.Abs(got-want)/want > 0.1 {
		t.Fatalf("Pareto tail P(X>10) = %g, want ~%g", got, want)
	}
}

func TestWeibullReducesToExponential(t *testing.T) {
	r := New(41)
	const n = 200000
	var sum float64
	for i := 0; i < n; i++ {
		sum += r.Weibull(3, 1)
	}
	if mean := sum / n; math.Abs(mean-3) > 0.1 {
		t.Fatalf("Weibull(3,1) mean = %g, want ~3 (exponential)", mean)
	}
}

func TestPoissonMoments(t *testing.T) {
	for _, mean := range []float64{0.5, 3, 12, 40, 250, 2000} {
		r := New(43)
		const n = 60000
		var sum, sumSq float64
		for i := 0; i < n; i++ {
			v := float64(r.Poisson(mean))
			if v < 0 {
				t.Fatalf("Poisson(%g) produced negative value", mean)
			}
			sum += v
			sumSq += v * v
		}
		m := sum / n
		variance := sumSq/n - m*m
		tol := 5 * math.Sqrt(mean/n) // ~5 sigma on the sample mean
		if math.Abs(m-mean) > tol+0.05 {
			t.Errorf("Poisson(%g) mean = %g (tol %g)", mean, m, tol)
		}
		if math.Abs(variance-mean)/mean > 0.1 {
			t.Errorf("Poisson(%g) variance = %g, want ~mean", mean, variance)
		}
	}
}

func TestPoissonZeroMean(t *testing.T) {
	r := New(47)
	for i := 0; i < 100; i++ {
		if v := r.Poisson(0); v != 0 {
			t.Fatalf("Poisson(0) = %d", v)
		}
	}
}

func TestBinomialMoments(t *testing.T) {
	r := New(53)
	const n = 50000
	var sum float64
	for i := 0; i < n; i++ {
		sum += float64(r.Binomial(20, 0.3))
	}
	if mean := sum / n; math.Abs(mean-6) > 0.1 {
		t.Fatalf("Binomial(20,0.3) mean = %g, want ~6", mean)
	}
}

func TestZipfRankOneMostFrequent(t *testing.T) {
	r := New(59)
	z := NewZipf(r, 100, 1.2)
	counts := make([]int, 101)
	for i := 0; i < 100000; i++ {
		k := z.Next()
		if k < 1 || k > 100 {
			t.Fatalf("Zipf out of range: %d", k)
		}
		counts[k]++
	}
	if counts[1] <= counts[2] || counts[2] <= counts[10] {
		t.Fatalf("Zipf counts not decreasing: c1=%d c2=%d c10=%d",
			counts[1], counts[2], counts[10])
	}
	// Check the 1 vs 2 ratio against 2^s.
	ratio := float64(counts[1]) / float64(counts[2])
	want := math.Pow(2, 1.2)
	if math.Abs(ratio-want)/want > 0.15 {
		t.Fatalf("Zipf rank1/rank2 ratio = %g, want ~%g", ratio, want)
	}
}

func TestAliasMatchesWeights(t *testing.T) {
	r := New(61)
	weights := []float64{1, 2, 3, 4}
	a := NewAlias(r, weights)
	counts := make([]float64, len(weights))
	const n = 200000
	for i := 0; i < n; i++ {
		counts[a.Next()]++
	}
	for i, w := range weights {
		want := w / 10 * n
		if math.Abs(counts[i]-want) > 5*math.Sqrt(want) {
			t.Fatalf("alias index %d count %g, want ~%g", i, counts[i], want)
		}
	}
}

func TestAliasSingleWeight(t *testing.T) {
	r := New(67)
	a := NewAlias(r, []float64{5})
	for i := 0; i < 100; i++ {
		if a.Next() != 0 {
			t.Fatal("single-weight alias returned nonzero index")
		}
	}
}

func TestAliasZeroWeightNeverSampled(t *testing.T) {
	r := New(71)
	a := NewAlias(r, []float64{0, 1, 0, 1})
	for i := 0; i < 10000; i++ {
		if k := a.Next(); k == 0 || k == 2 {
			t.Fatalf("alias sampled zero-weight index %d", k)
		}
	}
}

func TestAliasPanics(t *testing.T) {
	cases := [][]float64{nil, {}, {0, 0}, {-1, 2}, {math.NaN()}, {math.Inf(1)}}
	for _, w := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("NewAlias(%v) did not panic", w)
				}
			}()
			NewAlias(New(1), w)
		}()
	}
}

func TestDistPanics(t *testing.T) {
	r := New(1)
	for name, fn := range map[string]func(){
		"Normal":      func() { r.Normal(0, -1) },
		"Exponential": func() { r.Exponential(0) },
		"Pareto":      func() { r.Pareto(0, 1) },
		"Weibull":     func() { r.Weibull(1, 0) },
		"Poisson":     func() { r.Poisson(-1) },
		"Binomial":    func() { r.Binomial(-1, 0.5) },
		"Zipf":        func() { NewZipf(r, 0, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s with invalid args did not panic", name)
				}
			}()
			fn()
		}()
	}
}

func BenchmarkUint64(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.Uint64()
	}
}

func BenchmarkPoissonLargeMean(b *testing.B) {
	r := New(1)
	for i := 0; i < b.N; i++ {
		_ = r.Poisson(500)
	}
}

func BenchmarkAliasNext(b *testing.B) {
	r := New(1)
	a := NewAlias(r, []float64{1, 5, 2, 9, 3, 7, 4})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = a.Next()
	}
}
