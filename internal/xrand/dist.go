package xrand

import (
	"fmt"
	"math"
)

// Normal returns a normal variate with the given mean and standard
// deviation. It panics if stddev is negative.
func (r *Source) Normal(mean, stddev float64) float64 {
	if stddev < 0 {
		panic(fmt.Sprintf("xrand: Normal stddev must be >= 0, got %g", stddev))
	}
	return mean + stddev*r.NormFloat64()
}

// LogNormal returns a lognormal variate: exp(N(mu, sigma)). mu and
// sigma are the parameters of the underlying normal, so the median of
// the distribution is exp(mu).
func (r *Source) LogNormal(mu, sigma float64) float64 {
	return math.Exp(r.Normal(mu, sigma))
}

// Exponential returns an exponential variate with the given mean
// (i.e. rate 1/mean). It panics if mean <= 0.
func (r *Source) Exponential(mean float64) float64 {
	if mean <= 0 {
		panic(fmt.Sprintf("xrand: Exponential mean must be > 0, got %g", mean))
	}
	return mean * r.ExpFloat64()
}

// Pareto returns a Pareto (type I) variate with minimum xm and shape
// alpha. Smaller alpha gives heavier tails; alpha <= 1 has infinite
// mean. It panics unless xm > 0 and alpha > 0.
func (r *Source) Pareto(xm, alpha float64) float64 {
	if xm <= 0 || alpha <= 0 {
		panic(fmt.Sprintf("xrand: Pareto requires xm > 0 and alpha > 0, got xm=%g alpha=%g", xm, alpha))
	}
	return xm / math.Pow(r.Float64Open(), 1/alpha)
}

// Weibull returns a Weibull variate with scale lambda and shape k.
// k < 1 gives heavy-ish tails and strong burstiness; k = 1 reduces to
// Exponential(lambda).
func (r *Source) Weibull(lambda, k float64) float64 {
	if lambda <= 0 || k <= 0 {
		panic(fmt.Sprintf("xrand: Weibull requires lambda > 0 and k > 0, got lambda=%g k=%g", lambda, k))
	}
	return lambda * math.Pow(-math.Log(r.Float64Open()), 1/k)
}

// Poisson returns a Poisson variate with the given mean. For small
// means it uses Knuth's product-of-uniforms method; for large means it
// uses the PTRS transformed-rejection sampler of Hörmann (1993), which
// is exact and O(1). It panics if mean < 0.
func (r *Source) Poisson(mean float64) int {
	switch {
	case mean < 0 || math.IsNaN(mean):
		panic(fmt.Sprintf("xrand: Poisson mean must be >= 0, got %g", mean))
	case mean == 0:
		return 0
	case mean < 30:
		return r.poissonKnuth(mean)
	default:
		return r.poissonPTRS(mean)
	}
}

func (r *Source) poissonKnuth(mean float64) int {
	limit := math.Exp(-mean)
	k := 0
	p := 1.0
	for {
		// float64(w)*2^-53 equals Float64's w/2^53 bit for bit (both
		// round the same exact real once); spelled out so the draw
		// inlines.
		p *= float64(r.Uint64()>>11) * (1.0 / (1 << 53))
		if p <= limit {
			return k
		}
		k++
	}
}

// poissonPTRS implements the PTRS algorithm. Valid for mean >= 10.
func (r *Source) poissonPTRS(mean float64) int {
	b := 0.931 + 2.53*math.Sqrt(mean)
	a := -0.059 + 0.02483*b
	invAlpha := 1.1239 + 1.1328/(b-3.4)
	vr := 0.9277 - 3.6224/(b-2)
	logMean := math.Log(mean)
	for {
		u := float64(r.Uint64()>>11)*(1.0/(1<<53)) - 0.5
		v := float64(r.Uint64()>>11) * (1.0 / (1 << 53))
		us := 0.5 - math.Abs(u)
		k := math.Floor((2*a/us+b)*u + mean + 0.43)
		if us >= 0.07 && v <= vr {
			return int(k)
		}
		if k < 0 || (us < 0.013 && v > us) {
			continue
		}
		if math.Log(v*invAlpha/(a/(us*us)+b)) <= k*logMean-mean-logGamma(k+1) {
			return int(k)
		}
	}
}

// logGamma is a thin wrapper around math.Lgamma that discards the
// sign (the argument is always positive here).
func logGamma(x float64) float64 {
	lg, _ := math.Lgamma(x)
	return lg
}

// Binomial returns a binomial variate: the number of successes in n
// independent trials each succeeding with probability p, one uniform
// per trial. The trials compare the raw 53-bit words against an
// integer threshold, which decides identically to the float compare
// (see Threshold53) while keeping the loop free of float conversions
// and calls.
func (r *Source) Binomial(n int, p float64) int {
	if n < 0 || p < 0 || p > 1 {
		panic(fmt.Sprintf("xrand: Binomial requires n >= 0 and p in [0,1], got n=%d p=%g", n, p))
	}
	t := Threshold53(p)
	k := 0
	for i := 0; i < n; i++ {
		if r.Uint64()>>11 < t {
			k++
		}
	}
	return k
}

// Zipf samples from a Zipf distribution over {1, ..., n} with exponent
// s > 0, using rejection-inversion (Hörmann & Derflinger). Rank 1 is
// the most probable.
type Zipf struct {
	src *Source
	zipfCore
}

// zipfCore holds the distribution constants and the per-draw
// rejection-inversion step shared by Zipf (draws transcendentals per
// call) and ZipfRanks (precomputed rank-boundary table). Both must
// produce identical variates from identical uniforms, so the step
// arithmetic lives here in exactly one place.
type zipfCore struct {
	n           float64
	s           float64
	hIntegralX1 float64
	hIntegralN  float64
	threshold   float64
}

func newZipfCore(n int, s float64) zipfCore {
	z := zipfCore{n: float64(n), s: s}
	z.hIntegralX1 = z.hIntegral(1.5) - 1
	z.hIntegralN = z.hIntegral(z.n + 0.5)
	z.threshold = 2 - z.hIntegralInv(z.hIntegral(2.5)-z.h(2))
	return z
}

// step runs one rejection-inversion iteration on the uniform u drawn
// from [hIntegralN, hIntegralX1]: it returns the rank and true on
// acceptance, or false when the draw is rejected and the caller must
// redraw.
func (z *zipfCore) step(u float64) (int, bool) {
	x := z.hIntegralInv(u)
	k := math.Floor(x + 0.5)
	if k < 1 {
		k = 1
	} else if k > z.n {
		k = z.n
	}
	if k-x <= z.threshold || u >= z.hIntegral(k+0.5)-z.h(k) {
		return int(k), true
	}
	return 0, false
}

// NewZipf constructs a Zipf sampler. It panics if n < 1 or s <= 0.
func NewZipf(src *Source, n int, s float64) *Zipf {
	if n < 1 || s <= 0 {
		panic(fmt.Sprintf("xrand: NewZipf requires n >= 1 and s > 0, got n=%d s=%g", n, s))
	}
	return &Zipf{src: src, zipfCore: newZipfCore(n, s)}
}

// Next returns the next Zipf variate in [1, n].
func (z *Zipf) Next() int {
	for {
		u := z.hIntegralN + z.src.Float64()*(z.hIntegralX1-z.hIntegralN)
		if k, ok := z.step(u); ok {
			return k
		}
	}
}

func (z *zipfCore) h(x float64) float64 { return math.Exp(-z.s * math.Log(x)) }

func (z *zipfCore) hIntegral(x float64) float64 {
	logX := math.Log(x)
	return helper2((1-z.s)*logX) * logX
}

func (z *zipfCore) hIntegralInv(x float64) float64 {
	t := x * (1 - z.s)
	if t < -1 {
		t = -1
	}
	return math.Exp(helper1(t) * x)
}

// helper1 computes log1p(x)/x with a series expansion near zero.
func helper1(x float64) float64 {
	if math.Abs(x) > 1e-8 {
		return math.Log1p(x) / x
	}
	return 1 - x*(0.5-x*(1.0/3.0-x*0.25))
}

// helper2 computes expm1(x)/x with a series expansion near zero.
func helper2(x float64) float64 {
	if math.Abs(x) > 1e-8 {
		return math.Expm1(x) / x
	}
	return 1 + x*0.5*(1+x*(1.0/3.0)*(1+x*0.25))
}

// Alias implements Walker/Vose alias-method sampling from an arbitrary
// discrete distribution in O(1) per draw after O(n) setup.
type Alias struct {
	src   *Source
	prob  []float64
	alias []int
}

// NewAlias builds an alias table for the given non-negative weights.
// Weights need not be normalized. It panics if weights is empty, if
// any weight is negative or non-finite, or if all weights are zero.
func NewAlias(src *Source, weights []float64) *Alias {
	n := len(weights)
	if n == 0 {
		panic("xrand: NewAlias requires at least one weight")
	}
	var total float64
	for i, w := range weights {
		if w < 0 || math.IsNaN(w) || math.IsInf(w, 0) {
			panic(fmt.Sprintf("xrand: NewAlias weight %d is invalid: %g", i, w))
		}
		total += w
	}
	if total == 0 {
		panic("xrand: NewAlias requires at least one positive weight")
	}
	a := &Alias{
		src:   src,
		prob:  make([]float64, n),
		alias: make([]int, n),
	}
	scaled := make([]float64, n)
	small := make([]int, 0, n)
	large := make([]int, 0, n)
	for i, w := range weights {
		scaled[i] = w * float64(n) / total
		if scaled[i] < 1 {
			small = append(small, i)
		} else {
			large = append(large, i)
		}
	}
	for len(small) > 0 && len(large) > 0 {
		s := small[len(small)-1]
		small = small[:len(small)-1]
		l := large[len(large)-1]
		large = large[:len(large)-1]
		a.prob[s] = scaled[s]
		a.alias[s] = l
		scaled[l] = scaled[l] + scaled[s] - 1
		if scaled[l] < 1 {
			small = append(small, l)
		} else {
			large = append(large, l)
		}
	}
	for _, i := range large {
		a.prob[i] = 1
	}
	for _, i := range small {
		a.prob[i] = 1 // numerical leftovers
	}
	return a
}

// Next returns an index distributed according to the weights passed to
// NewAlias.
func (a *Alias) Next() int {
	i := a.src.Intn(len(a.prob))
	if a.src.Float64() < a.prob[i] {
		return i
	}
	return a.alias[i]
}
