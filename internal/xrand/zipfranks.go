package xrand

import (
	"fmt"
	"math"
	"sync"

	"repro/internal/pool"
)

// ZipfRanks is a precomputed rank-boundary view of a Zipf(n, s)
// distribution, built once per (n, s) and shared across any number of
// draws. It produces exactly the same variate stream as Zipf for the
// same Source — rank for rank, rejection for rejection — but resolves
// most draws with one cell-table load, and the rest with a short
// bracketed search over precomputed bucket edges, instead of the
// reference's per-uniform transcendentals (hIntegralInv is a Log1p
// plus an Exp per draw).
//
// Why this is safe: rejection inversion maps each uniform u to a rank
// k = floor(hIntegralInv(u)+0.5) and an accept/reject decision, both
// step functions of u alone. The steps sit at u = hIntegral of
// half-integer points, which the table computes once per rank. The
// table's bucket edges are the *ideal* step positions; the reference
// implementation computes the steps through a float pipeline whose
// placement can differ from the ideal by a few ULPs. Every edge
// therefore carries a guard band several orders of magnitude wider
// than that error: draws landing inside a band are classified by the
// retained reference arithmetic (zipfCore.step), draws outside are
// classified by the table. The acceptance bound (zipfBucket.c) is
// compared exactly as the reference computes it, so it needs no
// guard; the rare draws below it also go to the reference step.
// Fallbacks never change the result, only how it is computed. The
// boundary-agreement and stream-equivalence tests in
// zipfranks_test.go pin table and reference to each other.
//
// A ZipfRanks is immutable after construction and safe for concurrent
// use; each Next call draws from the caller's Source.
type ZipfRanks struct {
	zipfCore
	in    int     // n as an int
	delta float64 // hIntegralX1 - hIntegralN, the per-draw scale factor
	// deltaScaled = delta/2^53 (exact: a power-of-two scaling), so a
	// raw 53-bit word w maps to the uniform hIntegralN + w*deltaScaled
	// with the single rounding the reference's Float64()*delta takes.
	deltaScaled float64
	// cellScale maps a raw 53-bit word directly to its cell index
	// (one rounding instead of the two the u-route takes — a
	// difference of ULPs, orders of magnitude inside the certainty
	// margins), so the cell load does not wait for u.
	cellScale float64
	guard     float64 // half-width of the fallback band around each boundary

	// buckets[k-1] holds rank k's boundaries in one cache-friendly
	// record; buckets[n] is a sentinel whose lo is the top of the
	// draw range, so bucket k's interval is [buckets[k-1].lo,
	// buckets[k].lo).
	buckets []zipfBucket
	// fast[i] > 0 means every uniform whose cell index truncates to i
	// certainly classifies as rank fast[i], accepted — one load
	// resolves the draw. fast[i] < 0 means cell i is not pre-decided
	// and -fast[i] is the rank bucket containing the cell's start
	// point u(i/cells); together with the next entry it brackets the
	// bucket search, so no separate boundary-bucket array is needed.
	// |fast[i]| is always that boundary bucket. The last entry is the
	// bottom-of-range sentinel. int16 keeps the draw path's footprint
	// small: the heaviest supports' tables must stay cache-resident
	// under a draw loop. len cells+1, |values| non-increasing.
	fast      []int16
	invDeltaG float64 // cells/delta: maps u back to a grid cell
}

// zipfBucket holds one rank's precomputed boundaries in one
// 16-byte record — the draw path's footprint on the heaviest
// supports is what bounds its speed.
type zipfBucket struct {
	// lo = hIntegral(k-0.5): the ideal lower u-edge of bucket k
	// (-Inf for k=1, whose bucket extends to the bottom of the draw
	// range).
	lo float64
	// c = hIntegral(k+0.5) - h(k): the slow-path acceptance bound,
	// computed with the identical float expression the reference
	// uses, so comparisons against it are exact. Any uniform at or
	// above c accepts outright (the reference's second test), no
	// matter how its quick-accept test falls; uniforms below c —
	// the would-be rejects plus a sliver whose quick-accept test
	// still passes, a fraction of a percent together — go to the
	// reference step.
	c float64
}

// maxZipfRanks bounds the support so ranks fit the int16 cell
// encoding (and the bucket/cell tables stay cache-sized). Larger
// supports should use Zipf directly.
const maxZipfRanks = 1<<15 - 1

// fastCells returns the cell-table resolution for a support of n.
func fastCells(n int) int {
	cells := 8 * n
	if cells > 1<<18 {
		cells = 1 << 18
	}
	return cells
}

func checkZipfRanksArgs(n int, s float64) {
	if n < 1 || s <= 0 {
		panic(fmt.Sprintf("xrand: NewZipfRanks requires n >= 1 and s > 0, got n=%d s=%g", n, s))
	}
	if n > maxZipfRanks {
		panic(fmt.Sprintf("xrand: NewZipfRanks supports n <= %d, got %d (use NewZipf)", maxZipfRanks, n))
	}
}

// Process-wide size-bucketed free lists for the two construction
// tables (the alloc tail of per-user generator setup). Construction
// fully overwrites every entry it later reads — the bucket sentinel's
// c field is the only never-written slot, and it is also never read —
// so dirty pooled storage is safe; the table equivalence tests pin
// pooled and fresh construction identical.
var (
	bucketPool    pool.Slices[zipfBucket]
	fastCellPool  pool.Slices[int16]
	zipfRanksPool = sync.Pool{New: func() any { return new(ZipfRanks) }}
)

// NewZipfRanks builds the rank table for Zipf(n, s). It panics if
// n < 1, n > 32767, or s <= 0.
func NewZipfRanks(n int, s float64) *ZipfRanks {
	checkZipfRanksArgs(n, s)
	z := new(ZipfRanks)
	z.build(n, s, make([]zipfBucket, n+1), make([]int16, fastCells(n)+1))
	return z
}

// NewZipfRanksPooled is NewZipfRanks with the struct and both tables
// drawn from process-wide size-bucketed pools: the table it returns
// is identical entry for entry, but a sweep constructing one per user
// stops allocating once the pools warm. Pair with Release; a pooled
// table left unreleased is merely garbage, never corrupt.
func NewZipfRanksPooled(n int, s float64) *ZipfRanks {
	checkZipfRanksArgs(n, s)
	z := zipfRanksPool.Get().(*ZipfRanks)
	z.build(n, s, bucketPool.Get(n+1), fastCellPool.Get(fastCells(n)+1))
	return z
}

// Release returns the table's storage to the construction pools. The
// table (and any variate stream drawing from it) must not be used
// afterwards. Safe on tables from either constructor: non-pooled
// storage simply misses the pools' capacity classes and is dropped.
func (z *ZipfRanks) Release() {
	if z == nil {
		return
	}
	bucketPool.Put(z.buckets)
	fastCellPool.Put(z.fast)
	z.buckets, z.fast = nil, nil
	zipfRanksPool.Put(z)
}

// build constructs the table in place into possibly dirty storage
// (len(buckets) == n+1, len(fast) == fastCells(n)+1): every field of
// z and every read entry of both tables is overwritten.
func (z *ZipfRanks) build(n int, s float64, buckets []zipfBucket, fast []int16) {
	z.zipfCore = newZipfCore(n, s)
	z.in = n
	z.delta = z.hIntegralX1 - z.hIntegralN
	z.deltaScaled = z.delta / (1 << 53)
	z.guard = 1e-11 * (1 + math.Abs(z.hIntegralX1) + math.Abs(z.hIntegralN))

	z.buckets = buckets
	z.buckets[0].lo = math.Inf(-1)
	for k := 1; k <= n; k++ {
		fk := float64(k)
		// hIntegral(k+0.5) is both the acceptance bound's first term
		// and the next bucket's lower edge; evaluate it once.
		hi := z.hIntegral(fk + 0.5)
		z.buckets[k-1].c = hi - z.h(fk)
		if k < n {
			z.buckets[k].lo = hi
		}
	}
	// Sentinel above the whole draw range (u never exceeds
	// hIntegralN, which is > hIntegralX1 for every valid s).
	top := z.hIntegralN
	if z.hIntegralX1 > top {
		top = z.hIntegralX1
	}
	z.buckets[n].lo = top + 1

	cells := fastCells(n)
	// First pass: store the rank bucket at every cell boundary,
	// negated (the "not pre-decided" encoding).
	z.fast = fast
	k := n
	for i := 0; i <= cells; i++ {
		u := z.hIntegralN + (float64(i)/float64(cells))*z.delta
		for k > 1 && z.buckets[k-1].lo > u {
			k--
		}
		z.fast[i] = int16(-k)
	}
	z.invDeltaG = float64(cells) / z.delta
	z.cellScale = z.deltaScaled * z.invDeltaG

	// Second pass — cell-level certainty: a draw whose computed index
	// truncates to cell i has its uniform in [u(i+1), u(i)] give or
	// take the rounding of the index product, which is ULP-scale —
	// far inside one guard width. If that interval, widened by a
	// guard on each side, sits strictly inside one bucket — clear of
	// the bucket's edge guard bands — and entirely at or above the
	// bucket's exact acceptance bound, the draw's outcome is already
	// decided and the cell entry flips positive. The flip preserves
	// |fast[i]|, so later cells still read their start bucket from an
	// already-flipped neighbor.
	for i := 0; i < cells; i++ {
		// u decreases with the cell index.
		a := z.hIntegralN + (float64(i+1)/float64(cells))*z.delta - z.guard
		b := z.hIntegralN + (float64(i)/float64(cells))*z.delta + z.guard
		k := int(z.fast[i+1])
		if k < 0 {
			k = -k
		}
		ki := int(z.fast[i])
		if ki < 0 {
			ki = -ki
		}
		if ki != k {
			continue // cell crosses a bucket edge: search path
		}
		bk := &z.buckets[k-1]
		if !(a-bk.lo > z.guard && z.buckets[k].lo-b > z.guard) {
			continue
		}
		if a >= bk.c {
			z.fast[i] = int16(k) // whole cell accepts
		}
	}
}

// N returns the support size n.
func (z *ZipfRanks) N() int { return z.in }

// S returns the exponent s.
func (z *ZipfRanks) S() float64 { return z.s }

// Next returns the next Zipf variate in [1, n], drawing uniforms from
// src. For a given Source state the returned value — and the number
// of uniforms consumed — is identical to Zipf.Next.
func (z *ZipfRanks) Next(src *Source) int {
	// The last real cell is len-2: the final entry is the
	// bottom-of-range sentinel every cell reads as its far bracket
	// (cells >= 8 for every valid n, so the range is never empty).
	last := len(z.fast) - 2
	for {
		w := float64(src.Uint64() >> 11)
		u := z.hIntegralN + w*z.deltaScaled
		i := int(w * z.cellScale)
		if i < 0 {
			i = 0
		} else if i > last {
			i = last
		}
		if v := z.fast[i]; v > 0 {
			return int(v)
		}
		if k, ok := z.classifySlow(u, i); ok {
			return k
		}
	}
}

// classify maps one uniform u to (rank, accepted): one load for
// draws whose cell is pre-decided, the bracketed search path
// otherwise.
func (z *ZipfRanks) classify(u float64) (int, bool) {
	if z.in > 1 {
		// The last real cell is len-2: the final entry is the
		// bottom-of-range sentinel every cell reads as its far
		// bracket.
		i := int((u - z.hIntegralN) * z.invDeltaG)
		if i < 0 {
			i = 0
		} else if i >= len(z.fast)-1 {
			i = len(z.fast) - 2
		}
		v := z.fast[i]
		if v > 0 {
			return int(v), true
		}
		return z.classifySlow(u, i)
	}
	return z.classifySlow(u, 0)
}

// accept decides a certain-rank draw against rank k's acceptance
// bound: at or above c the reference accepts through its second test
// regardless of the quick-accept outcome (the comparison is exact);
// below c only the quick-accept test can still save the draw, so the
// reference step decides.
func (z *ZipfRanks) accept(u float64, k int) (int, bool) {
	if u >= z.buckets[k-1].c {
		return k, true
	}
	return z.step(u)
}

// classifySlow is the boundary-exact path for draws near a boundary
// (or tiny supports), delegating to the reference step inside guard
// bands.
func (z *ZipfRanks) classifySlow(u float64, i int) (int, bool) {
	k := 1
	if z.in > 1 {
		// The cell's boundary buckets bracket the search range. The
		// truncation of u back to a cell index can be off by one near
		// cell boundaries, so widen by one bucket on each side and
		// verify; fall back to a full search if the bracket was wrong
		// (reachable only at cell edges, harmless).
		hi := int(z.fast[i])
		if hi < 0 {
			hi = -hi
		}
		lo := int(z.fast[i+1])
		if lo < 0 {
			lo = -lo
		}
		lo = max(lo-1, 1)
		hi = min(hi+1, z.in)
		if hi-lo <= 8 {
			// The bracket's records are adjacent 16-byte entries —
			// a couple of cache lines — so a linear scan beats the
			// binary search's dependent loads.
			k = lo
			for k < hi && z.buckets[k].lo <= u {
				k++
			}
		} else {
			k = z.search(u, lo, hi)
		}
		if !(z.buckets[k-1].lo <= u && u < z.buckets[k].lo) {
			k = z.search(u, 1, z.in)
		}
		// Guard bands around the bucket edges.
		if u-z.buckets[k-1].lo < z.guard || z.buckets[k].lo-u < z.guard {
			return z.step(u)
		}
	}
	return z.accept(u, k)
}

// search returns the bucket in [lo, hi] containing u: the last bucket
// whose lower edge is at most u.
func (z *ZipfRanks) search(u float64, lo, hi int) int {
	for lo < hi {
		m := int(uint(lo+hi+1) >> 1)
		if z.buckets[m-1].lo <= u {
			lo = m
		} else {
			hi = m - 1
		}
	}
	return lo
}

// SampleDistinct draws n variates — consuming uniforms and producing
// ranks exactly as n calls to Next would — and marks each drawn rank
// in marks (marks[k-1] = epoch), returning how many ranks were newly
// marked this epoch. marks must have at least N() entries. This bulk
// form exists for the trace generator's counts path: one call per
// aggregation window keeps the draw loop, the rank table and the mark
// table in a single frame, with no per-draw call overhead.
func (z *ZipfRanks) SampleDistinct(src *Source, n int, marks []uint16, epoch uint16) int {
	distinct := 0
	last := len(z.fast) - 2
	for ; n > 0; n-- {
		k := 0
		for k == 0 {
			w := float64(src.Uint64() >> 11)
			u := z.hIntegralN + w*z.deltaScaled
			i := int(w * z.cellScale)
			if i < 0 {
				i = 0
			} else if i > last {
				i = last
			}
			if v := z.fast[i]; v > 0 {
				k = int(v)
				break
			}
			if kk, ok := z.classifySlow(u, i); ok {
				k = kk
			}
		}
		if marks[k-1] != epoch {
			marks[k-1] = epoch
			distinct++
		}
	}
	return distinct
}
