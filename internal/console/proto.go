// Package console implements the enterprise HIDS management plane the
// paper assumes (§1, §4): end hosts "are typically configured to
// interact with centralized IT management", ship their traffic
// probability distributions to a central console, receive thresholds
// computed by the enterprise policy, and "batch alerts that are sent
// periodically to IT".
//
// The package provides the wire protocol, the central console server
// (Server) and the end-host agent (Agent). Transport is any
// net.Conn; production use is TCP, tests also drive net.Pipe.
//
// # Wire format
//
// Every message is a frame:
//
//	uint32 little-endian payload length
//	uint8  message type
//	JSON payload
//
// JSON keeps the protocol debuggable (this is a management plane, not
// a data plane; the per-message rate is tiny). The length prefix is
// capped to protect both sides from corrupt or hostile peers.
package console

import (
	"encoding/binary"
	"encoding/json"
	"fmt"
	"io"

	"repro/internal/features"
)

// MsgType identifies a protocol message.
type MsgType uint8

// Protocol message types.
const (
	// MsgHello is the agent's first message: host identity.
	MsgHello MsgType = iota + 1
	// MsgDistUpload carries one feature's training distribution from
	// an agent to the console.
	MsgDistUpload
	// MsgThresholds carries the console's per-feature thresholds to
	// one agent.
	MsgThresholds
	// MsgAlertBatch carries a batch of alerts from an agent.
	MsgAlertBatch
	// MsgAck acknowledges a message that needs acknowledgment.
	MsgAck
	// MsgError reports a protocol-level failure.
	MsgError
	// MsgPing is a one-way agent keepalive: the console refreshes the
	// host's liveness record and sends nothing back. Being one-way is
	// load-bearing — acknowledged RPCs are serialized per connection,
	// so a ping must never inject an ack into that FIFO stream.
	MsgPing
)

// String names the message type.
func (t MsgType) String() string {
	switch t {
	case MsgHello:
		return "hello"
	case MsgDistUpload:
		return "dist-upload"
	case MsgThresholds:
		return "thresholds"
	case MsgAlertBatch:
		return "alert-batch"
	case MsgAck:
		return "ack"
	case MsgError:
		return "error"
	case MsgPing:
		return "ping"
	default:
		return fmt.Sprintf("msgtype(%d)", uint8(t))
	}
}

// MaxFrame is the largest accepted payload. A full week of 5-minute
// bins is ~2016 float64 samples ≈ 40 KiB of JSON; 8 MiB leaves two
// orders of magnitude of headroom.
const MaxFrame = 8 << 20

// Hello is the agent's introduction.
type Hello struct {
	// HostID is the end-host identifier (stable across reconnects).
	HostID uint32 `json:"host_id"`
	// Hostname is informational.
	Hostname string `json:"hostname,omitempty"`
	// Resume marks a self-healing redial by an agent incarnation that
	// already held a connection: its alert-batch sequence numbers
	// continue the old stream, so the console keeps the host's dedup
	// watermark. A fresh hello (Resume false) restarts the stream and
	// resets the watermark — a restarted agent process begins at 1.
	Resume bool `json:"resume,omitempty"`
}

// DistUpload is one feature's training distribution. Samples are the
// raw per-window feature values; the console builds the empirical
// distribution (and, for homogeneous/partial policies, merges them
// across hosts — "all the individual distributions are collapsed
// into a single global distribution", §4).
type DistUpload struct {
	HostID  uint32    `json:"host_id"`
	Feature int       `json:"feature"`
	Samples []float64 `json:"samples"`
	// Epoch is the configuration epoch this upload targets: the epoch
	// the host expects its thresholds to carry. The console stores
	// uploads for the current open epoch, opens epoch e+1 when a host
	// that saw epoch e's thresholds re-uploads (weekly re-learning),
	// and idempotently acknowledges-and-drops stale epochs — which is
	// what makes a reconnecting agent's re-sent upload harmless
	// instead of wiping the fleet's training state.
	Epoch int `json:"epoch,omitempty"`
}

// Thresholds is the console's configuration push: one threshold per
// feature, indexed by canonical feature order.
type Thresholds struct {
	// Values[f] is the alarm threshold for feature f; NaN is not
	// allowed (absent features use +Inf encoded as the string "inf"
	// by the JSON layer — we simply always send all six).
	Values [features.NumFeatures]float64 `json:"values"`
	// Policy names the policy that produced the thresholds.
	Policy string `json:"policy"`
	// Group is the configuration group this host landed in.
	Group int `json:"group"`
	// Epoch counts configuration rounds; the paper re-learns
	// thresholds weekly (§6.1), so a long-lived deployment sees
	// epoch 0, 1, 2, ... as training windows roll forward.
	Epoch int `json:"epoch"`
}

// Alert is one threshold exceedance on one host.
type Alert struct {
	Feature   int     `json:"feature"`
	Bin       int     `json:"bin"`
	Value     float64 `json:"value"`
	Threshold float64 `json:"threshold"`
}

// AlertBatch is the periodic alert report (§3: "alerts are generated
// and periodically sent to a central console").
type AlertBatch struct {
	HostID uint32  `json:"host_id"`
	Alerts []Alert `json:"alerts"`
	// Seq is the agent-assigned batch sequence number, starting at 1
	// and stable across re-sends of the same batch; the console drops
	// (but still acknowledges) a sequence it has already tallied, so a
	// batch whose ack was lost in transit is never double-counted.
	// Zero means unsequenced (legacy senders) and always passes.
	Seq uint64 `json:"seq,omitempty"`
}

// Ack acknowledges receipt; Seq echoes the sender's sequence number
// when one was supplied.
type Ack struct {
	Seq uint64 `json:"seq,omitempty"`
}

// Ping is the one-way keepalive payload.
type Ping struct {
	HostID uint32 `json:"host_id"`
}

// ProtoError is a protocol-level error report.
type ProtoError struct {
	Message string `json:"message"`
}

// WriteMsg frames and writes one message.
func WriteMsg(w io.Writer, t MsgType, payload any) error {
	body, err := json.Marshal(payload)
	if err != nil {
		return fmt.Errorf("console: marshaling %s: %w", t, err)
	}
	if len(body) > MaxFrame {
		return fmt.Errorf("console: %s payload %d exceeds MaxFrame", t, len(body))
	}
	// One frame, one write: a fault-injected transport (and a real
	// kernel's send path) then fails or delivers the frame as a unit,
	// never a header without its body.
	frame := make([]byte, 5+len(body))
	binary.LittleEndian.PutUint32(frame[0:4], uint32(len(body)))
	frame[4] = byte(t)
	copy(frame[5:], body)
	if _, err := w.Write(frame); err != nil {
		return fmt.Errorf("console: writing %s frame: %w", t, err)
	}
	return nil
}

// ReadMsg reads one frame and returns its type and raw payload.
func ReadMsg(r io.Reader) (MsgType, []byte, error) {
	var hdr [5]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, nil, err // io.EOF propagates cleanly for shutdown
	}
	n := binary.LittleEndian.Uint32(hdr[0:4])
	if n > MaxFrame {
		return 0, nil, fmt.Errorf("console: frame of %d bytes exceeds MaxFrame", n)
	}
	body := make([]byte, n)
	if _, err := io.ReadFull(r, body); err != nil {
		return 0, nil, fmt.Errorf("console: reading %d-byte body: %w", n, err)
	}
	return MsgType(hdr[4]), body, nil
}

// decode unmarshals a payload into v with a console-flavored error.
func decode(t MsgType, body []byte, v any) error {
	if err := json.Unmarshal(body, v); err != nil {
		return fmt.Errorf("console: decoding %s: %w", t, err)
	}
	return nil
}
