package console

import (
	"bytes"
	"fmt"
	"net"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/features"
	"repro/internal/netsim"
	"repro/internal/trace"
)

func TestWriteReadMsgRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	in := DistUpload{HostID: 9, Feature: int(features.UDP), Samples: []float64{1, 2, 3.5}}
	if err := WriteMsg(&buf, MsgDistUpload, in); err != nil {
		t.Fatal(err)
	}
	typ, body, err := ReadMsg(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if typ != MsgDistUpload {
		t.Fatalf("type = %v", typ)
	}
	var out DistUpload
	if err := decode(typ, body, &out); err != nil {
		t.Fatal(err)
	}
	if out.HostID != 9 || out.Feature != int(features.UDP) || len(out.Samples) != 3 {
		t.Fatalf("round trip: %+v", out)
	}
}

func TestReadMsgRejectsOversizedFrame(t *testing.T) {
	var buf bytes.Buffer
	buf.Write([]byte{0xff, 0xff, 0xff, 0xff, 1})
	if _, _, err := ReadMsg(&buf); err == nil {
		t.Fatal("oversized frame accepted")
	}
}

func TestReadMsgTruncated(t *testing.T) {
	var buf bytes.Buffer
	_ = WriteMsg(&buf, MsgAck, Ack{})
	b := buf.Bytes()[:buf.Len()-1]
	if _, _, err := ReadMsg(bytes.NewReader(b)); err == nil {
		t.Fatal("truncated frame accepted")
	}
}

func TestMsgTypeString(t *testing.T) {
	for _, typ := range []MsgType{MsgHello, MsgDistUpload, MsgThresholds, MsgAlertBatch, MsgAck, MsgError} {
		if strings.HasPrefix(typ.String(), "msgtype(") {
			t.Errorf("type %d unnamed", typ)
		}
	}
	if MsgType(99).String() != "msgtype(99)" {
		t.Error("unknown type name")
	}
}

func TestNewServerValidation(t *testing.T) {
	if _, err := NewServer(ServerConfig{}); err == nil {
		t.Fatal("empty config accepted")
	}
	if _, err := NewServer(ServerConfig{ExpectedHosts: 1}); err == nil {
		t.Fatal("missing policy accepted")
	}
}

// startServer launches a console on loopback and returns it with its
// address.
func startServer(t *testing.T, cfg ServerConfig) (*Server, string) {
	t.Helper()
	srv, err := NewServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go func() { _ = srv.Serve(ln) }()
	t.Cleanup(func() { _ = srv.Close() })
	return srv, ln.Addr().String()
}

func policy99(g core.Grouping) core.Policy {
	return core.Policy{Heuristic: core.Percentile{Q: 0.99}, Grouping: g}
}

// TestEndToEndFleet runs a small fleet of agents against a live
// console over loopback TCP: upload training week, receive
// thresholds, monitor the test week, batch alerts.
func TestEndToEndFleet(t *testing.T) {
	const users = 8
	pop := trace.MustPopulation(trace.Config{Users: users, Weeks: 2, Seed: 51})
	srv, addr := startServer(t, ServerConfig{
		Policy:        policy99(core.FullDiversity{}),
		ExpectedHosts: users,
	})

	var wg sync.WaitGroup
	alerts := make([]int, users)
	errs := make([]error, users)
	for i, u := range pop.Users {
		wg.Add(1)
		go func(i int, u *trace.User) {
			defer wg.Done()
			errs[i] = func() error {
				agent, err := Dial(addr, uint32(u.ID), fmt.Sprintf("host-%d", u.ID))
				if err != nil {
					return err
				}
				defer agent.Close()
				m := u.Series()
				lo0, hi0 := m.WeekRange(0)
				if err := agent.UploadMatrix(m, lo0, hi0); err != nil {
					return err
				}
				thr, err := agent.WaitThresholds(20 * time.Second)
				if err != nil {
					return err
				}
				for _, f := range features.All() {
					if thr.Values[f] <= 0 {
						return fmt.Errorf("feature %s threshold %g", f, thr.Values[f])
					}
				}
				// Monitor week 2 and batch alerts every simulated day.
				lo1, hi1 := m.WeekRange(1)
				for b := lo1; b < hi1; b++ {
					c := features.Counts{
						DNS:      int(m.Rows[b][features.DNS]),
						TCP:      int(m.Rows[b][features.TCP]),
						TCPSYN:   int(m.Rows[b][features.TCPSYN]),
						HTTP:     int(m.Rows[b][features.HTTP]),
						Distinct: int(m.Rows[b][features.Distinct]),
						UDP:      int(m.Rows[b][features.UDP]),
					}
					if err := agent.ObserveWindow(b, c); err != nil {
						return err
					}
					if (b-lo1+1)%96 == 0 {
						alerts[i] += agent.PendingAlerts()
						if err := agent.Flush(); err != nil {
							return err
						}
					}
				}
				alerts[i] += agent.PendingAlerts()
				return agent.Flush()
			}()
		}(i, u)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("agent %d: %v", i, err)
		}
	}
	if !srv.Configured() {
		t.Fatal("server never configured")
	}
	total := 0
	for i, u := range pop.Users {
		got := srv.AlertCount(uint32(u.ID))
		if got != alerts[i] {
			t.Errorf("host %d: console saw %d alerts, agent sent %d", u.ID, got, alerts[i])
		}
		total += got
	}
	if srv.TotalAlerts() != total {
		t.Errorf("TotalAlerts %d != sum %d", srv.TotalAlerts(), total)
	}
	if len(srv.Hosts()) != users {
		t.Errorf("Hosts = %v", srv.Hosts())
	}
	// Full diversity: the server-side assignment must give every user
	// their own group.
	asn := srv.Assignment(features.TCP)
	if asn == nil || len(asn.Groups) != users {
		t.Fatalf("assignment groups: %+v", asn)
	}
}

// TestHomogeneousPushesOneThreshold checks the monoculture path: all
// agents receive the same value.
func TestHomogeneousPushesOneThreshold(t *testing.T) {
	const users = 4
	pop := trace.MustPopulation(trace.Config{Users: users, Weeks: 1, Seed: 53})
	_, addr := startServer(t, ServerConfig{
		Policy:        policy99(core.Homogeneous{}),
		ExpectedHosts: users,
	})
	agents := make([]*Agent, users)
	for i, u := range pop.Users {
		a, err := Dial(addr, uint32(u.ID), "")
		if err != nil {
			t.Fatal(err)
		}
		defer a.Close()
		agents[i] = a
		m := u.Series()
		if err := a.UploadMatrix(m, 0, m.Bins()); err != nil {
			t.Fatal(err)
		}
	}
	var thr0 Thresholds
	for i, a := range agents {
		thr, err := a.WaitThresholds(20 * time.Second)
		if err != nil {
			t.Fatalf("agent %d: %v", i, err)
		}
		if i == 0 {
			thr0 = thr
		} else if thr.Values != thr0.Values {
			t.Fatalf("homogeneous thresholds differ: %v vs %v", thr.Values, thr0.Values)
		}
	}
}

func TestLateConnectorGetsThresholds(t *testing.T) {
	pop := trace.MustPopulation(trace.Config{Users: 3, Weeks: 1, Seed: 57})
	srv, addr := startServer(t, ServerConfig{
		Policy:        policy99(core.PartialDiversity{NumGroups: 2}),
		ExpectedHosts: 2,
	})
	// First two hosts upload; configuration happens once both are in.
	var agents []*Agent
	for _, u := range pop.Users[:2] {
		a, err := Dial(addr, uint32(u.ID), "")
		if err != nil {
			t.Fatal(err)
		}
		defer a.Close()
		agents = append(agents, a)
		m := u.Series()
		if err := a.UploadMatrix(m, 0, 400); err != nil {
			t.Fatal(err)
		}
	}
	for i, a := range agents {
		if _, err := a.WaitThresholds(20 * time.Second); err != nil {
			t.Fatalf("agent %d: %v", i, err)
		}
	}
	// Free host 0's connection so the reconnect below is accepted.
	_ = agents[0].Close()
	if !srv.Configured() {
		t.Fatal("not configured")
	}
	// A reconnecting host (same ID as host 0) receives the stored
	// thresholds without uploading anything.
	late, err := Dial(addr, uint32(pop.Users[0].ID), "reconnect")
	if err != nil {
		t.Fatal(err)
	}
	defer late.Close()
	if _, err := late.WaitThresholds(20 * time.Second); err != nil {
		t.Fatalf("late connector: %v", err)
	}
}

// TestReconnectDoesNotLeakConns is the regression test for the
// reconnect race fixed in PR 1: a handler that lost its conns slot to
// a faster reconnector must not delete the newcomer's entry on exit,
// and a departed host must always vacate its slot — a leaked entry
// would make every future redial of that host ID fail as a
// "duplicate host". Exercised over the in-memory transport through
// repeated drop-and-redial cycles.
func TestReconnectDoesNotLeakConns(t *testing.T) {
	const users = 2
	pop := trace.MustPopulation(trace.Config{Users: users, Weeks: 1, Seed: 63, BinWidth: 4 * time.Hour})
	srv, err := NewServer(ServerConfig{
		Policy:        policy99(core.FullDiversity{}),
		ExpectedHosts: users,
	})
	if err != nil {
		t.Fatal(err)
	}
	network := netsim.NewMemNetwork()
	ln, err := network.Listen("console")
	if err != nil {
		t.Fatal(err)
	}
	go func() { _ = srv.Serve(ln) }()
	t.Cleanup(func() { _ = srv.Close() })

	dial := func(host uint32) *Agent {
		t.Helper()
		conn, err := network.Dial("console")
		if err != nil {
			t.Fatal(err)
		}
		a, err := NewAgent(conn, host, "")
		if err != nil {
			t.Fatalf("host %d: %v", host, err)
		}
		return a
	}

	// Both hosts upload so the console configures and stores
	// thresholds for host 0 to resume onto.
	agents := make([]*Agent, users)
	for i, u := range pop.Users {
		agents[i] = dial(uint32(u.ID))
		m := u.Series()
		if err := agents[i].UploadMatrix(m, 0, m.Bins()); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := agents[0].WaitThresholds(20 * time.Second); err != nil {
		t.Fatal(err)
	}

	// Host 0 drops and redials repeatedly. Every cycle must resume
	// cleanly: thresholds re-pushed from the stored assignment, alert
	// batches accepted, and the previous connection's slot vacated
	// (redial is only accepted once the old entry is gone).
	counts := features.Counts{TCP: 1 << 20} // over any sane threshold
	for cycle := 0; cycle < 5; cycle++ {
		_ = agents[0].Close()
		agents[0] = dial(0)
		thr, err := agents[0].WaitThresholds(20 * time.Second)
		if err != nil {
			t.Fatalf("cycle %d: resume: %v", cycle, err)
		}
		if thr.Values[features.TCP] <= 0 {
			t.Fatalf("cycle %d: bogus resumed thresholds %v", cycle, thr.Values)
		}
		if err := agents[0].ObserveWindow(cycle, counts); err != nil {
			t.Fatalf("cycle %d: %v", cycle, err)
		}
		if err := agents[0].Flush(); err != nil {
			t.Fatalf("cycle %d: flush after resume: %v", cycle, err)
		}
	}
	if got := srv.AlertCount(0); got < 5 {
		t.Fatalf("console saw %d alerts from the reconnecting host, want >= 5", got)
	}
	// With both hosts connected, exactly two conns entries may exist;
	// after closing both, the table must drain to zero (no leak).
	if got := srv.ActiveConns(); got != users {
		t.Fatalf("ActiveConns = %d with %d live hosts", got, users)
	}
	for _, a := range agents {
		_ = a.Close()
	}
	deadline := time.Now().Add(5 * time.Second)
	for srv.ActiveConns() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("conns table still holds %d entries after all agents closed", srv.ActiveConns())
		}
		time.Sleep(2 * time.Millisecond)
	}
}

func TestDuplicateHostRejected(t *testing.T) {
	_, addr := startServer(t, ServerConfig{
		Policy:        policy99(core.Homogeneous{}),
		ExpectedHosts: 2,
	})
	a, err := Dial(addr, 7, "")
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	if _, err := Dial(addr, 7, ""); err == nil {
		t.Fatal("duplicate host id accepted")
	}
}

func TestUploadValidation(t *testing.T) {
	_, addr := startServer(t, ServerConfig{
		Policy:        policy99(core.Homogeneous{}),
		ExpectedHosts: 2,
	})
	a, err := Dial(addr, 1, "")
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	if err := a.UploadDistribution(features.Feature(42), []float64{1}); err == nil {
		t.Fatal("invalid feature accepted client-side")
	}
	// Empty sample set is rejected by the server.
	if err := a.UploadDistribution(features.TCP, nil); err == nil {
		t.Fatal("empty distribution accepted")
	}
}

func TestAgentObserveBeforeThresholds(t *testing.T) {
	_, addr := startServer(t, ServerConfig{
		Policy:        policy99(core.Homogeneous{}),
		ExpectedHosts: 2,
	})
	a, err := Dial(addr, 3, "")
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	if err := a.ObserveWindow(0, features.Counts{TCP: 5}); err == nil {
		t.Fatal("ObserveWindow before thresholds accepted")
	}
}

func TestAgentOverPipe(t *testing.T) {
	// The agent protocol works over any net.Conn; exercise net.Pipe
	// with a scripted server.
	client, server := net.Pipe()
	done := make(chan error, 1)
	go func() {
		done <- func() error {
			typ, body, err := ReadMsg(server)
			if err != nil {
				return err
			}
			var h Hello
			if typ != MsgHello || decode(typ, body, &h) != nil || h.HostID != 42 {
				return fmt.Errorf("bad hello: %v %s", typ, body)
			}
			if err := WriteMsg(server, MsgAck, Ack{}); err != nil {
				return err
			}
			var thr Thresholds
			for f := range thr.Values {
				thr.Values[f] = 10
			}
			return WriteMsg(server, MsgThresholds, thr)
		}()
	}()
	a, err := NewAgent(client, 42, "pipe-host")
	if err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	thr, err := a.WaitThresholds(5 * time.Second)
	if err != nil {
		t.Fatal(err)
	}
	if thr.Values[features.TCP] != 10 {
		t.Fatalf("thresholds = %v", thr.Values)
	}
	// Alarm path without any server interaction (queue only).
	if err := a.ObserveWindow(1, features.Counts{TCP: 11}); err != nil {
		t.Fatal(err)
	}
	if a.PendingAlerts() != 1 {
		t.Fatalf("pending = %d", a.PendingAlerts())
	}
	_ = client.Close()
	_ = server.Close()
}

func TestServerRejectsGarbageFirstMessage(t *testing.T) {
	_, addr := startServer(t, ServerConfig{
		Policy:        policy99(core.Homogeneous{}),
		ExpectedHosts: 1,
	})
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if err := WriteMsg(conn, MsgAlertBatch, AlertBatch{HostID: 1}); err != nil {
		t.Fatal(err)
	}
	typ, _, err := ReadMsg(conn)
	if err != nil {
		t.Fatal(err)
	}
	if typ != MsgError {
		t.Fatalf("server replied %v, want error", typ)
	}
}

func TestAgentFlushEmpty(t *testing.T) {
	_, addr := startServer(t, ServerConfig{
		Policy:        policy99(core.Homogeneous{}),
		ExpectedHosts: 2,
	})
	a, err := Dial(addr, 11, "")
	if err != nil {
		t.Fatal(err)
	}
	defer a.Close()
	if err := a.Flush(); err != nil {
		t.Fatalf("empty flush: %v", err)
	}
}

func TestAgentCloseIdempotent(t *testing.T) {
	_, addr := startServer(t, ServerConfig{
		Policy:        policy99(core.Homogeneous{}),
		ExpectedHosts: 2,
	})
	a, err := Dial(addr, 12, "")
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Close(); err != nil {
		t.Fatal(err)
	}
	if err := a.Close(); err != nil {
		t.Fatalf("second close: %v", err)
	}
}

// TestWeeklyRelearning exercises the paper's §6.1 methodology over
// the management plane: thresholds are re-learned when agents upload
// a fresh training week, and the new epoch's thresholds differ.
func TestWeeklyRelearning(t *testing.T) {
	const users = 3
	pop := trace.MustPopulation(trace.Config{Users: users, Weeks: 2, Seed: 61})
	srv, addr := startServer(t, ServerConfig{
		Policy:        policy99(core.FullDiversity{}),
		ExpectedHosts: users,
	})
	agents := make([]*Agent, users)
	for i, u := range pop.Users {
		a, err := Dial(addr, uint32(u.ID), "")
		if err != nil {
			t.Fatal(err)
		}
		defer a.Close()
		agents[i] = a
		m := u.Series()
		lo, hi := m.WeekRange(0)
		if err := a.UploadMatrix(m, lo, hi); err != nil {
			t.Fatal(err)
		}
	}
	thr0 := make([]Thresholds, users)
	for i, a := range agents {
		thr, err := a.WaitThresholdsEpoch(0, 20*time.Second)
		if err != nil {
			t.Fatalf("epoch 0 agent %d: %v", i, err)
		}
		if thr.Epoch != 0 {
			t.Fatalf("epoch = %d, want 0", thr.Epoch)
		}
		thr0[i] = thr
	}
	// Week rolls over: re-upload with week 2 as training data.
	for i, u := range pop.Users {
		m := u.Series()
		lo, hi := m.WeekRange(1)
		if err := agents[i].UploadMatrix(m, lo, hi); err != nil {
			t.Fatal(err)
		}
	}
	for i, a := range agents {
		thr, err := a.WaitThresholdsEpoch(1, 20*time.Second)
		if err != nil {
			t.Fatalf("epoch 1 agent %d: %v", i, err)
		}
		if thr.Epoch != 1 {
			t.Fatalf("epoch = %d, want 1", thr.Epoch)
		}
		if thr.Values == thr0[i].Values {
			t.Errorf("agent %d: thresholds identical across weeks (drift expected)", i)
		}
	}
	if srv.Epoch() != 1 {
		t.Fatalf("server epoch = %d", srv.Epoch())
	}
}
