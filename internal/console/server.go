package console

import (
	"errors"
	"fmt"
	"io"
	"net"
	"sort"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/features"
	"repro/internal/stats"
)

// ServerConfig parameterizes the central console.
type ServerConfig struct {
	// Policy is the enterprise configuration policy applied to every
	// feature.
	Policy core.Policy
	// ExpectedHosts is the number of hosts that must upload all six
	// training distributions before thresholds are computed and
	// pushed. Must be positive.
	ExpectedHosts int
	// AttackMagnitudes feed objective-optimizing heuristics; may be
	// nil for percentile-style heuristics.
	AttackMagnitudes []float64
	// Logf, if set, receives operational log lines (default: silent).
	Logf func(format string, args ...any)
	// WriteTimeout, when positive, is applied as a write deadline to
	// every outbound frame so one wedged agent cannot block the
	// console's push loop (default: none).
	WriteTimeout time.Duration
	// IdleTimeout, when positive, bounds how long a connection may sit
	// silent between inbound frames (including before hello) before it
	// is dropped. Default: none — agents with nothing to report between
	// flush rounds stay connected indefinitely unless they Ping.
	IdleTimeout time.Duration
}

// Server is the central IT operation console: it collects training
// distributions, computes the policy's thresholds, pushes them to
// agents and tallies incoming alerts.
type Server struct {
	cfg ServerConfig

	mu          sync.Mutex
	configuring bool
	epoch       int
	conns       map[uint32]*serverConn
	dists       map[uint32]*[features.NumFeatures][]float64
	complete    map[uint32]bool
	pushed      bool
	alertTally  map[uint32]int
	alertLog    []AlertBatch
	alertSeq    map[uint32]uint64
	liveness    map[uint32]*HostLiveness
	assignment  map[features.Feature]*core.Assignment
	hostOrder   []uint32

	wg       sync.WaitGroup
	closing  bool
	listener net.Listener
}

type serverConn struct {
	hostID       uint32
	conn         net.Conn
	wmu          sync.Mutex
	writeTimeout time.Duration
}

func (c *serverConn) send(t MsgType, payload any) error {
	c.wmu.Lock()
	defer c.wmu.Unlock()
	if c.writeTimeout > 0 {
		_ = c.conn.SetWriteDeadline(time.Now().Add(c.writeTimeout))
		defer func() { _ = c.conn.SetWriteDeadline(time.Time{}) }()
	}
	return WriteMsg(c.conn, t, payload)
}

// HostLiveness is the console's per-agent connectivity record.
type HostLiveness struct {
	// Connected reports whether the host currently holds a registered
	// connection.
	Connected bool
	// Connects and Disconnects count registration events; a self-healing
	// agent that rode out a partition shows Connects > 1.
	Connects    int
	Disconnects int
	// LastSeen is the wall-clock time of the last inbound frame (or
	// disconnect) from the host.
	LastSeen time.Time
}

// NewServer creates a console server.
func NewServer(cfg ServerConfig) (*Server, error) {
	if cfg.ExpectedHosts <= 0 {
		return nil, fmt.Errorf("console: ExpectedHosts must be positive, got %d", cfg.ExpectedHosts)
	}
	if cfg.Policy.Heuristic == nil || cfg.Policy.Grouping == nil {
		return nil, fmt.Errorf("console: ServerConfig.Policy incomplete")
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	return &Server{
		cfg:        cfg,
		conns:      make(map[uint32]*serverConn),
		dists:      make(map[uint32]*[features.NumFeatures][]float64),
		complete:   make(map[uint32]bool),
		alertTally: make(map[uint32]int),
		alertSeq:   make(map[uint32]uint64),
		liveness:   make(map[uint32]*HostLiveness),
	}, nil
}

// Serve accepts agent connections on ln until Close is called. It
// returns after the listener fails or closes.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	s.listener = ln
	s.mu.Unlock()
	for {
		conn, err := ln.Accept()
		if err != nil {
			s.mu.Lock()
			closing := s.closing
			s.mu.Unlock()
			if closing {
				return nil
			}
			return fmt.Errorf("console: accept: %w", err)
		}
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			if err := s.handle(conn); err != nil && !errors.Is(err, net.ErrClosed) {
				s.cfg.Logf("console: connection from %v: %v", conn.RemoteAddr(), err)
			}
		}()
	}
}

// readDeadline arms conn's read deadline from IdleTimeout (a no-op
// when none is configured) so a silent peer eventually times out.
func (s *Server) readDeadline(conn net.Conn) {
	if s.cfg.IdleTimeout > 0 {
		_ = conn.SetReadDeadline(time.Now().Add(s.cfg.IdleTimeout))
	}
}

// handle runs one agent connection to completion.
func (s *Server) handle(conn net.Conn) error {
	defer conn.Close()

	s.readDeadline(conn)
	t, body, err := ReadMsg(conn)
	if err != nil {
		return err
	}
	if t != MsgHello {
		_ = WriteMsg(conn, MsgError, ProtoError{Message: "expected hello"})
		return fmt.Errorf("first message was %s", t)
	}
	var hello Hello
	if err := decode(t, body, &hello); err != nil {
		return err
	}
	sc := &serverConn{hostID: hello.HostID, conn: conn, writeTimeout: s.cfg.WriteTimeout}
	if err := s.register(sc, hello.Resume); err != nil {
		_ = WriteMsg(conn, MsgError, ProtoError{Message: "duplicate host id"})
		return err
	}
	// Registered: from here on, this handler owns the conns entry and
	// must remove it on any exit, or the host could never reconnect.
	defer func() {
		s.mu.Lock()
		if s.conns[hello.HostID] == sc {
			delete(s.conns, hello.HostID)
			lv := s.livenessLocked(hello.HostID)
			lv.Connected = false
			lv.Disconnects++
			lv.LastSeen = time.Now()
		}
		s.mu.Unlock()
	}()
	s.mu.Lock()
	alreadyPushed := s.pushed
	s.mu.Unlock()
	if err := sc.send(MsgAck, Ack{}); err != nil {
		return err
	}
	s.cfg.Logf("console: host %d connected from %v", hello.HostID, conn.RemoteAddr())
	if alreadyPushed {
		// Late (re)connector: push the existing thresholds.
		if err := s.pushTo(sc); err != nil {
			return err
		}
	}

	for {
		s.readDeadline(conn)
		t, body, err := ReadMsg(conn)
		if err != nil {
			if errors.Is(err, io.EOF) {
				return nil
			}
			return err
		}
		s.touch(hello.HostID)
		switch t {
		case MsgDistUpload:
			var up DistUpload
			if err := decode(t, body, &up); err != nil {
				return err
			}
			if err := s.acceptUpload(sc, up); err != nil {
				_ = sc.send(MsgError, ProtoError{Message: err.Error()})
				return err
			}
			if err := sc.send(MsgAck, Ack{}); err != nil {
				return err
			}
			s.maybeConfigure()
		case MsgAlertBatch:
			var ab AlertBatch
			if err := decode(t, body, &ab); err != nil {
				return err
			}
			s.mu.Lock()
			// A sequenced batch the console already tallied is a re-send
			// whose ack was lost in transit: acknowledge again, count
			// nothing. Seq 0 (unsequenced legacy senders) always counts.
			dup := ab.Seq != 0 && ab.Seq <= s.alertSeq[ab.HostID]
			if !dup {
				if ab.Seq != 0 {
					s.alertSeq[ab.HostID] = ab.Seq
				}
				s.alertTally[ab.HostID] += len(ab.Alerts)
				s.alertLog = append(s.alertLog, ab)
			}
			s.mu.Unlock()
			if dup {
				s.cfg.Logf("console: host %d re-sent alert batch seq %d; dropped", ab.HostID, ab.Seq)
			}
			if err := sc.send(MsgAck, Ack{Seq: ab.Seq}); err != nil {
				return err
			}
		case MsgPing:
			// One-way keepalive: liveness was touched above; no reply, so
			// the per-connection ack FIFO the agent's rpc path relies on
			// is not perturbed.
		default:
			_ = sc.send(MsgError, ProtoError{Message: "unexpected " + t.String()})
			return fmt.Errorf("unexpected message %s from host %d", t, hello.HostID)
		}
	}
}

// register claims the conns slot for sc's host. A reconnecting agent
// can arrive before the handler of its previous (closed) connection
// has observed EOF and cleaned up, so an occupied slot is retried
// briefly; only a slot still held after the grace period is a genuine
// concurrent duplicate and rejected. resume preserves the host's
// alert-sequence watermark (a self-healing redial continues the old
// sequence stream); a fresh hello resets it.
func (s *Server) register(sc *serverConn, resume bool) error {
	deadline := time.Now().Add(500 * time.Millisecond)
	for {
		s.mu.Lock()
		if _, dup := s.conns[sc.hostID]; !dup {
			s.conns[sc.hostID] = sc
			if _, ok := s.dists[sc.hostID]; !ok {
				s.dists[sc.hostID] = &[features.NumFeatures][]float64{}
				s.hostOrder = append(s.hostOrder, sc.hostID)
			}
			if !resume {
				delete(s.alertSeq, sc.hostID)
			}
			lv := s.livenessLocked(sc.hostID)
			lv.Connected = true
			lv.Connects++
			lv.LastSeen = time.Now()
			s.mu.Unlock()
			return nil
		}
		s.mu.Unlock()
		if time.Now().After(deadline) {
			return fmt.Errorf("duplicate host %d", sc.hostID)
		}
		time.Sleep(2 * time.Millisecond)
	}
}

// livenessLocked returns (creating if needed) the liveness record for
// one host. Callers hold s.mu.
func (s *Server) livenessLocked(hostID uint32) *HostLiveness {
	lv := s.liveness[hostID]
	if lv == nil {
		lv = &HostLiveness{}
		s.liveness[hostID] = lv
	}
	return lv
}

// touch refreshes one host's liveness timestamp on any inbound frame.
func (s *Server) touch(hostID uint32) {
	s.mu.Lock()
	s.livenessLocked(hostID).LastSeen = time.Now()
	s.mu.Unlock()
}

func (s *Server) acceptUpload(sc *serverConn, up DistUpload) error {
	if up.HostID != sc.hostID {
		return fmt.Errorf("upload host %d on connection of host %d", up.HostID, sc.hostID)
	}
	f := features.Feature(up.Feature)
	if !f.Valid() {
		return fmt.Errorf("invalid feature %d", up.Feature)
	}
	if len(up.Samples) == 0 {
		return fmt.Errorf("empty distribution for %s", f)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	// Epoch guard. An upload targets the epoch the sender expects its
	// next thresholds to carry, which makes reconnect retries safe:
	// only the first upload of a genuinely new learning round (epoch
	// e+1 after epoch e's push) rolls the console forward; a re-sent
	// upload for an epoch that has already been configured is
	// acknowledged and dropped instead of wiping the fleet's state.
	switch {
	case up.Epoch > s.epoch+1 || (up.Epoch == s.epoch+1 && !s.pushed):
		return fmt.Errorf("upload for epoch %d ahead of console epoch %d", up.Epoch, s.epoch)
	case up.Epoch < s.epoch || (up.Epoch == s.epoch && s.pushed):
		s.cfg.Logf("console: host %d re-sent epoch %d upload (console at %d); dropped",
			sc.hostID, up.Epoch, s.epoch)
		return nil
	case up.Epoch == s.epoch+1:
		// First upload of the next learning round: the paper re-learns
		// thresholds every week from the fresh training window (§6.1).
		s.pushed = false
		s.epoch++
		for id := range s.dists {
			s.dists[id] = &[features.NumFeatures][]float64{}
		}
		for id := range s.complete {
			s.complete[id] = false
		}
		s.cfg.Logf("console: epoch %d opened by host %d", s.epoch, sc.hostID)
	}
	s.dists[sc.hostID][f] = up.Samples
	all := true
	for _, samples := range s.dists[sc.hostID] {
		if len(samples) == 0 {
			all = false
			break
		}
	}
	s.complete[sc.hostID] = all
	return nil
}

// maybeConfigure computes and pushes thresholds once every expected
// host has uploaded all features.
func (s *Server) maybeConfigure() {
	s.mu.Lock()
	if s.pushed || s.configuring || len(s.complete) < s.cfg.ExpectedHosts {
		s.mu.Unlock()
		return
	}
	n := 0
	for _, done := range s.complete {
		if done {
			n++
		}
	}
	if n < s.cfg.ExpectedHosts {
		s.mu.Unlock()
		return
	}
	s.configuring = true
	hostOrder := append([]uint32(nil), s.hostOrder...)
	dists := make(map[uint32]*[features.NumFeatures][]float64, len(s.dists))
	for id, d := range s.dists {
		dists[id] = d
	}
	s.mu.Unlock()

	assignment := make(map[features.Feature]*core.Assignment, features.NumFeatures)
	for _, f := range features.All() {
		train := make([]*stats.Empirical, len(hostOrder))
		ok := true
		for i, id := range hostOrder {
			e, err := stats.NewEmpirical(dists[id][f])
			if err != nil {
				s.cfg.Logf("console: host %d feature %s: %v", id, f, err)
				ok = false
				break
			}
			train[i] = e
		}
		if !ok {
			s.abortConfigure()
			return
		}
		asn, err := core.Configure(train, s.cfg.Policy, s.cfg.AttackMagnitudes)
		if err != nil {
			s.cfg.Logf("console: configuring %s: %v", f, err)
			s.abortConfigure()
			return
		}
		assignment[f] = asn
	}

	s.mu.Lock()
	s.assignment = assignment
	s.pushed = true
	s.configuring = false
	conns := make([]*serverConn, 0, len(s.conns))
	for _, sc := range s.conns {
		conns = append(conns, sc)
	}
	s.mu.Unlock()
	s.cfg.Logf("console: policy %s configured for %d hosts; pushing thresholds",
		s.cfg.Policy.Name(), len(hostOrder))
	for _, sc := range conns {
		if err := s.pushTo(sc); err != nil {
			s.cfg.Logf("console: pushing to host %d: %v", sc.hostID, err)
		}
	}
}

// abortConfigure releases the single-flight configuration guard
// after a failed attempt so a later upload can retry.
func (s *Server) abortConfigure() {
	s.mu.Lock()
	s.configuring = false
	s.mu.Unlock()
}

// pushTo sends the computed thresholds to one agent.
func (s *Server) pushTo(sc *serverConn) error {
	s.mu.Lock()
	asn := s.assignment
	idx := -1
	for i, id := range s.hostOrder {
		if id == sc.hostID {
			idx = i
			break
		}
	}
	s.mu.Unlock()
	if asn == nil || idx < 0 || idx >= len(asn[features.TCP].Thresholds) {
		return fmt.Errorf("no assignment for host %d", sc.hostID)
	}
	var msg Thresholds
	msg.Policy = s.cfg.Policy.Name()
	s.mu.Lock()
	msg.Epoch = s.epoch
	s.mu.Unlock()
	for _, f := range features.All() {
		msg.Values[f] = asn[f].Thresholds[idx]
	}
	msg.Group = asn[features.TCP].GroupOf(idx)
	return sc.send(MsgThresholds, msg)
}

// Assignment returns the computed assignment for one feature (nil
// before configuration happens).
func (s *Server) Assignment(f features.Feature) *core.Assignment {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.assignment == nil {
		return nil
	}
	return s.assignment[f]
}

// Epoch returns the current configuration epoch (0-based).
func (s *Server) Epoch() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.epoch
}

// Configured reports whether thresholds have been computed.
func (s *Server) Configured() bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.pushed
}

// AlertCount returns the number of alerts received from one host.
func (s *Server) AlertCount(hostID uint32) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.alertTally[hostID]
}

// Alerts returns a copy of every alert batch received so far, in
// arrival order. The fleet simulator rebuilds the per-host alarm
// matrix from this log (the console-side view of the fleet), so
// collaborative quorum detection runs on exactly what came over the
// wire rather than on agent-side state.
func (s *Server) Alerts() []AlertBatch {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]AlertBatch(nil), s.alertLog...)
}

// Liveness returns a copy of the per-host connectivity records.
func (s *Server) Liveness() map[uint32]HostLiveness {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make(map[uint32]HostLiveness, len(s.liveness))
	for id, lv := range s.liveness {
		out[id] = *lv
	}
	return out
}

// DeadHosts returns the hosts that once connected but have now been
// disconnected for longer than grace, sorted ascending. This is the
// console's degraded-mode signal: quorum should be computed over the
// population minus these hosts.
func (s *Server) DeadHosts(grace time.Duration) []uint32 {
	now := time.Now()
	s.mu.Lock()
	defer s.mu.Unlock()
	var dead []uint32
	for id, lv := range s.liveness {
		if !lv.Connected && now.Sub(lv.LastSeen) > grace {
			dead = append(dead, id)
		}
	}
	sort.Slice(dead, func(i, j int) bool { return dead[i] < dead[j] })
	return dead
}

// ActiveConns returns the number of currently registered agent
// connections — the size of the conns table. A host that disconnects
// must eventually disappear from it, or it could never reconnect; the
// reconnect regression tests watch this.
func (s *Server) ActiveConns() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.conns)
}

// TotalAlerts returns the number of alerts received from all hosts —
// the quantity Table 3 reports per week.
func (s *Server) TotalAlerts() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	n := 0
	for _, c := range s.alertTally {
		n += c
	}
	return n
}

// Hosts returns the host IDs that have connected, in first-seen
// order.
func (s *Server) Hosts() []uint32 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]uint32(nil), s.hostOrder...)
}

// Close shuts the listener and waits for connection handlers.
func (s *Server) Close() error {
	s.mu.Lock()
	s.closing = true
	ln := s.listener
	conns := make([]*serverConn, 0, len(s.conns))
	for _, sc := range s.conns {
		conns = append(conns, sc)
	}
	s.mu.Unlock()
	var err error
	if ln != nil {
		err = ln.Close()
	}
	for _, sc := range conns {
		_ = sc.conn.Close()
	}
	s.wg.Wait()
	return err
}
