package console

import (
	"net"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/features"
	"repro/internal/netsim"
)

// The self-healing regression suite: the idempotency guards (upload
// epoch, alert-batch sequence) exercised frame by frame with a raw
// protocol client, and the reconnect storm exercised with real agents
// over a partitioned fault transport.

// rawDial opens a raw protocol connection and completes the hello
// handshake.
func rawDial(t *testing.T, network *netsim.MemNetwork, host uint32, resume bool) net.Conn {
	t.Helper()
	conn, err := network.Dial("console")
	if err != nil {
		t.Fatal(err)
	}
	if err := WriteMsg(conn, MsgHello, Hello{HostID: host, Resume: resume}); err != nil {
		t.Fatal(err)
	}
	expectFrame(t, conn, MsgAck)
	return conn
}

// expectFrame reads one frame and fails unless it has the wanted type.
func expectFrame(t *testing.T, conn net.Conn, want MsgType) []byte {
	t.Helper()
	typ, body, err := ReadMsg(conn)
	if err != nil {
		t.Fatalf("reading %s: %v", want, err)
	}
	if typ != want {
		t.Fatalf("got %s frame, want %s", typ, want)
	}
	return body
}

// uploadAll uploads one distribution per feature at the given epoch
// and consumes the acks.
func uploadAll(t *testing.T, conn net.Conn, host uint32, epoch int, samples []float64) {
	t.Helper()
	for _, f := range features.All() {
		if err := WriteMsg(conn, MsgDistUpload, DistUpload{
			HostID: host, Feature: int(f), Samples: samples, Epoch: epoch,
		}); err != nil {
			t.Fatal(err)
		}
		expectFrame(t, conn, MsgAck)
	}
}

func memServer(t *testing.T, hosts int) (*Server, *netsim.MemNetwork) {
	t.Helper()
	srv, err := NewServer(ServerConfig{
		Policy:        policy99(core.FullDiversity{}),
		ExpectedHosts: hosts,
	})
	if err != nil {
		t.Fatal(err)
	}
	network := netsim.NewMemNetwork()
	ln, err := network.Listen("console")
	if err != nil {
		t.Fatal(err)
	}
	go func() { _ = srv.Serve(ln) }()
	t.Cleanup(func() { _ = srv.Close() })
	return srv, network
}

// TestUploadEpochGuard pins the reconnect-safety of uploads: a re-sent
// upload for an epoch the console has already configured is
// acknowledged and dropped (never wiping fleet state), an upload ahead
// of the console is rejected, and the next epoch's upload opens a new
// learning round.
func TestUploadEpochGuard(t *testing.T) {
	srv, network := memServer(t, 1)
	samples := make([]float64, 40)
	for i := range samples {
		samples[i] = float64(i + 1)
	}

	conn := rawDial(t, network, 1, false)
	defer conn.Close()
	uploadAll(t, conn, 1, 0, samples)
	var thr Thresholds
	if err := decode(MsgThresholds, expectFrame(t, conn, MsgThresholds), &thr); err != nil {
		t.Fatal(err)
	}
	if thr.Epoch != 0 || srv.Epoch() != 0 {
		t.Fatalf("first push epoch = %d (server %d), want 0", thr.Epoch, srv.Epoch())
	}

	// A reconnecting agent re-sends its epoch-0 upload: idempotent
	// ack-and-drop. If the console re-opened the epoch, a second
	// thresholds push would precede the next ack and fail the reads.
	uploadAll(t, conn, 1, 0, samples)
	if srv.Epoch() != 0 {
		t.Fatalf("stale re-upload moved the console to epoch %d", srv.Epoch())
	}

	// An upload for an epoch the console has not reached is a protocol
	// error (the server replies MsgError and drops the connection).
	if err := WriteMsg(conn, MsgDistUpload, DistUpload{
		HostID: 1, Feature: 0, Samples: samples, Epoch: 2,
	}); err != nil {
		t.Fatal(err)
	}
	expectFrame(t, conn, MsgError)
	_ = conn.Close()

	// The genuine next round: epoch-1 uploads open a new epoch and earn
	// a fresh push. A reconnect to a configured console is greeted with
	// the stored assignment first (the resume push).
	conn2 := rawDial(t, network, 1, true)
	defer conn2.Close()
	if err := decode(MsgThresholds, expectFrame(t, conn2, MsgThresholds), &thr); err != nil {
		t.Fatal(err)
	}
	if thr.Epoch != 0 {
		t.Fatalf("resume push epoch = %d, want the stored 0", thr.Epoch)
	}
	uploadAll(t, conn2, 1, 1, samples)
	if err := decode(MsgThresholds, expectFrame(t, conn2, MsgThresholds), &thr); err != nil {
		t.Fatal(err)
	}
	if thr.Epoch != 1 || srv.Epoch() != 1 {
		t.Fatalf("re-learned push epoch = %d (server %d), want 1", thr.Epoch, srv.Epoch())
	}
}

// TestAlertSeqDedup pins exactly-once alert accounting across
// re-sends and reconnects: a re-sent sequence is acknowledged but
// never re-tallied, sequence zero always counts, a resumed connection
// keeps the dedup watermark, and a fresh (non-resume) hello resets it.
func TestAlertSeqDedup(t *testing.T) {
	srv, network := memServer(t, 1)
	samples := []float64{1, 2, 3, 4, 5}
	alerts := func(n int) []Alert {
		out := make([]Alert, n)
		for i := range out {
			out[i] = Alert{Feature: 1, Bin: i, Value: 10, Threshold: 1}
		}
		return out
	}
	send := func(conn net.Conn, seq uint64, n int) {
		t.Helper()
		if err := WriteMsg(conn, MsgAlertBatch, AlertBatch{HostID: 1, Seq: seq, Alerts: alerts(n)}); err != nil {
			t.Fatal(err)
		}
		var ack Ack
		if err := decode(MsgAck, expectFrame(t, conn, MsgAck), &ack); err != nil {
			t.Fatal(err)
		}
		if ack.Seq != seq {
			t.Fatalf("ack echoes seq %d, want %d", ack.Seq, seq)
		}
	}
	count := func(want int, stage string) {
		t.Helper()
		if got := srv.AlertCount(1); got != want {
			t.Fatalf("%s: console tallied %d alerts, want %d", stage, got, want)
		}
	}

	conn := rawDial(t, network, 1, false)
	uploadAll(t, conn, 1, 0, samples)
	expectFrame(t, conn, MsgThresholds)

	send(conn, 1, 2)
	count(2, "first batch")
	send(conn, 1, 2) // ack lost in transit, batch re-sent verbatim
	count(2, "re-sent seq 1")
	send(conn, 0, 1) // unsequenced legacy batch: always counts
	count(3, "seq 0")
	send(conn, 2, 2)
	count(5, "seq 2")
	send(conn, 1, 2) // stale straggler
	count(5, "stale seq 1")
	_ = conn.Close()

	// Self-healing redial (Resume): the watermark survives, so the
	// spool's re-send of batch 2 is dropped while batch 3 counts.
	conn = rawDial(t, network, 1, true)
	expectFrame(t, conn, MsgThresholds) // configured console greets reconnects
	send(conn, 2, 2)
	count(5, "resumed re-send of seq 2")
	send(conn, 3, 1)
	count(6, "resumed seq 3")
	_ = conn.Close()

	// A restarted agent process (fresh hello) begins a new sequence
	// stream at 1; the old watermark must not eat it.
	conn = rawDial(t, network, 1, false)
	expectFrame(t, conn, MsgThresholds)
	send(conn, 1, 1)
	count(7, "fresh incarnation seq 1")
	_ = conn.Close()
}

// TestReconnectStormExactlyOnce is the storm regression: a fleet of
// agents all severed by one partition window, all redialing the
// console at once when it heals — every spooled batch must arrive
// exactly once, and the console's connection table must not leak.
func TestReconnectStormExactlyOnce(t *testing.T) {
	const users = 8
	srv, network := memServer(t, users)
	var tick atomic.Int64
	fnet, err := netsim.NewFaultNetwork(network, netsim.FaultPlan{
		Seed:       9,
		Partitions: []netsim.Partition{{From: 1, To: 2}}, // all hosts
	}, netsim.TickerFunc(func() int { return int(tick.Load()) }))
	if err != nil {
		t.Fatal(err)
	}
	retry := RetryPolicy{
		MaxDials:     -1,
		MaxOpRetries: 16,
		Backoff:      100 * time.Microsecond,
		BackoffMax:   time.Millisecond,
		LinkWait:     5 * time.Millisecond,
		Seed:         1,
	}
	samples := make([]float64, 50)
	for i := range samples {
		samples[i] = float64(i + 1)
	}

	agents := make([]*Agent, users)
	for i := range agents {
		agents[i], err = Connect(AgentConfig{
			HostID: uint32(i),
			Dial:   fnet.Dialer(i, "console"),
			Retry:  retry,
		})
		if err != nil {
			t.Fatalf("host %d: %v", i, err)
		}
		defer agents[i].Close()
	}

	// Phases run in lockstep across all agents: the partition tick is
	// global state, so every agent must pass through each phase before
	// the clock moves.
	parallel := func(stage string, fn func(i int) error) {
		t.Helper()
		var wg sync.WaitGroup
		errs := make([]error, users)
		for i := 0; i < users; i++ {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				errs[i] = fn(i)
			}(i)
		}
		wg.Wait()
		for i, err := range errs {
			if err != nil {
				t.Fatalf("%s: host %d: %v", stage, i, err)
			}
		}
	}

	parallel("upload", func(i int) error {
		for _, f := range features.All() {
			if err := agents[i].UploadDistribution(f, samples); err != nil {
				return err
			}
		}
		_, err := agents[i].WaitThresholds(20 * time.Second)
		return err
	})

	var hot [features.NumFeatures]float64
	for f := range hot {
		hot[f] = 1 << 20
	}
	sent := make([]int, users)
	parallel("observe", func(i int) error {
		for b := 0; b < 2; b++ {
			if err := agents[i].ObserveVector(b, hot); err != nil {
				return err
			}
		}
		sent[i] = agents[i].PendingAlerts()
		return nil
	})
	for i, n := range sent {
		if n == 0 {
			t.Fatalf("host %d has no pending alerts; the storm would carry nothing", i)
		}
	}

	tick.Store(1) // partition opens: every flush must fail and spool
	parallel("flush into partition", func(i int) error {
		if err := agents[i].Flush(); err == nil {
			return errFlushSucceededUnderPartition
		}
		if got := agents[i].SpooledBatches(); got != 1 {
			t.Errorf("host %d spooled %d batches, want 1", i, got)
		}
		return nil
	})

	tick.Store(2) // heal: the whole fleet redials at once
	parallel("flush after heal", func(i int) error {
		return agents[i].Flush()
	})
	for i := 0; i < users; i++ {
		if got := srv.AlertCount(uint32(i)); got != sent[i] {
			t.Fatalf("host %d: console tallied %d alerts, want exactly %d", i, got, sent[i])
		}
		if agents[i].Reconnects() < 1 {
			t.Fatalf("host %d never reconnected through the storm", i)
		}
		if agents[i].SpooledBatches() != 0 {
			t.Fatalf("host %d still spools %d batches after heal", i, agents[i].SpooledBatches())
		}
	}

	// Idempotent tail: an extra flush moves nothing.
	parallel("idle flush", func(i int) error { return agents[i].Flush() })
	total := 0
	for i := 0; i < users; i++ {
		total += sent[i]
	}
	if srv.TotalAlerts() != total {
		t.Fatalf("TotalAlerts = %d, want %d", srv.TotalAlerts(), total)
	}

	// Liveness saw both incarnations of every host; the conn table
	// drains once the agents close.
	for id, lv := range srv.Liveness() {
		if lv.Connects < 2 {
			t.Fatalf("host %d liveness records %d connects, want >= 2", id, lv.Connects)
		}
	}
	if got := srv.ActiveConns(); got != users {
		t.Fatalf("ActiveConns = %d with %d live hosts", got, users)
	}
	for _, a := range agents {
		_ = a.Close()
	}
	deadline := time.Now().Add(5 * time.Second)
	for srv.ActiveConns() != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("conns table still holds %d entries after the storm", srv.ActiveConns())
		}
		time.Sleep(2 * time.Millisecond)
	}
}

var errFlushSucceededUnderPartition = &protocolTestError{"flush succeeded inside the partition window"}

type protocolTestError struct{ msg string }

func (e *protocolTestError) Error() string { return e.msg }
