package console

import (
	"bytes"
	"net"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/xrand"
)

// TestReadMsgSurvivesGarbage hammers the frame reader with random
// bytes: it must return errors, never panic, and never allocate an
// unbounded buffer.
func TestReadMsgSurvivesGarbage(t *testing.T) {
	rng := xrand.New(7)
	for trial := 0; trial < 500; trial++ {
		n := rng.Intn(64)
		buf := make([]byte, n)
		for i := range buf {
			buf[i] = byte(rng.Intn(256))
		}
		// Clamp the length prefix occasionally so the body read path
		// is exercised too.
		if n >= 5 && rng.Intn(2) == 0 {
			buf[0] = byte(rng.Intn(16))
			buf[1], buf[2], buf[3] = 0, 0, 0
		}
		_, _, _ = ReadMsg(bytes.NewReader(buf))
	}
}

// TestServerSurvivesGarbageConnections connects raw sockets that
// write random bytes and vanish; the server must keep serving
// legitimate agents afterwards.
func TestServerSurvivesGarbageConnections(t *testing.T) {
	_, addr := startServer(t, ServerConfig{
		Policy:        policy99(core.Homogeneous{}),
		ExpectedHosts: 2,
	})
	rng := xrand.New(11)
	for trial := 0; trial < 20; trial++ {
		conn, err := net.Dial("tcp", addr)
		if err != nil {
			t.Fatal(err)
		}
		n := rng.Intn(200)
		junk := make([]byte, n)
		for i := range junk {
			junk[i] = byte(rng.Intn(256))
		}
		_, _ = conn.Write(junk)
		_ = conn.Close()
	}
	// A legitimate agent still gets through.
	a, err := Dial(addr, 42, "survivor")
	if err != nil {
		t.Fatalf("legitimate agent rejected after garbage: %v", err)
	}
	defer a.Close()
	if err := a.UploadDistribution(0, []float64{1, 2, 3}); err != nil {
		t.Fatalf("upload after garbage: %v", err)
	}
}

// TestServerSurvivesSlowHello verifies a stalled half-open connection
// does not wedge the accept loop.
func TestServerSurvivesSlowHello(t *testing.T) {
	_, addr := startServer(t, ServerConfig{
		Policy:        policy99(core.Homogeneous{}),
		ExpectedHosts: 2,
	})
	stalled, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer stalled.Close() // never sends a byte

	done := make(chan error, 1)
	go func() {
		a, err := Dial(addr, 7, "prompt")
		if err == nil {
			_ = a.Close()
		}
		done <- err
	}()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("prompt agent failed behind a stalled peer: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("accept loop wedged by a stalled connection")
	}
}
